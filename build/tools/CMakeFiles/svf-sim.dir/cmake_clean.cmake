file(REMOVE_RECURSE
  "CMakeFiles/svf-sim.dir/svf_sim.cc.o"
  "CMakeFiles/svf-sim.dir/svf_sim.cc.o.d"
  "svf-sim"
  "svf-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svf-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
