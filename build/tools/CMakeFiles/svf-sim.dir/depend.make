# Empty dependencies file for svf-sim.
# This may be replaced when dependencies are built.
