file(REMOVE_RECURSE
  "CMakeFiles/context_switch_sim.dir/context_switch_sim.cpp.o"
  "CMakeFiles/context_switch_sim.dir/context_switch_sim.cpp.o.d"
  "context_switch_sim"
  "context_switch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_switch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
