# Empty compiler generated dependencies file for context_switch_sim.
# This may be replaced when dependencies are built.
