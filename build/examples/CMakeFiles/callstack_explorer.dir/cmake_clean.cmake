file(REMOVE_RECURSE
  "CMakeFiles/callstack_explorer.dir/callstack_explorer.cpp.o"
  "CMakeFiles/callstack_explorer.dir/callstack_explorer.cpp.o.d"
  "callstack_explorer"
  "callstack_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callstack_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
