# Empty compiler generated dependencies file for callstack_explorer.
# This may be replaced when dependencies are built.
