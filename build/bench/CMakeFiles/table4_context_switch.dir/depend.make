# Empty dependencies file for table4_context_switch.
# This may be replaced when dependencies are built.
