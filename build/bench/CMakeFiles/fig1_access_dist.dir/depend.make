# Empty dependencies file for fig1_access_dist.
# This may be replaced when dependencies are built.
