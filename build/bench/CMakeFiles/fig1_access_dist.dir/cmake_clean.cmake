file(REMOVE_RECURSE
  "CMakeFiles/fig1_access_dist.dir/fig1_access_dist.cc.o"
  "CMakeFiles/fig1_access_dist.dir/fig1_access_dist.cc.o.d"
  "fig1_access_dist"
  "fig1_access_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_access_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
