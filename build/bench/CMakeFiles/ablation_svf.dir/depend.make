# Empty dependencies file for ablation_svf.
# This may be replaced when dependencies are built.
