file(REMOVE_RECURSE
  "CMakeFiles/ablation_svf.dir/ablation_svf.cc.o"
  "CMakeFiles/ablation_svf.dir/ablation_svf.cc.o.d"
  "ablation_svf"
  "ablation_svf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_svf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
