file(REMOVE_RECURSE
  "CMakeFiles/fig7_svf_vs_stackcache.dir/fig7_svf_vs_stackcache.cc.o"
  "CMakeFiles/fig7_svf_vs_stackcache.dir/fig7_svf_vs_stackcache.cc.o.d"
  "fig7_svf_vs_stackcache"
  "fig7_svf_vs_stackcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_svf_vs_stackcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
