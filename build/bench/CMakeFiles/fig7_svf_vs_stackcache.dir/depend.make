# Empty dependencies file for fig7_svf_vs_stackcache.
# This may be replaced when dependencies are built.
