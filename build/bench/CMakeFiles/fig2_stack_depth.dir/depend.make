# Empty dependencies file for fig2_stack_depth.
# This may be replaced when dependencies are built.
