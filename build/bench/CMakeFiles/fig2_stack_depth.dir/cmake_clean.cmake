file(REMOVE_RECURSE
  "CMakeFiles/fig2_stack_depth.dir/fig2_stack_depth.cc.o"
  "CMakeFiles/fig2_stack_depth.dir/fig2_stack_depth.cc.o.d"
  "fig2_stack_depth"
  "fig2_stack_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stack_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
