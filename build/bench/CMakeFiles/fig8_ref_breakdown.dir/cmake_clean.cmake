file(REMOVE_RECURSE
  "CMakeFiles/fig8_ref_breakdown.dir/fig8_ref_breakdown.cc.o"
  "CMakeFiles/fig8_ref_breakdown.dir/fig8_ref_breakdown.cc.o.d"
  "fig8_ref_breakdown"
  "fig8_ref_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ref_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
