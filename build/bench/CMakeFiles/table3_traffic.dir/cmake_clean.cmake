file(REMOVE_RECURSE
  "CMakeFiles/table3_traffic.dir/table3_traffic.cc.o"
  "CMakeFiles/table3_traffic.dir/table3_traffic.cc.o.d"
  "table3_traffic"
  "table3_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
