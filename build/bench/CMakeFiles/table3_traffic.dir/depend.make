# Empty dependencies file for table3_traffic.
# This may be replaced when dependencies are built.
