# Empty dependencies file for fig6_progressive.
# This may be replaced when dependencies are built.
