file(REMOVE_RECURSE
  "CMakeFiles/fig6_progressive.dir/fig6_progressive.cc.o"
  "CMakeFiles/fig6_progressive.dir/fig6_progressive.cc.o.d"
  "fig6_progressive"
  "fig6_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
