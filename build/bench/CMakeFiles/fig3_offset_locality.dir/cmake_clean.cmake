file(REMOVE_RECURSE
  "CMakeFiles/fig3_offset_locality.dir/fig3_offset_locality.cc.o"
  "CMakeFiles/fig3_offset_locality.dir/fig3_offset_locality.cc.o.d"
  "fig3_offset_locality"
  "fig3_offset_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_offset_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
