# Empty compiler generated dependencies file for fig3_offset_locality.
# This may be replaced when dependencies are built.
