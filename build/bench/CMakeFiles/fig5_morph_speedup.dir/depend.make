# Empty dependencies file for fig5_morph_speedup.
# This may be replaced when dependencies are built.
