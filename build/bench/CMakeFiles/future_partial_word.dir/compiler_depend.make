# Empty compiler generated dependencies file for future_partial_word.
# This may be replaced when dependencies are built.
