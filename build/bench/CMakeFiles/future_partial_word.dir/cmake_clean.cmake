file(REMOVE_RECURSE
  "CMakeFiles/future_partial_word.dir/future_partial_word.cc.o"
  "CMakeFiles/future_partial_word.dir/future_partial_word.cc.o.d"
  "future_partial_word"
  "future_partial_word.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_partial_word.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
