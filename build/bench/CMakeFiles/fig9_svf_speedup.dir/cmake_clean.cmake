file(REMOVE_RECURSE
  "CMakeFiles/fig9_svf_speedup.dir/fig9_svf_speedup.cc.o"
  "CMakeFiles/fig9_svf_speedup.dir/fig9_svf_speedup.cc.o.d"
  "fig9_svf_speedup"
  "fig9_svf_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_svf_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
