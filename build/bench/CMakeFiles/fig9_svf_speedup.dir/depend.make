# Empty dependencies file for fig9_svf_speedup.
# This may be replaced when dependencies are built.
