# Empty compiler generated dependencies file for svf.
# This may be replaced when dependencies are built.
