file(REMOVE_RECURSE
  "libsvf.a"
)
