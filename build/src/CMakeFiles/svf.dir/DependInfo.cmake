
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/bitfield.cc" "src/CMakeFiles/svf.dir/base/bitfield.cc.o" "gcc" "src/CMakeFiles/svf.dir/base/bitfield.cc.o.d"
  "/root/repo/src/base/config.cc" "src/CMakeFiles/svf.dir/base/config.cc.o" "gcc" "src/CMakeFiles/svf.dir/base/config.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/svf.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/svf.dir/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/svf.dir/base/random.cc.o" "gcc" "src/CMakeFiles/svf.dir/base/random.cc.o.d"
  "/root/repo/src/base/str.cc" "src/CMakeFiles/svf.dir/base/str.cc.o" "gcc" "src/CMakeFiles/svf.dir/base/str.cc.o.d"
  "/root/repo/src/core/spec_sp.cc" "src/CMakeFiles/svf.dir/core/spec_sp.cc.o" "gcc" "src/CMakeFiles/svf.dir/core/spec_sp.cc.o.d"
  "/root/repo/src/core/svf.cc" "src/CMakeFiles/svf.dir/core/svf.cc.o" "gcc" "src/CMakeFiles/svf.dir/core/svf.cc.o.d"
  "/root/repo/src/core/svf_unit.cc" "src/CMakeFiles/svf.dir/core/svf_unit.cc.o" "gcc" "src/CMakeFiles/svf.dir/core/svf_unit.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/svf.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/svf.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/reporting.cc" "src/CMakeFiles/svf.dir/harness/reporting.cc.o" "gcc" "src/CMakeFiles/svf.dir/harness/reporting.cc.o.d"
  "/root/repo/src/harness/traffic.cc" "src/CMakeFiles/svf.dir/harness/traffic.cc.o" "gcc" "src/CMakeFiles/svf.dir/harness/traffic.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/svf.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/svf.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/CMakeFiles/svf.dir/isa/builder.cc.o" "gcc" "src/CMakeFiles/svf.dir/isa/builder.cc.o.d"
  "/root/repo/src/isa/decode.cc" "src/CMakeFiles/svf.dir/isa/decode.cc.o" "gcc" "src/CMakeFiles/svf.dir/isa/decode.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/svf.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/svf.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/encode.cc" "src/CMakeFiles/svf.dir/isa/encode.cc.o" "gcc" "src/CMakeFiles/svf.dir/isa/encode.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/svf.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/svf.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/svf.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/svf.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/svf.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/svf.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/stack_cache.cc" "src/CMakeFiles/svf.dir/mem/stack_cache.cc.o" "gcc" "src/CMakeFiles/svf.dir/mem/stack_cache.cc.o.d"
  "/root/repo/src/sim/emulator.cc" "src/CMakeFiles/svf.dir/sim/emulator.cc.o" "gcc" "src/CMakeFiles/svf.dir/sim/emulator.cc.o.d"
  "/root/repo/src/sim/mem_image.cc" "src/CMakeFiles/svf.dir/sim/mem_image.cc.o" "gcc" "src/CMakeFiles/svf.dir/sim/mem_image.cc.o.d"
  "/root/repo/src/sim/region.cc" "src/CMakeFiles/svf.dir/sim/region.cc.o" "gcc" "src/CMakeFiles/svf.dir/sim/region.cc.o.d"
  "/root/repo/src/stats/distribution.cc" "src/CMakeFiles/svf.dir/stats/distribution.cc.o" "gcc" "src/CMakeFiles/svf.dir/stats/distribution.cc.o.d"
  "/root/repo/src/stats/group.cc" "src/CMakeFiles/svf.dir/stats/group.cc.o" "gcc" "src/CMakeFiles/svf.dir/stats/group.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/svf.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/svf.dir/stats/table.cc.o.d"
  "/root/repo/src/uarch/bpred.cc" "src/CMakeFiles/svf.dir/uarch/bpred.cc.o" "gcc" "src/CMakeFiles/svf.dir/uarch/bpred.cc.o.d"
  "/root/repo/src/uarch/lsq.cc" "src/CMakeFiles/svf.dir/uarch/lsq.cc.o" "gcc" "src/CMakeFiles/svf.dir/uarch/lsq.cc.o.d"
  "/root/repo/src/uarch/machine_config.cc" "src/CMakeFiles/svf.dir/uarch/machine_config.cc.o" "gcc" "src/CMakeFiles/svf.dir/uarch/machine_config.cc.o.d"
  "/root/repo/src/uarch/ooo_core.cc" "src/CMakeFiles/svf.dir/uarch/ooo_core.cc.o" "gcc" "src/CMakeFiles/svf.dir/uarch/ooo_core.cc.o.d"
  "/root/repo/src/uarch/ruu.cc" "src/CMakeFiles/svf.dir/uarch/ruu.cc.o" "gcc" "src/CMakeFiles/svf.dir/uarch/ruu.cc.o.d"
  "/root/repo/src/workloads/calibration.cc" "src/CMakeFiles/svf.dir/workloads/calibration.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/calibration.cc.o.d"
  "/root/repo/src/workloads/kernels/bzip2.cc" "src/CMakeFiles/svf.dir/workloads/kernels/bzip2.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/bzip2.cc.o.d"
  "/root/repo/src/workloads/kernels/crafty.cc" "src/CMakeFiles/svf.dir/workloads/kernels/crafty.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/crafty.cc.o.d"
  "/root/repo/src/workloads/kernels/eon.cc" "src/CMakeFiles/svf.dir/workloads/kernels/eon.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/eon.cc.o.d"
  "/root/repo/src/workloads/kernels/gap.cc" "src/CMakeFiles/svf.dir/workloads/kernels/gap.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/gap.cc.o.d"
  "/root/repo/src/workloads/kernels/gcc.cc" "src/CMakeFiles/svf.dir/workloads/kernels/gcc.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/gcc.cc.o.d"
  "/root/repo/src/workloads/kernels/gzip.cc" "src/CMakeFiles/svf.dir/workloads/kernels/gzip.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/gzip.cc.o.d"
  "/root/repo/src/workloads/kernels/mcf.cc" "src/CMakeFiles/svf.dir/workloads/kernels/mcf.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/mcf.cc.o.d"
  "/root/repo/src/workloads/kernels/parser.cc" "src/CMakeFiles/svf.dir/workloads/kernels/parser.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/parser.cc.o.d"
  "/root/repo/src/workloads/kernels/perlbmk.cc" "src/CMakeFiles/svf.dir/workloads/kernels/perlbmk.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/perlbmk.cc.o.d"
  "/root/repo/src/workloads/kernels/twolf.cc" "src/CMakeFiles/svf.dir/workloads/kernels/twolf.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/twolf.cc.o.d"
  "/root/repo/src/workloads/kernels/vortex.cc" "src/CMakeFiles/svf.dir/workloads/kernels/vortex.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/vortex.cc.o.d"
  "/root/repo/src/workloads/kernels/vpr.cc" "src/CMakeFiles/svf.dir/workloads/kernels/vpr.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/kernels/vpr.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/svf.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/svf.dir/workloads/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
