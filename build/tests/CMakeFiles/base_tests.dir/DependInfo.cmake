
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base/bitfield_test.cc" "tests/CMakeFiles/base_tests.dir/base/bitfield_test.cc.o" "gcc" "tests/CMakeFiles/base_tests.dir/base/bitfield_test.cc.o.d"
  "/root/repo/tests/base/config_test.cc" "tests/CMakeFiles/base_tests.dir/base/config_test.cc.o" "gcc" "tests/CMakeFiles/base_tests.dir/base/config_test.cc.o.d"
  "/root/repo/tests/base/logging_test.cc" "tests/CMakeFiles/base_tests.dir/base/logging_test.cc.o" "gcc" "tests/CMakeFiles/base_tests.dir/base/logging_test.cc.o.d"
  "/root/repo/tests/base/random_test.cc" "tests/CMakeFiles/base_tests.dir/base/random_test.cc.o" "gcc" "tests/CMakeFiles/base_tests.dir/base/random_test.cc.o.d"
  "/root/repo/tests/base/str_test.cc" "tests/CMakeFiles/base_tests.dir/base/str_test.cc.o" "gcc" "tests/CMakeFiles/base_tests.dir/base/str_test.cc.o.d"
  "/root/repo/tests/stats/stats_test.cc" "tests/CMakeFiles/base_tests.dir/stats/stats_test.cc.o" "gcc" "tests/CMakeFiles/base_tests.dir/stats/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
