file(REMOVE_RECURSE
  "CMakeFiles/isa_tests.dir/isa/assembler_test.cc.o"
  "CMakeFiles/isa_tests.dir/isa/assembler_test.cc.o.d"
  "CMakeFiles/isa_tests.dir/isa/builder_test.cc.o"
  "CMakeFiles/isa_tests.dir/isa/builder_test.cc.o.d"
  "CMakeFiles/isa_tests.dir/isa/disasm_test.cc.o"
  "CMakeFiles/isa_tests.dir/isa/disasm_test.cc.o.d"
  "CMakeFiles/isa_tests.dir/isa/encode_test.cc.o"
  "CMakeFiles/isa_tests.dir/isa/encode_test.cc.o.d"
  "CMakeFiles/isa_tests.dir/isa/inst_test.cc.o"
  "CMakeFiles/isa_tests.dir/isa/inst_test.cc.o.d"
  "CMakeFiles/isa_tests.dir/isa/program_test.cc.o"
  "CMakeFiles/isa_tests.dir/isa/program_test.cc.o.d"
  "isa_tests"
  "isa_tests.pdb"
  "isa_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
