
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isa/assembler_test.cc" "tests/CMakeFiles/isa_tests.dir/isa/assembler_test.cc.o" "gcc" "tests/CMakeFiles/isa_tests.dir/isa/assembler_test.cc.o.d"
  "/root/repo/tests/isa/builder_test.cc" "tests/CMakeFiles/isa_tests.dir/isa/builder_test.cc.o" "gcc" "tests/CMakeFiles/isa_tests.dir/isa/builder_test.cc.o.d"
  "/root/repo/tests/isa/disasm_test.cc" "tests/CMakeFiles/isa_tests.dir/isa/disasm_test.cc.o" "gcc" "tests/CMakeFiles/isa_tests.dir/isa/disasm_test.cc.o.d"
  "/root/repo/tests/isa/encode_test.cc" "tests/CMakeFiles/isa_tests.dir/isa/encode_test.cc.o" "gcc" "tests/CMakeFiles/isa_tests.dir/isa/encode_test.cc.o.d"
  "/root/repo/tests/isa/inst_test.cc" "tests/CMakeFiles/isa_tests.dir/isa/inst_test.cc.o" "gcc" "tests/CMakeFiles/isa_tests.dir/isa/inst_test.cc.o.d"
  "/root/repo/tests/isa/program_test.cc" "tests/CMakeFiles/isa_tests.dir/isa/program_test.cc.o" "gcc" "tests/CMakeFiles/isa_tests.dir/isa/program_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
