
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/equivalence_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/equivalence_test.cc.o.d"
  "/root/repo/tests/integration/experiment_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/experiment_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/experiment_test.cc.o.d"
  "/root/repo/tests/integration/fullscale_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/fullscale_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/fullscale_test.cc.o.d"
  "/root/repo/tests/integration/replay_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/replay_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/replay_test.cc.o.d"
  "/root/repo/tests/integration/traffic_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/traffic_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/traffic_test.cc.o.d"
  "/root/repo/tests/integration/workloads_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/workloads_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
