file(REMOVE_RECURSE
  "CMakeFiles/uarch_tests.dir/uarch/bpred_test.cc.o"
  "CMakeFiles/uarch_tests.dir/uarch/bpred_test.cc.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/ooo_test.cc.o"
  "CMakeFiles/uarch_tests.dir/uarch/ooo_test.cc.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/pipeline_details_test.cc.o"
  "CMakeFiles/uarch_tests.dir/uarch/pipeline_details_test.cc.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/ruu_test.cc.o"
  "CMakeFiles/uarch_tests.dir/uarch/ruu_test.cc.o.d"
  "uarch_tests"
  "uarch_tests.pdb"
  "uarch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
