/**
 * @file
 * Parallel interval engine (harness/experiment.hh): a sampled run
 * fans its detailed windows out over RunSetup::pjobs worker threads,
 * and any thread count must produce byte-identical results — every
 * CoreStats counter, every unit counter, the whole SampleEstimate
 * (including the floating-point IPC statistics and per-counter
 * variances, which are folded in interval order on purpose), the
 * program output and the completion flag.
 */

#include <gtest/gtest.h>

#include "ckpt/sampler.hh"
#include "harness/experiment.hh"

using namespace svf;

namespace
{

void
expectByteIdentical(const harness::RunResult &a,
                    const harness::RunResult &b, unsigned pjobs)
{
    const std::string what = "pjobs=" + std::to_string(pjobs);
    const auto &counters = ckpt::coreCounters();
    for (std::size_t i = 0; i < counters.size(); ++i) {
        EXPECT_EQ(a.core.*(counters[i].field),
                  b.core.*(counters[i].field))
            << what << " counter " << counters[i].name;
    }

    EXPECT_EQ(a.svfQuadsIn, b.svfQuadsIn) << what;
    EXPECT_EQ(a.svfQuadsOut, b.svfQuadsOut) << what;
    EXPECT_EQ(a.svfFastLoads, b.svfFastLoads) << what;
    EXPECT_EQ(a.svfFastStores, b.svfFastStores) << what;
    EXPECT_EQ(a.svfReroutedLoads, b.svfReroutedLoads) << what;
    EXPECT_EQ(a.svfReroutedStores, b.svfReroutedStores) << what;
    EXPECT_EQ(a.svfWindowMisses, b.svfWindowMisses) << what;
    EXPECT_EQ(a.svfDemandFills, b.svfDemandFills) << what;
    EXPECT_EQ(a.svfDisableEpisodes, b.svfDisableEpisodes) << what;
    EXPECT_EQ(a.svfRefsWhileDisabled, b.svfRefsWhileDisabled)
        << what;
    EXPECT_EQ(a.scQuadsIn, b.scQuadsIn) << what;
    EXPECT_EQ(a.scQuadsOut, b.scQuadsOut) << what;
    EXPECT_EQ(a.scHits, b.scHits) << what;
    EXPECT_EQ(a.scMisses, b.scMisses) << what;
    EXPECT_EQ(a.dl1Hits, b.dl1Hits) << what;
    EXPECT_EQ(a.dl1Misses, b.dl1Misses) << what;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << what;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << what;

    const ckpt::SampleEstimate &ea = a.sampled, &eb = b.sampled;
    EXPECT_EQ(ea.intervals, eb.intervals) << what;
    EXPECT_EQ(ea.totalInsts, eb.totalInsts) << what;
    EXPECT_EQ(ea.ffInsts, eb.ffInsts) << what;
    EXPECT_EQ(ea.warmupInsts, eb.warmupInsts) << what;
    EXPECT_EQ(ea.sampledInsts, eb.sampledInsts) << what;
    EXPECT_EQ(ea.sampledCycles, eb.sampledCycles) << what;
    EXPECT_EQ(ea.estimatedCycles, eb.estimatedCycles) << what;
    // Bit-identical, not approximately equal: the fold order is
    // fixed regardless of which worker finished first.
    EXPECT_EQ(ea.ipcMean, eb.ipcMean) << what;
    EXPECT_EQ(ea.ipcStddev, eb.ipcStddev) << what;
    EXPECT_EQ(ea.counterVariance, eb.counterVariance) << what;

    EXPECT_EQ(a.output, b.output) << what;
    EXPECT_EQ(a.outputOk, b.outputOk) << what;
    EXPECT_EQ(a.completed, b.completed) << what;
}

void
sweepPjobs(harness::RunSetup s)
{
    s.pjobs = 1;
    harness::RunResult serial = harness::runExperiment(s);
    ASSERT_TRUE(serial.sampled.enabled());
    ASSERT_GT(serial.sampled.intervals, 0u);

    for (unsigned pj : {2u, 8u}) {
        s.pjobs = pj;
        harness::RunResult parallel = harness::runExperiment(s);
        expectByteIdentical(serial, parallel, pj);
    }
}

harness::RunSetup
mcfSetup()
{
    harness::RunSetup s;
    s.workload = "mcf";
    s.input = "inp";
    s.maxInsts = 200'000;
    s.machine = harness::baselineConfig(8);
    return s;
}

TEST(ParallelSample, ByteIdenticalAcrossPjobs)
{
    harness::RunSetup s = mcfSetup();
    s.sample = ckpt::SamplePlan::parse("8,500,2000");
    sweepPjobs(s);
}

TEST(ParallelSample, ByteIdenticalAcrossPjobsWhenWarming)
{
    // Warm plans serialize (warming folds over the whole stream, so
    // intervals are not independent); pjobs must still be a no-op on
    // the results, which is what this pins down.
    harness::RunSetup s = mcfSetup();
    s.sample = ckpt::SamplePlan::parse("6,200,1500,warm");
    sweepPjobs(s);
}

TEST(ParallelSample, ByteIdenticalOnSvfMachine)
{
    // The unit counters only move on an SVF machine; cover them too.
    harness::RunSetup s = mcfSetup();
    harness::applySvf(s.machine, 1024, 2);
    s.sample = ckpt::SamplePlan::parse("8,500,2000");
    sweepPjobs(s);
}

TEST(ParallelSample, ByteIdenticalAcrossPjobsWhenParallelWarming)
{
    // The pwarm plan is the parallel counterpart of ",warm": each
    // worker replays one chunk of functional warming from the
    // previous interval's snapshot, so intervals are independent
    // and the pjobs sweep must stay byte-identical.
    harness::RunSetup s = mcfSetup();
    s.sample = ckpt::SamplePlan::parse("6,200,1500,pwarm");
    sweepPjobs(s);
}

// --- Stress: many intervals through the pipelined engine ------------
//
// 64+ intervals keep the producer, the bounded queue and all workers
// live simultaneously for the whole run — the regime where a race
// between snapshot publication and consumption, or a fold-order slip,
// would actually show up (and where TSan gets real interleavings to
// chew on; the CI TSan job runs these by name).

TEST(ParallelSample, StressManyIntervals)
{
    harness::RunSetup s = mcfSetup();
    s.maxInsts = 640'000;
    s.sample = ckpt::SamplePlan::parse("64,200,800");
    sweepPjobs(s);
}

TEST(ParallelSample, StressManyIntervalsParallelWarm)
{
    harness::RunSetup s = mcfSetup();
    s.maxInsts = 640'000;
    s.sample = ckpt::SamplePlan::parse("64,200,800,pwarm");
    sweepPjobs(s);
}

TEST(ParallelSample, StressManyIntervalsMultiCore)
{
    // cores>1 snapshots every program at once (captureMulti) into
    // the same frozen CoW page sets and the windows restore them
    // via restoreMulti; the fold is serial over intervals, so pjobs
    // must be a byte-exact no-op here too.
    harness::RunSetup s;
    s.workload = "mcf,gzip";
    s.input = "inp,program";
    s.cores = 2;
    s.maxInsts = 320'000;
    s.machine = harness::baselineConfig(8);
    s.sample = ckpt::SamplePlan::parse("64,100,400");
    sweepPjobs(s);
}

TEST(ParallelSample, PjobsDoesNotChangeTheSetupKey)
{
    harness::RunSetup a = mcfSetup();
    a.sample = ckpt::SamplePlan::parse("8,500,2000");
    harness::RunSetup b = a;
    b.pjobs = 8;
    // Host-side parallelism, like ckptDir, is not an input.
    EXPECT_EQ(a.key(), b.key());
}

} // anonymous namespace
