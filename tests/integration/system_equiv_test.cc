/**
 * @file
 * The uarch::System compatibility contract (uarch/system.hh):
 *
 *   - cores=1 slice=0 — the default every existing experiment uses —
 *     is bit-identical to driving an OooCore directly: every
 *     CoreStats counter and every SVF/stack-cache/hierarchy unit
 *     counter matches on all registered workloads, for the
 *     baseline, the SVF machine, and the SVF machine with the
 *     legacy ctx_period flush injector;
 *   - cores=N produces byte-identical results regardless of how
 *     many harness threads fan the cores out (pjobs=);
 *   - slice=Q runs are deterministic from run to run and commit the
 *     full per-program budget.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ckpt/sampler.hh"
#include "harness/experiment.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"
#include "workloads/registry.hh"

namespace svf::harness
{
namespace
{

struct ConfigCase
{
    std::string name;
    uarch::MachineConfig machine;
};

std::vector<ConfigCase>
configs()
{
    std::vector<ConfigCase> out;
    out.push_back({"base16_2p", baselineConfig(16, 2)});
    {
        auto m = baselineConfig(16, 2);
        applySvf(m, 1024, 2);
        out.push_back({"svf8k_2p", m});
    }
    {
        auto m = baselineConfig(16, 2);
        applySvf(m, 1024, 2);
        m.contextSwitchPeriod = 10'000;
        out.push_back({"svf_ctxswitch", m});
    }
    return out;
}

/** The pre-System drive loop: one oracle, one core, run(). */
RunResult
legacyRun(const isa::Program &prog, const uarch::MachineConfig &m,
          std::uint64_t budget)
{
    sim::Emulator oracle(prog);
    uarch::OooCore core(m, oracle);
    core.run(budget);

    RunResult r;
    r.core = core.stats();
    r.completed = oracle.halted();
    r.output = oracle.output();
    const core::SvfUnit &svf = core.svfUnit();
    if (svf.enabled()) {
        r.svfQuadsIn = svf.svf().quadsIn();
        r.svfQuadsOut = svf.svf().quadsOut();
        r.svfFastLoads = svf.fastLoads();
        r.svfFastStores = svf.fastStores();
        r.svfReroutedLoads = svf.reroutedLoads();
        r.svfReroutedStores = svf.reroutedStores();
        r.svfWindowMisses = svf.windowMisses();
        r.svfDemandFills = svf.svf().demandFills();
        r.svfDisableEpisodes = svf.disableEpisodes();
        r.svfRefsWhileDisabled = svf.refsWhileDisabled();
    }
    if (const mem::StackCache *sc = core.stackCache()) {
        r.scQuadsIn = sc->quadsIn();
        r.scQuadsOut = sc->quadsOut();
        r.scHits = sc->hits();
        r.scMisses = sc->misses();
    }
    r.dl1Hits = core.hier().dl1().hits();
    r.dl1Misses = core.hier().dl1().misses();
    r.l2Hits = core.hier().l2().hits();
    r.l2Misses = core.hier().l2().misses();
    return r;
}

void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &what)
{
    for (const ckpt::CoreCounter &c : ckpt::coreCounters()) {
        EXPECT_EQ(a.core.*(c.field), b.core.*(c.field))
            << what << ": CoreStats::" << c.name;
    }
    EXPECT_EQ(a.svfQuadsIn, b.svfQuadsIn) << what;
    EXPECT_EQ(a.svfQuadsOut, b.svfQuadsOut) << what;
    EXPECT_EQ(a.svfFastLoads, b.svfFastLoads) << what;
    EXPECT_EQ(a.svfFastStores, b.svfFastStores) << what;
    EXPECT_EQ(a.svfReroutedLoads, b.svfReroutedLoads) << what;
    EXPECT_EQ(a.svfReroutedStores, b.svfReroutedStores) << what;
    EXPECT_EQ(a.svfWindowMisses, b.svfWindowMisses) << what;
    EXPECT_EQ(a.svfDemandFills, b.svfDemandFills) << what;
    EXPECT_EQ(a.svfDisableEpisodes, b.svfDisableEpisodes) << what;
    EXPECT_EQ(a.svfRefsWhileDisabled, b.svfRefsWhileDisabled)
        << what;
    EXPECT_EQ(a.scQuadsIn, b.scQuadsIn) << what;
    EXPECT_EQ(a.scQuadsOut, b.scQuadsOut) << what;
    EXPECT_EQ(a.scHits, b.scHits) << what;
    EXPECT_EQ(a.scMisses, b.scMisses) << what;
    EXPECT_EQ(a.dl1Hits, b.dl1Hits) << what;
    EXPECT_EQ(a.dl1Misses, b.dl1Misses) << what;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << what;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << what;
    EXPECT_EQ(a.completed, b.completed) << what;
    EXPECT_EQ(a.output, b.output) << what;
}

TEST(SystemEquiv, SingleCoreMatchesLegacyPathEverywhere)
{
    for (const auto &spec : workloads::allWorkloads()) {
        for (const ConfigCase &cc : configs()) {
            RunSetup setup;
            setup.workload = spec.name;
            setup.input = spec.inputs[0];
            setup.scale = spec.testScale;
            setup.maxInsts = 100'000'000;   // run to completion
            setup.machine = cc.machine;
            RunResult sys = runExperiment(setup);
            EXPECT_TRUE(sys.perCore.empty());

            isa::Program prog =
                spec.build(spec.inputs[0], spec.testScale);
            RunResult legacy =
                legacyRun(prog, cc.machine, setup.maxInsts);
            expectIdentical(sys, legacy,
                            spec.name + "/" + cc.name);
        }
    }
}

TEST(SystemEquiv, MultiCoreIndependentOfThreadCount)
{
    RunSetup setup;
    setup.workload = "gzip,gcc";
    setup.cores = 2;
    setup.maxInsts = 40'000;
    setup.machine = baselineConfig(16, 2);
    applySvf(setup.machine, 1024, 2);

    setup.pjobs = 1;
    RunResult serial = runExperiment(setup);
    setup.pjobs = 4;
    RunResult threaded = runExperiment(setup);

    expectIdentical(serial, threaded, "2-core pjobs 1 vs 4");
    ASSERT_EQ(serial.perCore.size(), 2u);
    ASSERT_EQ(threaded.perCore.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(serial.perCore[i].label, threaded.perCore[i].label);
        expectIdentical(serial.perCore[i], threaded.perCore[i],
                        "2-core group " + serial.perCore[i].label);
    }
    // Aggregate semantics: cycles is the across-cores max, committed
    // the sum.
    EXPECT_EQ(serial.core.cycles,
              std::max(serial.perCore[0].core.cycles,
                       serial.perCore[1].core.cycles));
    EXPECT_EQ(serial.core.committed,
              serial.perCore[0].core.committed +
                  serial.perCore[1].core.committed);
}

TEST(SystemEquiv, SliceRunsAreDeterministic)
{
    RunSetup setup;
    setup.workload = "gzip,gcc";
    setup.slicePeriod = 10'000;
    setup.maxInsts = 40'000;
    setup.machine = baselineConfig(16, 2);
    applySvf(setup.machine, 1024, 2);

    RunResult a = runExperiment(setup);
    RunResult b = runExperiment(setup);
    expectIdentical(a, b, "slice run-to-run");
    ASSERT_EQ(a.perCore.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        expectIdentical(a.perCore[i], b.perCore[i],
                        "slice group " + a.perCore[i].label);
        // Each program got its full per-program budget.
        EXPECT_EQ(a.perCore[i].core.committed, setup.maxInsts);
    }
    // The slices context-switched with real flushes.
    EXPECT_GE(a.core.ctxSwitches, 6u);
    EXPECT_GT(a.core.svfCtxBytes, 0u);
}

TEST(SystemEquiv, QuantumIsInKeyOnlyForDriveModes)
{
    RunSetup a;
    a.workload = "gzip";
    RunSetup b = a;
    b.sysQuantum = 4096;
    // cores=1 slice=0: the quantum can't matter, and the key must
    // not change (existing caches stay valid).
    EXPECT_EQ(a.key(), b.key());

    a.cores = 2;
    b.cores = 2;
    EXPECT_NE(a.key(), b.key());
    b.sysQuantum = a.sysQuantum;
    EXPECT_EQ(a.key(), b.key());

    RunSetup sliced = a;
    sliced.cores = 1;
    sliced.slicePeriod = 10'000;
    EXPECT_NE(sliced.key(), a.key());
}

} // anonymous namespace
} // namespace svf::harness
