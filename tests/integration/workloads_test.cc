/**
 * @file
 * Workload validation: every benchmark/input pair must reproduce its
 * golden-model output, and its stack personality must land in the
 * band the paper reports for the benchmark it stands in for
 * (Figures 1-3 of the paper).
 */

#include <gtest/gtest.h>

#include "sim/emulator.hh"
#include "workloads/calibration.hh"
#include "workloads/registry.hh"

namespace svf::workloads
{
namespace
{

struct Case
{
    std::string workload;
    std::string input;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &w : allWorkloads()) {
        for (const auto &in : w.inputs)
            cases.push_back({w.name, in});
    }
    return cases;
}

class WorkloadCase : public testing::TestWithParam<Case>
{
  protected:
    const WorkloadSpec &spec() { return workload(GetParam().workload); }
};

TEST_P(WorkloadCase, MatchesGoldenModelAtTestScale)
{
    const WorkloadSpec &w = spec();
    isa::Program p = w.build(GetParam().input, w.testScale);
    sim::Emulator emu(p);
    emu.run(100'000'000);
    ASSERT_TRUE(emu.halted()) << "did not halt";
    EXPECT_EQ(emu.output(),
              w.expected(GetParam().input, w.testScale));
}

TEST_P(WorkloadCase, NoReferencesBelowTos)
{
    // The paper: "No references are beyond the top of the stack for
    // these benchmarks."
    const WorkloadSpec &w = spec();
    isa::Program p = w.build(GetParam().input, w.testScale);
    StackProfile prof = profileProgram(p, 100'000'000);
    EXPECT_EQ(prof.belowTos, 0u);
}

TEST_P(WorkloadCase, OffsetLocalityWithin8K)
{
    // Figure 3: over 99% of references within 8KB of the TOS for
    // everything except gcc.
    const WorkloadSpec &w = spec();
    isa::Program p = w.build(GetParam().input, w.testScale);
    StackProfile prof = profileProgram(p, 100'000'000);
    if (w.name == "gcc") {
        EXPECT_LT(prof.within8k, 0.999);
    } else {
        EXPECT_GT(prof.within8k, 0.99);
    }
}

TEST_P(WorkloadCase, DeterministicAcrossBuilds)
{
    const WorkloadSpec &w = spec();
    isa::Program a = w.build(GetParam().input, w.testScale);
    isa::Program b = w.build(GetParam().input, w.testScale);
    ASSERT_EQ(a.sections.size(), b.sections.size());
    for (size_t i = 0; i < a.sections.size(); ++i) {
        EXPECT_EQ(a.sections[i].base, b.sections[i].base);
        EXPECT_EQ(a.sections[i].bytes, b.sections[i].bytes);
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadCase, testing::ValuesIn(allCases()),
    [](const testing::TestParamInfo<Case> &info) {
        std::string name = info.param.workload + "_" +
                           info.param.input;
        for (auto &c : name) {
            if (c == '-' || c == '.')
                c = '_';
        }
        return name;
    });

TEST(WorkloadRegistry, HasAllTwelveBenchmarks)
{
    EXPECT_EQ(allWorkloads().size(), 12u);
    for (const char *name :
         {"bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
          "parser", "perlbmk", "twolf", "vortex", "vpr"}) {
        EXPECT_NO_FATAL_FAILURE(workload(name));
    }
}

TEST(WorkloadRegistry, Table1InputsPresent)
{
    EXPECT_EQ(workload("bzip2").inputs.size(), 2u);
    EXPECT_EQ(workload("gzip").inputs.size(), 3u);
    EXPECT_EQ(workload("gcc").inputs.size(), 2u);
    EXPECT_EQ(workload("eon").inputs.size(), 2u);
    EXPECT_EQ(workload("perlbmk").paperName, "253.perlbmk");
}

TEST(WorkloadRegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(workload("quake"), testing::ExitedWithCode(1),
                "unknown workload");
}

/** Figure 1 personalities: the per-benchmark region mixes. */
TEST(WorkloadPersonality, EonIsGprHeavy)
{
    const WorkloadSpec &w = workload("eon");
    StackProfile prof = profileProgram(w.build("cook", w.testScale),
                                       100'000'000);
    // Over 45% of eon's stack accesses go through a $gpr (paper,
    // Section 2).
    double gpr_frac = double(prof.stackGpr) / double(prof.stackRefs);
    EXPECT_GT(gpr_frac, 0.45);
}

TEST(WorkloadPersonality, MostBenchmarksAreSpDominant)
{
    // $sp-relative addressing dominates stack access (82% average
    // in the paper) for everything except eon.
    for (const auto &w : allWorkloads()) {
        if (w.name == "eon")
            continue;
        StackProfile prof = profileProgram(
            w.build(w.inputs[0], w.testScale), 20'000'000);
        if (prof.stackRefs == 0)
            continue;
        double sp_frac = prof.spFraction();
        EXPECT_GT(sp_frac, 0.5) << w.name;
    }
}

TEST(WorkloadPersonality, McfIsHeapDominant)
{
    const WorkloadSpec &w = workload("mcf");
    StackProfile prof = profileProgram(w.build("inp", w.testScale),
                                       100'000'000);
    EXPECT_GT(double(prof.heapRefs) / double(prof.memRefs), 0.6);
}

TEST(WorkloadPersonality, GccHasTheDeepestStack)
{
    const WorkloadSpec &gcc = workload("gcc");
    StackProfile prof = profileProgram(
        gcc.build("cp-decl", gcc.testScale), 100'000'000);
    // Deeper than the 8KB (1000-word) SVF of the paper.
    EXPECT_GT(prof.maxDepthWords, 1000u);
}

TEST(WorkloadPersonality, GzipStackFootprintTiny)
{
    const WorkloadSpec &w = workload("gzip");
    StackProfile prof = profileProgram(w.build("log", w.testScale),
                                       100'000'000);
    EXPECT_LT(prof.maxDepthWords, 32u);
}

TEST(WorkloadPersonality, StackIsTheBiggestRegionOnAverage)
{
    // Figure 1: stack references average 56% of all memory accesses.
    double sum = 0.0;
    int n = 0;
    for (const auto &w : allWorkloads()) {
        StackProfile prof = profileProgram(
            w.build(w.inputs[0], w.testScale), 20'000'000);
        sum += prof.stackFraction();
        ++n;
    }
    double avg = sum / n;
    EXPECT_GT(avg, 0.35);
    EXPECT_LT(avg, 0.85);
}

} // anonymous namespace
} // namespace svf::workloads
