/**
 * @file
 * Tracing is an observer: counters are bit-identical with trace= off
 * or on (and, via the SVF_TRACING=OFF CI configuration, compiled
 * out — this suite runs unchanged in that build, where the traced
 * run simply produces no file).
 *
 * Coverage: every workload in the registry × both issue schedulers
 * on the SVF machine (the emit sites live in the scheduler-driven
 * dispatch/issue/commit loops), a full RunResult diff per run via
 * the counter registry; plus the sampled engines (serial warm and
 * parallel cold with pjobs=2, whose per-interval tracers merge in
 * interval order) and the trace file's own integrity (binary
 * round-trip, category/window filtering at emit time).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/counters.hh"
#include "harness/experiment.hh"
#include "trace/trace.hh"
#include "uarch/machine_config.hh"
#include "workloads/registry.hh"

namespace svf::harness
{
namespace
{

constexpr std::uint64_t kInsts = 20'000;

std::string
tracePath(const std::string &tag)
{
    return testing::TempDir() + "trace_equiv_" + tag + ".bin";
}

void
removeTrace(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".json").c_str());
}

/** Full registry diff plus correctness flags and program output. */
void
expectRunResultsEq(const RunResult &off, const RunResult &on,
                   const std::string &what)
{
    for (const CounterDef *d : runCounters())
        EXPECT_EQ(d->get(off), d->get(on)) << what << ": " << d->name();
    EXPECT_EQ(off.completed, on.completed) << what;
    EXPECT_EQ(off.outputOk, on.outputOk) << what;
    EXPECT_EQ(off.output, on.output) << what;
}

/** Run @p setup untraced and traced; both must agree exactly. */
void
expectTraceInvisible(RunSetup setup, const std::string &tag)
{
    setup.trace = trace::TraceSpec();
    RunResult off = runExperiment(setup);

    const std::string path = tracePath(tag);
    setup.trace = trace::TraceSpec::parse(path);
    RunResult on = runExperiment(setup);

    expectRunResultsEq(off, on, tag);

    std::vector<trace::Event> events;
    if (trace::kTracingCompiled) {
        // The traced run must actually have produced a loadable,
        // digest-valid, non-empty stream.
        ASSERT_TRUE(trace::readBinary(path, events)) << tag;
        EXPECT_GT(events.size(), 0u) << tag;
    } else {
        EXPECT_FALSE(trace::readBinary(path, events)) << tag;
    }
    removeTrace(path);
}

/** All 12 workloads × scan/event sched, full-run engine. */
TEST(TraceEquiv, AllWorkloadsBothSchedsBitIdentical)
{
    for (const auto &spec : workloads::allWorkloads()) {
        for (uarch::SchedKind sched :
             {uarch::SchedKind::Scan, uarch::SchedKind::Event}) {
            RunSetup s;
            s.workload = spec.name;
            s.input = spec.inputs.front();
            s.maxInsts = kInsts;
            s.machine = baselineConfig(16);
            applySvf(s.machine, 1024, 2);
            s.machine.sched = sched;

            const std::string tag =
                spec.name + (sched == uarch::SchedKind::Scan
                                 ? "_scan" : "_event");
            expectTraceInvisible(s, tag);
            ASSERT_FALSE(HasFailure())
                << "first divergence at " << tag;
        }
    }
}

/** The stack-cache machine exercises the ScHit/ScMiss emit sites. */
TEST(TraceEquiv, StackCacheMachineBitIdentical)
{
    RunSetup s;
    s.workload = "mcf";
    s.input = "inp";
    s.maxInsts = kInsts;
    s.machine = baselineConfig(16);
    applyStackCache(s.machine, 8 * 1024, 2);
    expectTraceInvisible(s, "stack_cache");
}

/** Context switching exercises the SvfWriteback emit site. */
TEST(TraceEquiv, ContextSwitchMachineBitIdentical)
{
    RunSetup s;
    s.workload = "gzip";
    s.input = "program";
    s.maxInsts = kInsts;
    s.machine = baselineConfig(16);
    applySvf(s.machine, 1024, 2);
    s.machine.contextSwitchPeriod = 5'000;
    expectTraceInvisible(s, "ctx_switch");
}

/** Sampled parallel engine, pjobs=2: per-interval tracers merge in
 *  interval order and never perturb the counters. */
TEST(TraceEquiv, SampledParallelBitIdentical)
{
    RunSetup s;
    s.workload = "mcf";
    s.input = "inp";
    s.maxInsts = 200'000;
    s.machine = baselineConfig(16);
    applySvf(s.machine, 1024, 2);
    s.sample = ckpt::SamplePlan::parse("4,500,4000");
    s.pjobs = 2;
    expectTraceInvisible(s, "sampled_cold");

    if (trace::kTracingCompiled) {
        // Worker-order independence of the merged stream: same trace
        // for pjobs=1 and pjobs=2.
        const std::string p1 = tracePath("pjobs1");
        const std::string p2 = tracePath("pjobs2");
        s.trace = trace::TraceSpec::parse(p1);
        s.pjobs = 1;
        runExperiment(s);
        s.trace = trace::TraceSpec::parse(p2);
        s.pjobs = 2;
        runExperiment(s);
        std::vector<trace::Event> e1, e2;
        ASSERT_TRUE(trace::readBinary(p1, e1));
        ASSERT_TRUE(trace::readBinary(p2, e2));
        ASSERT_EQ(e1.size(), e2.size());
        for (std::size_t i = 0; i < e1.size(); ++i) {
            ASSERT_TRUE(e1[i].cycle == e2[i].cycle &&
                        e1[i].op == e2[i].op &&
                        e1[i].stream == e2[i].stream &&
                        e1[i].a0 == e2[i].a0 && e1[i].a1 == e2[i].a1)
                << "event " << i << " differs between pjobs=1 and 2";
        }
        removeTrace(p1);
        removeTrace(p2);
    }
}

/** Sampled serial warm engine. */
TEST(TraceEquiv, SampledWarmBitIdentical)
{
    RunSetup s;
    s.workload = "gzip";
    s.input = "program";
    s.maxInsts = 200'000;
    s.machine = baselineConfig(16);
    applySvf(s.machine, 1024, 2);
    s.sample = ckpt::SamplePlan::parse("3,500,4000,warm");
    expectTraceInvisible(s, "sampled_warm");
}

/** Category mask and cycle window filter at emit time. */
TEST(TraceEquiv, CategoryAndWindowFiltering)
{
    if (!trace::kTracingCompiled)
        GTEST_SKIP() << "emit sites compiled out (SVF_TRACING=OFF)";

    RunSetup s;
    s.workload = "mcf";
    s.input = "inp";
    s.maxInsts = kInsts;
    s.machine = baselineConfig(16);
    applySvf(s.machine, 1024, 2);

    const std::string path = tracePath("filtered");
    s.trace = trace::TraceSpec::parse(path + ",svf+cache,100,5000");
    runExperiment(s);

    std::vector<trace::Event> events;
    ASSERT_TRUE(trace::readBinary(path, events));
    EXPECT_GT(events.size(), 0u);
    for (const trace::Event &e : events) {
        std::uint32_t cat = trace::opCategory(trace::Op(e.op));
        EXPECT_TRUE(cat == trace::CatSvf || cat == trace::CatCache)
            << trace::opName(trace::Op(e.op));
        EXPECT_GE(e.cycle, 100u);
        EXPECT_LT(e.cycle, 5100u);
    }
    removeTrace(path);
}

} // anonymous namespace
} // namespace svf::harness
