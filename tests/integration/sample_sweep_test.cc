/**
 * @file
 * Tier-2 sampling accuracy sweep: for every workload, an
 * interval-sampled run must estimate the full detailed run's IPC
 * within a loose tolerance, and the run's coverage identity
 * (fast-forwarded + warmup + measured = total) must hold.
 *
 * This is an accuracy smoke test, not a precision benchmark: the
 * kernels are phase-heavy at small scales, so the tolerance is wide.
 * Systematic breakage (sampling the wrong windows, counters leaking
 * across the warmup boundary, a non-resumable core) shows up as
 * order-of-magnitude errors, which is what this guards against.
 *
 * The plan uses functional warming: without it, workloads with
 * large working sets (vortex most of all) pay cold caches at every
 * window start and under-estimate IPC by 2x — the documented bias
 * the ",warm" option exists to remove (docs/model.md).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "workloads/registry.hh"

using namespace svf;

namespace
{

class SampleSweep : public testing::TestWithParam<const char *>
{};

TEST_P(SampleSweep, SampledIpcTracksFullRun)
{
    const workloads::WorkloadSpec &spec =
        workloads::workload(GetParam());

    harness::RunSetup full;
    full.workload = spec.name;
    full.input = spec.inputs[0];
    full.maxInsts = 400'000;
    full.machine = harness::baselineConfig(8);

    harness::RunSetup sampled = full;
    sampled.sample = ckpt::SamplePlan::parse("10,2000,8000,warm");

    harness::RunResult fr = harness::runExperiment(full);
    harness::RunResult sr = harness::runExperiment(sampled);

    ASSERT_TRUE(sr.sampled.enabled());
    EXPECT_EQ(sr.sampled.ffInsts + sr.sampled.warmupInsts +
                  sr.sampled.sampledInsts,
              sr.sampled.totalInsts);
    EXPECT_EQ(sr.completed, fr.completed);
    EXPECT_EQ(sr.output, fr.output);

    ASSERT_GT(fr.ipc(), 0.0);
    ASSERT_GT(sr.sampled.ipcMean, 0.0);
    double rel = std::fabs(sr.sampled.ipcMean - fr.ipc()) / fr.ipc();
    EXPECT_LT(rel, 0.25)
        << spec.name << ": sampled IPC " << sr.sampled.ipcMean
        << " vs full " << fr.ipc();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SampleSweep,
    testing::Values("bzip2", "crafty", "eon", "gap", "gcc", "gzip",
                    "mcf", "parser", "perlbmk", "twolf", "vortex",
                    "vpr"),
    [](const testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

} // anonymous namespace
