/**
 * @file
 * Tier-2 smoke test: a full Figure-9-shaped sweep through the
 * experiment runner.
 *
 * Every workload's first input runs the cycle model at three machine
 * points (baseline, (2+0), (2+2)svf) plus a traffic measurement and
 * a stack profile, all in one plan over the thread pool. The point
 * is breadth, not numbers: every workload × every job kind must
 * execute, memoize and serialize cleanly. Labelled tier2 — run with
 * `ctest -L tier2` (it is an order of magnitude slower than the
 * tier1 suite).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/experiment.hh"
#include "harness/json_report.hh"
#include "harness/runner.hh"
#include "workloads/registry.hh"

using namespace svf;
using namespace svf::harness;

namespace
{

constexpr std::uint64_t kRunInsts = 50'000;
constexpr std::uint64_t kTrafficInsts = 200'000;

TEST(SweepSmoke, FullSweepThroughRunner)
{
    const auto &specs = workloads::allWorkloads();
    ASSERT_EQ(specs.size(), 12u);

    ExperimentPlan plan;
    size_t jobs_per_workload = 0;
    for (const auto &spec : specs) {
        const std::string &input = spec.inputs.front();
        const std::string display = spec.name + "." + input;
        size_t before = plan.size();

        RunSetup base;
        base.workload = spec.name;
        base.input = input;
        base.maxInsts = kRunInsts;
        base.machine = baselineConfig(16, 1);
        plan.add(display + "/base(1+0)", base);

        RunSetup two_ports = base;
        two_ports.machine = baselineConfig(16, 2);
        plan.add(display + "/base(2+0)", two_ports);

        RunSetup with_svf = two_ports;
        applySvf(with_svf.machine, 1024, 2);
        plan.add(display + "/(2+2)svf", with_svf);

        TrafficSetup traffic;
        traffic.workload = spec.name;
        traffic.input = input;
        traffic.maxInsts = kTrafficInsts;
        plan.add(display + "/traffic", traffic);

        ProfileSetup profile;
        profile.workload = spec.name;
        profile.input = input;
        profile.maxInsts = kTrafficInsts;
        plan.add(display + "/profile", profile);

        jobs_per_workload = plan.size() - before;
    }

    Runner runner;       // jobs=0: hardware concurrency
    const auto res = runner.run(plan);
    ASSERT_EQ(res.size(), plan.size());
    EXPECT_EQ(runner.executions(), plan.size());
    EXPECT_EQ(runner.memoHits(), 0u);

    for (size_t w = 0; w < specs.size(); ++w) {
        const JobOutcome *jobs = &res[w * jobs_per_workload];
        SCOPED_TRACE(specs[w].name);

        // Each machine point simulated something, and adding ports
        // (or the SVF) never slows the machine down.
        const RunResult &base = jobs[0].run();
        const RunResult &two = jobs[1].run();
        const RunResult &svf = jobs[2].run();
        EXPECT_GT(base.core.cycles, 0u);
        EXPECT_GT(base.core.committed, 0u);
        EXPECT_TRUE(base.outputOk);
        EXPECT_TRUE(two.outputOk);
        EXPECT_TRUE(svf.outputOk);
        // Adding ports or the SVF must not meaningfully slow the
        // machine (2% slack: squash-prone codes can give a little
        // back at this budget).
        EXPECT_LE(two.core.cycles,
                  base.core.cycles + base.core.cycles / 50);
        EXPECT_LE(svf.core.cycles,
                  two.core.cycles + two.core.cycles / 50);
        EXPECT_GT(svf.svfFastLoads + svf.svfFastStores +
                      svf.svfReroutedLoads + svf.svfReroutedStores,
                  0u);

        const TrafficResult &traffic = jobs[3].traffic();
        EXPECT_GT(traffic.insts, 0u);

        const workloads::StackProfile &prof = jobs[4].profile();
        EXPECT_GT(prof.memRefs, 0u);
        EXPECT_GT(prof.stackRefs, 0u);
    }

    // The whole sweep serializes: one record per job, parseable
    // structure markers present.
    JsonReport report;
    report.add(res);
    EXPECT_EQ(report.size(), plan.size());
    std::ostringstream os;
    report.write(os);
    const std::string doc = os.str();
    EXPECT_EQ(doc.find('{'), 0u);
    EXPECT_NE(doc.find("\"schema\": \"svf-bench-1\""),
              std::string::npos);

    // Re-running the identical plan is served entirely by the memo.
    const auto again = runner.run(plan);
    EXPECT_EQ(runner.executions(), plan.size());
    EXPECT_EQ(runner.memoHits(), plan.size());
    for (size_t i = 0; i < res.size(); ++i) {
        EXPECT_TRUE(again[i].cached);
        EXPECT_EQ(again[i].key, res[i].key);
    }
}

} // anonymous namespace
