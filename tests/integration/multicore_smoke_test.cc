/**
 * @file
 * tier2 multicore smoke (ctest -L multicore_smoke): drive the
 * componentized System hard enough to shake out races and
 * displacement bugs that the fast tier1 checks can't reach —
 * 2-core shared-L2 runs and 2-program slice runs to completion,
 * with the golden-output check on every program. Built for the
 * Release and TSan CI jobs both; under TSan the epoch fan-out is
 * the interesting part.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.hh"
#include "workloads/registry.hh"

namespace svf::harness
{
namespace
{

uarch::MachineConfig
svfMachine()
{
    auto m = baselineConfig(16, 2);
    applySvf(m, 1024, 2);
    return m;
}

TEST(MulticoreSmoke, TwoCoresRunMixToCompletion)
{
    RunSetup setup;
    setup.workload = "gzip,parser";
    setup.scale = workloads::workload("gzip").testScale;
    setup.cores = 2;
    setup.pjobs = 2;            // fan the cores over real threads
    setup.maxInsts = 100'000'000;
    setup.machine = svfMachine();

    RunResult r = runExperiment(setup);
    ASSERT_EQ(r.perCore.size(), 2u);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.outputOk);
    for (const RunResult &g : r.perCore) {
        EXPECT_TRUE(g.completed) << g.label;
        EXPECT_TRUE(g.outputOk) << g.label;
        EXPECT_GT(g.core.committed, 0u) << g.label;
    }
    // The cores really shared the L2.
    EXPECT_GT(r.l2Hits + r.l2Misses, 0u);
}

TEST(MulticoreSmoke, TwoProgramSliceRunsToCompletion)
{
    RunSetup setup;
    setup.workload = "gzip,parser";
    setup.scale = workloads::workload("gzip").testScale;
    setup.slicePeriod = 20'000;
    setup.maxInsts = 100'000'000;
    setup.machine = svfMachine();

    RunResult r = runExperiment(setup);
    ASSERT_EQ(r.perCore.size(), 2u);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.outputOk);
    for (const RunResult &g : r.perCore) {
        EXPECT_TRUE(g.completed) << g.label;
        EXPECT_TRUE(g.outputOk) << g.label;
    }
    EXPECT_GT(r.core.ctxSwitches, 0u);
    EXPECT_GT(r.core.svfCtxBytes, 0u);
}

TEST(MulticoreSmoke, FourCoresDeterministicAcrossThreadCounts)
{
    RunSetup setup;
    setup.workload = "gzip,gcc,mcf,parser";
    setup.cores = 4;
    setup.maxInsts = 60'000;
    setup.machine = svfMachine();

    setup.pjobs = 1;
    RunResult serial = runExperiment(setup);
    setup.pjobs = 4;
    RunResult threaded = runExperiment(setup);

    EXPECT_EQ(serial.core.cycles, threaded.core.cycles);
    EXPECT_EQ(serial.core.committed, threaded.core.committed);
    EXPECT_EQ(serial.l2Hits, threaded.l2Hits);
    EXPECT_EQ(serial.l2Misses, threaded.l2Misses);
    ASSERT_EQ(serial.perCore.size(), threaded.perCore.size());
    for (size_t i = 0; i < serial.perCore.size(); ++i) {
        EXPECT_EQ(serial.perCore[i].core.cycles,
                  threaded.perCore[i].core.cycles) << i;
        EXPECT_EQ(serial.perCore[i].dl1Misses,
                  threaded.perCore[i].dl1Misses) << i;
    }
}

} // anonymous namespace
} // namespace svf::harness
