/**
 * @file
 * Properties of the architectural traffic replayer
 * (harness/traffic.hh) and its consistency with the cycle model:
 * traffic between a stack structure and the next memory level is a
 * property of the reference stream, so the fast functional replay
 * must agree with the full pipeline simulation exactly.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/traffic.hh"
#include "workloads/registry.hh"

namespace svf::harness
{
namespace
{

struct Case
{
    std::string workload;
    std::string input;
};

class TrafficConsistency : public testing::TestWithParam<Case>
{
};

TEST_P(TrafficConsistency, ReplayMatchesCycleModelSvfTraffic)
{
    const auto &spec = workloads::workload(GetParam().workload);

    TrafficSetup ts;
    ts.workload = GetParam().workload;
    ts.input = GetParam().input;
    ts.scale = spec.testScale;
    ts.maxInsts = 100'000'000;
    ts.capacityBytes = 2048;
    TrafficResult fast = measureTraffic(ts);

    RunSetup rs;
    rs.workload = ts.workload;
    rs.input = ts.input;
    rs.scale = spec.testScale;
    rs.maxInsts = 100'000'000;
    rs.machine = baselineConfig(16, 2);
    applySvf(rs.machine, 2048 / 8, 2);
    RunResult slow = runExperiment(rs);

    EXPECT_TRUE(slow.completed);
    EXPECT_EQ(fast.svfQuadsIn, slow.svfQuadsIn);
    EXPECT_EQ(fast.svfQuadsOut, slow.svfQuadsOut);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TrafficConsistency,
    testing::Values(Case{"crafty", "ref"}, Case{"eon", "cook"},
                    Case{"gcc", "integrate"}, Case{"bzip2", "program"},
                    Case{"gzip", "log"}),
    [](const testing::TestParamInfo<Case> &info) {
        return info.param.workload + "_" + info.param.input;
    });

TEST(Traffic, CapacityLargelyReducesTraffic)
{
    // Stack-cache traffic shrinks with capacity on these workloads,
    // and an 8KB SVF always moves no more than a 2KB one. (Strict
    // per-step SVF monotonicity does not hold in general: a larger
    // window *covers more* far references, absorbing accesses a
    // small window would have left to the DL1 — a Belady-style
    // anomaly the crafty history table exposes.)
    for (const char *wl : {"gcc", "crafty", "eon"}) {
        const auto &spec = workloads::workload(wl);
        std::uint64_t prev_sc = ~0ull;
        std::uint64_t svf_2k = 0;
        std::uint64_t svf_8k = 0;
        for (std::uint64_t kb : {2, 4, 8}) {
            TrafficSetup ts;
            ts.workload = wl;
            ts.input = spec.inputs[0];
            ts.scale = spec.testScale;
            ts.maxInsts = 100'000'000;
            ts.capacityBytes = kb * 1024;
            TrafficResult r = measureTraffic(ts);
            EXPECT_LE(r.scQuadsIn, prev_sc) << wl << " " << kb;
            prev_sc = r.scQuadsIn;
            if (kb == 2)
                svf_2k = r.svfQuadsIn + r.svfQuadsOut;
            if (kb == 8)
                svf_8k = r.svfQuadsIn + r.svfQuadsOut;
        }
        // Allow a one-time demand-fill allowance: when the bigger
        // window covers a read-before-write region (crafty's
        // history table), first-touch reads fill words the small
        // window had left to the DL1 entirely.
        EXPECT_LE(svf_8k, svf_2k + 256) << wl;
    }
}

TEST(Traffic, SvfBeatsStackCacheOnChurnyWorkloads)
{
    // Table 3's headline at 2KB.
    for (const char *wl : {"crafty", "eon", "gcc", "twolf"}) {
        const auto &spec = workloads::workload(wl);
        TrafficSetup ts;
        ts.workload = wl;
        ts.input = spec.inputs[0];
        ts.scale = spec.testScale;
        ts.maxInsts = 100'000'000;
        ts.capacityBytes = 2048;
        TrafficResult r = measureTraffic(ts);
        EXPECT_LT(r.svfQuadsIn, r.scQuadsIn) << wl;
    }
}

TEST(Traffic, ContextSwitchAccounting)
{
    const auto &spec = workloads::workload("crafty");
    TrafficSetup ts;
    ts.workload = "crafty";
    ts.input = "ref";
    ts.scale = spec.testScale;
    ts.maxInsts = 100'000'000;
    ts.slicePeriod = 10'000;
    TrafficResult r = measureTraffic(ts);
    EXPECT_GT(r.ctxSwitches, 5u);
    EXPECT_GT(r.scCtxBytes, 0u);
    EXPECT_GT(r.svfCtxBytes, 0u);
    // Per-word dirty bits never flush more than whole lines.
    EXPECT_LE(r.svfCtxBytes, r.scCtxBytes);
}

TEST(Traffic, AblationFlagsFlowThrough)
{
    const auto &spec = workloads::workload("crafty");
    TrafficSetup base;
    base.workload = "crafty";
    base.input = "ref";
    base.scale = spec.testScale;
    base.maxInsts = 100'000'000;
    base.capacityBytes = 2048;
    TrafficResult def = measureTraffic(base);

    TrafficSetup nokill = base;
    nokill.svfKillOnShrink = false;
    EXPECT_GT(measureTraffic(nokill).svfQuadsOut, def.svfQuadsOut);

    TrafficSetup fill = base;
    fill.svfFillOnAlloc = true;
    EXPECT_GT(measureTraffic(fill).svfQuadsIn, def.svfQuadsIn);
}

} // anonymous namespace
} // namespace svf::harness
