/**
 * @file
 * Tests for the experiment harness presets and the headline
 * qualitative results the paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workloads/registry.hh"

namespace svf::harness
{
namespace
{

TEST(Presets, Table2Shapes)
{
    auto c4 = uarch::MachineConfig::wide4();
    EXPECT_EQ(c4.decodeWidth, 4u);
    EXPECT_EQ(c4.ifqSize, 16u);
    EXPECT_EQ(c4.ruuSize, 64u);
    EXPECT_EQ(c4.lsqSize, 32u);

    auto c8 = uarch::MachineConfig::wide8();
    EXPECT_EQ(c8.ruuSize, 128u);
    EXPECT_EQ(c8.lsqSize, 64u);

    auto c16 = uarch::MachineConfig::wide16();
    EXPECT_EQ(c16.issueWidth, 16u);
    EXPECT_EQ(c16.ifqSize, 64u);
    EXPECT_EQ(c16.ruuSize, 256u);
    EXPECT_EQ(c16.lsqSize, 128u);

    // Table 2 execution resources and latencies.
    EXPECT_EQ(c16.intAlu, 16u);
    EXPECT_EQ(c16.intMult, 4u);
    EXPECT_EQ(c16.storeForwardLat, 3u);
    EXPECT_EQ(c16.hier.dl1.hitLatency, 3u);
    EXPECT_EQ(c16.hier.l2.hitLatency, 16u);
    EXPECT_EQ(c16.hier.memLatency, 60u);
}

TEST(Presets, ApplyHelpers)
{
    auto m = baselineConfig(16, 2);
    EXPECT_FALSE(m.svf.enabled);
    EXPECT_FALSE(m.stackCacheEnabled);

    applySvf(m, 1024, 2);
    EXPECT_TRUE(m.svf.enabled);
    EXPECT_EQ(m.svf.svf.entries, 1024u);
    EXPECT_EQ(m.svf.svf.ports, 2u);

    applyStackCache(m, 8192, 2);
    EXPECT_FALSE(m.svf.enabled);
    EXPECT_TRUE(m.stackCacheEnabled);
    EXPECT_EQ(m.stackCache.size, 8192u);

    applyInfiniteSvf(m);
    EXPECT_TRUE(m.svf.enabled);
    EXPECT_TRUE(m.svf.morphAllStackRefs);
    EXPECT_GE(m.svf.svf.entries, 1u << 20);
}

TEST(Reporting, GeomeanOfPercents)
{
    EXPECT_NEAR(geomeanPct({0.0, 0.0}), 0.0, 1e-9);
    EXPECT_NEAR(geomeanPct({10.0}), 10.0, 1e-9);
    // geomean(1.21, 1.00) = 1.1 -> 10%.
    EXPECT_NEAR(geomeanPct({21.0, 0.0}), 10.0, 1e-9);
    EXPECT_EQ(geomeanPct({}), 0.0);
}

TEST(Reporting, MeanAndPct)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_EQ(pct(12.345, 1), "12.3%");
}

TEST(Speedup, ComputedFromCycles)
{
    RunResult base;
    RunResult opt;
    base.core.cycles = 200;
    opt.core.cycles = 100;
    EXPECT_DOUBLE_EQ(speedupPct(base, opt), 100.0);
    opt.core.cycles = 200;
    EXPECT_DOUBLE_EQ(speedupPct(base, opt), 0.0);
}

/** Qualitative headline: the SVF speeds up the stack-heavy
 *  benchmarks on the paper's (2 + 2) configuration. */
TEST(Headline, SvfBeatsBaselineOnStackHeavyWorkloads)
{
    for (const char *name : {"bzip2", "crafty", "gcc", "gap"}) {
        const auto &spec = workloads::workload(name);
        RunSetup s;
        s.workload = name;
        s.input = spec.inputs[0];
        s.scale = spec.testScale;
        s.maxInsts = 100'000'000;
        s.machine = baselineConfig(16, 2);
        RunResult base = runExperiment(s);

        applySvf(s.machine, 1024, 2);
        RunResult opt = runExperiment(s);

        EXPECT_GT(speedupPct(base, opt), 2.0) << name;
    }
}

/** Qualitative headline: SVF traffic is orders of magnitude below
 *  stack-cache traffic when frames churn (Table 3's story). */
TEST(Headline, SvfTrafficFarBelowStackCache)
{
    const auto &spec = workloads::workload("crafty");
    RunSetup s;
    s.workload = "crafty";
    s.input = "ref";
    s.scale = spec.testScale;
    s.maxInsts = 100'000'000;

    s.machine = baselineConfig(16, 2);
    applyStackCache(s.machine, 2048, 2);
    RunResult sc = runExperiment(s);

    s.machine = baselineConfig(16, 2);
    applySvf(s.machine, 256, 2);        // same 2KB capacity
    RunResult svf_r = runExperiment(s);

    EXPECT_GT(sc.scQuadsIn, 0u);
    // The SVF never fills on allocation, so its read traffic is
    // dramatically lower.
    EXPECT_LT(svf_r.svfQuadsIn * 10, sc.scQuadsIn);
}

/** The run driver cross-checks program output automatically. */
TEST(Runner, ReportsCompletionAndOutputOk)
{
    const auto &spec = workloads::workload("gzip");
    RunSetup s;
    s.workload = "gzip";
    s.input = "log";
    s.scale = spec.testScale;
    s.maxInsts = 100'000'000;
    s.machine = baselineConfig(4, 1);
    RunResult r = runExperiment(s);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.outputOk);

    // A tiny budget leaves the program incomplete but valid.
    s.maxInsts = 1000;
    RunResult partial = runExperiment(s);
    EXPECT_FALSE(partial.completed);
    EXPECT_TRUE(partial.outputOk);
    EXPECT_EQ(partial.core.committed, 1000u);
}

} // anonymous namespace
} // namespace svf::harness
