/**
 * @file
 * The central end-to-end property: whatever machine configuration
 * the timing model runs — baseline, SVF, stack cache, any width,
 * any predictor — the program's architectural behaviour (its
 * output) must be identical to the functional golden model, and
 * the pipeline must commit every instruction exactly once.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workloads/registry.hh"

namespace svf::harness
{
namespace
{

struct ConfigCase
{
    std::string name;
    uarch::MachineConfig machine;
};

std::vector<ConfigCase>
configs()
{
    std::vector<ConfigCase> out;
    out.push_back({"base16_2p", baselineConfig(16, 2)});
    out.push_back({"base4_1p", baselineConfig(4, 1)});
    out.push_back({"base8_2p", baselineConfig(8, 2)});
    {
        auto m = baselineConfig(16, 2);
        applySvf(m, 1024, 2);
        out.push_back({"svf8k_2p", m});
    }
    {
        auto m = baselineConfig(16, 2);
        applySvf(m, 256, 1);
        out.push_back({"svf2k_1p", m});
    }
    {
        auto m = baselineConfig(16, 2);
        applyInfiniteSvf(m);
        out.push_back({"svf_inf", m});
    }
    {
        auto m = baselineConfig(16, 2);
        applyStackCache(m, 8192, 2);
        out.push_back({"stackcache8k", m});
    }
    {
        auto m = baselineConfig(16, 2, "gshare");
        applySvf(m, 1024, 2);
        out.push_back({"svf_gshare", m});
    }
    {
        auto m = baselineConfig(16, 2);
        applySvf(m, 1024, 2);
        m.contextSwitchPeriod = 10000;
        out.push_back({"svf_ctxswitch", m});
    }
    {
        auto m = baselineConfig(16, 2);
        m.noAddrCalcOp = true;
        out.push_back({"no_addr_cal_op", m});
    }
    return out;
}

struct EqCase
{
    std::string workload;
    std::string input;
    ConfigCase config;
};

std::vector<EqCase>
cases()
{
    std::vector<EqCase> out;
    for (const auto &w : workloads::allWorkloads()) {
        for (const auto &cfg : configs())
            out.push_back({w.name, w.inputs[0], cfg});
    }
    return out;
}

class Equivalence : public testing::TestWithParam<EqCase>
{
};

TEST_P(Equivalence, TimingModelPreservesArchitecture)
{
    const EqCase &c = GetParam();
    const auto &spec = workloads::workload(c.workload);

    RunSetup setup;
    setup.workload = c.workload;
    setup.input = c.input;
    setup.scale = spec.testScale;
    setup.maxInsts = 100'000'000;       // run to completion
    setup.machine = c.config.machine;

    RunResult r = runExperiment(setup);
    EXPECT_TRUE(r.completed) << "program did not halt";
    EXPECT_TRUE(r.outputOk) << "output mismatch vs golden model";
    EXPECT_GT(r.core.cycles, 0u);
    EXPECT_GT(r.core.committed, 0u);
    // Sanity: IPC within physical limits.
    EXPECT_LE(r.ipc(), double(c.config.machine.issueWidth));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllConfigs, Equivalence, testing::ValuesIn(cases()),
    [](const testing::TestParamInfo<EqCase> &info) {
        std::string n = info.param.workload + "_" +
                        info.param.config.name;
        for (auto &ch : n) {
            if (ch == '-' || ch == '.')
                ch = '_';
        }
        return n;
    });

} // anonymous namespace
} // namespace svf::harness
