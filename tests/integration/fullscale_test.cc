/**
 * @file
 * Full-scale workload validation: the golden-model equivalence must
 * hold at the bench scales, not just the tiny test scales — this is
 * what certifies the numbers the figure/table binaries print.
 */

#include <gtest/gtest.h>

#include "sim/emulator.hh"
#include "workloads/calibration.hh"
#include "workloads/registry.hh"

namespace svf::workloads
{
namespace
{

struct Case
{
    std::string workload;
    std::string input;
};

std::vector<Case>
allCases()
{
    std::vector<Case> out;
    for (const auto &w : allWorkloads()) {
        for (const auto &in : w.inputs)
            out.push_back({w.name, in});
    }
    return out;
}

class FullScale : public testing::TestWithParam<Case>
{
};

TEST_P(FullScale, GoldenModelHoldsAtBenchScale)
{
    const WorkloadSpec &w = workload(GetParam().workload);
    isa::Program p = w.build(GetParam().input, w.defaultScale);
    sim::Emulator emu(p);
    emu.run(200'000'000);
    ASSERT_TRUE(emu.halted()) << "did not halt at default scale";
    EXPECT_EQ(emu.output(),
              w.expected(GetParam().input, w.defaultScale));
}

TEST_P(FullScale, ScaleMonotonicity)
{
    // Doubling the scale must not break determinism or the golden
    // model (catches scale-dependent construction bugs like
    // overflowing arenas).
    const WorkloadSpec &w = workload(GetParam().workload);
    std::uint64_t scale = w.testScale * 2;
    isa::Program p = w.build(GetParam().input, scale);
    sim::Emulator emu(p);
    emu.run(200'000'000);
    ASSERT_TRUE(emu.halted());
    EXPECT_EQ(emu.output(), w.expected(GetParam().input, scale));
}

INSTANTIATE_TEST_SUITE_P(
    All, FullScale, testing::ValuesIn(allCases()),
    [](const testing::TestParamInfo<Case> &info) {
        std::string n = info.param.workload + "_" + info.param.input;
        for (auto &c : n) {
            if (c == '-' || c == '.')
                c = '_';
        }
        return n;
    });

TEST(FullScale, BenchScalesAreBenchSized)
{
    // Every workload's default scale should land in the 0.3M-6M
    // dynamic-instruction range so the figure binaries stay fast
    // but statistically meaningful.
    for (const auto &w : allWorkloads()) {
        isa::Program p = w.build(w.inputs[0], w.defaultScale);
        sim::Emulator emu(p);
        emu.run(20'000'000);
        EXPECT_TRUE(emu.halted()) << w.name;
        EXPECT_GT(emu.instCount(), 300'000u) << w.name;
        EXPECT_LT(emu.instCount(), 6'000'000u) << w.name;
    }
}

} // anonymous namespace
} // namespace svf::workloads
