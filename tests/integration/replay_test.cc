/**
 * @file
 * Squash/replay stress: under forced collision storms the pipeline
 * must still commit every instruction exactly once, produce the
 * golden output, and never deadlock — and squashes must never make
 * the program output wrong, only slower.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "isa/builder.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"
#include "workloads/registry.hh"

namespace svf::uarch
{
namespace
{

using namespace isa;

/** A pathological collider: every iteration stores through a $gpr
 *  and immediately reloads through $sp. */
Program
makeCollider(int iterations)
{
    ProgramBuilder pb("collider");
    Label main_l = pb.here();
    pb.lda(RegSP, -32, RegSP);
    pb.li(RegS0, iterations);
    pb.li(RegS1, 0);
    Label loop = pb.here();
    pb.lda(RegT0, 8, RegSP);            // address-taken local
    pb.mulqi(RegS0, 3, RegT1);
    pb.stq(RegT1, 0, RegT0);            // $gpr store
    pb.ldq(RegT2, 8, RegSP);            // colliding $sp load
    pb.addq(RegS1, RegT2, RegS1);
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);
    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.halt();
    return pb.finish(main_l);
}

class ReplayStress : public testing::TestWithParam<unsigned>
{
};

TEST_P(ReplayStress, CollisionStormStaysCorrect)
{
    Program p = makeCollider(500);

    // Reference output.
    sim::Emulator ref(p);
    ref.run(1'000'000);
    ASSERT_TRUE(ref.halted());

    MachineConfig cfg = MachineConfig::wide(GetParam());
    cfg.svf.enabled = true;
    sim::Emulator oracle(p);
    OooCore core(cfg, oracle);
    core.run();

    EXPECT_TRUE(oracle.halted());
    EXPECT_EQ(core.stats().committed, ref.instCount());
    EXPECT_EQ(oracle.output(), ref.output());
    EXPECT_GT(core.stats().squashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, ReplayStress,
                         testing::Values(4u, 8u, 16u),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });

TEST(Replay, SquashesOnlyCostTime)
{
    Program p = makeCollider(800);

    auto run_with = [&](bool no_squash) {
        MachineConfig cfg = MachineConfig::wide16();
        cfg.svf.enabled = true;
        cfg.svf.noSquash = no_squash;
        sim::Emulator oracle(p);
        OooCore core(cfg, oracle);
        core.run();
        EXPECT_TRUE(oracle.halted());
        return core.stats();
    };

    CoreStats with_squash = run_with(false);
    CoreStats without = run_with(true);
    EXPECT_GT(with_squash.squashes, 0u);
    EXPECT_EQ(without.squashes, 0u);
    EXPECT_EQ(with_squash.committed, without.committed);
    EXPECT_GE(with_squash.cycles, without.cycles);
}

TEST(Replay, PenaltyScalesCost)
{
    Program p = makeCollider(800);
    Cycle prev = 0;
    for (unsigned pen : {0u, 48u, 200u}) {
        MachineConfig cfg = MachineConfig::wide16();
        cfg.svf.enabled = true;
        cfg.svf.squashPenalty = pen;
        sim::Emulator oracle(p);
        OooCore core(cfg, oracle);
        core.run();
        EXPECT_TRUE(oracle.halted());
        EXPECT_GE(core.stats().cycles, prev);
        prev = core.stats().cycles;
    }
}

TEST(Replay, EonReproducesThePaperStory)
{
    // Figure 7's eon anomaly: with squashes the SVF loses most of
    // its gain; the no_squash code generator restores it.
    const auto &spec = workloads::workload("eon");
    harness::RunSetup s;
    s.workload = "eon";
    s.input = "cook";
    s.scale = spec.testScale;
    s.maxInsts = 100'000'000;
    s.machine = harness::baselineConfig(16, 2);
    harness::applySvf(s.machine, 1024, 2);
    harness::RunResult squashy = harness::runExperiment(s);

    s.machine.svf.noSquash = true;
    harness::RunResult clean = harness::runExperiment(s);

    EXPECT_GT(squashy.core.squashes, 50u);
    EXPECT_TRUE(squashy.outputOk);
    EXPECT_TRUE(clean.outputOk);
    EXPECT_GT(squashy.core.cycles, clean.core.cycles);
}

} // anonymous namespace
} // namespace svf::uarch
