/**
 * @file
 * Tests for the decoupled stack cache comparator — especially the
 * two semantic limitations the paper's Table 3 charges it for:
 * whole-line fills on write misses and dirty writebacks of dead
 * frames.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "mem/stack_cache.hh"

namespace svf::mem
{
namespace
{

struct StackCacheTest : testing::Test
{
    StackCacheTest() : hier(HierarchyParams()), sc(scp(), hier) {}

    static StackCacheParams
    scp()
    {
        return StackCacheParams{2048, 32, 3, 2};
    }

    MemHierarchy hier;
    StackCache sc;
};

TEST_F(StackCacheTest, ReadMissFillsWholeLine)
{
    StackCacheAccess a = sc.access(0x7ffe0000, false);
    EXPECT_FALSE(a.hit);
    EXPECT_EQ(sc.quadsIn(), 4u);        // 32B line = 4 quads
    a = sc.access(0x7ffe0008, false);   // same line
    EXPECT_TRUE(a.hit);
    EXPECT_EQ(a.latency, 3u);
    EXPECT_EQ(sc.quadsIn(), 4u);
}

TEST_F(StackCacheTest, WriteMissMustReadTheLine)
{
    // The paper, Section 5.3.2: "a stack cache must read the rest of
    // the line before data can be written".
    sc.access(0x7ffe0000, true);
    EXPECT_EQ(sc.quadsIn(), 4u);
}

TEST_F(StackCacheTest, DirtyReplacementWritesBack)
{
    // Two addresses mapping to the same direct-mapped line.
    Addr a = 0x7ffe0000;
    Addr b = a + scp().size;
    sc.access(a, true);
    sc.access(b, false);                // evicts dirty a
    EXPECT_EQ(sc.quadsOut(), 4u);
    EXPECT_EQ(sc.quadsIn(), 8u);
}

TEST_F(StackCacheTest, CleanReplacementSilent)
{
    Addr a = 0x7ffe0000;
    Addr b = a + scp().size;
    sc.access(a, false);
    sc.access(b, false);
    EXPECT_EQ(sc.quadsOut(), 0u);
}

TEST_F(StackCacheTest, MissLatencyComesFromL2)
{
    StackCacheAccess a = sc.access(0x7ffe0000, false);
    EXPECT_EQ(a.latency, 60u);          // cold L2 -> memory
    StackCacheAccess b = sc.access(0x7ffe0000 + scp().size, false);
    (void)b;
    StackCacheAccess again = sc.access(0x7ffe0000, false);
    EXPECT_EQ(again.latency, 16u);      // L2 now holds the line
}

TEST_F(StackCacheTest, ContextSwitchFlushesWholeDirtyLines)
{
    sc.access(0x7ffe0000, true);        // one dirty word...
    sc.access(0x7ffe0100, true);
    sc.access(0x7ffe0200, false);       // clean
    std::uint64_t bytes = sc.contextSwitchFlush();
    // ...but whole 32-byte lines must be written back.
    EXPECT_EQ(bytes, 64u);
    EXPECT_EQ(sc.quadsOut(), 8u);
    // Everything was invalidated.
    EXPECT_FALSE(sc.access(0x7ffe0000, false).hit);
}

TEST_F(StackCacheTest, HitRateOnResidentFrame)
{
    // A 512B frame reused many times fits easily: after warmup, all
    // hits (the LVC observation the paper cites from Cho et al.).
    for (int pass = 0; pass < 10; ++pass) {
        for (Addr a = 0x7ffe0000; a < 0x7ffe0200; a += 8)
            sc.access(a, pass % 2 == 0);
    }
    double hit_rate = double(sc.hits()) /
        double(sc.hits() + sc.misses());
    EXPECT_GT(hit_rate, 0.97);
}

} // anonymous namespace
} // namespace svf::mem
