/**
 * @file
 * The Table 3 physics, distilled: synthetic stack motions against a
 * stack cache and an SVF of each capacity, showing exactly when each
 * structure starts paying — deep oscillation past the capacity, and
 * wide pointer-reached regions with a quiet TOS.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/svf.hh"
#include "mem/hierarchy.hh"
#include "mem/stack_cache.hh"
#include "isa/program.hh"

namespace svf
{
namespace
{

constexpr Addr SB = isa::layout::StackBase;

/** Drive both structures through @p rounds of call-chain descent to
 *  @p depth_bytes (touching every frame word) and return. */
struct OscillationRig
{
    explicit OscillationRig(std::uint64_t capacity)
        : hier(mem::HierarchyParams()),
          sc(mem::StackCacheParams{capacity, 32, 3, 2}, hier),
          svf(make(capacity), SB)
    {
    }

    static core::SvfParams
    make(std::uint64_t capacity)
    {
        core::SvfParams p;
        p.entries = static_cast<std::uint32_t>(capacity / 8);
        return p;
    }

    void
    oscillate(unsigned rounds, std::uint64_t depth_bytes,
              std::uint64_t frame_bytes = 64)
    {
        for (unsigned r = 0; r < rounds; ++r) {
            // Descend frame by frame, dirtying each frame.
            Addr sp = SB;
            while (SB - sp < depth_bytes) {
                sp -= frame_bytes;
                svf.onSpUpdate(sp);
                for (Addr a = sp; a < sp + frame_bytes; a += 8) {
                    svf.store(a, 8);
                    sc.access(a, true);
                }
            }
            // Unwind, reloading one word per frame (the $ra).
            while (sp < SB) {
                svf.load(sp + frame_bytes - 8, 8);
                sc.access(sp + frame_bytes - 8, false);
                sp += frame_bytes;
                svf.onSpUpdate(sp);
            }
        }
    }

    mem::MemHierarchy hier;
    mem::StackCache sc;
    core::StackValueFile svf;
};

class OscillationDepth
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OscillationDepth, TrafficAppearsOnlyPastCapacity)
{
    auto [cap_kb, depth_kb] = GetParam();
    OscillationRig rig(std::uint64_t(cap_kb) * 1024);
    rig.oscillate(20, std::uint64_t(depth_kb) * 1024);

    if (depth_kb <= cap_kb) {
        // Fits: after warmup the SVF moves nothing and the stack
        // cache only pays compulsory fills.
        EXPECT_EQ(rig.svf.quadsOut(), 0u);
        EXPECT_EQ(rig.svf.quadsIn(), 0u);
        EXPECT_LE(rig.sc.quadsIn(),
                  std::uint64_t(depth_kb) * 1024 / 8);
    } else {
        // Exceeds: both structures move data every round, but the
        // stack cache pays far more — it cannot drop dead frames.
        EXPECT_GT(rig.svf.quadsOut(), 0u);
        EXPECT_GT(rig.sc.quadsIn(), 5 * rig.svf.quadsIn());
        EXPECT_GT(rig.sc.quadsOut(), rig.svf.quadsOut());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OscillationDepth,
    testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 4),
                    std::make_tuple(4, 2), std::make_tuple(4, 8),
                    std::make_tuple(8, 4), std::make_tuple(8, 16)),
    [](const testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "cap" + std::to_string(std::get<0>(info.param)) +
               "kb_depth" + std::to_string(std::get<1>(info.param)) +
               "kb";
    });

TEST(WideRegion, QuietTosThrashesOnlyTheStackCache)
{
    // The eon/crafty shape: a 6KB array in a caller frame swept
    // through pointers while the TOS barely moves.
    OscillationRig rig(2048);
    Addr sp = SB - 8192;                // deep but static TOS
    rig.svf.onSpUpdate(sp);

    for (int round = 0; round < 50; ++round) {
        for (Addr a = SB - 6144; a < SB; a += 8) {
            rig.svf.load(a, 8);         // all outside the window
            rig.sc.access(a, round % 4 == 0);
        }
    }

    // The SVF window never slid: zero traffic. The 2KB stack cache
    // re-fills the 6KB sweep every round.
    EXPECT_EQ(rig.svf.quadsIn(), 0u);
    EXPECT_EQ(rig.svf.quadsOut(), 0u);
    EXPECT_GT(rig.sc.quadsIn(), 50u * 512u);
}

TEST(WideRegion, BigEnoughStructuresAbsorbTheSweep)
{
    OscillationRig rig(8192);
    Addr sp = SB - 8192;
    rig.svf.onSpUpdate(sp);
    for (int round = 0; round < 50; ++round) {
        for (Addr a = SB - 6144; a < SB; a += 8) {
            rig.svf.load(a, 8);
            rig.sc.access(a, false);
        }
    }
    // 8KB window covers the sweep: one compulsory fill per word.
    EXPECT_EQ(rig.svf.quadsIn(), 6144u / 8);
    // The 8KB stack cache likewise holds it after warmup.
    EXPECT_EQ(rig.sc.quadsIn(), 6144u / 8 / 4 * 4);
}

} // anonymous namespace
} // namespace svf
