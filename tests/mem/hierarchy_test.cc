/**
 * @file
 * Tests for the fixed-latency memory hierarchy (Table 2).
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace svf::mem
{
namespace
{

TEST(Hierarchy, Table2Defaults)
{
    HierarchyParams p;
    EXPECT_EQ(p.il1.size, 256u * 1024);
    EXPECT_EQ(p.il1.assoc, 8u);
    EXPECT_EQ(p.il1.hitLatency, 1u);
    EXPECT_EQ(p.dl1.size, 64u * 1024);
    EXPECT_EQ(p.dl1.assoc, 4u);
    EXPECT_EQ(p.dl1.hitLatency, 3u);
    EXPECT_EQ(p.l2.size, 512u * 1024);
    EXPECT_EQ(p.l2.assoc, 4u);
    EXPECT_EQ(p.l2.hitLatency, 16u);
    EXPECT_EQ(p.memLatency, 60u);
}

TEST(Hierarchy, LatencyComposition)
{
    MemHierarchy h((HierarchyParams()));
    // Cold: DL1 miss, L2 miss -> memory latency.
    EXPECT_EQ(h.data(0x1000, false), 60u);
    // Now resident in both -> DL1 hit.
    EXPECT_EQ(h.data(0x1000, false), 3u);
    // Evict from DL1 only: walk 128KB (2x DL1) of distinct lines.
    for (Addr a = 0x100000; a < 0x120000; a += 32)
        h.data(a, false);
    // L2 (512KB) still holds the line -> L2 latency.
    EXPECT_EQ(h.data(0x1000, false), 16u);
}

TEST(Hierarchy, FetchPath)
{
    MemHierarchy h((HierarchyParams()));
    EXPECT_EQ(h.fetch(0x10000), 60u);   // cold
    EXPECT_EQ(h.fetch(0x10000), 1u);    // IL1 hit
    EXPECT_EQ(h.fetch(0x10004), 1u);    // same line
}

TEST(Hierarchy, L2DirectBypassesDl1)
{
    MemHierarchy h((HierarchyParams()));
    EXPECT_EQ(h.l2Direct(0x2000, false), 60u);
    EXPECT_EQ(h.l2Direct(0x2000, false), 16u);
    // The DL1 was never touched.
    EXPECT_EQ(h.dl1().misses() + h.dl1().hits(), 0u);
}

TEST(Hierarchy, MemTrafficOnL2Misses)
{
    MemHierarchy h((HierarchyParams()));
    EXPECT_EQ(h.memQuads(), 0u);
    h.data(0x1000, false);
    EXPECT_EQ(h.memQuads(), 4u);        // one 32B line fill
    h.data(0x1000, false);
    EXPECT_EQ(h.memQuads(), 4u);        // hit: no new traffic
}

TEST(Hierarchy, DirtyDl1EvictionWritesThroughL2)
{
    HierarchyParams p;
    p.dl1.size = 64;                    // two 32B lines, 1 way each
    p.dl1.assoc = 1;
    MemHierarchy h(p);
    h.data(0x000, true);                // dirty in tiny DL1
    std::uint64_t l2_before = h.l2().hits() + h.l2().misses();
    h.data(0x040, false);               // evicts dirty victim
    // The victim writeback produced an extra L2 access.
    EXPECT_GE(h.l2().hits() + h.l2().misses(), l2_before + 2);
}

TEST(Hierarchy, FlushDl1)
{
    MemHierarchy h((HierarchyParams()));
    h.data(0x0, true);
    h.data(0x100, true);
    h.data(0x200, false);
    EXPECT_EQ(h.flushDl1(true), 2u);
    EXPECT_EQ(h.data(0x0, false), 16u); // invalidated, L2 hit
}

} // anonymous namespace
} // namespace svf::mem
