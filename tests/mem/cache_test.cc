/**
 * @file
 * Tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "base/random.hh"
#include "mem/cache.hh"

namespace svf::mem
{
namespace
{

CacheParams
params(std::uint64_t size, unsigned assoc, unsigned line = 32)
{
    return CacheParams{"test", size, assoc, line, 1};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(params(1024, 2));
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x11f, false).hit);    // same 32B line
    EXPECT_FALSE(c.access(0x120, false).hit);   // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(params(1024, 2));
    EXPECT_FALSE(c.probe(0x40));
    c.access(0x40, false);
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_FALSE(c.probe(0x80));
}

TEST(Cache, LruEviction)
{
    // Direct-mapped 2-line cache: 64B, 1-way, 32B lines.
    Cache c(params(64, 1));
    c.access(0x000, false);             // set 0
    c.access(0x040, false);             // set 0 again -> evicts
    EXPECT_FALSE(c.access(0x000, false).hit);
}

TEST(Cache, LruKeepsRecentlyUsed)
{
    // One set, 4 ways.
    Cache c(params(128, 4));
    for (Addr a : {0x000, 0x080, 0x100, 0x180})
        c.access(a, false);
    c.access(0x000, false);             // refresh line 0
    // Fill a new line; victim must be 0x080 (the LRU), not 0x000.
    c.access(0x200, false);
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x080));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c(params(64, 1));
    c.access(0x000, true);              // dirty line at set 0
    CacheAccess a = c.access(0x040, false);
    EXPECT_FALSE(a.hit);
    EXPECT_TRUE(a.writebackVictim);
    EXPECT_EQ(a.victimAddr, 0x000u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    Cache c(params(64, 1));
    c.access(0x000, false);
    CacheAccess a = c.access(0x040, false);
    EXPECT_FALSE(a.writebackVictim);
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(params(64, 1));
    c.access(0x000, false);             // clean fill
    c.access(0x008, true);              // write hit dirties it
    CacheAccess a = c.access(0x040, false);
    EXPECT_TRUE(a.writebackVictim);
}

TEST(Cache, FlushDirtyCountsAndClears)
{
    Cache c(params(256, 2));
    c.access(0x000, true);
    c.access(0x020, true);
    c.access(0x040, false);
    EXPECT_EQ(c.flushDirty(false), 2u);
    // Dirty bits cleared; a second flush finds nothing.
    EXPECT_EQ(c.flushDirty(false), 0u);
    // Lines were not invalidated.
    EXPECT_TRUE(c.probe(0x000));
}

TEST(Cache, FlushWithInvalidate)
{
    Cache c(params(256, 2));
    c.access(0x000, true);
    EXPECT_EQ(c.flushDirty(true), 1u);
    EXPECT_FALSE(c.probe(0x000));
}

TEST(Cache, TrafficQuadwords)
{
    Cache c(params(64, 1));             // 32B lines = 4 quads
    c.access(0x000, true);
    c.access(0x040, true);              // evict dirty + fill
    EXPECT_EQ(c.quadsIn(), 8u);         // two fills
    EXPECT_EQ(c.quadsOut(), 4u);        // one writeback
}

TEST(CacheDeathTest, BadGeometryIsFatal)
{
    EXPECT_EXIT(Cache(CacheParams{"bad", 100, 3, 32, 1}),
                testing::ExitedWithCode(1), "not divisible");
    EXPECT_EXIT(Cache(CacheParams{"bad", 1024, 1, 12, 1}),
                testing::ExitedWithCode(1), "power of two");
}

/** Parameterized sweep: hit rate of a sequential walk that fits. */
class CacheGeometry
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometry, ResidentWorkingSetHasNoCapacityMisses)
{
    auto [size_kb, assoc] = GetParam();
    Cache c(params(std::uint64_t(size_kb) * 1024, assoc));
    std::uint64_t footprint = std::uint64_t(size_kb) * 1024;

    // First pass: compulsory misses only.
    for (Addr a = 0; a < footprint; a += 8)
        c.access(a, false);
    std::uint64_t compulsory = c.misses();
    EXPECT_EQ(compulsory, footprint / 32);

    // Second pass: everything fits, so all hits.
    for (Addr a = 0; a < footprint; a += 8)
        c.access(a, false);
    EXPECT_EQ(c.misses(), compulsory);
}

TEST_P(CacheGeometry, OverCapacityWalkThrashes)
{
    auto [size_kb, assoc] = GetParam();
    Cache c(params(std::uint64_t(size_kb) * 1024, assoc));
    std::uint64_t footprint = std::uint64_t(size_kb) * 1024 * 2;
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < footprint; a += 32)
            c.access(a, false);
    }
    // An LRU cache sees no reuse on a sequential over-capacity walk.
    EXPECT_EQ(c.misses(), 2 * footprint / 32);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    testing::Combine(testing::Values(2, 8, 64),
                     testing::Values(1, 2, 4, 8)),
    [](const testing::TestParamInfo<std::tuple<int, int>> &info) {
        return std::to_string(std::get<0>(info.param)) + "kb_w" +
               std::to_string(std::get<1>(info.param));
    });

/** Property: cache contents always reflect the most recent fills. */
TEST(Cache, RandomAccessConsistencyProperty)
{
    Cache c(params(512, 2));
    Rng rng(77);
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr a = (rng.below(64) * 32);
        bool present = c.probe(a);
        CacheAccess r = c.access(a, rng.chance(0.3));
        EXPECT_EQ(r.hit, present);
        r.hit ? ++hits : ++misses;
    }
    EXPECT_EQ(c.hits(), hits);
    EXPECT_EQ(c.misses(), misses);
}

} // anonymous namespace
} // namespace svf::mem
