/**
 * @file
 * The svf_simd protocol and service core (serve/):
 *
 *   - JSON parsing (serve/json.hh): structure, escapes, rejects;
 *   - the wire codec: every setup kind and machine variant
 *     round-trips config strings with its canonical key intact,
 *     unknown keys / bad values / key mismatches are rejected;
 *   - SimService request handling over a *manual* JobEngine
 *     (harness/engine.hh): deterministic in-flight dedup, per-client
 *     round-robin fairness, backpressure rejects, malformed and
 *     oversized request errors, journal write + replay;
 *   - result payloads: a `done` event decodes to the bit-identical
 *     value a local executeSetup produces.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/result_cache.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "serve/json.hh"
#include "serve/service.hh"
#include "serve/wire.hh"

using namespace svf;
using namespace svf::serve;

namespace
{

std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + name;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

harness::RunSetup
smallRun(std::uint64_t insts = 20'000)
{
    harness::RunSetup run;
    run.workload = "gzip";
    run.input = "log";
    run.maxInsts = insts;
    run.machine = harness::baselineConfig(8);
    return run;
}

/** Collects every emitted NDJSON line (manual mode: same thread). */
struct Sink
{
    std::mutex m;
    std::vector<std::string> lines;

    SimService::Emit
    emit()
    {
        return [this](const std::string &line) {
            std::lock_guard<std::mutex> l(m);
            lines.push_back(line);
        };
    }

    /** The parsed "event" field of line @p i. */
    std::string
    kind(std::size_t i)
    {
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(lines.at(i), v, err)) << err;
        return v.getString("event");
    }

    std::size_t
    count(const std::string &kind_name)
    {
        std::size_t n = 0;
        for (std::size_t i = 0; i < lines.size(); ++i)
            n += kind(i) == kind_name;
        return n;
    }
};

ServiceOptions
manualService(std::size_t max_queued = 0)
{
    ServiceOptions o;
    o.engine.manual = true;
    o.engine.threads = 1;
    o.engine.maxQueued = max_queued;
    return o;
}

std::string
runLine(const std::vector<std::pair<std::string, harness::JobSetup>>
            &jobs,
        std::uint64_t id = 1, const std::string &client = "")
{
    std::string err;
    std::string line = wire::renderRunRequest(id, client, jobs, err);
    EXPECT_TRUE(err.empty()) << err;
    return line;
}

TEST(Json, ParsesStructuresAndEscapes)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        "{\"a\":[1,2.5,-3e2],\"s\":\"x\\n\\u0041\",\"b\":true,"
        "\"n\":null,\"o\":{\"k\":\"v\"}}",
        v, err)) << err;
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    EXPECT_DOUBLE_EQ(a->arr[1].number, 2.5);
    EXPECT_DOUBLE_EQ(a->arr[2].number, -300.0);
    EXPECT_EQ(v.getString("s"), "x\nA");
    EXPECT_TRUE(v.find("b")->boolean);
    EXPECT_TRUE(v.find("n")->isNull());
    EXPECT_EQ(v.find("o")->getString("k"), "v");
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":}", v, err));
    EXPECT_FALSE(parseJson("{\"a\":1", v, err));
    EXPECT_FALSE(parseJson("[1,2,]", v, err));
    EXPECT_FALSE(parseJson("tru", v, err));
    EXPECT_FALSE(parseJson("{} garbage", v, err));
    EXPECT_FALSE(parseJson("\"unterminated", v, err));
    EXPECT_FALSE(parseJson("", v, err));

    // Nesting bomb stays a parse error, not a stack overflow.
    std::string deep(200, '[');
    EXPECT_FALSE(parseJson(deep, v, err));
}

TEST(Wire, EveryKindRoundTripsWithKeyIntact)
{
    std::vector<std::pair<std::string, harness::JobSetup>> setups;

    harness::RunSetup base = smallRun();
    setups.emplace_back("base", base);

    harness::RunSetup svf_run = smallRun();
    harness::applySvf(svf_run.machine, 1024, 2);
    svf_run.machine.svf.dynamicDisable = true;
    svf_run.machine.svf.missRateThreshold = 0.37;
    setups.emplace_back("svf", svf_run);

    harness::RunSetup sc_run = smallRun();
    sc_run.machine.stackCacheEnabled = true;
    sc_run.machine.sched = uarch::SchedKind::Scan;
    sc_run.machine.disambig = uarch::DisambigKind::Scan;
    setups.emplace_back("sc", sc_run);

    harness::RunSetup sampled = smallRun();
    sampled.sample = ckpt::SamplePlan::parse("4,1000,2000,warm");
    sampled.cores = 2;
    setups.emplace_back("sampled", sampled);

    harness::TrafficSetup traffic;
    traffic.workload = "gzip";
    traffic.input = "log";
    traffic.maxInsts = 30'000;
    setups.emplace_back("traffic", traffic);

    harness::ProfileSetup profile;
    profile.workload = "gzip";
    profile.input = "log";
    profile.maxInsts = 30'000;
    setups.emplace_back("profile", profile);

    for (const auto &[name, setup] : setups) {
        wire::ConfigMap config;
        std::string err;
        ASSERT_TRUE(wire::setupToConfig(setup, config, err))
            << name << ": " << err;
        harness::JobSetup decoded;
        ASSERT_TRUE(wire::setupFromConfig(config, decoded, err))
            << name << ": " << err;
        EXPECT_EQ(harness::setupKey(decoded),
                  harness::setupKey(setup))
            << name << ": lossy wire encoding";
    }
}

TEST(Wire, RefusesUnshippableSetups)
{
    wire::ConfigMap config;
    std::string err;

    harness::RunSetup traced = smallRun();
    traced.trace.path = "/tmp/t.bin";
    EXPECT_FALSE(wire::setupToConfig(traced, config, err));

    harness::RunSetup prog = smallRun();
    prog.program = std::make_shared<const isa::Program>();
    EXPECT_FALSE(wire::setupToConfig(prog, config, err));
}

TEST(Wire, DecodeRejectsBadConfigs)
{
    wire::ConfigMap config;
    std::string err;
    ASSERT_TRUE(wire::setupToConfig(smallRun(), config, err));

    harness::JobSetup out;
    {
        auto c = config;
        c["no_such_key"] = "1";
        EXPECT_FALSE(wire::setupFromConfig(c, out, err));
        EXPECT_NE(err.find("no_such_key"), std::string::npos) << err;
    }
    {
        auto c = config;
        c["insts"] = "not-a-number";
        EXPECT_FALSE(wire::setupFromConfig(c, out, err));
    }
    {
        auto c = config;
        c["workload"] = "no_such_workload";
        EXPECT_FALSE(wire::setupFromConfig(c, out, err));
    }
    {
        auto c = config;
        c["m.svf.enabled"] = "yes";     // bools are 0/1
        EXPECT_FALSE(wire::setupFromConfig(c, out, err));
    }
    {
        auto c = config;
        c["kind"] = "banana";
        EXPECT_FALSE(wire::setupFromConfig(c, out, err));
    }
}

TEST(Wire, ParseRequestVerifiesSetupKeys)
{
    std::string line = runLine({{"j", smallRun()}});

    wire::Request req;
    std::string err;
    ASSERT_TRUE(wire::parseRequest(line, req, err)) << err;
    ASSERT_EQ(req.jobs.size(), 1u);
    EXPECT_EQ(req.jobs[0].key,
              harness::setupKey(harness::JobSetup(smallRun())));

    // Tamper with the client key: the whole request is rejected.
    std::string key_hex = wire::keyHex(req.jobs[0].key);
    std::string bad_hex = key_hex;
    bad_hex[0] = bad_hex[0] == '0' ? '1' : '0';
    std::string tampered = line;
    tampered.replace(tampered.find(key_hex), key_hex.size(),
                     bad_hex);
    EXPECT_FALSE(wire::parseRequest(tampered, req, err));
    EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
}

TEST(Wire, ParseRequestRejectsBadShapes)
{
    wire::Request req;
    std::string err;
    EXPECT_FALSE(wire::parseRequest("not json", req, err));
    EXPECT_FALSE(wire::parseRequest("[1,2,3]", req, err));
    EXPECT_FALSE(wire::parseRequest("{\"verb\":\"banana\"}", req,
                                    err));
    EXPECT_FALSE(wire::parseRequest("{\"verb\":\"run\"}", req, err));
    EXPECT_FALSE(wire::parseRequest(
        "{\"verb\":\"run\",\"jobs\":[]}", req, err));
    EXPECT_FALSE(wire::parseRequest(
        "{\"verb\":\"run\",\"jobs\":[{\"name\":\"x\"}]}", req, err));
    EXPECT_TRUE(wire::parseRequest("{\"verb\":\"ping\"}", req, err));
    EXPECT_EQ(req.verb, wire::Request::Verb::Ping);
}

TEST(Wire, HexArmorRoundTrips)
{
    std::vector<std::uint8_t> bytes{0x00, 0x01, 0xab, 0xff, 0x10};
    std::string hex = wire::hexEncode(bytes);
    EXPECT_EQ(hex, "0001abff10");
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(wire::hexDecode(hex, back));
    EXPECT_EQ(back, bytes);
    EXPECT_FALSE(wire::hexDecode("abc", back));     // odd length
    EXPECT_FALSE(wire::hexDecode("zz", back));      // bad digit
}

TEST(ServeService, InflightDedupExecutesOnce)
{
    SimService svc(manualService());
    Sink sink;

    // The same fresh setup from two clients, two requests: the
    // second submit attaches to the first's in-flight execution.
    harness::JobSetup setup(smallRun(21'000));
    ActiveRun a = svc.handle(runLine({{"j", setup}}, 1, "alice"),
                             "conn-a", sink.emit());
    ActiveRun b = svc.handle(runLine({{"j", setup}}, 2, "bob"),
                             "conn-b", sink.emit());
    ASSERT_EQ(a.tickets.size(), 1u);
    ASSERT_EQ(b.tickets.size(), 1u);
    EXPECT_FALSE(a.tickets[0]->finished());
    EXPECT_FALSE(b.tickets[0]->finished());

    // One queue item runs both tickets to completion...
    EXPECT_TRUE(svc.engine().runOne());
    EXPECT_TRUE(a.tickets[0]->finished());
    EXPECT_TRUE(b.tickets[0]->finished());
    EXPECT_EQ(b.tickets[0]->source(),
              harness::TicketSource::Inflight);
    // ...and there is nothing else queued.
    EXPECT_FALSE(svc.engine().runOne());

    harness::EngineStats s = svc.engine().stats();
    EXPECT_EQ(s.executed, 1u);
    EXPECT_EQ(s.inflightAttached, 1u);
    EXPECT_EQ(sink.count("done"), 2u);

    // The dedup is observable through the stats verb too.
    Sink stats_sink;
    svc.handle("{\"verb\":\"stats\"}", "conn-a", stats_sink.emit());
    ASSERT_EQ(stats_sink.lines.size(), 1u);
    JsonValue ev;
    std::string err;
    ASSERT_TRUE(parseJson(stats_sink.lines[0], ev, err)) << err;
    const JsonValue *stats = ev.find("stats");
    ASSERT_TRUE(stats && stats->isObject());
    EXPECT_DOUBLE_EQ(stats->find("inflight_attached")->number, 1.0);
    EXPECT_DOUBLE_EQ(stats->find("executed")->number, 1.0);
}

TEST(ServeService, RoundRobinFairnessAcrossClients)
{
    SimService svc(manualService());
    Sink sink;

    // alice floods three jobs, then bob sends two. Round-robin
    // serves alice, bob, alice, bob, alice — not alice's whole
    // backlog first.
    std::vector<std::pair<std::string, harness::JobSetup>> a_jobs = {
        {"a1", smallRun(31'000)},
        {"a2", smallRun(32'000)},
        {"a3", smallRun(33'000)},
    };
    std::vector<std::pair<std::string, harness::JobSetup>> b_jobs = {
        {"b1", smallRun(34'000)},
        {"b2", smallRun(35'000)},
    };
    ActiveRun a = svc.handle(runLine(a_jobs, 1, "alice"), "conn-a",
                             sink.emit());
    ActiveRun b = svc.handle(runLine(b_jobs, 2, "bob"), "conn-b",
                             sink.emit());

    std::vector<std::string> order;
    auto note_new = [&] {
        for (std::size_t i = 0; i < a.tickets.size(); ++i) {
            if (a.tickets[i]->finished() &&
                std::find(order.begin(), order.end(), a.names[i]) ==
                    order.end())
                order.push_back(a.names[i]);
        }
        for (std::size_t i = 0; i < b.tickets.size(); ++i) {
            if (b.tickets[i]->finished() &&
                std::find(order.begin(), order.end(), b.names[i]) ==
                    order.end())
                order.push_back(b.names[i]);
        }
    };
    while (svc.engine().runOne())
        note_new();

    std::vector<std::string> expect = {"a1", "b1", "a2", "b2", "a3"};
    EXPECT_EQ(order, expect);
}

TEST(ServeService, BackpressureRejectsPastTheBound)
{
    SimService svc(manualService(/*max_queued=*/1));
    Sink sink;

    std::vector<std::pair<std::string, harness::JobSetup>> jobs = {
        {"fits", smallRun(41'000)},
        {"rejected", smallRun(42'000)},
    };
    ActiveRun run = svc.handle(runLine(jobs, 1, "alice"), "conn-a",
                               sink.emit());
    ASSERT_EQ(run.tickets.size(), 2u);
    EXPECT_FALSE(run.tickets[0]->finished());
    EXPECT_EQ(run.tickets[1]->state(),
              harness::TicketState::Rejected);
    EXPECT_EQ(sink.count("error"), 1u);
    EXPECT_NE(sink.lines.back().find("queue full"),
              std::string::npos);
    EXPECT_EQ(svc.engine().stats().rejected, 1u);

    while (svc.engine().runOne()) {}
    EXPECT_EQ(sink.count("done"), 1u);
}

TEST(ServeService, MalformedAndOversizedRequestsError)
{
    ServiceOptions opts = manualService();
    opts.maxRequestBytes = 256;
    SimService svc(opts);

    Sink sink;
    ActiveRun run =
        svc.handle("{\"verb\":", "conn-a", sink.emit());
    EXPECT_TRUE(run.tickets.empty());
    ASSERT_EQ(sink.lines.size(), 1u);
    EXPECT_EQ(sink.kind(0), "error");

    Sink big_sink;
    std::string big(1024, 'x');
    run = svc.handle(big, "conn-a", big_sink.emit());
    EXPECT_TRUE(run.tickets.empty());
    ASSERT_EQ(big_sink.lines.size(), 1u);
    EXPECT_NE(big_sink.lines[0].find("too large"),
              std::string::npos);

    JsonValue ev;
    std::string err;
    Sink ping_sink;
    svc.handle("{\"verb\":\"ping\",\"id\":7}", "conn-a",
               ping_sink.emit());
    ASSERT_TRUE(parseJson(ping_sink.lines.at(0), ev, err)) << err;
    EXPECT_EQ(ev.getString("event"), "pong");
    EXPECT_DOUBLE_EQ(ev.find("id")->number, 7.0);
}

TEST(ServeService, DoneEventPayloadIsBitIdentical)
{
    SimService svc(manualService());
    Sink sink;

    harness::JobSetup setup(smallRun(22'000));
    svc.handle(runLine({{"j", setup}}), "conn-a", sink.emit());
    while (svc.engine().runOne()) {}

    ASSERT_EQ(sink.count("done"), 1u);
    JsonValue ev;
    std::string err;
    ASSERT_TRUE(parseJson(sink.lines.back(), ev, err)) << err;

    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(
        wire::hexDecode(ev.getString("result"), payload));
    ckpt::CachedValue value;
    ASSERT_TRUE(ckpt::decodeValue(payload, value));

    harness::JobValue local = harness::executeSetup(setup);
    const auto &got = std::get<harness::RunResult>(value);
    const auto &want = std::get<harness::RunResult>(local);
    EXPECT_EQ(got.core.cycles, want.core.cycles);
    EXPECT_EQ(got.core.committed, want.core.committed);
    EXPECT_EQ(got.dl1Hits, want.dl1Hits);
    EXPECT_EQ(got.dl1Misses, want.dl1Misses);
    EXPECT_EQ(got.output, want.output);

    // The exact bytes match the disk cache's encoding of the same
    // value — the transport adds nothing and loses nothing.
    EXPECT_EQ(payload, ckpt::encodeValue(local));
}

TEST(ServeService, JournalPersistsAndReplays)
{
    std::string dir = freshDir("serve_journal");

    harness::JobSetup setup(smallRun(23'000));
    std::string line = runLine({{"j", setup}}, 9, "alice");

    {
        // First daemon: accepts the request but dies (drains) with
        // the job still queued — the journal entry survives.
        ServiceOptions opts = manualService();
        opts.journalDir = dir;
        SimService svc(opts);
        Sink sink;
        svc.handle(line, "conn-a", sink.emit());
        std::size_t entries = 0;
        for ([[maybe_unused]] const auto &e :
             std::filesystem::directory_iterator(dir))
            ++entries;
        EXPECT_EQ(entries, 1u);
    }

    // Second daemon: replays the journal, executes, unlinks.
    ServiceOptions opts = manualService();
    opts.journalDir = dir;
    SimService svc(opts);
    EXPECT_EQ(svc.replayJournal(), 1u);
    while (svc.engine().runOne()) {}
    EXPECT_EQ(svc.engine().stats().executed, 1u);

    std::size_t left = 0;
    for ([[maybe_unused]] const auto &e :
         std::filesystem::directory_iterator(dir))
        ++left;
    EXPECT_EQ(left, 0u);
}

TEST(ServeService, JournalEntryUnlinkedOnCompletion)
{
    std::string dir = freshDir("serve_journal_done");

    ServiceOptions opts = manualService();
    opts.journalDir = dir;
    SimService svc(opts);
    Sink sink;
    svc.handle(runLine({{"j", smallRun(24'000)}}), "conn-a",
               sink.emit());
    while (svc.engine().runOne()) {}
    EXPECT_EQ(sink.count("done"), 1u);

    std::size_t left = 0;
    for ([[maybe_unused]] const auto &e :
         std::filesystem::directory_iterator(dir))
        ++left;
    EXPECT_EQ(left, 0u);
}

} // anonymous namespace
