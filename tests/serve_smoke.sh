#!/usr/bin/env bash
# End-to-end smoke of the svf_simd daemon (tier2; CI Release job runs
# it via `ctest -L serve_smoke`):
#
#   1. start svf-simd on a Unix socket with a result cache;
#   2. pre-populate the cache with a serverless svf-sim run;
#   3. two concurrent clients sweep the same fresh setup — the daemon
#      must execute it exactly once (dedup observable in stats);
#   4. served JSON reports are byte-for-byte identical to serverless
#      ones for cache-served runs;
#   5. SIGTERM drains gracefully: the daemon exits 0 on its own.
#
# Usage: serve_smoke.sh <svf-sim> <svf-simd> <work-dir>
set -u

SVF_SIM=$1
SVF_SIMD=$2
WORK=$3/serve_smoke
SOCK=$WORK/svf.sock

rm -rf "$WORK"
mkdir -p "$WORK"

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null
    exit 1
}

# A setup small enough to simulate twice in seconds.
ARGS="workload=mcf scale=60 insts=150000"

# -- 1. daemon up ----------------------------------------------------
"$SVF_SIMD" --listen "$SOCK" cache="$WORK/cache" \
    journal="$WORK/journal" jobs=2 >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 50); do
    [ -S "$SOCK" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on start"
    sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon never opened $SOCK"

# -- 2. serverless baseline populates the shared cache ---------------
# First run executes and stores; the second is served from disk, so
# its report is the canonical fully-cached serverless output.
"$SVF_SIM" $ARGS cache="$WORK/cache" \
    >/dev/null 2>&1 || fail "serverless run failed"
"$SVF_SIM" $ARGS cache="$WORK/cache" json="$WORK/local.json" \
    >"$WORK/local.txt" 2>/dev/null || fail "serverless rerun failed"
grep -q '"cached": true' "$WORK/local.json" ||
    fail "serverless rerun was not served from the cache"

# -- 3. served run: byte-identical to serverless ---------------------
"$SVF_SIM" $ARGS server="$SOCK" json="$WORK/served.json" \
    >"$WORK/served.txt" 2>/dev/null || fail "served run failed"
cmp -s "$WORK/local.json" "$WORK/served.json" ||
    fail "served json= differs from serverless (diff: $(diff \
        "$WORK/local.json" "$WORK/served.json" | head -4))"
cmp -s "$WORK/local.txt" "$WORK/served.txt" ||
    fail "served stdout differs from serverless"

# -- 4. concurrent clients, fresh setup, one execution ---------------
FRESH="workload=gzip input=log insts=120000"
"$SVF_SIM" $FRESH server="$SOCK" >"$WORK/c1.txt" 2>&1 &
C1=$!
"$SVF_SIM" $FRESH server="$SOCK" >"$WORK/c2.txt" 2>&1 &
C2=$!
wait "$C1" || fail "concurrent client 1 failed"
wait "$C2" || fail "concurrent client 2 failed"
cmp -s "$WORK/c1.txt" "$WORK/c2.txt" ||
    fail "concurrent clients got different statistics"

STATS=$("$SVF_SIMD" --stats "$SOCK") || fail "stats verb failed"
echo "$STATS" > "$WORK/stats.json"
# The fresh setup must have executed exactly once: the second client
# was served by in-flight dedup, the memo, or the disk cache.
case "$STATS" in
    *'"executed":1,'*) : ;;
    *) fail "expected exactly 1 execution, stats: $STATS" ;;
esac

# -- 5. graceful SIGTERM drain ---------------------------------------
kill -TERM "$DAEMON_PID"
for _ in $(seq 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID"
    fail "daemon did not exit within 10s of SIGTERM"
fi
wait "$DAEMON_PID"
RC=$?
[ "$RC" -eq 0 ] || fail "daemon exited $RC, expected 0"
grep -q "drained, exiting" "$WORK/daemon.log" ||
    fail "daemon log missing the drain marker"
[ -S "$SOCK" ] && fail "daemon left its socket file behind"

echo "serve_smoke: PASS"
