/**
 * @file
 * Architectural emulator semantics tests, opcode by opcode.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "sim/emulator.hh"

namespace svf::sim
{
namespace
{

using namespace isa;

/** Run source and return the emulator for inspection. */
std::unique_ptr<Emulator>
run(const std::string &src, std::uint64_t max = 10000)
{
    static std::vector<std::unique_ptr<Program>> programs;
    programs.push_back(std::make_unique<Program>(assemble(src)));
    auto emu = std::make_unique<Emulator>(*programs.back());
    emu->run(max);
    return emu;
}

TEST(Emulator, IntOpSemantics)
{
    auto e = run(R"(
main:
    li $a0, 100
    li $a1, 7
    addq $a0, $a1, $r1
    subq $a0, $a1, $r2
    mulq $a0, $a1, $r3
    and  $a0, $a1, $r4
    or   $a0, $a1, $r5
    xor  $a0, $a1, $r6
    sll  $a0, 2, $r7
    srl  $a0, 2, $r8
    halt
)");
    EXPECT_EQ(e->reg(1), 107u);
    EXPECT_EQ(e->reg(2), 93u);
    EXPECT_EQ(e->reg(3), 700u);
    EXPECT_EQ(e->reg(4), 100u & 7u);
    EXPECT_EQ(e->reg(5), 100u | 7u);
    EXPECT_EQ(e->reg(6), 100u ^ 7u);
    EXPECT_EQ(e->reg(7), 400u);
    EXPECT_EQ(e->reg(8), 25u);
}

TEST(Emulator, SignedArithmetic)
{
    auto e = run(R"(
main:
    li $a0, -8
    sra $a0, 1, $r1
    srl $a0, 60, $r2
    cmplt $a0, 0, $r3       ; -8 < 0 (literal compares vs 0)
    li $a1, 3
    cmplt $a0, $a1, $r4
    cmple $a1, $a1, $r5
    cmpult $a0, $a1, $r6    ; unsigned: huge > 3
    cmpeq $a1, 3, $r7
    halt
)");
    EXPECT_EQ(e->reg(1), static_cast<RegVal>(-4));
    EXPECT_EQ(e->reg(2), 0xfu);
    // The literal form zero-extends its 8-bit literal, so
    // cmplt $t0, 0 compares -8 < 0 signed -> 1.
    EXPECT_EQ(e->reg(3), 1u);
    EXPECT_EQ(e->reg(4), 1u);
    EXPECT_EQ(e->reg(5), 1u);
    EXPECT_EQ(e->reg(6), 0u);
    EXPECT_EQ(e->reg(7), 1u);
}

TEST(Emulator, LdaLdahCompose)
{
    auto e = run(R"(
main:
    lda  $t0, 100($zero)
    lda  $t1, -5($t0)
    ldah $t2, 2($zero)
    halt
)");
    EXPECT_EQ(e->reg(RegT0), 100u);
    EXPECT_EQ(e->reg(RegT1), 95u);
    EXPECT_EQ(e->reg(RegT2), 0x20000u);
}

TEST(Emulator, LoadStoreWidths)
{
    auto e = run(R"(
main:
    la $t0, buf
    li $t1, -1
    stq $t1, 0($t0)
    li $t2, 0x1234
    stl $t2, 0($t0)
    ldl $a1, 0($t0)         ; sign-extended 32-bit
    ldq $a2, 0($t0)
    li $t3, 0xab
    stb $t3, 2($t0)
    ldbu $a3, 2($t0)
    halt
    .data
buf: .quad 0
)");
    EXPECT_EQ(e->reg(RegA1), 0x1234u);
    EXPECT_EQ(e->reg(RegA2), 0xffffffff00001234ull);
    EXPECT_EQ(e->reg(RegA3), 0xabu);
}

TEST(Emulator, LdlSignExtends)
{
    auto e = run(R"(
main:
    la $t0, buf
    ldl $a1, 0($t0)
    halt
    .data
buf: .long 0x80000000
)");
    EXPECT_EQ(e->reg(RegA1), 0xffffffff80000000ull);
}

TEST(Emulator, BranchDirections)
{
    auto e = run(R"(
main:
    li $t0, -1
    li $t1, 0
    li $t2, 1
    li $v0, 0
    blt $t0, a
    li $v0, 99
a:  bgt $t2, b
    li $v0, 98
b:  beq $t1, c
    li $v0, 97
c:  bne $t0, d
    li $v0, 96
d:  ble $t1, e
    li $v0, 95
e:  bge $t1, f
    li $v0, 94
f:  halt
)");
    EXPECT_EQ(e->reg(RegV0), 0u);
}

TEST(Emulator, NotTakenBranchesFallThrough)
{
    auto e = run(R"(
main:
    li $t0, 1
    beq $t0, bad
    blt $t0, bad
    bgt $t0, ok
bad:
    li $a0, 0
    putint
    halt
ok: li $a0, 1
    putint
    halt
)");
    EXPECT_EQ(e->output(), "1\n");
}

TEST(Emulator, ZeroRegisterIgnoresWrites)
{
    auto e = run(R"(
main:
    li $t0, 5
    addq $t0, $t0, $zero
    mov $zero, $a0
    putint
    halt
)");
    EXPECT_EQ(e->output(), "0\n");
}

TEST(Emulator, UmulhHighBits)
{
    ProgramBuilder pb("umulh");
    Label main = pb.here();
    pb.li(RegT0, 0xffffffffffffffffull);
    pb.li(RegT1, 2);
    pb.op(IntFunct::Umulh, RegT0, RegT1, RegT2);
    pb.halt();
    Program p = pb.finish(main);
    Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.reg(RegT2), 1u);
}

TEST(Emulator, ExecInfoForLoads)
{
    ProgramBuilder pb("info");
    Label main = pb.here();
    Addr buf = pb.allocDataQuads({42});
    pb.li(RegT0, buf);
    pb.ldq(RegA0, 0, RegT0);
    pb.halt();
    Program p = pb.finish(main);
    Emulator emu(p);
    ExecInfo info;
    // Skip over li (1-2 insts) until the load.
    while (emu.step(info) && !info.di->load) {}
    EXPECT_TRUE(info.di->load);
    EXPECT_EQ(info.ea, buf);
    EXPECT_EQ(info.memValue, 42u);
    EXPECT_EQ(info.result, 42u);
}

TEST(Emulator, ExecInfoForSpUpdates)
{
    ProgramBuilder pb("sp");
    Label main = pb.here();
    pb.lda(RegSP, -64, RegSP);
    pb.lda(RegSP, 64, RegSP);
    pb.halt();
    Program p = pb.finish(main);
    Emulator emu(p);
    ExecInfo info;
    ASSERT_TRUE(emu.step(info));
    EXPECT_TRUE(info.spWritten);
    EXPECT_EQ(info.oldSp, layout::StackBase);
    EXPECT_EQ(info.newSp, layout::StackBase - 64);
    ASSERT_TRUE(emu.step(info));
    EXPECT_TRUE(info.spWritten);
    EXPECT_EQ(info.newSp, layout::StackBase);
    EXPECT_EQ(emu.minSp(), layout::StackBase - 64);
}

TEST(Emulator, ExecInfoBranchOutcome)
{
    auto src = R"(
main:
    li $t0, 0
    beq $t0, taken
    nop
taken:
    bne $t0, nottaken
    halt
nottaken:
    halt
)";
    Program p = assemble(src);
    Emulator emu(p);
    ExecInfo info;
    emu.step(info);                     // li
    emu.step(info);                     // beq (taken)
    EXPECT_TRUE(info.taken);
    EXPECT_EQ(info.nextPc, info.pc + 8);
    emu.step(info);                     // bne (not taken)
    EXPECT_FALSE(info.taken);
    EXPECT_EQ(info.nextPc, info.pc + 4);
}

TEST(Emulator, HaltStopsExecution)
{
    auto e = run("main:\n  halt\n  li $a0, 1\n  putint\n");
    EXPECT_TRUE(e->halted());
    EXPECT_EQ(e->instCount(), 1u);
    EXPECT_EQ(e->output(), "");
}

TEST(Emulator, StepAfterHaltReturnsFalse)
{
    Program p = assemble("main:\n  halt\n");
    Emulator emu(p);
    ExecInfo info;
    EXPECT_TRUE(emu.step(info));
    EXPECT_FALSE(emu.step(info));
    EXPECT_FALSE(emu.step(info));
}

TEST(Emulator, PutcOutputsBytes)
{
    auto e = run(R"(
main:
    li $a0, 72
    putc
    li $a0, 105
    putc
    halt
)");
    EXPECT_EQ(e->output(), "Hi");
}

TEST(Emulator, PutintNegative)
{
    auto e = run(R"(
main:
    li $a0, -12345
    putint
    halt
)");
    EXPECT_EQ(e->output(), "-12345\n");
}

} // anonymous namespace
} // namespace svf::sim
