/**
 * @file
 * Emulator::runFast equivalence (sim/emulator.hh):
 *
 * The batched interpreter must be bit-identical to the same number
 * of step() calls in every observable respect — registers, PC,
 * instruction count, $sp watermark, halt flag, program output, and
 * the full memory image including which pages were allocated (loads
 * from untouched memory must not materialize pages step() would not
 * have). Serialized snapshots compare all of that in one blob.
 */

#include <gtest/gtest.h>

#include "ckpt/snapshot.hh"
#include "sim/emulator.hh"
#include "workloads/registry.hh"

using namespace svf;

namespace
{

/** Full observable-state comparison via the snapshot serializer. */
void
expectIdentical(const sim::Emulator &a, const sim::Emulator &b,
                const std::string &what)
{
    sim::EmuArchState sa = a.archState();
    sim::EmuArchState sb = b.archState();
    EXPECT_EQ(sa.regs, sb.regs) << what;
    EXPECT_EQ(sa.pc, sb.pc) << what;
    EXPECT_EQ(sa.lowSp, sb.lowSp) << what;
    EXPECT_EQ(sa.icount, sb.icount) << what;
    EXPECT_EQ(sa.halted, sb.halted) << what;
    EXPECT_EQ(sa.output, sb.output) << what;
    EXPECT_EQ(a.mem().pagesAllocated(), b.mem().pagesAllocated())
        << what;
    EXPECT_EQ(ckpt::Snapshot::capture(a).serialize(),
              ckpt::Snapshot::capture(b).serialize())
        << what;
}

TEST(RunFast, MatchesStepOnEveryWorkload)
{
    for (const auto &w : workloads::allWorkloads()) {
        for (const auto &in : w.inputs) {
            isa::Program prog = w.build(in, w.defaultScale);
            sim::Emulator stepped(prog);
            sim::Emulator fast(prog);
            std::uint64_t n_step = stepped.run(20'000);
            std::uint64_t n_fast = fast.runFast(20'000);
            EXPECT_EQ(n_step, n_fast) << w.name << "." << in;
            expectIdentical(stepped, fast, w.name + "." + in);
        }
    }
}

TEST(RunFast, MatchesStepAcrossInterleavings)
{
    const workloads::WorkloadSpec &spec = workloads::workload("mcf");
    isa::Program prog = spec.build("inp", spec.defaultScale);

    sim::Emulator stepped(prog);
    stepped.run(30'000);

    // step / runFast / step must land in the identical state.
    sim::Emulator mixed(prog);
    mixed.run(3'000);
    mixed.runFast(17'000);
    mixed.run(10'000);
    expectIdentical(stepped, mixed, "mcf interleaved");
}

TEST(RunFast, StopsShortOnHaltLikeStep)
{
    // A tiny scale halts well within the budget on both paths.
    const workloads::WorkloadSpec &spec = workloads::workload("gzip");
    isa::Program prog = spec.build("log", 1);

    sim::Emulator stepped(prog);
    sim::Emulator fast(prog);
    std::uint64_t n_step = stepped.run(50'000'000);
    std::uint64_t n_fast = fast.runFast(50'000'000);
    ASSERT_TRUE(stepped.halted());
    EXPECT_EQ(n_step, n_fast);
    expectIdentical(stepped, fast, "gzip halt");

    // Once halted, both refuse further work.
    EXPECT_EQ(fast.runFast(100), 0u);
    EXPECT_EQ(stepped.run(100), 0u);
}

TEST(RunFast, ZeroBudgetIsANoOp)
{
    const workloads::WorkloadSpec &spec = workloads::workload("mcf");
    isa::Program prog = spec.build("inp", spec.defaultScale);
    sim::Emulator emu(prog);
    EXPECT_EQ(emu.runFast(0), 0u);
    EXPECT_EQ(emu.instCount(), 0u);
    EXPECT_EQ(emu.pc(), prog.entry);
}

} // anonymous namespace
