/**
 * @file
 * Tests for memory region and access-method classification.
 */

#include <gtest/gtest.h>

#include "sim/region.hh"
#include "isa/program.hh"

namespace svf::sim
{
namespace
{

using namespace isa::layout;

TEST(Region, Boundaries)
{
    EXPECT_EQ(classify(TextBase), Region::Text);
    EXPECT_EQ(classify(DataBase - 1), Region::Text);
    EXPECT_EQ(classify(DataBase), Region::Global);
    EXPECT_EQ(classify(HeapBase - 1), Region::Global);
    EXPECT_EQ(classify(HeapBase), Region::Heap);
    EXPECT_EQ(classify(HeapLimit - 1), Region::Heap);
    EXPECT_EQ(classify(StackLimit), Region::Stack);
    EXPECT_EQ(classify(StackBase), Region::Stack);
    EXPECT_EQ(classify(StackBase - 0x1000), Region::Stack);
    EXPECT_EQ(classify(0), Region::Other);
}

TEST(Region, AccessMethods)
{
    EXPECT_EQ(methodOf(isa::RegSP), AccessMethod::Sp);
    EXPECT_EQ(methodOf(isa::RegFP), AccessMethod::Fp);
    EXPECT_EQ(methodOf(isa::RegT0), AccessMethod::Gpr);
    EXPECT_EQ(methodOf(isa::RegA0), AccessMethod::Gpr);
    EXPECT_EQ(methodOf(isa::RegZero), AccessMethod::Gpr);
}

TEST(Region, Names)
{
    EXPECT_STREQ(regionName(Region::Stack), "stack");
    EXPECT_STREQ(regionName(Region::Heap), "heap");
    EXPECT_STREQ(regionName(Region::Global), "global");
    EXPECT_STREQ(methodName(AccessMethod::Sp), "$sp");
    EXPECT_STREQ(methodName(AccessMethod::Gpr), "$gpr");
}

} // anonymous namespace
} // namespace svf::sim
