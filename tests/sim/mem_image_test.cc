/**
 * @file
 * Tests for the sparse memory image.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "base/random.hh"
#include "sim/mem_image.hh"

namespace svf::sim
{
namespace
{

TEST(MemImage, UntouchedMemoryReadsZero)
{
    MemImage m;
    EXPECT_EQ(m.read8(0x1234), 0u);
    EXPECT_EQ(m.read32(0x1000), 0u);
    EXPECT_EQ(m.read64(0xdead000), 0u);
    EXPECT_EQ(m.pagesAllocated(), 0u);
}

TEST(MemImage, ReadBackWrites)
{
    MemImage m;
    m.write8(0x100, 0xab);
    m.write32(0x104, 0xdeadbeef);
    m.write64(0x108, 0x1122334455667788ull);
    EXPECT_EQ(m.read8(0x100), 0xabu);
    EXPECT_EQ(m.read32(0x104), 0xdeadbeefu);
    EXPECT_EQ(m.read64(0x108), 0x1122334455667788ull);
}

TEST(MemImage, LittleEndianLayout)
{
    MemImage m;
    m.write64(0x200, 0x0807060504030201ull);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(m.read8(0x200 + i), i + 1);
    m.write8(0x200, 0xff);
    EXPECT_EQ(m.read64(0x200), 0x08070605040302ffull);
}

TEST(MemImage, BulkWriteAcrossPageBoundary)
{
    MemImage m;
    std::vector<std::uint8_t> data(MemImage::PageSize + 100);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    Addr base = MemImage::PageSize - 50;    // straddles two pages
    m.writeBytes(base, data.data(), data.size());
    for (size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(m.read8(base + i), data[i]);
    EXPECT_GE(m.pagesAllocated(), 2u);
}

TEST(MemImage, SparsePagesOnlyWhereWritten)
{
    MemImage m;
    m.write8(0, 1);
    m.write8(100 * MemImage::PageSize, 2);
    EXPECT_EQ(m.pagesAllocated(), 2u);
}

TEST(MemImage, RandomizedReadWriteProperty)
{
    MemImage m;
    Rng rng(55);
    std::vector<std::pair<Addr, std::uint64_t>> written;
    for (int i = 0; i < 2000; ++i) {
        Addr a = (rng.next() % (1u << 24)) & ~Addr(7);
        std::uint64_t v = rng.next();
        m.write64(a, v);
        written.emplace_back(a, v);
    }
    // Later writes win; check the final value of each address.
    std::unordered_map<Addr, std::uint64_t> last;
    for (auto &[a, v] : written)
        last[a] = v;
    for (auto &[a, v] : last)
        EXPECT_EQ(m.read64(a), v);
}

TEST(MemImageDeathTest, MisalignedAccessAsserts)
{
    MemImage m;
    EXPECT_DEATH(m.read64(0x101), "assertion");
    EXPECT_DEATH(m.write32(0x102, 1), "assertion");
}

} // anonymous namespace
} // namespace svf::sim
