/**
 * @file
 * Tests for the Section 2 profiler (workloads/calibration.hh) on a
 * hand-built program with exactly known reference behaviour.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "workloads/calibration.hh"

namespace svf::workloads
{
namespace
{

using namespace isa;

/**
 * A program with a fully predictable profile:
 *   - allocates a 64-byte frame,
 *   - does 10 iterations of: 1 sp-store (offset 0), 1 sp-load
 *     (offset 8), 1 fp-load, 1 gpr-load of a global, 1 heap store,
 *   - recurses once 128 bytes deeper, then returns and halts.
 */
Program
makeProfiled()
{
    ProgramBuilder pb("profiled");
    Addr glob = pb.allocDataQuads({7});
    Addr heap = pb.allocHeap(64, 8);

    Label l_main = pb.newLabel();
    Label l_deep = pb.newLabel();

    pb.bind(l_main);
    FunctionBuilder fb(pb, FrameSpec{48, true, true, true, {}});
    fb.prologue();

    pb.li(RegS0, 10);
    Label loop = pb.here();
    pb.stq(RegS0, 0, RegSP);            // $sp store
    pb.ldq(RegT0, 8, RegSP);            // $sp load
    pb.ldq(RegT1, -16, RegFP);          // $fp load (same frame)
    pb.li(RegT2, glob);
    pb.ldq(RegT3, 0, RegT2);            // global load
    pb.li(RegT4, heap);
    pb.stq(RegS0, 0, RegT4);            // heap store
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);

    pb.call(l_deep);
    pb.halt();

    pb.bind(l_deep);
    FunctionBuilder deep(pb, FrameSpec{120, true, false, false, {}});
    deep.prologue();
    pb.stq(RegZero, 0, RegSP);
    deep.epilogueRet();

    return pb.finish(l_main);
}

TEST(Profile, RegionAndMethodCounts)
{
    StackProfile p = profileProgram(makeProfiled(), 100000);

    // Per iteration: 2 $sp refs + 1 $fp ref (stack), 1 global,
    // 1 heap. Plus prologue/epilogue stack traffic.
    EXPECT_EQ(p.globalRefs, 10u);
    EXPECT_EQ(p.heapRefs, 10u);
    EXPECT_EQ(p.stackFp, 10u);
    // 10 iterations x 2 + main prologue (ra, fp) + deep's
    // store/saves/restores.
    EXPECT_GE(p.stackSp, 24u);
    EXPECT_EQ(p.stackGpr, 0u);
    EXPECT_EQ(p.memRefs,
              p.stackRefs + p.globalRefs + p.heapRefs + p.otherRefs);
    EXPECT_EQ(p.belowTos, 0u);
}

TEST(Profile, MaxDepthSeesTheDeepCall)
{
    StackProfile p = profileProgram(makeProfiled(), 100000);
    // main frame: 48 locals + ra + fp = 64B; deep frame: 120 + 8 ->
    // 128B. Peak = 192 bytes = 24 words.
    EXPECT_EQ(p.maxDepthWords, 24u);
}

TEST(Profile, OffsetStatisticsAreBounded)
{
    StackProfile p = profileProgram(makeProfiled(), 100000);
    // All references are within the 64/128-byte frames.
    EXPECT_GT(p.within256, 0.999);
    EXPECT_GT(p.within8k, 0.999);
    EXPECT_LT(p.avgOffsetBytes, 64.0);
    EXPECT_GT(p.avgOffsetBytes, 0.0);
}

TEST(Profile, DepthSamplesCoverTheRun)
{
    // Sampling divides the budget, so size the budget to the run.
    StackProfile p = profileProgram(makeProfiled(), 80, 16);
    ASSERT_FALSE(p.depthSamples.empty());
    // Samples are ordered by instruction count.
    for (size_t i = 1; i < p.depthSamples.size(); ++i)
        EXPECT_GT(p.depthSamples[i].first,
                  p.depthSamples[i - 1].first);
}

TEST(Profile, InstructionBudgetRespected)
{
    ProgramBuilder pb("spin");
    Label main = pb.here();
    Label loop = pb.here();
    pb.br(loop);                        // infinite loop
    Program prog = pb.finish(main);
    StackProfile p = profileProgram(prog, 5000);
    EXPECT_EQ(p.insts, 5000u);
}

} // anonymous namespace
} // namespace svf::workloads
