/**
 * @file
 * Unit and property tests for the bit manipulation helpers.
 */

#include <gtest/gtest.h>

#include "base/bitfield.hh"
#include "base/random.hh"

namespace svf
{
namespace
{

TEST(Bitfield, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(mask(64), ~std::uint64_t(0));
}

TEST(Bitfield, BitsExtraction)
{
    std::uint64_t v = 0xdeadbeefcafef00dull;
    EXPECT_EQ(bits(v, 3, 0), 0xdu);
    EXPECT_EQ(bits(v, 7, 4), 0x0u);
    EXPECT_EQ(bits(v, 63, 60), 0xdu);
    EXPECT_EQ(bits(v, 31, 0), 0xcafef00du);
    EXPECT_EQ(bits(v, 63, 32), 0xdeadbeefu);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0xff, 7, 4), 0xf0u);
    EXPECT_EQ(insertBits(0x3, 1, 0), 0x3u);
    EXPECT_EQ(insertBits(0xabcd, 31, 16), 0xabcd0000u);
}

TEST(Bitfield, SextPositiveAndNegative)
{
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x7fff, 16), 32767);
    EXPECT_EQ(sext(0x100000, 21), -1048576);
}

TEST(Bitfield, SextRoundTripProperty)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
        unsigned nbits = 1 + static_cast<unsigned>(rng.below(63));
        std::int64_t lo = -(std::int64_t(1) << (nbits - 1));
        std::int64_t hi = (std::int64_t(1) << (nbits - 1)) - 1;
        std::int64_t v = rng.range(lo, hi);
        EXPECT_EQ(sext(static_cast<std::uint64_t>(v) & mask(nbits),
                       nbits), v)
            << "nbits=" << nbits << " v=" << v;
    }
}

TEST(Bitfield, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 63));
    EXPECT_FALSE(isPow2((1ull << 63) + 1));
}

TEST(Bitfield, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~std::uint64_t(0)), 63u);
}

TEST(Bitfield, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignDown(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1001, 0x1000), 0x2000u);
}

TEST(Bitfield, AlignmentProperty)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t align = std::uint64_t(1) << rng.below(20);
        Addr a = rng.next() >> 4;
        Addr down = alignDown(a, align);
        Addr up = alignUp(a, align);
        EXPECT_EQ(down % align, 0u);
        EXPECT_EQ(up % align, 0u);
        EXPECT_LE(down, a);
        EXPECT_GE(up, a);
        EXPECT_LT(a - down, align);
        EXPECT_LT(up - a, align);
    }
}

} // anonymous namespace
} // namespace svf
