/**
 * @file
 * Tests for the key=value configuration store.
 */

#include <gtest/gtest.h>

#include "base/config.hh"

namespace svf
{
namespace
{

TEST(Config, DefaultsWhenAbsent)
{
    Config cfg;
    EXPECT_EQ(cfg.getUint("missing", 7), 7u);
    EXPECT_EQ(cfg.getInt("missing", -2), -2);
    EXPECT_EQ(cfg.getString("missing", "d"), "d");
    EXPECT_TRUE(cfg.getBool("missing", true));
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 1.5), 1.5);
}

TEST(Config, SetAndGet)
{
    Config cfg;
    cfg.set("insts", "100000");
    cfg.set("svf.ports", "2");
    cfg.set("name", "gcc");
    cfg.set("enable", "true");
    cfg.set("frac", "0.25");
    EXPECT_EQ(cfg.getUint("insts", 0), 100000u);
    EXPECT_EQ(cfg.getUint("svf.ports", 0), 2u);
    EXPECT_EQ(cfg.getString("name", ""), "gcc");
    EXPECT_TRUE(cfg.getBool("enable", false));
    EXPECT_DOUBLE_EQ(cfg.getDouble("frac", 0.0), 0.25);
}

TEST(Config, BoolSpellings)
{
    Config cfg;
    for (const char *t : {"1", "true", "yes", "on", "TRUE", "On"}) {
        cfg.set("k", t);
        EXPECT_TRUE(cfg.getBool("k", false)) << t;
    }
    for (const char *f : {"0", "false", "no", "off", "False"}) {
        cfg.set("k", f);
        EXPECT_FALSE(cfg.getBool("k", true)) << f;
    }
}

TEST(Config, FromArgs)
{
    const char *argv[] = {"prog", "a=1", "b.c=hello"};
    Config cfg = Config::fromArgs(3, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getUint("a", 0), 1u);
    EXPECT_EQ(cfg.getString("b.c", ""), "hello");
}

TEST(Config, HexValues)
{
    Config cfg;
    cfg.set("addr", "0x7fff0000");
    EXPECT_EQ(cfg.getUint("addr", 0), 0x7fff0000u);
}

TEST(Config, UnusedKeysTracked)
{
    Config cfg;
    cfg.set("used", "1");
    cfg.set("typo", "1");
    cfg.getUint("used", 0);
    auto unused = cfg.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(Config, SuggestsNearestTouchedKey)
{
    Config cfg;
    cfg.set("sampel", "1");     // transposition of "sample"
    cfg.getString("sample", "");
    cfg.getUint("insts", 0);
    cfg.getUint("pjobs", 1);
    EXPECT_EQ(cfg.suggest("sampel"), "sample");
    EXPECT_EQ(cfg.suggest("inst"), "insts");
    // The interval-parallelism key (bench_util.hh pjobs=).
    EXPECT_EQ(cfg.suggest("pjob"), "pjobs");
    EXPECT_EQ(cfg.suggest("pjosb"), "pjobs");
    // The daemon key (bench_util.hh server=): every bench queries
    // it, so its typos get the did-you-mean treatment too.
    cfg.getString("server", "");
    EXPECT_EQ(cfg.suggest("servr"), "server");
    EXPECT_EQ(cfg.suggest("sever"), "server");
    // Nothing within edit distance 2: no suggestion.
    EXPECT_EQ(cfg.suggest("completely_different"), "");
}

TEST(Config, SuggestIgnoresUntouchedKeys)
{
    Config cfg;
    cfg.set("smaple", "1");
    // No getter ran, so nothing is known to be a real key yet.
    EXPECT_EQ(cfg.suggest("smaple"), "");
}

TEST(ConfigDeathTest, BadArgIsFatal)
{
    const char *argv[] = {"prog", "notkeyvalue"};
    EXPECT_EXIT(Config::fromArgs(2, const_cast<char **>(argv)),
                testing::ExitedWithCode(1), "expected key=value");
}

TEST(ConfigDeathTest, BadIntIsFatal)
{
    Config cfg;
    cfg.set("n", "abc");
    EXPECT_EXIT(cfg.getUint("n", 0), testing::ExitedWithCode(1),
                "not an unsigned integer");
}

} // anonymous namespace
} // namespace svf
