/**
 * @file
 * Tests for the logging/error-reporting helpers.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"

namespace svf
{
namespace
{

TEST(Csprintf, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("plain"), "plain");
    EXPECT_EQ(csprintf("%d + %d = %d", 2, 3, 5), "2 + 3 = 5");
    EXPECT_EQ(csprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(csprintf("0x%08x", 0xbeefu), "0x0000beef");
    EXPECT_EQ(csprintf("%llu",
                       (unsigned long long)~std::uint64_t(0)),
              "18446744073709551615");
}

TEST(Csprintf, LongStringsSurviveTheBufferBoundary)
{
    std::string big(5000, 'x');
    EXPECT_EQ(csprintf("%s", big.c_str()), big);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("simulator bug %d", 42), "panic: simulator "
                                                "bug 42");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("user error: %s", "bad config"),
                testing::ExitedWithCode(1), "fatal: user error");
}

TEST(LoggingDeathTest, AssertMacroNamesTheCondition)
{
    auto boom = [] { svf_assert(1 == 2); };
    EXPECT_DEATH(boom(), "assertion '1 == 2' failed");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    // Just exercise the paths; output goes to stderr.
    testing::internal::CaptureStderr();
    warn("watch out for %s", "this");
    inform("status %d", 7);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: watch out for this"),
              std::string::npos);
    EXPECT_NE(err.find("info: status 7"), std::string::npos);
}

} // anonymous namespace
} // namespace svf
