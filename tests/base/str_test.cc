/**
 * @file
 * Tests for string helpers.
 */

#include <gtest/gtest.h>

#include "base/str.hh"

namespace svf
{
namespace
{

TEST(Str, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Str, Split)
{
    auto v = split("a, b,c", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
    EXPECT_EQ(v[2], "c");

    auto empties = split(",,", ',');
    ASSERT_EQ(empties.size(), 3u);
    for (const auto &s : empties)
        EXPECT_EQ(s, "");

    auto one = split("solo", ',');
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], "solo");
}

TEST(Str, Tokenize)
{
    auto v = tokenize("  ldq   $a0, 8($sp)  ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "ldq");
    EXPECT_EQ(v[1], "$a0,");
    EXPECT_EQ(v[2], "8($sp)");
    EXPECT_TRUE(tokenize("").empty());
    EXPECT_TRUE(tokenize(" \t ").empty());
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_TRUE(startsWith("hello", ""));
    EXPECT_FALSE(startsWith("he", "hello"));
    EXPECT_FALSE(startsWith("hello", "lo"));
}

TEST(Str, ToLower)
{
    EXPECT_EQ(toLower("AbC123"), "abc123");
}

TEST(Str, ParseIntDecimal)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-17", v));
    EXPECT_EQ(v, -17);
    EXPECT_TRUE(parseInt("  8  ", v));
    EXPECT_EQ(v, 8);
}

TEST(Str, ParseIntHex)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
    EXPECT_TRUE(parseInt("-0x8", v));
    EXPECT_EQ(v, -8);
}

TEST(Str, ParseIntRejectsGarbage)
{
    std::int64_t v = 0;
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("x12", v));
    EXPECT_FALSE(parseInt("1 2", v));
}

TEST(Str, ParseUint)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseUint("18446744073709551615", v));
    EXPECT_EQ(v, ~std::uint64_t(0));
    EXPECT_TRUE(parseUint("0xdeadbeef", v));
    EXPECT_EQ(v, 0xdeadbeefull);
    EXPECT_FALSE(parseUint("-1", v));
    EXPECT_FALSE(parseUint("", v));
}

} // anonymous namespace
} // namespace svf
