/**
 * @file
 * Tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include "base/random.hh"

namespace svf
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                (1ull << 40)}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    double frac = double(hits) / n;
    EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng rng(23);
    int buckets[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.below(8)];
    for (int b = 0; b < 8; ++b)
        EXPECT_NEAR(buckets[b], n / 8, n / 80);
}

} // anonymous namespace
} // namespace svf
