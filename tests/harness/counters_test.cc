/**
 * @file
 * Counter registry (harness/counters.hh) contract tests.
 *
 * The registry is the one declaration site every consumer iterates —
 * JSON emission, per-core groups, cross-core folds, sampled deltas,
 * the equivalence tests' diffs. These tests pin the contract that
 * lets the migration be invisible: every legacy counter name is
 * still present, in the frozen JSON order, reaching the same storage
 * and emitting the same value; the fold rules are unchanged; and the
 * registry-derived ckpt::coreCounters() table is positionally
 * identical to the registry's CoreStats-backed subsequence.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/sampler.hh"
#include "harness/counters.hh"
#include "harness/json_report.hh"
#include "harness/runner.hh"

namespace svf::harness
{
namespace
{

/** The frozen JSON emission order (pre-registry hand-written list). */
const std::vector<std::string> kLegacyOrder = {
    "cycles", "committed", "loads", "stores", "branches",
    "mispredicts", "squashes", "sp_interlocks", "lsq_forwards",
    "disambig_scans", "disambig_scan_steps", "disambig_filter_hits",
    "reroute_checks", "reroute_scan_steps", "ctx_switches",
    "svf_ctx_bytes", "sc_ctx_bytes", "dl1_ctx_lines",
    "svf_quads_in", "svf_quads_out", "svf_fast_loads",
    "svf_fast_stores", "svf_rerouted_loads", "svf_rerouted_stores",
    "svf_window_misses", "svf_demand_fills", "svf_disable_episodes",
    "svf_refs_while_disabled", "sc_quads_in", "sc_quads_out",
    "sc_hits", "sc_misses", "dl1_hits", "dl1_misses", "l2_hits",
    "l2_misses",
};

TEST(CounterRegistry, LegacyNamesInFrozenOrder)
{
    const auto &defs = runCounters();
    ASSERT_EQ(defs.size(), kLegacyOrder.size());
    for (std::size_t i = 0; i < defs.size(); ++i)
        EXPECT_EQ(defs[i]->name(), kLegacyOrder[i]) << "index " << i;
}

TEST(CounterRegistry, SelfDescription)
{
    for (const CounterDef *d : runCounters()) {
        EXPECT_FALSE(d->desc().empty()) << d->name();
        EXPECT_FALSE(d->unit().empty()) << d->name();
        EXPECT_EQ(findCounter(d->name()), d);
    }
    EXPECT_EQ(findCounter("no_such_counter"), nullptr);
}

/** cycles folds as the across-cores max; everything else sums. */
TEST(CounterRegistry, FoldDiscipline)
{
    for (const CounterDef *d : runCounters()) {
        if (d->name() == "cycles")
            EXPECT_EQ(d->fold(), Fold::Max) << d->name();
        else
            EXPECT_EQ(d->fold(), Fold::Sum) << d->name();
    }
}

/** get()/ref() reach the same storage; ref writes what get reads. */
TEST(CounterRegistry, StorageRoundTrip)
{
    RunResult r;
    std::uint64_t v = 1;
    for (const CounterDef *d : runCounters())
        d->ref(r) = v++;
    v = 1;
    for (const CounterDef *d : runCounters())
        EXPECT_EQ(d->get(r), v++) << d->name();
}

/**
 * ckpt::coreCounters() is derived from the registry: it must be
 * exactly the CoreStats-backed subsequence, positionally — same
 * names, same member pointers, same order. That order is the result
 * cache's on-disk serialization order (FormatVersion 4), so any
 * drift here is a silent cache-format change.
 */
TEST(CounterRegistry, CkptTableConsistent)
{
    std::vector<const CounterDef *> core_backed;
    for (const CounterDef *d : runCounters())
        if (d->fromCoreStats())
            core_backed.push_back(d);
    ASSERT_EQ(ckpt::coreCounters().size(), core_backed.size());

    for (std::size_t i = 0; i < core_backed.size(); ++i) {
        const ckpt::CoreCounter &c = ckpt::coreCounters()[i];
        EXPECT_EQ(core_backed[i]->name(), c.name) << "index " << i;
        EXPECT_EQ(core_backed[i]->coreField(), c.field) << c.name;
    }
}

/**
 * JSON emission: every legacy counter name appears in the rendered
 * record with the value the registry reads — the migration must be
 * byte-invisible to BENCH_*.json consumers.
 */
TEST(CounterRegistry, JsonEmitsEveryNameWithSameValue)
{
    RunResult r;
    std::uint64_t v = 1000;
    for (const CounterDef *d : runCounters())
        d->ref(r) = v++;

    JobOutcome o;
    o.name = "probe";
    o.value = r;
    JsonReport report;
    report.add(o);
    std::ostringstream os;
    report.write(os);
    const std::string doc = os.str();

    for (const CounterDef *d : runCounters()) {
        std::string expect = "\"" + d->name() +
                             "\": " + std::to_string(d->get(r));
        EXPECT_NE(doc.find(expect), std::string::npos)
            << "missing " << expect;
    }
}

} // anonymous namespace
} // namespace svf::harness
