/**
 * @file
 * The plan-based experiment runner (harness/runner.hh):
 *
 *   - determinism: a mixed plan run at jobs=1 and jobs=4 produces
 *     bit-identical results — table assembly must not depend on
 *     thread count or completion order;
 *   - memoization: duplicate setups within a plan simulate once, and
 *     a reused Runner serves repeated keys from its cache;
 *   - key canonicality: perturbing any single field of a RunSetup,
 *     its MachineConfig (nested structures included) or a
 *     TrafficSetup produces a distinct setup key, and the three job
 *     kinds never collide with one another.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "harness/json_report.hh"
#include "harness/runner.hh"
#include "workloads/registry.hh"

using namespace svf;
using namespace svf::harness;

namespace
{

ExperimentPlan
mixedPlan()
{
    ExperimentPlan plan;

    RunSetup base;
    base.workload = "gzip";
    base.input = "log";
    base.maxInsts = 20'000;
    base.machine = baselineConfig(16, 2);
    plan.add("gzip/base", base);

    RunSetup with_svf = base;
    applySvf(with_svf.machine, 1024, 2);
    plan.add("gzip/svf", with_svf);

    RunSetup crafty = base;
    crafty.workload = "crafty";
    crafty.input = "ref";
    plan.add("crafty/base", crafty);

    TrafficSetup traffic;
    traffic.workload = "gzip";
    traffic.input = "log";
    traffic.maxInsts = 100'000;
    plan.add("gzip/traffic", traffic);

    TrafficSetup ctx = traffic;
    ctx.slicePeriod = 40'000;
    plan.add("gzip/traffic-ctx", ctx);

    ProfileSetup profile;
    profile.workload = "gzip";
    profile.input = "log";
    profile.maxInsts = 100'000;
    plan.add("gzip/profile", profile);

    return plan;
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.committed, b.core.committed);
    EXPECT_EQ(a.core.loads, b.core.loads);
    EXPECT_EQ(a.core.stores, b.core.stores);
    EXPECT_EQ(a.core.branches, b.core.branches);
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_EQ(a.core.squashes, b.core.squashes);
    EXPECT_EQ(a.core.spInterlocks, b.core.spInterlocks);
    EXPECT_EQ(a.core.lsqForwards, b.core.lsqForwards);
    EXPECT_EQ(a.svfQuadsIn, b.svfQuadsIn);
    EXPECT_EQ(a.svfQuadsOut, b.svfQuadsOut);
    EXPECT_EQ(a.svfFastLoads, b.svfFastLoads);
    EXPECT_EQ(a.svfFastStores, b.svfFastStores);
    EXPECT_EQ(a.svfReroutedLoads, b.svfReroutedLoads);
    EXPECT_EQ(a.svfReroutedStores, b.svfReroutedStores);
    EXPECT_EQ(a.svfWindowMisses, b.svfWindowMisses);
    EXPECT_EQ(a.dl1Hits, b.dl1Hits);
    EXPECT_EQ(a.dl1Misses, b.dl1Misses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.outputOk, b.outputOk);
}

void
expectSameTraffic(const TrafficResult &a, const TrafficResult &b)
{
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.svfQuadsIn, b.svfQuadsIn);
    EXPECT_EQ(a.svfQuadsOut, b.svfQuadsOut);
    EXPECT_EQ(a.scQuadsIn, b.scQuadsIn);
    EXPECT_EQ(a.scQuadsOut, b.scQuadsOut);
    EXPECT_EQ(a.ctxSwitches, b.ctxSwitches);
    EXPECT_EQ(a.svfCtxBytes, b.svfCtxBytes);
    EXPECT_EQ(a.scCtxBytes, b.scCtxBytes);
}

TEST(Runner, ParallelMatchesSerial)
{
    ExperimentPlan plan = mixedPlan();

    RunnerOptions serial_opts;
    serial_opts.jobs = 1;
    Runner serial(serial_opts);
    const auto s = serial.run(plan);

    RunnerOptions parallel_opts;
    parallel_opts.jobs = 4;
    Runner parallel(parallel_opts);
    const auto p = parallel.run(plan);

    ASSERT_EQ(s.size(), plan.size());
    ASSERT_EQ(p.size(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(s[i].name, plan.job(i).name);
        EXPECT_EQ(s[i].name, p[i].name);
        EXPECT_EQ(s[i].key, p[i].key);
    }

    expectSameRun(s[0].run(), p[0].run());
    expectSameRun(s[1].run(), p[1].run());
    expectSameRun(s[2].run(), p[2].run());
    expectSameTraffic(s[3].traffic(), p[3].traffic());
    expectSameTraffic(s[4].traffic(), p[4].traffic());

    const auto &sp = s[5].profile();
    const auto &pp = p[5].profile();
    EXPECT_EQ(sp.insts, pp.insts);
    EXPECT_EQ(sp.memRefs, pp.memRefs);
    EXPECT_EQ(sp.stackRefs, pp.stackRefs);
    EXPECT_EQ(sp.maxDepthWords, pp.maxDepthWords);
    EXPECT_EQ(sp.depthSamples, pp.depthSamples);

    // The SVF run must differ from the baseline run — otherwise the
    // "identical" assertions above would pass vacuously on a runner
    // that handed every job the same result.
    EXPECT_NE(s[0].key, s[1].key);
    EXPECT_NE(s[0].run().core.cycles, 0u);
}

TEST(Runner, MemoizesRepeatedKeys)
{
    RunSetup base;
    base.workload = "gzip";
    base.input = "log";
    base.maxInsts = 20'000;
    base.machine = baselineConfig(16, 2);

    ExperimentPlan plan;
    plan.add("first", base);
    plan.add("second", base);       // identical setup, new name

    RunnerOptions opts;
    opts.jobs = 2;
    Runner runner(opts);
    const auto res = runner.run(plan);

    // In-plan duplicate: simulated once, fanned out to both jobs.
    EXPECT_EQ(runner.executions(), 1u);
    EXPECT_EQ(runner.memoHits(), 1u);
    EXPECT_FALSE(res[0].cached);
    EXPECT_TRUE(res[1].cached);
    EXPECT_EQ(res[0].key, res[1].key);
    expectSameRun(res[0].run(), res[1].run());

    // Cross-run: the reused runner serves both jobs from its cache.
    const auto again = runner.run(plan);
    EXPECT_EQ(runner.executions(), 1u);
    EXPECT_EQ(runner.memoHits(), 3u);
    EXPECT_TRUE(again[0].cached);
    EXPECT_TRUE(again[1].cached);
    expectSameRun(res[0].run(), again[0].run());

    runner.clearCache();
    const auto cold = runner.run(plan);
    EXPECT_EQ(runner.executions(), 2u);
    EXPECT_FALSE(cold[0].cached);
}

TEST(Runner, MemoizationCanBeDisabled)
{
    RunSetup base;
    base.workload = "gzip";
    base.input = "log";
    base.maxInsts = 5'000;
    base.machine = baselineConfig(4, 1);

    ExperimentPlan plan;
    plan.add("first", base);
    plan.add("second", base);

    RunnerOptions opts;
    opts.jobs = 1;
    opts.memoize = false;
    Runner runner(opts);
    const auto res = runner.run(plan);

    EXPECT_EQ(runner.executions(), 2u);
    EXPECT_EQ(runner.memoHits(), 0u);
    EXPECT_FALSE(res[1].cached);
    expectSameRun(res[0].run(), res[1].run());
}

/**
 * Collects (label, key) pairs and asserts global distinctness. Every
 * perturbation of every field must move the key: a collision means
 * the memo cache could silently serve one experiment's results as
 * another's.
 */
class KeySweep
{
  public:
    void
    add(const std::string &label, std::uint64_t key)
    {
        for (const auto &[other, k] : keys)
            EXPECT_NE(k, key) << "key collision: '" << other
                              << "' vs '" << label << "'";
        keys.emplace_back(label, key);
    }

    size_t size() const { return keys.size(); }

  private:
    std::vector<std::pair<std::string, std::uint64_t>> keys;
};

TEST(SetupKeys, EveryRunSetupFieldPerturbsTheKey)
{
    RunSetup base;
    base.workload = "gzip";
    base.input = "log";
    base.maxInsts = 100'000;
    base.machine = baselineConfig(16, 2);

    KeySweep sweep;
    sweep.add("base", base.key());

    auto perturbed = [&](const char *label, auto mutate) {
        RunSetup s = base;
        mutate(s);
        sweep.add(label, s.key());
    };

    perturbed("workload", [](RunSetup &s) { s.workload = "gcc"; });
    perturbed("input", [](RunSetup &s) { s.input = "graphic"; });
    perturbed("scale", [](RunSetup &s) { s.scale = 7; });
    perturbed("maxInsts", [](RunSetup &s) { s.maxInsts = 100'001; });

    auto machine = [&](const char *label, auto mutate) {
        RunSetup s = base;
        mutate(s.machine);
        sweep.add(label, s.key());
    };

    machine("fetchWidth", [](auto &m) { m.fetchWidth = 8; });
    machine("decodeWidth", [](auto &m) { m.decodeWidth = 8; });
    machine("issueWidth", [](auto &m) { m.issueWidth = 8; });
    machine("commitWidth", [](auto &m) { m.commitWidth = 8; });
    machine("ifqSize", [](auto &m) { m.ifqSize = 32; });
    machine("ruuSize", [](auto &m) { m.ruuSize = 128; });
    machine("lsqSize", [](auto &m) { m.lsqSize = 64; });
    machine("intAlu", [](auto &m) { m.intAlu = 8; });
    machine("intMult", [](auto &m) { m.intMult = 2; });
    machine("dl1Ports", [](auto &m) { m.dl1Ports = 4; });
    machine("storeForwardLat", [](auto &m) { m.storeForwardLat = 1; });
    machine("agenLat", [](auto &m) { m.agenLat = 2; });
    machine("bpred", [](auto &m) { m.bpred = "gshare"; });
    machine("redirectPenalty", [](auto &m) { m.redirectPenalty = 3; });
    machine("schedLatency", [](auto &m) { m.schedLatency = 1; });
    machine("maxTakenPerFetch", [](auto &m) { m.maxTakenPerFetch = 1; });
    machine("noAddrCalcOp", [](auto &m) { m.noAddrCalcOp = true; });
    machine("contextSwitchPeriod",
            [](auto &m) { m.contextSwitchPeriod = 400'000; });

    machine("hier.il1.size", [](auto &m) { m.hier.il1.size = 1024; });
    machine("hier.dl1.size", [](auto &m) { m.hier.dl1.size = 1024; });
    machine("hier.dl1.assoc", [](auto &m) { m.hier.dl1.assoc = 2; });
    machine("hier.dl1.lineSize",
            [](auto &m) { m.hier.dl1.lineSize = 64; });
    machine("hier.dl1.hitLatency",
            [](auto &m) { m.hier.dl1.hitLatency = 2; });
    machine("hier.l2.size", [](auto &m) { m.hier.l2.size = 1024; });
    machine("hier.memLatency", [](auto &m) { m.hier.memLatency = 90; });

    machine("svf.enabled", [](auto &m) { m.svf.enabled = true; });
    machine("svf.entries", [](auto &m) { m.svf.svf.entries = 512; });
    machine("svf.ports", [](auto &m) { m.svf.svf.ports = 4; });
    machine("svf.hitLatency",
            [](auto &m) { m.svf.svf.hitLatency = 2; });
    machine("svf.killOnShrink",
            [](auto &m) { m.svf.svf.killOnShrink = false; });
    machine("svf.fillOnAlloc",
            [](auto &m) { m.svf.svf.fillOnAlloc = true; });
    machine("svf.dirtyGranule",
            [](auto &m) { m.svf.svf.dirtyGranule = 32; });
    machine("svf.morphAllStackRefs",
            [](auto &m) { m.svf.morphAllStackRefs = true; });
    machine("svf.morphSpRefs",
            [](auto &m) { m.svf.morphSpRefs = false; });
    machine("svf.noSquash", [](auto &m) { m.svf.noSquash = true; });
    machine("svf.squashPenalty",
            [](auto &m) { m.svf.squashPenalty = 16; });
    machine("svf.dynamicDisable",
            [](auto &m) { m.svf.dynamicDisable = true; });
    machine("svf.monitorRefs",
            [](auto &m) { m.svf.monitorRefs = 512; });
    machine("svf.missRateThreshold",
            [](auto &m) { m.svf.missRateThreshold = 0.25; });
    machine("svf.disableRefs",
            [](auto &m) { m.svf.disableRefs = 1024; });

    machine("stackCacheEnabled",
            [](auto &m) { m.stackCacheEnabled = true; });
    machine("stackCache.size",
            [](auto &m) { m.stackCache.size = 4096; });
    machine("stackCache.lineSize",
            [](auto &m) { m.stackCache.lineSize = 64; });
    machine("stackCache.hitLatency",
            [](auto &m) { m.stackCache.hitLatency = 1; });
    machine("stackCache.ports",
            [](auto &m) { m.stackCache.ports = 4; });

    EXPECT_GE(sweep.size(), 45u);
}

TEST(SetupKeys, EveryTrafficSetupFieldPerturbsTheKey)
{
    TrafficSetup base;
    base.workload = "gzip";
    base.input = "log";
    base.maxInsts = 100'000;

    KeySweep sweep;
    sweep.add("base", base.key());

    auto perturbed = [&](const char *label, auto mutate) {
        TrafficSetup s = base;
        mutate(s);
        sweep.add(label, s.key());
    };

    perturbed("workload", [](auto &s) { s.workload = "gcc"; });
    perturbed("input", [](auto &s) { s.input = "graphic"; });
    perturbed("scale", [](auto &s) { s.scale = 3; });
    perturbed("maxInsts", [](auto &s) { s.maxInsts = 100'001; });
    perturbed("capacityBytes", [](auto &s) { s.capacityBytes = 4096; });
    perturbed("slicePeriod",
              [](auto &s) { s.slicePeriod = 400'000; });
    perturbed("svfDirtyGranule",
              [](auto &s) { s.svfDirtyGranule = 32; });
    perturbed("svfKillOnShrink",
              [](auto &s) { s.svfKillOnShrink = false; });
    perturbed("svfFillOnAlloc",
              [](auto &s) { s.svfFillOnAlloc = true; });

    EXPECT_EQ(sweep.size(), 10u);
}

TEST(SetupKeys, JobKindsNeverCollide)
{
    // Identical field values, different kinds: the type tag alone
    // must separate the key spaces.
    RunSetup run;
    run.workload = "gzip";
    run.input = "log";
    run.maxInsts = 100'000;

    TrafficSetup traffic;
    traffic.workload = "gzip";
    traffic.input = "log";
    traffic.maxInsts = 100'000;

    ProfileSetup profile;
    profile.workload = "gzip";
    profile.input = "log";
    profile.maxInsts = 100'000;

    std::set<std::uint64_t> keys{run.key(), traffic.key(),
                                 profile.key()};
    EXPECT_EQ(keys.size(), 3u);

    EXPECT_EQ(setupKey(JobSetup{run}), run.key());
    EXPECT_EQ(setupKey(JobSetup{traffic}), traffic.key());
    EXPECT_EQ(setupKey(JobSetup{profile}), profile.key());
}

TEST(SetupKeys, ExplicitProgramContentIsHashed)
{
    RunSetup named;
    named.workload = "gzip";
    named.input = "log";

    RunSetup with_prog = named;
    const workloads::WorkloadSpec &spec =
        workloads::workload("gzip");
    with_prog.program = std::make_shared<const isa::Program>(
        spec.build("log", spec.testScale));
    EXPECT_NE(named.key(), with_prog.key());

    RunSetup other_prog = named;
    other_prog.program = std::make_shared<const isa::Program>(
        spec.build("graphic", spec.testScale));
    EXPECT_NE(with_prog.key(), other_prog.key());

    // Same program content in a distinct allocation: identical key
    // (the content is hashed, not the pointer).
    RunSetup same_prog = named;
    same_prog.program = std::make_shared<const isa::Program>(
        spec.build("log", spec.testScale));
    EXPECT_EQ(with_prog.key(), same_prog.key());
}

TEST(JsonReportTest, EscapesAndStructure)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");

    ExperimentPlan plan;
    TrafficSetup s;
    s.workload = "gzip";
    s.input = "log";
    s.maxInsts = 50'000;
    plan.add("t\"ricky", s);

    Runner runner;
    JsonReport report;
    report.add(runner.run(plan));
    ASSERT_EQ(report.size(), 1u);

    std::ostringstream os;
    report.write(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\": \"svf-bench-1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"t\\\"ricky\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\": \"traffic\""), std::string::npos);
    EXPECT_NE(doc.find("\"svf_quads_in\""), std::string::npos);
}

} // anonymous namespace
