/**
 * @file
 * Tests for the RUU container and the LSQ helper structures.
 */

#include <gtest/gtest.h>

#include "uarch/lsq.hh"
#include "uarch/ruu.hh"

namespace svf::uarch
{
namespace
{

RuuEntry
entry(InstSeq seq)
{
    RuuEntry e;
    e.seq = seq;
    return e;
}

TEST(Ruu, FifoOrderAndCapacity)
{
    Ruu ruu(4);
    EXPECT_TRUE(ruu.empty());
    for (InstSeq s = 10; s < 14; ++s)
        ruu.push(entry(s));
    EXPECT_TRUE(ruu.full());
    EXPECT_EQ(ruu.front().seq, 10u);
    EXPECT_EQ(ruu.back().seq, 13u);
    ruu.popFront();
    EXPECT_FALSE(ruu.full());
    EXPECT_EQ(ruu.front().seq, 11u);
}

TEST(Ruu, ContainsAndBySeq)
{
    Ruu ruu(8);
    for (InstSeq s = 100; s < 105; ++s)
        ruu.push(entry(s));
    EXPECT_TRUE(ruu.contains(100));
    EXPECT_TRUE(ruu.contains(104));
    EXPECT_FALSE(ruu.contains(99));
    EXPECT_FALSE(ruu.contains(105));
    EXPECT_EQ(ruu.bySeq(102).seq, 102u);
    ruu.popFront();
    EXPECT_FALSE(ruu.contains(100));
    EXPECT_EQ(ruu.bySeq(103).seq, 103u);
}

TEST(Ruu, ProducerReadiness)
{
    Ruu ruu(8);
    RuuEntry e = entry(50);
    e.issued = true;
    e.completeCycle = 20;
    ruu.push(std::move(e));

    // Departed (committed) producers are always ready.
    EXPECT_TRUE(ruu.producerReady(49, 0));
    EXPECT_TRUE(ruu.producerReady(NoProducer, 0));

    // An in-flight producer is ready at its completion cycle.
    EXPECT_FALSE(ruu.producerReady(50, 19));
    EXPECT_TRUE(ruu.producerReady(50, 20));
    EXPECT_TRUE(ruu.producerReady(50, 25));

    // Unissued producers are never ready.
    ruu.push(entry(51));
    EXPECT_FALSE(ruu.producerReady(51, 1000));
}

TEST(Ruu, PopBackForReplay)
{
    Ruu ruu(8);
    for (InstSeq s = 0; s < 5; ++s)
        ruu.push(entry(s));
    ruu.popBack();
    ruu.popBack();
    EXPECT_EQ(ruu.back().seq, 2u);
    EXPECT_FALSE(ruu.contains(3));
    EXPECT_EQ(ruu.size(), 3u);
}

TEST(StoreWordMap, TracksLatestStorePerWord)
{
    StoreWordMap map;
    map.record(0x1000, 5);
    map.record(0x1004, 9);              // same 8-byte word
    map.record(0x1008, 7);              // next word
    EXPECT_EQ(map.lookup(0x1000, 0), 9u);
    EXPECT_EQ(map.lookup(0x1007, 0), 9u);
    EXPECT_EQ(map.lookup(0x1008, 0), 7u);
    EXPECT_EQ(map.lookup(0x2000, 0), StoreWordMap::NoStore);
}

TEST(StoreWordMap, StaleEntriesActAbsent)
{
    StoreWordMap map;
    map.record(0x1000, 5);
    EXPECT_EQ(map.lookup(0x1000, 6), StoreWordMap::NoStore);
    EXPECT_EQ(map.lookup(0x1000, 5), 5u);
}

TEST(StoreWordMap, PruneDropsOldEntries)
{
    StoreWordMap map;
    for (Addr a = 0; a < 100 * 8; a += 8)
        map.record(a, a / 8);
    map.prune(50);
    EXPECT_EQ(map.size(), 50u);
    EXPECT_EQ(map.lookup(49 * 8, 0), StoreWordMap::NoStore);
    EXPECT_EQ(map.lookup(50 * 8, 0), 50u);
}

TEST(LsqTracker, OccupancyBookkeeping)
{
    LsqTracker lsq(2);
    EXPECT_FALSE(lsq.full());
    lsq.add();
    lsq.add();
    EXPECT_TRUE(lsq.full());
    lsq.remove();
    EXPECT_FALSE(lsq.full());
    EXPECT_EQ(lsq.used(), 1u);
}

TEST(Ranges, OverlapAndCover)
{
    EXPECT_TRUE(rangesOverlap(0x100, 8, 0x104, 4));
    EXPECT_TRUE(rangesOverlap(0x104, 4, 0x100, 8));
    EXPECT_FALSE(rangesOverlap(0x100, 8, 0x108, 8));
    EXPECT_TRUE(rangesOverlap(0x100, 1, 0x100, 1));

    EXPECT_TRUE(rangeCovers(0x100, 8, 0x104, 4));
    EXPECT_TRUE(rangeCovers(0x100, 8, 0x100, 8));
    EXPECT_FALSE(rangeCovers(0x104, 4, 0x100, 8));
    EXPECT_FALSE(rangeCovers(0x100, 8, 0x104, 8));
}

} // anonymous namespace
} // namespace svf::uarch
