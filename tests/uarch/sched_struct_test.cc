/**
 * @file
 * The scheduler's host data structures (uarch/seq_ring.hh,
 * uarch/word_map.hh) and the adaptive sampled window
 * (sample=...,adapt).
 *
 * SeqRing and FlatWordMap replaced std::set / std::unordered_map on
 * the core's per-cycle paths; they must behave as drop-in value
 * replacements. The property tests here drive both through long
 * randomized operation sequences shaped like the core's real usage
 * (a sliding window of live sequence numbers; word keys that arrive
 * nearly sequential, with replay-style clears) and diff every
 * observable against the reference container after every step.
 *
 * The end-to-end half runs every workload on three machine points
 * chosen to exercise each new structure (plain wide-16 under the
 * granule filter, the SVF machine's morphed-load paths, and the
 * tiny-window SVF machine's reroute/collision storms) under both
 * SchedKinds and diffs the full counter registry — the structures
 * are host-side only, so every simulated counter must match.
 *
 * The adapt tests pin the new plan flag's setup-key discipline and
 * the estimator contract: adaptive windows land within the plain
 * plan's per-interval IPC spread while measuring strictly fewer
 * instructions, identically for any pjobs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/hash.hh"
#include "ckpt/sampler.hh"
#include "harness/counters.hh"
#include "harness/experiment.hh"
#include "uarch/machine_config.hh"
#include "uarch/seq_ring.hh"
#include "uarch/word_map.hh"
#include "workloads/registry.hh"

namespace svf::uarch
{
namespace
{

/** Walk @p ring from first() and diff against the full @p ref set. */
void
expectRingEqualsSet(SeqRing &ring, const std::set<InstSeq> &ref,
                    const char *what)
{
    ASSERT_EQ(ring.first(),
              ref.empty() ? SeqRing::End : *ref.begin())
        << what;
    InstSeq at = ring.first();
    auto it = ref.begin();
    while (at != SeqRing::End) {
        ASSERT_NE(it, ref.end()) << what << ": ring has extra "
                                 << at;
        ASSERT_EQ(at, *it) << what;
        at = ring.next(at);
        ++it;
    }
    ASSERT_EQ(it, ref.end()) << what << ": ring lost elements";
}

TEST(SeqRing, MatchesReferenceSetUnderRandomOps)
{
    constexpr std::uint64_t kSpan = 256;   // the RUU window
    constexpr int kOps = 20000;

    SeqRing ring;
    ring.configure(kSpan);
    std::set<InstSeq> ref;
    std::mt19937_64 rng(0x5e41 ^ 0x1234);

    // base mimics the RUU head: live seqs stay in [base, base+span).
    InstSeq base = 0;
    for (int op = 0; op < kOps; ++op) {
        switch (rng() % 6) {
          case 0:
          case 1: {     // insert (idempotent on repeats)
            InstSeq s = base + rng() % kSpan;
            ring.insert(s);
            ref.insert(s);
            break;
          }
          case 2: {     // erase a present element (often the min)
            if (ref.empty())
                break;
            auto it = ref.begin();
            if (rng() % 2) {
                it = ref.lower_bound(base + rng() % kSpan);
                if (it == ref.end())
                    it = ref.begin();
            }
            ring.erase(*it);
            ref.erase(it);
            break;
          }
          case 3: {     // erase an arbitrary (maybe absent) seq
            InstSeq s = base + rng() % kSpan;
            ring.erase(s);
            ref.erase(s);
            break;
          }
          case 4: {     // commit: advance the window head
            InstSeq step = rng() % (kSpan / 4);
            base += step;
            while (!ref.empty() && *ref.begin() < base) {
                ring.erase(*ref.begin());
                ref.erase(ref.begin());
            }
            break;
          }
          case 5: {     // replay/rebuild: clear, reinsert a subset
            if (rng() % 8 != 0)
                break;
            ring.clear();
            std::set<InstSeq> keep;
            for (InstSeq s : ref) {
                if (rng() % 2) {
                    ring.insert(s);
                    keep.insert(s);
                }
            }
            ref = std::move(keep);
            break;
          }
        }
        // contains() on random probes + the full ordered walk.
        InstSeq probe = base + rng() % kSpan;
        ASSERT_EQ(ring.contains(probe), ref.count(probe) != 0);
        expectRingEqualsSet(ring, ref, "after op");
        if (HasFatalFailure())
            return;
    }
}

TEST(SeqRing, NextFromArbitraryPositions)
{
    SeqRing ring;
    ring.configure(64);
    std::set<InstSeq> ref = {1000, 1003, 1017, 1040, 1062};
    for (InstSeq s : ref)
        ring.insert(s);
    // next() from every point in the window, present or not.
    for (InstSeq from = 995; from < 1070; ++from) {
        auto it = ref.upper_bound(from);
        ASSERT_EQ(ring.next(from),
                  it == ref.end() ? SeqRing::End : *it)
            << "next(" << from << ")";
    }
    ASSERT_EQ(ring.first(), 1000u);
}

TEST(FlatWordMap, MatchesReferenceMapUnderRandomOps)
{
    constexpr int kOps = 30000;
    FlatWordMap<std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::mt19937_64 rng(0xf1a7);

    // Word indices like the LSQ sees: clustered runs around a few
    // hot bases (stack frames) plus a sparse heap tail.
    auto random_key = [&]() -> std::uint64_t {
        std::uint64_t base[] = {0x1000, 0x2000, 0x77777, rng() % 64};
        return base[rng() % 4] + rng() % 512;
    };

    for (int op = 0; op < kOps; ++op) {
        switch (rng() % 4) {
          case 0:
          case 1: {     // write
            std::uint64_t k = random_key(), v = rng();
            map.slot(k) = v;
            ref[k] = v;
            break;
          }
          case 2: {     // read (maybe absent)
            std::uint64_t k = random_key();
            const std::uint64_t *got = map.find(k);
            auto it = ref.find(k);
            if (it == ref.end()) {
                ASSERT_EQ(got, nullptr) << "key " << k;
            } else {
                ASSERT_NE(got, nullptr) << "key " << k;
                ASSERT_EQ(*got, it->second);
            }
            break;
          }
          case 3: {     // generation clear (rare, like a rebind)
            if (rng() % 64 == 0) {
                map.clear();
                ref.clear();
            }
            break;
          }
        }
        ASSERT_EQ(map.liveSlots(), ref.size());
    }
    // Final full-content diff via forEach.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    map.forEach([&](std::uint64_t k, std::uint64_t v) {
        got.emplace_back(k, v);
    });
    std::vector<std::pair<std::uint64_t, std::uint64_t>> want(
        ref.begin(), ref.end());
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want);
}

TEST(FlatWordMap, EmptyVectorMeansAbsentAndSurvivesGrow)
{
    FlatWordMap<std::vector<InstSeq>> map;
    std::unordered_map<std::uint64_t, std::vector<InstSeq>> ref;
    std::mt19937_64 rng(0xbeef);

    for (int op = 0; op < 20000; ++op) {
        std::uint64_t k = rng() % 4096;
        if (rng() % 3 != 0) {
            InstSeq v = rng();
            map.slot(k).push_back(v);
            ref[k].push_back(v);
        } else {
            // "erase": clear the vector in place, keep the slot.
            if (std::vector<InstSeq> *v = map.find(k))
                v->clear();
            ref.erase(k);
        }
    }
    // Live contents (non-empty vectors) must match exactly even
    // though grow() ran many times and dropped dead slots.
    std::size_t live = 0;
    map.forEach([&](std::uint64_t k, std::vector<InstSeq> &v) {
        if (v.empty()) {
            ASSERT_EQ(ref.count(k), 0u) << "key " << k;
            return;
        }
        ++live;
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << "key " << k;
        ASSERT_EQ(v, it->second) << "key " << k;
    });
    ASSERT_EQ(live, ref.size());
}

/** Registry-driven diff: every RunResult counter plus correctness. */
void
expectRunResultsEq(const harness::RunResult &a,
                   const harness::RunResult &b,
                   const std::string &what)
{
    for (const harness::CounterDef *d : harness::runCounters()) {
        EXPECT_EQ(d->get(a), d->get(b)) << what << ": " << d->name();
    }
    EXPECT_EQ(a.completed, b.completed) << what;
    EXPECT_EQ(a.outputOk, b.outputOk) << what;
    EXPECT_EQ(a.output, b.output) << what;
}

/**
 * Every workload × three machines chosen for the new structures'
 * hot paths, scan vs event scheduler, full-registry diff.
 */
TEST(SchedStruct, AllWorkloadsThreeMachinesBitIdentical)
{
    struct NamedConfig
    {
        std::string name;
        MachineConfig machine;
    };
    std::vector<NamedConfig> machines;
    {
        // Granule filter: storesByGranule is the disambiguation path.
        MachineConfig m = harness::baselineConfig(16);
        m.disambig = DisambigKind::Filter;
        machines.push_back({"wide16_filter", m});
    }
    {
        // SVF: StoreWordMap forwarding + morphedLoadWords.
        MachineConfig m = harness::baselineConfig(16);
        harness::applySvf(m, 1024, 2);
        machines.push_back({"svf", m});
    }
    {
        // Tiny SVF window: demand fills, reroutes, collision
        // squashes — the replay paths that clear and rebuild.
        MachineConfig m = harness::baselineConfig(16);
        harness::applySvf(m, 64, 1);
        machines.push_back({"svf_tiny", m});
    }

    for (const workloads::WorkloadSpec &spec :
         workloads::allWorkloads()) {
        for (const NamedConfig &nc : machines) {
            harness::RunSetup s;
            s.workload = spec.name;
            s.input = spec.inputs.front();
            s.maxInsts = 8000;

            s.machine = nc.machine;
            s.machine.sched = SchedKind::Scan;
            harness::RunResult scan = harness::runExperiment(s);

            s.machine = nc.machine;
            s.machine.sched = SchedKind::Event;
            harness::RunResult event = harness::runExperiment(s);

            expectRunResultsEq(scan, event,
                               nc.name + "/" + spec.name);
            ASSERT_FALSE(HasFailure())
                << "first divergence at " << nc.name << "/"
                << spec.name;
        }
    }
}

TEST(AdaptPlan, ParseStrKeyDiscipline)
{
    using ckpt::SamplePlan;
    SamplePlan plain = SamplePlan::parse("8,2000,8000");
    SamplePlan adapt = SamplePlan::parse("8,2000,8000,adapt");
    SamplePlan both = SamplePlan::parse("8,2000,8000,pwarm,adapt");

    EXPECT_FALSE(plain.adaptive);
    EXPECT_TRUE(adapt.adaptive);
    EXPECT_TRUE(both.adaptive);
    EXPECT_TRUE(both.parallelWarm);

    // str() round-trips through parse().
    EXPECT_EQ(adapt.str(), "8,2000,8000,adapt");
    EXPECT_EQ(both.str(), "8,2000,8000,pwarm,adapt");
    EXPECT_EQ(SamplePlan::parse(both.str()).str(), both.str());

    // adapt is its own keyed config, and the flagless key did not
    // move (pre-existing caches stay valid).
    const std::uint64_t seed = 0x1234;
    EXPECT_NE(plain.key(seed), adapt.key(seed));
    EXPECT_NE(both.key(seed), adapt.key(seed));
    EXPECT_NE(both.key(seed),
              SamplePlan::parse("8,2000,8000,pwarm").key(seed));
}

/**
 * The adapt estimator contract on workloads whose windows converge:
 * whole-run IPC within the plain plan's per-interval spread, with
 * strictly fewer instructions measured in detail.
 */
TEST(AdaptPlan, WithinPlainSpreadWithFewerDetailedInsts)
{
    for (const char *workload : {"gzip", "gcc", "twolf"}) {
        harness::RunSetup s;
        s.workload = workload;
        s.maxInsts = 400000;
        s.machine = harness::baselineConfig(16);

        s.sample = ckpt::SamplePlan::parse("8,2000,8000");
        harness::RunResult plain = harness::runExperiment(s);

        s.sample = ckpt::SamplePlan::parse("8,2000,8000,adapt");
        harness::RunResult adapt = harness::runExperiment(s);

        ASSERT_GT(plain.sampled.intervals, 0u) << workload;
        ASSERT_GT(adapt.sampled.intervals, 0u) << workload;
        EXPECT_LT(adapt.sampled.sampledInsts,
                  plain.sampled.sampledInsts) << workload;
        EXPECT_LT(adapt.sampled.sampledCycles,
                  plain.sampled.sampledCycles) << workload;
        EXPECT_LE(std::abs(adapt.sampled.ipcMean -
                           plain.sampled.ipcMean),
                  plain.sampled.ipcStddev)
            << workload << ": adapt " << adapt.sampled.ipcMean
            << " vs plain " << plain.sampled.ipcMean << " +/- "
            << plain.sampled.ipcStddev;
    }
}

/** Adaptive windows are a pure function of their snapshot: the
 *  worker count must not change a byte. */
TEST(AdaptPlan, ResultIndependentOfPjobs)
{
    harness::RunSetup s;
    s.workload = "gcc";
    s.maxInsts = 400000;
    s.machine = harness::baselineConfig(16);
    s.sample = ckpt::SamplePlan::parse("8,2000,8000,adapt");

    s.pjobs = 1;
    harness::RunResult one = harness::runExperiment(s);
    s.pjobs = 4;
    harness::RunResult four = harness::runExperiment(s);

    expectRunResultsEq(one, four, "adapt pjobs 1 vs 4");
    EXPECT_EQ(one.sampled.sampledInsts, four.sampled.sampledInsts);
    EXPECT_EQ(one.sampled.sampledCycles, four.sampled.sampledCycles);
    EXPECT_EQ(one.sampled.ipcMean, four.sampled.ipcMean);
    EXPECT_EQ(one.sampled.ipcStddev, four.sampled.ipcStddev);
    EXPECT_EQ(one.sampled.estimatedCycles,
              four.sampled.estimatedCycles);
}

} // anonymous namespace
} // namespace svf::uarch
