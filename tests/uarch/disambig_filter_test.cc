/**
 * @file
 * Scan vs filter store disambiguation: exact resolution, cheaper.
 *
 * The granule filter (uarch/ooo_core.hh, DisambigKind::Filter) may
 * only skip backward walks that would provably find nothing — so a
 * run under DisambigKind::Scan and one under Filter must agree on
 * every simulated counter. The only permitted deltas are the two
 * host-accounting counters: disambig_scan_steps (filter skips walks,
 * so it can only drop) and disambig_filter_hits (zero under Scan).
 *
 * This suite diffs the full RunResult across *all* workloads in the
 * registry, checks the filter actually fires (a hit rate of zero
 * would mean the tentpole is a no-op), and pins scan/event scheduler
 * identity of the new counter.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/counters.hh"
#include "harness/experiment.hh"
#include "uarch/ooo_core.hh"
#include "workloads/registry.hh"

namespace svf::uarch
{
namespace
{

constexpr std::uint64_t kInsts = 20'000;

/**
 * Everything but the two accounting counters must match exactly.
 * Registry-driven: the exclusion is by the counters' JSON names, so
 * a counter added to the registry is automatically covered here.
 */
void
expectIdenticalButAccounting(const harness::RunResult &scan,
                             const harness::RunResult &filt,
                             const std::string &what)
{
    for (const harness::CounterDef *d : harness::runCounters()) {
        if (d->name() == "disambig_scan_steps" ||
            d->name() == "disambig_filter_hits") {
            continue;
        }
        EXPECT_EQ(d->get(scan), d->get(filt))
            << what << ": " << d->name();
    }
    EXPECT_EQ(scan.completed, filt.completed) << what;
    EXPECT_EQ(scan.outputOk, filt.outputOk) << what;
    EXPECT_EQ(scan.output, filt.output) << what;
}

/**
 * Every workload in the registry, baseline SVF machine: Scan and
 * Filter agree on the simulated machine, and the filter both fires
 * and pays (steps can only drop; Scan never counts a hit).
 */
TEST(DisambigFilter, AllWorkloadsBitIdenticalExceptAccounting)
{
    for (const auto &spec : workloads::allWorkloads()) {
        harness::RunSetup s;
        s.workload = spec.name;
        s.input = spec.inputs.front();
        s.maxInsts = kInsts;
        s.machine = harness::baselineConfig(16);
        harness::applySvf(s.machine, 1024, 2);

        s.machine.disambig = DisambigKind::Scan;
        harness::RunResult scan = harness::runExperiment(s);

        s.machine.disambig = DisambigKind::Filter;
        harness::RunResult filt = harness::runExperiment(s);

        const std::string what = spec.name + "." + spec.inputs.front();
        expectIdenticalButAccounting(scan, filt, what);

        EXPECT_EQ(scan.core.disambigFilterHits, 0u) << what;
        EXPECT_LE(filt.core.disambigScanSteps,
                  scan.core.disambigScanSteps) << what;
        if (scan.core.disambigScans > 0) {
            // The filter must answer a real share of the scans —
            // otherwise it is dead weight on the hot path.
            EXPECT_GT(filt.core.disambigFilterHits, 0u) << what;
            EXPECT_LE(filt.core.disambigFilterHits,
                      filt.core.disambigScans) << what;
        }
        ASSERT_FALSE(HasFailure())
            << "first divergence at " << what;
    }
}

/**
 * The new counter is part of the simulated-bookkeeping contract:
 * scan and event schedulers must report the identical hit count.
 */
TEST(DisambigFilter, FilterHitsSchedulerIndependent)
{
    harness::RunSetup s;
    s.workload = "mcf";
    s.input = "inp";
    s.maxInsts = kInsts;
    s.machine = harness::baselineConfig(16);
    harness::applySvf(s.machine, 1024, 2);
    s.machine.disambig = DisambigKind::Filter;

    s.machine.sched = SchedKind::Scan;
    harness::RunResult scan_sched = harness::runExperiment(s);

    s.machine.sched = SchedKind::Event;
    harness::RunResult event_sched = harness::runExperiment(s);

    EXPECT_GT(scan_sched.core.disambigFilterHits, 0u);
    EXPECT_EQ(scan_sched.core.disambigFilterHits,
              event_sched.core.disambigFilterHits);
    EXPECT_EQ(scan_sched.core.disambigScanSteps,
              event_sched.core.disambigScanSteps);
}

/**
 * Key discipline: the default (Filter) must hash like it always did
 * so existing memoized results stay addressable, while the
 * non-default Scan must hash apart so the runner never serves one
 * mode's accounting for the other's request.
 */
TEST(DisambigFilter, KeyFoldsOnlyNonDefaultMode)
{
    MachineConfig a = harness::baselineConfig(16);
    MachineConfig b = harness::baselineConfig(16);
    b.disambig = DisambigKind::Filter;
    EXPECT_EQ(a.key(), b.key());

    b.disambig = DisambigKind::Scan;
    EXPECT_NE(a.key(), b.key());
}

} // anonymous namespace
} // namespace svf::uarch
