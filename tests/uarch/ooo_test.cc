/**
 * @file
 * Timing-model properties of the out-of-order core: throughput and
 * latency bounds, port contention, forwarding, branch penalties and
 * the SVF fast path.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"

namespace svf::uarch
{
namespace
{

using namespace isa;

/** Run a program on a config; returns the core for inspection. */
struct Sim
{
    explicit Sim(const Program &p, const MachineConfig &cfg)
        : prog(p), oracle(prog), core(cfg, oracle)
    {
        core.run();
    }

    Program prog;
    sim::Emulator oracle;
    OooCore core;

    double ipc() const { return core.stats().ipc(); }
    Cycle cycles() const { return core.stats().cycles; }
};

MachineConfig
base16()
{
    return MachineConfig::wide16();
}

/** A long chain of dependent 1-cycle ALU ops: IPC must be ~1. */
TEST(Ooo, DependentChainBoundsIpcToOne)
{
    ProgramBuilder pb("chain");
    Label main = pb.here();
    pb.li(RegT0, 0);
    for (int i = 0; i < 2000; ++i)
        pb.addqi(RegT0, 1, RegT0);
    pb.halt();
    Sim r(pb.finish(main), base16());
    EXPECT_TRUE(r.oracle.halted());
    EXPECT_GT(r.cycles(), 2000u);
    EXPECT_LT(r.cycles(), 2100u);
}

/** Independent ALU ops: IPC approaches the machine width. */
TEST(Ooo, IndependentOpsReachWideIssue)
{
    ProgramBuilder pb("wide");
    Label main = pb.here();
    for (int i = 0; i < 4000; ++i)
        pb.addqi(static_cast<RegIndex>(1 + (i % 8)), 1,
                 static_cast<RegIndex>(1 + (i % 8)));
    pb.halt();
    // 8 independent chains of 500 -> ILP of 8.
    Sim r(pb.finish(main), base16());
    EXPECT_GT(r.ipc(), 6.0);
}

/** Multiply latency: a mulq chain runs at 1/3 IPC. */
TEST(Ooo, MultiplyChainShowsLatency)
{
    ProgramBuilder pb("mul");
    Label main = pb.here();
    pb.li(RegT0, 1);
    for (int i = 0; i < 1000; ++i)
        pb.mulqi(RegT0, 1, RegT0);
    pb.halt();
    Sim r(pb.finish(main), base16());
    EXPECT_GT(r.cycles(), 2900u);
    EXPECT_LT(r.cycles(), 3200u);
}

/** Load-use chains see the 3-cycle DL1 hit latency. */
TEST(Ooo, LoadUseChainShowsDl1Latency)
{
    ProgramBuilder pb("loaduse");
    // A pointer-chasing loop in the heap: each load depends on the
    // previous one. Build a self-pointing cell.
    Addr cell = pb.allocHeapQuads({0});
    Label main = pb.here();
    pb.li(RegT0, cell);
    pb.stq(RegT0, 0, RegT0);            // cell points to itself
    for (int i = 0; i < 1000; ++i)
        pb.ldq(RegT0, 0, RegT0);
    pb.halt();
    Sim r(pb.finish(main), base16());
    // ~3 cycles per load once warm.
    EXPECT_GT(r.cycles(), 2900u);
    EXPECT_LT(r.cycles(), 3400u);
}

/** DL1 port contention: independent loads throttle at the ports. */
TEST(Ooo, LoadThroughputLimitedByPorts)
{
    auto make = [](int n) {
        ProgramBuilder pb("ports");
        Addr buf = pb.allocHeapQuads(std::vector<std::uint64_t>(64,
                                                                1));
        Label main = pb.here();
        pb.li(RegT7, buf);
        for (int i = 0; i < n; ++i)
            pb.ldq(static_cast<RegIndex>(1 + (i % 6)),
                   static_cast<std::int32_t>((i % 64) * 8), RegT7);
        pb.halt();
        return pb.finish(main);
    };

    MachineConfig one_port = base16();
    one_port.dl1Ports = 1;
    MachineConfig two_port = base16();
    two_port.dl1Ports = 2;

    Sim r1(make(3000), one_port);
    Sim r2(make(3000), two_port);
    // 3000 independent loads: >=3000 cycles at 1 port, ~half at 2.
    EXPECT_GT(r1.cycles(), 3000u);
    EXPECT_LT(r2.cycles(), r1.cycles() * 0.6);
}

/** Store-to-load forwarding costs the configured 3 cycles. */
TEST(Ooo, StoreForwardLatency)
{
    ProgramBuilder pb("fwd");
    Label main = pb.here();
    pb.lda(RegSP, -16, RegSP);
    pb.li(RegT0, 1);
    for (int i = 0; i < 500; ++i) {
        pb.stq(RegT0, 0, RegSP);
        pb.ldq(RegT0, 0, RegSP);
        pb.addqi(RegT0, 1, RegT0);
    }
    pb.halt();
    Sim r(pb.finish(main), base16());
    // Each iteration: forward (3) + add (1) ~ 4+ cycles.
    EXPECT_GT(r.cycles(), 1900u);
}

/** The same chain through the SVF morphs to ~2-cycle iterations. */
TEST(Ooo, SvfShortensSpillReloadChains)
{
    auto make = [] {
        ProgramBuilder pb("svf-chain");
        Label main = pb.here();
        pb.lda(RegSP, -16, RegSP);
        pb.li(RegT0, 1);
        for (int i = 0; i < 500; ++i) {
            pb.stq(RegT0, 0, RegSP);
            pb.ldq(RegT0, 0, RegSP);
            pb.addqi(RegT0, 1, RegT0);
        }
        pb.halt();
        return pb.finish(main);
    };
    MachineConfig svf_cfg = base16();
    svf_cfg.svf.enabled = true;
    Sim base(make(), base16());
    Sim opt(make(), svf_cfg);
    // The renamed move chain saves one cycle per iteration over the
    // 3-cycle store-forward path (store->load->add: 4 -> 3 cycles).
    EXPECT_LT(opt.cycles(), base.cycles() * 0.85);
    EXPECT_GE(base.cycles() - opt.cycles(), 400u);
    EXPECT_EQ(opt.core.svfUnit().fastLoads(), 500u);
    EXPECT_EQ(opt.core.svfUnit().fastStores(), 500u);
}

/** Perfect prediction sails through; gshare pays for a random
 *  branch. */
TEST(Ooo, GshareMispredictPenalty)
{
    auto make = [] {
        ProgramBuilder pb("br");
        // Data-dependent unpredictable branches from an LCG.
        Label main = pb.here();
        pb.li(RegT0, 12345);
        pb.li(RegS0, 0);
        pb.li(RegS1, 500);
        Label loop = pb.here();
        pb.li(RegT1, 1103515245);
        pb.mulq(RegT0, RegT1, RegT0);
        pb.addqi(RegT0, 99, RegT0);
        pb.srli(RegT0, 16, RegT2);
        pb.andi(RegT2, 1, RegT2);
        Label skip = pb.newLabel();
        pb.beq(RegT2, skip);
        pb.addqi(RegS0, 1, RegS0);
        pb.bind(skip);
        pb.subqi(RegS1, 1, RegS1);
        pb.bne(RegS1, loop);
        pb.halt();
        return pb.finish(main);
    };
    MachineConfig perfect = base16();
    MachineConfig gshare = base16();
    gshare.bpred = "gshare";
    Sim rp(make(), perfect);
    Sim rg(make(), gshare);
    EXPECT_GT(rg.core.stats().mispredicts, 100u);
    EXPECT_GT(rg.cycles(), rp.cycles() * 1.5);
}

/** Every committed instruction is counted exactly once. */
TEST(Ooo, CommitCountMatchesOracle)
{
    ProgramBuilder pb("count");
    Label main = pb.here();
    pb.li(RegT0, 100);
    Label loop = pb.here();
    pb.subqi(RegT0, 1, RegT0);
    pb.bne(RegT0, loop);
    pb.halt();
    Sim r(pb.finish(main), base16());
    EXPECT_TRUE(r.oracle.halted());
    EXPECT_EQ(r.core.stats().committed, r.oracle.instCount());
}

/** Instruction budget cuts the run cleanly. */
TEST(Ooo, MaxInstsBudgetRespected)
{
    ProgramBuilder pb("budget");
    Label main = pb.here();
    pb.li(RegT0, 1000000);
    Label loop = pb.here();
    pb.subqi(RegT0, 1, RegT0);
    pb.bne(RegT0, loop);
    pb.halt();
    Program p = pb.finish(main);
    sim::Emulator oracle(p);
    OooCore core(base16(), oracle);
    core.run(5000);
    EXPECT_EQ(core.stats().committed, 5000u);
    EXPECT_FALSE(oracle.halted());
}

/** $sp interlock: a register move into $sp stalls dispatch. */
TEST(Ooo, SpInterlockCountsAndCompletes)
{
    ProgramBuilder pb("interlock");
    Label main = pb.here();
    pb.lda(RegT0, -64, RegSP);          // t0 = sp - 64
    pb.mov(RegT0, RegSP);               // non-immediate $sp write!
    pb.li(RegT1, 5);
    pb.stq(RegT1, 0, RegSP);
    pb.ldq(RegA0, 0, RegSP);
    pb.putint();
    pb.lda(RegSP, 64, RegSP);
    pb.halt();
    MachineConfig cfg = base16();
    cfg.svf.enabled = true;
    Sim r(pb.finish(main), cfg);
    EXPECT_TRUE(r.oracle.halted());
    EXPECT_EQ(r.oracle.output(), "5\n");
    EXPECT_EQ(r.core.stats().spInterlocks, 1u);
}

/** Context switches flush and count traffic. */
TEST(Ooo, ContextSwitchFlushes)
{
    ProgramBuilder pb("ctx");
    Label main = pb.here();
    pb.lda(RegSP, -64, RegSP);
    pb.li(RegT0, 7);
    Label loop = pb.newLabel();
    pb.li(RegS0, 3000);
    pb.bind(loop);
    pb.stq(RegT0, 0, RegSP);
    pb.ldq(RegT0, 0, RegSP);
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);
    pb.halt();
    MachineConfig cfg = base16();
    cfg.svf.enabled = true;
    cfg.contextSwitchPeriod = 1000;
    Sim r(pb.finish(main), cfg);
    EXPECT_GE(r.core.stats().ctxSwitches, 9u);
    // Each flush writes back the single dirty word (8 bytes).
    EXPECT_GT(r.core.stats().svfCtxBytes, 0u);
    EXPECT_LE(r.core.stats().svfCtxBytes,
              r.core.stats().ctxSwitches * 16);
}

/** The Section 3.2 collision: a $gpr store hitting a younger
 *  morphed load triggers squashes (and no_squash removes them). */
TEST(Ooo, RerouteCollisionSquash)
{
    auto make = [] {
        ProgramBuilder pb("collide");
        Label main = pb.here();
        pb.lda(RegSP, -32, RegSP);
        pb.li(RegS0, 400);
        Label loop = pb.here();
        // Compute the address of a local through a temp (so the
        // store below is a $gpr stack reference)...
        pb.lda(RegT0, 8, RegSP);
        // ...delay its data so it issues late...
        pb.mulqi(RegS0, 3, RegT1);
        pb.mulq(RegT1, RegT1, RegT1);
        pb.stq(RegT1, 0, RegT0);        // rerouted store
        // ...then immediately load through $sp (decode-morphed).
        pb.ldq(RegT2, 8, RegSP);        // colliding morphed load
        pb.addq(RegT2, RegZero, RegT3);
        pb.subqi(RegS0, 1, RegS0);
        pb.bne(RegS0, loop);
        pb.halt();
        return pb.finish(main);
    };
    MachineConfig cfg = MachineConfig::wide4();
    cfg.svf.enabled = true;
    Sim r(make(), cfg);
    EXPECT_GT(r.core.stats().squashes, 0u);

    MachineConfig nosq = cfg;
    nosq.svf.noSquash = true;
    Sim r2(make(), nosq);
    EXPECT_EQ(r2.core.stats().squashes, 0u);
    // Removing squashes must not slow the program down.
    EXPECT_LE(r2.cycles(), r.cycles());
}

/** Store commits need a free port: a 1-port DL1 serializes a
 *  store burst. */
TEST(Ooo, StoreCommitPortPressure)
{
    auto make = [] {
        ProgramBuilder pb("stores");
        Addr buf = pb.allocHeap(4096, 8);
        Label main = pb.here();
        pb.li(RegT7, buf);
        for (int i = 0; i < 2000; ++i)
            pb.stq(RegZero, static_cast<std::int32_t>((i % 64) * 8),
                   RegT7);
        pb.halt();
        return pb.finish(main);
    };
    MachineConfig one = base16();
    one.dl1Ports = 1;
    Sim r(make(), one);
    // 2000 stores through one port: at least 2000 cycles.
    EXPECT_GT(r.cycles(), 2000u);
}

/** Drain correctness across widths: the pipeline always
 *  terminates and commits the full program. */
class OooWidths : public testing::TestWithParam<unsigned>
{
};

TEST_P(OooWidths, NoDeadlockOnMixedWorkload)
{
    ProgramBuilder pb("mix");
    Addr buf = pb.allocHeapQuads(std::vector<std::uint64_t>(32, 3));
    Label main = pb.here();
    pb.lda(RegSP, -64, RegSP);
    pb.li(RegS0, 500);
    pb.li(RegT7, buf);
    Label loop = pb.here();
    pb.ldq(RegT0, 0, RegT7);
    pb.mulq(RegT0, RegT0, RegT1);
    pb.stq(RegT1, 8, RegSP);
    pb.ldl(RegT2, 8, RegSP);
    pb.stb(RegT2, 16, RegSP);
    pb.ldbu(RegT3, 16, RegSP);
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);
    pb.halt();

    MachineConfig cfg = MachineConfig::wide(GetParam());
    cfg.svf.enabled = true;
    Sim r(pb.finish(main), cfg);
    EXPECT_TRUE(r.oracle.halted());
    EXPECT_EQ(r.core.stats().committed, r.oracle.instCount());
}

INSTANTIATE_TEST_SUITE_P(Widths, OooWidths,
                         testing::Values(4u, 8u, 16u),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });

} // anonymous namespace
} // namespace svf::uarch
