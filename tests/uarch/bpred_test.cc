/**
 * @file
 * Tests for the branch predictors.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "isa/decode.hh"
#include "isa/encode.hh"
#include "uarch/bpred.hh"

namespace svf::uarch
{
namespace
{

using namespace isa;

sim::ExecInfo
ctrlInfo(std::uint32_t raw, Addr pc, bool taken, Addr next)
{
    static std::vector<std::unique_ptr<DecodedInst>> pool;
    auto di = std::make_unique<DecodedInst>();
    EXPECT_TRUE(decode(raw, *di));
    pool.push_back(std::move(di));
    sim::ExecInfo info;
    info.di = pool.back().get();
    info.pc = pc;
    info.taken = taken;
    info.nextPc = next;
    return info;
}

TEST(Perfect, AlwaysCorrect)
{
    PerfectPredictor p;
    auto beq = ctrlInfo(encodeBranch(Opcode::Beq, RegT0, 4), 0x10000,
                        true, 0x10014);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(p.predictAndUpdate(beq));
}

TEST(Gshare, LearnsABiasedBranch)
{
    GsharePredictor p;
    auto taken = ctrlInfo(encodeBranch(Opcode::Bne, RegT0, -4),
                          0x10020, true, 0x10014);
    // Warm up until the global history register stabilizes (12
    // bits of history plus counter saturation).
    for (int i = 0; i < 20; ++i)
        p.predictAndUpdate(taken);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(p.predictAndUpdate(taken));
}

TEST(Gshare, AlternatingBranchMispredictsSometimes)
{
    GsharePredictor p;
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        auto b = ctrlInfo(encodeBranch(Opcode::Beq, RegT0, 4),
                          0x10040, i % 2 == 0, 0);
        if (!p.predictAndUpdate(b))
            ++wrong;
    }
    // With history it may learn the pattern, but the first
    // occurrences must mispredict.
    EXPECT_GT(wrong, 0);
    EXPECT_EQ(p.mispredicts(), static_cast<std::uint64_t>(wrong));
}

TEST(Gshare, DirectUnconditionalAlwaysCorrect)
{
    GsharePredictor p;
    auto br = ctrlInfo(encodeBranch(Opcode::Br, RegZero, 100),
                       0x10000, true, 0x10194);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(p.predictAndUpdate(br));
}

TEST(Gshare, RasPredictsMatchedCallReturn)
{
    GsharePredictor p;
    auto call = ctrlInfo(encodeBranch(Opcode::Bsr, RegRA, 100),
                         0x10000, true, 0x10194);
    auto ret = ctrlInfo(encodeJsr(RegZero, RegRA), 0x10200, true,
                        0x10004);
    EXPECT_TRUE(p.predictAndUpdate(call));
    // Return to pc+4 of the call: RAS hit.
    EXPECT_TRUE(p.predictAndUpdate(ret));
}

TEST(Gshare, RasMispredictsUnbalancedReturn)
{
    GsharePredictor p;
    auto ret = ctrlInfo(encodeJsr(RegZero, RegRA), 0x10200, true,
                        0x12344);
    // Empty RAS: the return target cannot be known.
    EXPECT_FALSE(p.predictAndUpdate(ret));
}

TEST(Gshare, NestedCallsUnwindInOrder)
{
    GsharePredictor p;
    auto call1 = ctrlInfo(encodeBranch(Opcode::Bsr, RegRA, 10),
                          0x10000, true, 0);
    auto call2 = ctrlInfo(encodeBranch(Opcode::Bsr, RegRA, 10),
                          0x11000, true, 0);
    auto ret2 = ctrlInfo(encodeJsr(RegZero, RegRA), 0x12000, true,
                         0x11004);
    auto ret1 = ctrlInfo(encodeJsr(RegZero, RegRA), 0x13000, true,
                         0x10004);
    EXPECT_TRUE(p.predictAndUpdate(call1));
    EXPECT_TRUE(p.predictAndUpdate(call2));
    EXPECT_TRUE(p.predictAndUpdate(ret2));
    EXPECT_TRUE(p.predictAndUpdate(ret1));
}

TEST(Gshare, BtbLearnsIndirectTargets)
{
    GsharePredictor p;
    auto jmp = ctrlInfo(encodeJsr(RegPV, RegT0), 0x10100, true,
                        0x20000);
    // Cold BTB: miss.
    EXPECT_FALSE(p.predictAndUpdate(jmp));
    // Stable target: hit.
    EXPECT_TRUE(p.predictAndUpdate(jmp));
    // Target change: miss once, then learn again.
    auto jmp2 = ctrlInfo(encodeJsr(RegPV, RegT0), 0x10100, true,
                         0x30000);
    EXPECT_FALSE(p.predictAndUpdate(jmp2));
    EXPECT_TRUE(p.predictAndUpdate(jmp2));
}

TEST(Factory, MakesBothKinds)
{
    EXPECT_STREQ(makePredictor("perfect")->name(), "perfect");
    EXPECT_STREQ(makePredictor("gshare")->name(), "gshare");
}

TEST(FactoryDeathTest, UnknownKindIsFatal)
{
    EXPECT_EXIT(makePredictor("oracle"), testing::ExitedWithCode(1),
                "unknown branch predictor");
}

} // anonymous namespace
} // namespace svf::uarch
