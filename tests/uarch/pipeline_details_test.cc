/**
 * @file
 * Second-order pipeline behaviours: structure-size effects, commit
 * ordering, context switches with each stack structure, and the
 * front-end parameters.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"

namespace svf::uarch
{
namespace
{

using namespace isa;

struct Sim
{
    Sim(const Program &p, const MachineConfig &cfg)
        : prog(p), oracle(prog), core(cfg, oracle)
    {
        core.run();
    }

    Program prog;
    sim::Emulator oracle;
    OooCore core;
};

/** Independent work interleaved with pointer chasing: speedups
 *  should come from a bigger window. */
Program
makeWindowSensitive()
{
    ProgramBuilder pb("window");
    Addr cell = pb.allocHeapQuads({0});
    Label main = pb.here();
    pb.li(RegT7, cell);
    pb.stq(RegT7, 0, RegT7);
    pb.li(RegS0, 300);
    Label loop = pb.here();
    // One long-latency dependent load...
    pb.ldq(RegT7, 0, RegT7);
    // ...plus a burst of independent ALU work a big window can
    // overlap with the next iteration's load.
    for (int i = 0; i < 12; ++i)
        pb.addqi(static_cast<RegIndex>(1 + (i % 6)), 1,
                 static_cast<RegIndex>(1 + (i % 6)));
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);
    pb.halt();
    return pb.finish(main);
}

TEST(PipelineDetails, LargerRuuExtractsMoreIlp)
{
    MachineConfig small = MachineConfig::wide16();
    small.ruuSize = 16;
    small.lsqSize = 8;
    MachineConfig big = MachineConfig::wide16();

    Sim s(makeWindowSensitive(), small);
    Sim b(makeWindowSensitive(), big);
    EXPECT_LT(b.core.stats().cycles, s.core.stats().cycles);
}

TEST(PipelineDetails, TakenBranchThroughputLimitsFetch)
{
    // A long chain of unconditional taken branches has no data
    // dependencies at all: throughput is purely the front end's
    // taken-branches-per-cycle budget.
    ProgramBuilder pb("takens");
    Label main = pb.here();
    std::vector<Label> hops;
    for (int i = 0; i < 1200; ++i)
        hops.push_back(pb.newLabel());
    for (int i = 0; i < 1200; ++i) {
        pb.bind(hops[static_cast<size_t>(i)]);
        if (i + 1 < 1200)
            pb.br(hops[static_cast<size_t>(i) + 1]);
        else
            pb.halt();
    }
    Program p = pb.finish(main);

    MachineConfig one = MachineConfig::wide16();
    one.maxTakenPerFetch = 1;
    MachineConfig three = MachineConfig::wide16();
    three.maxTakenPerFetch = 3;

    Sim s1(p, one);
    Sim s3(p, three);
    EXPECT_LT(s1.core.stats().ipc(), 1.2);
    EXPECT_GT(s3.core.stats().ipc(),
              s1.core.stats().ipc() * 2.0);
}

TEST(PipelineDetails, SchedLatencyAddsPipelineDepth)
{
    // A short program's total time grows with scheduler depth; a
    // long loop's throughput does not.
    ProgramBuilder pb("sched");
    Label main = pb.here();
    pb.li(RegT0, 1);
    for (int i = 0; i < 20; ++i)
        pb.addqi(RegT0, 1, RegT0);
    pb.halt();
    Program p = pb.finish(main);

    MachineConfig shallow = MachineConfig::wide16();
    shallow.schedLatency = 0;
    MachineConfig deep = MachineConfig::wide16();
    deep.schedLatency = 8;

    Sim s(p, shallow);
    Sim d(p, deep);
    // The chain's first issue is delayed by the extra depth (the
    // rest overlaps), so the short program pays most of it once.
    EXPECT_GE(d.core.stats().cycles, s.core.stats().cycles + 4);
}

TEST(PipelineDetails, ContextSwitchWithStackCacheCountsBytes)
{
    ProgramBuilder pb("ctxsc");
    Label main = pb.here();
    pb.lda(RegSP, -64, RegSP);
    pb.li(RegS0, 5000);
    Label loop = pb.here();
    pb.stq(RegS0, 0, RegSP);
    pb.ldq(RegT0, 0, RegSP);
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);
    pb.halt();
    Program p = pb.finish(main);

    MachineConfig cfg = MachineConfig::wide16();
    cfg.stackCacheEnabled = true;
    cfg.contextSwitchPeriod = 2000;
    Sim s(p, cfg);
    EXPECT_GE(s.core.stats().ctxSwitches, 5u);
    EXPECT_GT(s.core.stats().scCtxBytes, 0u);
    // A whole 32-byte line per dirty word: coarser than the SVF's.
    EXPECT_GE(s.core.stats().scCtxBytes,
              s.core.stats().ctxSwitches * 32);
}

TEST(PipelineDetails, RedirectPenaltyScalesMispredictCost)
{
    ProgramBuilder pb("redirect");
    Label main = pb.here();
    pb.li(RegT0, 9);
    pb.li(RegS0, 600);
    Label loop = pb.here();
    pb.li(RegT1, 6364136223846793005ULL);
    pb.mulq(RegT0, RegT1, RegT0);
    pb.addqi(RegT0, 13, RegT0);
    pb.srli(RegT0, 17, RegT2);
    pb.andi(RegT2, 1, RegT2);
    Label skip = pb.newLabel();
    pb.beq(RegT2, skip);
    pb.nop();
    pb.bind(skip);
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);
    pb.halt();
    Program p = pb.finish(main);

    Cycle prev = 0;
    for (unsigned pen : {0u, 8u, 32u}) {
        MachineConfig cfg = MachineConfig::wide16();
        cfg.bpred = "gshare";
        cfg.redirectPenalty = pen;
        Sim s(p, cfg);
        EXPECT_GT(s.core.stats().mispredicts, 50u);
        EXPECT_GE(s.core.stats().cycles, prev);
        prev = s.core.stats().cycles;
    }
}

TEST(PipelineDetails, StoresCommitInOrderWithLoads)
{
    // A read-after-write chain through memory across commit: the
    // oracle guarantees values; here we check timing sanity — the
    // consumer can never complete before the producer store issued.
    ProgramBuilder pb("order");
    Addr slot = pb.allocHeapQuads({0});
    Label main = pb.here();
    pb.li(RegT7, slot);
    pb.li(RegS0, 200);
    Label loop = pb.here();
    pb.stq(RegS0, 0, RegT7);
    pb.ldq(RegT0, 0, RegT7);
    pb.subqi(RegT0, 1, RegS0);          // chain through the memory
    pb.bne(RegS0, loop);
    pb.halt();
    Program p = pb.finish(main);
    Sim s(p, MachineConfig::wide16());
    EXPECT_TRUE(s.oracle.halted());
    // Forward latency bounds the loop: >= 4 cycles per iteration.
    EXPECT_GT(s.core.stats().cycles, 800u);
}

TEST(PipelineDetails, SvfPortSaturationIsVisible)
{
    // All-morphable traffic: 1 SVF port halves throughput vs 4.
    ProgramBuilder pb("svfports");
    Label main = pb.here();
    pb.lda(RegSP, -64, RegSP);
    for (int i = 0; i < 3000; ++i) {
        if (i % 2 == 0)
            pb.stq(RegZero, (i % 8) * 8, RegSP);
        else
            pb.ldq(static_cast<RegIndex>(1 + (i % 6)),
                   ((i - 1) % 8) * 8, RegSP);
    }
    pb.halt();
    Program p = pb.finish(main);

    auto run_ports = [&](unsigned ports) {
        MachineConfig cfg = MachineConfig::wide16();
        cfg.svf.enabled = true;
        cfg.svf.svf.ports = ports;
        Sim s(p, cfg);
        return s.core.stats().cycles;
    };
    Cycle one = run_ports(1);
    Cycle four = run_ports(4);
    EXPECT_GT(one, four * 3 / 2);
}

} // anonymous namespace
} // namespace svf::uarch
