/**
 * @file
 * Scan vs event issue scheduler: statistical bit-identity.
 *
 * The event-driven scheduler (uarch/sched.hh) is a pure host-side
 * optimization — every simulated outcome must match the full-window
 * scan exactly. This suite runs the same setup under both SchedKinds
 * and diffs every CoreStats counter, every RunResult counter and the
 * program output, across the bench machine configurations (Table 2
 * widths, SVF variants including squash-prone and no-squash, stack
 * cache, no_addr_cal_op, context switching, gshare) and several
 * workloads, plus a purpose-built reroute-collision program whose
 * replay storms exercise the scheduler-rebuild path.
 *
 * Compiled twice: the tier1 binary uses a small instruction budget;
 * the tier2 sweep (SVF_SCHED_EQUIV_TIER2) covers every workload's
 * first input at a much larger budget.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "harness/counters.hh"
#include "harness/experiment.hh"
#include "isa/builder.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"
#include "workloads/registry.hh"

namespace svf::uarch
{
namespace
{

using namespace isa;

#ifdef SVF_SCHED_EQUIV_TIER2
constexpr std::uint64_t kInsts = 150'000;
#else
constexpr std::uint64_t kInsts = 20'000;
#endif

std::vector<std::pair<std::string, std::string>>
testInputs()
{
#ifdef SVF_SCHED_EQUIV_TIER2
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &spec : workloads::allWorkloads())
        out.emplace_back(spec.name, spec.inputs.front());
    return out;
#else
    return {{"mcf", "inp"}, {"gzip", "program"}, {"parser", "ref"}};
#endif
}

struct NamedConfig
{
    std::string name;
    MachineConfig machine;
};

/** The machine points the bench binaries sweep, one of each kind. */
std::vector<NamedConfig>
benchConfigs()
{
    std::vector<NamedConfig> out;
    out.push_back({"wide4", harness::baselineConfig(4)});
    out.push_back({"wide8", harness::baselineConfig(8)});
    out.push_back({"wide16(1+0)", harness::baselineConfig(16, 1)});
    {
        MachineConfig m = harness::baselineConfig(16);
        harness::applySvf(m, 1024, 2);
        out.push_back({"svf(2+2)", m});
    }
    {
        // Tiny SVF: window misses, demand fills and reroutes.
        MachineConfig m = harness::baselineConfig(16);
        harness::applySvf(m, 64, 1);
        out.push_back({"svf_tiny(64w)", m});
    }
    {
        MachineConfig m = harness::baselineConfig(16);
        harness::applySvf(m, 1024, 2);
        m.svf.noSquash = true;
        out.push_back({"svf_no_squash", m});
    }
    {
        MachineConfig m = harness::baselineConfig(16);
        harness::applyStackCache(m, 8 * 1024, 2);
        out.push_back({"stack_cache", m});
    }
    {
        MachineConfig m = harness::baselineConfig(16);
        m.noAddrCalcOp = true;
        out.push_back({"no_addr_cal_op", m});
    }
    {
        MachineConfig m = harness::baselineConfig(16);
        harness::applySvf(m, 1024, 2);
        m.contextSwitchPeriod = 10'000;
        out.push_back({"ctx_switch", m});
    }
    out.push_back({"gshare",
                   harness::baselineConfig(16, 2, "gshare")});
    return out;
}

/** Registry-driven diff: every CoreStats counter, by name. */
void
expectCoreStatsEq(const CoreStats &scan, const CoreStats &event,
                  const std::string &what)
{
    for (const harness::CounterDef *d : harness::runCounters()) {
        if (!d->fromCoreStats())
            continue;
        EXPECT_EQ(scan.*(d->coreField()), event.*(d->coreField()))
            << what << ": " << d->name();
    }
}

/** Registry-driven diff: every RunResult counter plus correctness. */
void
expectRunResultsEq(const harness::RunResult &scan,
                   const harness::RunResult &event,
                   const std::string &what)
{
    for (const harness::CounterDef *d : harness::runCounters()) {
        EXPECT_EQ(d->get(scan), d->get(event))
            << what << ": " << d->name();
    }
    EXPECT_EQ(scan.completed, event.completed) << what;
    EXPECT_EQ(scan.outputOk, event.outputOk) << what;
    EXPECT_EQ(scan.output, event.output) << what;
}

/** Every bench machine point × several workloads, both schedulers. */
TEST(SchedEquiv, BenchConfigsBitIdentical)
{
    for (const auto &[workload, input] : testInputs()) {
        for (const NamedConfig &nc : benchConfigs()) {
            harness::RunSetup s;
            s.workload = workload;
            s.input = input;
            s.maxInsts = kInsts;

            s.machine = nc.machine;
            s.machine.sched = SchedKind::Scan;
            harness::RunResult scan = harness::runExperiment(s);

            s.machine = nc.machine;
            s.machine.sched = SchedKind::Event;
            harness::RunResult event = harness::runExperiment(s);

            expectRunResultsEq(scan, event,
                               nc.name + "/" + workload + "." +
                               input);
            ASSERT_FALSE(HasFailure())
                << "first divergence at " << nc.name << "/"
                << workload << "." << input;
        }
    }
}

/**
 * The Section 3.2 collision program (a $gpr store racing a morphed
 * $sp load): squashes and replays must occur and stay identical —
 * the replay path rebuilds the event scheduler's state wholesale.
 */
TEST(SchedEquiv, RerouteSquashReplayBitIdentical)
{
    auto make = [] {
        ProgramBuilder pb("collide");
        Label main = pb.here();
        pb.lda(RegSP, -32, RegSP);
        pb.li(RegS0, 400);
        Label loop = pb.here();
        pb.lda(RegT0, 8, RegSP);
        pb.mulqi(RegS0, 3, RegT1);
        pb.mulq(RegT1, RegT1, RegT1);
        pb.stq(RegT1, 0, RegT0);        // rerouted store
        pb.ldq(RegT2, 8, RegSP);        // colliding morphed load
        pb.addq(RegT2, RegZero, RegT3);
        pb.subqi(RegS0, 1, RegS0);
        pb.bne(RegS0, loop);
        pb.halt();
        return pb.finish(main);
    };

    for (unsigned width : {4u, 16u}) {
        MachineConfig cfg = MachineConfig::wide(width);
        cfg.svf.enabled = true;

        cfg.sched = SchedKind::Scan;
        Program p1 = make();
        sim::Emulator o1(p1);
        OooCore scan_core(cfg, o1);
        scan_core.run();

        cfg.sched = SchedKind::Event;
        Program p2 = make();
        sim::Emulator o2(p2);
        OooCore event_core(cfg, o2);
        event_core.run();

        const CoreStats &scan = scan_core.stats();
        const CoreStats &event = event_core.stats();
        EXPECT_GT(scan.squashes, 0u) << "collision coverage lost";
        expectCoreStatsEq(scan, event,
                          "collide/wide" + std::to_string(width));
    }
}

/** Idle-skipping must actually engage, or the tentpole is a no-op. */
TEST(SchedEquiv, EventModeSkipsIdleCycles)
{
    // Dependent loads that miss to memory: long idle gaps.
    ProgramBuilder pb("misses");
    Addr buf = pb.allocHeap(1 << 20, 8);
    Label main = pb.here();
    pb.li(RegT7, buf);
    pb.li(RegT0, 0);
    for (int i = 0; i < 200; ++i) {
        pb.lda(RegT7, 4096, RegT7);     // next cold line
        pb.addq(RegT0, RegT7, RegT1);   // chain through the load
        pb.ldq(RegT0, 0, RegT1);        // cold miss to memory
    }
    pb.halt();
    Program p = pb.finish(main);

    MachineConfig cfg = MachineConfig::wide16();
    cfg.sched = SchedKind::Event;
    sim::Emulator oracle(p);
    OooCore core(cfg, oracle);
    core.run();

    EXPECT_GT(core.schedStats().skippedCycles, 0u);
    EXPECT_LT(core.schedStats().activeCycles, core.stats().cycles);
    EXPECT_EQ(core.schedStats().activeCycles +
                  core.schedStats().skippedCycles,
              core.stats().cycles);
}

} // anonymous namespace
} // namespace svf::uarch
