# End-to-end trace smoke test (ctest -L trace_smoke).
#
# Traces a stall_heavy-style detailed window (mcf on the SVF
# machine), then drives every svf-trace subcommand against the
# result: summarize must see events (it exits 1 on an empty or
# corrupt stream), a category filter must still match, and the
# converted Chrome JSON must be well-formed enough for Perfetto
# (braces balanced, traceEvents present — checked textually so the
# smoke test needs no JSON parser on the host).
#
# Usage: cmake -DSVF_SIM=... -DSVF_TRACE=... -DWORK_DIR=... -P this

set(TRACE_BIN "${WORK_DIR}/trace_smoke.bin")
file(REMOVE "${TRACE_BIN}" "${TRACE_BIN}.json")

execute_process(
    COMMAND "${SVF_SIM}" workload=mcf insts=100000 svf=1
            "trace=${TRACE_BIN}"
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "svf-sim trace= run failed (rc=${rc})")
endif()

if(NOT EXISTS "${TRACE_BIN}" OR NOT EXISTS "${TRACE_BIN}.json")
    message(FATAL_ERROR "trace= did not produce both output files")
endif()

# summarize exits 1 when the stream is empty, corrupt or unreadable.
execute_process(
    COMMAND "${SVF_TRACE}" summarize "${TRACE_BIN}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE summary)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "svf-trace summarize failed (rc=${rc})")
endif()
if(NOT summary MATCHES "commit")
    message(FATAL_ERROR "summary lists no commit events:\n${summary}")
endif()

# Category filtering must keep a non-empty SVF subset.
execute_process(
    COMMAND "${SVF_TRACE}" summarize "${TRACE_BIN}" cats=svf
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "svf-trace cats=svf filter matched nothing")
endif()

# convert re-emits Chrome JSON from the (filtered) binary.
execute_process(
    COMMAND "${SVF_TRACE}" convert "${TRACE_BIN}" cats=core
            "out=${TRACE_BIN}.core.json"
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "svf-trace convert failed (rc=${rc})")
endif()

# Well-formedness of the Perfetto-loadable JSON: key present, braces
# and brackets balanced.
foreach(json "${TRACE_BIN}.json" "${TRACE_BIN}.core.json")
    file(READ "${json}" text)
    if(NOT text MATCHES "\"traceEvents\"")
        message(FATAL_ERROR "${json}: no traceEvents key")
    endif()
    string(REGEX MATCHALL "{" opens "${text}")
    string(REGEX MATCHALL "}" closes "${text}")
    list(LENGTH opens n_open)
    list(LENGTH closes n_close)
    if(NOT n_open EQUAL n_close)
        message(FATAL_ERROR
                "${json}: unbalanced braces (${n_open}/${n_close})")
    endif()
endforeach()

file(REMOVE "${TRACE_BIN}" "${TRACE_BIN}.json"
     "${TRACE_BIN}.core.json")
message(STATUS "trace smoke OK")
