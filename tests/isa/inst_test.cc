/**
 * @file
 * Tests for decoded-instruction classification: destination and
 * source registers, memory/control flags, and the stack-specific
 * predicates the SVF front end depends on.
 */

#include <gtest/gtest.h>

#include "isa/decode.hh"
#include "isa/encode.hh"

namespace svf::isa
{
namespace
{

DecodedInst
dec(std::uint32_t raw)
{
    DecodedInst di;
    EXPECT_TRUE(decode(raw, di));
    return di;
}

TEST(Inst, LoadDestAndSources)
{
    DecodedInst di = dec(encodeMem(Opcode::Ldq, RegA0, RegSP, 8));
    EXPECT_EQ(di.destReg(), RegA0);
    RegIndex srcs[2];
    ASSERT_EQ(di.srcRegs(srcs), 1u);
    EXPECT_EQ(srcs[0], RegSP);
}

TEST(Inst, StoreHasNoDestTwoSources)
{
    DecodedInst di = dec(encodeMem(Opcode::Stq, RegA0, RegSP, 8));
    EXPECT_EQ(di.destReg(), NoReg);
    RegIndex srcs[2];
    ASSERT_EQ(di.srcRegs(srcs), 2u);
    EXPECT_EQ(srcs[0], RegA0);          // data
    EXPECT_EQ(srcs[1], RegSP);          // base
}

TEST(Inst, ZeroRegisterIsNeverASourceOrDest)
{
    DecodedInst di = dec(encodeMem(Opcode::Ldq, RegZero, RegZero, 0));
    EXPECT_EQ(di.destReg(), NoReg);
    RegIndex srcs[2];
    EXPECT_EQ(di.srcRegs(srcs), 0u);

    di = dec(encodeOp(IntFunct::Bis, RegZero, RegZero, RegZero));
    EXPECT_EQ(di.destReg(), NoReg);
    EXPECT_EQ(di.srcRegs(srcs), 0u);
}

TEST(Inst, OperateLiteralHasOneSource)
{
    DecodedInst di = dec(encodeOpLit(IntFunct::Addq, RegT0, 9,
                                     RegT1));
    EXPECT_EQ(di.destReg(), RegT1);
    RegIndex srcs[2];
    ASSERT_EQ(di.srcRegs(srcs), 1u);
    EXPECT_EQ(srcs[0], RegT0);
}

TEST(Inst, BranchSourcesAndLink)
{
    DecodedInst di = dec(encodeBranch(Opcode::Beq, RegT3, 4));
    EXPECT_EQ(di.destReg(), NoReg);
    RegIndex srcs[2];
    ASSERT_EQ(di.srcRegs(srcs), 1u);
    EXPECT_EQ(srcs[0], RegT3);

    di = dec(encodeBranch(Opcode::Bsr, RegRA, 4));
    EXPECT_EQ(di.destReg(), RegRA);
    EXPECT_EQ(di.srcRegs(srcs), 0u);
}

TEST(Inst, SysPutintReadsA0)
{
    DecodedInst di = dec(encodeSys(SysFunct::Putint));
    RegIndex srcs[2];
    ASSERT_EQ(di.srcRegs(srcs), 1u);
    EXPECT_EQ(srcs[0], RegA0);

    di = dec(encodeSys(SysFunct::Halt));
    EXPECT_EQ(di.srcRegs(srcs), 0u);
}

TEST(Inst, SpBasedPredicate)
{
    EXPECT_TRUE(dec(encodeMem(Opcode::Ldq, RegA0, RegSP, 8))
                    .isSpBased());
    EXPECT_TRUE(dec(encodeMem(Opcode::Stb, RegA0, RegSP, 8))
                    .isSpBased());
    EXPECT_FALSE(dec(encodeMem(Opcode::Ldq, RegA0, RegFP, 8))
                     .isSpBased());
    // lda is address arithmetic, not a memory reference.
    EXPECT_FALSE(dec(encodeMem(Opcode::Lda, RegA0, RegSP, 8))
                     .isSpBased());
}

TEST(Inst, SpAdjustPredicate)
{
    // The canonical frame idiom.
    EXPECT_TRUE(dec(encodeMem(Opcode::Lda, RegSP, RegSP, -64))
                    .isSpAdjust());
    EXPECT_TRUE(dec(encodeMem(Opcode::Lda, RegSP, RegSP, 64))
                    .isSpAdjust());
    // lda $sp, imm($other) is a non-immediate update -> interlock.
    EXPECT_FALSE(dec(encodeMem(Opcode::Lda, RegSP, RegT0, 0))
                     .isSpAdjust());
    EXPECT_FALSE(dec(encodeMem(Opcode::Lda, RegT0, RegSP, -64))
                     .isSpAdjust());
}

TEST(Inst, WritesSpPredicate)
{
    EXPECT_TRUE(dec(encodeMem(Opcode::Lda, RegSP, RegSP, -64))
                    .writesSp());
    EXPECT_TRUE(dec(encodeOp(IntFunct::Bis, RegT0, RegT0, RegSP))
                    .writesSp());
    EXPECT_TRUE(dec(encodeMem(Opcode::Ldq, RegSP, RegT0, 0))
                    .writesSp());
    EXPECT_FALSE(dec(encodeMem(Opcode::Stq, RegSP, RegT0, 0))
                     .writesSp());
}

TEST(Inst, ControlClassification)
{
    DecodedInst di = dec(encodeBranch(Opcode::Br, RegZero, 1));
    EXPECT_TRUE(di.ctrl);
    EXPECT_TRUE(di.uncondBranch);
    EXPECT_FALSE(di.call);

    di = dec(encodeBranch(Opcode::Bsr, RegRA, 1));
    EXPECT_TRUE(di.call);

    di = dec(encodeJsr(RegRA, RegPV));
    EXPECT_TRUE(di.indirect);
    EXPECT_TRUE(di.call);

    di = dec(encodeJsr(RegZero, RegRA));
    EXPECT_TRUE(di.ret);
}

} // anonymous namespace
} // namespace svf::isa
