/**
 * @file
 * Tests for the two-pass text assembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/emulator.hh"

namespace svf::isa
{
namespace
{

/** Assemble + run a program and return its output. */
std::string
runAsm(const std::string &src, std::uint64_t max_insts = 100000)
{
    Program p = assemble(src);
    sim::Emulator emu(p);
    emu.run(max_insts);
    EXPECT_TRUE(emu.halted());
    return emu.output();
}

TEST(Assembler, MinimalProgram)
{
    std::string out = runAsm(R"(
main:
    li $a0, 42
    putint
    halt
)");
    EXPECT_EQ(out, "42\n");
}

TEST(Assembler, ArithmeticAndBranches)
{
    // Sum 1..10 with a loop.
    std::string out = runAsm(R"(
main:
    li $t0, 0       ; sum
    li $t1, 10      ; i
loop:
    addq $t0, $t1, $t0
    subq $t1, 1, $t1
    bne $t1, loop
    mov $t0, $a0
    putint
    halt
)");
    EXPECT_EQ(out, "55\n");
}

TEST(Assembler, MemoryAndDataSection)
{
    std::string out = runAsm(R"(
main:
    la  $t0, answer
    ldq $a0, 0($t0)
    putint
    ldbu $a0, 8($t0)
    putint
    halt
    .data
answer: .quad 1234
bytes:  .byte 7, 9
)");
    EXPECT_EQ(out, "1234\n7\n");
}

TEST(Assembler, StackIdioms)
{
    std::string out = runAsm(R"(
main:
    lda $sp, -32($sp)
    li $t0, 99
    stq $t0, 8($sp)
    ldq $a0, 8($sp)
    putint
    lda $sp, 32($sp)
    halt
)");
    EXPECT_EQ(out, "99\n");
}

TEST(Assembler, CallAndReturn)
{
    std::string out = runAsm(R"(
main:
    lda $sp, -16($sp)
    stq $ra, 8($sp)
    li $a0, 20
    call double_it
    mov $v0, $a0
    putint
    ldq $ra, 8($sp)
    lda $sp, 16($sp)
    halt
double_it:
    addq $a0, $a0, $v0
    ret
)");
    EXPECT_EQ(out, "40\n");
}

TEST(Assembler, IndirectJumpThroughPv)
{
    std::string out = runAsm(R"(
main:
    la $pv, target
    jsr $ra, ($pv)
    halt
target:
    li $a0, 5
    putint
    ret
)");
    EXPECT_EQ(out, "5\n");
}

TEST(Assembler, LiWideConstants)
{
    std::string out = runAsm(R"(
main:
    li $a0, 0x7fff0000
    putint
    li $a0, -70000
    putint
    halt
)");
    EXPECT_EQ(out, "2147418112\n-70000\n");
}

TEST(Assembler, AsciiAndSpace)
{
    std::string out = runAsm(R"(
main:
    la $t0, msg
    ldbu $a0, 0($t0)
    putc
    ldbu $a0, 1($t0)
    putc
    halt
    .data
pad: .space 3
msg: .asciz "Hi"
)");
    EXPECT_EQ(out, "Hi");
}

TEST(Assembler, AlignDirective)
{
    Program p = assemble(R"(
main:
    halt
    .data
a:  .byte 1
    .align 8
b:  .quad 2
)");
    // b must land on an 8-byte boundary.
    ASSERT_EQ(p.sections.size(), 2u);
    // Data section: 1 byte, then 7 bytes pad, then the quad.
    EXPECT_EQ(p.sections[1].bytes.size(), 16u);
    EXPECT_EQ(p.sections[1].bytes[8], 2u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    std::string out = runAsm(R"(
; leading comment
# another comment style

main:           ; label with comment
    li $a0, 1   # trailing
    putint
    halt
)");
    EXPECT_EQ(out, "1\n");
}

TEST(Assembler, EntryDefaultsToMainLabel)
{
    Program p = assemble(R"(
helper:
    ret
main:
    halt
)");
    EXPECT_EQ(p.entry, layout::TextBase + 4);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    try {
        assemble("main:\n    frobnicate $a0\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("frobnicate"),
                  std::string::npos);
    }
}

TEST(AssemblerErrors, UnknownSymbol)
{
    EXPECT_THROW(assemble("main:\n    br nowhere\n"), AsmError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("a:\n    nop\na:\n    halt\n"), AsmError);
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_THROW(assemble("main:\n    mov $bogus, $a0\n"), AsmError);
}

TEST(AssemblerErrors, DisplacementRange)
{
    EXPECT_THROW(assemble("main:\n    ldq $a0, 99999($sp)\n"),
                 AsmError);
}

TEST(AssemblerErrors, LiteralRange)
{
    EXPECT_THROW(assemble("main:\n    addq $a0, 256, $a0\n"),
                 AsmError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("main:\n    addq $a0, $a1\n"), AsmError);
}

TEST(AssemblerErrors, InstructionInDataSection)
{
    EXPECT_THROW(assemble(".data\n    nop\n"), AsmError);
}

TEST(AssemblerErrors, EmptyProgram)
{
    EXPECT_THROW(assemble("; nothing here\n"), AsmError);
}

} // anonymous namespace
} // namespace svf::isa
