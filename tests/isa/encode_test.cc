/**
 * @file
 * Encode/decode round-trip tests for the SVA instruction formats.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

namespace svf::isa
{
namespace
{

TEST(Encode, MemFormatRoundTrip)
{
    std::uint32_t raw = encodeMem(Opcode::Ldq, RegA0, RegSP, -32);
    DecodedInst di;
    ASSERT_TRUE(decode(raw, di));
    EXPECT_EQ(di.op, Opcode::Ldq);
    EXPECT_EQ(di.ra, RegA0);
    EXPECT_EQ(di.rb, RegSP);
    EXPECT_EQ(di.disp, -32);
    EXPECT_TRUE(di.memRef);
    EXPECT_TRUE(di.load);
    EXPECT_EQ(di.memSize, 8u);
}

TEST(Encode, MemFormatExtremeDisplacements)
{
    for (std::int32_t disp : {-32768, -1, 0, 1, 32767}) {
        std::uint32_t raw = encodeMem(Opcode::Stq, RegT0, RegT1,
                                      disp);
        DecodedInst di;
        ASSERT_TRUE(decode(raw, di));
        EXPECT_EQ(di.disp, disp);
    }
}

TEST(EncodeDeathTest, MemDisplacementOutOfRange)
{
    EXPECT_DEATH(encodeMem(Opcode::Ldq, RegA0, RegSP, 32768),
                 "out of range");
    EXPECT_DEATH(encodeMem(Opcode::Ldq, RegA0, RegSP, -32769),
                 "out of range");
}

TEST(Encode, OperateRegisterForm)
{
    std::uint32_t raw = encodeOp(IntFunct::Subq, RegT0, RegT1, RegV0);
    DecodedInst di;
    ASSERT_TRUE(decode(raw, di));
    EXPECT_EQ(di.op, Opcode::IntOp);
    EXPECT_EQ(di.funct, IntFunct::Subq);
    EXPECT_FALSE(di.useLit);
    EXPECT_EQ(di.ra, RegT0);
    EXPECT_EQ(di.rb, RegT1);
    EXPECT_EQ(di.rc, RegV0);
    EXPECT_EQ(di.cls, InstClass::IntAlu);
}

TEST(Encode, OperateLiteralForm)
{
    std::uint32_t raw = encodeOpLit(IntFunct::Addq, RegSP, 255,
                                    RegSP);
    DecodedInst di;
    ASSERT_TRUE(decode(raw, di));
    EXPECT_TRUE(di.useLit);
    EXPECT_EQ(di.lit, 255u);
    EXPECT_EQ(di.ra, RegSP);
    EXPECT_EQ(di.rc, RegSP);
}

TEST(Encode, MultiplyClassifiesAsIntMult)
{
    DecodedInst di;
    ASSERT_TRUE(decode(encodeOp(IntFunct::Mulq, RegT0, RegT1, RegT2),
                       di));
    EXPECT_EQ(di.cls, InstClass::IntMult);
    ASSERT_TRUE(decode(encodeOp(IntFunct::Umulh, RegT0, RegT1, RegT2),
                       di));
    EXPECT_EQ(di.cls, InstClass::IntMult);
}

TEST(Encode, BranchFormats)
{
    DecodedInst di;
    ASSERT_TRUE(decode(encodeBranch(Opcode::Beq, RegT0, -100), di));
    EXPECT_TRUE(di.condBranch);
    EXPECT_EQ(di.disp, -100);

    ASSERT_TRUE(decode(encodeBranch(Opcode::Bsr, RegRA, 5000), di));
    EXPECT_TRUE(di.uncondBranch);
    EXPECT_TRUE(di.call);
    EXPECT_EQ(di.disp, 5000);
}

TEST(Encode, BranchDisplacementLimits)
{
    DecodedInst di;
    ASSERT_TRUE(decode(encodeBranch(Opcode::Br, RegZero,
                                    -(1 << 20)), di));
    EXPECT_EQ(di.disp, -(1 << 20));
    ASSERT_TRUE(decode(encodeBranch(Opcode::Br, RegZero,
                                    (1 << 20) - 1), di));
    EXPECT_EQ(di.disp, (1 << 20) - 1);
}

TEST(Encode, JsrAndRet)
{
    DecodedInst di;
    ASSERT_TRUE(decode(encodeJsr(RegRA, RegPV), di));
    EXPECT_TRUE(di.indirect);
    EXPECT_TRUE(di.call);
    EXPECT_FALSE(di.ret);

    ASSERT_TRUE(decode(encodeJsr(RegZero, RegRA), di));
    EXPECT_TRUE(di.ret);
    EXPECT_FALSE(di.call);
}

TEST(Encode, SysFormats)
{
    DecodedInst di;
    ASSERT_TRUE(decode(encodeSys(SysFunct::Halt), di));
    EXPECT_EQ(di.sys, SysFunct::Halt);
    ASSERT_TRUE(decode(encodeSys(SysFunct::Putint), di));
    EXPECT_EQ(di.sys, SysFunct::Putint);
}

TEST(Decode, RejectsIllegalOpcodes)
{
    DecodedInst di;
    // Opcode 0x3f is unused... 0x3f is Bgt; use an unused slot.
    EXPECT_FALSE(decode(0x04u << 26, di));
    EXPECT_FALSE(decode(0x3cu << 26, di));
}

TEST(Decode, RejectsIllegalFunct)
{
    DecodedInst di;
    // IntOp with funct beyond Umulh.
    std::uint32_t raw = (0x10u << 26) | (0x7fu << 5);
    EXPECT_FALSE(decode(raw, di));
}

TEST(Disasm, RendersKeyForms)
{
    DecodedInst di;
    ASSERT_TRUE(decode(encodeMem(Opcode::Lda, RegSP, RegSP, -48),
                       di));
    EXPECT_EQ(disassemble(di, 0x10000), "lda $sp, -48($sp)");

    ASSERT_TRUE(decode(encodeOpLit(IntFunct::Addq, RegT0, 4, RegT1),
                       di));
    EXPECT_EQ(disassemble(di, 0x10000), "addq $t0, 4, $t1");

    ASSERT_TRUE(decode(encodeBranch(Opcode::Beq, RegT0, 3), di));
    EXPECT_EQ(disassemble(di, 0x10000), "beq $t0, 0x10010");

    ASSERT_TRUE(decode(encodeJsr(RegZero, RegRA), di));
    EXPECT_EQ(disassemble(di, 0), "jsr $zero, ($ra)");
}

/** Property: encodings survive a full decode for random fields. */
TEST(Encode, RandomRoundTripProperty)
{
    Rng rng(321);
    for (int i = 0; i < 20000; ++i) {
        auto ra = static_cast<RegIndex>(rng.below(NumRegs));
        auto rb = static_cast<RegIndex>(rng.below(NumRegs));
        auto rc = static_cast<RegIndex>(rng.below(NumRegs));
        auto disp = static_cast<std::int32_t>(
            rng.range(-32768, 32767));
        auto funct = static_cast<IntFunct>(rng.below(15));

        DecodedInst di;
        ASSERT_TRUE(decode(encodeMem(Opcode::Ldl, ra, rb, disp), di));
        EXPECT_EQ(di.ra, ra);
        EXPECT_EQ(di.rb, rb);
        EXPECT_EQ(di.disp, disp);
        EXPECT_EQ(di.memSize, 4u);

        ASSERT_TRUE(decode(encodeOp(funct, ra, rb, rc), di));
        EXPECT_EQ(di.funct, funct);
        EXPECT_EQ(di.ra, ra);
        EXPECT_EQ(di.rb, rb);
        EXPECT_EQ(di.rc, rc);
    }
}

TEST(RegNames, RoundTrip)
{
    for (RegIndex r = 0; r < NumRegs; ++r)
        EXPECT_EQ(parseReg(regName(r)), r) << regName(r);
    EXPECT_EQ(parseReg("$r13"), 13);
    EXPECT_EQ(parseReg("$30"), RegSP);
    EXPECT_EQ(parseReg("$nope"), NoReg);
    EXPECT_EQ(parseReg("r5"), NoReg);   // missing '$'
    EXPECT_EQ(parseReg("$32"), NoReg);
}

} // anonymous namespace
} // namespace svf::isa
