/**
 * @file
 * Tests for the ProgramBuilder / FunctionBuilder codegen API.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "isa/builder.hh"
#include "sim/emulator.hh"

namespace svf::isa
{
namespace
{

TEST(Builder, TinyProgramRuns)
{
    ProgramBuilder pb("tiny");
    Label main = pb.here();
    pb.li(RegA0, 7);
    pb.putint();
    pb.halt();
    Program p = pb.finish(main);

    sim::Emulator emu(p);
    emu.run(100);
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.output(), "7\n");
}

TEST(Builder, ForwardAndBackwardBranches)
{
    ProgramBuilder pb("branches");
    Label main = pb.here();
    Label fwd = pb.newLabel();
    pb.li(RegT0, 3);
    pb.li(RegT1, 0);
    Label back = pb.here();
    pb.addqi(RegT1, 1, RegT1);
    pb.subqi(RegT0, 1, RegT0);
    pb.bne(RegT0, back);
    pb.br(fwd);
    pb.li(RegT1, 99);               // skipped
    pb.bind(fwd);
    pb.mov(RegT1, RegA0);
    pb.putint();
    pb.halt();
    Program p = pb.finish(main);

    sim::Emulator emu(p);
    emu.run(1000);
    EXPECT_EQ(emu.output(), "3\n");
}

/** Property: li materializes arbitrary 64-bit constants exactly. */
TEST(Builder, LiMaterializesConstantsProperty)
{
    std::vector<std::uint64_t> values = {
        0, 1, 255, 256, 32767, 32768, 65535, 65536,
        0x7fff0000, 0x7fffffff, 0x80000000, 0xffffffff,
        0x100000000ull, 0x7fff8000ull, 0xdeadbeefcafef00dull,
        ~std::uint64_t(0), std::uint64_t(-32768),
        std::uint64_t(-32769), 0x8000000000000000ull,
    };
    Rng rng(99);
    for (int i = 0; i < 50; ++i)
        values.push_back(rng.next());

    for (std::uint64_t v : values) {
        ProgramBuilder pb("li");
        Label main = pb.here();
        pb.li(RegT0, v);
        pb.halt();
        Program p = pb.finish(main);
        sim::Emulator emu(p);
        emu.run(100);
        EXPECT_EQ(emu.reg(RegT0), v) << std::hex << v;
    }
}

TEST(Builder, LaLoadsLabelAddress)
{
    ProgramBuilder pb("la");
    Label main = pb.here();
    Label target = pb.newLabel();
    pb.la(RegPV, target);
    pb.jsr(RegRA, RegPV);
    pb.halt();
    pb.bind(target);
    pb.li(RegA0, 11);
    pb.putint();
    pb.ret();
    Program p = pb.finish(main);

    sim::Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.output(), "11\n");
}

TEST(Builder, DataAllocation)
{
    ProgramBuilder pb("data");
    Addr a = pb.allocDataQuads({10, 20, 30});
    Addr b = pb.allocDataZero(100, 16);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 24);

    Label main = pb.here();
    pb.li(RegT0, a);
    pb.ldq(RegA0, 8, RegT0);
    pb.putint();
    pb.halt();
    Program p = pb.finish(main);
    sim::Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.output(), "20\n");
}

TEST(Builder, HeapAllocationIsZeroFilled)
{
    ProgramBuilder pb("heap");
    Addr h = pb.allocHeap(64, 8);
    Addr hq = pb.allocHeapQuads({77});
    EXPECT_GE(hq, h + 64);

    Label main = pb.here();
    pb.li(RegT0, h);
    pb.ldq(RegA0, 0, RegT0);        // untouched heap reads as zero
    pb.putint();
    pb.li(RegT0, hq);
    pb.ldq(RegA0, 0, RegT0);
    pb.putint();
    pb.halt();
    Program p = pb.finish(main);
    sim::Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.output(), "0\n77\n");
}

TEST(Builder, FrameSizeIsSixteenAligned)
{
    ProgramBuilder pb("f");
    FunctionBuilder f1(pb, FrameSpec{8, true, false, false, {}});
    EXPECT_EQ(f1.frameSize() % 16, 0u);
    EXPECT_EQ(f1.frameSize(), 16u);

    FunctionBuilder f2(pb, FrameSpec{48, true, true, false,
                                     {RegS0, RegS1}});
    // 48 locals + ra + fp + 2 saves = 80.
    EXPECT_EQ(f2.frameSize(), 80u);
}

TEST(Builder, PrologueEpiloguePreservesRegisters)
{
    ProgramBuilder pb("frames");
    Label main = pb.newLabel();
    Label fn = pb.newLabel();

    pb.bind(main);
    FunctionBuilder mf(pb, FrameSpec{0, true, false, false, {}});
    mf.prologue();
    pb.li(RegS0, 111);
    pb.li(RegS1, 222);
    pb.call(fn);
    pb.mov(RegS0, RegA0);
    pb.putint();
    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.halt();

    pb.bind(fn);
    FunctionBuilder ff(pb, FrameSpec{16, true, false, false,
                                     {RegS0, RegS1}});
    ff.prologue();
    pb.li(RegS0, 1);                // clobber; must be restored
    pb.li(RegS1, 2);
    ff.epilogueRet();

    Program p = pb.finish(main);
    sim::Emulator emu(p);
    emu.run(1000);
    EXPECT_EQ(emu.output(), "111\n222\n");
    // The stack pointer must be balanced at the end.
    EXPECT_EQ(emu.reg(RegSP) + mf.frameSize(), layout::StackBase);
}

TEST(Builder, LocalSlotAccess)
{
    ProgramBuilder pb("locals");
    Label main = pb.newLabel();
    pb.bind(main);
    FunctionBuilder f(pb, FrameSpec{32, true, false, false, {}});
    f.prologue();
    pb.li(RegT0, 5);
    f.stLocal(RegT0, 0);
    pb.li(RegT0, 6);
    f.stLocal(RegT0, 3);
    f.ldLocal(RegT1, 0);
    f.ldLocal(RegT2, 3);
    pb.addq(RegT1, RegT2, RegA0);
    pb.putint();
    pb.halt();
    Program p = pb.finish(main);
    sim::Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.output(), "11\n");
}

TEST(Builder, FpRelativeAccess)
{
    ProgramBuilder pb("fp");
    Label main = pb.newLabel();
    pb.bind(main);
    FunctionBuilder f(pb, FrameSpec{16, true, false, true, {}});
    f.prologue();
    pb.li(RegT0, 77);
    f.stLocalFp(RegT0, 1);
    f.ldLocal(RegA0, 1);            // same slot via $sp
    pb.putint();
    pb.halt();
    Program p = pb.finish(main);
    sim::Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.output(), "77\n");
}

TEST(Builder, AddrOfLocalMatchesSlot)
{
    ProgramBuilder pb("addr");
    Label main = pb.newLabel();
    pb.bind(main);
    FunctionBuilder f(pb, FrameSpec{16, true, false, false, {}});
    f.prologue();
    pb.li(RegT0, 31);
    f.stLocal(RegT0, 1);
    f.addrOfLocal(RegT1, 1);
    pb.ldq(RegA0, 0, RegT1);        // $gpr-based stack access
    pb.putint();
    pb.halt();
    Program p = pb.finish(main);
    sim::Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.output(), "31\n");
}

TEST(BuilderDeathTest, UnboundLabelPanics)
{
    ProgramBuilder pb("bad");
    Label main = pb.here();
    Label nowhere = pb.newLabel();
    pb.br(nowhere);
    pb.halt();
    EXPECT_DEATH(pb.finish(main), "unbound label");
}

TEST(BuilderDeathTest, DoubleBindPanics)
{
    ProgramBuilder pb("bad");
    Label l = pb.here();
    pb.nop();
    EXPECT_DEATH(pb.bind(l), "bound twice");
}

} // anonymous namespace
} // namespace svf::isa
