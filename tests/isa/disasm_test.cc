/**
 * @file
 * Disassembler coverage: every opcode renders, and rendering an
 * instruction then re-assembling it reproduces the original encoding
 * (the strongest possible disassembler/assembler agreement check).
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "isa/assembler.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

namespace svf::isa
{
namespace
{

/** Assemble one rendered instruction at TextBase and return it. */
std::uint32_t
reassemble(const std::string &text)
{
    Program p = assemble("main:\n    " + text + "\n");
    return p.fetchRaw(layout::TextBase);
}

TEST(Disasm, EveryOpcodeRenders)
{
    std::vector<std::uint32_t> insts = {
        encodeMem(Opcode::Lda, RegSP, RegSP, -64),
        encodeMem(Opcode::Ldah, RegT0, RegZero, 16),
        encodeMem(Opcode::Ldq, RegA0, RegSP, 8),
        encodeMem(Opcode::Stq, RegA0, RegSP, 8),
        encodeMem(Opcode::Ldl, RegA0, RegT0, -4),
        encodeMem(Opcode::Stl, RegA0, RegT0, -4),
        encodeMem(Opcode::Ldbu, RegA0, RegT0, 1),
        encodeMem(Opcode::Stb, RegA0, RegT0, 1),
        encodeOp(IntFunct::Addq, RegT0, RegT1, RegT2),
        encodeOpLit(IntFunct::Sll, RegT0, 3, RegT1),
        encodeOp(IntFunct::Umulh, RegT0, RegT1, RegT2),
        encodeBranch(Opcode::Beq, RegT0, 5),
        encodeBranch(Opcode::Br, RegZero, -5),
        encodeBranch(Opcode::Bsr, RegRA, 100),
        encodeJsr(RegRA, RegPV),
        encodeJsr(RegZero, RegRA),
        encodeSys(SysFunct::Halt),
        encodeSys(SysFunct::Putint),
        encodeSys(SysFunct::Putc),
    };
    for (std::uint32_t raw : insts) {
        DecodedInst di;
        ASSERT_TRUE(decode(raw, di));
        std::string text = disassemble(di, layout::TextBase);
        EXPECT_FALSE(text.empty());
        EXPECT_EQ(text.find('?'), std::string::npos) << text;
    }
}

/** Property: disassemble -> assemble is the identity on encodings
 *  for the position-independent formats. */
TEST(Disasm, ReassemblyRoundTripProperty)
{
    Rng rng(777);
    for (int i = 0; i < 3000; ++i) {
        auto ra = static_cast<RegIndex>(rng.below(NumRegs));
        auto rb = static_cast<RegIndex>(rng.below(NumRegs));
        auto rc = static_cast<RegIndex>(rng.below(NumRegs));
        auto funct = static_cast<IntFunct>(rng.below(15));
        auto disp = static_cast<std::int32_t>(
            rng.range(-32768, 32767));

        std::uint32_t cases[] = {
            encodeMem(Opcode::Ldq, ra, rb, disp),
            encodeMem(Opcode::Stb, ra, rb, disp),
            encodeMem(Opcode::Lda, ra, rb, disp),
            encodeOp(funct, ra, rb, rc),
            encodeOpLit(funct, ra,
                        static_cast<std::uint8_t>(rng.below(256)),
                        rc),
            encodeJsr(ra, rb),
        };
        for (std::uint32_t raw : cases) {
            DecodedInst di;
            ASSERT_TRUE(decode(raw, di));
            std::string text = disassemble(di, layout::TextBase);
            // Normalize: the disassembler prints "jsr $x, ($y)";
            // zero-register destinations re-encode identically.
            EXPECT_EQ(reassemble(text), raw)
                << text << " raw=0x" << std::hex << raw;
        }
    }
}

TEST(Disasm, BranchTargetsAreAbsolute)
{
    DecodedInst di;
    ASSERT_TRUE(decode(encodeBranch(Opcode::Bne, RegT3, -2), di));
    // pc + 4 + (-2 * 4) = pc - 4.
    EXPECT_EQ(disassemble(di, 0x10020), "bne $t3, 0x1001c");
}

} // anonymous namespace
} // namespace svf::isa
