/**
 * @file
 * Tests for the linked Program image and the memory layout contract.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/program.hh"

namespace svf::isa
{
namespace
{

TEST(Layout, RegionsAreDisjointAndOrdered)
{
    using namespace layout;
    EXPECT_LT(TextBase, DataBase);
    EXPECT_LT(DataBase, HeapBase);
    EXPECT_LT(HeapBase, HeapLimit);
    EXPECT_LT(HeapLimit, StackLimit);
    EXPECT_LT(StackLimit, StackBase);
    // Everything fits lda/ldah materialization (< 2^31 - 2^15).
    EXPECT_LT(StackBase, Addr(0x7fff8000));
}

TEST(Program, FetchRawReadsLittleEndianWords)
{
    Program p;
    p.name = "t";
    p.addSection(layout::TextBase, {0x78, 0x56, 0x34, 0x12,
                                    0xef, 0xbe, 0xad, 0xde});
    p.textBase = layout::TextBase;
    p.textSize = 8;
    EXPECT_EQ(p.fetchRaw(layout::TextBase), 0x12345678u);
    EXPECT_EQ(p.fetchRaw(layout::TextBase + 4), 0xdeadbeefu);
}

TEST(ProgramDeathTest, FetchOutsideImagePanics)
{
    Program p;
    p.name = "t";
    p.addSection(layout::TextBase, {0, 0, 0, 0});
    EXPECT_DEATH(p.fetchRaw(layout::TextBase + 4),
                 "outside program image");
}

TEST(ProgramDeathTest, OverlappingSectionsAreFatal)
{
    Program p;
    p.name = "t";
    p.addSection(0x1000, std::vector<std::uint8_t>(64, 0));
    EXPECT_EXIT(p.addSection(0x1020, std::vector<std::uint8_t>(8, 0)),
                testing::ExitedWithCode(1), "overlaps");
}

TEST(Program, AdjacentSectionsAreFine)
{
    Program p;
    p.name = "t";
    p.addSection(0x1000, std::vector<std::uint8_t>(64, 1));
    p.addSection(0x1040, std::vector<std::uint8_t>(64, 2));
    EXPECT_EQ(p.sections.size(), 2u);
}

TEST(Program, BuilderSectionsLandInTheirRegions)
{
    ProgramBuilder pb("layout");
    Addr d = pb.allocDataQuads({1, 2, 3});
    Addr h = pb.allocHeapQuads({4, 5});
    Label main = pb.here();
    pb.halt();
    Program p = pb.finish(main);

    EXPECT_GE(d, layout::DataBase);
    EXPECT_LT(d, layout::HeapBase);
    EXPECT_GE(h, layout::HeapBase);
    EXPECT_LT(h, layout::HeapLimit);
    EXPECT_EQ(p.entry, layout::TextBase);
    ASSERT_GE(p.sections.size(), 3u);
}

TEST(Program, EntryIsTheRequestedLabel)
{
    ProgramBuilder pb("entry");
    Label helper = pb.here();
    pb.ret();
    Label main = pb.here();
    pb.halt();
    Program p = pb.finish(main);
    EXPECT_EQ(p.entry, layout::TextBase + 4);
}

} // anonymous namespace
} // namespace svf::isa
