/**
 * @file
 * The disk-persistent result cache (ckpt/result_cache.hh) and its
 * integration with the Runner's cache=DIR option:
 *
 *   - every JobValue kind round-trips through the cache files;
 *   - corrupt or mismatched files are rejected and regenerate;
 *   - a second Runner pointed at the same directory serves a whole
 *     completed plan as cached=true without executing anything —
 *     the cross-process memoization contract (the two Runners here
 *     stand in for two processes; the directory is the only state
 *     they share).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/result_cache.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"

using namespace svf;

namespace
{

/** A per-test cache directory, emptied of any prior run's files. */
std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + name;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

harness::ExperimentPlan
smallPlan()
{
    harness::ExperimentPlan plan;

    harness::RunSetup run;
    run.workload = "gzip";
    run.input = "log";
    run.maxInsts = 20'000;
    run.machine = harness::baselineConfig(8);
    plan.add("gzip/base", run);

    harness::RunSetup svf_run = run;
    harness::applySvf(svf_run.machine, 1024, 2);
    plan.add("gzip/svf", svf_run);

    harness::TrafficSetup traffic;
    traffic.workload = "gzip";
    traffic.input = "log";
    traffic.maxInsts = 30'000;
    plan.add("gzip/traffic", traffic);

    harness::ProfileSetup profile;
    profile.workload = "gzip";
    profile.input = "log";
    profile.maxInsts = 30'000;
    plan.add("gzip/profile", profile);

    return plan;
}

TEST(ResultCache, RunResultRoundTrip)
{
    ckpt::ResultCache cache(freshDir("rescache_run"));
    ASSERT_TRUE(cache.enabled());

    harness::RunResult r;
    r.core.cycles = 123;
    r.core.committed = 456;
    r.svfFastLoads = 7;
    r.dl1Misses = 9;
    r.output = "hello\n";
    r.completed = true;
    r.sampled.intervals = 3;
    r.sampled.totalInsts = 1000;
    r.sampled.ipcMean = 1.25;
    r.sampled.counterVariance = {0.5, 1.5};

    ASSERT_TRUE(cache.store(42, r));
    ckpt::CachedValue out;
    ASSERT_TRUE(cache.load(42, out));
    const auto &got = std::get<harness::RunResult>(out);
    EXPECT_EQ(got.core.cycles, 123u);
    EXPECT_EQ(got.core.committed, 456u);
    EXPECT_EQ(got.svfFastLoads, 7u);
    EXPECT_EQ(got.dl1Misses, 9u);
    EXPECT_EQ(got.output, "hello\n");
    EXPECT_TRUE(got.completed);
    EXPECT_EQ(got.sampled.intervals, 3u);
    EXPECT_DOUBLE_EQ(got.sampled.ipcMean, 1.25);
    ASSERT_EQ(got.sampled.counterVariance.size(), 2u);
    EXPECT_DOUBLE_EQ(got.sampled.counterVariance[1], 1.5);
    std::remove(cache.path(42).c_str());
}

TEST(ResultCache, MissAndDisabled)
{
    ckpt::ResultCache cache(freshDir("rescache_miss"));
    ckpt::CachedValue out;
    EXPECT_FALSE(cache.load(0xabcdef, out));

    ckpt::ResultCache off("");
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.store(1, harness::RunResult{}));
    EXPECT_FALSE(off.load(1, out));
}

TEST(ResultCache, TruncatedFileRejectedAndRegenerates)
{
    ckpt::ResultCache cache(freshDir("rescache_trunc"));
    harness::RunResult r;
    r.core.cycles = 1234;
    r.output = "payload\n";
    ASSERT_TRUE(cache.store(5, r));

    // Truncate below even the header: load must fail cleanly, not
    // underflow into a huge body read.
    std::string path = cache.path(5);
    std::filesystem::resize_file(path, 4);
    ckpt::CachedValue out;
    EXPECT_FALSE(cache.load(5, out));

    // Truncate mid-payload: digest check rejects.
    ASSERT_TRUE(cache.store(5, r));
    auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 3);
    EXPECT_FALSE(cache.load(5, out));

    // A fresh store over the truncated file regenerates it.
    ASSERT_TRUE(cache.store(5, r));
    ASSERT_TRUE(cache.load(5, out));
    EXPECT_EQ(std::get<harness::RunResult>(out).core.cycles, 1234u);
    EXPECT_EQ(std::get<harness::RunResult>(out).output, "payload\n");
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(ResultCache, SharedOwnersInterleaveSafely)
{
    // Two ResultCache instances on one directory stand in for the
    // daemon and a serverless run sharing cache=DIR: per-key flock
    // serializes their writes, and a reader never sees a torn file.
    std::string dir = freshDir("rescache_shared");
    ckpt::ResultCache daemon(dir);
    ckpt::ResultCache local(dir);

    harness::RunResult r;
    r.core.cycles = 777;
    ASSERT_TRUE(daemon.store(11, r));

    ckpt::CachedValue out;
    ASSERT_TRUE(local.load(11, out));
    EXPECT_EQ(std::get<harness::RunResult>(out).core.cycles, 777u);

    // Either owner may overwrite; the other reads the new value.
    r.core.cycles = 778;
    ASSERT_TRUE(local.store(11, r));
    ASSERT_TRUE(daemon.load(11, out));
    EXPECT_EQ(std::get<harness::RunResult>(out).core.cycles, 778u);

    // The lock guard leaves its sidecar file; it is empty metadata,
    // not cache payload, and never confuses a load.
    EXPECT_TRUE(
        std::filesystem::exists(daemon.path(11) + ".lock"));
    std::remove(daemon.path(11).c_str());
    std::remove((daemon.path(11) + ".lock").c_str());
}

TEST(ValueCodec, RoundTripsAndRejectsTrailingBytes)
{
    harness::RunResult r;
    r.core.cycles = 42;
    r.output = "x";
    std::vector<std::uint8_t> bytes =
        ckpt::encodeValue(ckpt::CachedValue(r));
    ASSERT_FALSE(bytes.empty());

    ckpt::CachedValue out;
    ASSERT_TRUE(ckpt::decodeValue(bytes, out));
    EXPECT_EQ(std::get<harness::RunResult>(out).core.cycles, 42u);

    // Trailing garbage, truncation, and bad kind bytes all reject.
    std::vector<std::uint8_t> longer = bytes;
    longer.push_back(0);
    EXPECT_FALSE(ckpt::decodeValue(longer, out));
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.end() - 1);
    EXPECT_FALSE(ckpt::decodeValue(shorter, out));
    std::vector<std::uint8_t> badkind = bytes;
    badkind[0] = 0x7f;
    EXPECT_FALSE(ckpt::decodeValue(badkind, out));
    EXPECT_FALSE(ckpt::decodeValue(nullptr, 0, out));
}

TEST(ResultCache, CorruptFileRejected)
{
    ckpt::ResultCache cache(freshDir("rescache_corrupt"));
    harness::RunResult r;
    r.core.cycles = 99;
    ASSERT_TRUE(cache.store(7, r));

    // Flip one byte in the middle of the payload.
    std::string path = cache.path(7);
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);
    char c;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(char(c ^ 0x10));
    f.close();

    ckpt::CachedValue out;
    EXPECT_FALSE(cache.load(7, out));

    // A key whose file holds a different key's record is rejected
    // too (e.g. a file renamed by hand).
    ASSERT_TRUE(cache.store(8, r));
    std::rename(cache.path(8).c_str(), cache.path(9).c_str());
    EXPECT_FALSE(cache.load(9, out));
    std::remove(cache.path(7).c_str());
    std::remove(cache.path(9).c_str());
}

TEST(RunnerDiskCache, SecondRunnerServesWholePlanCached)
{
    std::string dir = freshDir("rescache_runner");

    harness::RunnerOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir;

    harness::ExperimentPlan plan = smallPlan();

    // First "process": everything executes, results land on disk.
    harness::Runner first(opts);
    auto res1 = first.run(plan);
    EXPECT_EQ(first.executions(), plan.size());
    EXPECT_EQ(first.diskHits(), 0u);

    // Second "process": same directory, nothing executes.
    harness::Runner second(opts);
    auto res2 = second.run(plan);
    EXPECT_EQ(second.executions(), 0u);
    EXPECT_EQ(second.diskHits(), plan.size());
    for (const auto &o : res2)
        EXPECT_TRUE(o.cached) << o.name;

    // And the served values are bit-identical to the computed ones.
    for (size_t i = 0; i < res1.size(); ++i) {
        EXPECT_EQ(res1[i].key, res2[i].key);
        if (auto *a =
                std::get_if<harness::RunResult>(&res1[i].value)) {
            const auto &b = res2[i].run();
            EXPECT_EQ(a->core.cycles, b.core.cycles);
            EXPECT_EQ(a->core.committed, b.core.committed);
            EXPECT_EQ(a->dl1Misses, b.dl1Misses);
            EXPECT_EQ(a->output, b.output);
        }
    }

    // Cleanup so reruns in the same temp dir start cold.
    for (const auto &o : res1)
        std::remove(
            ckpt::ResultCache(dir).path(o.key).c_str());
}

TEST(RunnerDiskCache, CorruptEntryRegenerates)
{
    std::string dir = freshDir("rescache_regen");

    harness::RunnerOptions opts;
    opts.jobs = 1;
    opts.cacheDir = dir;

    harness::ExperimentPlan plan;
    harness::RunSetup run;
    run.workload = "gzip";
    run.input = "log";
    run.maxInsts = 10'000;
    run.machine = harness::baselineConfig(8);
    plan.add("gzip/one", run);

    harness::Runner first(opts);
    auto res1 = first.run(plan);

    // Truncate the cached file to garbage.
    std::string path = ckpt::ResultCache(dir).path(res1[0].key);
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << "not a cache file";
    }

    harness::Runner second(opts);
    auto res2 = second.run(plan);
    EXPECT_EQ(second.diskHits(), 0u);
    EXPECT_EQ(second.executions(), 1u);
    EXPECT_FALSE(res2[0].cached);
    EXPECT_EQ(res1[0].run().core.cycles, res2[0].run().core.cycles);

    // The regenerated entry replaced the garbage.
    ckpt::CachedValue out;
    EXPECT_TRUE(ckpt::ResultCache(dir).load(res1[0].key, out));
    std::remove(path.c_str());
}

} // anonymous namespace
