/**
 * @file
 * Interval sampling (ckpt/sampler.hh):
 *
 *   - SamplePlan parse/str round-trip, malformed-spec rejection and
 *     setup-key separation (a sampled and a full run of the same
 *     workload must never share a memoized result);
 *   - the Sampler's interval arithmetic, including budgets too small
 *     to hold the full warmup+detail window;
 *   - fastForward targets absolute instruction counts and stops at
 *     halt;
 *   - CoreStatsAccum sums/means/variances;
 *   - end-to-end: a sampled runExperiment is deterministic, covers
 *     the same instruction stream as the full run, and estimates the
 *     full run's IPC within a loose tolerance.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ckpt/sampler.hh"
#include "harness/experiment.hh"
#include "sim/emulator.hh"
#include "workloads/registry.hh"

using namespace svf;

namespace
{

TEST(SamplePlan, ParseAndStr)
{
    ckpt::SamplePlan p = ckpt::SamplePlan::parse("10,2000,8000");
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.intervals, 10u);
    EXPECT_EQ(p.warmupInsts, 2000u);
    EXPECT_EQ(p.detailedInsts, 8000u);
    EXPECT_FALSE(p.functionalWarm);
    EXPECT_EQ(p.str(), "10,2000,8000");

    ckpt::SamplePlan w = ckpt::SamplePlan::parse("4,0,500,warm");
    EXPECT_TRUE(w.functionalWarm);
    EXPECT_EQ(w.str(), "4,0,500,warm");

    ckpt::SamplePlan off = ckpt::SamplePlan::parse("");
    EXPECT_FALSE(off.enabled());
}

TEST(SamplePlanDeathTest, MalformedSpecsAreFatal)
{
    EXPECT_EXIT(ckpt::SamplePlan::parse("10"),
                testing::ExitedWithCode(1), "bad sample spec");
    EXPECT_EXIT(ckpt::SamplePlan::parse("10,abc,100"),
                testing::ExitedWithCode(1), "bad sample spec");
    EXPECT_EXIT(ckpt::SamplePlan::parse("10,0,0"),
                testing::ExitedWithCode(1), "bad sample spec");
    EXPECT_EXIT(ckpt::SamplePlan::parse("1,2,3,bogus"),
                testing::ExitedWithCode(1), "bad sample spec");
}

TEST(SamplePlan, KeySeparatesPlans)
{
    harness::RunSetup full;
    full.workload = "gzip";
    full.input = "log";
    full.machine = harness::baselineConfig(8);

    harness::RunSetup sampled = full;
    sampled.sample = ckpt::SamplePlan::parse("10,100,400");
    EXPECT_NE(full.key(), sampled.key());

    harness::RunSetup warmed = sampled;
    warmed.sample.functionalWarm = true;
    EXPECT_NE(sampled.key(), warmed.key());

    // The snapshot directory is an accelerator, not an input.
    harness::RunSetup with_dir = sampled;
    with_dir.ckptDir = "/tmp/somewhere";
    EXPECT_EQ(sampled.key(), with_dir.key());
}

TEST(Sampler, IntervalSchedule)
{
    ckpt::Sampler s(ckpt::SamplePlan::parse("10,200,800"), 100'000);
    EXPECT_EQ(s.chunkInsts(), 10'000u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        ckpt::Sampler::Interval iv = s.interval(i);
        EXPECT_EQ(iv.ffTarget, i * 10'000 + 9'000) << i;
        EXPECT_EQ(iv.warmup, 200u);
        EXPECT_EQ(iv.detailed, 800u);
    }
}

TEST(Sampler, ChunkSmallerThanWindowDropsFastForward)
{
    // 1000-inst chunks cannot hold 600+800: no fast-forward, and
    // warmup is truncated before detail is.
    ckpt::Sampler s(ckpt::SamplePlan::parse("10,600,800"), 10'000);
    ckpt::Sampler::Interval iv = s.interval(3);
    EXPECT_EQ(iv.ffTarget, 3'000u);
    EXPECT_EQ(iv.detailed, 800u);
    EXPECT_EQ(iv.warmup, 200u);
}

TEST(Sampler, FastForwardIsAbsoluteAndHaltAware)
{
    const workloads::WorkloadSpec &spec = workloads::workload("gzip");
    isa::Program prog = spec.build("log", spec.defaultScale);
    sim::Emulator emu(prog);
    EXPECT_EQ(ckpt::fastForward(emu, 5'000), 5'000u);
    EXPECT_EQ(emu.instCount(), 5'000u);
    // Already past the target: no-op.
    EXPECT_EQ(ckpt::fastForward(emu, 4'000), 0u);
    EXPECT_EQ(emu.instCount(), 5'000u);
}

TEST(CoreStatsAccum, SumsMeansVariance)
{
    ckpt::CoreStatsAccum acc;
    uarch::CoreStats a, b;
    a.cycles = 100;
    a.committed = 200;
    b.cycles = 300;
    b.committed = 200;
    acc.add(a);
    acc.add(b);
    EXPECT_EQ(acc.intervals(), 2u);
    // coreCounters() puts cycles first, committed second.
    EXPECT_EQ(acc.sum(0), 400u);
    EXPECT_DOUBLE_EQ(acc.mean(0), 200.0);
    EXPECT_DOUBLE_EQ(acc.variance(0), 100.0 * 100.0);
    EXPECT_DOUBLE_EQ(acc.variance(1), 0.0);
    EXPECT_EQ(acc.total().cycles, 400u);
    EXPECT_EQ(acc.total().committed, 400u);
}

harness::RunSetup
mcfSetup()
{
    harness::RunSetup s;
    s.workload = "mcf";
    s.input = "inp";
    s.maxInsts = 200'000;
    s.machine = harness::baselineConfig(8);
    return s;
}

TEST(SampledRun, DeterministicAndCoversTheRun)
{
    harness::RunSetup s = mcfSetup();
    s.sample = ckpt::SamplePlan::parse("8,500,2000");

    harness::RunResult a = harness::runExperiment(s);
    harness::RunResult b = harness::runExperiment(s);

    ASSERT_TRUE(a.sampled.enabled());
    EXPECT_EQ(a.sampled.intervals, 8u);
    EXPECT_EQ(a.sampled.totalInsts, 200'000u);
    EXPECT_EQ(a.sampled.sampledInsts, a.core.committed);
    EXPECT_EQ(a.sampled.ffInsts + a.sampled.warmupInsts +
                  a.sampled.sampledInsts,
              200'000u);

    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.committed, b.core.committed);
    EXPECT_EQ(a.sampled.estimatedCycles, b.sampled.estimatedCycles);
    EXPECT_EQ(a.dl1Hits, b.dl1Hits);
    EXPECT_EQ(a.output, b.output);
}

TEST(SampledRun, EstimatesFullRunIpc)
{
    harness::RunSetup full = mcfSetup();
    harness::RunResult fr = harness::runExperiment(full);

    harness::RunSetup sampled = mcfSetup();
    sampled.sample = ckpt::SamplePlan::parse("10,2000,4000");
    harness::RunResult sr = harness::runExperiment(sampled);

    ASSERT_GT(fr.ipc(), 0.0);
    ASSERT_GT(sr.sampled.ipcMean, 0.0);
    double rel = std::fabs(sr.sampled.ipcMean - fr.ipc()) / fr.ipc();
    EXPECT_LT(rel, 0.15)
        << "sampled IPC " << sr.sampled.ipcMean << " vs full "
        << fr.ipc();

    double cyc_rel =
        std::fabs(double(sr.sampled.estimatedCycles) -
                  double(fr.core.cycles)) /
        double(fr.core.cycles);
    EXPECT_LT(cyc_rel, 0.15);
}

TEST(SampledRun, FunctionalWarmingAlsoEstimates)
{
    harness::RunSetup s = mcfSetup();
    s.sample = ckpt::SamplePlan::parse("6,200,1500,warm");
    harness::RunResult r = harness::runExperiment(s);
    ASSERT_TRUE(r.sampled.enabled());
    EXPECT_EQ(r.sampled.intervals, 6u);
    EXPECT_GT(r.sampled.ipcMean, 0.0);
}

TEST(SampledRun, SnapshotStoreAcceleratesRepeatRuns)
{
    std::string dir = testing::TempDir() + "sampler_store";

    harness::RunSetup s = mcfSetup();
    s.sample = ckpt::SamplePlan::parse("4,500,1500");

    harness::RunResult plain = harness::runExperiment(s);
    s.ckptDir = dir;
    harness::RunResult first = harness::runExperiment(s);   // fills
    harness::RunResult second = harness::runExperiment(s);  // hits

    // The store must not change any result — only host speed.
    EXPECT_EQ(plain.core.cycles, first.core.cycles);
    EXPECT_EQ(first.core.cycles, second.core.cycles);
    EXPECT_EQ(plain.core.committed, second.core.committed);
    EXPECT_EQ(plain.sampled.estimatedCycles,
              second.sampled.estimatedCycles);
    EXPECT_EQ(plain.output, second.output);
}

} // anonymous namespace
