/**
 * @file
 * The snapshot subsystem (ckpt/snapshot.hh, ckpt/serialize.hh) and
 * the MemImage bulk paths it relies on:
 *
 *   - MemImage readBytes/forEachPage/installPage/reset semantics,
 *     including the stale-lookup-cache regression: a scalar read
 *     caches a page pointer, and reset()/installPage() must not
 *     leave that pointer serving dead content;
 *   - byte-level serialization primitives (round-trip, truncation);
 *   - snapshot capture → serialize → deserialize → restore is
 *     bit-identical: the resumed emulator's architectural state,
 *     memory and subsequent execution match an uninterrupted run;
 *   - a detailed (OooCore) run started from a restored snapshot
 *     produces CoreStats identical to one started from a live
 *     fast-forward to the same point — restore is transparent to
 *     the timing model;
 *   - corrupted or truncated snapshot files are rejected at load.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/serialize.hh"
#include "ckpt/snapshot.hh"
#include "harness/experiment.hh"
#include "sim/emulator.hh"
#include "sim/mem_image.hh"
#include "uarch/ooo_core.hh"
#include "workloads/registry.hh"

using namespace svf;

namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

TEST(MemImageBulk, ReadBytesZeroFillsUnallocated)
{
    sim::MemImage m;
    m.write64(0x1000, 0x1122334455667788ull);
    std::vector<std::uint8_t> buf(16, 0xcc);
    // First 8 bytes come from an untouched page, last 8 are data.
    m.readBytes(0xff8, buf.data(), 16);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(buf[i], 0u) << i;
    EXPECT_EQ(buf[8], 0x88u);
    EXPECT_EQ(buf[15], 0x11u);
}

TEST(MemImageBulk, ReadBytesCrossesPages)
{
    sim::MemImage m;
    const Addr base = sim::MemImage::PageSize - 4;
    std::vector<std::uint8_t> data(8);
    for (int i = 0; i < 8; ++i)
        data[i] = std::uint8_t(i + 1);
    m.writeBytes(base, data.data(), data.size());
    std::vector<std::uint8_t> buf(8, 0);
    m.readBytes(base, buf.data(), buf.size());
    EXPECT_EQ(buf, data);
}

TEST(MemImageBulk, ForEachPageAscendingAndComplete)
{
    sim::MemImage m;
    // Touch pages in descending order; the walk must sort them.
    m.write8(5 * sim::MemImage::PageSize, 5);
    m.write8(1 * sim::MemImage::PageSize, 1);
    m.write8(3 * sim::MemImage::PageSize, 3);
    std::vector<Addr> seen;
    m.forEachPage([&](Addr a, const std::uint8_t *bytes) {
        seen.push_back(a);
        EXPECT_EQ(bytes[0], a / sim::MemImage::PageSize);
    });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 1 * sim::MemImage::PageSize);
    EXPECT_EQ(seen[1], 3 * sim::MemImage::PageSize);
    EXPECT_EQ(seen[2], 5 * sim::MemImage::PageSize);
}

TEST(MemImageBulk, InstallPageRoundTrip)
{
    sim::MemImage src;
    for (Addr a = 0; a < 64; a += 8)
        src.write64(0x2000 + a, a * 3 + 1);
    sim::MemImage dst;
    src.forEachPage([&](Addr a, const std::uint8_t *bytes) {
        dst.installPage(a, bytes);
    });
    EXPECT_EQ(dst.pagesAllocated(), src.pagesAllocated());
    for (Addr a = 0; a < 64; a += 8)
        EXPECT_EQ(dst.read64(0x2000 + a), a * 3 + 1);
}

TEST(MemImageBulk, ResetInvalidatesLookupCache)
{
    sim::MemImage m;
    m.write64(0x3000, 0xdeadbeefull);
    // This read populates the one-entry lookup cache for the page.
    EXPECT_EQ(m.read64(0x3000), 0xdeadbeefull);
    m.reset();
    EXPECT_EQ(m.pagesAllocated(), 0u);
    // A stale cache entry would serve the freed page here.
    EXPECT_EQ(m.read64(0x3000), 0u);
}

TEST(MemImageBulk, InstallPageReplacesCachedContent)
{
    sim::MemImage m;
    m.write64(0x4000, 111);
    EXPECT_EQ(m.read64(0x4000), 111u);  // cache now points here
    std::vector<std::uint8_t> page(sim::MemImage::PageSize, 0);
    page[0] = 222;
    m.installPage(0x4000, page.data());
    EXPECT_EQ(m.read8(0x4000), 222u);
}

TEST(Serialize, RoundTrip)
{
    ckpt::ByteWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x1122334455667788ull);
    w.d64(3.14159);
    const std::string embedded("hello\0world", 11);
    w.str(embedded);
    ckpt::ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 0xabu);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x1122334455667788ull);
    EXPECT_DOUBLE_EQ(r.d64(), 3.14159);
    EXPECT_EQ(r.str(), embedded);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, TruncationIsSafe)
{
    ckpt::ByteWriter w;
    w.u64(42);
    std::vector<std::uint8_t> cut(w.data().begin(),
                                  w.data().begin() + 3);
    ckpt::ByteReader r(cut);
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok());
    // Further reads stay failed instead of walking off the buffer.
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.str(), "");
}

TEST(Serialize, LittleEndianOnDisk)
{
    ckpt::ByteWriter w;
    w.u32(0x04030201);
    ASSERT_EQ(w.data().size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(w.data()[i], i + 1);
}

/** Emulator positioned @p insts into a workload. */
struct Positioned
{
    isa::Program prog;
    std::unique_ptr<sim::Emulator> emu;

    Positioned(const std::string &workload, const std::string &input,
               std::uint64_t insts)
    {
        const workloads::WorkloadSpec &spec =
            workloads::workload(workload);
        prog = spec.build(input, spec.defaultScale);
        emu = std::make_unique<sim::Emulator>(prog);
        emu->run(insts);
    }
};

void
expectSameArchState(const sim::Emulator &a, const sim::Emulator &b)
{
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.instCount(), b.instCount());
    EXPECT_EQ(a.halted(), b.halted());
    EXPECT_EQ(a.minSp(), b.minSp());
    EXPECT_EQ(a.output(), b.output());
    for (RegIndex r = 0; r < isa::NumRegs; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r)) << "reg " << unsigned(r);
}

TEST(Snapshot, CaptureSerializeRestoreBitIdentical)
{
    Positioned src("gzip", "log", 50'000);
    ckpt::Snapshot snap = ckpt::Snapshot::capture(*src.emu);
    EXPECT_EQ(snap.state.icount, 50'000u);
    EXPECT_EQ(snap.progHash, ckpt::programHash(src.prog));

    std::vector<std::uint8_t> bytes = snap.serialize();
    ckpt::Snapshot loaded;
    std::string error;
    ASSERT_TRUE(loaded.deserialize(bytes, error)) << error;

    Positioned dst("gzip", "log", 0);
    loaded.restore(*dst.emu);
    expectSameArchState(*src.emu, *dst.emu);

    // Memory must match byte-for-byte everywhere either touched.
    EXPECT_EQ(dst.emu->mem().pagesAllocated(),
              src.emu->mem().pagesAllocated());
    src.emu->mem().forEachPage([&](Addr a, const std::uint8_t *p) {
        std::vector<std::uint8_t> got(sim::MemImage::PageSize);
        dst.emu->mem().readBytes(a, got.data(), got.size());
        EXPECT_EQ(std::memcmp(got.data(), p, got.size()), 0)
            << "page " << std::hex << a;
    });

    // The resumed emulator's future must equal the original's.
    src.emu->run(50'000);
    dst.emu->run(50'000);
    expectSameArchState(*src.emu, *dst.emu);
}

TEST(Snapshot, FileRoundTripWithProvenance)
{
    Positioned src("mcf", "inp", 20'000);
    ckpt::Snapshot snap = ckpt::Snapshot::capture(*src.emu);
    snap.workload = "mcf";
    snap.input = "inp";
    snap.scale = 0;

    std::string path = tempPath("snap_roundtrip.ckpt");
    ASSERT_TRUE(snap.saveFile(path));
    ckpt::Snapshot loaded;
    std::string error;
    ASSERT_TRUE(loaded.loadFile(path, error)) << error;
    EXPECT_EQ(loaded.workload, "mcf");
    EXPECT_EQ(loaded.input, "inp");
    EXPECT_EQ(loaded.progHash, snap.progHash);
    EXPECT_EQ(loaded.state.icount, snap.state.icount);
    EXPECT_EQ(loaded.pageCount(), snap.pageCount());
    std::remove(path.c_str());
}

TEST(Snapshot, DetailedRunFromRestoreMatchesUninterrupted)
{
    const std::uint64_t ff = 60'000, detail = 40'000;

    // Uninterrupted: live fast-forward, then the detailed window.
    Positioned live("mcf", "inp", ff);
    uarch::MachineConfig machine = harness::baselineConfig(8);
    uarch::OooCore live_core(machine, *live.emu);
    live_core.run(detail);

    // Checkpointed: capture at the same point, restore into a fresh
    // emulator, run the identical detailed window.
    Positioned src("mcf", "inp", ff);
    ckpt::Snapshot snap = ckpt::Snapshot::capture(*src.emu);
    Positioned dst("mcf", "inp", 0);
    snap.restore(*dst.emu);
    uarch::OooCore ckpt_core(machine, *dst.emu);
    ckpt_core.run(detail);

    const uarch::CoreStats &a = live_core.stats();
    const uarch::CoreStats &b = ckpt_core.stats();
    for (const ckpt::CoreCounter &c : ckpt::coreCounters())
        EXPECT_EQ(a.*(c.field), b.*(c.field)) << c.name;
    expectSameArchState(*live.emu, *dst.emu);
}

TEST(Snapshot, CorruptionDetected)
{
    Positioned src("gzip", "log", 10'000);
    ckpt::Snapshot snap = ckpt::Snapshot::capture(*src.emu);
    std::vector<std::uint8_t> bytes = snap.serialize();

    std::string error;
    ckpt::Snapshot out;

    std::vector<std::uint8_t> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;    // body bit flip
    EXPECT_FALSE(out.deserialize(flipped, error));

    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.end() - 9);
    EXPECT_FALSE(out.deserialize(truncated, error));

    std::vector<std::uint8_t> badmagic = bytes;
    badmagic[0] ^= 0xff;
    EXPECT_FALSE(out.deserialize(badmagic, error));
}

TEST(Snapshot, RestoreOntoWrongProgramIsFatal)
{
    Positioned src("gzip", "log", 5'000);
    ckpt::Snapshot snap = ckpt::Snapshot::capture(*src.emu);
    Positioned other("mcf", "inp", 0);
    EXPECT_EXIT(snap.restore(*other.emu),
                testing::ExitedWithCode(1),
                "snapshot/program mismatch");
}

TEST(SnapshotMulti, CaptureRestoreRoundTrip)
{
    Positioned a("gzip", "log", 30'000);
    Positioned b("mcf", "inp", 20'000);
    ckpt::Snapshot snap =
        ckpt::Snapshot::captureMulti({a.emu.get(), b.emu.get()});
    EXPECT_EQ(snap.coreCount(), 2u);
    EXPECT_EQ(snap.state.icount, 30'000u);
    ASSERT_EQ(snap.extraCores.size(), 1u);
    EXPECT_EQ(snap.extraCores[0].state.icount, 20'000u);

    // Serialization is deterministic and round-trips losslessly.
    std::vector<std::uint8_t> bytes = snap.serialize();
    EXPECT_EQ(bytes, snap.serialize());
    ckpt::Snapshot loaded;
    std::string error;
    ASSERT_TRUE(loaded.deserialize(bytes, error)) << error;
    EXPECT_EQ(loaded.coreCount(), 2u);

    Positioned a2("gzip", "log", 0);
    Positioned b2("mcf", "inp", 0);
    loaded.restoreMulti({a2.emu.get(), b2.emu.get()});
    expectSameArchState(*a.emu, *a2.emu);
    expectSameArchState(*b.emu, *b2.emu);

    // Every core's future must equal its original's.
    a.emu->run(20'000);
    a2.emu->run(20'000);
    b.emu->run(20'000);
    b2.emu->run(20'000);
    expectSameArchState(*a.emu, *a2.emu);
    expectSameArchState(*b.emu, *b2.emu);
}

TEST(SnapshotMulti, CorruptionInSecondCoreDetected)
{
    Positioned a("gzip", "log", 5'000);
    Positioned b("mcf", "inp", 5'000);
    ckpt::Snapshot snap =
        ckpt::Snapshot::captureMulti({a.emu.get(), b.emu.get()});
    std::vector<std::uint8_t> bytes = snap.serialize();

    // The digest covers the whole multi-core body: a flip in the
    // LAST core's pages must be caught too.
    std::vector<std::uint8_t> flipped = bytes;
    flipped[flipped.size() - 12] ^= 0x01;
    ckpt::Snapshot out;
    std::string error;
    EXPECT_FALSE(out.deserialize(flipped, error));
}

TEST(SnapshotMulti, SingleRestoreOfMultiSnapshotIsFatal)
{
    Positioned a("gzip", "log", 1'000);
    Positioned b("mcf", "inp", 1'000);
    ckpt::Snapshot snap =
        ckpt::Snapshot::captureMulti({a.emu.get(), b.emu.get()});
    Positioned dst("gzip", "log", 0);
    EXPECT_EXIT(snap.restore(*dst.emu),
                testing::ExitedWithCode(1),
                "use restoreMulti");
    EXPECT_EXIT(snap.restoreMulti({dst.emu.get()}),
                testing::ExitedWithCode(1),
                "2 cores but 1 emulators");
}

TEST(SnapshotStore, SaveAndRestoreByIcount)
{
    std::string dir = tempPath("snapstore");
    ckpt::SnapshotStore store(dir);
    ASSERT_TRUE(store.enabled());

    Positioned src("gzip", "log", 30'000);
    std::uint64_t hash = ckpt::programHash(src.prog);
    EXPECT_TRUE(store.save(hash, *src.emu));

    Positioned dst("gzip", "log", 0);
    EXPECT_FALSE(store.tryRestore(hash, 29'999, *dst.emu));
    ASSERT_TRUE(store.tryRestore(hash, 30'000, *dst.emu));
    expectSameArchState(*src.emu, *dst.emu);
    std::remove(store.path(hash, 30'000).c_str());
}

TEST(SnapshotStore, DisabledStoreIsNoOp)
{
    ckpt::SnapshotStore store("");
    EXPECT_FALSE(store.enabled());
    Positioned src("gzip", "log", 1'000);
    EXPECT_FALSE(store.save(ckpt::programHash(src.prog), *src.emu));
}

} // anonymous namespace
