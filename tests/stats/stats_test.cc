/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/distribution.hh"
#include "stats/group.hh"
#include "stats/stats.hh"
#include "stats/table.hh"

namespace svf::stats
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter c(nullptr, "c", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 12u);
    EXPECT_EQ(c.render(), "12");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Scalar, AssignAndRender)
{
    Scalar s(nullptr, "s", "a scalar");
    s = 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 2.5);
    EXPECT_EQ(s.render(), "2.5");
}

TEST(Group, RegistersAndDumps)
{
    Group g("core");
    Counter a(&g, "commits", "committed insts");
    Scalar b(&g, "ipc", "instructions per cycle");
    a += 100;
    b = 3.2;

    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("core.commits"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
    EXPECT_NE(out.find("core.ipc"), std::string::npos);
    EXPECT_NE(out.find("# committed insts"), std::string::npos);
    EXPECT_EQ(g.infos().size(), 2u);

    g.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Distribution, Moments)
{
    Distribution d(nullptr, "d", "dist");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d(nullptr, "d", "dist");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Log2Histogram, BucketBoundaries)
{
    Log2Histogram h(nullptr, "h", "hist", 16);
    h.sample(0);                // bucket 0
    h.sample(1);                // bucket 1
    h.sample(2);                // bucket 2
    h.sample(3);                // bucket 3
    h.sample(4);                // bucket 3
    h.sample(5);                // bucket 4
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 2u);
    EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(Log2Histogram, CumulativeFraction)
{
    Log2Histogram h(nullptr, "h", "hist", 20);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(0), 0.01);
    // Values 0..64 inclusive are <= 64: 65 of 100.
    EXPECT_DOUBLE_EQ(h.cumulativeAt(64), 0.65);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(128), 1.0);
}

TEST(Log2Histogram, OverflowGoesToLastBucket)
{
    Log2Histogram h(nullptr, "h", "hist", 4);
    h.sample(1u << 20);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Table, AlignedOutput)
{
    Table t({"bench", "cycles", "ipc"});
    t.addRow();
    t.cell("gcc");
    t.cell(std::uint64_t(12345));
    t.cell(3.14159, 2);
    t.addRow();
    t.cell("mcf");
    t.cell(std::uint64_t(9));
    t.cell(0.5, 2);
    EXPECT_EQ(t.rows(), 2u);

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    // Header separator line.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow();
    t.cell("x");
    t.cell(std::uint64_t(1));
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

} // anonymous namespace
} // namespace svf::stats
