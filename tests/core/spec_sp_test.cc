/**
 * @file
 * Tests for the decode-stage $sp interlock tracker.
 */

#include <gtest/gtest.h>

#include "core/spec_sp.hh"
#include "isa/decode.hh"
#include "isa/encode.hh"

namespace svf::core
{
namespace
{

using namespace isa;

DecodedInst
dec(std::uint32_t raw)
{
    DecodedInst di;
    EXPECT_TRUE(decode(raw, di));
    return di;
}

TEST(SpecSp, ImmediateAdjustDoesNotBlock)
{
    SpecSpTracker t;
    DecodedInst adj = dec(encodeMem(Opcode::Lda, RegSP, RegSP, -64));
    EXPECT_FALSE(t.onDispatch(adj, 1));
    EXPECT_FALSE(t.blocked());
    EXPECT_EQ(t.interlocks(), 0u);
}

TEST(SpecSp, NonSpWritersIgnored)
{
    SpecSpTracker t;
    DecodedInst add = dec(encodeOp(IntFunct::Addq, RegT0, RegT1,
                                   RegT2));
    EXPECT_FALSE(t.onDispatch(add, 1));
    EXPECT_FALSE(t.blocked());
}

TEST(SpecSp, RegisterMoveToSpBlocks)
{
    SpecSpTracker t;
    DecodedInst mov = dec(encodeOp(IntFunct::Bis, RegT0, RegT0,
                                   RegSP));
    EXPECT_TRUE(t.onDispatch(mov, 5));
    EXPECT_TRUE(t.blocked());
    EXPECT_EQ(t.pendingWriter(), 5u);
    EXPECT_EQ(t.interlocks(), 1u);
}

TEST(SpecSp, LoadIntoSpBlocks)
{
    SpecSpTracker t;
    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegSP, RegT0, 0));
    EXPECT_TRUE(t.onDispatch(ld, 9));
    EXPECT_TRUE(t.blocked());
}

TEST(SpecSp, CompletionReleases)
{
    SpecSpTracker t;
    DecodedInst mov = dec(encodeOp(IntFunct::Bis, RegT0, RegT0,
                                   RegSP));
    t.onDispatch(mov, 5);
    t.onComplete(4);                    // unrelated instruction
    EXPECT_TRUE(t.blocked());
    t.onComplete(5);
    EXPECT_FALSE(t.blocked());
}

TEST(SpecSp, CountsEveryEpisode)
{
    SpecSpTracker t;
    DecodedInst mov = dec(encodeOp(IntFunct::Bis, RegT0, RegT0,
                                   RegSP));
    t.onDispatch(mov, 1);
    t.onComplete(1);
    t.onDispatch(mov, 2);
    t.onComplete(2);
    EXPECT_EQ(t.interlocks(), 2u);
}

} // anonymous namespace
} // namespace svf::core
