/**
 * @file
 * Tests for SVF reference classification (morph vs reroute vs
 * normal cache path) and the Figure 8 breakdown counters.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/svf_unit.hh"
#include "isa/decode.hh"
#include "isa/encode.hh"

namespace svf::core
{
namespace
{

using namespace isa;

constexpr Addr SB = layout::StackBase;

/** Build a synthetic retired-instruction record. */
sim::ExecInfo
memRef(const DecodedInst &di, Addr ea)
{
    sim::ExecInfo info;
    static std::vector<std::unique_ptr<DecodedInst>> pool;
    pool.push_back(std::make_unique<DecodedInst>(di));
    info.di = pool.back().get();
    info.ea = ea;
    return info;
}

sim::ExecInfo
spUpdate(Addr old_sp, Addr new_sp)
{
    DecodedInst di;
    EXPECT_TRUE(decode(encodeMem(Opcode::Lda, RegSP, RegSP,
                                 static_cast<std::int32_t>(
                                     std::int64_t(new_sp) -
                                     std::int64_t(old_sp))), di));
    sim::ExecInfo info = memRef(di, 0);
    info.spWritten = true;
    info.oldSp = old_sp;
    info.newSp = new_sp;
    return info;
}

SvfUnitParams
enabledParams()
{
    SvfUnitParams p;
    p.enabled = true;
    p.svf.entries = 1024;
    return p;
}

DecodedInst
dec(std::uint32_t raw)
{
    DecodedInst di;
    EXPECT_TRUE(decode(raw, di));
    return di;
}

TEST(SvfUnit, DisabledClassifiesNothing)
{
    SvfUnit u(SvfUnitParams{}, SB);
    EXPECT_FALSE(u.enabled());
    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegA0, RegSP, 8));
    auto info = memRef(ld, SB - 8);
    EXPECT_EQ(u.classifyAndApply(info).kind, StackRefKind::None);
}

TEST(SvfUnit, SpRelativeInWindowMorphs)
{
    SvfUnit u(enabledParams(), SB);
    u.classifyAndApply(spUpdate(SB, SB - 64));

    DecodedInst st = dec(encodeMem(Opcode::Stq, RegT0, RegSP, 0));
    auto r = u.classifyAndApply(memRef(st, SB - 64));
    EXPECT_EQ(r.kind, StackRefKind::MorphStore);
    EXPECT_FALSE(r.fill);

    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegA0, RegSP, 0));
    r = u.classifyAndApply(memRef(ld, SB - 64));
    EXPECT_EQ(r.kind, StackRefKind::MorphLoad);
    EXPECT_FALSE(r.fill);

    EXPECT_EQ(u.fastStores(), 1u);
    EXPECT_EQ(u.fastLoads(), 1u);
}

TEST(SvfUnit, GprStackRefReroutes)
{
    SvfUnit u(enabledParams(), SB);
    u.classifyAndApply(spUpdate(SB, SB - 64));

    DecodedInst st = dec(encodeMem(Opcode::Stq, RegT0, RegA0, 0));
    auto r = u.classifyAndApply(memRef(st, SB - 32));
    EXPECT_EQ(r.kind, StackRefKind::RerouteStore);
    EXPECT_EQ(u.reroutedStores(), 1u);

    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegV0, RegT7, 0));
    r = u.classifyAndApply(memRef(ld, SB - 32));
    EXPECT_EQ(r.kind, StackRefKind::RerouteLoad);
    EXPECT_EQ(u.reroutedLoads(), 1u);
}

TEST(SvfUnit, FpStackRefReroutes)
{
    SvfUnit u(enabledParams(), SB);
    u.classifyAndApply(spUpdate(SB, SB - 64));
    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegV0, RegFP, -16));
    auto r = u.classifyAndApply(memRef(ld, SB - 16));
    EXPECT_EQ(r.kind, StackRefKind::RerouteLoad);
}

TEST(SvfUnit, NonStackRefsUntouched)
{
    SvfUnit u(enabledParams(), SB);
    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegA0, RegT0, 0));
    auto r = u.classifyAndApply(memRef(ld, layout::HeapBase));
    EXPECT_EQ(r.kind, StackRefKind::None);
    r = u.classifyAndApply(memRef(ld, layout::DataBase));
    EXPECT_EQ(r.kind, StackRefKind::None);
}

TEST(SvfUnit, SpRefBeyondWindowIsWindowMiss)
{
    SvfUnitParams p = enabledParams();
    p.svf.entries = 16;                 // 128-byte window
    SvfUnit u(p, SB);
    u.classifyAndApply(spUpdate(SB, SB - 64));

    // A reference 4KB above the TOS (a deep caller frame) misses
    // the window and takes the normal cache path.
    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegA0, RegSP, 4096));
    auto r = u.classifyAndApply(memRef(ld, SB - 64 + 4096));
    EXPECT_EQ(r.kind, StackRefKind::None);
    EXPECT_EQ(u.windowMisses(), 1u);
}

TEST(SvfUnit, MorphAllModeCapturesGprRefs)
{
    SvfUnitParams p = enabledParams();
    p.morphAllStackRefs = true;
    SvfUnit u(p, SB);
    u.classifyAndApply(spUpdate(SB, SB - 64));
    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegV0, RegT7, 0));
    auto r = u.classifyAndApply(memRef(ld, SB - 32));
    EXPECT_EQ(r.kind, StackRefKind::MorphLoad);
}

TEST(SvfUnit, FillFlagPropagates)
{
    SvfUnit u(enabledParams(), SB);
    u.classifyAndApply(spUpdate(SB, SB - 64));
    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegA0, RegSP, 8));
    auto r = u.classifyAndApply(memRef(ld, SB - 56));
    EXPECT_EQ(r.kind, StackRefKind::MorphLoad);
    EXPECT_TRUE(r.fill);                // word was invalid
    EXPECT_EQ(u.svf().demandFills(), 1u);
}

TEST(SvfUnit, ContextSwitchFlushDelegates)
{
    SvfUnit u(enabledParams(), SB);
    u.classifyAndApply(spUpdate(SB, SB - 64));
    DecodedInst st = dec(encodeMem(Opcode::Stq, RegT0, RegSP, 0));
    u.classifyAndApply(memRef(st, SB - 64));
    EXPECT_EQ(u.contextSwitchFlush(), 8u);
    SvfUnit off(SvfUnitParams{}, SB);
    EXPECT_EQ(off.contextSwitchFlush(), 0u);
}

TEST(SvfUnit, EntryIndexReported)
{
    SvfUnit u(enabledParams(), SB);
    u.classifyAndApply(spUpdate(SB, SB - 64));
    DecodedInst ld = dec(encodeMem(Opcode::Ldq, RegA0, RegSP, 16));
    auto r = u.classifyAndApply(memRef(ld, SB - 48));
    EXPECT_EQ(r.entry, u.svf().indexOf(SB - 48));
}

} // anonymous namespace
} // namespace svf::core
