/**
 * @file
 * Tests for the dynamic-disable extension (Section 3.3: "the SVF can
 * be dynamically disabled for a period of time").
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/svf_unit.hh"
#include "harness/experiment.hh"
#include "isa/decode.hh"
#include "isa/encode.hh"
#include "workloads/registry.hh"

namespace svf::core
{
namespace
{

using namespace isa;

constexpr Addr SB = layout::StackBase;

sim::ExecInfo
makeRef(Addr ea, bool store)
{
    static std::vector<std::unique_ptr<DecodedInst>> pool;
    auto di = std::make_unique<DecodedInst>();
    // A $gpr-based reference so in-window refs reroute and
    // out-of-window refs count as window misses.
    EXPECT_TRUE(decode(encodeMem(store ? Opcode::Stq : Opcode::Ldq,
                                 RegT0, RegT1, 0), *di));
    pool.push_back(std::move(di));
    sim::ExecInfo info;
    info.di = pool.back().get();
    info.ea = ea;
    return info;
}

sim::ExecInfo
spTo(Addr old_sp, Addr new_sp)
{
    static std::vector<std::unique_ptr<DecodedInst>> pool;
    auto di = std::make_unique<DecodedInst>();
    EXPECT_TRUE(decode(encodeMem(Opcode::Lda, RegSP, RegSP, 0), *di));
    pool.push_back(std::move(di));
    sim::ExecInfo info;
    info.di = pool.back().get();
    info.spWritten = true;
    info.oldSp = old_sp;
    info.newSp = new_sp;
    return info;
}

SvfUnitParams
dynParams()
{
    SvfUnitParams p;
    p.enabled = true;
    p.svf.entries = 16;                 // 128-byte window
    p.dynamicDisable = true;
    p.monitorRefs = 100;
    p.missRateThreshold = 0.5;
    p.disableRefs = 200;
    return p;
}

TEST(SvfDynamic, GoodLocalityNeverDisables)
{
    SvfUnit u(dynParams(), SB);
    u.classifyAndApply(spTo(SB, SB - 64));
    for (int i = 0; i < 1000; ++i)
        u.classifyAndApply(makeRef(SB - 64, true));
    EXPECT_EQ(u.disableEpisodes(), 0u);
    EXPECT_FALSE(u.dynamicallyDisabled());
}

TEST(SvfDynamic, PoorLocalityTriggersDisable)
{
    SvfUnit u(dynParams(), SB);
    u.classifyAndApply(spTo(SB, SB - 64));
    // Every reference lands 4KB above the TOS: all window misses.
    for (int i = 0; i < 100; ++i)
        u.classifyAndApply(makeRef(SB + 4096, false));
    EXPECT_EQ(u.disableEpisodes(), 1u);
    EXPECT_TRUE(u.dynamicallyDisabled());
}

TEST(SvfDynamic, DisabledRefsBypassTheSvf)
{
    SvfUnit u(dynParams(), SB);
    u.classifyAndApply(spTo(SB, SB - 64));
    for (int i = 0; i < 100; ++i)
        u.classifyAndApply(makeRef(SB + 4096, false));
    ASSERT_TRUE(u.dynamicallyDisabled());

    // In-window references now classify None (cache path).
    auto r = u.classifyAndApply(makeRef(SB - 64, true));
    EXPECT_EQ(r.kind, StackRefKind::None);
    EXPECT_GT(u.refsWhileDisabled(), 0u);
}

TEST(SvfDynamic, ReenablesAfterCoolingOff)
{
    SvfUnitParams p = dynParams();
    p.disableRefs = 50;
    SvfUnit u(p, SB);
    u.classifyAndApply(spTo(SB, SB - 64));
    for (int i = 0; i < 100; ++i)
        u.classifyAndApply(makeRef(SB + 4096, false));
    ASSERT_TRUE(u.dynamicallyDisabled());
    for (int i = 0; i < 50; ++i)
        u.classifyAndApply(makeRef(SB - 64, true));
    EXPECT_FALSE(u.dynamicallyDisabled());
    // Back in business: in-window refs classify again.
    auto r = u.classifyAndApply(makeRef(SB - 64, true));
    EXPECT_EQ(r.kind, StackRefKind::RerouteStore);
}

TEST(SvfDynamic, DisableFlushesDirtyState)
{
    SvfUnit u(dynParams(), SB);
    u.classifyAndApply(spTo(SB, SB - 64));
    u.classifyAndApply(makeRef(SB - 64, true));     // dirty word
    std::uint64_t out_before = u.svf().quadsOut();
    for (int i = 0; i < 100; ++i)
        u.classifyAndApply(makeRef(SB + 4096, false));
    ASSERT_TRUE(u.dynamicallyDisabled());
    // The SVF held the only copy of the dirty word: it must have
    // been written back when the unit disabled itself.
    EXPECT_GT(u.svf().quadsOut(), out_before);
}

TEST(SvfDynamic, EndToEndStillArchitecturallyCorrect)
{
    // gcc is the window-miss-heavy benchmark; run it with an
    // aggressively twitchy dynamic disable and check the output.
    const auto &spec = workloads::workload("gcc");
    harness::RunSetup s;
    s.workload = "gcc";
    s.input = "cp-decl";
    s.scale = spec.testScale;
    s.maxInsts = 100'000'000;
    s.machine = harness::baselineConfig(16, 2);
    harness::applySvf(s.machine, 64, 2);    // tiny 512B window
    s.machine.svf.dynamicDisable = true;
    s.machine.svf.monitorRefs = 256;
    s.machine.svf.missRateThreshold = 0.3;
    s.machine.svf.disableRefs = 1024;
    harness::RunResult r = harness::runExperiment(s);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.outputOk);
}

} // anonymous namespace
} // namespace svf::core
