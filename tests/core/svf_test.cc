/**
 * @file
 * Tests for the Stack Value File storage and window semantics —
 * the paper's Section 3.3 status bits and Section 5.3.2 semantic
 * advantages (no fill on allocation, no writeback of dead frames).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "base/bitfield.hh"
#include "base/random.hh"
#include "core/svf.hh"
#include "isa/program.hh"

namespace svf::core
{
namespace
{

constexpr Addr SB = isa::layout::StackBase;

SvfParams
small(std::uint32_t entries = 16)
{
    SvfParams p;
    p.entries = entries;
    return p;
}

TEST(Svf, InitialWindowTracksSp)
{
    StackValueFile f(small(), SB);
    EXPECT_EQ(f.windowBase(), SB);
    EXPECT_EQ(f.windowTop(), SB + 16 * 8);
    EXPECT_TRUE(f.inWindow(SB));
    EXPECT_FALSE(f.inWindow(SB - 8));
    EXPECT_FALSE(f.inWindow(SB + 16 * 8));
}

TEST(Svf, AllocationNeedsNoFill)
{
    StackValueFile f(small(), SB);
    f.onSpUpdate(SB - 64);              // allocate a frame
    // First touch is a store: no read traffic may occur.
    EXPECT_EQ(f.store(SB - 64, 8), SvfLookup::Hit);
    EXPECT_EQ(f.quadsIn(), 0u);
    EXPECT_TRUE(f.validAt(SB - 64));
    EXPECT_TRUE(f.dirtyAt(SB - 64));
}

TEST(Svf, LoadOfInvalidWordDemandFills)
{
    StackValueFile f(small(), SB);
    f.onSpUpdate(SB - 64);
    EXPECT_EQ(f.load(SB - 32, 8), SvfLookup::Miss);
    EXPECT_EQ(f.quadsIn(), 1u);
    EXPECT_EQ(f.demandFills(), 1u);
    // Filled word is now valid: second load hits.
    EXPECT_EQ(f.load(SB - 32, 8), SvfLookup::Hit);
    EXPECT_EQ(f.quadsIn(), 1u);
}

TEST(Svf, DeallocationKillsDirtyData)
{
    StackValueFile f(small(), SB);
    f.onSpUpdate(SB - 64);
    for (Addr a = SB - 64; a < SB; a += 8)
        f.store(a, 8);
    // Pop the frame: the dirty words are dead; no writeback.
    f.onSpUpdate(SB);
    EXPECT_EQ(f.quadsOut(), 0u);
    EXPECT_EQ(f.killedWords(), 8u);
}

TEST(Svf, ReallocatedFrameStartsInvalid)
{
    StackValueFile f(small(), SB);
    f.onSpUpdate(SB - 64);
    for (Addr a = SB - 64; a < SB; a += 8)
        f.store(a, 8);
    f.onSpUpdate(SB);                   // pop
    f.onSpUpdate(SB - 64);              // push again
    // The old dirty data must not resurface as valid.
    for (Addr a = SB - 64; a < SB; a += 8) {
        EXPECT_FALSE(f.validAt(a));
        EXPECT_FALSE(f.dirtyAt(a));
    }
}

TEST(Svf, GrowthBeyondCapacitySlidesWithWriteback)
{
    StackValueFile f(small(16), SB);    // 128-byte window
    f.onSpUpdate(SB - 128);
    // Dirty the top half of the stack (highest addresses).
    for (Addr a = SB - 64; a < SB; a += 8)
        f.store(a, 8);
    // Grow 64 more bytes: the window slides down and the 8 dirty
    // words leave coverage -> writeback traffic.
    f.onSpUpdate(SB - 192);
    EXPECT_EQ(f.quadsOut(), 8u);
    EXPECT_EQ(f.windowBase(), SB - 192);
    EXPECT_EQ(f.windowTop(), SB - 64);
}

TEST(Svf, CleanWordsLeaveWindowSilently)
{
    StackValueFile f(small(16), SB);
    f.onSpUpdate(SB - 128);
    for (Addr a = SB - 64; a < SB; a += 8)
        f.load(a, 8);                   // valid but clean
    std::uint64_t in_before = f.quadsIn();
    f.onSpUpdate(SB - 192);
    EXPECT_EQ(f.quadsOut(), 0u);
    EXPECT_EQ(f.quadsIn(), in_before);
}

TEST(Svf, ShrinkExposesOldFramesAsInvalid)
{
    StackValueFile f(small(16), SB - 256);
    // Window covers [SB-256, SB-128). Shrink so the window slides
    // up over addresses it never held.
    f.onSpUpdate(SB - 64);
    EXPECT_TRUE(f.inWindow(SB - 64));
    EXPECT_FALSE(f.validAt(SB - 64));
    // A load of the exposed caller frame demand-fills like a cache.
    EXPECT_EQ(f.load(SB - 64, 8), SvfLookup::Miss);
    EXPECT_EQ(f.quadsIn(), 1u);
}

TEST(Svf, CircularIndexMapping)
{
    StackValueFile f(small(16), SB);
    // Indices wrap module the entry count as addresses slide.
    EXPECT_EQ(f.indexOf(SB), f.indexOf(SB + 16 * 8));
    EXPECT_EQ(f.indexOf(SB - 8),
              (f.indexOf(SB) + 15) % 16);
}

TEST(Svf, PartialStoreToInvalidWordReadsModifiesWrites)
{
    StackValueFile f(small(), SB);
    f.onSpUpdate(SB - 64);
    // A byte store cannot validate the whole word for free.
    EXPECT_EQ(f.store(SB - 64, 1), SvfLookup::Miss);
    EXPECT_EQ(f.quadsIn(), 1u);
    // But once valid, further partial stores are free.
    EXPECT_EQ(f.store(SB - 64, 4), SvfLookup::Hit);
    EXPECT_EQ(f.quadsIn(), 1u);
}

TEST(Svf, FullWordStoreAfterPartialLoadPattern)
{
    StackValueFile f(small(), SB);
    f.onSpUpdate(SB - 64);
    EXPECT_EQ(f.store(SB - 56, 8), SvfLookup::Hit);
    EXPECT_EQ(f.load(SB - 56, 4), SvfLookup::Hit);
    EXPECT_EQ(f.quadsIn(), 0u);
}

TEST(Svf, ContextSwitchWritesOnlyDirtyWords)
{
    StackValueFile f(small(), SB);
    f.onSpUpdate(SB - 128);
    f.store(SB - 128, 8);
    f.store(SB - 64, 8);
    f.load(SB - 32, 8);                 // valid but clean
    std::uint64_t bytes = f.contextSwitchFlush();
    // Per-word dirty bits: exactly two 8-byte words.
    EXPECT_EQ(bytes, 16u);
    // Everything invalid afterwards.
    EXPECT_FALSE(f.validAt(SB - 128));
    EXPECT_FALSE(f.validAt(SB - 32));
}

TEST(Svf, CoarseDirtyGranuleInflatesFlushTraffic)
{
    SvfParams p = small();
    p.dirtyGranule = 32;                // stack-cache-like lines
    StackValueFile f(p, SB);
    f.onSpUpdate(SB - 128);
    f.store(SB - 128, 8);               // one dirty word
    std::uint64_t bytes = f.contextSwitchFlush();
    EXPECT_EQ(bytes, 32u);              // whole granule goes out
}

TEST(Svf, AblationFillOnAlloc)
{
    SvfParams p = small();
    p.fillOnAlloc = true;
    StackValueFile f(p, SB);
    f.onSpUpdate(SB - 64);
    // The ablated design reads the 8 allocated words like a cache.
    EXPECT_EQ(f.quadsIn(), 8u);
    EXPECT_TRUE(f.validAt(SB - 64));
}

TEST(Svf, AblationNoKillOnShrink)
{
    SvfParams p = small();
    p.killOnShrink = false;
    StackValueFile f(p, SB);
    f.onSpUpdate(SB - 64);
    for (Addr a = SB - 64; a < SB; a += 8)
        f.store(a, 8);
    f.onSpUpdate(SB);
    // Without the liveness insight, dead frames get written back.
    EXPECT_EQ(f.quadsOut(), 8u);
    EXPECT_EQ(f.killedWords(), 0u);
}

TEST(Svf, HugeSpJumpInvalidatesEverything)
{
    StackValueFile f(small(16), SB);
    f.onSpUpdate(SB - 64);
    for (Addr a = SB - 64; a < SB; a += 8)
        f.store(a, 8);
    // Jump far beyond capacity in one step (longjmp-like).
    f.onSpUpdate(SB - 100000);
    EXPECT_EQ(f.windowBase(), SB - 100000);
    for (Addr a = SB - 100000; a < SB - 100000 + 128; a += 8)
        EXPECT_FALSE(f.validAt(a));
    // The dirty words were live data leaving the window.
    EXPECT_EQ(f.quadsOut(), 8u);

    // Jump all the way back: everything dead, no writeback.
    for (Addr a = SB - 100000; a < SB - 100000 + 64; a += 8)
        f.store(a, 8);
    std::uint64_t out_before = f.quadsOut();
    f.onSpUpdate(SB);
    EXPECT_EQ(f.quadsOut(), out_before);
}

/** Parameterized sweep over SVF sizes (the paper's 2/4/8KB). */
class SvfSizes : public testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SvfSizes, SteadyStateCallLoopHasNoTraffic)
{
    StackValueFile f(small(GetParam()), SB);
    // Simulate call/return with a 192-byte frame, fitting easily.
    for (int i = 0; i < 1000; ++i) {
        f.onSpUpdate(SB - 192);
        for (Addr a = SB - 192; a < SB; a += 8) {
            f.store(a, 8);
            f.load(a, 8);
        }
        f.onSpUpdate(SB);
    }
    EXPECT_EQ(f.quadsIn(), 0u);
    EXPECT_EQ(f.quadsOut(), 0u);
}

TEST_P(SvfSizes, DeepRecursionTrafficScalesInversely)
{
    std::uint32_t entries = GetParam();
    StackValueFile f(small(entries), SB);
    // Recurse 4KB deeper than the window, dirtying every word,
    // then return. Only words pushed out of the window cost.
    std::uint64_t depth = entries * 8 + 4096;
    for (Addr sp = SB; sp >= SB - depth; sp -= 64) {
        f.onSpUpdate(sp);
        for (Addr a = sp; a < sp + 64 && a < SB; a += 8)
            f.store(a, 8);
    }
    // 4KB of dirty words slid out: 512 quads (+ up to one frame of
    // slack from the final partial step).
    EXPECT_GE(f.quadsOut(), 512u);
    EXPECT_LE(f.quadsOut(), 512u + 8u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvfSizes,
                         testing::Values(256u, 512u, 1024u),
                         [](const auto &info) {
                             return std::to_string(info.param * 8) +
                                    "B";
                         });

/**
 * Property test: the SVF's valid bits must exactly mirror a simple
 * reference model (a map from word address to state) under random
 * stack motion and accesses.
 */
TEST(Svf, ReferenceModelEquivalenceProperty)
{
    const std::uint32_t entries = 64;
    StackValueFile f(small(entries), SB);
    Rng rng(2024);
    Addr sp = SB;

    struct Ref
    {
        bool valid = false;
        bool dirty = false;
    };
    std::map<Addr, Ref> ref;            // word address -> state

    auto ref_window_lo = [&] { return alignDown(sp, 8); };
    auto ref_window_hi = [&] {
        return alignDown(sp, 8) + entries * 8;
    };

    for (int step = 0; step < 20000; ++step) {
        int action = static_cast<int>(rng.below(10));
        if (action < 3) {
            // Move the stack pointer.
            std::int64_t delta = rng.range(-8, 8) * 16;
            Addr new_sp = sp + static_cast<Addr>(delta);
            if (new_sp > SB || new_sp < SB - 6000)
                continue;
            // Update reference model.
            Addr old_lo = ref_window_lo();
            Addr old_hi = ref_window_hi();
            sp = new_sp;
            Addr new_lo = ref_window_lo();
            Addr new_hi = ref_window_hi();
            if (new_lo < old_lo) {
                for (Addr a = new_lo; a < std::min(old_lo, new_hi);
                     a += 8) {
                    ref[a] = Ref{};     // allocated: dead
                }
                for (Addr a = std::max(new_hi, old_lo); a < old_hi;
                     a += 8) {
                    ref[a] = Ref{};     // slid out
                }
            } else if (new_lo > old_lo) {
                for (Addr a = old_lo; a < std::min(new_lo, old_hi);
                     a += 8) {
                    ref[a] = Ref{};     // deallocated: dead
                }
                for (Addr a = std::max(old_hi, new_lo); a < new_hi;
                     a += 8) {
                    ref[a] = Ref{};     // newly covered: invalid
                }
            }
            f.onSpUpdate(sp);
        } else {
            // Random access within the window.
            Addr lo = ref_window_lo();
            Addr a = lo + rng.below(entries) * 8;
            if (rng.chance(0.5)) {
                f.store(a, 8);
                ref[a].valid = true;
                ref[a].dirty = true;
            } else {
                f.load(a, 8);
                ref[a].valid = true;
            }
        }

        // Spot-check a few words each iteration.
        for (int k = 0; k < 4; ++k) {
            Addr a = ref_window_lo() + rng.below(entries) * 8;
            ASSERT_EQ(f.validAt(a), ref[a].valid)
                << "step " << step << " addr " << std::hex << a;
            ASSERT_EQ(f.dirtyAt(a), ref[a].dirty)
                << "step " << step << " addr " << std::hex << a;
        }
    }
}

} // anonymous namespace
} // namespace svf::core
