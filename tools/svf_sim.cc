/**
 * @file
 * svf-sim: the command-line simulator driver.
 *
 * Runs a registered workload or an SVA assembly file on any machine
 * configuration and dumps the full statistics, in the spirit of
 * sim-outorder's command line. Timing runs go through the
 * harness::Runner, so repeated invocations inside one process share
 * its memo cache and the run can be captured as JSON.
 *
 * Usage:
 *     svf-sim workload=crafty [input=ref] [scale=N]
 *     svf-sim asm=path/to/prog.s
 *
 * Common options (key=value):
 *     insts=N          instruction budget          (default 1000000)
 *     width=4|8|16     Table 2 machine model       (default 16)
 *     dl1_ports=N      universal L1 data ports     (default 2)
 *     bpred=perfect|gshare                         (default perfect)
 *     svf=0|1          enable the stack value file (default 0)
 *     svf.kb=N         SVF capacity in KB          (default 8)
 *     svf.ports=N      SVF ports                   (default 2)
 *     svf.no_squash=1  SVF-aware code generator model
 *     stack_cache=0|1  decoupled stack cache instead of the SVF
 *     stack_cache.kb=N                             (default 8)
 *     ctx_period=N     context switch period       (default off)
 *     sched=scan|event issue scheduler implementation; statistics
 *                      are bit-identical, only host speed differs
 *                      (default $SVF_SCHED, else event)
 *     cores=N          N-core System over a shared L2; workload= may
 *                      be a comma mix (one program per core), a
 *                      single name is replicated      (default 1)
 *     slice=Q          time-slice the workload= mix on one core
 *                      every Q committed instructions (default off)
 *     quantum=C        multi-core epoch length in cycles
 *                      (default 1024; statistics are identical for
 *                      any jobs=/pjobs= thread count)
 *     functional=1     skip the cycle model (emulate only)
 *     dump_asm=1       disassemble the program before running
 *     jobs=N           runner worker threads       (default 1)
 *     json=FILE        write the run as a JSON record
 *     progress=1       report job completion on stderr
 *     sample=K,W,D[,warm]  interval-sample the run: K detailed
 *                      windows of W warmup + D measured insts,
 *                      fast-forwarding between them (",warm" adds
 *                      functional cache/bpred warming)
 *     ckpt=DIR         snapshot directory for the sampler's
 *                      fast-forwards (see also: svf-ckpt)
 *     pjobs=N          worker threads for a sampled run's detailed
 *                      windows; results are byte-identical for any N
 *     cache=DIR        disk-persistent result cache; repeated
 *                      identical invocations skip simulation
 *     trace=FILE[,cats][,start,len]  event-trace the run (trace/
 *                      trace.hh): compact binary at FILE plus
 *                      Chrome/Perfetto JSON at FILE.json; inspect
 *                      with svf-trace. cats is a '+'-joined subset
 *                      of core+svf+sc+cache+disambig+replay; start,
 *                      len bound the traced cycle window. A pure
 *                      observer: statistics are bit-identical with
 *                      tracing on, off, or compiled out.
 *     prof=1           host phase profiler (harness/prof.hh): print
 *                      the wall/CPU phase breakdown after the run
 *                      and embed it in json=FILE as "profile"
 *     server=SPEC      run on an svf_simd daemon instead of in
 *                      process (serve/client.hh): SPEC is a Unix
 *                      socket path or a TCP loopback port. Needs a
 *                      registry workload (asm= cannot be shipped);
 *                      trace= is refused, cache= is the daemon's
 *                      business. Statistics and json= output are
 *                      byte-identical to a local run.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "base/config.hh"
#include "base/logging.hh"
#include "harness/experiment.hh"
#include "harness/json_report.hh"
#include "harness/prof.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "serve/client.hh"
#include "trace/trace.hh"
#include "isa/assembler.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "sim/emulator.hh"
#include "workloads/registry.hh"

using namespace svf;

namespace
{

isa::Program
loadProgram(const Config &cfg, std::string &display_name)
{
    std::string asm_path = cfg.getString("asm", "");
    if (!asm_path.empty()) {
        std::ifstream in(asm_path);
        if (!in)
            fatal("cannot open assembly file '%s'", asm_path.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        display_name = asm_path;
        try {
            return isa::assemble(ss.str(), asm_path);
        } catch (const isa::AsmError &e) {
            fatal("%s: %s", asm_path.c_str(), e.what());
        }
    }

    std::string name = cfg.getString("workload", "");
    if (name.empty())
        fatal("pass workload=<name> or asm=<file.s>  (workloads: "
              "bzip2 crafty eon gap gcc gzip mcf parser perlbmk "
              "twolf vortex vpr)");
    const workloads::WorkloadSpec &spec = workloads::workload(name);
    std::string input = cfg.getString("input", spec.inputs[0]);
    std::uint64_t scale = cfg.getUint("scale", spec.defaultScale);
    display_name = name + "." + input;
    return spec.build(input, scale);
}

void
dumpStats(const std::string &name, const uarch::MachineConfig &m,
          const harness::RunResult &r)
{
    const uarch::CoreStats &s = r.core;
    std::printf("\n-- %s: timing statistics --\n", name.c_str());
    std::printf("sim_cycles            %llu\n",
                (unsigned long long)s.cycles);
    std::printf("sim_insts             %llu\n",
                (unsigned long long)s.committed);
    std::printf("sim_IPC               %.4f\n", s.ipc());
    std::printf("loads / stores        %llu / %llu\n",
                (unsigned long long)s.loads,
                (unsigned long long)s.stores);
    std::printf("branches (mispred)    %llu (%llu)\n",
                (unsigned long long)s.branches,
                (unsigned long long)s.mispredicts);
    std::printf("lsq_forwards          %llu\n",
                (unsigned long long)s.lsqForwards);
    std::printf("sp_interlocks         %llu\n",
                (unsigned long long)s.spInterlocks);
    std::printf("dl1 hits / misses     %llu / %llu\n",
                (unsigned long long)r.dl1Hits,
                (unsigned long long)r.dl1Misses);
    std::printf("l2 hits / misses      %llu / %llu\n",
                (unsigned long long)r.l2Hits,
                (unsigned long long)r.l2Misses);

    if (m.svf.enabled) {
        std::printf("svf fast loads/stores %llu / %llu\n",
                    (unsigned long long)r.svfFastLoads,
                    (unsigned long long)r.svfFastStores);
        std::printf("svf rerouted          %llu\n",
                    (unsigned long long)(r.svfReroutedLoads +
                                         r.svfReroutedStores));
        std::printf("svf window misses     %llu\n",
                    (unsigned long long)r.svfWindowMisses);
        std::printf("svf quads in / out    %llu / %llu\n",
                    (unsigned long long)r.svfQuadsIn,
                    (unsigned long long)r.svfQuadsOut);
        std::printf("svf squashes          %llu\n",
                    (unsigned long long)s.squashes);
        if (m.svf.dynamicDisable) {
            std::printf("svf disable episodes  %llu (%llu refs "
                        "bypassed)\n",
                        (unsigned long long)r.svfDisableEpisodes,
                        (unsigned long long)r.svfRefsWhileDisabled);
        }
    }
    if (m.stackCacheEnabled) {
        std::printf("stack$ hits / misses  %llu / %llu\n",
                    (unsigned long long)r.scHits,
                    (unsigned long long)r.scMisses);
        std::printf("stack$ quads in/out   %llu / %llu\n",
                    (unsigned long long)r.scQuadsIn,
                    (unsigned long long)r.scQuadsOut);
    }
    if (s.ctxSwitches) {
        std::printf("context switches      %llu (svf %llu B, "
                    "stack$ %llu B, dl1 %llu lines)\n",
                    (unsigned long long)s.ctxSwitches,
                    (unsigned long long)s.svfCtxBytes,
                    (unsigned long long)s.scCtxBytes,
                    (unsigned long long)s.dl1CtxLines);
    }
    if (r.sampled.enabled()) {
        const ckpt::SampleEstimate &e = r.sampled;
        std::printf("sampled intervals     %llu (%llu measured, "
                    "%llu warmup, %llu fast-forwarded insts)\n",
                    (unsigned long long)e.intervals,
                    (unsigned long long)e.sampledInsts,
                    (unsigned long long)e.warmupInsts,
                    (unsigned long long)e.ffInsts);
        std::printf("est_total_insts       %llu\n",
                    (unsigned long long)e.totalInsts);
        std::printf("est_cycles            %llu\n",
                    (unsigned long long)e.estimatedCycles);
        std::printf("est_IPC               %.4f (+/- %.4f across "
                    "intervals)\n", e.ipcMean, e.ipcStddev);
    }
    std::printf("program halted        %s\n",
                r.completed ? "yes" : "no (budget reached)");
    for (const harness::RunResult &g : r.perCore) {
        std::printf("core[%s]  cycles=%llu insts=%llu IPC=%.4f "
                    "dl1=%llu/%llu l2=%llu/%llu halted=%s\n",
                    g.label.c_str(),
                    (unsigned long long)g.core.cycles,
                    (unsigned long long)g.core.committed, g.ipc(),
                    (unsigned long long)g.dl1Hits,
                    (unsigned long long)g.dl1Misses,
                    (unsigned long long)g.l2Hits,
                    (unsigned long long)g.l2Misses,
                    g.completed ? "yes" : "no");
    }
    if (!r.output.empty())
        std::printf("program output:\n%s", r.output.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);

    harness::RunSetup sys;
    harness::systemFromConfig(cfg, sys);
    bool drive_mode = sys.cores != 1 || sys.slicePeriod != 0;
    bool functional = cfg.getBool("functional", false);
    std::string server = cfg.getString("server", "");
    // Registry workload mixes (workload=a,b,...) only exist under a
    // drive mode; everything else goes through the classic
    // single-program loader (which an asm= drive-mode run also uses:
    // its one program is replicated across the cores).
    bool registry_multi = drive_mode && !functional &&
                          cfg.getString("asm", "").empty();
    // Timing runs of a registry workload are keyed by name, not by a
    // locally built program, so they share cache identity with the
    // bench plans — and can be shipped to an svf_simd daemon
    // (server=). dump_asm= still needs the program in hand.
    bool registry_byname = !registry_multi && !functional &&
                           cfg.getString("asm", "").empty() &&
                           !cfg.getBool("dump_asm", false);

    std::string name;
    std::string sel_input;
    std::uint64_t sel_scale = 0;
    isa::Program prog;
    if (registry_multi) {
        name = cfg.getString("workload", "");
        if (name.empty())
            fatal("cores=/slice= need workload=<name[,name...]>");
    } else if (registry_byname) {
        std::string wname = cfg.getString("workload", "");
        if (wname.empty())
            fatal("pass workload=<name> or asm=<file.s>  (workloads: "
                  "bzip2 crafty eon gap gcc gzip mcf parser perlbmk "
                  "twolf vortex vpr)");
        const workloads::WorkloadSpec &spec =
            workloads::workload(wname);
        sel_input = cfg.getString("input", spec.inputs[0]);
        sel_scale = cfg.getUint("scale", 0);
        name = wname + "." + sel_input;
    } else {
        if (!server.empty()) {
            fatal("server= needs a registry workload (asm=/dump_asm= "
                  "programs cannot be shipped to a daemon)");
        }
        prog = loadProgram(cfg, name);
    }
    std::uint64_t budget = cfg.getUint("insts", 1'000'000);

    if (registry_multi && cfg.getBool("dump_asm", false)) {
        warn("dump_asm= is ignored for a cores=/slice= workload mix");
    } else if (cfg.getBool("dump_asm", false)) {
        for (Addr pc = prog.textBase;
             pc < prog.textBase + prog.textSize; pc += 4) {
            isa::DecodedInst di;
            if (isa::decode(prog.fetchRaw(pc), di)) {
                std::printf("%08llx  %s\n",
                            (unsigned long long)pc,
                            isa::disassemble(di, pc).c_str());
            }
        }
    }

    if (functional && !server.empty())
        fatal("functional=1 runs locally; drop server=");

    if (functional) {
        sim::Emulator emu(prog);
        emu.run(budget);
        std::printf("-- %s: functional run --\n", name.c_str());
        std::printf("sim_insts   %llu\n",
                    (unsigned long long)emu.instCount());
        std::printf("halted      %s\n", emu.halted() ? "yes" : "no");
        std::printf("max depth   %llu words\n",
                    (unsigned long long)((isa::layout::StackBase -
                                          emu.minSp()) / 8));
        if (!emu.output().empty())
            std::printf("output:\n%s", emu.output().c_str());
    } else {
        harness::RunSetup s;
        s.maxInsts = budget;
        s.machine = harness::machineFromConfig(cfg);
        s.cores = sys.cores;
        s.slicePeriod = sys.slicePeriod;
        s.sysQuantum = sys.sysQuantum;
        s.sample =
            ckpt::SamplePlan::parse(cfg.getString("sample", ""));
        s.ckptDir = cfg.getString("ckpt", "");
        s.pjobs =
            static_cast<unsigned>(cfg.getUint("pjobs", 1));
        s.trace = trace::TraceSpec::parse(cfg.getString("trace", ""));
        if (registry_multi) {
            s.workload = name;
            s.input = cfg.getString("input", "");
            s.scale = cfg.getUint("scale", 0);
        } else if (registry_byname) {
            s.workload = name.substr(0, name.rfind('.'));
            s.input = sel_input;
            s.scale = sel_scale;
        } else {
            s.program =
                std::make_shared<const isa::Program>(std::move(prog));
        }

        harness::ExperimentPlan plan;
        plan.add(name, s);

        bool prof_on = cfg.getBool("prof", false);
        if (prof_on)
            harness::prof::Profiler::instance().enable(true);

        std::vector<harness::JobOutcome> res;
        if (!server.empty()) {
            if (s.trace.enabled()) {
                fatal("trace= writes client-local files; drop "
                      "server= or trace=");
            }
            if (!cfg.getString("cache", "").empty()) {
                warn("cache= is ignored with server=: the daemon "
                     "owns the result cache");
            }
            serve::Client client;
            std::string err;
            if (!client.connect(server, err))
                fatal("%s", err.c_str());
            harness::ProgressHook hook;
            if (cfg.getBool("progress", false))
                hook = harness::stderrProgress();
            if (!client.runPlan(plan, res, err, hook))
                fatal("%s", err.c_str());
        } else {
            harness::RunnerOptions opts;
            opts.jobs =
                static_cast<unsigned>(cfg.getUint("jobs", 1));
            opts.cacheDir = cfg.getString("cache", "");
            // A cached hit would skip the simulation that writes the
            // trace file.
            if (s.trace.enabled())
                opts.memoize = false;
            if (cfg.getBool("progress", false))
                opts.progress = harness::stderrProgress();
            harness::Runner runner(opts);
            res = runner.run(plan);
        }

        dumpStats(name, s.machine, res[0].run());
        if (prof_on) {
            harness::prof::Profiler::Report pr =
                harness::prof::Profiler::instance().report();
            std::printf("\n-- host phase profile (%.2fs elapsed) --\n",
                        pr.elapsedSeconds);
            for (unsigned p = 0;
                 p < unsigned(harness::prof::Phase::NumPhases); ++p) {
                if (!pr.phase[p].count)
                    continue;
                std::printf("%-18s %8.3fs wall  %8.3fs cpu  %8llu x\n",
                            harness::prof::phaseName(
                                harness::prof::Phase(p)),
                            pr.phase[p].wallSeconds,
                            pr.phase[p].cpuSeconds,
                            (unsigned long long)pr.phase[p].count);
            }
        }

        std::string json_path = cfg.getString("json", "");
        if (!json_path.empty()) {
            harness::JsonReport report;
            report.add(res);
            if (prof_on) {
                report.setProfile(harness::prof::Profiler::instance()
                                      .reportJson());
            }
            report.writeFile(json_path);
        }
    }

    cfg.warnUnused();
    return 0;
}
