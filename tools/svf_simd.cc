/**
 * @file
 * svf-simd: the persistent simulation-as-a-service daemon.
 *
 * Serves the svf_simd NDJSON protocol (serve/wire.hh, docs/
 * serving.md): thin clients (`svf-sim server=...`, bench binaries
 * with `server=...`) submit experiment plans as JSON and stream back
 * progress events and bit-identical results. One daemon amortizes
 * the worker pool, the in-memory memo and the disk result cache over
 * every client, dedups identical in-flight setups, and schedules
 * fairly across clients.
 *
 * Usage:
 *     svf-simd --listen /tmp/svf.sock [options]
 *     svf-simd --port 7777 [options]
 *     svf-simd --stats /tmp/svf.sock     one-shot stats client
 *
 * Options (key=value, bench-style):
 *     jobs=N       worker threads        (default: hw concurrency)
 *     cache=DIR    disk result cache shared with local runs
 *     journal=DIR  in-flight request journal: requests accepted but
 *                  not finished when the daemon dies are re-executed
 *                  on the next start
 *     queue=N      max queued jobs before submits are rejected with
 *                  a backpressure error (default: unbounded)
 *     prof=1       host phase profiler; `running` heartbeats carry
 *                  snapshots and stats includes phase latencies
 *
 * SIGTERM/SIGINT drain gracefully: running simulations finish and
 * persist to the cache, queued ones stay journaled, then exit 0.
 */

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/config.hh"
#include "base/logging.hh"
#include "harness/prof.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace svf;

namespace
{

serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestStop();
}

int
statsClient(const std::string &spec)
{
    serve::Client client;
    std::string err, stats;
    if (!client.connect(spec, err) || !client.stats(stats, err)) {
        std::fprintf(stderr, "svf-simd: %s\n", err.c_str());
        return 1;
    }
    std::printf("%s\n", stats.c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions opts;
    std::vector<char *> cfg_args;
    cfg_args.push_back(argv[0]);

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--listen") {
            opts.unixPath = need_value("--listen");
        } else if (arg == "--port") {
            opts.port = std::atoi(need_value("--port").c_str());
        } else if (arg == "--stats") {
            return statsClient(need_value("--stats"));
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: svf-simd --listen PATH | --port N "
                "[jobs=N] [cache=DIR] [journal=DIR] [queue=N] "
                "[prof=1]\n"
                "       svf-simd --stats PATH|PORT\n");
            return 0;
        } else {
            cfg_args.push_back(argv[i]);
        }
    }

    Config cfg = Config::fromArgs(int(cfg_args.size()),
                                  cfg_args.data());
    opts.service.engine.threads =
        static_cast<unsigned>(cfg.getUint("jobs", 0));
    opts.service.engine.cacheDir = cfg.getString("cache", "");
    opts.service.engine.maxQueued = cfg.getUint("queue", 0);
    opts.service.journalDir = cfg.getString("journal", "");
    if (cfg.getBool("prof", false))
        harness::prof::Profiler::instance().enable(true);
    cfg.warnUnused();

    if (opts.unixPath.empty() && opts.port < 0)
        fatal("pass --listen PATH and/or --port N (0 = ephemeral)");

    serve::Server server(opts);
    g_server = &server;

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::string err;
    if (!server.start(err))
        fatal("svf-simd: %s", err.c_str());

    if (!opts.unixPath.empty())
        inform("svf-simd: listening on %s", opts.unixPath.c_str());
    if (opts.port >= 0)
        inform("svf-simd: listening on 127.0.0.1:%d",
               server.tcpPort());

    server.serveForever();
    inform("svf-simd: drained, exiting");
    g_server = nullptr;
    return 0;
}
