/**
 * @file
 * svf-ckpt: create, inspect and resume architectural snapshots.
 *
 * The checkpoint subsystem (src/ckpt/) is normally driven implicitly
 * through sample=/ckpt= options; this tool exposes it directly so
 * snapshots can be produced ahead of time, audited, and resumed into
 * a detailed simulation from the command line.
 *
 * Usage:
 *     svf-ckpt cmd=create workload=mcf [input=ref] [scale=N]
 *              at=N file=mcf.ckpt
 *     svf-ckpt cmd=create asm=prog.s at=N file=prog.ckpt
 *     svf-ckpt cmd=inspect file=mcf.ckpt
 *     svf-ckpt cmd=resume file=mcf.ckpt [insts=N] [width=16 svf=1
 *              ... any machine option of svf-sim]
 *
 * Options:
 *     cmd=create|inspect|resume        (required)
 *     file=FILE        the snapshot file (required)
 *     at=N             create: functional instructions to execute
 *                      before capturing            (default 100000)
 *     insts=N          resume: detailed instruction budget after the
 *                      restore point               (default 1000000)
 *     asm=FILE.s       create/resume: external program (a snapshot
 *                      created from asm= records no registry
 *                      provenance, so resume needs asm= again)
 *
 * resume also accepts every machine option svf-sim understands
 * (width=, svf=, stack_cache=, sched=, ...).
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/config.hh"
#include "base/logging.hh"
#include "ckpt/snapshot.hh"
#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"
#include "workloads/registry.hh"

using namespace svf;

namespace
{

isa::Program
loadAsm(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    try {
        return isa::assemble(ss.str(), path);
    } catch (const isa::AsmError &e) {
        fatal("%s: %s", path.c_str(), e.what());
    }
}

int
doCreate(const Config &cfg, const std::string &file)
{
    ckpt::Snapshot snap;
    isa::Program prog;
    std::string asm_path = cfg.getString("asm", "");
    if (!asm_path.empty()) {
        prog = loadAsm(asm_path);
    } else {
        snap.workload = cfg.getString("workload", "");
        if (snap.workload.empty())
            fatal("cmd=create needs workload=<name> or asm=<file.s>");
        const workloads::WorkloadSpec &spec =
            workloads::workload(snap.workload);
        snap.input = cfg.getString("input", spec.inputs[0]);
        snap.scale = cfg.getUint("scale", spec.defaultScale);
        prog = spec.build(snap.input, snap.scale);
    }

    std::uint64_t at = cfg.getUint("at", 100'000);
    sim::Emulator emu(prog);
    ckpt::fastForward(emu, at);
    if (emu.instCount() < at) {
        warn("program halted after %llu instructions (at=%llu); "
             "capturing the final state",
             (unsigned long long)emu.instCount(),
             (unsigned long long)at);
    }

    ckpt::Snapshot captured = ckpt::Snapshot::capture(emu);
    captured.workload = snap.workload;
    captured.input = snap.input;
    captured.scale = snap.scale;
    if (!captured.saveFile(file))
        fatal("cannot write snapshot '%s'", file.c_str());
    std::printf("wrote %s: icount=%llu pages=%zu prog=%016llx\n",
                file.c_str(),
                (unsigned long long)captured.state.icount,
                (size_t)captured.pageCount(),
                (unsigned long long)captured.progHash);
    return 0;
}

int
doInspect(const std::string &file)
{
    ckpt::Snapshot snap;
    std::string error;
    if (!snap.loadFile(file, error))
        fatal("%s: %s", file.c_str(), error.c_str());

    std::printf("snapshot              %s\n", file.c_str());
    std::printf("format version        %u\n", snap.FormatVersion);
    std::printf("cores                 %u\n", snap.coreCount());
    if (snap.workload.empty()) {
        std::printf("provenance            external program "
                    "(resume needs asm=)\n");
    } else {
        std::printf("provenance            workload=%s input=%s "
                    "scale=%llu\n",
                    snap.workload.c_str(), snap.input.c_str(),
                    (unsigned long long)snap.scale);
    }
    std::printf("program hash          %016llx\n",
                (unsigned long long)snap.progHash);
    std::printf("instruction count     %llu\n",
                (unsigned long long)snap.state.icount);
    std::printf("pc                    %08llx\n",
                (unsigned long long)snap.state.pc);
    std::printf("halted                %s\n",
                snap.state.halted ? "yes" : "no");
    std::printf("touched pages         %zu (%zu KiB)\n",
                (size_t)snap.pageCount(),
                (size_t)snap.pageCount() * 4);
    std::printf("min $sp               %08llx\n",
                (unsigned long long)snap.state.lowSp);
    std::printf("buffered output       %zu bytes\n",
                snap.state.output.size());
    for (std::size_t i = 0; i < snap.extraCores.size(); ++i) {
        const ckpt::Snapshot::CoreImage &c = snap.extraCores[i];
        std::printf("core %-2zu               workload=%s "
                    "icount=%llu pages=%zu prog=%016llx\n",
                    i + 1,
                    c.workload.empty() ? "(external)"
                                       : c.workload.c_str(),
                    (unsigned long long)c.state.icount,
                    (size_t)c.pageCount(),
                    (unsigned long long)c.progHash);
    }
    return 0;
}

int
doResume(const Config &cfg, const std::string &file)
{
    ckpt::Snapshot snap;
    std::string error;
    if (!snap.loadFile(file, error))
        fatal("%s: %s", file.c_str(), error.c_str());

    isa::Program prog;
    std::string asm_path = cfg.getString("asm", "");
    if (!asm_path.empty()) {
        prog = loadAsm(asm_path);
    } else if (!snap.workload.empty()) {
        const workloads::WorkloadSpec &spec =
            workloads::workload(snap.workload);
        prog = spec.build(snap.input, snap.scale);
    } else {
        fatal("snapshot has no workload provenance; pass asm=<file.s>");
    }

    sim::Emulator oracle(prog);
    snap.restore(oracle);

    uarch::MachineConfig machine = harness::machineFromConfig(cfg);
    uarch::OooCore core(machine, oracle);
    std::uint64_t budget = cfg.getUint("insts", 1'000'000);
    core.run(budget);

    const uarch::CoreStats &s = core.stats();
    std::printf("resumed at            %llu insts\n",
                (unsigned long long)snap.state.icount);
    std::printf("sim_cycles            %llu\n",
                (unsigned long long)s.cycles);
    std::printf("sim_insts             %llu\n",
                (unsigned long long)s.committed);
    std::printf("sim_IPC               %.4f\n", s.ipc());
    std::printf("loads / stores        %llu / %llu\n",
                (unsigned long long)s.loads,
                (unsigned long long)s.stores);
    std::printf("dl1 hits / misses     %llu / %llu\n",
                (unsigned long long)core.hier().dl1().hits(),
                (unsigned long long)core.hier().dl1().misses());
    std::printf("program halted        %s\n",
                oracle.halted() ? "yes" : "no (budget reached)");
    if (!oracle.output().empty())
        std::printf("program output:\n%s", oracle.output().c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::string cmd = cfg.getString("cmd", "");
    std::string file = cfg.getString("file", "");
    if (cmd.empty() || file.empty())
        fatal("usage: svf-ckpt cmd=create|inspect|resume file=FILE "
              "[options]  (see the header of tools/svf_ckpt.cc)");

    int rc;
    if (cmd == "create")
        rc = doCreate(cfg, file);
    else if (cmd == "inspect")
        rc = doInspect(file);
    else if (cmd == "resume")
        rc = doResume(cfg, file);
    else
        fatal("unknown cmd '%s' (create|inspect|resume)", cmd.c_str());

    cfg.warnUnused();
    return rc;
}
