/**
 * @file
 * svf-trace: inspect and convert binary simulation traces.
 *
 * Works on the compact binary stream `trace=FILE` writes (see
 * trace/trace.hh for the format; the Chrome JSON sibling at
 * FILE.json needs no tool — load it straight into Perfetto).
 *
 * Usage:
 *     svf-trace summarize FILE [cats=svf+cache] [start=N] [len=N]
 *     svf-trace dump      FILE [cats=...] [start=N] [len=N] [limit=N]
 *     svf-trace convert   FILE [out=FILE.json] [cats=...] [start=N]
 *                              [len=N]
 *
 * All three subcommands share the filter options: cats= keeps only
 * the '+'-joined categories, start=/len= keep only the cycle window
 * [start, start+len). Exits 1 when the file is missing/corrupt or
 * the filter leaves zero events — so a CI smoke test can assert a
 * trace is both well-formed and non-empty in one invocation.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "base/config.hh"
#include "base/logging.hh"
#include "trace/trace.hh"

using namespace svf;

namespace
{

struct Filter
{
    std::uint32_t mask = trace::CatAll;
    std::uint64_t start = 0;
    std::uint64_t len = 0;      // 0 => unbounded

    bool
    keep(const trace::Event &e) const
    {
        if (!(mask & trace::opCategory(trace::Op(e.op))))
            return false;
        if (e.cycle < start)
            return false;
        if (len && e.cycle >= start + len)
            return false;
        return true;
    }
};

std::vector<trace::Event>
loadFiltered(const std::string &path, const Filter &f)
{
    std::vector<trace::Event> events;
    if (!trace::readBinary(path, events))
        fatal("cannot read trace '%s' (missing or corrupt)",
              path.c_str());
    std::vector<trace::Event> out;
    out.reserve(events.size());
    for (const trace::Event &e : events) {
        if (f.keep(e))
            out.push_back(e);
    }
    return out;
}

int
summarize(const std::string &path, const Filter &f)
{
    std::vector<trace::Event> events = loadFiltered(path, f);
    if (events.empty()) {
        std::fprintf(stderr, "%s: no events match the filter\n",
                     path.c_str());
        return 1;
    }

    std::uint64_t per_op[unsigned(trace::Op::NumOps)] = {};
    std::uint64_t min_cycle = ~std::uint64_t(0), max_cycle = 0;
    std::uint32_t min_stream = ~std::uint32_t(0), max_stream = 0;
    for (const trace::Event &e : events) {
        ++per_op[e.op];
        min_cycle = std::min(min_cycle, e.cycle);
        max_cycle = std::max(max_cycle, e.cycle);
        min_stream = std::min(min_stream, e.stream);
        max_stream = std::max(max_stream, e.stream);
    }

    std::printf("%s: %zu events, cycles [%llu, %llu], streams "
                "%u..%u\n", path.c_str(), events.size(),
                (unsigned long long)min_cycle,
                (unsigned long long)max_cycle, min_stream, max_stream);
    for (unsigned op = 0; op < unsigned(trace::Op::NumOps); ++op) {
        if (!per_op[op])
            continue;
        std::printf("  %-20s %-9s %llu\n",
                    trace::opName(trace::Op(op)),
                    trace::categoryName(
                        trace::opCategory(trace::Op(op))),
                    (unsigned long long)per_op[op]);
    }
    return 0;
}

int
dump(const std::string &path, const Filter &f, std::uint64_t limit)
{
    std::vector<trace::Event> events = loadFiltered(path, f);
    if (events.empty()) {
        std::fprintf(stderr, "%s: no events match the filter\n",
                     path.c_str());
        return 1;
    }
    std::uint64_t n = 0;
    for (const trace::Event &e : events) {
        if (limit && n++ >= limit) {
            std::printf("... (%zu more)\n", events.size() - limit);
            break;
        }
        std::printf("%10llu  s%-4u %-20s a0=0x%llx a1=0x%llx\n",
                    (unsigned long long)e.cycle, e.stream,
                    trace::opName(trace::Op(e.op)),
                    (unsigned long long)e.a0,
                    (unsigned long long)e.a1);
    }
    return 0;
}

int
convert(const std::string &path, const Filter &f,
        const std::string &out_path)
{
    std::vector<trace::Event> events = loadFiltered(path, f);
    if (events.empty()) {
        std::fprintf(stderr, "%s: no events match the filter\n",
                     path.c_str());
        return 1;
    }
    if (!trace::writeChromeJson(out_path, events))
        return 1;
    std::printf("%s: wrote %zu events (Chrome trace-event JSON; "
                "load at ui.perfetto.dev)\n", out_path.c_str(),
                events.size());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: svf-trace summarize|dump|convert FILE "
                     "[cats=a+b] [start=N] [len=N] [limit=N] "
                     "[out=FILE]\n");
        return 2;
    }
    std::string cmd = argv[1];
    std::string path = argv[2];

    // Remaining args use the standard key=value grammar.
    Config cfg = Config::fromArgs(argc - 2, argv + 2);
    Filter f;
    std::string cats = cfg.getString("cats", "");
    if (!cats.empty())
        f.mask = trace::parseCategories(cats);
    f.start = cfg.getUint("start", 0);
    f.len = cfg.getUint("len", 0);

    int rc;
    if (cmd == "summarize") {
        rc = summarize(path, f);
    } else if (cmd == "dump") {
        rc = dump(path, f, cfg.getUint("limit", 0));
    } else if (cmd == "convert") {
        rc = convert(path, f,
                     cfg.getString("out", path + ".json"));
    } else {
        std::fprintf(stderr, "unknown subcommand '%s' (expected "
                     "summarize, dump or convert)\n", cmd.c_str());
        return 2;
    }
    cfg.warnUnused();
    return rc;
}
