#include "workloads/registry.hh"

#include "base/logging.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

std::uint64_t
inputSeed(const std::string &workload, const std::string &input)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : workload + ":" + input) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

Addr
allocHeapBytes(isa::ProgramBuilder &pb,
               const std::vector<std::uint8_t> &bytes)
{
    std::vector<std::uint64_t> quads((bytes.size() + 7) / 8, 0);
    for (size_t i = 0; i < bytes.size(); ++i)
        quads[i / 8] |= std::uint64_t(bytes[i]) << (8 * (i % 8));
    return pb.allocHeapQuads(quads);
}

std::string
putintLine(std::uint64_t v)
{
    return std::to_string(static_cast<std::int64_t>(v)) + "\n";
}

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const std::vector<WorkloadSpec> specs = {
        {"bzip2", "256.bzip2", {"graphic", "program"},
         buildBzip2, expectBzip2, 6000, 300},
        {"crafty", "186.crafty", {"ref"},
         buildCrafty, expectCrafty, 30, 2},
        {"eon", "252.eon", {"cook", "kajiya"},
         buildEon, expectEon, 8000, 400},
        {"gap", "254.gap", {"ref"},
         buildGap, expectGap, 8000, 400},
        {"gcc", "176.gcc", {"cp-decl", "integrate"},
         buildGcc, expectGcc, 30, 4},
        {"gzip", "164.gzip", {"graphic", "log", "program"},
         buildGzip, expectGzip, 25000, 1500},
        {"mcf", "181.mcf", {"inp"},
         buildMcf, expectMcf, 1300, 60},
        {"parser", "197.parser", {"ref"},
         buildParser, expectParser, 5500, 150},
        {"perlbmk", "253.perlbmk", {"scrabbl"},
         buildPerlbmk, expectPerlbmk, 310, 30},
        {"twolf", "300.twolf", {"ref"},
         buildTwolf, expectTwolf, 5500, 500},
        {"vortex", "255.vortex", {"ref"},
         buildVortex, expectVortex, 16000, 350},
        {"vpr", "175.vpr", {"ref"},
         buildVpr, expectVpr, 20, 2},
    };
    return specs;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

const WorkloadSpec &
workload(const std::string &name)
{
    if (const WorkloadSpec *w = findWorkload(name))
        return *w;
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace svf::workloads
