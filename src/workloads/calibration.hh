/**
 * @file
 * Stack-behaviour profiling of workloads (Section 2 of the paper:
 * Figures 1, 2 and 3).
 */

#ifndef SVF_WORKLOADS_CALIBRATION_HH
#define SVF_WORKLOADS_CALIBRATION_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "isa/program.hh"

namespace svf::workloads
{

/** Figure 1-3 statistics for one workload run. */
struct StackProfile
{
    std::uint64_t insts = 0;
    std::uint64_t memRefs = 0;

    /** @name Figure 1: references by region */
    /// @{
    std::uint64_t stackRefs = 0;
    std::uint64_t globalRefs = 0;
    std::uint64_t heapRefs = 0;
    std::uint64_t otherRefs = 0;
    /// @}

    /** @name Figure 1: stack references by access method */
    /// @{
    std::uint64_t stackSp = 0;
    std::uint64_t stackFp = 0;
    std::uint64_t stackGpr = 0;
    /// @}

    /** @name Figure 2: stack depth over time */
    /// @{
    /** Max depth in 64-bit units (the paper's Figure 2 y-axis). */
    std::uint64_t maxDepthWords = 0;

    /** (instruction count, depth in words) samples. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> depthSamples;
    /// @}

    /** @name Figure 3: offset-from-TOS locality */
    /// @{
    double avgOffsetBytes = 0.0;

    /** Fraction of stack references within 8KB of the TOS. */
    double within8k = 0.0;

    /** Fraction within 256 bytes of the TOS. */
    double within256 = 0.0;

    /** References below the current TOS (the paper observes none). */
    std::uint64_t belowTos = 0;

    /** Cumulative fraction of stack refs at offset <= 2^k bytes. */
    std::vector<double> offsetCdf;
    /// @}

    double stackFraction() const
    {
        return memRefs ? double(stackRefs) / double(memRefs) : 0.0;
    }

    double spFraction() const
    {
        return stackRefs ? double(stackSp) / double(stackRefs) : 0.0;
    }
};

/**
 * Run @p prog functionally and collect its stack profile.
 *
 * @param prog the program.
 * @param max_insts instruction budget.
 * @param depth_samples how many Figure 2 time samples to keep.
 */
StackProfile profileProgram(const isa::Program &prog,
                            std::uint64_t max_insts,
                            unsigned depth_samples = 256);

} // namespace svf::workloads

#endif // SVF_WORKLOADS_CALIBRATION_HH
