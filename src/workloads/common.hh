/**
 * @file
 * Helpers shared by the workload kernels.
 */

#ifndef SVF_WORKLOADS_COMMON_HH
#define SVF_WORKLOADS_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"
#include "isa/builder.hh"

namespace svf::workloads
{

/** Deterministic seed derived from a workload name + input name. */
std::uint64_t inputSeed(const std::string &workload,
                        const std::string &input);

/** Allocate a byte buffer in the heap region, quadword padded. */
Addr allocHeapBytes(isa::ProgramBuilder &pb,
                    const std::vector<std::uint8_t> &bytes);

/** Render a signed value the way the putint syscall prints it. */
std::string putintLine(std::uint64_t v);

/** The multiplicative hash constant the kernels share. */
constexpr std::uint64_t HashMul = 0x9e3779b97f4a7c15ULL;

/** One round of the mixing function the kernels use host-side. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x *= HashMul;
    x ^= x >> 29;
    return x;
}

} // namespace svf::workloads

#endif // SVF_WORKLOADS_COMMON_HH
