/**
 * @file
 * 176.gcc stand-in: recursive-descent expression compiler with
 * large frames and heap-allocated nodes.
 *
 * Stack personality: gcc is the paper's largest stack consumer —
 * deep mutually recursive parse functions with big frames push
 * references far from the TOS (the paper reports a 380-byte average
 * offset and the only benchmark with meaningful >8KB traffic). Each
 * parse level here stacks three 512-byte frames, so the deeper
 * "cp-decl" input overflows an 8KB SVF exactly the way the paper's
 * gcc rows in Table 3 do.
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

struct GenParams
{
    double nestProb;
    unsigned maxDepth;
    unsigned maxTerms;
};

GenParams
paramsFor(const std::string &input)
{
    if (input == "cp-decl")
        return {0.55, 9, 2};
    return {0.35, 6, 4};        // integrate
}

void
genNumber(Rng &rng, std::string &out)
{
    unsigned digits = 1 + static_cast<unsigned>(rng.below(4));
    for (unsigned i = 0; i < digits; ++i) {
        char c = static_cast<char>('0' + rng.below(10));
        if (i == 0 && c == '0')
            c = '1';
        out.push_back(c);
    }
}

void genExpr(Rng &rng, const GenParams &p, unsigned depth,
             std::string &out);

void
genFactor(Rng &rng, const GenParams &p, unsigned depth,
          std::string &out)
{
    if (depth < p.maxDepth && rng.chance(p.nestProb)) {
        out.push_back('(');
        genExpr(rng, p, depth + 1, out);
        out.push_back(')');
    } else {
        genNumber(rng, out);
    }
}

void
genTerm(Rng &rng, const GenParams &p, unsigned depth, std::string &out)
{
    genFactor(rng, p, depth, out);
    if (rng.below(3) == 0) {
        out.push_back('*');
        genFactor(rng, p, depth, out);
    }
}

void
genExpr(Rng &rng, const GenParams &p, unsigned depth, std::string &out)
{
    genTerm(rng, p, depth, out);
    unsigned extra = static_cast<unsigned>(rng.below(p.maxTerms + 1));
    for (unsigned i = 0; i < extra; ++i) {
        out.push_back(rng.below(2) ? '+' : '-');
        genTerm(rng, p, depth, out);
    }
}

std::string
makeSource(const std::string &input, std::uint64_t scale)
{
    Rng rng(inputSeed("gcc", input));
    GenParams p = paramsFor(input);
    std::string src;
    for (std::uint64_t i = 0; i < scale; ++i) {
        genExpr(rng, p, 0, src);
        src.push_back(';');
    }
    src.push_back('\0');
    return src;
}

/** Host-side recursive-descent evaluator mirroring the SVA parser. */
struct Eval
{
    const std::string &src;
    size_t pos = 0;
    std::uint64_t nodes = 0;
    std::uint64_t acc = 0;      //!< lives in main's frame in SVA

    std::uint64_t
    factor()
    {
        if (src[pos] == '(') {
            ++pos;
            std::uint64_t v = expr();
            ++pos;              // ')'
            return v;
        }
        std::uint64_t v = 0;
        while (src[pos] >= '0' && src[pos] <= '9') {
            v = v * 10 + static_cast<std::uint64_t>(src[pos] - '0');
            ++pos;
        }
        ++nodes;                // a leaf node is allocated
        acc += v;               // written through a caller-frame ptr
        return v;
    }

    std::uint64_t
    term()
    {
        std::uint64_t v = factor();
        while (src[pos] == '*') {
            ++pos;
            v *= factor();
        }
        return v;
    }

    std::uint64_t
    expr()
    {
        std::uint64_t v = term();
        while (src[pos] == '+' || src[pos] == '-') {
            char op = src[pos];
            ++pos;
            std::uint64_t t = term();
            v = op == '+' ? v + t : v - t;
        }
        return v;
    }
};

} // anonymous namespace

std::string
expectGcc(const std::string &input, std::uint64_t scale)
{
    std::string src = makeSource(input, scale);
    Eval ev{src};
    std::uint64_t cs = 0;
    std::uint64_t count = 0;
    while (src[ev.pos] != '\0') {
        std::uint64_t v = ev.expr();
        ++ev.pos;               // ';'
        cs = cs * 13 + v;
        ++count;
    }
    return putintLine(cs) + putintLine(count) +
           putintLine(ev.nodes) + putintLine(ev.acc);
}

isa::Program
buildGcc(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    std::string src = makeSource(input, scale);

    ProgramBuilder pb("gcc." + input);
    std::vector<std::uint8_t> bytes(src.begin(), src.end());
    Addr input_addr = allocHeapBytes(pb, bytes);
    Addr pos_addr = pb.allocDataZero(8);        // parse cursor
    Addr nodes_addr = pb.allocDataZero(8);      // node counter
    Addr arena_addr = pb.allocHeap(1 << 20, 8); // node arena
    Addr bump_addr = pb.allocDataQuads({arena_addr});

    Label l_main = pb.newLabel();
    Label l_expr = pb.newLabel();
    Label l_term = pb.newLabel();
    Label l_factor = pb.newLabel();
    Label l_peek = pb.newLabel();
    Label l_adv = pb.newLabel();

    // Large gcc-style frame: 60 local slots + $ra + one saved reg.
    const FrameSpec big_frame{480, true, true, true, {RegS0}};

    // ---- main ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{32, true, false, false, {}});
    main_fb.prologue();

    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, 0);                    // expression count
    // The leaf accumulator lives in main's frame; deep parse levels
    // reach it through $s4 — far-from-TOS $gpr stack references,
    // exactly gcc's pattern in Figure 3.
    pb.stq(RegZero, 0, RegSP);
    pb.lda(RegS4, 0, RegSP);            // &acc

    Label l_loop = pb.here();
    pb.call(l_expr);
    pb.mulqi(RegS1, 13, RegS1);
    pb.addq(RegS1, RegV0, RegS1);
    pb.addqi(RegS2, 1, RegS2);
    pb.call(l_adv);                     // consume ';'
    pb.call(l_peek);
    pb.bne(RegV0, l_loop);              // more input?

    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.mov(RegS2, RegA0);
    pb.putint();
    pb.li(RegT0, nodes_addr);
    pb.ldq(RegA0, 0, RegT0);
    pb.putint();
    pb.ldq(RegA0, 0, RegS4);            // the caller-frame acc
    pb.putint();
    pb.halt();

    // ---- expr() -> v0 ----
    pb.bind(l_expr);
    FunctionBuilder expr_fb(pb, big_frame);
    expr_fb.prologue();
    pb.call(l_term);
    pb.mov(RegV0, RegS0);               // val
    pb.stq(RegS0, 0, RegSP);            // near-TOS local
    pb.stq(RegS0, -40, RegFP);          // $fp-relative local

    Label l_expr_loop = pb.here();
    Label l_expr_done = pb.newLabel();
    Label l_expr_minus = pb.newLabel();
    pb.call(l_peek);
    pb.cmpeqi(RegV0, '+', RegT0);
    pb.bne(RegT0, l_expr_minus);
    pb.cmpeqi(RegV0, '-', RegT0);
    pb.beq(RegT0, l_expr_done);
    // '-' path.
    pb.call(l_adv);
    pb.call(l_term);
    pb.subq(RegS0, RegV0, RegS0);
    pb.stq(RegS0, 0, RegSP);
    pb.br(l_expr_loop);
    // '+' path.
    pb.bind(l_expr_minus);
    pb.call(l_adv);
    pb.call(l_term);
    pb.addq(RegS0, RegV0, RegS0);
    pb.stq(RegS0, 0, RegSP);
    pb.br(l_expr_loop);

    pb.bind(l_expr_done);
    pb.ldq(RegV0, 0, RegSP);
    expr_fb.epilogueRet();

    // ---- term() -> v0 ----
    pb.bind(l_term);
    FunctionBuilder term_fb(pb, big_frame);
    term_fb.prologue();
    pb.call(l_factor);
    pb.mov(RegV0, RegS0);
    pb.stq(RegS0, 8, RegSP);
    pb.stq(RegS0, -48, RegFP);          // $fp-relative local

    Label l_term_loop = pb.here();
    Label l_term_done = pb.newLabel();
    pb.call(l_peek);
    pb.cmpeqi(RegV0, '*', RegT0);
    pb.beq(RegT0, l_term_done);
    pb.call(l_adv);
    pb.call(l_factor);
    pb.mulq(RegS0, RegV0, RegS0);
    pb.stq(RegS0, 8, RegSP);
    pb.br(l_term_loop);

    pb.bind(l_term_done);
    pb.ldq(RegV0, 8, RegSP);
    term_fb.epilogueRet();

    // ---- factor() -> v0 ----
    pb.bind(l_factor);
    FunctionBuilder fac_fb(pb, big_frame);
    fac_fb.prologue();

    Label l_number = pb.newLabel();
    Label l_fac_done = pb.newLabel();
    pb.call(l_peek);
    pb.cmpeqi(RegV0, '(', RegT0);
    pb.beq(RegT0, l_number);
    pb.call(l_adv);                     // consume '('
    pb.call(l_expr);
    pb.mov(RegV0, RegS0);
    pb.call(l_adv);                     // consume ')'
    pb.mov(RegS0, RegV0);
    pb.br(l_fac_done);

    pb.bind(l_number);
    pb.li(RegS0, 0);                    // value
    pb.li(RegT6, 0);                    // digit index
    Label l_dig = pb.here();
    Label l_dig_done = pb.newLabel();
    pb.call(l_peek);
    pb.subqi(RegV0, '0', RegT0);
    pb.cmpulti(RegT0, 10, RegT1);
    pb.beq(RegT1, l_dig_done);
    pb.mulqi(RegS0, 10, RegS0);
    pb.addq(RegS0, RegT0, RegS0);
    // Token-buffer write: digits land in frame slots 2..5.
    pb.andi(RegT6, 3, RegT2);
    pb.slli(RegT2, 3, RegT2);
    pb.addq(RegSP, RegT2, RegT2);
    pb.stq(RegT0, 16, RegT2);
    pb.addqi(RegT6, 1, RegT6);
    pb.call(l_adv);
    pb.br(l_dig);
    pb.bind(l_dig_done);

    // Allocate a leaf node in the heap arena and count it.
    pb.li(RegT0, bump_addr);
    pb.ldq(RegT1, 0, RegT0);
    pb.stq(RegS0, 0, RegT1);            // node->val
    pb.addqi(RegT1, 16, RegT1);
    pb.stq(RegT1, 0, RegT0);
    pb.li(RegT0, nodes_addr);
    pb.ldq(RegT1, 0, RegT0);
    pb.addqi(RegT1, 1, RegT1);
    pb.stq(RegT1, 0, RegT0);
    // acc += value through the caller-frame pointer: a $gpr stack
    // reference whose distance from the TOS equals the parse depth.
    pb.ldq(RegT2, 0, RegS4);
    pb.addq(RegT2, RegS0, RegT2);
    pb.stq(RegT2, 0, RegS4);
    pb.mov(RegS0, RegV0);

    pb.bind(l_fac_done);
    fac_fb.epilogueRet();

    // ---- peek() -> v0 = current character ----
    pb.bind(l_peek);
    FunctionBuilder peek_fb(pb, FrameSpec{16, false, false, false, {}});
    peek_fb.prologue();
    pb.li(RegT0, pos_addr);
    pb.ldq(RegT1, 0, RegT0);
    pb.stq(RegT1, 0, RegSP);            // spill cursor
    pb.li(RegT2, input_addr);
    pb.ldq(RegT3, 0, RegSP);            // reload
    pb.addq(RegT2, RegT3, RegT2);
    pb.ldbu(RegV0, 0, RegT2);
    peek_fb.epilogueRet();

    // ---- adv(): POS++ ----
    pb.bind(l_adv);
    FunctionBuilder adv_fb(pb, FrameSpec{16, false, false, false, {}});
    adv_fb.prologue();
    pb.li(RegT0, pos_addr);
    pb.ldq(RegT1, 0, RegT0);
    pb.addqi(RegT1, 1, RegT1);
    pb.stq(RegT1, 0, RegT0);
    adv_fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
