/**
 * @file
 * 255.vortex stand-in: object store with chained hash buckets.
 *
 * Stack personality: light — short insert/lookup helpers over a
 * heap-resident table, like the paper's object-database benchmark.
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

constexpr std::uint64_t Buckets = 1024;     // power of two
constexpr std::uint64_t NoIdx = 0;          // arena slot 0 is unused

std::uint64_t
keyFor(std::uint64_t i)
{
    return mix64(i) & 0xffff;
}

} // anonymous namespace

std::string
expectVortex(const std::string &input, std::uint64_t scale)
{
    (void)input;
    std::vector<std::uint64_t> head(Buckets, NoIdx);
    // Record arena: 3 quads per record {key, val, next}; slot 0
    // reserved as the null index.
    std::vector<std::uint64_t> arena(3, 0);
    std::uint64_t cs = 0;
    std::uint64_t found = 0;

    for (std::uint64_t i = 0; i < scale; ++i) {
        std::uint64_t key = keyFor(i);
        std::uint64_t b = key & (Buckets - 1);
        if (i % 3 != 2) {
            // Insert.
            std::uint64_t idx = arena.size() / 3;
            arena.push_back(key);
            arena.push_back(i);
            arena.push_back(head[b]);
            head[b] = idx;
        } else {
            // Lookup an earlier key.
            std::uint64_t probe = keyFor(i / 2);
            std::uint64_t pb_ = probe & (Buckets - 1);
            std::uint64_t idx = head[pb_];
            while (idx != NoIdx) {
                if (arena[idx * 3] == probe) {
                    ++found;
                    cs += arena[idx * 3 + 1];
                    break;
                }
                idx = arena[idx * 3 + 2];
            }
            cs = cs * 5 + probe;
        }
    }
    return putintLine(cs) + putintLine(found);
}

isa::Program
buildVortex(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    (void)input;

    ProgramBuilder pb("vortex.ref");
    std::vector<std::uint64_t> head_init(Buckets, NoIdx);
    Addr head_addr = pb.allocHeapQuads(head_init);
    // Arena: reserve space for every possible insert.
    Addr arena_addr = pb.allocHeap((scale + 2) * 24 + 24, 8);
    Addr count_addr = pb.allocDataQuads({1});   // next free record idx

    Label l_main = pb.newLabel();
    Label l_insert = pb.newLabel();
    Label l_lookup = pb.newLabel();
    Label l_key = pb.newLabel();

    // ---- main ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();

    pb.li(RegS0, 0);                    // i
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, 0);                    // found
    pb.li(RegS3, scale);
    pb.li(RegS4, 0);                    // phase (i mod 3)

    Label l_loop = pb.here();
    // i % 3 via repeated subtraction on a copy is expensive; use
    // i - (i / 3) * 3 with shifts? Division is not in the ISA, so
    // track the phase in a register instead.
    // Phase register: s4 cycles 0,1,2.
    pb.mov(RegS0, RegA0);
    pb.call(l_key);                     // v0 = keyFor(i)

    Label l_do_lookup = pb.newLabel();
    Label l_after = pb.newLabel();
    pb.cmpeqi(RegS4, 2, RegT0);
    pb.bne(RegT0, l_do_lookup);

    pb.mov(RegV0, RegA0);               // key
    pb.mov(RegS0, RegA1);               // val = i
    pb.call(l_insert);
    pb.br(l_after);

    pb.bind(l_do_lookup);
    pb.srli(RegS0, 1, RegA0);
    pb.call(l_key);                     // v0 = keyFor(i/2)
    pb.mov(RegV0, RegA0);
    pb.mov(RegV0, RegS5);               // keep probe key
    pb.call(l_lookup);                  // v0 = val or -1, t7 = hit
    Label l_miss = pb.newLabel();
    pb.blt(RegV0, l_miss);
    pb.addqi(RegS2, 1, RegS2);
    pb.addq(RegS1, RegV0, RegS1);
    pb.bind(l_miss);
    pb.mulqi(RegS1, 5, RegS1);
    pb.addq(RegS1, RegS5, RegS1);

    pb.bind(l_after);
    // phase = (phase + 1) cycling 0,1,2
    pb.addqi(RegS4, 1, RegS4);
    pb.cmpeqi(RegS4, 3, RegT0);
    Label l_nowrap = pb.newLabel();
    pb.beq(RegT0, l_nowrap);
    pb.li(RegS4, 0);
    pb.bind(l_nowrap);

    pb.addqi(RegS0, 1, RegS0);
    pb.cmplt(RegS0, RegS3, RegT0);
    pb.bne(RegT0, l_loop);

    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.mov(RegS2, RegA0);
    pb.putint();
    pb.halt();

    // ---- keyFor(a0 = i) -> v0 = mix64(i) & 0xffff ----
    pb.bind(l_key);
    FunctionBuilder key_fb(pb, FrameSpec{16, false, false, false, {}});
    key_fb.prologue();
    pb.stq(RegA0, 0, RegSP);
    pb.li(RegT0, HashMul);
    pb.ldq(RegT1, 0, RegSP);
    pb.mulq(RegT1, RegT0, RegT1);
    pb.srli(RegT1, 29, RegT2);
    pb.xor_(RegT1, RegT2, RegT1);
    pb.li(RegT3, 0xffff);
    pb.and_(RegT1, RegT3, RegV0);
    key_fb.epilogueRet();

    // ---- insert(a0 = key, a1 = val) ----
    pb.bind(l_insert);
    FunctionBuilder ins_fb(pb, FrameSpec{16, false, false, false, {}});
    ins_fb.prologue();
    pb.stq(RegA0, 0, RegSP);            // spill key

    pb.li(RegT0, count_addr);
    pb.ldq(RegT1, 0, RegT0);            // idx
    pb.addqi(RegT1, 1, RegT2);
    pb.stq(RegT2, 0, RegT0);

    // rec = arena + idx * 24
    pb.mulqi(RegT1, 24, RegT2);
    pb.li(RegT3, arena_addr);
    pb.addq(RegT3, RegT2, RegT2);
    pb.stq(RegA0, 0, RegT2);            // key
    pb.stq(RegA1, 8, RegT2);            // val

    // bucket
    pb.li(RegT4, Buckets - 1);
    pb.and_(RegA0, RegT4, RegT4);
    pb.slli(RegT4, 3, RegT4);
    pb.li(RegT5, head_addr);
    pb.addq(RegT5, RegT4, RegT4);       // &head[b]
    pb.ldq(RegT6, 0, RegT4);
    pb.stq(RegT6, 16, RegT2);           // rec->next = head[b]
    pb.stq(RegT1, 0, RegT4);            // head[b] = idx
    ins_fb.epilogueRet();

    // ---- lookup(a0 = key) -> v0 = val or -1 ----
    pb.bind(l_lookup);
    FunctionBuilder look_fb(pb, FrameSpec{16, false, false, false, {}});
    look_fb.prologue();
    pb.stq(RegA0, 0, RegSP);

    pb.li(RegT4, Buckets - 1);
    pb.and_(RegA0, RegT4, RegT4);
    pb.slli(RegT4, 3, RegT4);
    pb.li(RegT5, head_addr);
    pb.addq(RegT5, RegT4, RegT4);
    pb.ldq(RegT1, 0, RegT4);            // idx
    pb.li(RegT3, arena_addr);

    Label l_walk = pb.here();
    Label l_notfound = pb.newLabel();
    Label l_found2 = pb.newLabel();
    pb.beq(RegT1, l_notfound);
    pb.mulqi(RegT1, 24, RegT2);
    pb.addq(RegT3, RegT2, RegT2);
    pb.ldq(RegT6, 0, RegT2);            // rec->key
    pb.ldq(RegT7, 0, RegSP);            // probe key
    pb.cmpeq(RegT6, RegT7, RegT0);
    pb.bne(RegT0, l_found2);
    pb.ldq(RegT1, 16, RegT2);           // next
    pb.br(l_walk);

    pb.bind(l_found2);
    pb.ldq(RegV0, 8, RegT2);            // val
    Label l_ret = pb.newLabel();
    pb.br(l_ret);
    pb.bind(l_notfound);
    pb.li(RegV0, static_cast<std::uint64_t>(-1));
    pb.bind(l_ret);
    look_fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
