/**
 * @file
 * 252.eon stand-in: fixed-point ray stepping over stack-allocated
 * ray structures passed by pointer, shading against a scene that
 * lives in a large caller frame.
 *
 * Stack personality: eon is the paper's outlier in two ways. First,
 * over 45% of its stack accesses go through general-purpose
 * registers: address-taken ray structs are passed into helpers, and
 * the C++ scene objects sit in a big frame several KB above the TOS,
 * reached through pointers. Second, the helper's $gpr stores
 * followed by the caller's $sp-relative reloads of the same words
 * reproduce the collision pattern behind the paper's eon squash
 * anomaly (Section 5.3.1). The wide scene region is also why the
 * small stack caches of Table 3 thrash on eon while the SVF, whose
 * window hugs the TOS and routes far references to the DL1, moves
 * almost nothing.
 */

#include "workloads/registry.hh"

#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

struct Ray
{
    std::uint64_t px, py, pz;
    std::uint64_t dx, dy, dz;
};

unsigned
stepsFor(const std::string &input)
{
    return input == "cook" ? 3 : 5;
}

/** Scene size in quadwords; the kajiya scene graph is larger. */
std::uint64_t
sceneLenFor(const std::string &input)
{
    return input == "cook" ? 640 : 832;
}

constexpr std::uint64_t AccumLen = 128;
constexpr std::uint64_t TexSize = 256;

std::uint64_t
sceneEntry(std::uint64_t i)
{
    return mix64(i ^ 0x5ce) & 0xff;
}

std::uint64_t
texEntry(std::uint64_t i)
{
    return mix64(i ^ 0x7e0) & 0x3f;
}

/** Scene index reduction: mask to 10 bits, fold once into range
 *  (cheap hardware-friendly reduction; mirrored by the SVA code). */
std::uint64_t
sceneIndex(std::uint64_t px, std::uint64_t scene_len)
{
    std::uint64_t idx = (px >> 5) & 1023;
    if (idx >= scene_len)
        idx -= scene_len;
    return idx;
}

/** One ray step against the scene; mirrors the SVA kernel. */
void
stepRay(Ray &r, unsigned steps, std::vector<std::uint64_t> &scene,
        std::vector<std::uint64_t> &accum, std::uint64_t scene_len)
{
    for (unsigned k = 0; k < steps; ++k) {
        std::uint64_t t = r.px + r.dx;
        r.px = t + texEntry((t >> 4) & (TexSize - 1));
        r.py += r.dy + scene[sceneIndex(r.px, scene_len)];
        r.pz += r.dz;
        accum[(r.px + k) & (AccumLen - 1)] += r.pz;
        r.dx = r.dx * 3 + 1;
        r.dy = r.dy * 5 + 2;
        r.dz = r.dz * 7 + 3;
    }
}

} // anonymous namespace

std::string
expectEon(const std::string &input, std::uint64_t scale)
{
    unsigned steps = stepsFor(input);
    std::uint64_t scene_len = sceneLenFor(input);

    std::vector<std::uint64_t> scene(scene_len);
    for (std::uint64_t i = 0; i < scene_len; ++i)
        scene[i] = sceneEntry(i);
    std::vector<std::uint64_t> accum(AccumLen, 0);

    std::uint64_t cs = 0;
    for (std::uint64_t i = 0; i < scale; ++i) {
        Ray r;
        r.px = i;
        r.py = i * 17 + 1;
        r.pz = i ^ 0x5a;
        r.dx = (i & 15) + 1;
        r.dy = (i & 7) + 2;
        r.dz = (i & 3) + 3;
        stepRay(r, steps, scene, accum, scene_len);
        cs = cs * 131 + (r.px ^ r.py ^ r.pz);
    }
    for (std::uint64_t i = 0; i < AccumLen; ++i)
        cs = cs * 3 + accum[i];
    return putintLine(cs);
}

isa::Program
buildEon(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    unsigned steps = stepsFor(input);
    std::uint64_t scene_len = sceneLenFor(input);

    ProgramBuilder pb("eon." + input);
    std::vector<std::uint64_t> tex_init;
    for (std::uint64_t i = 0; i < TexSize; ++i)
        tex_init.push_back(texEntry(i));
    Addr tex_addr = pb.allocHeapQuads(tex_init);

    Label l_main = pb.newLabel();
    Label l_render = pb.newLabel();
    Label l_step = pb.newLabel();

    // Scene frame layout (quadword slots from the setup frame's
    // $sp): [0, AccumLen) accumulators, then the scene data.
    std::uint32_t scene_frame_slots =
        static_cast<std::uint32_t>(AccumLen + scene_len);

    // ---- main: build the scene in a large frame, then render ----
    pb.bind(l_main);
    FunctionBuilder main_fb(
        pb, FrameSpec{scene_frame_slots * 8, true, false, false, {}});
    main_fb.prologue();

    // Zero the accumulators and fill the scene ($sp stores, near
    // this frame's own TOS at setup time).
    pb.li(RegT0, 0);
    pb.li(RegT1, scene_frame_slots);
    Label l_fill = pb.here();
    pb.slli(RegT0, 3, RegT2);
    pb.addq(RegSP, RegT2, RegT2);
    Label l_zero = pb.newLabel();
    Label l_filled = pb.newLabel();
    pb.cmplti(RegT0, AccumLen, RegT3);
    pb.bne(RegT3, l_zero);
    // Scene slot: sceneEntry(i - AccumLen).
    pb.lda(RegT3, -static_cast<std::int32_t>(AccumLen), RegT0);
    pb.li(RegT4, 0x5ce);
    pb.xor_(RegT3, RegT4, RegT3);
    pb.li(RegT4, HashMul);
    pb.mulq(RegT3, RegT4, RegT3);
    pb.srli(RegT3, 29, RegT4);
    pb.xor_(RegT3, RegT4, RegT3);
    pb.andi(RegT3, 0xff, RegT3);
    pb.stq(RegT3, 0, RegT2);
    pb.br(l_filled);
    pb.bind(l_zero);
    pb.stq(RegZero, 0, RegT2);
    pb.bind(l_filled);
    pb.addqi(RegT0, 1, RegT0);
    pb.cmplt(RegT0, RegT1, RegT2);
    pb.bne(RegT2, l_fill);

    // Scene pointers live in callee-saved registers for the whole
    // render: $s4 = &accum[0], $s5 = &scene[0].
    pb.lda(RegS4, 0, RegSP);
    pb.lda(RegS5, AccumLen * 8, RegSP);
    pb.call(l_render);
    pb.mov(RegV0, RegA0);
    pb.putint();
    pb.halt();

    // ---- render(): the per-ray loop ----
    // Frame slots 0..5 hold the ray (px py pz dx dy dz).
    pb.bind(l_render);
    FunctionBuilder render_fb(pb, FrameSpec{48, true, false, false,
                                            {RegS0, RegS1, RegS2}});
    render_fb.prologue();

    pb.li(RegS0, 0);                    // i
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, scale);

    Label l_loop = pb.here();
    pb.stq(RegS0, 0, RegSP);            // px = i
    pb.mulqi(RegS0, 17, RegT0);
    pb.addqi(RegT0, 1, RegT0);
    pb.stq(RegT0, 8, RegSP);            // py
    pb.xori(RegS0, 0x5a, RegT0);
    pb.stq(RegT0, 16, RegSP);           // pz
    pb.andi(RegS0, 15, RegT0);
    pb.addqi(RegT0, 1, RegT0);
    pb.stq(RegT0, 24, RegSP);           // dx
    pb.andi(RegS0, 7, RegT0);
    pb.addqi(RegT0, 2, RegT0);
    pb.stq(RegT0, 32, RegSP);           // dy
    pb.andi(RegS0, 3, RegT0);
    pb.addqi(RegT0, 3, RegT0);
    pb.stq(RegT0, 40, RegSP);           // dz

    pb.lda(RegA0, 0, RegSP);            // &ray (address-taken local)
    pb.call(l_step);

    // $sp-relative reloads of words the callee just stored through
    // a $gpr: the Section 3.2 collision pattern.
    pb.ldq(RegT0, 0, RegSP);
    pb.ldq(RegT1, 8, RegSP);
    pb.ldq(RegT2, 16, RegSP);
    pb.xor_(RegT0, RegT1, RegT0);
    pb.xor_(RegT0, RegT2, RegT0);
    pb.mulqi(RegS1, 131, RegS1);
    pb.addq(RegS1, RegT0, RegS1);

    pb.addqi(RegS0, 1, RegS0);
    pb.cmplt(RegS0, RegS2, RegT0);
    pb.bne(RegT0, l_loop);

    // Fold the accumulators into the checksum.
    pb.li(RegT5, 0);
    pb.li(RegT6, AccumLen);
    Label l_acc = pb.here();
    pb.slli(RegT5, 3, RegT0);
    pb.addq(RegS4, RegT0, RegT0);
    pb.ldq(RegT1, 0, RegT0);            // accum[i] ($gpr, far)
    pb.mulqi(RegS1, 3, RegS1);
    pb.addq(RegS1, RegT1, RegS1);
    pb.addqi(RegT5, 1, RegT5);
    pb.cmplt(RegT5, RegT6, RegT0);
    pb.bne(RegT0, l_acc);

    pb.mov(RegS1, RegV0);
    render_fb.epilogueRet();

    // ---- step(a0 = ray*) ----
    // Leaf with a small scratch frame; reads the scene and writes
    // the accumulators through $s4/$s5 — far-from-TOS $gpr stack
    // references into the setup frame.
    pb.bind(l_step);
    FunctionBuilder step_fb(pb, FrameSpec{16, false, false, false,
                                          {}});
    step_fb.prologue();
    pb.stq(RegA0, 0, RegSP);            // spill the pointer

    for (unsigned k = 0; k < steps; ++k) {
        pb.ldq(RegT0, 0, RegA0);        // px  ($gpr stack loads)
        pb.ldq(RegT3, 24, RegA0);       // dx
        pb.addq(RegT0, RegT3, RegT0);
        // Texture lookup in the heap.
        pb.srli(RegT0, 4, RegT7);
        pb.andi(RegT7, TexSize - 1, RegT7);
        pb.slli(RegT7, 3, RegT7);
        pb.li(RegT8, tex_addr);
        pb.addq(RegT8, RegT7, RegT7);
        pb.ldq(RegT7, 0, RegT7);
        pb.addq(RegT0, RegT7, RegT0);
        pb.stq(RegT0, 0, RegA0);        // px ($gpr stack store)
        pb.mulqi(RegT3, 3, RegT3);
        pb.addqi(RegT3, 1, RegT3);
        pb.stq(RegT3, 24, RegA0);

        pb.ldq(RegT1, 8, RegA0);        // py
        pb.ldq(RegT4, 32, RegA0);       // dy
        pb.addq(RegT1, RegT4, RegT1);
        // Scene lookup: a far-from-TOS $gpr stack load with the
        // mask-and-fold index reduction of sceneIndex().
        pb.srli(RegT0, 5, RegT9);
        pb.li(RegT10, 1023);
        pb.and_(RegT9, RegT10, RegT9);
        pb.li(RegT10, scene_len);
        {
            Label l_inrange = pb.newLabel();
            pb.cmplt(RegT9, RegT10, RegT11);
            pb.bne(RegT11, l_inrange);
            pb.subq(RegT9, RegT10, RegT9);
            pb.bind(l_inrange);
        }
        pb.slli(RegT9, 3, RegT9);
        pb.addq(RegS5, RegT9, RegT9);
        pb.ldq(RegT9, 0, RegT9);        // scene[idx]
        pb.addq(RegT1, RegT9, RegT1);
        pb.stq(RegT1, 8, RegA0);
        pb.mulqi(RegT4, 5, RegT4);
        pb.addqi(RegT4, 2, RegT4);
        pb.stq(RegT4, 32, RegA0);

        pb.ldq(RegT2, 16, RegA0);       // pz
        pb.ldq(RegT5, 40, RegA0);       // dz
        pb.addq(RegT2, RegT5, RegT2);
        // accum[(px + k) & 127] += pz: far $gpr stack RMW.
        pb.addqi(RegT0, static_cast<std::uint8_t>(k), RegT9);
        pb.andi(RegT9, AccumLen - 1, RegT9);
        pb.slli(RegT9, 3, RegT9);
        pb.addq(RegS4, RegT9, RegT9);
        pb.ldq(RegT10, 0, RegT9);
        pb.addq(RegT10, RegT2, RegT10);
        pb.stq(RegT10, 0, RegT9);
        if (k + 1 < steps) {
            pb.stq(RegT2, 16, RegA0);
            pb.mulqi(RegT5, 7, RegT5);
            pb.addqi(RegT5, 3, RegT5);
            pb.stq(RegT5, 40, RegA0);
            pb.ldq(RegA0, 0, RegSP);    // reload pointer ($sp load)
        } else {
            // Final iteration: the dead direction updates are sunk
            // away and the last result store sits right before the
            // return — the caller's $sp reload of the same word is
            // only a few instructions younger, the exact Section
            // 3.2 collision timing.
            pb.stq(RegT2, 16, RegA0);
        }
    }

    step_fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
