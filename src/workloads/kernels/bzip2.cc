/**
 * @file
 * 256.bzip2 stand-in: move-to-front transform + zero-run counting
 * over a byte buffer.
 *
 * Stack personality (matching the paper's bzip2 data): very shallow
 * call tree of two leaf helpers invoked once per input byte, tiny
 * frames, and argument spill/reload pairs that sit within a few
 * bytes of the TOS (the paper reports an average reference distance
 * of 2.5 bytes from TOS for bzip2).
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

/** Generate the input buffer ("graphic" = run-heavy, "program" =
 *  text-like small alphabet). */
std::vector<std::uint8_t>
makeInput(const std::string &input, std::uint64_t scale)
{
    Rng rng(inputSeed("bzip2", input));
    std::vector<std::uint8_t> buf(scale);
    if (input == "graphic") {
        std::uint8_t cur = 0;
        for (auto &b : buf) {
            if (rng.below(8) == 0)
                cur = static_cast<std::uint8_t>(rng.below(256));
            b = cur;
        }
    } else {
        for (auto &b : buf) {
            if (rng.below(10) < 9)
                b = static_cast<std::uint8_t>(rng.below(16));
            else
                b = static_cast<std::uint8_t>(rng.below(256));
        }
    }
    return buf;
}

constexpr std::uint64_t BlockStride = 256;
constexpr std::uint64_t BlockLen = 48;

/** Lomuto quicksort, last-element pivot: degrades to deep linear
 *  recursion on run-heavy data, exactly like bzip2's qsort3 on the
 *  "graphic" input (Figure 2 shows bzip2's deep sort excursions). */
void
blockSort(std::vector<std::uint64_t> &w, std::int64_t lo,
          std::int64_t hi)
{
    if (lo >= hi)
        return;
    std::uint64_t pivot = w[static_cast<size_t>(hi)];
    std::int64_t i = lo - 1;
    for (std::int64_t j = lo; j < hi; ++j) {
        if (w[static_cast<size_t>(j)] <= pivot) {
            ++i;
            std::swap(w[static_cast<size_t>(i)],
                      w[static_cast<size_t>(j)]);
        }
    }
    std::swap(w[static_cast<size_t>(i + 1)],
              w[static_cast<size_t>(hi)]);
    blockSort(w, lo, i);
    blockSort(w, i + 2, hi);
}

} // anonymous namespace

std::string
expectBzip2(const std::string &input, std::uint64_t scale)
{
    std::vector<std::uint8_t> buf = makeInput(input, scale);

    // Phase 1: block sorting (suffix-sort stand-in).
    std::uint64_t sort_cs = 0;
    std::vector<std::uint64_t> work(BlockLen);
    for (std::uint64_t base = 0; base + BlockLen <= buf.size();
         base += BlockStride) {
        for (std::uint64_t i = 0; i < BlockLen; ++i)
            work[i] = buf[base + i];
        blockSort(work, 0, static_cast<std::int64_t>(BlockLen) - 1);
        sort_cs = sort_cs * 3 + work[0] + work[BlockLen / 2] +
                  work[BlockLen - 1];
    }

    std::uint8_t table[256];
    for (unsigned i = 0; i < 256; ++i)
        table[i] = static_cast<std::uint8_t>(i);

    std::uint64_t checksum = 0;
    std::uint64_t zero_runs = 0;
    for (std::uint8_t b : buf) {
        unsigned j = 0;
        while (table[j] != b)
            ++j;
        for (unsigned k = j; k > 0; --k)
            table[k] = table[k - 1];
        table[0] = b;
        checksum = checksum * 31 + j;
        if (j == 0)
            ++zero_runs;
    }
    return putintLine(sort_cs) + putintLine(checksum) +
           putintLine(zero_runs);
}

isa::Program
buildBzip2(const std::string &input, std::uint64_t scale)
{
    using namespace isa;

    std::vector<std::uint8_t> buf = makeInput(input, scale);

    ProgramBuilder pb("bzip2." + input);
    Addr table_addr = pb.allocDataZero(256, 8);
    Addr buf_addr = allocHeapBytes(pb, buf);
    Addr work_addr = pb.allocHeap(BlockLen * 8, 8);

    Label l_main = pb.newLabel();
    Label l_qsort = pb.newLabel();
    Label l_mtf = pb.newLabel();
    Label l_crc = pb.newLabel();

    // ---- main ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();

    // Initialize the MTF table to the identity permutation.
    pb.li(RegS5, table_addr);
    pb.li(RegT0, 0);
    pb.li(RegT6, 256);
    Label l_init = pb.here();
    pb.addq(RegS5, RegT0, RegT1);
    pb.stb(RegT0, 0, RegT1);
    pb.addqi(RegT0, 1, RegT0);
    pb.cmplt(RegT0, RegT6, RegT2);
    pb.bne(RegT2, l_init);

    // ---- phase 1: block sorting ----
    pb.li(RegS3, buf_addr);
    pb.li(RegS4, work_addr);            // shared with qsort
    pb.li(RegS0, 0);                    // block base
    pb.li(RegS1, 0);                    // sort checksum
    {
        std::uint64_t nblocks =
            buf.size() >= BlockLen
                ? (buf.size() - BlockLen) / BlockStride + 1 : 0;
        pb.li(RegS2, nblocks);
    }
    Label l_blocks_done = pb.newLabel();
    pb.beq(RegS2, l_blocks_done);
    Label l_block = pb.here();
    // Copy the block into the work array as quadwords.
    pb.addq(RegS3, RegS0, RegT0);       // &buf[base]
    pb.li(RegT1, 0);
    pb.li(RegT4, BlockLen);
    Label l_copy = pb.here();
    pb.addq(RegT0, RegT1, RegT2);
    pb.ldbu(RegT3, 0, RegT2);
    pb.slli(RegT1, 3, RegT2);
    pb.addq(RegS4, RegT2, RegT2);
    pb.stq(RegT3, 0, RegT2);
    pb.addqi(RegT1, 1, RegT1);
    pb.cmplt(RegT1, RegT4, RegT2);
    pb.bne(RegT2, l_copy);
    // Sort it.
    pb.li(RegA0, 0);
    pb.li(RegA1, BlockLen - 1);
    pb.call(l_qsort);
    // sort_cs = sort_cs*3 + work[0] + work[len/2] + work[len-1]
    pb.mulqi(RegS1, 3, RegS1);
    pb.ldq(RegT0, 0, RegS4);
    pb.addq(RegS1, RegT0, RegS1);
    pb.ldq(RegT0, (BlockLen / 2) * 8, RegS4);
    pb.addq(RegS1, RegT0, RegS1);
    pb.ldq(RegT0, (BlockLen - 1) * 8, RegS4);
    pb.addq(RegS1, RegT0, RegS1);
    pb.li(RegT0, BlockStride);
    pb.addq(RegS0, RegT0, RegS0);
    pb.subqi(RegS2, 1, RegS2);
    pb.bne(RegS2, l_block);
    pb.bind(l_blocks_done);
    pb.mov(RegS1, RegA0);
    pb.putint();

    // ---- phase 2: move-to-front ----
    pb.li(RegS3, buf_addr);             // buffer base
    pb.li(RegS4, buf.size());           // byte count
    pb.li(RegS0, 0);                    // i
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, 0);                    // zero-run count

    Label l_loop = pb.here();
    pb.addq(RegS3, RegS0, RegT0);
    pb.ldbu(RegA0, 0, RegT0);           // a0 = buf[i]
    pb.call(l_mtf);                     // v0 = MTF index

    pb.mov(RegS1, RegA0);
    pb.mov(RegV0, RegA1);
    pb.mov(RegV0, RegS6);               // keep index across the call
    pb.call(l_crc);                     // v0 = checksum*31 + index
    pb.mov(RegV0, RegS1);

    Label l_nz = pb.newLabel();
    pb.bne(RegS6, l_nz);
    pb.addqi(RegS2, 1, RegS2);
    pb.bind(l_nz);

    pb.addqi(RegS0, 1, RegS0);
    pb.cmplt(RegS0, RegS4, RegT0);
    pb.bne(RegT0, l_loop);

    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.mov(RegS2, RegA0);
    pb.putint();
    pb.halt();

    // ---- qsort(a0 = lo, a1 = hi); work base in $s4 ----
    // Frame slots: 0 lo, 1 hi, 2 i, 3 j (64-byte frames whose
    // recursion depth degrades linearly on run-heavy blocks).
    pb.bind(l_qsort);
    FunctionBuilder qs_fb(pb, FrameSpec{40, true, false, false, {}});
    qs_fb.prologue();
    Label l_qs_ret = pb.newLabel();
    pb.cmplt(RegA0, RegA1, RegT0);      // lo < hi?
    pb.beq(RegT0, l_qs_ret);
    pb.stq(RegA0, 0, RegSP);
    pb.stq(RegA1, 8, RegSP);

    // pivot = work[hi]
    pb.slli(RegA1, 3, RegT0);
    pb.addq(RegS4, RegT0, RegT0);
    pb.ldq(RegT7, 0, RegT0);            // pivot
    pb.subqi(RegA0, 1, RegT5);          // i = lo - 1
    pb.mov(RegA0, RegT6);               // j = lo
    Label l_part = pb.here();
    Label l_part_done = pb.newLabel();
    pb.ldq(RegT0, 8, RegSP);            // hi
    pb.cmplt(RegT6, RegT0, RegT1);      // j < hi?
    pb.beq(RegT1, l_part_done);
    pb.slli(RegT6, 3, RegT0);
    pb.addq(RegS4, RegT0, RegT0);
    pb.ldq(RegT1, 0, RegT0);            // work[j]
    Label l_noswap = pb.newLabel();
    pb.cmpule(RegT1, RegT7, RegT2);     // work[j] <= pivot?
    pb.beq(RegT2, l_noswap);
    pb.addqi(RegT5, 1, RegT5);          // ++i
    pb.slli(RegT5, 3, RegT2);
    pb.addq(RegS4, RegT2, RegT2);
    pb.ldq(RegT3, 0, RegT2);            // work[i]
    pb.stq(RegT1, 0, RegT2);            // work[i] = work[j]
    pb.stq(RegT3, 0, RegT0);            // work[j] = old work[i]
    pb.bind(l_noswap);
    pb.addqi(RegT6, 1, RegT6);
    pb.br(l_part);
    pb.bind(l_part_done);

    // swap work[i+1], work[hi]
    pb.addqi(RegT5, 1, RegT5);          // q = i + 1
    pb.slli(RegT5, 3, RegT0);
    pb.addq(RegS4, RegT0, RegT0);
    pb.ldq(RegT1, 0, RegT0);
    pb.ldq(RegT2, 8, RegSP);            // hi
    pb.slli(RegT2, 3, RegT2);
    pb.addq(RegS4, RegT2, RegT2);
    pb.ldq(RegT3, 0, RegT2);
    pb.stq(RegT1, 0, RegT2);
    pb.stq(RegT3, 0, RegT0);
    pb.stq(RegT5, 16, RegSP);           // save q

    // qsort(lo, q - 1)
    pb.ldq(RegA0, 0, RegSP);
    pb.subqi(RegT5, 1, RegA1);
    pb.call(l_qsort);
    // qsort(q + 1, hi)
    pb.ldq(RegT5, 16, RegSP);
    pb.addqi(RegT5, 1, RegA0);
    pb.ldq(RegA1, 8, RegSP);
    pb.call(l_qsort);

    pb.bind(l_qs_ret);
    qs_fb.epilogueRet();

    // ---- mtf_step(a0 = byte) -> v0 = index ----
    pb.bind(l_mtf);
    FunctionBuilder mtf_fb(pb, FrameSpec{16, true, false, false, {}});
    mtf_fb.prologue();
    pb.stq(RegA0, 0, RegSP);            // spill the byte

    pb.li(RegT0, table_addr);
    pb.li(RegT1, 0);                    // j
    Label l_find = pb.here();
    pb.stq(RegT1, 8, RegSP);            // spill j (compiler-style)
    pb.addq(RegT0, RegT1, RegT2);
    pb.ldbu(RegT3, 0, RegT2);
    Label l_found = pb.newLabel();
    pb.cmpeq(RegT3, RegA0, RegT4);
    pb.bne(RegT4, l_found);
    pb.ldq(RegT1, 8, RegSP);            // reload j
    pb.addqi(RegT1, 1, RegT1);
    pb.br(l_find);

    pb.bind(l_found);
    pb.stq(RegT1, 8, RegSP);            // save j in a local
    Label l_done = pb.newLabel();
    pb.beq(RegT1, l_done);

    pb.mov(RegT1, RegT5);               // k = j
    Label l_shift = pb.here();
    pb.addq(RegT0, RegT5, RegT2);
    pb.ldbu(RegT3, -1, RegT2);
    pb.stb(RegT3, 0, RegT2);
    pb.subqi(RegT5, 1, RegT5);
    pb.bne(RegT5, l_shift);

    pb.ldq(RegT4, 0, RegSP);            // reload the byte
    pb.stb(RegT4, 0, RegT0);            // table[0] = byte

    pb.bind(l_done);
    pb.ldq(RegV0, 8, RegSP);            // v0 = j
    mtf_fb.epilogueRet();

    // ---- crc_update(a0 = checksum, a1 = index) -> v0 ----
    pb.bind(l_crc);
    FunctionBuilder crc_fb(pb, FrameSpec{16, true, false, false, {}});
    crc_fb.prologue();
    pb.stq(RegA0, 0, RegSP);
    pb.stq(RegA1, 8, RegSP);
    pb.ldq(RegT0, 0, RegSP);
    pb.mulqi(RegT0, 31, RegT0);
    pb.ldq(RegT1, 8, RegSP);
    pb.addq(RegT0, RegT1, RegV0);
    crc_fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
