/**
 * @file
 * 254.gap stand-in: multi-precision (8x64-bit) integer arithmetic on
 * stack-resident operand buffers.
 *
 * Stack personality: each call materializes two 8-quadword bignums
 * into its frame with unrolled $sp-relative stores, then streams
 * them back with $sp-relative loads for a carry-propagating add —
 * a dense first-touch-store-then-load pattern that rewards the
 * SVF's no-fill-on-allocate semantics.
 */

#include "workloads/registry.hh"

#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

constexpr unsigned Limbs = 8;

std::uint64_t
limbConst(unsigned j)
{
    return mix64(j ^ 0xabcd) & 0xff;
}

std::uint64_t
bigStep(std::uint64_t seed)
{
    std::uint64_t a[Limbs];
    std::uint64_t b[Limbs];
    std::uint64_t t = seed;
    for (unsigned j = 0; j < Limbs; ++j) {
        t = t * 197 + limbConst(j);
        a[j] = t;
    }
    for (unsigned j = 0; j < Limbs; ++j) {
        t = t * 89 + limbConst(j + 8);
        b[j] = t;
    }
    std::uint64_t carry = 0;
    std::uint64_t acc = 0;
    for (unsigned j = 0; j < Limbs; ++j) {
        std::uint64_t s1 = a[j] + b[j];
        std::uint64_t c1 = s1 < a[j];
        std::uint64_t s = s1 + carry;
        std::uint64_t c2 = s < s1;
        carry = c1 | c2;
        acc ^= s;
    }
    return acc + carry;
}

} // anonymous namespace

std::string
expectGap(const std::string &input, std::uint64_t scale)
{
    (void)input;
    std::uint64_t cs = 0;
    for (std::uint64_t i = 0; i < scale; ++i)
        cs = cs * 7 + bigStep(i * 2654435761ULL);
    return putintLine(cs);
}

isa::Program
buildGap(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    (void)input;

    ProgramBuilder pb("gap.ref");
    std::vector<std::uint64_t> lc_init;
    for (unsigned j = 0; j < 16; ++j)
        lc_init.push_back(limbConst(j));
    Addr lc_addr = pb.allocDataQuads(lc_init);

    Label l_main = pb.newLabel();
    Label l_big = pb.newLabel();

    // ---- main ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();

    pb.li(RegS0, 0);                    // i
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, scale);
    pb.li(RegS3, 2654435761ULL);

    Label l_loop = pb.here();
    pb.mulq(RegS0, RegS3, RegA0);
    pb.call(l_big);
    pb.mulqi(RegS1, 7, RegS1);
    pb.addq(RegS1, RegV0, RegS1);

    pb.addqi(RegS0, 1, RegS0);
    pb.cmplt(RegS0, RegS2, RegT0);
    pb.bne(RegT0, l_loop);

    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.halt();

    // ---- bigStep(a0 = seed) -> v0 ----
    // Frame: slots 0..7 = a[], slots 8..15 = b[].
    pb.bind(l_big);
    FunctionBuilder fb(pb, FrameSpec{128, true, false, false, {}});
    fb.prologue();

    // Generate a[]: t = t*197 + j*13 + 1 (unrolled first-touch
    // stores into freshly allocated stack words).
    pb.mov(RegA0, RegT0);
    pb.li(RegT7, lc_addr);
    for (unsigned j = 0; j < Limbs; ++j) {
        pb.mulqi(RegT0, 197, RegT0);
        pb.ldq(RegT1, static_cast<std::int32_t>(8 * j), RegT7);
        pb.addq(RegT0, RegT1, RegT0);
        pb.stq(RegT0, static_cast<std::int32_t>(8 * j), RegSP);
    }
    // Generate b[]: t = t*89 + limbConst(j + 8).
    for (unsigned j = 0; j < Limbs; ++j) {
        pb.mulqi(RegT0, 89, RegT0);
        pb.ldq(RegT1, static_cast<std::int32_t>(64 + 8 * j), RegT7);
        pb.addq(RegT0, RegT1, RegT0);
        pb.stq(RegT0, static_cast<std::int32_t>(64 + 8 * j), RegSP);
    }

    // Carry-propagating add, accumulating an xor digest.
    pb.li(RegT6, 0);                    // carry
    pb.li(RegV0, 0);                    // acc
    for (unsigned j = 0; j < Limbs; ++j) {
        pb.ldq(RegT0, static_cast<std::int32_t>(8 * j), RegSP);
        pb.ldq(RegT1, static_cast<std::int32_t>(64 + 8 * j), RegSP);
        pb.addq(RegT0, RegT1, RegT2);   // s1 = a + b
        pb.cmpult(RegT2, RegT0, RegT3); // c1
        pb.addq(RegT2, RegT6, RegT4);   // s = s1 + carry
        pb.cmpult(RegT4, RegT2, RegT5); // c2
        pb.bis(RegT3, RegT5, RegT6);    // carry = c1 | c2
        pb.xor_(RegV0, RegT4, RegV0);   // acc ^= s
    }
    pb.addq(RegV0, RegT6, RegV0);       // acc + carry

    fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
