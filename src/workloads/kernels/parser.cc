/**
 * @file
 * 197.parser stand-in: backtracking recursive matcher.
 *
 * Grammar: S := 'a' S 'b' | 'a' S 'c' | 'd'
 *
 * Stack personality: medium 64-byte frames with bursty recursion
 * depth — a failed first alternative unwinds and re-parses the same
 * span for the second alternative, producing the repeated
 * deallocate/reallocate stack motion the link-grammar parser shows.
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

void
genS(Rng &rng, unsigned depth, std::string &out)
{
    if (depth == 0 || rng.below(10) < 3) {
        out.push_back('d');
        return;
    }
    out.push_back('a');
    genS(rng, depth - 1, out);
    // 'c' endings force the matcher to fail alternative 1 ('b') at
    // this level and re-parse via alternative 2; keep them at 25%
    // so the backtracking blow-up stays bounded.
    out.push_back(rng.below(4) == 0 ? 'c' : 'b');
}

std::string
makeSentences(const std::string &input, std::uint64_t scale)
{
    Rng rng(inputSeed("parser", input));
    std::string s;
    for (std::uint64_t i = 0; i < scale; ++i) {
        genS(rng, 28, s);
        s.push_back('.');       // sentence separator
    }
    s.push_back('\0');
    return s;
}

/** Host matcher mirroring the SVA code: returns end pos or -1. */
std::int64_t
matchS(const std::string &src, std::int64_t pos)
{
    char c = src[static_cast<size_t>(pos)];
    if (c == 'd')
        return pos + 1;
    if (c != 'a')
        return -1;
    std::int64_t r = matchS(src, pos + 1);
    if (r < 0)
        return -1;
    if (src[static_cast<size_t>(r)] == 'b')
        return r + 1;
    // Backtrack: re-parse for alternative 2.
    std::int64_t r2 = matchS(src, pos + 1);
    if (r2 < 0)
        return -1;
    if (src[static_cast<size_t>(r2)] == 'c')
        return r2 + 1;
    return -1;
}

} // anonymous namespace

std::string
expectParser(const std::string &input, std::uint64_t scale)
{
    std::string src = makeSentences(input, scale);
    std::uint64_t cs = 0;
    std::uint64_t ok = 0;
    std::int64_t pos = 0;
    while (src[static_cast<size_t>(pos)] != '\0') {
        std::int64_t r = matchS(src, pos);
        if (r >= 0 && src[static_cast<size_t>(r)] == '.') {
            ++ok;
            cs = cs * 17 + static_cast<std::uint64_t>(r);
            pos = r + 1;
        } else {
            // Skip to the separator (never happens for generated
            // input, but keeps the parser total).
            while (src[static_cast<size_t>(pos)] != '.')
                ++pos;
            ++pos;
        }
    }
    return putintLine(cs) + putintLine(ok);
}

isa::Program
buildParser(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    std::string src = makeSentences(input, scale);

    ProgramBuilder pb("parser." + input);
    std::vector<std::uint8_t> bytes(src.begin(), src.end());
    Addr input_addr = allocHeapBytes(pb, bytes);

    Label l_main = pb.newLabel();
    Label l_match = pb.newLabel();

    // ---- main ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();

    pb.li(RegS0, 0);                    // pos
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, 0);                    // ok count
    pb.li(RegS3, input_addr);

    Label l_loop = pb.here();
    Label l_done = pb.newLabel();
    pb.addq(RegS3, RegS0, RegT0);
    pb.ldbu(RegT1, 0, RegT0);
    pb.beq(RegT1, l_done);              // '\0'

    pb.mov(RegS0, RegA0);
    pb.call(l_match);                   // v0 = end or -1

    Label l_fail = pb.newLabel();
    Label l_next = pb.newLabel();
    pb.blt(RegV0, l_fail);
    pb.addq(RegS3, RegV0, RegT0);
    pb.ldbu(RegT1, 0, RegT0);
    pb.cmpeqi(RegT1, '.', RegT2);
    pb.beq(RegT2, l_fail);
    pb.addqi(RegS2, 1, RegS2);
    pb.mulqi(RegS1, 17, RegS1);
    pb.addq(RegS1, RegV0, RegS1);
    pb.addqi(RegV0, 1, RegS0);
    pb.br(l_next);

    pb.bind(l_fail);
    Label l_skip = pb.here();
    pb.addq(RegS3, RegS0, RegT0);
    pb.ldbu(RegT1, 0, RegT0);
    pb.addqi(RegS0, 1, RegS0);
    pb.cmpeqi(RegT1, '.', RegT2);
    pb.beq(RegT2, l_skip);

    pb.bind(l_next);
    pb.br(l_loop);

    pb.bind(l_done);
    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.mov(RegS2, RegA0);
    pb.putint();
    pb.halt();

    // ---- matchS(a0 = pos) -> v0 = end or -1 ----
    // Frame slots: 0 pos, 1 r (first recursion result).
    pb.bind(l_match);
    FunctionBuilder fb(pb, FrameSpec{64, true, false, false, {}});
    fb.prologue();
    pb.stq(RegA0, 0, RegSP);

    Label l_fail2 = pb.newLabel();
    Label l_ret = pb.newLabel();

    pb.li(RegT4, input_addr);
    pb.addq(RegT4, RegA0, RegT0);
    pb.ldbu(RegT1, 0, RegT0);

    // 'd' -> pos + 1
    Label l_not_d = pb.newLabel();
    pb.cmpeqi(RegT1, 'd', RegT2);
    pb.beq(RegT2, l_not_d);
    pb.addqi(RegA0, 1, RegV0);
    pb.br(l_ret);

    pb.bind(l_not_d);
    pb.cmpeqi(RegT1, 'a', RegT2);
    pb.beq(RegT2, l_fail2);

    // Alternative 1: 'a' S 'b'.
    pb.ldq(RegT0, 0, RegSP);
    pb.addqi(RegT0, 1, RegA0);
    pb.call(l_match);
    pb.blt(RegV0, l_fail2);
    pb.stq(RegV0, 8, RegSP);            // r
    pb.li(RegT4, input_addr);
    pb.addq(RegT4, RegV0, RegT0);
    pb.ldbu(RegT1, 0, RegT0);
    Label l_alt2 = pb.newLabel();
    pb.cmpeqi(RegT1, 'b', RegT2);
    pb.beq(RegT2, l_alt2);
    pb.ldq(RegV0, 8, RegSP);
    pb.addqi(RegV0, 1, RegV0);
    pb.br(l_ret);

    // Alternative 2: backtrack and expect 'c'.
    pb.bind(l_alt2);
    pb.ldq(RegT0, 0, RegSP);
    pb.addqi(RegT0, 1, RegA0);
    pb.call(l_match);
    pb.blt(RegV0, l_fail2);
    pb.li(RegT4, input_addr);
    pb.addq(RegT4, RegV0, RegT0);
    pb.ldbu(RegT1, 0, RegT0);
    pb.cmpeqi(RegT1, 'c', RegT2);
    pb.beq(RegT2, l_fail2);
    pb.addqi(RegV0, 1, RegV0);
    pb.br(l_ret);

    pb.bind(l_fail2);
    pb.li(RegV0, static_cast<std::uint64_t>(-1));

    pb.bind(l_ret);
    fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
