/**
 * @file
 * 181.mcf stand-in: pointer-chasing potential relaxation over a
 * heap-resident network.
 *
 * Stack personality: heap-dominant with a negligible stack (the
 * paper's mcf row in Table 3 is near-empty); the large node array
 * also gives the DL1/L2 real miss traffic, matching mcf's
 * memory-bound reputation.
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

constexpr std::uint64_t NumNodes = 4096;
constexpr unsigned HopsPerIter = 64;

/** Node layout: 4 quads {potential, cost, next, pad}. */
struct Net
{
    std::vector<std::uint64_t> quads;   //!< NumNodes * 4
};

Net
makeNet(const std::string &input)
{
    Rng rng(inputSeed("mcf", input));
    Net net;
    net.quads.resize(NumNodes * 4, 0);
    // A random single-cycle permutation keeps every walk long.
    std::vector<std::uint64_t> perm(NumNodes);
    for (std::uint64_t i = 0; i < NumNodes; ++i)
        perm[i] = i;
    for (std::uint64_t i = NumNodes - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);
    for (std::uint64_t i = 0; i < NumNodes; ++i) {
        std::uint64_t a = perm[i];
        std::uint64_t b = perm[(i + 1) % NumNodes];
        net.quads[a * 4 + 0] = mix64(a) & 0xffff;   // potential
        net.quads[a * 4 + 1] = (mix64(a ^ 0x77) & 0xff) + 1; // cost
        net.quads[a * 4 + 2] = b;                   // next
    }
    return net;
}

} // anonymous namespace

std::string
expectMcf(const std::string &input, std::uint64_t scale)
{
    Net net = makeNet(input);
    std::uint64_t cs = 0;
    std::uint64_t walk = 0;
    for (std::uint64_t i = 0; i < scale; ++i) {
        for (unsigned h = 0; h < HopsPerIter; ++h) {
            std::uint64_t *n = &net.quads[walk * 4];
            std::uint64_t pot = n[0];
            pot = pot + n[1] - (pot >> 3);
            n[0] = pot;
            cs += pot;
            walk = n[2];
        }
    }
    return putintLine(cs) + putintLine(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(walk)));
}

isa::Program
buildMcf(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    Net net = makeNet(input);

    ProgramBuilder pb("mcf." + input);
    Addr nodes = pb.allocHeapQuads(net.quads);

    Label l_main = pb.newLabel();

    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();
    // The walk cursor lives in a frame slot, reloaded per hop (the
    // register allocator in mcf keeps arc state on the stack).

    pb.li(RegS0, 0);                    // i
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, scale);
    pb.li(RegS3, nodes);
    pb.li(RegS4, 0);                    // walk

    Label l_outer = pb.here();
    pb.li(RegT6, HopsPerIter);
    Label l_hop = pb.here();
    pb.stq(RegS4, 0, RegSP);            // spill cursor
    pb.ldq(RegS4, 0, RegSP);            // reload cursor
    pb.slli(RegS4, 5, RegT0);           // walk * 32 bytes
    pb.addq(RegS3, RegT0, RegT0);       // node base
    pb.ldq(RegT1, 0, RegT0);            // potential
    pb.ldq(RegT2, 8, RegT0);            // cost
    pb.srli(RegT1, 3, RegT3);
    pb.addq(RegT1, RegT2, RegT1);
    pb.subq(RegT1, RegT3, RegT1);
    pb.stq(RegT1, 0, RegT0);
    pb.addq(RegS1, RegT1, RegS1);
    pb.ldq(RegS4, 16, RegT0);           // walk = next
    pb.subqi(RegT6, 1, RegT6);
    pb.bne(RegT6, l_hop);

    pb.addqi(RegS0, 1, RegS0);
    pb.cmplt(RegS0, RegS2, RegT0);
    pb.bne(RegT0, l_outer);

    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.mov(RegS4, RegA0);
    pb.putint();
    pb.halt();

    return pb.finish(l_main);
}

} // namespace svf::workloads
