/**
 * @file
 * 253.perlbmk stand-in: a stack-machine bytecode interpreter with
 * indirect handler dispatch and recursive function calls.
 *
 * Stack personality: interpreter frames (the CALLF opcode recurses
 * the interpreter) plus jump-table dispatch through $pv, exercising
 * the BTB in the gshare configuration like a real interpreter.
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

enum Op : std::uint8_t
{
    OpPushi = 0,
    OpAdd = 1,
    OpMul = 2,
    OpXor = 3,
    OpDup = 4,
    OpCallf = 5,
    OpRet = 6,
    OpPopacc = 7,
};

constexpr unsigned NumFuncs = 5;

/** Generate one function body with a net vstack effect of zero. */
std::vector<std::uint8_t>
genFunc(Rng &rng, unsigned fi)
{
    std::vector<std::uint8_t> code;
    int depth = 0;
    unsigned len = 12 + static_cast<unsigned>(rng.below(16));
    for (unsigned i = 0; i < len; ++i) {
        unsigned pick = static_cast<unsigned>(rng.below(10));
        if (pick < 3 || depth == 0) {
            code.push_back(OpPushi);
            code.push_back(static_cast<std::uint8_t>(rng.below(256)));
            ++depth;
        } else if (pick < 5 && depth >= 2) {
            code.push_back(static_cast<std::uint8_t>(
                OpAdd + rng.below(3)));         // add/mul/xor
            --depth;
        } else if (pick == 5) {
            code.push_back(OpDup);
            ++depth;
        } else if (pick == 6 && fi + 1 < NumFuncs &&
                   rng.below(2) == 0) {
            code.push_back(OpCallf);
            code.push_back(static_cast<std::uint8_t>(
                fi + 1 + rng.below(NumFuncs - fi - 1)));
        } else {
            code.push_back(OpPopacc);
            --depth;
        }
    }
    while (depth > 0) {
        code.push_back(OpPopacc);
        --depth;
    }
    code.push_back(OpRet);
    return code;
}

struct Bytecode
{
    std::vector<std::vector<std::uint8_t>> funcs;   //!< [NumFuncs]
};

Bytecode
makeBytecode(const std::string &input)
{
    Rng rng(inputSeed("perlbmk", input));
    Bytecode bc;
    for (unsigned fi = 0; fi < NumFuncs; ++fi)
        bc.funcs.push_back(genFunc(rng, fi));
    return bc;
}

/** Host interpreter mirroring the SVA one. */
struct Interp
{
    const Bytecode &bc;
    std::uint64_t acc = 0;
    std::vector<std::uint64_t> vstack;

    void
    run(const std::vector<std::uint8_t> &code)
    {
        size_t ip = 0;
        for (;;) {
            std::uint8_t op = code[ip++];
            switch (op) {
              case OpPushi:
                vstack.push_back(code[ip++]);
                break;
              case OpAdd: {
                std::uint64_t b = vstack.back();
                vstack.pop_back();
                vstack.back() += b;
                break;
              }
              case OpMul: {
                std::uint64_t b = vstack.back();
                vstack.pop_back();
                vstack.back() *= b;
                break;
              }
              case OpXor: {
                std::uint64_t b = vstack.back();
                vstack.pop_back();
                vstack.back() ^= b;
                break;
              }
              case OpDup:
                vstack.push_back(vstack.back());
                break;
              case OpCallf:
                run(bc.funcs[code[ip++]]);
                break;
              case OpRet:
                return;
              case OpPopacc:
                acc = acc * 21 + vstack.back();
                vstack.pop_back();
                break;
            }
        }
    }
};

} // anonymous namespace

std::string
expectPerlbmk(const std::string &input, std::uint64_t scale)
{
    Bytecode bc = makeBytecode(input);
    Interp it{bc, 0, {}};
    for (std::uint64_t i = 0; i < scale; ++i) {
        it.vstack.push_back(i);
        it.run(bc.funcs[0]);
        it.acc = it.acc * 3 + it.vstack.back();
        it.vstack.pop_back();
    }
    return putintLine(it.acc);
}

isa::Program
buildPerlbmk(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    Bytecode bc = makeBytecode(input);

    ProgramBuilder pb("perlbmk." + input);

    // Bytecode segments in the heap; record their addresses.
    std::vector<Addr> func_addrs;
    for (const auto &f : bc.funcs)
        func_addrs.push_back(allocHeapBytes(pb, f));
    std::vector<std::uint64_t> ftab(func_addrs.begin(),
                                    func_addrs.end());
    Addr ftab_addr = pb.allocHeapQuads(ftab);

    Addr vstack_addr = pb.allocHeap(64 * 1024, 8);
    Addr acc_addr = pb.allocDataZero(8);
    Addr jtab_addr = pb.allocDataZero(8 * 8);   // 8 handler slots

    Label l_main = pb.newLabel();
    Label l_interp = pb.newLabel();
    Label l_h_pushi = pb.newLabel();
    Label l_h_add = pb.newLabel();
    Label l_h_mul = pb.newLabel();
    Label l_h_xor = pb.newLabel();
    Label l_h_dup = pb.newLabel();
    Label l_h_callf = pb.newLabel();
    Label l_h_popacc = pb.newLabel();

    // Interpreter register conventions (shared with handlers):
    //   s0 = ip (byte address), s1 = vstack byte offset,
    //   s2 = vstack base, s3 = jump table base.

    // ---- main ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();

    // Build the dispatch table.
    const Label handlers[8] = {l_h_pushi, l_h_add, l_h_mul, l_h_xor,
                               l_h_dup, l_h_callf, Label{}, l_h_popacc};
    pb.li(RegS3, jtab_addr);
    for (unsigned k = 0; k < 8; ++k) {
        if (!handlers[k].valid())
            continue;           // OpRet is handled inline
        pb.la(RegT0, handlers[k]);
        pb.stq(RegT0, static_cast<std::int32_t>(8 * k), RegS3);
    }

    pb.li(RegS2, vstack_addr);
    pb.li(RegS1, 0);                    // vstack offset
    pb.li(RegS5, 0);                    // i
    pb.li(RegS6, scale);

    Label l_loop = pb.here();
    // vstack.push(i)
    pb.addq(RegS2, RegS1, RegT0);
    pb.stq(RegS5, 0, RegT0);
    pb.addqi(RegS1, 8, RegS1);

    pb.li(RegA0, func_addrs[0]);
    pb.call(l_interp);

    // acc = acc * 3 + vstack.pop()
    pb.subqi(RegS1, 8, RegS1);
    pb.addq(RegS2, RegS1, RegT0);
    pb.ldq(RegT1, 0, RegT0);
    pb.li(RegT2, acc_addr);
    pb.ldq(RegT3, 0, RegT2);
    pb.mulqi(RegT3, 3, RegT3);
    pb.addq(RegT3, RegT1, RegT3);
    pb.stq(RegT3, 0, RegT2);

    pb.addqi(RegS5, 1, RegS5);
    pb.cmplt(RegS5, RegS6, RegT0);
    pb.bne(RegT0, l_loop);

    pb.li(RegT2, acc_addr);
    pb.ldq(RegA0, 0, RegT2);
    pb.putint();
    pb.halt();

    // ---- interp(a0 = code address) ----
    // Saves/restores s0 so recursion via CALLF is safe (s1..s3 are
    // shared interpreter state and deliberately not saved).
    pb.bind(l_interp);
    FunctionBuilder in_fb(pb, FrameSpec{16, true, false, false,
                                        {RegS0}});
    in_fb.prologue();
    pb.mov(RegA0, RegS0);               // ip

    Label l_dispatch = pb.here();
    Label l_interp_ret = pb.newLabel();
    pb.ldbu(RegT0, 0, RegS0);           // op
    pb.addqi(RegS0, 1, RegS0);
    pb.cmpeqi(RegT0, OpRet, RegT1);
    pb.bne(RegT1, l_interp_ret);
    // Spill the interpreter state across the handler call, as a
    // compiler would for live caller-saved state.
    pb.stq(RegS0, 0, RegSP);
    pb.slli(RegT0, 3, RegT1);
    pb.addq(RegS3, RegT1, RegT1);
    pb.ldq(RegPV, 0, RegT1);
    pb.jsr(RegRA, RegPV);               // dispatch
    pb.ldq(RegT2, 0, RegSP);            // reload spilled state
    pb.cmpeq(RegT2, RegS0, RegT3);      // ip advanced by handler?
    pb.bne(RegT3, l_dispatch);
    pb.br(l_dispatch);

    pb.bind(l_interp_ret);
    in_fb.epilogueRet();

    // ---- handlers (leaf; share s0/s1/s2 state) ----
    auto pop2 = [&]() {
        // t2 = b (top), t3 = a (below); s1 shrinks by 8; t4 =
        // address of the new top (a's slot).
        pb.subqi(RegS1, 8, RegS1);
        pb.addq(RegS2, RegS1, RegT4);
        pb.ldq(RegT2, 0, RegT4);        // b
        pb.ldq(RegT3, -8, RegT4);       // a
        pb.lda(RegT4, -8, RegT4);
    };

    pb.bind(l_h_pushi);
    pb.ldbu(RegT2, 0, RegS0);           // imm
    pb.addqi(RegS0, 1, RegS0);
    pb.addq(RegS2, RegS1, RegT3);
    pb.stq(RegT2, 0, RegT3);
    pb.addqi(RegS1, 8, RegS1);
    pb.ret();

    pb.bind(l_h_add);
    pop2();
    pb.addq(RegT3, RegT2, RegT3);
    pb.stq(RegT3, 0, RegT4);
    pb.ret();

    pb.bind(l_h_mul);
    pop2();
    pb.mulq(RegT3, RegT2, RegT3);
    pb.stq(RegT3, 0, RegT4);
    pb.ret();

    pb.bind(l_h_xor);
    pop2();
    pb.xor_(RegT3, RegT2, RegT3);
    pb.stq(RegT3, 0, RegT4);
    pb.ret();

    pb.bind(l_h_dup);
    pb.addq(RegS2, RegS1, RegT3);
    pb.ldq(RegT2, -8, RegT3);
    pb.stq(RegT2, 0, RegT3);
    pb.addqi(RegS1, 8, RegS1);
    pb.ret();

    pb.bind(l_h_popacc);
    pb.subqi(RegS1, 8, RegS1);
    pb.addq(RegS2, RegS1, RegT3);
    pb.ldq(RegT2, 0, RegT3);
    pb.li(RegT3, acc_addr);
    pb.ldq(RegT4, 0, RegT3);
    pb.mulqi(RegT4, 21, RegT4);
    pb.addq(RegT4, RegT2, RegT4);
    pb.stq(RegT4, 0, RegT3);
    pb.ret();

    // CALLF recurses into the interpreter, so it needs a real frame.
    pb.bind(l_h_callf);
    FunctionBuilder cf_fb(pb, FrameSpec{16, true, false, false, {}});
    cf_fb.prologue();
    pb.ldbu(RegT0, 0, RegS0);           // function index
    pb.addqi(RegS0, 1, RegS0);
    pb.slli(RegT0, 3, RegT0);
    pb.li(RegT1, ftab_addr);
    pb.addq(RegT1, RegT0, RegT1);
    pb.ldq(RegA0, 0, RegT1);
    pb.call(l_interp);
    cf_fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
