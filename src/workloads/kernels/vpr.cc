/**
 * @file
 * 175.vpr stand-in: maze-routing breadth-first wave expansion.
 *
 * Stack personality: a BFS driver calling small queue helpers, with
 * the routing grid and wavefront queue in the heap.
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

constexpr std::uint64_t GridW = 32;
constexpr std::uint64_t GridH = 32;
constexpr std::uint64_t GridCells = GridW * GridH;

/** Host-side grid of blocked cells (about 20%). */
std::vector<std::uint64_t>
makeBlocked(const std::string &input)
{
    Rng rng(inputSeed("vpr", input));
    std::vector<std::uint64_t> blocked(GridCells, 0);
    for (auto &b : blocked)
        b = rng.below(5) == 0 ? 1 : 0;
    blocked[0] = 0;
    return blocked;
}

/** Endpoints for route r (kept deterministic and unblocked). */
void
routeEnds(const std::vector<std::uint64_t> &blocked, std::uint64_t r,
          std::uint64_t &src, std::uint64_t &dst)
{
    src = mix64(r * 2 + 1) % GridCells;
    dst = mix64(r * 2 + 2) % GridCells;
    while (blocked[src])
        src = (src + 1) % GridCells;
    while (blocked[dst] || dst == src)
        dst = (dst + 1) % GridCells;
}

/** Host BFS mirroring the SVA kernel; returns path length or 0. */
std::uint64_t
bfs(const std::vector<std::uint64_t> &blocked,
    std::vector<std::uint64_t> &mark, std::uint64_t epoch,
    std::uint64_t src, std::uint64_t dst)
{
    // mark[i] = epoch * 4096 + dist + 1 when visited this epoch.
    std::vector<std::uint64_t> queue(GridCells);
    std::uint64_t qh = 0;
    std::uint64_t qt = 0;
    queue[qt++] = src;
    mark[src] = epoch * 4096 + 1;
    while (qh < qt) {
        std::uint64_t cur = queue[qh++];
        if (cur == dst)
            return mark[cur] - epoch * 4096 - 1;
        std::uint64_t d = mark[cur] - epoch * 4096;
        std::uint64_t x = cur % GridW;
        std::uint64_t y = cur / GridW;
        const std::int64_t nx[4] = {-1, 1, 0, 0};
        const std::int64_t ny[4] = {0, 0, -1, 1};
        for (int k = 0; k < 4; ++k) {
            std::int64_t xx = static_cast<std::int64_t>(x) + nx[k];
            std::int64_t yy = static_cast<std::int64_t>(y) + ny[k];
            if (xx < 0 || yy < 0 ||
                xx >= static_cast<std::int64_t>(GridW) ||
                yy >= static_cast<std::int64_t>(GridH)) {
                continue;
            }
            std::uint64_t n = static_cast<std::uint64_t>(yy) * GridW +
                              static_cast<std::uint64_t>(xx);
            if (blocked[n] || mark[n] >= epoch * 4096 + 1)
                continue;
            mark[n] = epoch * 4096 + d + 1;
            queue[qt++] = n;
        }
    }
    return 0;
}

} // anonymous namespace

std::string
expectVpr(const std::string &input, std::uint64_t scale)
{
    std::vector<std::uint64_t> blocked = makeBlocked(input);
    std::vector<std::uint64_t> mark(GridCells, 0);
    std::uint64_t cs = 0;
    std::uint64_t routed = 0;
    for (std::uint64_t r = 1; r <= scale; ++r) {
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        routeEnds(blocked, r, src, dst);
        std::uint64_t len = bfs(blocked, mark, r, src, dst);
        if (len)
            ++routed;
        cs = cs * 9 + len;
    }
    return putintLine(cs) + putintLine(routed);
}

isa::Program
buildVpr(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    std::vector<std::uint64_t> blocked = makeBlocked(input);

    ProgramBuilder pb("vpr." + input);
    Addr blocked_addr = pb.allocHeapQuads(blocked);
    Addr mark_addr = pb.allocHeapQuads(
        std::vector<std::uint64_t>(GridCells, 0));
    Addr queue_addr = pb.allocHeap(GridCells * 8, 8);
    // Queue head/tail as globals (helper-shared state).
    Addr qh_addr = pb.allocDataZero(8);
    Addr qt_addr = pb.allocDataZero(8);

    // Precomputed per-route endpoints (host-side arithmetic uses
    // mix64; embedding the results keeps the kernel focused on the
    // BFS itself).
    std::vector<std::uint64_t> ends;
    for (std::uint64_t r = 1; r <= scale; ++r) {
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        routeEnds(blocked, r, src, dst);
        ends.push_back(src);
        ends.push_back(dst);
    }
    Addr ends_addr = pb.allocHeapQuads(ends);

    Label l_main = pb.newLabel();
    Label l_bfs = pb.newLabel();
    Label l_qpush = pb.newLabel();
    Label l_qpop = pb.newLabel();

    // ---- main ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();

    pb.li(RegS0, 1);                    // r (epoch)
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, 0);                    // routed
    pb.li(RegS3, scale);

    Label l_loop = pb.here();
    pb.subqi(RegS0, 1, RegT0);
    pb.slli(RegT0, 4, RegT0);           // (r-1) * 16 bytes
    pb.li(RegT1, ends_addr);
    pb.addq(RegT1, RegT0, RegT1);
    pb.ldq(RegA0, 0, RegT1);            // src
    pb.ldq(RegA1, 8, RegT1);            // dst
    pb.mov(RegS0, RegA2);               // epoch
    pb.call(l_bfs);                     // v0 = len or 0

    Label l_norout = pb.newLabel();
    pb.beq(RegV0, l_norout);
    pb.addqi(RegS2, 1, RegS2);
    pb.bind(l_norout);
    pb.mulqi(RegS1, 9, RegS1);
    pb.addq(RegS1, RegV0, RegS1);

    pb.addqi(RegS0, 1, RegS0);
    pb.cmple(RegS0, RegS3, RegT0);
    pb.bne(RegT0, l_loop);

    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.mov(RegS2, RegA0);
    pb.putint();
    pb.halt();

    // ---- bfs(a0 = src, a1 = dst, a2 = epoch) -> v0 ----
    // Frame slots: 0 dst, 1 epoch*4096, 2 cur, 3 dist.
    pb.bind(l_bfs);
    FunctionBuilder bfs_fb(pb, FrameSpec{32, true, false, false,
                                         {RegS4, RegS5, RegS6}});
    bfs_fb.prologue();
    pb.stq(RegA1, 0, RegSP);            // dst
    pb.slli(RegA2, 12, RegT0);          // epoch * 4096
    pb.stq(RegT0, 8, RegSP);

    // Reset queue, push src, mark it.
    pb.li(RegT1, qh_addr);
    pb.stq(RegZero, 0, RegT1);
    pb.li(RegT1, qt_addr);
    pb.stq(RegZero, 0, RegT1);

    pb.li(RegS4, mark_addr);
    pb.li(RegS5, blocked_addr);

    pb.slli(RegA0, 3, RegT1);
    pb.addq(RegS4, RegT1, RegT1);
    pb.addqi(RegT0, 1, RegT2);          // epoch*4096 + 1
    pb.stq(RegT2, 0, RegT1);            // mark[src]
    pb.call(l_qpush);                   // a0 = src already

    Label l_bfs_loop = pb.here();
    Label l_bfs_fail = pb.newLabel();
    Label l_bfs_ret = pb.newLabel();

    // Empty queue?
    pb.li(RegT0, qh_addr);
    pb.ldq(RegT1, 0, RegT0);
    pb.li(RegT0, qt_addr);
    pb.ldq(RegT2, 0, RegT0);
    pb.cmplt(RegT1, RegT2, RegT0);
    pb.beq(RegT0, l_bfs_fail);

    pb.call(l_qpop);                    // v0 = cur
    pb.stq(RegV0, 16, RegSP);

    // Found?
    pb.ldq(RegT0, 0, RegSP);            // dst
    Label l_expand = pb.newLabel();
    pb.cmpeq(RegV0, RegT0, RegT1);
    pb.beq(RegT1, l_expand);
    // len = mark[cur] - epoch*4096 - 1
    pb.slli(RegV0, 3, RegT1);
    pb.addq(RegS4, RegT1, RegT1);
    pb.ldq(RegT2, 0, RegT1);
    pb.ldq(RegT3, 8, RegSP);
    pb.subq(RegT2, RegT3, RegV0);
    pb.subqi(RegV0, 1, RegV0);
    pb.br(l_bfs_ret);

    pb.bind(l_expand);
    // d = mark[cur] - epoch*4096
    pb.ldq(RegT0, 16, RegSP);           // cur
    pb.slli(RegT0, 3, RegT1);
    pb.addq(RegS4, RegT1, RegT1);
    pb.ldq(RegT2, 0, RegT1);
    pb.ldq(RegT3, 8, RegSP);
    pb.subq(RegT2, RegT3, RegT2);
    pb.stq(RegT2, 24, RegSP);           // dist

    // x = cur & 31, y = cur >> 5.
    // Neighbours: cur-1 (x>0), cur+1 (x<31), cur-32 (y>0),
    // cur+32 (y<31).
    for (int k = 0; k < 4; ++k) {
        Label l_skip = pb.newLabel();
        pb.ldq(RegT0, 16, RegSP);       // cur
        switch (k) {
          case 0:                       // left
            pb.andi(RegT0, 31, RegT1);
            pb.beq(RegT1, l_skip);
            pb.subqi(RegT0, 1, RegS6);
            break;
          case 1:                       // right
            pb.andi(RegT0, 31, RegT1);
            pb.cmpeqi(RegT1, 31, RegT1);
            pb.bne(RegT1, l_skip);
            pb.addqi(RegT0, 1, RegS6);
            break;
          case 2:                       // up
            pb.srli(RegT0, 5, RegT1);
            pb.beq(RegT1, l_skip);
            pb.subqi(RegT0, 32, RegS6);
            break;
          case 3:                       // down
            pb.srli(RegT0, 5, RegT1);
            pb.cmpeqi(RegT1, 31, RegT1);
            pb.bne(RegT1, l_skip);
            pb.addqi(RegT0, 32, RegS6);
            break;
        }
        // blocked?
        pb.slli(RegS6, 3, RegT1);
        pb.addq(RegS5, RegT1, RegT2);
        pb.ldq(RegT3, 0, RegT2);
        pb.bne(RegT3, l_skip);
        // already marked this epoch? mark[n] >= epoch*4096 + 1
        pb.addq(RegS4, RegT1, RegT2);
        pb.ldq(RegT3, 0, RegT2);
        pb.ldq(RegT4, 8, RegSP);        // epoch*4096
        pb.cmpult(RegT3, RegT4, RegT5); // mark < epoch base => new
        pb.beq(RegT5, l_skip);
        // mark[n] = epoch*4096 + d + 1; push n
        pb.ldq(RegT6, 24, RegSP);       // dist
        pb.addq(RegT4, RegT6, RegT4);
        pb.addqi(RegT4, 1, RegT4);
        pb.stq(RegT4, 0, RegT2);
        pb.mov(RegS6, RegA0);
        pb.call(l_qpush);
        pb.bind(l_skip);
    }
    pb.br(l_bfs_loop);

    pb.bind(l_bfs_fail);
    pb.li(RegV0, 0);
    pb.bind(l_bfs_ret);
    bfs_fb.epilogueRet();

    // ---- qpush(a0 = cell) ----
    pb.bind(l_qpush);
    FunctionBuilder push_fb(pb, FrameSpec{16, false, false, false, {}});
    push_fb.prologue();
    pb.stq(RegA0, 0, RegSP);
    pb.li(RegT0, qt_addr);
    pb.ldq(RegT1, 0, RegT0);
    pb.addqi(RegT1, 1, RegT2);
    pb.stq(RegT2, 0, RegT0);
    pb.slli(RegT1, 3, RegT1);
    pb.li(RegT2, queue_addr);
    pb.addq(RegT2, RegT1, RegT1);
    pb.ldq(RegT3, 0, RegSP);            // reload cell
    pb.stq(RegT3, 0, RegT1);
    push_fb.epilogueRet();

    // ---- qpop() -> v0 ----
    pb.bind(l_qpop);
    FunctionBuilder pop_fb(pb, FrameSpec{16, false, false, false, {}});
    pop_fb.prologue();
    pb.li(RegT0, qh_addr);
    pb.ldq(RegT1, 0, RegT0);
    pb.addqi(RegT1, 1, RegT2);
    pb.stq(RegT2, 0, RegT0);
    pb.slli(RegT1, 3, RegT1);
    pb.li(RegT2, queue_addr);
    pb.addq(RegT2, RegT1, RegT1);
    pb.ldq(RegV0, 0, RegT1);
    pop_fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
