/**
 * @file
 * 186.crafty stand-in: alpha-beta negamax search of a synthetic
 * subtraction game.
 *
 * Stack personality: recursion to a stable mid-range depth (the
 * paper shows crafty living in a [200, 600]-word stack band), with a
 * 64-byte frame holding the search state (state, depth, alpha, beta,
 * best, move) that is spilled and reloaded around every child call.
 */

#include "workloads/registry.hh"

#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

constexpr std::int64_t LeafBias = 128;
constexpr int SearchDepth = 5;

/** Piece-square style evaluation table (global data region). */
std::uint64_t
ptabEntry(std::uint64_t i)
{
    return mix64(i) & 15;
}

/** Per-move ordering bonus table (global data region). */
std::uint64_t
mtabEntry(std::uint64_t k)
{
    return (k * 3 + 1) & 7;
}

/** History-heuristic table, updated once per examined move. It
 *  lives in the search driver's frame (crafty keeps its per-search
 *  state on the stack), several KB above the TOS during the search
 *  — the wide region that thrashes a small stack cache. */
constexpr unsigned HtabSize = 256;

std::int64_t
leafScore(std::uint64_t state)
{
    return static_cast<std::int64_t>((state * HashMul) >> 56) -
           LeafBias +
           static_cast<std::int64_t>(ptabEntry(state & 63));
}

std::uint64_t g_htab[HtabSize];

std::int64_t
negamax(std::uint64_t state, std::int64_t depth, std::int64_t alpha,
        std::int64_t beta)
{
    if (depth == 0 || state == 0)
        return leafScore(state);
    std::int64_t best = -1000;
    for (std::uint64_t k = 1; k <= state && k <= 6; ++k) {
        // History-heuristic bookkeeping (global read-modify-write,
        // as crafty's move-ordering tables do).
        std::uint64_t &h = g_htab[(state * 6 + k) & (HtabSize - 1)];
        h += 1;
        std::int64_t s =
            -negamax(state - k, depth - 1, -beta, -alpha) +
            static_cast<std::int64_t>(mtabEntry(k)) +
            static_cast<std::int64_t>(h & 1);
        if (s > best)
            best = s;
        if (best > alpha)
            alpha = best;
        if (!(alpha < beta))
            break;
    }
    return best;
}

std::uint64_t
rootState(std::uint64_t i)
{
    return 20 + (i & 7) + ((i >> 3) & 3);
}

} // anonymous namespace

std::string
expectCrafty(const std::string &input, std::uint64_t scale)
{
    (void)input;
    for (auto &h : g_htab)
        h = 0;
    std::uint64_t cs = 0;
    for (std::uint64_t i = 0; i < scale; ++i) {
        std::int64_t score =
            negamax(rootState(i), SearchDepth, -10000, 10000);
        cs = cs * 33 + (static_cast<std::uint64_t>(score) & 0xff);
    }
    return putintLine(cs);
}

isa::Program
buildCrafty(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    (void)input;

    ProgramBuilder pb("crafty.ref");
    std::vector<std::uint64_t> ptab_init;
    for (std::uint64_t i = 0; i < 64; ++i)
        ptab_init.push_back(ptabEntry(i));
    Addr ptab_addr = pb.allocDataQuads(ptab_init);
    std::vector<std::uint64_t> mtab_init;
    for (std::uint64_t k = 0; k < 8; ++k)
        mtab_init.push_back(mtabEntry(k));
    Addr mtab_addr = pb.allocDataQuads(mtab_init);

    Label l_main = pb.newLabel();
    Label l_nega = pb.newLabel();
    Label l_leaf = pb.newLabel();

    Label l_chain[3] = {pb.newLabel(), pb.newLabel(), pb.newLabel()};
    Label l_search = pb.newLabel();

    // ---- main: descend through setup layers (iterate/ponder/
    // search-root in the real crafty) before the search loop ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();
    pb.call(l_chain[0]);
    pb.mov(RegV0, RegA0);
    pb.putint();
    pb.halt();

    for (int lvl = 0; lvl < 3; ++lvl) {
        pb.bind(l_chain[lvl]);
        // Level 0 owns the history table (2KB) plus scratch; the
        // deeper setup layers have ordinary frames.
        std::uint32_t locals = lvl == 0 ? HtabSize * 8 + 16 : 528;
        FunctionBuilder chain_fb(pb, FrameSpec{locals, true, false,
                                               false, {}});
        chain_fb.prologue();
        pb.stq(RegZero, 0, RegSP);
        pb.stq(RegZero,
               static_cast<std::int32_t>(locals - 8), RegSP);
        if (lvl == 0)
            pb.lda(RegS4, 16, RegSP);   // &htab[0] for the search
        if (lvl < 2)
            pb.call(l_chain[lvl + 1]);
        else
            pb.call(l_search);
        chain_fb.epilogueRet();
    }

    // ---- search loop over root positions ----
    pb.bind(l_search);
    FunctionBuilder search_fb(pb, FrameSpec{16, true, false, false,
                                            {RegS0, RegS1, RegS2}});
    search_fb.prologue();

    pb.li(RegS0, 0);                    // i
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, scale);

    Label l_loop = pb.here();
    // root = 20 + (i & 7) + ((i >> 3) & 3)
    pb.andi(RegS0, 7, RegT0);
    pb.srli(RegS0, 3, RegT1);
    pb.andi(RegT1, 3, RegT1);
    pb.addq(RegT0, RegT1, RegT0);
    pb.addqi(RegT0, 20, RegA0);
    pb.li(RegA1, SearchDepth);
    pb.li(RegA2, static_cast<std::uint64_t>(-10000));
    pb.li(RegA3, 10000);
    pb.call(l_nega);

    pb.andi(RegV0, 255, RegT0);
    pb.mulqi(RegS1, 33, RegS1);
    pb.addq(RegS1, RegT0, RegS1);

    pb.addqi(RegS0, 1, RegS0);
    pb.cmplt(RegS0, RegS2, RegT0);
    pb.bne(RegT0, l_loop);

    pb.mov(RegS1, RegV0);
    search_fb.epilogueRet();

    // ---- negamax(a0=state, a1=depth, a2=alpha, a3=beta) -> v0 ----
    // Frame slots: 0 state, 1 depth, 2 alpha, 3 beta, 4 best, 5 k.
    pb.bind(l_nega);
    // Alpha lives in a callee-saved register (the compiler keeps the
    // hottest search bound out of memory); everything else spills.
    FunctionBuilder fb(pb, FrameSpec{120, true, false, false,
                                     {RegS3}});
    fb.prologue();

    pb.beq(RegA1, l_leaf);              // depth == 0
    pb.beq(RegA0, l_leaf);              // state == 0

    pb.stq(RegA0, 0, RegSP);
    pb.stq(RegA1, 8, RegSP);
    pb.mov(RegA2, RegS3);               // alpha stays in a register
    pb.stq(RegA3, 24, RegSP);
    pb.li(RegT0, static_cast<std::uint64_t>(-1000));
    pb.stq(RegT0, 32, RegSP);           // best
    pb.li(RegT0, 1);
    pb.stq(RegT0, 40, RegSP);           // k

    Label l_for = pb.here();
    Label l_end = pb.newLabel();
    pb.ldq(RegT0, 40, RegSP);           // k
    pb.ldq(RegT1, 0, RegSP);            // state
    pb.cmple(RegT0, RegT1, RegT2);      // k <= state?
    pb.beq(RegT2, l_end);
    pb.cmplei(RegT0, 6, RegT2);         // k <= 6?
    pb.beq(RegT2, l_end);

    // h = ++htab[(state*6 + k) & 63]  (global RMW)
    pb.mulqi(RegT1, 6, RegT2);
    pb.addq(RegT2, RegT0, RegT2);
    pb.andi(RegT2, HtabSize - 1, RegT2);
    pb.slli(RegT2, 3, RegT2);
    pb.addq(RegS4, RegT2, RegT2);       // htab in the driver frame
    pb.ldq(RegT3, 0, RegT2);
    pb.addqi(RegT3, 1, RegT3);
    pb.stq(RegT3, 0, RegT2);

    pb.subq(RegT1, RegT0, RegA0);       // child state
    pb.ldq(RegT2, 8, RegSP);
    pb.subqi(RegT2, 1, RegA1);          // depth - 1
    pb.ldq(RegT3, 24, RegSP);           // beta
    pb.subq(RegZero, RegT3, RegA2);     // -beta
    pb.subq(RegZero, RegS3, RegA3);     // -alpha
    pb.call(l_nega);
    pb.subq(RegZero, RegV0, RegT0);     // s = -score
    pb.ldq(RegT6, 40, RegSP);           // k
    pb.slli(RegT6, 3, RegT6);
    pb.li(RegT7, mtab_addr);
    pb.addq(RegT7, RegT6, RegT6);
    pb.ldq(RegT6, 0, RegT6);            // move-ordering bonus
    pb.addq(RegT0, RegT6, RegT0);       // s += mtab[k]
    // s += htab[(state*6 + k) & 63] & 1
    pb.ldq(RegT6, 0, RegSP);            // state
    pb.mulqi(RegT6, 6, RegT6);
    pb.ldq(RegT7, 40, RegSP);           // k
    pb.addq(RegT6, RegT7, RegT6);
    pb.andi(RegT6, HtabSize - 1, RegT6);
    pb.slli(RegT6, 3, RegT6);
    pb.addq(RegS4, RegT6, RegT6);       // htab in the driver frame
    pb.ldq(RegT6, 0, RegT6);
    pb.andi(RegT6, 1, RegT6);
    pb.addq(RegT0, RegT6, RegT0);

    pb.ldq(RegT1, 32, RegSP);           // best
    Label l_skip1 = pb.newLabel();
    pb.cmplt(RegT1, RegT0, RegT2);      // s > best?
    pb.beq(RegT2, l_skip1);
    pb.stq(RegT0, 32, RegSP);
    pb.mov(RegT0, RegT1);
    pb.bind(l_skip1);

    Label l_skip2 = pb.newLabel();
    pb.cmplt(RegS3, RegT1, RegT2);      // best > alpha?
    pb.beq(RegT2, l_skip2);
    pb.mov(RegT1, RegS3);
    pb.bind(l_skip2);

    pb.ldq(RegT4, 24, RegSP);           // beta
    pb.cmplt(RegS3, RegT4, RegT2);      // alpha < beta?
    pb.beq(RegT2, l_end);

    pb.ldq(RegT0, 40, RegSP);
    pb.addqi(RegT0, 1, RegT0);
    pb.stq(RegT0, 40, RegSP);
    pb.br(l_for);

    pb.bind(l_end);
    pb.ldq(RegV0, 32, RegSP);           // best
    fb.epilogueRet();

    // Leaf evaluation: ((state * HashMul) >> 56) - 128.
    pb.bind(l_leaf);
    pb.li(RegT5, HashMul);              // wide constant (uses $at)
    pb.mulq(RegA0, RegT5, RegT0);
    pb.srli(RegT0, 56, RegT0);
    pb.subqi(RegT0, LeafBias, RegT0);
    pb.andi(RegA0, 63, RegT1);
    pb.slli(RegT1, 3, RegT1);
    pb.li(RegT2, ptab_addr);
    pb.addq(RegT2, RegT1, RegT1);
    pb.ldq(RegT1, 0, RegT1);            // evaluation table entry
    pb.addq(RegT0, RegT1, RegV0);
    fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
