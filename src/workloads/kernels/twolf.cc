/**
 * @file
 * 300.twolf stand-in: simulated-annealing cell placement.
 *
 * Stack personality: a long optimization loop calling a small cost
 * helper twice per move — shallow, steady stack with the working set
 * (cell positions) in the heap.
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

constexpr std::uint64_t NumCells = 512;

/** Row-cost scratch in the driver's frame: 288 quadwords (2.3KB)
 *  of stack state swept every move — the wide region behind
 *  twolf's Table 3 stack-cache traffic. */
constexpr std::uint64_t ScratchLen = 256;

std::vector<std::uint64_t>
makeCells(const std::string &input)
{
    Rng rng(inputSeed("twolf", input));
    std::vector<std::uint64_t> cells(NumCells);
    for (auto &c : cells)
        c = rng.below(1 << 16);
    return cells;
}

/** Local cost of cell i: distance to both ring neighbours. */
std::uint64_t
cellCost(const std::vector<std::uint64_t> &cells, std::uint64_t i)
{
    std::uint64_t left = cells[(i + NumCells - 1) % NumCells];
    std::uint64_t right = cells[(i + 1) % NumCells];
    std::uint64_t me = cells[i];
    std::uint64_t dl = me > left ? me - left : left - me;
    std::uint64_t dr = me > right ? me - right : right - me;
    return dl + dr;
}

} // anonymous namespace

std::string
expectTwolf(const std::string &input, std::uint64_t scale)
{
    std::vector<std::uint64_t> cells = makeCells(input);
    std::vector<std::uint64_t> scratch(ScratchLen, 0);
    std::uint64_t lcg = inputSeed("twolf", input) | 1;
    std::uint64_t accepted = 0;
    for (std::uint64_t iter = 0; iter < scale; ++iter) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint64_t i = (lcg >> 33) % NumCells;
        std::uint64_t j = (lcg >> 13) % NumCells;
        std::uint64_t before = cellCost(cells, i) + cellCost(cells, j);
        std::swap(cells[i], cells[j]);
        std::uint64_t after = cellCost(cells, i) + cellCost(cells, j);
        if (after <= before) {
            ++accepted;
        } else {
            std::swap(cells[i], cells[j]);  // reject
        }
        scratch[(i ^ j) & (ScratchLen - 1)] += after;
    }
    std::uint64_t cs = 0;
    for (std::uint64_t c : cells)
        cs = cs * 31 + c;
    for (std::uint64_t v : scratch)
        cs = cs * 7 + v;
    return putintLine(cs) + putintLine(accepted);
}

isa::Program
buildTwolf(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    std::vector<std::uint64_t> cells = makeCells(input);
    std::uint64_t seed = inputSeed("twolf", input) | 1;

    ProgramBuilder pb("twolf." + input);
    Addr cells_addr = pb.allocHeapQuads(cells);

    Label l_main = pb.newLabel();
    Label l_cost = pb.newLabel();
    Label l_swap = pb.newLabel();

    // ---- main ----
    pb.bind(l_main);
    // Frame: slots 0..3 scratch temporaries, slots 4.. the 2KB
    // row-cost scratch array.
    FunctionBuilder main_fb(
        pb, FrameSpec{32 + ScratchLen * 8, true, false, false, {}});
    main_fb.prologue();

    // Zero the scratch array.
    pb.li(RegT0, 0);
    pb.li(RegT1, ScratchLen);
    Label l_zs = pb.here();
    pb.slli(RegT0, 3, RegT2);
    pb.addq(RegSP, RegT2, RegT2);
    pb.stq(RegZero, 32, RegT2);
    pb.addqi(RegT0, 1, RegT0);
    pb.cmplt(RegT0, RegT1, RegT2);
    pb.bne(RegT2, l_zs);

    pb.li(RegS0, 0);                    // iter
    pb.li(RegS1, seed);                 // lcg
    pb.li(RegS2, 0);                    // accepted
    pb.li(RegS3, cells_addr);
    pb.li(RegS6, scale);

    Label l_loop = pb.here();
    // lcg = lcg * M + C
    pb.li(RegT0, 6364136223846793005ULL);
    pb.mulq(RegS1, RegT0, RegS1);
    pb.li(RegT0, 1442695040888963407ULL);
    pb.addq(RegS1, RegT0, RegS1);
    pb.srli(RegS1, 33, RegT0);
    pb.li(RegT1, NumCells - 1);
    pb.and_(RegT0, RegT1, RegS4);       // i  (NumCells is a pow2)
    pb.srli(RegS1, 13, RegT0);
    pb.and_(RegT0, RegT1, RegS5);       // j

    // before = cost(i) + cost(j)
    pb.mov(RegS4, RegA0);
    pb.call(l_cost);
    pb.stq(RegV0, 0, RegSP);
    pb.mov(RegS5, RegA0);
    pb.call(l_cost);
    pb.ldq(RegT0, 0, RegSP);
    pb.addq(RegT0, RegV0, RegT0);
    pb.stq(RegT0, 8, RegSP);            // before

    pb.mov(RegS4, RegA0);
    pb.mov(RegS5, RegA1);
    pb.call(l_swap);

    pb.mov(RegS4, RegA0);
    pb.call(l_cost);
    pb.stq(RegV0, 16, RegSP);
    pb.mov(RegS5, RegA0);
    pb.call(l_cost);
    pb.ldq(RegT0, 16, RegSP);
    pb.addq(RegT0, RegV0, RegT0);       // after
    pb.stq(RegT0, 24, RegSP);           // keep across swap-back

    pb.ldq(RegT1, 8, RegSP);            // before
    Label l_accept = pb.newLabel();
    Label l_cont = pb.newLabel();
    pb.cmpule(RegT0, RegT1, RegT2);
    pb.bne(RegT2, l_accept);
    // Reject: swap back.
    pb.mov(RegS4, RegA0);
    pb.mov(RegS5, RegA1);
    pb.call(l_swap);
    pb.br(l_cont);
    pb.bind(l_accept);
    pb.addqi(RegS2, 1, RegS2);
    pb.bind(l_cont);

    // scratch[(i ^ j) & 255] += after: a wide $sp-relative RMW
    // whose offset sweeps the whole 2KB array.
    pb.ldq(RegT0, 24, RegSP);           // after (swap clobbers $t0)
    pb.xor_(RegS4, RegS5, RegT2);
    pb.andi(RegT2, ScratchLen - 1, RegT2);
    pb.slli(RegT2, 3, RegT2);
    pb.addq(RegSP, RegT2, RegT2);
    pb.ldq(RegT3, 32, RegT2);
    pb.addq(RegT3, RegT0, RegT3);
    pb.stq(RegT3, 32, RegT2);

    pb.addqi(RegS0, 1, RegS0);
    pb.cmplt(RegS0, RegS6, RegT0);
    pb.bne(RegT0, l_loop);

    // Final placement checksum.
    pb.li(RegT5, 0);                    // index
    pb.li(RegT6, 0);                    // checksum
    pb.li(RegT4, NumCells);
    Label l_cs = pb.here();
    pb.slli(RegT5, 3, RegT0);
    pb.addq(RegS3, RegT0, RegT0);
    pb.ldq(RegT1, 0, RegT0);
    pb.mulqi(RegT6, 31, RegT6);
    pb.addq(RegT6, RegT1, RegT6);
    pb.addqi(RegT5, 1, RegT5);
    pb.cmplt(RegT5, RegT4, RegT0);
    pb.bne(RegT0, l_cs);

    // Fold the scratch array into the checksum.
    pb.li(RegT5, 0);
    pb.li(RegT4, ScratchLen);
    Label l_cs2 = pb.here();
    pb.slli(RegT5, 3, RegT0);
    pb.addq(RegSP, RegT0, RegT0);
    pb.ldq(RegT1, 32, RegT0);
    pb.mulqi(RegT6, 7, RegT6);
    pb.addq(RegT6, RegT1, RegT6);
    pb.addqi(RegT5, 1, RegT5);
    pb.cmplt(RegT5, RegT4, RegT0);
    pb.bne(RegT0, l_cs2);

    pb.mov(RegT6, RegA0);
    pb.putint();
    pb.mov(RegS2, RegA0);
    pb.putint();
    pb.halt();

    // ---- cost(a0 = index) -> v0 ----
    pb.bind(l_cost);
    FunctionBuilder cost_fb(pb, FrameSpec{16, false, false, false, {}});
    cost_fb.prologue();
    pb.stq(RegA0, 0, RegSP);            // spill index

    pb.li(RegT4, cells_addr);
    pb.li(RegT3, NumCells - 1);         // pow2 ring mask

    // left = cells[(i + N - 1) & (N - 1)]
    pb.addq(RegA0, RegT3, RegT0);
    pb.and_(RegT0, RegT3, RegT0);
    pb.slli(RegT0, 3, RegT0);
    pb.addq(RegT4, RegT0, RegT0);
    pb.ldq(RegT2, 0, RegT0);

    // right = cells[(i + 1) & (N - 1)]
    pb.ldq(RegT0, 0, RegSP);            // reload index
    pb.addqi(RegT0, 1, RegT0);
    pb.and_(RegT0, RegT3, RegT0);
    pb.slli(RegT0, 3, RegT0);
    pb.addq(RegT4, RegT0, RegT0);
    pb.ldq(RegT5, 0, RegT0);

    // me = cells[i]
    pb.ldq(RegT0, 0, RegSP);
    pb.slli(RegT0, 3, RegT0);
    pb.addq(RegT4, RegT0, RegT0);
    pb.ldq(RegT6, 0, RegT0);

    // dl = |me - left| (unsigned)
    Label l_dl = pb.newLabel();
    Label l_dl2 = pb.newLabel();
    pb.cmpult(RegT2, RegT6, RegT7);     // left < me?
    pb.bne(RegT7, l_dl);
    pb.subq(RegT2, RegT6, RegT0);       // left - me
    pb.br(l_dl2);
    pb.bind(l_dl);
    pb.subq(RegT6, RegT2, RegT0);       // me - left
    pb.bind(l_dl2);

    // dr = |me - right|
    Label l_dr = pb.newLabel();
    Label l_dr2 = pb.newLabel();
    pb.cmpult(RegT5, RegT6, RegT7);
    pb.bne(RegT7, l_dr);
    pb.subq(RegT5, RegT6, RegT1);
    pb.br(l_dr2);
    pb.bind(l_dr);
    pb.subq(RegT6, RegT5, RegT1);
    pb.bind(l_dr2);

    pb.addq(RegT0, RegT1, RegV0);
    cost_fb.epilogueRet();

    // ---- swap(a0 = i, a1 = j) ----
    pb.bind(l_swap);
    FunctionBuilder swap_fb(pb, FrameSpec{16, false, false, false, {}});
    swap_fb.prologue();
    pb.slli(RegA0, 3, RegT0);
    pb.slli(RegA1, 3, RegT1);
    pb.li(RegT4, cells_addr);
    pb.addq(RegT4, RegT0, RegT0);
    pb.addq(RegT4, RegT1, RegT1);
    pb.ldq(RegT2, 0, RegT0);
    pb.ldq(RegT3, 0, RegT1);
    pb.stq(RegT3, 0, RegT0);
    pb.stq(RegT2, 0, RegT1);
    swap_fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
