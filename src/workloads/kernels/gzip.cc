/**
 * @file
 * 164.gzip stand-in: LZ77-style hash-chain matching.
 *
 * Stack personality: the compressor's working state lives in
 * registers and heap tables, so its stack footprint is one tiny,
 * endlessly reused frame — plenty of $sp references but essentially
 * zero fill/writeback traffic once warm, which is exactly what the
 * paper's Table 3 shows for gzip (hundreds of quadwords total).
 */

#include "workloads/registry.hh"

#include "base/random.hh"
#include "workloads/common.hh"

namespace svf::workloads
{

namespace
{

constexpr unsigned HashSize = 4096;
constexpr std::uint64_t NoPos = ~std::uint64_t(0);

std::vector<std::uint8_t>
makeInput(const std::string &input, std::uint64_t scale)
{
    Rng rng(inputSeed("gzip", input));
    std::vector<std::uint8_t> buf(scale + 8);
    unsigned alphabet = input == "log" ? 8
                      : input == "program" ? 32 : 64;
    for (size_t i = 0; i < buf.size(); ++i) {
        if (i >= 16 && rng.below(4) == 0) {
            // Replay an earlier window to create matches.
            std::uint64_t back = 4 + rng.below(12);
            buf[i] = buf[i - back];
        } else {
            buf[i] = static_cast<std::uint8_t>(rng.below(alphabet));
        }
    }
    return buf;
}

unsigned
hashAt(const std::vector<std::uint8_t> &buf, std::uint64_t pos)
{
    return (static_cast<unsigned>(buf[pos]) << 6 ^
            static_cast<unsigned>(buf[pos + 1]) << 3 ^
            static_cast<unsigned>(buf[pos + 2])) & (HashSize - 1);
}

} // anonymous namespace

std::string
expectGzip(const std::string &input, std::uint64_t scale)
{
    std::vector<std::uint8_t> buf = makeInput(input, scale);
    std::vector<std::uint64_t> head(HashSize, NoPos);

    std::uint64_t cs = 0;
    std::uint64_t matches = 0;
    for (std::uint64_t pos = 0; pos < scale; ++pos) {
        unsigned h = hashAt(buf, pos);
        std::uint64_t cand = head[h];
        head[h] = pos;
        std::uint64_t len = 0;
        if (cand != NoPos) {
            while (len < 8 && buf[cand + len] == buf[pos + len])
                ++len;
        }
        if (len >= 3) {
            ++matches;
            cs += len * 7 + (pos - cand);
        } else {
            cs = cs * 3 + buf[pos];
        }
    }
    return putintLine(cs) + putintLine(matches);
}

isa::Program
buildGzip(const std::string &input, std::uint64_t scale)
{
    using namespace isa;
    std::vector<std::uint8_t> buf = makeInput(input, scale);

    ProgramBuilder pb("gzip." + input);
    Addr buf_addr = allocHeapBytes(pb, buf);
    // head[] lives in the heap, initialized to NoPos.
    std::vector<std::uint64_t> head_init(HashSize, NoPos);
    Addr head_addr = pb.allocHeapQuads(head_init);

    Label l_main = pb.newLabel();
    Label l_hash = pb.newLabel();

    // ---- main ----
    pb.bind(l_main);
    FunctionBuilder main_fb(pb, FrameSpec{16, true, false, false, {}});
    main_fb.prologue();

    pb.li(RegS0, 0);                    // pos
    pb.li(RegS1, 0);                    // checksum
    pb.li(RegS2, 0);                    // matches
    pb.li(RegS3, buf_addr);
    pb.li(RegS4, head_addr);
    pb.li(RegS5, scale);

    Label l_loop = pb.here();
    pb.stq(RegS0, 0, RegSP);            // spill pos across the call
    pb.addq(RegS3, RegS0, RegA0);       // &buf[pos]
    pb.call(l_hash);                    // v0 = hash bucket index
    pb.ldq(RegS0, 0, RegSP);            // reload pos

    pb.slli(RegV0, 3, RegT0);
    pb.addq(RegS4, RegT0, RegT0);       // &head[h]
    pb.ldq(RegT1, 0, RegT0);            // cand
    pb.stq(RegS0, 0, RegT0);            // head[h] = pos

    // len = match length (cand == NoPos has all bits set; detect
    // via t1 + 1 == 0).
    pb.li(RegT6, 0);                    // len
    Label l_nomatch_scan = pb.newLabel();
    pb.addqi(RegT1, 1, RegT2);
    pb.beq(RegT2, l_nomatch_scan);

    Label l_scan = pb.here();
    Label l_scandone = pb.newLabel();
    pb.cmplti(RegT6, 8, RegT2);
    pb.beq(RegT2, l_scandone);
    pb.addq(RegS3, RegT1, RegT3);
    pb.addq(RegT3, RegT6, RegT3);
    pb.ldbu(RegT4, 0, RegT3);           // buf[cand + len]
    pb.addq(RegS3, RegS0, RegT3);
    pb.addq(RegT3, RegT6, RegT3);
    pb.ldbu(RegT5, 0, RegT3);           // buf[pos + len]
    pb.cmpeq(RegT4, RegT5, RegT2);
    pb.beq(RegT2, l_scandone);
    pb.addqi(RegT6, 1, RegT6);
    pb.br(l_scan);
    pb.bind(l_scandone);
    pb.bind(l_nomatch_scan);

    // len >= 3: match path, else literal path.
    Label l_literal = pb.newLabel();
    Label l_next = pb.newLabel();
    pb.cmplti(RegT6, 3, RegT2);
    pb.bne(RegT2, l_literal);
    pb.addqi(RegS2, 1, RegS2);
    pb.mulqi(RegT6, 7, RegT3);
    pb.subq(RegS0, RegT1, RegT4);       // pos - cand
    pb.addq(RegT3, RegT4, RegT3);
    pb.addq(RegS1, RegT3, RegS1);
    pb.br(l_next);

    pb.bind(l_literal);
    pb.addq(RegS3, RegS0, RegT3);
    pb.ldbu(RegT4, 0, RegT3);
    pb.mulqi(RegS1, 3, RegS1);
    pb.addq(RegS1, RegT4, RegS1);

    pb.bind(l_next);
    pb.addqi(RegS0, 1, RegS0);
    pb.cmplt(RegS0, RegS5, RegT0);
    pb.bne(RegT0, l_loop);

    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.mov(RegS2, RegA0);
    pb.putint();
    pb.halt();

    // ---- hash(a0 = &buf[pos]) -> v0 ----
    // Small leaf frame with a spill/reload pair: constant $sp
    // traffic, zero steady-state SVF traffic.
    pb.bind(l_hash);
    FunctionBuilder hash_fb(pb, FrameSpec{16, false, false, false, {}});
    hash_fb.prologue();
    pb.stq(RegA0, 0, RegSP);
    pb.ldbu(RegT0, 0, RegA0);
    pb.ldbu(RegT1, 1, RegA0);
    pb.ldq(RegT3, 0, RegSP);            // reload pointer
    pb.ldbu(RegT2, 2, RegT3);
    pb.slli(RegT0, 6, RegT0);
    pb.slli(RegT1, 3, RegT1);
    pb.xor_(RegT0, RegT1, RegT0);
    pb.xor_(RegT0, RegT2, RegT0);
    pb.li(RegT4, HashSize - 1);
    pb.and_(RegT0, RegT4, RegV0);
    hash_fb.epilogueRet();

    return pb.finish(l_main);
}

} // namespace svf::workloads
