#include "workloads/calibration.hh"

#include "sim/emulator.hh"
#include "sim/region.hh"

namespace svf::workloads
{

StackProfile
profileProgram(const isa::Program &prog, std::uint64_t max_insts,
               unsigned depth_samples)
{
    sim::Emulator emu(prog);
    StackProfile p;

    // Offset histogram in power-of-two byte buckets up to 2^24.
    constexpr unsigned OffsetBuckets = 25;
    std::vector<std::uint64_t> offset_hist(OffsetBuckets + 1, 0);
    double offset_sum = 0.0;

    std::uint64_t sample_every = max_insts / depth_samples;
    if (sample_every == 0)
        sample_every = 1;

    sim::ExecInfo info;
    while (p.insts < max_insts && emu.step(info)) {
        ++p.insts;

        if (info.spWritten || p.insts % sample_every == 0) {
            Addr sp = emu.reg(isa::RegSP);
            std::uint64_t depth =
                (isa::layout::StackBase - sp) / 8;
            if (depth > p.maxDepthWords)
                p.maxDepthWords = depth;
            if (p.insts % sample_every == 0)
                p.depthSamples.emplace_back(p.insts, depth);
        }

        if (!info.di->memRef)
            continue;
        ++p.memRefs;
        switch (sim::classify(info.ea)) {
          case sim::Region::Stack: {
            ++p.stackRefs;
            switch (sim::methodOf(info.di->rb)) {
              case sim::AccessMethod::Sp: ++p.stackSp; break;
              case sim::AccessMethod::Fp: ++p.stackFp; break;
              case sim::AccessMethod::Gpr: ++p.stackGpr; break;
            }
            Addr sp = emu.reg(isa::RegSP);
            if (info.ea < sp) {
                ++p.belowTos;
            } else {
                std::uint64_t off = info.ea - sp;
                offset_sum += static_cast<double>(off);
                unsigned b = 0;
                while ((std::uint64_t(1) << b) < off + 1 &&
                       b < OffsetBuckets) {
                    ++b;
                }
                ++offset_hist[b];
            }
            break;
          }
          case sim::Region::Global: ++p.globalRefs; break;
          case sim::Region::Heap: ++p.heapRefs; break;
          default: ++p.otherRefs; break;
        }
    }

    std::uint64_t on_stack = p.stackRefs - p.belowTos;
    if (on_stack > 0) {
        p.avgOffsetBytes = offset_sum / static_cast<double>(on_stack);
        std::uint64_t acc = 0;
        p.offsetCdf.resize(OffsetBuckets + 1, 0.0);
        std::uint64_t w256 = 0;
        std::uint64_t w8k = 0;
        for (unsigned b = 0; b <= OffsetBuckets; ++b) {
            acc += offset_hist[b];
            p.offsetCdf[b] =
                static_cast<double>(acc) / static_cast<double>(on_stack);
            if ((std::uint64_t(1) << b) <= 256)
                w256 = acc;
            if ((std::uint64_t(1) << b) <= 8192)
                w8k = acc;
        }
        p.within256 = static_cast<double>(w256) /
            static_cast<double>(on_stack);
        p.within8k = static_cast<double>(w8k) /
            static_cast<double>(on_stack);
    }
    return p;
}

} // namespace svf::workloads
