/**
 * @file
 * The SPECint2000 stand-in workload registry (Table 1 of the paper).
 *
 * Each workload is a real SVA program (it computes something and
 * prints a result that a C++ golden model reproduces) written to
 * mimic the stack personality the paper reports for the
 * corresponding SPECint2000 benchmark: stack reference fraction,
 * addressing-method mix, call depth, frame size and offset locality.
 */

#ifndef SVF_WORKLOADS_REGISTRY_HH
#define SVF_WORKLOADS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace svf::workloads
{

/** Description of one benchmark and its inputs. */
struct WorkloadSpec
{
    /** Short name ("bzip2"). */
    std::string name;

    /** The SPEC CPU2000 benchmark it stands in for ("256.bzip2"). */
    std::string paperName;

    /** Input data sets (Table 1), e.g. {"graphic", "program"}. */
    std::vector<std::string> inputs;

    /**
     * Build the program.
     *
     * @param input one of inputs.
     * @param scale work-size knob; the default (see defaultScale)
     *        yields roughly 0.5-2M dynamic instructions.
     */
    isa::Program (*build)(const std::string &input,
                          std::uint64_t scale);

    /**
     * Golden model: the exact output the program must print.
     * Computed host-side with the same algorithm, making every
     * simulator run self-checking.
     */
    std::string (*expected)(const std::string &input,
                            std::uint64_t scale);

    /** Scale that gives a bench-sized run. */
    std::uint64_t defaultScale;

    /** Scale small enough for unit tests (full run in < ~200k
     *  instructions). */
    std::uint64_t testScale;
};

/** All twelve workloads, in the paper's Table 1 order. */
const std::vector<WorkloadSpec> &allWorkloads();

/** Lookup by short name; fatal() on unknown names. */
const WorkloadSpec &workload(const std::string &name);

/**
 * Non-fatal lookup; null on unknown names. The serve layer
 * validates wire requests with this so a bad workload name becomes
 * a protocol error event instead of daemon death.
 */
const WorkloadSpec *findWorkload(const std::string &name);

/** @name Per-benchmark builders and golden models */
/// @{
isa::Program buildBzip2(const std::string &input, std::uint64_t scale);
std::string expectBzip2(const std::string &input, std::uint64_t scale);

isa::Program buildCrafty(const std::string &input, std::uint64_t scale);
std::string expectCrafty(const std::string &input,
                         std::uint64_t scale);

isa::Program buildEon(const std::string &input, std::uint64_t scale);
std::string expectEon(const std::string &input, std::uint64_t scale);

isa::Program buildGap(const std::string &input, std::uint64_t scale);
std::string expectGap(const std::string &input, std::uint64_t scale);

isa::Program buildGcc(const std::string &input, std::uint64_t scale);
std::string expectGcc(const std::string &input, std::uint64_t scale);

isa::Program buildGzip(const std::string &input, std::uint64_t scale);
std::string expectGzip(const std::string &input, std::uint64_t scale);

isa::Program buildMcf(const std::string &input, std::uint64_t scale);
std::string expectMcf(const std::string &input, std::uint64_t scale);

isa::Program buildParser(const std::string &input, std::uint64_t scale);
std::string expectParser(const std::string &input,
                         std::uint64_t scale);

isa::Program buildPerlbmk(const std::string &input,
                          std::uint64_t scale);
std::string expectPerlbmk(const std::string &input,
                          std::uint64_t scale);

isa::Program buildTwolf(const std::string &input, std::uint64_t scale);
std::string expectTwolf(const std::string &input, std::uint64_t scale);

isa::Program buildVortex(const std::string &input, std::uint64_t scale);
std::string expectVortex(const std::string &input,
                         std::uint64_t scale);

isa::Program buildVpr(const std::string &input, std::uint64_t scale);
std::string expectVpr(const std::string &input, std::uint64_t scale);
/// @}

} // namespace svf::workloads

#endif // SVF_WORKLOADS_REGISTRY_HH
