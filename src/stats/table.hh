/**
 * @file
 * Text table rendering for paper-style result tables.
 */

#ifndef SVF_STATS_TABLE_HH
#define SVF_STATS_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace svf::stats
{

/**
 * A simple column-aligned text table.
 *
 * Every bench binary renders its paper table/figure series through
 * this class so output formatting is uniform and CSV export is free.
 */
class Table
{
  public:
    /** @param headers column titles, fixing the column count. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it. */
    void addRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &v);

    /** Append an unsigned integer cell. */
    void cell(std::uint64_t v);

    /** Append a floating-point cell rendered with @p prec digits. */
    void cell(double v, int prec = 3);

    /**
     * @name Pre-sized random-access assembly
     *
     * For parallel result assembly: pre-size the body, then fill
     * cells by (row, column) index. Writes to *distinct rows* are
     * data-race free (each row is an independent vector resized up
     * front), so worker threads may fill their own rows without a
     * lock; writes to the same row still need external ordering.
     */
    /// @{
    /** Grow the body to @p n rows of empty cells. */
    void resizeRows(size_t n);

    /** Set one cell of a pre-sized row. */
    void setCell(size_t row, size_t col, const std::string &v);
    void setCell(size_t row, size_t col, std::uint64_t v);
    void setCell(size_t row, size_t col, double v, int prec = 3);
    /// @}

    /** Number of complete data rows. */
    size_t rows() const { return body.size(); }

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV to @p os. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

} // namespace svf::stats

#endif // SVF_STATS_TABLE_HH
