/**
 * @file
 * Lightweight statistics primitives in the spirit of gem5's stats
 * package: named counters, scalar formulas and distributions that
 * register themselves with a Group and can be dumped as text.
 */

#ifndef SVF_STATS_STATS_HH
#define SVF_STATS_STATS_HH

#include <cstdint>
#include <string>

namespace svf::stats
{

class Group;

/** Base class carrying the name/description of one statistic. */
class Info
{
  public:
    /**
     * Register a statistic with @p parent.
     *
     * @param parent owning group (may be nullptr for a free-standing
     *               statistic used in tests).
     * @param name dotted statistic name, unique within the group.
     * @param desc one-line human-readable description.
     */
    Info(Group *parent, std::string name, std::string desc);
    virtual ~Info() = default;

    Info(const Info &) = delete;
    Info &operator=(const Info &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Render the value(s) for a stats dump. */
    virtual std::string render() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A monotonically increasing event counter. */
class Counter : public Info
{
  public:
    using Info::Info;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

    std::uint64_t value() const { return _value; }

    std::string render() const override;
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** A settable scalar (e.g. a final IPC value). */
class Scalar : public Info
{
  public:
    using Info::Info;

    Scalar &operator=(double v) { _value = v; return *this; }
    double value() const { return _value; }

    std::string render() const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

} // namespace svf::stats

#endif // SVF_STATS_STATS_HH
