/**
 * @file
 * Statistic registration group.
 */

#ifndef SVF_STATS_GROUP_HH
#define SVF_STATS_GROUP_HH

#include <ostream>
#include <string>
#include <vector>

namespace svf::stats
{

class Info;

/**
 * Owns the registration list for a set of statistics.
 *
 * Simulator components embed a Group and declare their statistics as
 * members constructed with the group as parent; dump() then renders
 * every registered statistic in declaration order.
 */
class Group
{
  public:
    /** @param prefix name prefix prepended to each statistic name. */
    explicit Group(std::string prefix = "");

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Called by Info's constructor; not for direct use. */
    void add(Info *info);

    /** Render "prefix.name  value  # desc" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Reset every registered statistic. */
    void resetAll();

    const std::string &prefix() const { return _prefix; }
    const std::vector<Info *> &infos() const { return _infos; }

  private:
    std::string _prefix;
    std::vector<Info *> _infos;
};

} // namespace svf::stats

#endif // SVF_STATS_GROUP_HH
