#include "stats/distribution.hh"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace svf::stats
{

void
Distribution::sample(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    sum += v;
    sumSq += v * v;
}

double
Distribution::min() const
{
    return n ? lo : 0.0;
}

double
Distribution::max() const
{
    return n ? hi : 0.0;
}

double
Distribution::mean() const
{
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
Distribution::stddev() const
{
    if (n < 2)
        return 0.0;
    double m = mean();
    double var = sumSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::string
Distribution::render() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu min=%.4g max=%.4g mean=%.4g sd=%.4g",
                  static_cast<unsigned long long>(n), min(), max(),
                  mean(), stddev());
    return buf;
}

void
Distribution::reset()
{
    n = 0;
    lo = hi = sum = sumSq = 0.0;
}

Log2Histogram::Log2Histogram(Group *parent, std::string name,
                             std::string desc, unsigned nbuckets)
    : Info(parent, std::move(name), std::move(desc)),
      bins(nbuckets ? nbuckets : 1, 0)
{
}

unsigned
Log2Histogram::bucketOf(std::uint64_t v) const
{
    if (v == 0)
        return 0;
    unsigned b = 1;
    std::uint64_t bound = 1;
    while (v > bound && b + 1 < bins.size()) {
        bound <<= 1;
        ++b;
    }
    // Bucket b holds (2^(b-2), 2^(b-1)] for b >= 2; bucket 1 holds {1}.
    return v > bound ? static_cast<unsigned>(bins.size() - 1) : b;
}

void
Log2Histogram::sample(std::uint64_t v)
{
    ++bins[bucketOf(v)];
    ++total;
}

double
Log2Histogram::cumulativeAt(std::uint64_t v) const
{
    if (total == 0)
        return 0.0;
    unsigned b = bucketOf(v);
    std::uint64_t acc = 0;
    for (unsigned i = 0; i <= b; ++i)
        acc += bins[i];
    return static_cast<double>(acc) / static_cast<double>(total);
}

std::string
Log2Histogram::render() const
{
    std::ostringstream os;
    os << "n=" << total << " [";
    bool first = true;
    for (size_t i = 0; i < bins.size(); ++i) {
        if (bins[i] == 0)
            continue;
        if (!first)
            os << " ";
        first = false;
        os << i << ":" << bins[i];
    }
    os << "]";
    return os.str();
}

void
Log2Histogram::reset()
{
    for (auto &b : bins)
        b = 0;
    total = 0;
}

} // namespace svf::stats
