#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "base/logging.hh"

namespace svf::stats
{

Table::Table(std::vector<std::string> headers) : head(std::move(headers))
{
    svf_assert(!head.empty());
}

void
Table::addRow()
{
    if (!body.empty() && body.back().size() != head.size()) {
        panic("table row has %zu cells, expected %zu",
              body.back().size(), head.size());
    }
    body.emplace_back();
}

void
Table::cell(const std::string &v)
{
    svf_assert(!body.empty());
    svf_assert(body.back().size() < head.size());
    body.back().push_back(v);
}

void
Table::cell(std::uint64_t v)
{
    cell(std::to_string(v));
}

void
Table::cell(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    cell(std::string(buf));
}

void
Table::resizeRows(size_t n)
{
    if (!body.empty() && body.back().size() != head.size()) {
        panic("table row has %zu cells, expected %zu",
              body.back().size(), head.size());
    }
    size_t old = body.size();
    body.resize(n);
    for (size_t r = old; r < n; ++r)
        body[r].assign(head.size(), std::string());
}

void
Table::setCell(size_t row, size_t col, const std::string &v)
{
    svf_assert(row < body.size());
    svf_assert(col < body[row].size());
    body[row][col] = v;
}

void
Table::setCell(size_t row, size_t col, std::uint64_t v)
{
    setCell(row, col, std::to_string(v));
}

void
Table::setCell(size_t row, size_t col, double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    setCell(row, col, std::string(buf));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(head.size());
    for (size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : body) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < head.size(); ++c) {
            std::string v = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << v;
            if (c + 1 < head.size())
                os << "  ";
        }
        os << "\n";
    };

    line(head);
    size_t total = head.size() > 0 ? (head.size() - 1) * 2 : 0;
    for (size_t w : widths)
        total += w;
    os << std::string(total, '-') << "\n";
    for (const auto &row : body)
        line(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    line(head);
    for (const auto &row : body)
        line(row);
}

} // namespace svf::stats
