#include "stats/group.hh"

#include <iomanip>

#include "stats/stats.hh"

namespace svf::stats
{

Info::Info(Group *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent)
        parent->add(this);
}

std::string
Counter::render() const
{
    return std::to_string(_value);
}

std::string
Scalar::render() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", _value);
    return buf;
}

Group::Group(std::string prefix) : _prefix(std::move(prefix))
{
}

void
Group::add(Info *info)
{
    _infos.push_back(info);
}

void
Group::dump(std::ostream &os) const
{
    for (const Info *info : _infos) {
        std::string full = _prefix.empty()
            ? info->name() : _prefix + "." + info->name();
        os << std::left << std::setw(40) << full
           << " " << std::setw(16) << info->render()
           << " # " << info->desc() << "\n";
    }
}

void
Group::resetAll()
{
    for (Info *info : _infos)
        info->reset();
}

} // namespace svf::stats
