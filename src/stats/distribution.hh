/**
 * @file
 * Sample distributions and log-scale histograms.
 */

#ifndef SVF_STATS_DISTRIBUTION_HH
#define SVF_STATS_DISTRIBUTION_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"

namespace svf::stats
{

/**
 * Accumulates samples and reports count/min/max/mean/stddev.
 *
 * Used for quantities like stack depth and reference offset where the
 * paper reports averages and extreme values.
 */
class Distribution : public Info
{
  public:
    using Info::Info;

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return n; }
    double min() const;
    double max() const;
    double mean() const;
    double stddev() const;

    std::string render() const override;
    void reset() override;

  private:
    std::uint64_t n = 0;
    double lo = 0.0;
    double hi = 0.0;
    double sum = 0.0;
    double sumSq = 0.0;
};

/**
 * Histogram over power-of-two buckets of a nonnegative quantity,
 * supporting the cumulative-fraction queries behind Figure 3's
 * offset-locality CDF (log10 x-axis in the paper; log2 buckets here
 * give the same shape at finer resolution).
 */
class Log2Histogram : public Info
{
  public:
    /**
     * @param parent owning stats group (may be nullptr).
     * @param name statistic name.
     * @param desc statistic description.
     * @param nbuckets bucket count; bucket 0 holds zero, bucket 1
     *        holds one, bucket b >= 2 holds (2^(b-2), 2^(b-1)], and
     *        the last bucket also absorbs any overflow.
     */
    Log2Histogram(Group *parent, std::string name, std::string desc,
                  unsigned nbuckets = 32);

    /** Record one sample. */
    void sample(std::uint64_t v);

    std::uint64_t count() const { return total; }

    /** Fraction of samples <= @p v (exact on bucket boundaries). */
    double cumulativeAt(std::uint64_t v) const;

    /** Raw bucket counts (see constructor for bucket semantics). */
    const std::vector<std::uint64_t> &buckets() const { return bins; }

    std::string render() const override;
    void reset() override;

  private:
    unsigned bucketOf(std::uint64_t v) const;

    std::vector<std::uint64_t> bins;
    std::uint64_t total = 0;
};

} // namespace svf::stats

#endif // SVF_STATS_DISTRIBUTION_HH
