#include "ckpt/result_cache.hh"

#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "base/logging.hh"
#include "ckpt/sampler.hh"
#include "ckpt/serialize.hh"

namespace svf::ckpt
{

namespace
{

constexpr char Magic[8] = {'S', 'V', 'F', 'R', 'E', 'S', '0', '\0'};

/** @name Per-type payload serializers
 *
 * Field order is the contract: append new fields at the end and
 * bump ResultCache::FormatVersion on any change. Every integer goes
 * through the little-endian ByteWriter, never memcpy.
 */
/// @{

void
putCoreStats(ByteWriter &w, const uarch::CoreStats &s)
{
    for (const CoreCounter &c : coreCounters())
        w.u64(s.*(c.field));
}

void
getCoreStats(ByteReader &r, uarch::CoreStats &s)
{
    for (const CoreCounter &c : coreCounters())
        s.*(c.field) = r.u64();
}

void
putRunFlat(ByteWriter &w, const harness::RunResult &res)
{
    putCoreStats(w, res.core);
    w.u64(res.svfQuadsIn);
    w.u64(res.svfQuadsOut);
    w.u64(res.svfFastLoads);
    w.u64(res.svfFastStores);
    w.u64(res.svfReroutedLoads);
    w.u64(res.svfReroutedStores);
    w.u64(res.svfWindowMisses);
    w.u64(res.svfDemandFills);
    w.u64(res.svfDisableEpisodes);
    w.u64(res.svfRefsWhileDisabled);
    w.u64(res.scQuadsIn);
    w.u64(res.scQuadsOut);
    w.u64(res.scHits);
    w.u64(res.scMisses);
    w.u64(res.dl1Hits);
    w.u64(res.dl1Misses);
    w.u64(res.l2Hits);
    w.u64(res.l2Misses);
    w.str(res.output);
    w.u8(res.outputOk ? 1 : 0);
    w.u8(res.completed ? 1 : 0);

    const SampleEstimate &e = res.sampled;
    w.u64(e.intervals);
    w.u64(e.totalInsts);
    w.u64(e.ffInsts);
    w.u64(e.warmupInsts);
    w.u64(e.sampledInsts);
    w.u64(e.sampledCycles);
    w.u64(e.estimatedCycles);
    w.d64(e.ipcMean);
    w.d64(e.ipcStddev);
    w.u64(e.counterVariance.size());
    for (double v : e.counterVariance)
        w.d64(v);
}

/** putRunFlat plus the v2 per-core groups (one nesting level). */
void
putRun(ByteWriter &w, const harness::RunResult &res)
{
    putRunFlat(w, res);
    w.u64(res.perCore.size());
    for (const harness::RunResult &g : res.perCore) {
        w.str(g.label);
        putRunFlat(w, g);
    }
}

void
getRunFlat(ByteReader &r, harness::RunResult &res)
{
    getCoreStats(r, res.core);
    res.svfQuadsIn = r.u64();
    res.svfQuadsOut = r.u64();
    res.svfFastLoads = r.u64();
    res.svfFastStores = r.u64();
    res.svfReroutedLoads = r.u64();
    res.svfReroutedStores = r.u64();
    res.svfWindowMisses = r.u64();
    res.svfDemandFills = r.u64();
    res.svfDisableEpisodes = r.u64();
    res.svfRefsWhileDisabled = r.u64();
    res.scQuadsIn = r.u64();
    res.scQuadsOut = r.u64();
    res.scHits = r.u64();
    res.scMisses = r.u64();
    res.dl1Hits = r.u64();
    res.dl1Misses = r.u64();
    res.l2Hits = r.u64();
    res.l2Misses = r.u64();
    res.output = r.str();
    res.outputOk = r.u8() != 0;
    res.completed = r.u8() != 0;

    SampleEstimate &e = res.sampled;
    e.intervals = r.u64();
    e.totalInsts = r.u64();
    e.ffInsts = r.u64();
    e.warmupInsts = r.u64();
    e.sampledInsts = r.u64();
    e.sampledCycles = r.u64();
    e.estimatedCycles = r.u64();
    e.ipcMean = r.d64();
    e.ipcStddev = r.d64();
    std::uint64_t nvar = r.u64();
    e.counterVariance.clear();
    for (std::uint64_t i = 0; i < nvar && r.ok(); ++i)
        e.counterVariance.push_back(r.d64());
}

void
getRun(ByteReader &r, harness::RunResult &res)
{
    getRunFlat(r, res);
    std::uint64_t ngroups = r.u64();
    res.perCore.clear();
    for (std::uint64_t i = 0; i < ngroups && r.ok(); ++i) {
        harness::RunResult g;
        g.label = r.str();
        getRunFlat(r, g);
        res.perCore.push_back(std::move(g));
    }
}

void
putTraffic(ByteWriter &w, const harness::TrafficResult &res)
{
    w.u64(res.insts);
    w.u64(res.svfQuadsIn);
    w.u64(res.svfQuadsOut);
    w.u64(res.scQuadsIn);
    w.u64(res.scQuadsOut);
    w.u64(res.ctxSwitches);
    w.u64(res.svfCtxBytes);
    w.u64(res.scCtxBytes);
}

void
getTraffic(ByteReader &r, harness::TrafficResult &res)
{
    res.insts = r.u64();
    res.svfQuadsIn = r.u64();
    res.svfQuadsOut = r.u64();
    res.scQuadsIn = r.u64();
    res.scQuadsOut = r.u64();
    res.ctxSwitches = r.u64();
    res.svfCtxBytes = r.u64();
    res.scCtxBytes = r.u64();
}

void
putProfile(ByteWriter &w, const workloads::StackProfile &p)
{
    w.u64(p.insts);
    w.u64(p.memRefs);
    w.u64(p.stackRefs);
    w.u64(p.globalRefs);
    w.u64(p.heapRefs);
    w.u64(p.otherRefs);
    w.u64(p.stackSp);
    w.u64(p.stackFp);
    w.u64(p.stackGpr);
    w.u64(p.maxDepthWords);
    w.u64(p.depthSamples.size());
    for (const auto &s : p.depthSamples) {
        w.u64(s.first);
        w.u64(s.second);
    }
    w.d64(p.avgOffsetBytes);
    w.d64(p.within8k);
    w.d64(p.within256);
    w.u64(p.belowTos);
    w.u64(p.offsetCdf.size());
    for (double v : p.offsetCdf)
        w.d64(v);
}

void
getProfile(ByteReader &r, workloads::StackProfile &p)
{
    p.insts = r.u64();
    p.memRefs = r.u64();
    p.stackRefs = r.u64();
    p.globalRefs = r.u64();
    p.heapRefs = r.u64();
    p.otherRefs = r.u64();
    p.stackSp = r.u64();
    p.stackFp = r.u64();
    p.stackGpr = r.u64();
    p.maxDepthWords = r.u64();
    std::uint64_t nsamp = r.u64();
    p.depthSamples.clear();
    for (std::uint64_t i = 0; i < nsamp && r.ok(); ++i) {
        std::uint64_t a = r.u64();
        std::uint64_t b = r.u64();
        p.depthSamples.emplace_back(a, b);
    }
    p.avgOffsetBytes = r.d64();
    p.within8k = r.d64();
    p.within256 = r.d64();
    p.belowTos = r.u64();
    std::uint64_t ncdf = r.u64();
    p.offsetCdf.clear();
    for (std::uint64_t i = 0; i < ncdf && r.ok(); ++i)
        p.offsetCdf.push_back(r.d64());
}

/// @}

constexpr std::uint8_t KindRun = 0;
constexpr std::uint8_t KindTraffic = 1;
constexpr std::uint8_t KindProfile = 2;

/**
 * Advisory per-key flock guard (`<key>.res.lock`): shared for reads,
 * exclusive for writes. Writes are already atomic (unique temp +
 * rename), so same-process races cannot tear an entry; the lock is
 * for *shared-owner* directories — a daemon and standalone CLIs
 * pointed at one cache=DIR — where it serializes whole read/write
 * cycles across processes, including filesystems whose rename is
 * less atomic than POSIX promises. Closing the fd releases the lock;
 * acquisition failure degrades to the unlocked (still rename-safe)
 * behaviour rather than failing the cache op.
 */
class FileLock
{
  public:
    FileLock(const std::string &path, bool exclusive)
    {
        fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (fd >= 0 &&
            ::flock(fd, exclusive ? LOCK_EX : LOCK_SH) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~FileLock()
    {
        if (fd >= 0)
            ::close(fd);
    }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    int fd = -1;
};

} // anonymous namespace

std::vector<std::uint8_t>
encodeValue(const CachedValue &value)
{
    ByteWriter w;
    if (const auto *run = std::get_if<harness::RunResult>(&value)) {
        w.u8(KindRun);
        putRun(w, *run);
    } else if (const auto *traffic =
                   std::get_if<harness::TrafficResult>(&value)) {
        w.u8(KindTraffic);
        putTraffic(w, *traffic);
    } else {
        w.u8(KindProfile);
        putProfile(w, std::get<workloads::StackProfile>(value));
    }
    return w.data();
}

bool
decodeValue(const std::uint8_t *data, std::size_t len,
            CachedValue &out)
{
    ByteReader r(data, len);
    std::uint8_t kind = r.u8();
    if (kind == KindRun) {
        harness::RunResult res;
        getRun(r, res);
        out = std::move(res);
    } else if (kind == KindTraffic) {
        harness::TrafficResult res;
        getTraffic(r, res);
        out = res;
    } else if (kind == KindProfile) {
        workloads::StackProfile p;
        getProfile(r, p);
        out = std::move(p);
    } else {
        return false;
    }
    return r.ok() && r.remaining() == 0;
}

bool
decodeValue(const std::vector<std::uint8_t> &bytes, CachedValue &out)
{
    return decodeValue(bytes.data(), bytes.size(), out);
}

ResultCache::ResultCache(std::string dir) : _dir(std::move(dir))
{
    if (enabled() && !ensureDir(_dir)) {
        warn("cannot create result-cache directory '%s'; disk "
             "cache disabled", _dir.c_str());
        _dir.clear();
    }
}

std::string
ResultCache::path(std::uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.res",
                  (unsigned long long)key);
    return _dir + "/" + name;
}

bool
ResultCache::store(std::uint64_t key, const CachedValue &value) const
{
    if (!enabled())
        return false;

    ByteWriter body;
    body.u64(key);
    std::vector<std::uint8_t> payload = encodeValue(value);
    body.bytes(payload.data(), payload.size());

    ByteWriter out;
    out.bytes(reinterpret_cast<const std::uint8_t *>(Magic),
              sizeof(Magic));
    out.u32(FormatVersion);
    out.bytes(body.data().data(), body.data().size());
    out.u64(fnv1a(body.data().data(), body.data().size()));
    FileLock guard(path(key) + ".lock", /*exclusive=*/true);
    if (!writeFileAtomic(path(key), out.data())) {
        warn("cannot persist result %016llx to '%s'",
             (unsigned long long)key, _dir.c_str());
        return false;
    }
    return true;
}

bool
ResultCache::load(std::uint64_t key, CachedValue &out) const
{
    if (!enabled())
        return false;
    std::string file = path(key);
    FileLock guard(file + ".lock", /*exclusive=*/false);
    std::vector<std::uint8_t> bytes;
    if (!readFile(file, bytes))
        return false;

    ByteReader r(bytes);
    char magic[8] = {};
    if (!r.bytes(reinterpret_cast<std::uint8_t *>(magic),
                 sizeof(magic)) ||
        std::memcmp(magic, Magic, sizeof(Magic)) != 0) {
        warn("ignoring cached result '%s': bad magic", file.c_str());
        return false;
    }
    if (r.u32() != FormatVersion)
        return false;       // other version: silently regenerate
    if (r.remaining() < 8) {
        warn("ignoring cached result '%s': truncated", file.c_str());
        return false;
    }
    const std::uint8_t *body = bytes.data() + sizeof(Magic) + 4;
    std::size_t body_len = r.remaining() - 8;
    if (body_len < 9) {     // key + kind byte at minimum
        warn("ignoring cached result '%s': truncated body",
             file.c_str());
        return false;
    }
    if (fnv1a(body, body_len) !=
        ByteReader(body + body_len, 8).u64()) {
        warn("ignoring cached result '%s': digest mismatch",
             file.c_str());
        return false;
    }

    if (r.u64() != key) {
        warn("ignoring cached result '%s': key mismatch",
             file.c_str());
        return false;
    }
    if (!decodeValue(body + 8, body_len - 8, out)) {
        warn("ignoring cached result '%s': malformed payload",
             file.c_str());
        return false;
    }
    return true;
}

} // namespace svf::ckpt
