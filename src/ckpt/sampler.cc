#include "ckpt/sampler.hh"

#include <cmath>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "harness/counters.hh"
#include "sim/emulator.hh"

namespace svf::ckpt
{

SamplePlan
SamplePlan::parse(const std::string &spec)
{
    SamplePlan plan;
    if (spec.empty())
        return plan;
    std::vector<std::string> parts = split(spec, ',');
    if (parts.size() < 3 || parts.size() > 5) {
        fatal("bad sample spec '%s': expected K,W,D with optional "
              ",warm/,pwarm and ,adapt flags", spec.c_str());
    }
    std::uint64_t vals[3] = {};
    for (int i = 0; i < 3; ++i) {
        if (!parseUint(parts[i], vals[i])) {
            fatal("bad sample spec '%s': '%s' is not an unsigned "
                  "integer", spec.c_str(), parts[i].c_str());
        }
    }
    plan.intervals = vals[0];
    plan.warmupInsts = vals[1];
    plan.detailedInsts = vals[2];
    for (std::size_t i = 3; i < parts.size(); ++i) {
        if (parts[i] == "warm" && !plan.parallelWarm &&
            !plan.functionalWarm) {
            plan.functionalWarm = true;
        } else if (parts[i] == "pwarm" && !plan.functionalWarm &&
                   !plan.parallelWarm) {
            plan.parallelWarm = true;
        } else if (parts[i] == "adapt" && !plan.adaptive) {
            plan.adaptive = true;
        } else {
            fatal("bad sample spec '%s': trailing field '%s' must be "
                  "'warm', 'pwarm' or 'adapt' (each at most once, "
                  "warm and pwarm mutually exclusive)",
                  spec.c_str(), parts[i].c_str());
        }
    }
    if (plan.intervals > 0 && plan.detailedInsts == 0) {
        fatal("bad sample spec '%s': detailed window D must be "
              "positive", spec.c_str());
    }
    return plan;
}

std::string
SamplePlan::str() const
{
    std::string s = std::to_string(intervals) + "," +
                    std::to_string(warmupInsts) + "," +
                    std::to_string(detailedInsts);
    if (functionalWarm)
        s += ",warm";
    if (parallelWarm)
        s += ",pwarm";
    if (adaptive)
        s += ",adapt";
    return s;
}

std::uint64_t
SamplePlan::key(std::uint64_t seed) const
{
    seed = hashCombine(seed, intervals);
    seed = hashCombine(seed, warmupInsts);
    seed = hashCombine(seed, detailedInsts);
    seed = hashCombine(seed, std::uint64_t(functionalWarm));
    // Folded only when set so pre-existing plan keys stay valid.
    if (parallelWarm)
        seed = hashCombine(seed, std::uint64_t(2));
    if (adaptive)
        seed = hashCombine(seed, std::uint64_t(3));
    return seed;
}

const std::vector<CoreCounter> &
coreCounters()
{
    // The CoreStats-backed subsequence of the harness counter
    // registry, in registry order. This order is the result cache's
    // on-disk serialization order (ResultCache::FormatVersion 4 —
    // deriving the table retired the hand-written copy, whose order
    // differed, hence the bump). The registry name strings outlive
    // the process (function-local static deque), so borrowing the
    // c_str() is safe.
    static const std::vector<CoreCounter> counters = [] {
        std::vector<CoreCounter> t;
        for (const harness::CounterDef *d : harness::runCounters())
            if (d->fromCoreStats())
                t.push_back({d->name().c_str(), d->coreField()});
        return t;
    }();
    return counters;
}

CoreStatsAccum::CoreStatsAccum()
    : sums(coreCounters().size(), 0),
      sumSquares(coreCounters().size(), 0.0)
{}

void
CoreStatsAccum::add(const uarch::CoreStats &delta)
{
    const auto &counters = coreCounters();
    for (std::size_t i = 0; i < counters.size(); ++i) {
        std::uint64_t v = delta.*(counters[i].field);
        sums[i] += v;
        sumSquares[i] += double(v) * double(v);
    }
    ++n;
}

std::uint64_t
CoreStatsAccum::sum(std::size_t i) const
{
    return sums.at(i);
}

double
CoreStatsAccum::mean(std::size_t i) const
{
    return n ? double(sums.at(i)) / double(n) : 0.0;
}

double
CoreStatsAccum::variance(std::size_t i) const
{
    if (n == 0)
        return 0.0;
    double m = mean(i);
    double v = sumSquares.at(i) / double(n) - m * m;
    return v > 0.0 ? v : 0.0;    // clamp the -epsilon cancellation
}

uarch::CoreStats
CoreStatsAccum::total() const
{
    uarch::CoreStats s;
    const auto &counters = coreCounters();
    for (std::size_t i = 0; i < counters.size(); ++i)
        s.*(counters[i].field) = sums[i];
    return s;
}

Sampler::Sampler(const SamplePlan &p, std::uint64_t b)
    : plan(p), budget(b)
{
    svf_assert(plan.enabled());
    chunk = budget / plan.intervals;
    if (chunk == 0)
        chunk = plan.warmupInsts + plan.detailedInsts;
}

Sampler::Interval
Sampler::interval(std::uint64_t i) const
{
    svf_assert(i < plan.intervals);
    Interval out;
    std::uint64_t start = i * chunk;
    std::uint64_t detail_len = plan.warmupInsts + plan.detailedInsts;
    if (chunk > detail_len) {
        out.ffTarget = start + (chunk - detail_len);
        out.warmup = plan.warmupInsts;
        out.detailed = plan.detailedInsts;
    } else {
        // The chunk is all detail: no fast-forward, and warmup
        // yields to measurement if even W+D does not fit.
        out.ffTarget = start;
        out.detailed = std::min(plan.detailedInsts, chunk);
        out.warmup = chunk - out.detailed;
    }
    return out;
}

std::uint64_t
fastForward(sim::Emulator &emu, std::uint64_t target_icount,
            uarch::OooCore *warm_core)
{
    if (!warm_core) {
        // Nothing consumes per-instruction ExecInfo: take the
        // batched interpreter, which is bit-identical to step()
        // in every architectural respect.
        if (emu.instCount() >= target_icount || emu.halted())
            return 0;
        return emu.runFast(target_icount - emu.instCount());
    }

    std::uint64_t executed = 0;
    sim::ExecInfo info;
    while (emu.instCount() < target_icount && !emu.halted()) {
        if (!emu.step(info))
            break;
        ++executed;
        if (warm_core)
            warm_core->warmFunctional(info);
    }
    return executed;
}

} // namespace svf::ckpt
