#include "ckpt/serialize.hh"

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace svf::ckpt
{

void
ByteWriter::d64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

double
ByteReader::d64()
{
    return std::bit_cast<double>(u64());
}

std::uint64_t
fnv1a(const std::uint8_t *p, std::size_t n, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

bool
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    // Unique temp name: concurrent runner workers persisting the
    // same key write distinct temps and the last rename wins — both
    // wrote identical content, so either outcome is correct.
    static std::atomic<unsigned> ctr{0};
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<long>(::getpid())) +
                      "." + std::to_string(ctr.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out.good())
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return false;
    std::streamsize n = in.tellg();
    if (n < 0)
        return false;
    out.resize(static_cast<std::size_t>(n));
    in.seekg(0);
    in.read(reinterpret_cast<char *>(out.data()), n);
    return in.good() || n == 0;
}

bool
ensureDir(const std::string &path)
{
    if (path.empty())
        return false;
    // Walk the path left to right, creating each component.
    for (std::size_t i = 1; i <= path.size(); ++i) {
        if (i != path.size() && path[i] != '/')
            continue;
        std::string prefix = path.substr(0, i);
        if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

} // namespace svf::ckpt
