#include "ckpt/snapshot.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "ckpt/serialize.hh"
#include "isa/program.hh"
#include "sim/mem_image.hh"

namespace svf::ckpt
{

namespace
{

constexpr char Magic[8] = {'S', 'V', 'F', 'C', 'K', 'P', 'T', '\0'};

} // anonymous namespace

std::uint64_t
programHash(const isa::Program &prog)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix64 = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint8_t>(v >> (8 * i));
            h *= 1099511628211ull;
        }
    };
    mix64(prog.entry);
    mix64(prog.textBase);
    mix64(prog.textSize);
    mix64(prog.sections.size());
    for (const auto &sec : prog.sections) {
        mix64(sec.base);
        mix64(sec.bytes.size());
        h = fnv1a(sec.bytes.data(), sec.bytes.size(), h);
    }
    return h;
}

namespace
{

using SharedPagesPtr = sim::MemImage::SharedPagesPtr;

/** Keys of @p pages in ascending order — the deterministic walk
 *  shared by serialization and the content digest. */
std::vector<Addr>
sortedPageAddrs(const SharedPagesPtr &pages)
{
    std::vector<Addr> addrs;
    if (pages) {
        addrs.reserve(pages->size());
        for (const auto &kv : *pages)
            addrs.push_back(kv.first);
        std::sort(addrs.begin(), addrs.end());
    }
    return addrs;
}

void
restoreCore(sim::Emulator &emu, std::uint64_t prog_hash,
            const sim::EmuArchState &state,
            const SharedPagesPtr &pages)
{
    std::uint64_t have = programHash(emu.program());
    if (have != prog_hash) {
        fatal("snapshot/program mismatch: snapshot was taken on "
              "program %016llx but the emulator runs %016llx",
              (unsigned long long)prog_hash,
              (unsigned long long)have);
    }
    emu.restoreArchState(state);
    // O(1) in page data: the emulator's image re-points at the
    // frozen shared map; its first write to any page CoW-copies.
    emu.mem().adoptPages(pages);
}

} // anonymous namespace

Snapshot
Snapshot::capture(const sim::Emulator &emu)
{
    Snapshot s;
    s.progHash = programHash(emu.program());
    s.state = emu.archState();
    s.pages = emu.mem().freezePages();
    return s;
}

Snapshot
Snapshot::captureMulti(const std::vector<const sim::Emulator *> &emus)
{
    svf_assert(!emus.empty());
    Snapshot s = capture(*emus[0]);
    for (std::size_t i = 1; i < emus.size(); ++i) {
        CoreImage c;
        c.progHash = programHash(emus[i]->program());
        c.state = emus[i]->archState();
        c.pages = emus[i]->mem().freezePages();
        s.extraCores.push_back(std::move(c));
    }
    return s;
}

void
Snapshot::restore(sim::Emulator &emu) const
{
    if (!extraCores.empty()) {
        fatal("cannot restore a %u-core snapshot into a single "
              "emulator (use restoreMulti)", coreCount());
    }
    restoreCore(emu, progHash, state, pages);
}

void
Snapshot::restoreMulti(const std::vector<sim::Emulator *> &emus) const
{
    if (emus.size() != coreCount()) {
        fatal("snapshot has %u cores but %zu emulators were "
              "supplied", coreCount(), emus.size());
    }
    restoreCore(*emus[0], progHash, state, pages);
    for (std::size_t i = 1; i < emus.size(); ++i) {
        const CoreImage &c = extraCores[i - 1];
        restoreCore(*emus[i], c.progHash, c.state, c.pages);
    }
}

namespace
{

void
writeCoreRecord(ByteWriter &body, const std::string &workload,
                const std::string &input, std::uint64_t scale,
                std::uint64_t prog_hash,
                const sim::EmuArchState &state,
                const SharedPagesPtr &pages)
{
    body.str(workload);
    body.str(input);
    body.u64(scale);
    body.u64(prog_hash);

    body.u64(state.pc);
    body.u64(state.lowSp);
    body.u64(state.icount);
    body.u8(state.halted ? 1 : 0);
    body.str(state.output);
    body.u32(static_cast<std::uint32_t>(state.regs.size()));
    for (RegVal r : state.regs)
        body.u64(r);

    std::vector<Addr> addrs = sortedPageAddrs(pages);
    body.u64(addrs.size());
    for (Addr a : addrs) {
        body.u64(a);
        body.bytes(pages->find(a)->second->data(),
                   sim::MemImage::PageSize);
    }
}

bool
readCoreRecord(ByteReader &r, std::string &workload,
               std::string &input, std::uint64_t &scale,
               std::uint64_t &prog_hash, sim::EmuArchState &state,
               SharedPagesPtr &pages, std::string &error)
{
    workload = r.str();
    input = r.str();
    scale = r.u64();
    prog_hash = r.u64();

    state.pc = r.u64();
    state.lowSp = r.u64();
    state.icount = r.u64();
    state.halted = r.u8() != 0;
    state.output = r.str();
    std::uint32_t nregs = r.u32();
    if (r.ok() && nregs != state.regs.size()) {
        error = "snapshot register-file size mismatch";
        return false;
    }
    for (RegVal &reg : state.regs)
        reg = r.u64();

    std::uint64_t npages = r.u64();
    auto loaded = std::make_shared<sim::MemImage::SharedPages>();
    for (std::uint64_t i = 0; i < npages && r.ok(); ++i) {
        Addr addr = r.u64();
        auto page = std::make_shared<sim::MemImage::Page>();
        r.bytes(page->data(), page->size());
        (*loaded)[addr] = std::move(page);
    }
    pages = std::move(loaded);
    return true;
}

} // anonymous namespace

std::vector<std::uint8_t>
Snapshot::serialize() const
{
    ByteWriter body;
    body.u32(coreCount());
    writeCoreRecord(body, workload, input, scale, progHash, state,
                    pages);
    for (const CoreImage &c : extraCores) {
        writeCoreRecord(body, c.workload, c.input, c.scale,
                        c.progHash, c.state, c.pages);
    }

    ByteWriter out;
    out.bytes(reinterpret_cast<const std::uint8_t *>(Magic),
              sizeof(Magic));
    out.u32(FormatVersion);
    out.bytes(body.data().data(), body.data().size());
    out.u64(fnv1a(body.data().data(), body.data().size()));
    return out.data();
}

bool
Snapshot::deserialize(const std::vector<std::uint8_t> &bytes,
                      std::string &error)
{
    ByteReader r(bytes);
    char magic[8] = {};
    if (!r.bytes(reinterpret_cast<std::uint8_t *>(magic),
                 sizeof(magic)) ||
        std::memcmp(magic, Magic, sizeof(Magic)) != 0) {
        error = "not a snapshot file (bad magic)";
        return false;
    }
    std::uint32_t version = r.u32();
    if (version != FormatVersion) {
        error = "unsupported snapshot version " +
                std::to_string(version) + " (expected " +
                std::to_string(FormatVersion) + ")";
        return false;
    }
    if (r.remaining() < 8) {
        error = "truncated snapshot (no digest)";
        return false;
    }
    // The digest covers exactly the body: everything between the
    // version field and the trailing 8 digest bytes.
    const std::uint8_t *body = bytes.data() + sizeof(Magic) + 4;
    std::size_t body_len = r.remaining() - 8;
    std::uint64_t want = fnv1a(body, body_len);

    std::uint32_t ncores = r.u32();
    if (r.ok() && ncores == 0) {
        error = "snapshot has zero cores";
        return false;
    }
    if (!readCoreRecord(r, workload, input, scale, progHash, state,
                        pages, error)) {
        return false;
    }
    extraCores.clear();
    for (std::uint32_t i = 1; i < ncores && r.ok(); ++i) {
        CoreImage c;
        if (!readCoreRecord(r, c.workload, c.input, c.scale,
                            c.progHash, c.state, c.pages, error)) {
            return false;
        }
        extraCores.push_back(std::move(c));
    }

    std::uint64_t got = r.u64();
    if (!r.ok()) {
        error = "truncated snapshot body";
        return false;
    }
    if (got != want) {
        error = "snapshot integrity check failed (content digest "
                "mismatch)";
        return false;
    }
    if (r.remaining() != 0) {
        error = "trailing bytes after snapshot digest";
        return false;
    }
    return true;
}

bool
Snapshot::saveFile(const std::string &path) const
{
    if (!writeFileAtomic(path, serialize())) {
        warn("cannot write snapshot to '%s'", path.c_str());
        return false;
    }
    return true;
}

bool
Snapshot::loadFile(const std::string &path, std::string &error)
{
    std::vector<std::uint8_t> bytes;
    if (!readFile(path, bytes)) {
        error = "cannot read '" + path + "'";
        return false;
    }
    return deserialize(bytes, error);
}

SnapshotStore::SnapshotStore(std::string dir) : _dir(std::move(dir))
{
    if (enabled() && !ensureDir(_dir)) {
        warn("cannot create snapshot directory '%s'; checkpointing "
             "disabled", _dir.c_str());
        _dir.clear();
    }
}

std::string
SnapshotStore::path(std::uint64_t prog_hash,
                    std::uint64_t icount) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "%016llx-%llu.ckpt",
                  (unsigned long long)prog_hash,
                  (unsigned long long)icount);
    return _dir + "/" + name;
}

bool
SnapshotStore::tryRestore(std::uint64_t prog_hash,
                          std::uint64_t icount,
                          sim::Emulator &emu) const
{
    if (!enabled())
        return false;
    std::string file = path(prog_hash, icount);
    std::vector<std::uint8_t> bytes;
    if (!readFile(file, bytes))
        return false;
    Snapshot snap;
    std::string error;
    if (!snap.deserialize(bytes, error)) {
        warn("ignoring snapshot '%s': %s", file.c_str(),
             error.c_str());
        return false;
    }
    if (snap.progHash != prog_hash || snap.state.icount != icount) {
        warn("ignoring snapshot '%s': keyed state does not match "
             "its content", file.c_str());
        return false;
    }
    snap.restore(emu);
    return true;
}

bool
SnapshotStore::save(std::uint64_t prog_hash,
                    const sim::Emulator &emu) const
{
    if (!enabled())
        return false;
    Snapshot snap = Snapshot::capture(emu);
    svf_assert(snap.progHash == prog_hash);
    return snap.saveFile(path(prog_hash, emu.instCount()));
}

} // namespace svf::ckpt
