/**
 * @file
 * Versioned, endian-stable snapshots of full architectural state.
 *
 * A snapshot captures everything the functional emulator needs to
 * resume bit-identically: the register file, PC, instruction count,
 * halt flag, accumulated program output, $sp watermark, and every
 * touched MemImage page (sparse — untouched memory reads as zero on
 * both sides). Pages are serialized in ascending address order and
 * covered by an FNV-1a content digest, so a corrupted or truncated
 * file is rejected at load instead of resuming into garbage.
 *
 * Snapshots are bound to a program by content hash: restoring onto
 * an emulator built from a different program is refused, because the
 * predecoded text would silently diverge from the captured state.
 *
 * File format (all integers little-endian):
 *
 *   magic   "SVFCKPT\0"              8 bytes
 *   version u32                      (FormatVersion)
 *   body    ByteWriter record        (core count, then per core:
 *                                     workload identity, arch state,
 *                                     page count, pages)
 *   digest  u64 FNV-1a over the body
 *
 * Version 2 added the core count and the cores 1..N-1 records for
 * multi-core Systems; a single-core snapshot is simply ncores == 1.
 * The digest covers every core's record, so corruption anywhere in a
 * multi-core image is caught. Version-1 files are rejected (and
 * regenerate) — there is no silent cross-version read.
 */

#ifndef SVF_CKPT_SNAPSHOT_HH
#define SVF_CKPT_SNAPSHOT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/isa.hh"
#include "sim/emulator.hh"
#include "sim/mem_image.hh"

namespace svf::isa { class Program; }

namespace svf::ckpt
{

/** Content hash binding a snapshot to the program it was taken on. */
std::uint64_t programHash(const isa::Program &prog);

/** A captured machine state, decoded and ready to restore. */
struct Snapshot
{
    /** Bumped on any incompatible layout change. */
    static constexpr std::uint32_t FormatVersion = 2;

    /** @name Provenance (how to rebuild the program) */
    /// @{
    std::string workload;       //!< registry name; "" = external
    std::string input;
    std::uint64_t scale = 0;
    std::uint64_t progHash = 0; //!< programHash() of the program
    /// @}

    sim::EmuArchState state;

    /**
     * The touched pages as an immutable shared map (see
     * MemImage::freezePages). Capturing freezes the source image and
     * restoring adopts the map, so neither direction copies page
     * content — restore() into any number of worker emulators is
     * O(1) per page. May be null (no pages). Serialization walks the
     * map in ascending address order, so the on-disk format is
     * unchanged from the deep-copy representation.
     */
    sim::MemImage::SharedPagesPtr pages;

    std::uint64_t pageCount() const
    {
        return pages ? pages->size() : 0;
    }

    /**
     * One additional core's full record (multi-core Systems). The
     * top-level fields above are core 0; extraCores holds cores
     * 1..N-1 in slot order.
     */
    struct CoreImage
    {
        std::string workload;
        std::string input;
        std::uint64_t scale = 0;
        std::uint64_t progHash = 0;
        sim::EmuArchState state;
        sim::MemImage::SharedPagesPtr pages;

        std::uint64_t pageCount() const
        {
            return pages ? pages->size() : 0;
        }
    };
    std::vector<CoreImage> extraCores;

    /** Total cores captured (1 for a classic snapshot). */
    unsigned coreCount() const
    {
        return 1 + static_cast<unsigned>(extraCores.size());
    }

    /**
     * Capture @p emu (provenance fields are left to the caller).
     * Freezes the emulator's MemImage (see MemImage::freezePages):
     * no page content is copied, the live image and the snapshot
     * share the frozen pages from here on.
     */
    static Snapshot capture(const sim::Emulator &emu);

    /**
     * Capture one emulator per core slot, in slot order (provenance
     * fields of every core are left to the caller).
     */
    static Snapshot
    captureMulti(const std::vector<const sim::Emulator *> &emus);

    /**
     * Restore into @p emu, which must be built from a program whose
     * programHash() equals progHash (fatal otherwise). Replaces the
     * whole MemImage content. Fatal on a multi-core snapshot — use
     * restoreMulti.
     */
    void restore(sim::Emulator &emu) const;

    /**
     * Restore all cores into one emulator per slot, in slot order.
     * Each emulator must match its core's progHash; @p emus must
     * have exactly coreCount() entries (fatal otherwise).
     */
    void restoreMulti(const std::vector<sim::Emulator *> &emus) const;

    /** @name Serialization */
    /// @{
    std::vector<std::uint8_t> serialize() const;

    /**
     * Parse @p bytes; returns false (and sets @p error) on a bad
     * magic, unsupported version, truncation or digest mismatch.
     */
    bool deserialize(const std::vector<std::uint8_t> &bytes,
                     std::string &error);

    bool saveFile(const std::string &path) const;
    bool loadFile(const std::string &path, std::string &error);
    /// @}
};

/**
 * A directory of snapshots keyed by (program hash, instruction
 * count) — the fast-forward cache. The sampler consults it before
 * functionally fast-forwarding and stores the state it arrives at,
 * so a sweep that runs many machine configurations over one workload
 * pays the fast-forward once.
 */
class SnapshotStore
{
  public:
    /** @p dir empty disables the store (all ops become no-ops). */
    explicit SnapshotStore(std::string dir);

    bool enabled() const { return !_dir.empty(); }

    /**
     * Load the snapshot at (@p prog_hash, @p icount) into @p emu.
     * @retval false when absent, unreadable or corrupt (corrupt
     *         files warn and are ignored — they regenerate).
     */
    bool tryRestore(std::uint64_t prog_hash, std::uint64_t icount,
                    sim::Emulator &emu) const;

    /** Persist @p emu's state under (@p prog_hash, its icount). */
    bool save(std::uint64_t prog_hash,
              const sim::Emulator &emu) const;

    /** The file path for a (hash, icount) pair (for tooling). */
    std::string path(std::uint64_t prog_hash,
                     std::uint64_t icount) const;

  private:
    std::string _dir;
};

} // namespace svf::ckpt

#endif // SVF_CKPT_SNAPSHOT_HH
