/**
 * @file
 * Interval sampling: fast-forward between detailed windows.
 *
 * Reproducing the paper's 10^9-instruction runs with the cycle model
 * alone is prohibitive, but the architectural emulator executes the
 * same stream orders of magnitude faster. A SamplePlan `K,W,D`
 * splits the run's instruction budget into K equal chunks; within
 * each chunk the tail `W + D` instructions go through the detailed
 * model — W of them as warmup whose statistics are discarded, D as
 * the measured window — and everything before them is executed
 * functionally at full host speed (optionally warming the caches and
 * branch predictor along the way).
 *
 * The per-interval CoreStats deltas are aggregated by CoreStatsAccum
 * into whole-run estimates with a per-counter variance, so consumers
 * can tell a tight estimate from one whose intervals disagree.
 *
 * The plan is part of the experiment setup key (RunSetup::key()):
 * a sampled run and a full run of the same workload never share a
 * memoized result.
 */

#ifndef SVF_CKPT_SAMPLER_HH
#define SVF_CKPT_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/ooo_core.hh"

namespace svf::sim { class Emulator; }

namespace svf::ckpt
{

/** The `sample=K,W,D` schedule. Default-constructed = disabled. */
struct SamplePlan
{
    /** Detailed measurement windows ("K"); 0 disables sampling. */
    std::uint64_t intervals = 0;

    /** Detailed warmup instructions per interval ("W"). */
    std::uint64_t warmupInsts = 0;

    /** Measured detailed instructions per interval ("D"). */
    std::uint64_t detailedInsts = 0;

    /**
     * Warm caches and the branch predictor functionally during
     * fast-forward (OooCore::warmFunctional). Costs host time per
     * skipped instruction but removes most cold-structure bias when
     * W is small relative to the fast-forwarded gap. Warming folds
     * over the whole stream, so this plan runs serially.
     */
    bool functionalWarm = false;

    /**
     * Parallelizable variant of functionalWarm: each interval's
     * worker replays functional warming from the previous interval's
     * snapshot, so its warm history is bounded to one chunk of the
     * stream instead of all of it — intervals become independent and
     * fan out over pjobs. A different estimator than ",warm" (the
     * truncated history shifts counters on workloads whose working
     * set outlives a chunk), so it is keyed as its own config.
     */
    bool parallelWarm = false;

    /**
     * Adaptive window sizing: run each measured window in slices of
     * D/8 and stop early once the cumulative window IPC has
     * converged (relative change below AdaptTolerance on two
     * consecutive slices), capping at D. Stable intervals stop after
     * a fraction of D; phase-change intervals run the full window.
     * The decision is a pure function of the interval's own
     * simulation, so results stay byte-identical across pjobs. A
     * different estimator than the plain plan (windows are shorter),
     * so it is keyed as its own config.
     */
    bool adaptive = false;

    /** Relative cumulative-IPC change below which a slice counts
     *  as converged. */
    static constexpr double AdaptTolerance = 0.01;

    /** Slices per detailed window when adaptive. */
    static constexpr std::uint64_t AdaptSlices = 8;

    /** Converged slices (consecutive) required to stop a window. */
    static constexpr unsigned AdaptStableSlices = 2;

    bool enabled() const { return intervals > 0; }

    /**
     * Parse "K,W,D" with optional trailing ",warm"/",pwarm" and
     * ",adapt" flags (fatal on malformed input); an empty string
     * returns a disabled plan.
     */
    static SamplePlan parse(const std::string &spec);

    /** "K,W,D[,warm|,pwarm][,adapt]" round-trip of parse(). */
    std::string str() const;

    /**
     * Fold every field into @p seed (see base/hash.hh).
     * parallelWarm and adaptive are folded only when set, so every
     * pre-existing plan key (in-memory and on-disk caches) stays
     * valid.
     */
    std::uint64_t key(std::uint64_t seed) const;
};

/** One counter of uarch::CoreStats, by name (JSON/accumulators). */
struct CoreCounter
{
    const char *name;
    std::uint64_t uarch::CoreStats::*field;
};

/**
 * Every CoreStats counter, cycles and committed first. Derived from
 * the harness counter registry (its CoreStats-backed subsequence, in
 * registry order) so counters have a single declaration site; the
 * order is the result cache's serialization order.
 */
const std::vector<CoreCounter> &coreCounters();

/**
 * Accumulates per-interval CoreStats deltas: per-counter sum, mean
 * and (population) variance across intervals.
 */
class CoreStatsAccum
{
  public:
    CoreStatsAccum();

    void add(const uarch::CoreStats &delta);

    std::uint64_t intervals() const { return n; }

    /** Summed delta of counter @p i (coreCounters() order). */
    std::uint64_t sum(std::size_t i) const;

    double mean(std::size_t i) const;
    double variance(std::size_t i) const;

    /** The summed deltas as a CoreStats (the measured-window run). */
    uarch::CoreStats total() const;

  private:
    std::uint64_t n = 0;
    std::vector<std::uint64_t> sums;
    std::vector<double> sumSquares;
};

/** Whole-run estimates derived from the sampled windows. */
struct SampleEstimate
{
    /** Measured intervals (0 = the run was not sampled). */
    std::uint64_t intervals = 0;

    /** Instructions executed functionally + in detail (the run). */
    std::uint64_t totalInsts = 0;

    /** Instructions fast-forwarded outside detailed windows. */
    std::uint64_t ffInsts = 0;

    /** Detailed warmup instructions (excluded from statistics). */
    std::uint64_t warmupInsts = 0;

    /** @name Measured-window aggregates */
    /// @{
    std::uint64_t sampledInsts = 0;
    std::uint64_t sampledCycles = 0;
    /// @}

    /** totalInsts / ipcMean — the whole-run cycle estimate. */
    std::uint64_t estimatedCycles = 0;

    /** @name Per-interval IPC distribution */
    /// @{
    double ipcMean = 0.0;
    double ipcStddev = 0.0;
    /// @}

    /** Per-counter variance across intervals (coreCounters()). */
    std::vector<double> counterVariance;

    bool enabled() const { return intervals > 0; }
};

/**
 * The interval schedule over one run: where each fast-forward ends
 * and how much warmup/detail follows. Chunks divide the budget
 * evenly; a chunk too small to hold W+D shrinks its fast-forward
 * to zero and truncates warmup before detail.
 */
class Sampler
{
  public:
    Sampler(const SamplePlan &plan, std::uint64_t budget);

    /** Bounds of interval @p i of plan.intervals. */
    struct Interval
    {
        std::uint64_t ffTarget = 0;  //!< icount where detail begins
        std::uint64_t warmup = 0;    //!< detailed insts to discard
        std::uint64_t detailed = 0;  //!< detailed insts to measure
    };

    Interval interval(std::uint64_t i) const;

    std::uint64_t intervalCount() const { return plan.intervals; }
    std::uint64_t chunkInsts() const { return chunk; }

  private:
    SamplePlan plan;
    std::uint64_t budget;
    std::uint64_t chunk;
};

/**
 * Functionally execute @p emu up to @p target_icount instructions
 * (absolute, not relative) at full host speed.
 *
 * Without a warm core this runs on the batched interpreter
 * (Emulator::runFast) — several times faster than step() and
 * bit-identical in every architectural respect.
 *
 * @param warm_core when non-null, every skipped instruction also
 *        probes the core's caches and branch predictor
 *        (OooCore::warmFunctional) — functional warming. This path
 *        still steps one instruction at a time: warming consumes the
 *        per-instruction ExecInfo the batched loop elides.
 * @return instructions actually executed (short on early halt).
 */
std::uint64_t fastForward(sim::Emulator &emu,
                          std::uint64_t target_icount,
                          uarch::OooCore *warm_core = nullptr);

} // namespace svf::ckpt

#endif // SVF_CKPT_SAMPLER_HH
