/**
 * @file
 * Disk-persistent experiment-result cache.
 *
 * The harness::Runner memoizes finished jobs by their canonical
 * setup key, but that cache dies with the process — iterating on one
 * figure re-simulates every other workload each run. A ResultCache
 * extends the memo across processes: each result is serialized to
 * `<dir>/<16-hex-key>.res` (endian-stable, versioned, digest-
 * checked) and any Runner pointed at the same directory serves it
 * back without simulating.
 *
 * Correctness rests entirely on the setup key covering every field
 * that could change a result (base/hash.hh discipline); the cache
 * itself only guards against torn/corrupt files (atomic rename on
 * write, digest check on read — bad entries warn and regenerate).
 */

#ifndef SVF_CKPT_RESULT_CACHE_HH
#define SVF_CKPT_RESULT_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "harness/experiment.hh"
#include "harness/traffic.hh"
#include "workloads/calibration.hh"

namespace svf::ckpt
{

/** Same variant as harness::JobValue (kept in sync by the runner). */
using CachedValue = std::variant<harness::RunResult,
                                 harness::TrafficResult,
                                 workloads::StackProfile>;

class ResultCache
{
  public:
    /**
     * Bumped whenever any serialized result layout changes.
     * v4: ckpt::coreCounters() became the registry-derived table
     * (harness/counters.hh), which reordered the CoreStats fields.
     */
    static constexpr std::uint32_t FormatVersion = 4;

    /** @p dir empty disables the cache (all ops become no-ops). */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !_dir.empty(); }

    /** Load the result for @p key; false when absent or corrupt. */
    bool load(std::uint64_t key, CachedValue &out) const;

    /** Persist @p value under @p key (atomic; best-effort). */
    bool store(std::uint64_t key, const CachedValue &value) const;

    /** The file backing @p key (for tests and tooling). */
    std::string path(std::uint64_t key) const;

  private:
    std::string _dir;
};

/**
 * @name Value wire codec
 *
 * The cache's kind-tagged payload encoding (kind byte + per-type
 * serializer, no file framing), exposed so the serve layer ships
 * results over the socket with exactly the bytes the disk cache
 * round-trips — a decoded value is bit-identical to a local run.
 */
/// @{

/** Serialize @p value (kind byte + payload; endian-stable). */
std::vector<std::uint8_t> encodeValue(const CachedValue &value);

/** Decode encodeValue() output; false on malformed/trailing bytes. */
bool decodeValue(const std::uint8_t *data, std::size_t len,
                 CachedValue &out);
bool decodeValue(const std::vector<std::uint8_t> &bytes,
                 CachedValue &out);

/// @}

} // namespace svf::ckpt

#endif // SVF_CKPT_RESULT_CACHE_HH
