/**
 * @file
 * Endian-stable binary serialization primitives for the checkpoint
 * subsystem.
 *
 * Snapshots and persisted experiment results must survive being
 * written on one machine and read on another, so every multi-byte
 * integer is serialized explicitly little-endian, byte by byte —
 * never by memcpy of a host-order value. Readers never trust the
 * stream: every accessor reports truncation instead of reading past
 * the end, and callers check ok() once at the end of a record.
 */

#ifndef SVF_CKPT_SERIALIZE_HH
#define SVF_CKPT_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace svf::ckpt
{

/** Accumulates one serialized record in memory. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** IEEE-754 bit pattern, little-endian. */
    void d64(double v);

    /** Length-prefixed byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(reinterpret_cast<const std::uint8_t *>(s.data()),
              s.size());
    }

    void
    bytes(const std::uint8_t *p, std::size_t n)
    {
        buf.insert(buf.end(), p, p + n);
    }

    const std::vector<std::uint8_t> &data() const { return buf; }

  private:
    std::vector<std::uint8_t> buf;
};

/**
 * Reads one serialized record. Truncated or otherwise malformed
 * input clears ok() and makes every subsequent read return zeros;
 * callers validate once, after the last field.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *p, std::size_t n)
        : cur(p), end(p + n)
    {}

    explicit ByteReader(const std::vector<std::uint8_t> &v)
        : ByteReader(v.data(), v.size())
    {}

    std::uint8_t
    u8()
    {
        if (!want(1))
            return 0;
        return *cur++;
    }

    std::uint32_t
    u32()
    {
        if (!want(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(*cur++) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!want(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*cur++) << (8 * i);
        return v;
    }

    double d64();

    std::string
    str()
    {
        std::uint64_t n = u64();
        if (!want(n))
            return {};
        std::string s(reinterpret_cast<const char *>(cur),
                      static_cast<std::size_t>(n));
        cur += n;
        return s;
    }

    /** Copy @p n raw bytes into @p out. */
    bool
    bytes(std::uint8_t *out, std::size_t n)
    {
        if (!want(n))
            return false;
        for (std::size_t i = 0; i < n; ++i)
            out[i] = cur[i];
        cur += n;
        return true;
    }

    /** Bytes left unread. */
    std::size_t remaining() const { return end - cur; }

    /** False once any read ran past the end of the input. */
    bool ok() const { return good; }

  private:
    bool
    want(std::uint64_t n)
    {
        if (!good || n > static_cast<std::uint64_t>(end - cur)) {
            good = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *cur;
    const std::uint8_t *end;
    bool good = true;
};

/**
 * FNV-1a over a byte range; the integrity digest stamped into
 * snapshot and result-cache files.
 */
std::uint64_t fnv1a(const std::uint8_t *p, std::size_t n,
                    std::uint64_t seed = 1469598103934665603ull);

/** Write @p bytes to @p path atomically (temp file + rename). */
bool writeFileAtomic(const std::string &path,
                     const std::vector<std::uint8_t> &bytes);

/** Read all of @p path; false when it does not exist / can't read. */
bool readFile(const std::string &path,
              std::vector<std::uint8_t> &out);

/** mkdir -p; false when the directory can't be created. */
bool ensureDir(const std::string &path);

} // namespace svf::ckpt

#endif // SVF_CKPT_SERIALIZE_HH
