/**
 * @file
 * Two-pass text assembler for SVA.
 *
 * The assembler exists so examples and tests can express programs in
 * readable assembly; workload kernels use ProgramBuilder directly.
 *
 * Syntax summary:
 *
 *     ; comment (also #)
 *     .text / .data          section switch
 *     .align N               align cursor (power of two)
 *     .quad v[, v...]        64-bit values (numbers or labels)
 *     .long v[, v...]        32-bit values
 *     .byte v[, v...]        8-bit values
 *     .space N               N zero bytes
 *     .ascii "str" /.asciz
 *     label:
 *     ldq $a0, 8($sp)        memory ops: ldq stq ldl stl ldbu stb
 *     lda $sp, -32($sp)      address arithmetic: lda ldah
 *     addq $a0, $a1, $v0     operates (reg or 0..255 literal 2nd op)
 *     beq $a0, label         branches: beq bne blt ble bgt bge br bsr
 *     jsr $ra, ($pv)         indirect jump; ret
 *     halt / putint / putc   system ops
 *     mov $a0, $v0           pseudos: mov li la nop call ret
 *     li  $a0, 0x1234
 *     la  $a0, label
 */

#ifndef SVF_ISA_ASSEMBLER_HH
#define SVF_ISA_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace svf::isa
{

/** Raised on malformed assembly; message includes the line number. */
class AsmError : public std::runtime_error
{
  public:
    /**
     * @param line 1-based source line.
     * @param msg what went wrong.
     */
    AsmError(unsigned line, const std::string &msg);

    /** Source line the error was found on. */
    unsigned line() const { return _line; }

  private:
    unsigned _line;
};

/**
 * Assemble SVA source text into a linked Program.
 *
 * @param source the assembly text.
 * @param name program name for reporting.
 * @throws AsmError on any syntax or semantic error.
 */
Program assemble(const std::string &source,
                 const std::string &name = "asm");

} // namespace svf::isa

#endif // SVF_ISA_ASSEMBLER_HH
