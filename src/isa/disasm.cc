#include "isa/disasm.hh"

#include "base/logging.hh"

namespace svf::isa
{

namespace
{

const char *
opMnemonic(const DecodedInst &di)
{
    switch (di.op) {
      case Opcode::Lda: return "lda";
      case Opcode::Ldah: return "ldah";
      case Opcode::Ldbu: return "ldbu";
      case Opcode::Ldl: return "ldl";
      case Opcode::Ldq: return "ldq";
      case Opcode::Stb: return "stb";
      case Opcode::Stl: return "stl";
      case Opcode::Stq: return "stq";
      case Opcode::Br: return "br";
      case Opcode::Bsr: return "bsr";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Ble: return "ble";
      case Opcode::Bgt: return "bgt";
      case Opcode::Bge: return "bge";
      case Opcode::Jsr: return "jsr";
      case Opcode::Sys:
        switch (di.sys) {
          case SysFunct::Halt: return "halt";
          case SysFunct::Putint: return "putint";
          case SysFunct::Putc: return "putc";
        }
        return "sys?";
      case Opcode::IntOp:
        switch (di.funct) {
          case IntFunct::Addq: return "addq";
          case IntFunct::Subq: return "subq";
          case IntFunct::Mulq: return "mulq";
          case IntFunct::And: return "and";
          case IntFunct::Bis: return "bis";
          case IntFunct::Xor: return "xor";
          case IntFunct::Sll: return "sll";
          case IntFunct::Srl: return "srl";
          case IntFunct::Sra: return "sra";
          case IntFunct::Cmpeq: return "cmpeq";
          case IntFunct::Cmplt: return "cmplt";
          case IntFunct::Cmple: return "cmple";
          case IntFunct::Cmpult: return "cmpult";
          case IntFunct::Cmpule: return "cmpule";
          case IntFunct::Umulh: return "umulh";
        }
        return "intop?";
    }
    return "??";
}

} // anonymous namespace

std::string
disassemble(const DecodedInst &di, Addr pc)
{
    const char *m = opMnemonic(di);

    if (di.memRef || di.op == Opcode::Lda || di.op == Opcode::Ldah) {
        return csprintf("%s %s, %d(%s)", m, regName(di.ra), di.disp,
                        regName(di.rb));
    }
    if (di.op == Opcode::IntOp) {
        if (di.useLit) {
            return csprintf("%s %s, %u, %s", m, regName(di.ra),
                            unsigned(di.lit), regName(di.rc));
        }
        return csprintf("%s %s, %s, %s", m, regName(di.ra),
                        regName(di.rb), regName(di.rc));
    }
    if (di.condBranch || di.uncondBranch) {
        Addr target = pc + 4 +
            (static_cast<std::int64_t>(di.disp) << 2);
        return csprintf("%s %s, 0x%llx", m, regName(di.ra),
                        static_cast<unsigned long long>(target));
    }
    if (di.op == Opcode::Jsr) {
        return csprintf("%s %s, (%s)", m, regName(di.ra),
                        regName(di.rb));
    }
    return m;
}

} // namespace svf::isa
