/**
 * @file
 * Programmatic code generation for SVA programs.
 *
 * ProgramBuilder is the codegen API the workload kernels use: it emits
 * instructions with automatic label fixups, allocates static data and
 * heap space, and materializes constants. FunctionBuilder layers the
 * software calling convention on top (frame allocation via
 * lda $sp, -N($sp), callee saves, $sp- or $fp-relative locals,
 * address-taken locals) so kernels produce exactly the stack reference
 * patterns the SVF paper characterizes.
 */

#ifndef SVF_ISA_BUILDER_HH
#define SVF_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/encode.hh"
#include "isa/program.hh"

namespace svf::isa
{

/** An opaque code label handle. */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/**
 * Emits an SVA program: instructions, labels, data and heap layout.
 */
class ProgramBuilder
{
  public:
    /** @param name program name carried into the Program. */
    explicit ProgramBuilder(std::string name);

    /** @name Labels */
    /// @{
    /** Create a new unbound label. */
    Label newLabel();

    /** Bind @p l to the next emitted instruction. */
    void bind(Label l);

    /** Create and immediately bind a label (function entry idiom). */
    Label here();
    /// @}

    /** @name Memory-format instructions */
    /// @{
    void lda(RegIndex ra, std::int32_t disp, RegIndex rb);
    void ldah(RegIndex ra, std::int32_t disp, RegIndex rb);
    void ldq(RegIndex ra, std::int32_t disp, RegIndex rb);
    void stq(RegIndex ra, std::int32_t disp, RegIndex rb);
    void ldl(RegIndex ra, std::int32_t disp, RegIndex rb);
    void stl(RegIndex ra, std::int32_t disp, RegIndex rb);
    void ldbu(RegIndex ra, std::int32_t disp, RegIndex rb);
    void stb(RegIndex ra, std::int32_t disp, RegIndex rb);
    /// @}

    /** @name Integer operates (register and literal forms) */
    /// @{
    void op(IntFunct f, RegIndex ra, RegIndex rb, RegIndex rc);
    void opi(IntFunct f, RegIndex ra, std::uint8_t lit, RegIndex rc);

    void addq(RegIndex ra, RegIndex rb, RegIndex rc);
    void addqi(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void subq(RegIndex ra, RegIndex rb, RegIndex rc);
    void subqi(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void mulq(RegIndex ra, RegIndex rb, RegIndex rc);
    void mulqi(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void and_(RegIndex ra, RegIndex rb, RegIndex rc);
    void andi(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void bis(RegIndex ra, RegIndex rb, RegIndex rc);
    void xor_(RegIndex ra, RegIndex rb, RegIndex rc);
    void xori(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void sll(RegIndex ra, RegIndex rb, RegIndex rc);
    void slli(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void srl(RegIndex ra, RegIndex rb, RegIndex rc);
    void srli(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void srai(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void cmpeq(RegIndex ra, RegIndex rb, RegIndex rc);
    void cmpeqi(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void cmplt(RegIndex ra, RegIndex rb, RegIndex rc);
    void cmplti(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void cmple(RegIndex ra, RegIndex rb, RegIndex rc);
    void cmplei(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void cmpult(RegIndex ra, RegIndex rb, RegIndex rc);
    void cmpulti(RegIndex ra, std::uint8_t lit, RegIndex rc);
    void cmpule(RegIndex ra, RegIndex rb, RegIndex rc);
    void cmpulei(RegIndex ra, std::uint8_t lit, RegIndex rc);
    /// @}

    /** @name Control transfers */
    /// @{
    void br(Label target);
    void bsr(Label target);             //!< link into $ra
    void beq(RegIndex ra, Label target);
    void bne(RegIndex ra, Label target);
    void blt(RegIndex ra, Label target);
    void ble(RegIndex ra, Label target);
    void bgt(RegIndex ra, Label target);
    void bge(RegIndex ra, Label target);
    void jsr(RegIndex ra, RegIndex rb);
    void ret();                         //!< jsr $zero, ($ra)
    /// @}

    /** @name System operations */
    /// @{
    void halt();
    void putint();                      //!< print $a0 as decimal
    void putc();                        //!< print low byte of $a0
    /// @}

    /** @name Composite idioms */
    /// @{
    /** Register move (bis ra, ra, rc). */
    void mov(RegIndex src, RegIndex dst);

    /** No-operation. */
    void nop();

    /**
     * Materialize a 64-bit constant into @p rc.
     *
     * Emits 1-2 instructions for values representable as a signed
     * 32-bit lda/ldah pair; larger values use a longer sequence that
     * clobbers $at.
     */
    void li(RegIndex rc, std::uint64_t value);

    /** Materialize the (eventual) address of a code label. */
    void la(RegIndex rc, Label l);

    /** Call a label (bsr $ra, target). */
    void call(Label target);

    /** Materialize a sign-extended 32-bit constant into @p rc. */
    void li32(RegIndex rc, std::int32_t value);
    /// @}

    /** @name Static data and heap allocation */
    /// @{
    /** Allocate initialized bytes in the global data region. */
    Addr allocData(const std::vector<std::uint8_t> &bytes,
                   unsigned align = 8);

    /** Allocate initialized quadwords in the global data region. */
    Addr allocDataQuads(const std::vector<std::uint64_t> &quads);

    /** Reserve zero-initialized space in the global data region. */
    Addr allocDataZero(std::uint64_t size, unsigned align = 8);

    /**
     * Reserve zero-initialized space in the heap region.
     *
     * The heap has no initialized image; untouched memory reads as
     * zero in the simulator, matching a demand-zero allocation.
     */
    Addr allocHeap(std::uint64_t size, unsigned align = 8);

    /** Allocate initialized quadwords in the heap region. */
    Addr allocHeapQuads(const std::vector<std::uint64_t> &quads);
    /// @}

    /** Number of instructions emitted so far. */
    std::uint64_t numInsts() const { return insts.size(); }

    /**
     * Resolve all fixups and produce the linked Program.
     *
     * @param entry label of the first instruction to execute.
     */
    Program finish(Label entry);

  private:
    struct Fixup
    {
        std::uint64_t inst_index;
        int label_id;
        enum class Kind { Branch21, LiAddr } kind;
    };

    void emit(std::uint32_t raw);
    void emitBranch(Opcode op, RegIndex ra, Label target);

    std::string progName;
    std::vector<std::uint32_t> insts;
    std::vector<std::int64_t> labelPos;     //!< inst index or -1
    std::vector<Fixup> fixups;

    std::vector<std::uint8_t> dataBytes;
    Addr dataCursor = layout::DataBase;
    Addr heapCursor = layout::HeapBase;
    std::vector<std::pair<Addr, std::vector<std::uint64_t>>> heapInit;
    bool finished = false;
};

/**
 * Frame layout of one function under the SVA calling convention.
 *
 * Frame picture (offsets from the post-prologue $sp):
 *
 *     frameSize-8          saved $ra        (if saveRa)
 *     frameSize-16         saved $fp        (if saveFp)
 *     ...                  saved callee regs
 *     0 .. localBytes      locals (slot i at byte 8*i)
 */
struct FrameSpec
{
    std::uint32_t localBytes = 0;
    bool saveRa = true;
    bool saveFp = false;
    bool useFp = false;         //!< implies saveFp; $fp = caller $sp
    std::vector<RegIndex> saveRegs;
};

/**
 * Emits prologue/epilogue and local-variable accesses for one
 * function, producing the canonical Alpha-style stack idioms.
 */
class FunctionBuilder
{
  public:
    /**
     * @param pb builder to emit into.
     * @param spec frame shape.
     */
    FunctionBuilder(ProgramBuilder &pb, FrameSpec spec);

    /** Emit frame allocation and callee saves. */
    void prologue();

    /** Emit restores, frame release and return. */
    void epilogueRet();

    /** Byte offset of local quadword slot @p slot from $sp. */
    std::int32_t localOff(std::uint32_t slot) const;

    /** Load local slot via $sp-relative addressing. */
    void ldLocal(RegIndex r, std::uint32_t slot);

    /** Store local slot via $sp-relative addressing. */
    void stLocal(RegIndex r, std::uint32_t slot);

    /** Load local slot via $fp-relative addressing (needs useFp). */
    void ldLocalFp(RegIndex r, std::uint32_t slot);

    /** Store local slot via $fp-relative addressing (needs useFp). */
    void stLocalFp(RegIndex r, std::uint32_t slot);

    /**
     * Take the address of a local (the C & operator); subsequent
     * accesses through the produced register are the $gpr-addressed
     * stack references of Figure 1.
     */
    void addrOfLocal(RegIndex r, std::uint32_t slot);

    /** Total frame size in bytes (16-byte aligned). */
    std::uint32_t frameSize() const { return frame; }

  private:
    ProgramBuilder &pb;
    FrameSpec spec;
    std::uint32_t frame;
};

} // namespace svf::isa

#endif // SVF_ISA_BUILDER_HH
