#include "isa/program.hh"

#include "base/logging.hh"

namespace svf::isa
{

void
Program::addSection(Addr base, std::vector<std::uint8_t> bytes)
{
    Addr end = base + bytes.size();
    for (const auto &s : sections) {
        Addr s_end = s.base + s.bytes.size();
        if (base < s_end && s.base < end) {
            fatal("program '%s': section [0x%llx,0x%llx) overlaps "
                  "[0x%llx,0x%llx)", name.c_str(),
                  (unsigned long long)base, (unsigned long long)end,
                  (unsigned long long)s.base,
                  (unsigned long long)s_end);
        }
    }
    sections.push_back(Section{base, std::move(bytes)});
}

std::uint32_t
Program::fetchRaw(Addr pc) const
{
    for (const auto &s : sections) {
        if (pc >= s.base && pc + 4 <= s.base + s.bytes.size()) {
            std::uint64_t off = pc - s.base;
            return static_cast<std::uint32_t>(s.bytes[off]) |
                   (static_cast<std::uint32_t>(s.bytes[off + 1]) << 8) |
                   (static_cast<std::uint32_t>(s.bytes[off + 2]) << 16) |
                   (static_cast<std::uint32_t>(s.bytes[off + 3]) << 24);
        }
    }
    panic("instruction fetch outside program image at 0x%llx",
          static_cast<unsigned long long>(pc));
}

} // namespace svf::isa
