/**
 * @file
 * Linked program image and the simulated virtual memory layout.
 */

#ifndef SVF_ISA_PROGRAM_HH
#define SVF_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace svf::isa
{

/**
 * The fixed virtual memory layout used by all SVA programs.
 *
 * Mirrors the Alpha/OSF layout the paper describes: text and static
 * data in the low/middle ranges, heap above static data, and a stack
 * growing down from a system-defined high address.
 */
namespace layout
{

constexpr Addr TextBase = 0x0001'0000;
constexpr Addr DataBase = 0x0010'0000;
constexpr Addr HeapBase = 0x0100'0000;
constexpr Addr HeapLimit = 0x4000'0000;

/** Initial $sp; the stack grows down from here. */
constexpr Addr StackBase = 0x7fff'0000;

/** Lowest address still considered part of the stack region. */
constexpr Addr StackLimit = StackBase - 0x0100'0000;

} // namespace layout

/**
 * A fully linked program: byte images for the text/data/heap
 * sections plus the entry point.
 */
class Program
{
  public:
    /** One contiguous initialized byte range. */
    struct Section
    {
        Addr base = 0;
        std::vector<std::uint8_t> bytes;
    };

    /** Program name for reporting. */
    std::string name;

    /** Entry point (first instruction executed). */
    Addr entry = layout::TextBase;

    /** All initialized sections (text first by convention). */
    std::vector<Section> sections;

    /** Base address of the text section. */
    Addr textBase = layout::TextBase;

    /** Size of the text section in bytes. */
    std::uint64_t textSize = 0;

    /** Append a section; overlapping sections are a fatal error. */
    void addSection(Addr base, std::vector<std::uint8_t> bytes);

    /** Fetch the raw instruction word at @p pc (must be in text). */
    std::uint32_t fetchRaw(Addr pc) const;
};

} // namespace svf::isa

#endif // SVF_ISA_PROGRAM_HH
