/**
 * @file
 * Disassembler for debugging and test output.
 */

#ifndef SVF_ISA_DISASM_HH
#define SVF_ISA_DISASM_HH

#include <string>

#include "base/types.hh"
#include "isa/inst.hh"

namespace svf::isa
{

/**
 * Render @p di as assembly text.
 *
 * @param di decoded instruction.
 * @param pc the instruction's address, used to render branch targets
 *           as absolute addresses.
 */
std::string disassemble(const DecodedInst &di, Addr pc);

} // namespace svf::isa

#endif // SVF_ISA_DISASM_HH
