/**
 * @file
 * Instruction decoder and register-name tables.
 */

#include "isa/inst.hh"

#include <cstring>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "isa/decode.hh"

namespace svf::isa
{

namespace
{

const char *const regNames[NumRegs] = {
    "$v0", "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6",
    "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6",
    "$a0", "$a1", "$a2", "$a3", "$a4", "$a5", "$t8", "$t9",
    "$t10", "$t11", "$ra", "$pv", "$at", "$fp", "$sp", "$zero",
};

} // anonymous namespace

const char *
regName(RegIndex r)
{
    if (r >= NumRegs)
        return "$??";
    return regNames[r];
}

RegIndex
parseReg(const char *name)
{
    if (!name || name[0] != '$')
        return NoReg;
    for (RegIndex i = 0; i < NumRegs; ++i) {
        if (std::strcmp(name, regNames[i]) == 0)
            return i;
    }
    // Numeric forms: $rN and $N.
    const char *digits = name + 1;
    if (digits[0] == 'r')
        ++digits;
    if (digits[0] == '\0')
        return NoReg;
    unsigned v = 0;
    for (const char *p = digits; *p; ++p) {
        if (*p < '0' || *p > '9')
            return NoReg;
        v = v * 10 + static_cast<unsigned>(*p - '0');
        if (v >= NumRegs)
            return NoReg;
    }
    return static_cast<RegIndex>(v);
}

bool
decode(std::uint32_t raw, DecodedInst &di)
{
    di = DecodedInst();
    di.raw = raw;
    auto opbits = static_cast<std::uint8_t>(bits(raw, 31, 26));
    di.op = static_cast<Opcode>(opbits);
    di.ra = static_cast<RegIndex>(bits(raw, 25, 21));

    switch (di.op) {
      case Opcode::Lda:
      case Opcode::Ldah:
        di.rb = static_cast<RegIndex>(bits(raw, 20, 16));
        di.disp = static_cast<std::int32_t>(sext(bits(raw, 15, 0), 16));
        di.cls = InstClass::IntAlu;
        return true;

      case Opcode::Ldbu:
      case Opcode::Ldl:
      case Opcode::Ldq:
        di.rb = static_cast<RegIndex>(bits(raw, 20, 16));
        di.disp = static_cast<std::int32_t>(sext(bits(raw, 15, 0), 16));
        di.cls = InstClass::Load;
        di.memRef = di.load = true;
        di.memSize = di.op == Opcode::Ldbu ? 1
                   : di.op == Opcode::Ldl ? 4 : 8;
        return true;

      case Opcode::Stb:
      case Opcode::Stl:
      case Opcode::Stq:
        di.rb = static_cast<RegIndex>(bits(raw, 20, 16));
        di.disp = static_cast<std::int32_t>(sext(bits(raw, 15, 0), 16));
        di.cls = InstClass::Store;
        di.memRef = di.store = true;
        di.memSize = di.op == Opcode::Stb ? 1
                   : di.op == Opcode::Stl ? 4 : 8;
        return true;

      case Opcode::IntOp:
        di.useLit = bits(raw, 12, 12) != 0;
        if (di.useLit)
            di.lit = static_cast<std::uint8_t>(bits(raw, 20, 13));
        else
            di.rb = static_cast<RegIndex>(bits(raw, 20, 16));
        di.funct = static_cast<IntFunct>(bits(raw, 11, 5));
        if (static_cast<unsigned>(di.funct) >
            static_cast<unsigned>(IntFunct::Umulh)) {
            return false;
        }
        di.rc = static_cast<RegIndex>(bits(raw, 4, 0));
        di.cls = (di.funct == IntFunct::Mulq ||
                  di.funct == IntFunct::Umulh)
            ? InstClass::IntMult : InstClass::IntAlu;
        return true;

      case Opcode::Jsr:
        di.rb = static_cast<RegIndex>(bits(raw, 20, 16));
        di.cls = InstClass::Control;
        di.ctrl = true;
        di.indirect = true;
        di.call = di.ra != RegZero;
        di.ret = di.ra == RegZero && di.rb == RegRA;
        return true;

      case Opcode::Br:
      case Opcode::Bsr:
        di.disp = static_cast<std::int32_t>(sext(bits(raw, 20, 0), 21));
        di.cls = InstClass::Control;
        di.ctrl = true;
        di.uncondBranch = true;
        di.call = di.op == Opcode::Bsr && di.ra != RegZero;
        return true;

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Ble:
      case Opcode::Bgt:
      case Opcode::Bge:
        di.disp = static_cast<std::int32_t>(sext(bits(raw, 20, 0), 21));
        di.cls = InstClass::Control;
        di.ctrl = true;
        di.condBranch = true;
        return true;

      case Opcode::Sys:
        di.sys = static_cast<SysFunct>(bits(raw, 15, 0));
        di.cls = InstClass::Sys;
        if (static_cast<unsigned>(di.sys) >
            static_cast<unsigned>(SysFunct::Putc)) {
            return false;
        }
        return true;

      default:
        return false;
    }
}

RegIndex
DecodedInst::destReg() const
{
    switch (op) {
      case Opcode::Lda:
      case Opcode::Ldah:
      case Opcode::Ldbu:
      case Opcode::Ldl:
      case Opcode::Ldq:
        return ra == RegZero ? NoReg : ra;
      case Opcode::IntOp:
        return rc == RegZero ? NoReg : rc;
      case Opcode::Jsr:
      case Opcode::Br:
      case Opcode::Bsr:
        return ra == RegZero ? NoReg : ra;
      default:
        return NoReg;
    }
}

unsigned
DecodedInst::srcRegs(RegIndex srcs[2]) const
{
    unsigned n = 0;
    auto push = [&](RegIndex r) {
        if (r != RegZero && r != NoReg)
            srcs[n++] = r;
    };

    switch (op) {
      case Opcode::Lda:
      case Opcode::Ldah:
      case Opcode::Ldbu:
      case Opcode::Ldl:
      case Opcode::Ldq:
        push(rb);
        break;
      case Opcode::Stb:
      case Opcode::Stl:
      case Opcode::Stq:
        push(ra);               // store data
        push(rb);               // base
        break;
      case Opcode::IntOp:
        push(ra);
        if (!useLit)
            push(rb);
        break;
      case Opcode::Jsr:
        push(rb);
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Ble:
      case Opcode::Bgt:
      case Opcode::Bge:
        push(ra);
        break;
      case Opcode::Sys:
        if (sys == SysFunct::Putint || sys == SysFunct::Putc)
            push(RegA0);
        break;
      default:
        break;
    }
    return n;
}

} // namespace svf::isa
