/**
 * @file
 * The SVA instruction set: a small 64-bit Alpha-flavoured load/store
 * ISA with the stack conventions the SVF paper depends on.
 *
 * The Stack Value File keys off three ISA properties of the Alpha:
 * reg+imm16 addressing, immediate stack-pointer adjustment
 * (lda $sp, imm($sp)), and a 64-bit natural word. SVA preserves all
 * three along with the software conventions ($sp grows down, $fp
 * frame pointer, $ra link register) so the microarchitecture exercises
 * the same code paths as the paper's Alpha binaries.
 */

#ifndef SVF_ISA_ISA_HH
#define SVF_ISA_ISA_HH

#include <cstdint>

#include "base/types.hh"

namespace svf::isa
{

/** Number of architectural integer registers. */
constexpr unsigned NumRegs = 32;

/** Register index used to mean "no register". */
constexpr RegIndex NoReg = 32;

/** Well-known registers (software conventions). */
enum Reg : RegIndex
{
    RegV0 = 0,                  //!< return value
    RegT0 = 1,                  //!< caller-saved temporaries t0..t7
    RegT1 = 2,
    RegT2 = 3,
    RegT3 = 4,
    RegT4 = 5,
    RegT5 = 6,
    RegT6 = 7,
    RegT7 = 8,
    RegS0 = 9,                  //!< callee-saved s0..s6
    RegS1 = 10,
    RegS2 = 11,
    RegS3 = 12,
    RegS4 = 13,
    RegS5 = 14,
    RegS6 = 15,
    RegA0 = 16,                 //!< arguments a0..a5
    RegA1 = 17,
    RegA2 = 18,
    RegA3 = 19,
    RegA4 = 20,
    RegA5 = 21,
    RegT8 = 22,                 //!< more temporaries t8..t11
    RegT9 = 23,
    RegT10 = 24,
    RegT11 = 25,
    RegRA = 26,                 //!< return address
    RegPV = 27,                 //!< procedure value (indirect calls)
    RegAT = 28,                 //!< assembler temporary
    RegFP = 29,                 //!< frame pointer
    RegSP = 30,                 //!< stack pointer
    RegZero = 31,               //!< hardwired zero
};

/** Primary opcodes (bits [31:26]). */
enum class Opcode : std::uint8_t
{
    Sys = 0x00,                 //!< system operations (halt, putint...)
    Lda = 0x08,                 //!< ra = rb + sext(disp16)
    Ldah = 0x09,                //!< ra = rb + (sext(disp16) << 16)
    Ldbu = 0x0a,                //!< ra = zext(mem8[ea])
    Stb = 0x0e,                 //!< mem8[ea] = ra
    IntOp = 0x10,               //!< register/literal integer operate
    Jsr = 0x1a,                 //!< ra = pc + 4; pc = rb & ~3
    Ldl = 0x28,                 //!< ra = sext(mem32[ea])
    Ldq = 0x29,                 //!< ra = mem64[ea]
    Stl = 0x2c,                 //!< mem32[ea] = ra
    Stq = 0x2d,                 //!< mem64[ea] = ra
    Br = 0x30,                  //!< ra = pc + 4; pc += 4 + disp21*4
    Bsr = 0x34,                 //!< like Br; by convention ra = $ra
    Beq = 0x39,                 //!< branch if ra == 0
    Blt = 0x3a,                 //!< branch if ra < 0 (signed)
    Ble = 0x3b,                 //!< branch if ra <= 0 (signed)
    Bne = 0x3d,                 //!< branch if ra != 0
    Bge = 0x3e,                 //!< branch if ra >= 0 (signed)
    Bgt = 0x3f,                 //!< branch if ra > 0 (signed)
};

/** Integer-operate function codes (bits [11:5] of IntOp). */
enum class IntFunct : std::uint8_t
{
    Addq = 0x00,
    Subq = 0x01,
    Mulq = 0x02,
    And = 0x03,
    Bis = 0x04,                 //!< bitwise or
    Xor = 0x05,
    Sll = 0x06,
    Srl = 0x07,
    Sra = 0x08,
    Cmpeq = 0x09,               //!< rc = (ra == rb/lit) ? 1 : 0
    Cmplt = 0x0a,               //!< signed <
    Cmple = 0x0b,               //!< signed <=
    Cmpult = 0x0c,              //!< unsigned <
    Cmpule = 0x0d,              //!< unsigned <=
    Umulh = 0x0e,               //!< high 64 bits of unsigned product
};

/** System-operation function codes (bits [15:0] of Sys). */
enum class SysFunct : std::uint16_t
{
    Halt = 0,                   //!< stop simulation
    Putint = 1,                 //!< print $a0 as signed decimal + '\n'
    Putc = 2,                   //!< print low byte of $a0
};

/** Broad classes driving functional-unit choice and latency. */
enum class InstClass : std::uint8_t
{
    IntAlu,                     //!< 1-cycle integer op (incl. lda/ldah)
    IntMult,                    //!< multi-cycle multiply
    Load,
    Store,
    Control,                    //!< branches, calls, returns, jumps
    Sys,
};

/** Printable register name ("$sp", "$r7", ...). */
const char *regName(RegIndex r);

/**
 * Parse a register name.
 *
 * Accepts "$rN"/"$N" and the convention aliases ("$sp", "$fp", "$ra",
 * "$zero", "$v0", "$aN", "$sN", "$tN", "$pv", "$at").
 *
 * @retval NoReg when the name is not a register.
 */
RegIndex parseReg(const char *name);

} // namespace svf::isa

#endif // SVF_ISA_ISA_HH
