/**
 * @file
 * Instruction decoding entry point.
 */

#ifndef SVF_ISA_DECODE_HH
#define SVF_ISA_DECODE_HH

#include <cstdint>

#include "isa/inst.hh"

namespace svf::isa
{

/**
 * Decode a raw instruction word.
 *
 * @param raw the encoded instruction.
 * @param di receives the decode on success.
 * @retval true on a valid encoding, false for illegal instructions.
 */
bool decode(std::uint32_t raw, DecodedInst &di);

} // namespace svf::isa

#endif // SVF_ISA_DECODE_HH
