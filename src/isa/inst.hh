/**
 * @file
 * Decoded instruction representation shared by the functional
 * emulator, the timing model and the SVF front-end logic.
 */

#ifndef SVF_ISA_INST_HH
#define SVF_ISA_INST_HH

#include <cstdint>

#include "base/types.hh"
#include "isa/isa.hh"

namespace svf::isa
{

/**
 * One decoded SVA instruction.
 *
 * The decode is performed once per static instruction (at program
 * load) and the result is shared by reference, so this struct holds
 * every derived property the pipeline wants to query cheaply.
 */
struct DecodedInst
{
    std::uint32_t raw = 0;      //!< encoded instruction word
    Opcode op = Opcode::Sys;
    IntFunct funct = IntFunct::Addq;    //!< valid when op == IntOp
    SysFunct sys = SysFunct::Halt;      //!< valid when op == Sys

    RegIndex ra = RegZero;      //!< field [25:21]
    RegIndex rb = RegZero;      //!< field [20:16] (reg operand forms)
    RegIndex rc = RegZero;      //!< field [4:0] (IntOp destination)
    bool useLit = false;        //!< IntOp literal form
    std::uint8_t lit = 0;       //!< zero-extended 8-bit literal
    std::int32_t disp = 0;      //!< sign-extended disp16 or disp21

    InstClass cls = InstClass::IntAlu;

    /** @name Derived classification (filled by decode()). */
    /// @{
    bool memRef = false;        //!< loads and stores
    bool load = false;
    bool store = false;
    std::uint8_t memSize = 0;   //!< access width in bytes
    bool ctrl = false;          //!< any control transfer
    bool condBranch = false;
    bool uncondBranch = false;  //!< Br/Bsr (direct)
    bool indirect = false;      //!< Jsr
    bool call = false;          //!< writes a link register ($ra/$pv)
    bool ret = false;           //!< Jsr with ra == $zero, rb == $ra
    /// @}

    /** Destination register, or NoReg. */
    RegIndex destReg() const;

    /** Source registers; returns count, fills @p srcs (size >= 2). */
    unsigned srcRegs(RegIndex srcs[2]) const;

    /**
     * Is this a memory reference whose base register is $sp?
     * These are the references the SVF morphs at decode.
     */
    bool isSpBased() const { return memRef && rb == RegSP; }

    /**
     * Is this an immediate stack-pointer adjustment
     * (lda $sp, imm($sp)), the idiom whose semantics the SVF
     * exploits for allocation/deallocation liveness?
     */
    bool isSpAdjust() const
    {
        return op == Opcode::Lda && ra == RegSP && rb == RegSP;
    }

    /** Does this instruction write $sp in any way? */
    bool writesSp() const { return destReg() == RegSP; }
};

} // namespace svf::isa

#endif // SVF_ISA_INST_HH
