/**
 * @file
 * Instruction encoders: build raw 32-bit SVA instruction words.
 *
 * Encoding formats:
 *   memory/lda : [31:26] op  [25:21] ra [20:16] rb [15:0] disp16
 *   operate    : [31:26] op  [25:21] ra [20:16] rb [12] 0
 *                [11:5] funct [4:0] rc
 *   operate lit: [31:26] op  [25:21] ra [20:13] lit8 [12] 1
 *                [11:5] funct [4:0] rc
 *   branch     : [31:26] op  [25:21] ra [20:0] disp21 (in words)
 *   jump       : [31:26] op  [25:21] ra [20:16] rb [15:0] hint
 *   sys        : [31:26] op  [15:0] funct
 */

#ifndef SVF_ISA_ENCODE_HH
#define SVF_ISA_ENCODE_HH

#include <cstdint>

#include "isa/isa.hh"

namespace svf::isa
{

/** Encode a memory-format instruction (loads, stores, lda, ldah). */
std::uint32_t encodeMem(Opcode op, RegIndex ra, RegIndex rb,
                        std::int32_t disp16);

/** Encode a register-form integer operate. */
std::uint32_t encodeOp(IntFunct funct, RegIndex ra, RegIndex rb,
                       RegIndex rc);

/** Encode a literal-form integer operate (lit zero-extended 8-bit). */
std::uint32_t encodeOpLit(IntFunct funct, RegIndex ra, std::uint8_t lit,
                          RegIndex rc);

/** Encode a branch; @p disp21 counts instructions from pc+4. */
std::uint32_t encodeBranch(Opcode op, RegIndex ra, std::int32_t disp21);

/** Encode a jump through @p rb writing the link into @p ra. */
std::uint32_t encodeJsr(RegIndex ra, RegIndex rb);

/** Encode a system operation. */
std::uint32_t encodeSys(SysFunct funct);

} // namespace svf::isa

#endif // SVF_ISA_ENCODE_HH
