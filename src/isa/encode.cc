#include "isa/encode.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace svf::isa
{

namespace
{

std::uint32_t
opField(Opcode op)
{
    return static_cast<std::uint32_t>(op) << 26;
}

void
checkReg(RegIndex r)
{
    svf_assert(r < NumRegs);
}

} // anonymous namespace

std::uint32_t
encodeMem(Opcode op, RegIndex ra, RegIndex rb, std::int32_t disp16)
{
    checkReg(ra);
    checkReg(rb);
    if (disp16 < -32768 || disp16 > 32767)
        panic("mem displacement %d out of range", disp16);
    return opField(op) | (std::uint32_t(ra) << 21) |
           (std::uint32_t(rb) << 16) |
           (static_cast<std::uint32_t>(disp16) & 0xffffu);
}

std::uint32_t
encodeOp(IntFunct funct, RegIndex ra, RegIndex rb, RegIndex rc)
{
    checkReg(ra);
    checkReg(rb);
    checkReg(rc);
    return opField(Opcode::IntOp) | (std::uint32_t(ra) << 21) |
           (std::uint32_t(rb) << 16) |
           (static_cast<std::uint32_t>(funct) << 5) |
           std::uint32_t(rc);
}

std::uint32_t
encodeOpLit(IntFunct funct, RegIndex ra, std::uint8_t lit, RegIndex rc)
{
    checkReg(ra);
    checkReg(rc);
    return opField(Opcode::IntOp) | (std::uint32_t(ra) << 21) |
           (std::uint32_t(lit) << 13) | (1u << 12) |
           (static_cast<std::uint32_t>(funct) << 5) |
           std::uint32_t(rc);
}

std::uint32_t
encodeBranch(Opcode op, RegIndex ra, std::int32_t disp21)
{
    checkReg(ra);
    if (disp21 < -(1 << 20) || disp21 >= (1 << 20))
        panic("branch displacement %d out of range", disp21);
    return opField(op) | (std::uint32_t(ra) << 21) |
           (static_cast<std::uint32_t>(disp21) & mask(21));
}

std::uint32_t
encodeJsr(RegIndex ra, RegIndex rb)
{
    checkReg(ra);
    checkReg(rb);
    return opField(Opcode::Jsr) | (std::uint32_t(ra) << 21) |
           (std::uint32_t(rb) << 16);
}

std::uint32_t
encodeSys(SysFunct funct)
{
    return opField(Opcode::Sys) |
           static_cast<std::uint32_t>(funct);
}

} // namespace svf::isa
