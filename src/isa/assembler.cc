#include "isa/assembler.hh"

#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "isa/encode.hh"

namespace svf::isa
{

AsmError::AsmError(unsigned line, const std::string &msg)
    : std::runtime_error(csprintf("line %u: %s", line, msg.c_str())),
      _line(line)
{
}

namespace
{

/** One source line reduced to label / mnemonic / operand strings. */
struct SrcLine
{
    unsigned line_no = 0;
    std::string label;
    std::string mnemonic;
    std::vector<std::string> operands;
};

[[noreturn]] void
err(unsigned line, const std::string &msg)
{
    throw AsmError(line, msg);
}

/** Strip comments and split "label: mnemonic op1, op2" pieces. */
std::optional<SrcLine>
parseLine(unsigned line_no, std::string_view text)
{
    auto cut = text.find_first_of(";#");
    if (cut != std::string_view::npos)
        text = text.substr(0, cut);
    text = trim(text);

    SrcLine out;
    out.line_no = line_no;

    auto colon = text.find(':');
    if (colon != std::string_view::npos &&
        text.substr(0, colon).find('"') == std::string_view::npos) {
        out.label = std::string(trim(text.substr(0, colon)));
        if (out.label.empty())
            err(line_no, "empty label");
        text = trim(text.substr(colon + 1));
    }
    if (text.empty()) {
        if (out.label.empty())
            return std::nullopt;
        return out;
    }

    auto sp = text.find_first_of(" \t");
    out.mnemonic = toLower(std::string(
        sp == std::string_view::npos ? text : text.substr(0, sp)));
    if (sp != std::string_view::npos) {
        std::string_view rest = trim(text.substr(sp + 1));
        // Operands split on commas, but not inside string literals.
        std::string cur;
        bool in_str = false;
        for (char c : rest) {
            if (c == '"')
                in_str = !in_str;
            if (c == ',' && !in_str) {
                out.operands.emplace_back(trim(cur));
                cur.clear();
            } else {
                cur.push_back(c);
            }
        }
        if (!trim(cur).empty() || !out.operands.empty())
            out.operands.emplace_back(trim(cur));
    }
    return out;
}

/** Size in bytes one parsed line contributes to its section. */
struct Assembler
{
    explicit Assembler(const std::string &name) { prog.name = name; }

    Program run(const std::string &source);

    // Pass 1 helpers.
    std::uint64_t instCount(const SrcLine &l) const;
    std::uint64_t dataSize(const SrcLine &l) const;

    // Pass 2 helpers.
    void emitInst(const SrcLine &l);
    void emitData(const SrcLine &l);

    std::int64_t evalInt(const SrcLine &l, const std::string &tok,
                         bool allow_label) const;
    RegIndex reqReg(const SrcLine &l, const std::string &tok) const;
    void parseMemOperand(const SrcLine &l, const std::string &tok,
                         std::int32_t &disp, RegIndex &base) const;
    std::int32_t branchDisp(const SrcLine &l,
                            const std::string &tok) const;

    Program prog;
    std::map<std::string, Addr> symbols;
    std::vector<std::uint32_t> text;
    std::vector<std::uint8_t> data;
    Addr textCursor = layout::TextBase;
    Addr dataCursor = layout::DataBase;
    bool inText = true;
};

bool
isDirective(const std::string &m)
{
    return !m.empty() && m[0] == '.';
}

std::uint64_t
parseEscapedString(const SrcLine &l, const std::string &tok,
                   std::vector<std::uint8_t> *out)
{
    if (tok.size() < 2 || tok.front() != '"' || tok.back() != '"')
        err(l.line_no, "expected quoted string");
    std::uint64_t n = 0;
    for (size_t i = 1; i + 1 < tok.size(); ++i) {
        char c = tok[i];
        if (c == '\\' && i + 2 < tok.size()) {
            ++i;
            switch (tok[i]) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case '0': c = '\0'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default:
                err(l.line_no, "bad escape in string");
            }
        }
        if (out)
            out->push_back(static_cast<std::uint8_t>(c));
        ++n;
    }
    return n;
}

std::uint64_t
Assembler::instCount(const SrcLine &l) const
{
    const std::string &m = l.mnemonic;
    if (m == "li") {
        if (l.operands.size() != 2)
            err(l.line_no, "li needs 2 operands");
        // Labels always get the 2-instruction ldah/lda form; numbers
        // are sized exactly.
        std::int64_t v = 0;
        if (!parseInt(l.operands[1], v))
            return 2;
        if (v >= -32768 && v <= 32767)
            return 1;
        std::uint64_t uv = static_cast<std::uint64_t>(v);
        std::int64_t lo = sext(uv, 16);
        std::int64_t rem = v - lo;
        if (rem % 65536 == 0 &&
            (rem >> 16) >= -32768 && (rem >> 16) <= 32767) {
            return lo == 0 ? 1 : 2;
        }
        err(l.line_no, "li constant too wide (use data + ldq)");
    }
    if (m == "la")
        return 2;
    return 1;
}

std::uint64_t
Assembler::dataSize(const SrcLine &l) const
{
    const std::string &m = l.mnemonic;
    const auto &ops = l.operands;
    if (m == ".quad")
        return 8 * ops.size();
    if (m == ".long")
        return 4 * ops.size();
    if (m == ".byte")
        return ops.size();
    if (m == ".space") {
        std::int64_t n = 0;
        if (ops.size() != 1 || !parseInt(ops[0], n) || n < 0)
            err(l.line_no, ".space needs a nonnegative size");
        return static_cast<std::uint64_t>(n);
    }
    if (m == ".ascii" || m == ".asciz") {
        if (ops.size() != 1)
            err(l.line_no, "string directive needs 1 operand");
        std::uint64_t n = parseEscapedString(l, ops[0], nullptr);
        return m == ".asciz" ? n + 1 : n;
    }
    err(l.line_no, "unknown directive '" + m + "' in .data");
}

std::int64_t
Assembler::evalInt(const SrcLine &l, const std::string &tok,
                   bool allow_label) const
{
    std::int64_t v = 0;
    if (parseInt(tok, v))
        return v;
    if (allow_label) {
        auto it = symbols.find(tok);
        if (it != symbols.end())
            return static_cast<std::int64_t>(it->second);
    }
    err(l.line_no, "bad integer or unknown symbol '" + tok + "'");
}

RegIndex
Assembler::reqReg(const SrcLine &l, const std::string &tok) const
{
    RegIndex r = parseReg(tok.c_str());
    if (r == NoReg)
        err(l.line_no, "expected register, got '" + tok + "'");
    return r;
}

void
Assembler::parseMemOperand(const SrcLine &l, const std::string &tok,
                           std::int32_t &disp, RegIndex &base) const
{
    auto open = tok.find('(');
    auto close = tok.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        err(l.line_no, "expected disp(reg), got '" + tok + "'");
    }
    std::string disp_s(trim(std::string_view(tok).substr(0, open)));
    std::string reg_s(trim(std::string_view(tok).substr(
        open + 1, close - open - 1)));
    std::int64_t d = disp_s.empty() ? 0 : evalInt(l, disp_s, false);
    if (d < -32768 || d > 32767)
        err(l.line_no, "displacement out of range");
    disp = static_cast<std::int32_t>(d);
    base = reqReg(l, reg_s);
}

std::int32_t
Assembler::branchDisp(const SrcLine &l, const std::string &tok) const
{
    std::int64_t target = evalInt(l, tok, true);
    std::int64_t disp =
        (target - (static_cast<std::int64_t>(textCursor) + 4)) / 4;
    if ((target - (static_cast<std::int64_t>(textCursor) + 4)) % 4)
        err(l.line_no, "misaligned branch target");
    if (disp < -(1 << 20) || disp >= (1 << 20))
        err(l.line_no, "branch target out of range");
    return static_cast<std::int32_t>(disp);
}

void
Assembler::emitInst(const SrcLine &l)
{
    const std::string &m = l.mnemonic;
    const auto &ops = l.operands;
    auto need = [&](size_t n) {
        if (ops.size() != n) {
            err(l.line_no, csprintf("'%s' needs %zu operands, got %zu",
                                    m.c_str(), n, ops.size()));
        }
    };
    auto push = [&](std::uint32_t raw) {
        text.push_back(raw);
        textCursor += 4;
    };

    static const std::map<std::string, Opcode> mem_ops = {
        {"lda", Opcode::Lda}, {"ldah", Opcode::Ldah},
        {"ldq", Opcode::Ldq}, {"stq", Opcode::Stq},
        {"ldl", Opcode::Ldl}, {"stl", Opcode::Stl},
        {"ldbu", Opcode::Ldbu}, {"stb", Opcode::Stb},
    };
    static const std::map<std::string, IntFunct> int_ops = {
        {"addq", IntFunct::Addq}, {"subq", IntFunct::Subq},
        {"mulq", IntFunct::Mulq}, {"and", IntFunct::And},
        {"bis", IntFunct::Bis}, {"or", IntFunct::Bis},
        {"xor", IntFunct::Xor}, {"sll", IntFunct::Sll},
        {"srl", IntFunct::Srl}, {"sra", IntFunct::Sra},
        {"cmpeq", IntFunct::Cmpeq}, {"cmplt", IntFunct::Cmplt},
        {"cmple", IntFunct::Cmple}, {"cmpult", IntFunct::Cmpult},
        {"cmpule", IntFunct::Cmpule}, {"umulh", IntFunct::Umulh},
    };
    static const std::map<std::string, Opcode> cond_br = {
        {"beq", Opcode::Beq}, {"bne", Opcode::Bne},
        {"blt", Opcode::Blt}, {"ble", Opcode::Ble},
        {"bgt", Opcode::Bgt}, {"bge", Opcode::Bge},
    };

    if (auto it = mem_ops.find(m); it != mem_ops.end()) {
        need(2);
        RegIndex ra = reqReg(l, ops[0]);
        std::int32_t disp = 0;
        RegIndex rb = RegZero;
        parseMemOperand(l, ops[1], disp, rb);
        push(encodeMem(it->second, ra, rb, disp));
        return;
    }
    if (auto it = int_ops.find(m); it != int_ops.end()) {
        need(3);
        RegIndex ra = reqReg(l, ops[0]);
        RegIndex rc = reqReg(l, ops[2]);
        RegIndex rb = parseReg(ops[1].c_str());
        if (rb != NoReg) {
            push(encodeOp(it->second, ra, rb, rc));
        } else {
            std::int64_t lit = evalInt(l, ops[1], false);
            if (lit < 0 || lit > 255)
                err(l.line_no, "literal operand must be 0..255");
            push(encodeOpLit(it->second, ra,
                             static_cast<std::uint8_t>(lit), rc));
        }
        return;
    }
    if (auto it = cond_br.find(m); it != cond_br.end()) {
        need(2);
        RegIndex ra = reqReg(l, ops[0]);
        push(encodeBranch(it->second, ra, branchDisp(l, ops[1])));
        return;
    }
    if (m == "br" || m == "bsr" || m == "call") {
        need(1);
        Opcode op = m == "br" ? Opcode::Br : Opcode::Bsr;
        RegIndex ra = m == "br" ? RegZero : RegRA;
        push(encodeBranch(op, ra, branchDisp(l, ops[0])));
        return;
    }
    if (m == "jsr") {
        need(2);
        RegIndex ra = reqReg(l, ops[0]);
        std::string t = ops[1];
        if (t.size() >= 2 && t.front() == '(' && t.back() == ')')
            t = std::string(trim(
                std::string_view(t).substr(1, t.size() - 2)));
        push(encodeJsr(ra, reqReg(l, t)));
        return;
    }
    if (m == "ret") {
        need(0);
        push(encodeJsr(RegZero, RegRA));
        return;
    }
    if (m == "halt" || m == "putint" || m == "putc") {
        need(0);
        SysFunct f = m == "halt" ? SysFunct::Halt
                   : m == "putint" ? SysFunct::Putint : SysFunct::Putc;
        push(encodeSys(f));
        return;
    }
    if (m == "nop") {
        need(0);
        push(encodeOp(IntFunct::Bis, RegZero, RegZero, RegZero));
        return;
    }
    if (m == "mov") {
        need(2);
        RegIndex src = reqReg(l, ops[0]);
        RegIndex dst = reqReg(l, ops[1]);
        push(encodeOp(IntFunct::Bis, src, src, dst));
        return;
    }
    if (m == "li" || m == "la") {
        need(2);
        RegIndex rc = reqReg(l, ops[0]);
        std::int64_t v = 0;
        bool is_num = parseInt(ops[1], v);
        if (!is_num)
            v = evalInt(l, ops[1], true);
        if (is_num && v >= -32768 && v <= 32767 && m == "li") {
            push(encodeMem(Opcode::Lda, rc, RegZero,
                           static_cast<std::int32_t>(v)));
            return;
        }
        std::uint64_t uv = static_cast<std::uint64_t>(v);
        std::int64_t lo = sext(uv, 16);
        std::int64_t rem = v - lo;
        std::int64_t hi = rem >> 16;
        if (rem % 65536 != 0 || hi < -32768 || hi > 32767)
            err(l.line_no, "constant too wide for li/la");
        push(encodeMem(Opcode::Ldah, rc, RegZero,
                       static_cast<std::int32_t>(hi)));
        // Symbolic li was sized at 2 instructions in pass 1, so the
        // lda half must be emitted even when lo == 0.
        if (lo != 0 || m == "la" || !is_num) {
            push(encodeMem(Opcode::Lda, rc, rc,
                           static_cast<std::int32_t>(lo)));
        }
        return;
    }
    err(l.line_no, "unknown mnemonic '" + m + "'");
}

void
Assembler::emitData(const SrcLine &l)
{
    const std::string &m = l.mnemonic;
    const auto &ops = l.operands;
    auto emit_int = [&](std::uint64_t v, unsigned bytes) {
        for (unsigned i = 0; i < bytes; ++i)
            data.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        dataCursor += bytes;
    };

    if (m == ".quad" || m == ".long" || m == ".byte") {
        unsigned width = m == ".quad" ? 8 : m == ".long" ? 4 : 1;
        for (const auto &tok : ops) {
            emit_int(static_cast<std::uint64_t>(evalInt(l, tok, true)),
                     width);
        }
        return;
    }
    if (m == ".space") {
        std::uint64_t n = dataSize(l);
        data.insert(data.end(), n, 0);
        dataCursor += n;
        return;
    }
    if (m == ".ascii" || m == ".asciz") {
        std::vector<std::uint8_t> bytes;
        parseEscapedString(l, ops[0], &bytes);
        if (m == ".asciz")
            bytes.push_back(0);
        data.insert(data.end(), bytes.begin(), bytes.end());
        dataCursor += bytes.size();
        return;
    }
    err(l.line_no, "unknown directive '" + m + "'");
}

Program
Assembler::run(const std::string &source)
{
    std::vector<SrcLine> lines;
    {
        std::istringstream is(source);
        std::string raw;
        unsigned n = 0;
        while (std::getline(is, raw)) {
            ++n;
            if (auto l = parseLine(n, raw))
                lines.push_back(std::move(*l));
        }
    }

    // Pass 1: assign addresses to labels.
    bool p1_text = true;
    Addr p1_text_cur = layout::TextBase;
    Addr p1_data_cur = layout::DataBase;
    for (const SrcLine &l : lines) {
        Addr &cur = p1_text ? p1_text_cur : p1_data_cur;
        if (!l.label.empty()) {
            if (symbols.count(l.label))
                err(l.line_no, "duplicate label '" + l.label + "'");
            symbols[l.label] = cur;
        }
        if (l.mnemonic.empty())
            continue;
        if (l.mnemonic == ".text") {
            p1_text = true;
            continue;
        }
        if (l.mnemonic == ".data") {
            p1_text = false;
            continue;
        }
        if (l.mnemonic == ".align") {
            std::int64_t a = 0;
            if (l.operands.size() != 1 ||
                !parseInt(l.operands[0], a) || !isPow2(
                    static_cast<std::uint64_t>(a))) {
                err(l.line_no, ".align needs a power of two");
            }
            cur = alignUp(cur, static_cast<std::uint64_t>(a));
            if (!l.label.empty())
                symbols[l.label] = cur;
            continue;
        }
        if (isDirective(l.mnemonic)) {
            if (p1_text)
                err(l.line_no, "data directive in .text");
            cur += dataSize(l);
        } else {
            if (!p1_text)
                err(l.line_no, "instruction in .data");
            cur += 4 * instCount(l);
        }
        // A label on a sized line points at the line's start, which
        // symbols[] already holds.
    }

    // Pass 2: encode.
    inText = true;
    for (const SrcLine &l : lines) {
        if (l.mnemonic.empty())
            continue;
        if (l.mnemonic == ".text") {
            inText = true;
            continue;
        }
        if (l.mnemonic == ".data") {
            inText = false;
            continue;
        }
        if (l.mnemonic == ".align") {
            std::int64_t a = 0;
            parseInt(l.operands[0], a);
            Addr &cur = inText ? textCursor : dataCursor;
            Addr target = alignUp(cur, static_cast<std::uint64_t>(a));
            while (cur < target) {
                if (inText) {
                    text.push_back(encodeOp(IntFunct::Bis, RegZero,
                                            RegZero, RegZero));
                    cur += 4;
                } else {
                    data.push_back(0);
                    cur += 1;
                }
            }
            continue;
        }
        if (isDirective(l.mnemonic))
            emitData(l);
        else
            emitInst(l);
    }

    if (text.empty())
        err(1, "program has no instructions");

    prog.textBase = layout::TextBase;
    prog.textSize = text.size() * 4;
    auto entry_it = symbols.find("main");
    prog.entry = entry_it != symbols.end() ? entry_it->second
                                           : layout::TextBase;

    std::vector<std::uint8_t> text_bytes;
    text_bytes.reserve(text.size() * 4);
    for (std::uint32_t w : text) {
        for (int i = 0; i < 4; ++i)
            text_bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
    prog.addSection(layout::TextBase, std::move(text_bytes));
    if (!data.empty())
        prog.addSection(layout::DataBase, data);
    return prog;
}

} // anonymous namespace

Program
assemble(const std::string &source, const std::string &name)
{
    Assembler as(name);
    return as.run(source);
}

} // namespace svf::isa
