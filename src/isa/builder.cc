#include "isa/builder.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace svf::isa
{

ProgramBuilder::ProgramBuilder(std::string name)
    : progName(std::move(name))
{
}

Label
ProgramBuilder::newLabel()
{
    Label l{static_cast<int>(labelPos.size())};
    labelPos.push_back(-1);
    return l;
}

void
ProgramBuilder::bind(Label l)
{
    svf_assert(l.valid() &&
               static_cast<size_t>(l.id) < labelPos.size());
    if (labelPos[l.id] >= 0)
        panic("label %d bound twice", l.id);
    labelPos[l.id] = static_cast<std::int64_t>(insts.size());
}

Label
ProgramBuilder::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
ProgramBuilder::emit(std::uint32_t raw)
{
    svf_assert(!finished);
    insts.push_back(raw);
}

void
ProgramBuilder::lda(RegIndex ra, std::int32_t disp, RegIndex rb)
{
    emit(encodeMem(Opcode::Lda, ra, rb, disp));
}

void
ProgramBuilder::ldah(RegIndex ra, std::int32_t disp, RegIndex rb)
{
    emit(encodeMem(Opcode::Ldah, ra, rb, disp));
}

void
ProgramBuilder::ldq(RegIndex ra, std::int32_t disp, RegIndex rb)
{
    emit(encodeMem(Opcode::Ldq, ra, rb, disp));
}

void
ProgramBuilder::stq(RegIndex ra, std::int32_t disp, RegIndex rb)
{
    emit(encodeMem(Opcode::Stq, ra, rb, disp));
}

void
ProgramBuilder::ldl(RegIndex ra, std::int32_t disp, RegIndex rb)
{
    emit(encodeMem(Opcode::Ldl, ra, rb, disp));
}

void
ProgramBuilder::stl(RegIndex ra, std::int32_t disp, RegIndex rb)
{
    emit(encodeMem(Opcode::Stl, ra, rb, disp));
}

void
ProgramBuilder::ldbu(RegIndex ra, std::int32_t disp, RegIndex rb)
{
    emit(encodeMem(Opcode::Ldbu, ra, rb, disp));
}

void
ProgramBuilder::stb(RegIndex ra, std::int32_t disp, RegIndex rb)
{
    emit(encodeMem(Opcode::Stb, ra, rb, disp));
}

void
ProgramBuilder::op(IntFunct f, RegIndex ra, RegIndex rb, RegIndex rc)
{
    emit(encodeOp(f, ra, rb, rc));
}

void
ProgramBuilder::opi(IntFunct f, RegIndex ra, std::uint8_t lit,
                    RegIndex rc)
{
    emit(encodeOpLit(f, ra, lit, rc));
}

void ProgramBuilder::addq(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Addq, a, b, c); }
void ProgramBuilder::addqi(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Addq, a, l, c); }
void ProgramBuilder::subq(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Subq, a, b, c); }
void ProgramBuilder::subqi(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Subq, a, l, c); }
void ProgramBuilder::mulq(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Mulq, a, b, c); }
void ProgramBuilder::mulqi(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Mulq, a, l, c); }
void ProgramBuilder::and_(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::And, a, b, c); }
void ProgramBuilder::andi(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::And, a, l, c); }
void ProgramBuilder::bis(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Bis, a, b, c); }
void ProgramBuilder::xor_(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Xor, a, b, c); }
void ProgramBuilder::xori(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Xor, a, l, c); }
void ProgramBuilder::sll(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Sll, a, b, c); }
void ProgramBuilder::slli(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Sll, a, l, c); }
void ProgramBuilder::srl(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Srl, a, b, c); }
void ProgramBuilder::srli(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Srl, a, l, c); }
void ProgramBuilder::srai(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Sra, a, l, c); }
void ProgramBuilder::cmpeq(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Cmpeq, a, b, c); }
void ProgramBuilder::cmpeqi(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Cmpeq, a, l, c); }
void ProgramBuilder::cmplt(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Cmplt, a, b, c); }
void ProgramBuilder::cmplti(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Cmplt, a, l, c); }
void ProgramBuilder::cmple(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Cmple, a, b, c); }
void ProgramBuilder::cmplei(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Cmple, a, l, c); }
void ProgramBuilder::cmpult(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Cmpult, a, b, c); }
void ProgramBuilder::cmpulti(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Cmpult, a, l, c); }
void ProgramBuilder::cmpule(RegIndex a, RegIndex b, RegIndex c)
{ op(IntFunct::Cmpule, a, b, c); }
void ProgramBuilder::cmpulei(RegIndex a, std::uint8_t l, RegIndex c)
{ opi(IntFunct::Cmpule, a, l, c); }

void
ProgramBuilder::emitBranch(Opcode op, RegIndex ra, Label target)
{
    svf_assert(target.valid());
    fixups.push_back(Fixup{insts.size(), target.id,
                           Fixup::Kind::Branch21});
    emit(encodeBranch(op, ra, 0));
}

void ProgramBuilder::br(Label t)
{ emitBranch(Opcode::Br, RegZero, t); }
void ProgramBuilder::bsr(Label t)
{ emitBranch(Opcode::Bsr, RegRA, t); }
void ProgramBuilder::beq(RegIndex ra, Label t)
{ emitBranch(Opcode::Beq, ra, t); }
void ProgramBuilder::bne(RegIndex ra, Label t)
{ emitBranch(Opcode::Bne, ra, t); }
void ProgramBuilder::blt(RegIndex ra, Label t)
{ emitBranch(Opcode::Blt, ra, t); }
void ProgramBuilder::ble(RegIndex ra, Label t)
{ emitBranch(Opcode::Ble, ra, t); }
void ProgramBuilder::bgt(RegIndex ra, Label t)
{ emitBranch(Opcode::Bgt, ra, t); }
void ProgramBuilder::bge(RegIndex ra, Label t)
{ emitBranch(Opcode::Bge, ra, t); }

void
ProgramBuilder::jsr(RegIndex ra, RegIndex rb)
{
    emit(encodeJsr(ra, rb));
}

void
ProgramBuilder::ret()
{
    emit(encodeJsr(RegZero, RegRA));
}

void
ProgramBuilder::halt()
{
    emit(encodeSys(SysFunct::Halt));
}

void
ProgramBuilder::putint()
{
    emit(encodeSys(SysFunct::Putint));
}

void
ProgramBuilder::putc()
{
    emit(encodeSys(SysFunct::Putc));
}

void
ProgramBuilder::mov(RegIndex src, RegIndex dst)
{
    bis(src, src, dst);
}

void
ProgramBuilder::nop()
{
    bis(RegZero, RegZero, RegZero);
}

namespace
{

/** Can @p v be produced by an lda/ldah pair off $zero? */
bool
fitsLdaPair(std::uint64_t v, std::int32_t &hi, std::int32_t &lo)
{
    auto sv = static_cast<std::int64_t>(v);
    lo = static_cast<std::int32_t>(sext(v, 16));
    std::int64_t rem = sv - lo;
    if (rem % 65536 != 0)
        return false;
    std::int64_t h = rem >> 16;
    if (h < -32768 || h > 32767)
        return false;
    hi = static_cast<std::int32_t>(h);
    return true;
}

} // anonymous namespace

void
ProgramBuilder::li32(RegIndex rc, std::int32_t v32)
{
    auto v = static_cast<std::int64_t>(v32);
    if (v >= -32768 && v <= 32767) {
        lda(rc, static_cast<std::int32_t>(v), RegZero);
        return;
    }
    std::int32_t hi = 0;
    std::int32_t lo = 0;
    if (fitsLdaPair(static_cast<std::uint64_t>(v), hi, lo)) {
        ldah(rc, hi, RegZero);
        if (lo != 0)
            lda(rc, lo, rc);
        return;
    }
    // Only values in [0x7fff8000, 0x7fffffff] reach here: the lda
    // sign extension cannot be cancelled by the ldah half. Build
    // them as 0x7fff0000 plus up to three positive lda steps.
    std::int32_t low = v32 & 0xffff;    // 0x8000..0xffff
    ldah(rc, 0x7fff, RegZero);
    lda(rc, 0x7fff, rc);
    lda(rc, 0x7fff, rc);
    lda(rc, low - 0xfffe, rc);
}

void
ProgramBuilder::li(RegIndex rc, std::uint64_t value)
{
    auto sv = static_cast<std::int64_t>(value);
    if (sv == static_cast<std::int64_t>(
            static_cast<std::int32_t>(value))) {
        li32(rc, static_cast<std::int32_t>(value));
        return;
    }
    // Wide constant: build the halves separately; clobbers $at.
    svf_assert(rc != RegAT);
    std::uint64_t hi32 = value >> 32;
    std::uint64_t lo32 = value & 0xffffffffULL;
    li32(rc, static_cast<std::int32_t>(hi32));
    slli(rc, 32, rc);
    li32(RegAT, static_cast<std::int32_t>(lo32));
    slli(RegAT, 32, RegAT);
    srli(RegAT, 32, RegAT);
    bis(rc, RegAT, rc);
}

void
ProgramBuilder::la(RegIndex rc, Label l)
{
    svf_assert(l.valid());
    // Addresses always fit an lda/ldah pair in our layout; reserve
    // the pair now and patch at finish().
    fixups.push_back(Fixup{insts.size(), l.id, Fixup::Kind::LiAddr});
    ldah(rc, 0, RegZero);
    lda(rc, 0, rc);
}

void
ProgramBuilder::call(Label target)
{
    bsr(target);
}

Addr
ProgramBuilder::allocData(const std::vector<std::uint8_t> &bytes,
                          unsigned align)
{
    svf_assert(isPow2(align));
    Addr addr = alignUp(dataCursor, align);
    std::uint64_t pad = addr - layout::DataBase;
    dataBytes.resize(pad, 0);
    dataBytes.insert(dataBytes.end(), bytes.begin(), bytes.end());
    dataCursor = addr + bytes.size();
    return addr;
}

Addr
ProgramBuilder::allocDataQuads(const std::vector<std::uint64_t> &quads)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(quads.size() * 8);
    for (std::uint64_t q : quads) {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(q >> (8 * i)));
    }
    return allocData(bytes, 8);
}

Addr
ProgramBuilder::allocDataZero(std::uint64_t size, unsigned align)
{
    return allocData(std::vector<std::uint8_t>(size, 0), align);
}

Addr
ProgramBuilder::allocHeap(std::uint64_t size, unsigned align)
{
    svf_assert(isPow2(align));
    Addr addr = alignUp(heapCursor, align);
    heapCursor = addr + size;
    if (heapCursor > layout::HeapLimit)
        fatal("heap allocation overflows the heap region");
    return addr;
}

Addr
ProgramBuilder::allocHeapQuads(const std::vector<std::uint64_t> &quads)
{
    Addr addr = allocHeap(quads.size() * 8, 8);
    heapInit.emplace_back(addr, quads);
    return addr;
}

Program
ProgramBuilder::finish(Label entry)
{
    svf_assert(!finished);
    svf_assert(entry.valid() && labelPos[entry.id] >= 0);
    finished = true;

    for (const Fixup &f : fixups) {
        std::int64_t pos = labelPos[f.label_id];
        if (pos < 0)
            panic("unbound label %d referenced", f.label_id);
        if (f.kind == Fixup::Kind::Branch21) {
            std::int64_t disp =
                pos - (static_cast<std::int64_t>(f.inst_index) + 1);
            std::uint32_t &raw = insts[f.inst_index];
            auto op = static_cast<Opcode>(bits(raw, 31, 26));
            auto ra = static_cast<RegIndex>(bits(raw, 25, 21));
            raw = encodeBranch(op, ra,
                               static_cast<std::int32_t>(disp));
        } else {
            Addr target = layout::TextBase +
                static_cast<Addr>(pos) * 4;
            std::int32_t hi = 0;
            std::int32_t lo = 0;
            if (!fitsLdaPair(target, hi, lo))
                panic("label address 0x%llx not lda-pair encodable",
                      static_cast<unsigned long long>(target));
            auto ldah_raw = insts[f.inst_index];
            auto lda_raw = insts[f.inst_index + 1];
            auto ra = static_cast<RegIndex>(bits(ldah_raw, 25, 21));
            svf_assert(static_cast<RegIndex>(bits(lda_raw, 25, 21))
                       == ra);
            insts[f.inst_index] =
                encodeMem(Opcode::Ldah, ra, RegZero, hi);
            insts[f.inst_index + 1] =
                encodeMem(Opcode::Lda, ra, ra, lo);
        }
    }

    Program prog;
    prog.name = progName;
    prog.entry = layout::TextBase +
        static_cast<Addr>(labelPos[entry.id]) * 4;
    prog.textBase = layout::TextBase;
    prog.textSize = insts.size() * 4;

    std::vector<std::uint8_t> text;
    text.reserve(insts.size() * 4);
    for (std::uint32_t w : insts) {
        for (int i = 0; i < 4; ++i)
            text.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
    prog.addSection(layout::TextBase, std::move(text));
    if (!dataBytes.empty())
        prog.addSection(layout::DataBase, dataBytes);
    for (const auto &hi_pair : heapInit) {
        std::vector<std::uint8_t> bytes;
        bytes.reserve(hi_pair.second.size() * 8);
        for (std::uint64_t q : hi_pair.second) {
            for (int i = 0; i < 8; ++i)
                bytes.push_back(
                    static_cast<std::uint8_t>(q >> (8 * i)));
        }
        prog.addSection(hi_pair.first, std::move(bytes));
    }
    return prog;
}

FunctionBuilder::FunctionBuilder(ProgramBuilder &pb, FrameSpec spec)
    : pb(pb), spec(std::move(spec))
{
    if (this->spec.useFp)
        this->spec.saveFp = true;
    std::uint32_t sz = alignUp(this->spec.localBytes, 8);
    sz += 8 * this->spec.saveRegs.size();
    if (this->spec.saveFp)
        sz += 8;
    if (this->spec.saveRa)
        sz += 8;
    frame = static_cast<std::uint32_t>(alignUp(sz, 16));
}

void
FunctionBuilder::prologue()
{
    if (frame == 0)
        return;
    pb.lda(RegSP, -static_cast<std::int32_t>(frame), RegSP);
    std::int32_t off = static_cast<std::int32_t>(frame);
    if (spec.saveRa) {
        off -= 8;
        pb.stq(RegRA, off, RegSP);
    }
    if (spec.saveFp) {
        off -= 8;
        pb.stq(RegFP, off, RegSP);
    }
    for (RegIndex r : spec.saveRegs) {
        off -= 8;
        pb.stq(r, off, RegSP);
    }
    if (spec.useFp) {
        // $fp points at the caller's frame base (the entry $sp).
        pb.lda(RegFP, static_cast<std::int32_t>(frame), RegSP);
    }
}

void
FunctionBuilder::epilogueRet()
{
    if (frame != 0) {
        std::int32_t off = static_cast<std::int32_t>(frame);
        if (spec.saveRa) {
            off -= 8;
            pb.ldq(RegRA, off, RegSP);
        }
        if (spec.saveFp) {
            off -= 8;
            pb.ldq(RegFP, off, RegSP);
        }
        for (RegIndex r : spec.saveRegs) {
            off -= 8;
            pb.ldq(r, off, RegSP);
        }
        pb.lda(RegSP, static_cast<std::int32_t>(frame), RegSP);
    }
    pb.ret();
}

std::int32_t
FunctionBuilder::localOff(std::uint32_t slot) const
{
    std::int32_t off = static_cast<std::int32_t>(slot * 8);
    svf_assert(off + 8 <= static_cast<std::int32_t>(
                   alignUp(spec.localBytes, 8)));
    return off;
}

void
FunctionBuilder::ldLocal(RegIndex r, std::uint32_t slot)
{
    pb.ldq(r, localOff(slot), RegSP);
}

void
FunctionBuilder::stLocal(RegIndex r, std::uint32_t slot)
{
    pb.stq(r, localOff(slot), RegSP);
}

void
FunctionBuilder::ldLocalFp(RegIndex r, std::uint32_t slot)
{
    svf_assert(spec.useFp);
    pb.ldq(r, localOff(slot) - static_cast<std::int32_t>(frame),
           RegFP);
}

void
FunctionBuilder::stLocalFp(RegIndex r, std::uint32_t slot)
{
    svf_assert(spec.useFp);
    pb.stq(r, localOff(slot) - static_cast<std::int32_t>(frame),
           RegFP);
}

void
FunctionBuilder::addrOfLocal(RegIndex r, std::uint32_t slot)
{
    pb.lda(r, localOff(slot), RegSP);
}

} // namespace svf::isa
