/**
 * @file
 * The RUU is header-only; this translation unit exists to give the
 * header a home in the library and to hold any future out-of-line
 * definitions.
 */

#include "uarch/ruu.hh"
