/**
 * @file
 * Event-driven issue-scheduler bookkeeping for the out-of-order core.
 *
 * The classic SimpleScalar issue loop rescans the whole RUU every
 * simulated cycle, re-polling every operand of every unissued
 * instruction. That burns host time proportional to window size ×
 * simulated cycles — most of it on instructions that cannot possibly
 * issue because a producer has not completed. This component holds
 * the state that inverts the relationship: instructions *wake up*
 * when the value they wait on completes, and the core *skips* cycles
 * in which nothing can happen at all.
 *
 * Three structures, all keyed by sequence number so they survive the
 * RUU's storage reuse, and all sized to the RUU window (configure()):
 *
 *   - **candidates** — unissued entries whose register sources are
 *     all complete, in program order. Only these are walked by the
 *     issue stage; an entry that loses a structural port simply
 *     stays in the set and re-arbitrates next cycle. A SeqRing
 *     (ring-indexed bitmap, seq_ring.hh): insert/erase are bit
 *     flips and the program-order walk is a word scan, not a
 *     red-black-tree traversal.
 *   - **waiters** — per-producer lists of entries blocked on that
 *     producer's completion. An entry waits on its first incomplete
 *     source; when that completes it either re-registers on the next
 *     incomplete source or graduates to the candidate set. Lists
 *     live in a ring-indexed slot pool: a producer's slot is
 *     `seq & mask` (unique among live seqs, same argument as the
 *     SeqRing), list vectors are recycled generation-stamped — no
 *     hash, no node churn.
 *   - **unknownAddrStores** — stores whose address is not yet known
 *     (not early-resolved and not completed), also a SeqRing. The
 *     issue walk only needs its *minimum*: the scan's cumulative
 *     "older store address unknown" prefix flag for a candidate c is
 *     exactly (min unknown seq) < c, and the set is stable for the
 *     duration of one walk (erasures happen in processEvents, which
 *     runs before the walk; insertions at dispatch, after it).
 *
 * Completions are a hand-rolled binary min-heap of (cycle, seq)
 * events pushed at issue time. Events are validated against the live
 * RUU entry when popped (a squash can orphan them), so stale events
 * are harmless. The heap top also bounds how far the core may
 * fast-forward `now` when a cycle does no work. reset() releases the
 * heap's backing storage — long daemon runs reuse one core across
 * many plan jobs, and the high-water mark of one job must not linger
 * for the rest.
 *
 * The OooCore owns all policy (what "ready" means, issue order, port
 * arbitration); this class is deliberately mechanism-only so the
 * scan and event schedulers share every line of the actual issue
 * logic — which is what makes them bit-identical.
 */

#ifndef SVF_UARCH_SCHED_HH
#define SVF_UARCH_SCHED_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "uarch/seq_ring.hh"

namespace svf::uarch
{

/** Host-side counters of the event scheduler (not simulated state). */
struct SchedStats
{
    std::uint64_t events = 0;       //!< completion events processed
    std::uint64_t wakeups = 0;      //!< waiter-list notifications
    std::uint64_t skippedCycles = 0; //!< idle cycles fast-forwarded
    std::uint64_t activeCycles = 0; //!< cycles actually evaluated
};

/** One scheduled completion. */
struct CompletionEvent
{
    Cycle cycle = 0;
    InstSeq seq = 0;
};

/** Wakeup/event state of the event-driven issue scheduler. */
class IssueScheduler
{
  public:
    IssueScheduler() { configure(64); }

    /**
     * Size every seq-indexed structure for a window of @p span
     * in-flight instructions (the RUU size). Must be called before
     * the first dispatch; resizing implies a full reset.
     */
    void
    configure(std::uint64_t span)
    {
        candidates.configure(span);
        unknownAddrStores.configure(span);
        std::uint64_t cap = 64;
        while (cap < span)
            cap <<= 1;
        waiterLists.assign(cap, {});
        waiterOwner.assign(cap, NoOwner);
        waiterGen.assign(cap, 0);
        waiterMask = cap - 1;
        wgen = 1;
        events.clear();
        _stats = SchedStats{};
    }

    /** Unissued, source-complete entries in program order. */
    SeqRing candidates;

    /** Stores whose address is still unknown, in program order. */
    SeqRing unknownAddrStores;

    /** Register @p waiter as blocked on @p producer. */
    void
    addWaiter(InstSeq producer, InstSeq waiter)
    {
        std::uint64_t i = producer & waiterMask;
        if (waiterGen[i] != wgen || waiterOwner[i] != producer) {
            waiterLists[i].clear();
            waiterGen[i] = wgen;
            waiterOwner[i] = producer;
        }
        waiterLists[i].push_back(waiter);
    }

    /**
     * Move @p producer's waiter list into @p out (swapped, so the
     * caller's scratch capacity recirculates into the slot pool) and
     * clear the slot. @retval false nobody was waiting.
     */
    bool
    takeWaiters(InstSeq producer, std::vector<InstSeq> &out)
    {
        std::uint64_t i = producer & waiterMask;
        if (waiterGen[i] != wgen || waiterOwner[i] != producer)
            return false;
        out.swap(waiterLists[i]);
        waiterGen[i] = 0;
        waiterOwner[i] = NoOwner;
        return true;
    }

    /** Schedule a completion notification for @p seq at @p cycle. */
    void
    pushEvent(Cycle cycle, InstSeq seq)
    {
        events.push_back({cycle, seq});
        std::size_t i = events.size() - 1;
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!earlier(events[i], events[parent]))
                break;
            std::swap(events[i], events[parent]);
            i = parent;
        }
    }

    /** Pop the next event due at or before @p now, if any. */
    std::optional<CompletionEvent>
    popEventDue(Cycle now)
    {
        if (events.empty() || events.front().cycle > now)
            return std::nullopt;
        CompletionEvent ev = events.front();
        events.front() = events.back();
        events.pop_back();
        siftDown();
        ++_stats.events;
        return ev;
    }

    /** Cycle of the earliest pending event (possibly stale). */
    std::optional<Cycle>
    nextEventCycle() const
    {
        if (events.empty())
            return std::nullopt;
        return events.front().cycle;
    }

    /**
     * Drop everything derived from RUU contents (candidates, waiter
     * lists, unknown-address stores). The event heap survives — a
     * replay can orphan events, and popEventDue callers re-validate
     * against the live entry anyway.
     */
    void
    clearDerived()
    {
        candidates.clear();
        unknownAddrStores.clear();
        ++wgen;                 // waiter slots recycle lazily
    }

    /**
     * Full reset for an oracle rebind (time-sliced
     * multi-programming): derived state *and* the event heap go —
     * after a rebind the new program restarts sequence numbers at 0,
     * so a stale event's seq could alias a live entry and popEventDue
     * validation would wrongly accept it. The heap's backing storage
     * is released too: between a daemon's plan jobs this is the only
     * structure whose high-water footprint would otherwise persist.
     * Stats survive; they describe the host run, not one program.
     */
    void
    reset()
    {
        clearDerived();
        events.clear();
        events.shrink_to_fit();
    }

    SchedStats &stats() { return _stats; }
    const SchedStats &stats() const { return _stats; }

  private:
    static constexpr InstSeq NoOwner = ~InstSeq(0);

    static bool
    earlier(const CompletionEvent &a, const CompletionEvent &b)
    {
        return a.cycle < b.cycle ||
               (a.cycle == b.cycle && a.seq < b.seq);
    }

    void
    siftDown()
    {
        const std::size_t n = events.size();
        std::size_t i = 0;
        while (true) {
            std::size_t l = 2 * i + 1;
            if (l >= n)
                break;
            std::size_t m = l;
            if (l + 1 < n && earlier(events[l + 1], events[l]))
                m = l + 1;
            if (!earlier(events[m], events[i]))
                break;
            std::swap(events[i], events[m]);
            i = m;
        }
    }

    /** @name Ring-indexed waiter-list slot pool */
    /// @{
    std::vector<std::vector<InstSeq>> waiterLists;
    std::vector<InstSeq> waiterOwner;
    std::vector<std::uint64_t> waiterGen;
    std::uint64_t waiterMask = 63;
    std::uint64_t wgen = 1;
    /// @}

    /** Binary min-heap ordered by (cycle, seq). */
    std::vector<CompletionEvent> events;

    SchedStats _stats;
};

} // namespace svf::uarch

#endif // SVF_UARCH_SCHED_HH
