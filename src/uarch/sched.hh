/**
 * @file
 * Event-driven issue-scheduler bookkeeping for the out-of-order core.
 *
 * The classic SimpleScalar issue loop rescans the whole RUU every
 * simulated cycle, re-polling every operand of every unissued
 * instruction. That burns host time proportional to window size ×
 * simulated cycles — most of it on instructions that cannot possibly
 * issue because a producer has not completed. This component holds
 * the state that inverts the relationship: instructions *wake up*
 * when the value they wait on completes, and the core *skips* cycles
 * in which nothing can happen at all.
 *
 * Three structures, all keyed by sequence number so they survive the
 * RUU's deque reallocation:
 *
 *   - **candidates** — unissued entries whose register sources are
 *     all complete, in program order. Only these are walked by the
 *     issue stage; an entry that loses a structural port simply
 *     stays in the set and re-arbitrates next cycle.
 *   - **waiters** — per-producer lists of entries blocked on that
 *     producer's completion. An entry waits on its first incomplete
 *     source; when that completes it either re-registers on the next
 *     incomplete source or graduates to the candidate set.
 *   - **unknownAddrStores** — stores whose address is not yet known
 *     (not early-resolved and not completed). The issue walk merges
 *     this ordered set with the candidates to reproduce the scan's
 *     "older store address unknown" prefix barrier exactly.
 *
 * Completions are a min-heap of (cycle, seq) events pushed at issue
 * time. Events are validated against the live RUU entry when popped
 * (a squash can orphan them), so stale events are harmless. The heap
 * top also bounds how far the core may fast-forward `now` when a
 * cycle does no work.
 *
 * The OooCore owns all policy (what "ready" means, issue order, port
 * arbitration); this class is deliberately mechanism-only so the
 * scan and event schedulers share every line of the actual issue
 * logic — which is what makes them bit-identical.
 */

#ifndef SVF_UARCH_SCHED_HH
#define SVF_UARCH_SCHED_HH

#include <cstdint>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace svf::uarch
{

/** Host-side counters of the event scheduler (not simulated state). */
struct SchedStats
{
    std::uint64_t events = 0;       //!< completion events processed
    std::uint64_t wakeups = 0;      //!< waiter-list notifications
    std::uint64_t skippedCycles = 0; //!< idle cycles fast-forwarded
    std::uint64_t activeCycles = 0; //!< cycles actually evaluated
};

/** One scheduled completion. */
struct CompletionEvent
{
    Cycle cycle = 0;
    InstSeq seq = 0;
};

/** Wakeup/event state of the event-driven issue scheduler. */
class IssueScheduler
{
  public:
    /** Unissued, source-complete entries in program order. */
    std::set<InstSeq> candidates;

    /** Producer seq -> entries waiting on its completion. */
    std::unordered_map<InstSeq, std::vector<InstSeq>> waiters;

    /** Stores whose address is still unknown, in program order. */
    std::set<InstSeq> unknownAddrStores;

    /** Register @p waiter as blocked on @p producer. */
    void
    addWaiter(InstSeq producer, InstSeq waiter)
    {
        waiters[producer].push_back(waiter);
    }

    /** Schedule a completion notification for @p seq at @p cycle. */
    void
    pushEvent(Cycle cycle, InstSeq seq)
    {
        events.push({cycle, seq});
    }

    /** Pop the next event due at or before @p now, if any. */
    std::optional<CompletionEvent>
    popEventDue(Cycle now)
    {
        if (events.empty() || events.top().cycle > now)
            return std::nullopt;
        CompletionEvent ev = events.top();
        events.pop();
        ++_stats.events;
        return ev;
    }

    /** Cycle of the earliest pending event (possibly stale). */
    std::optional<Cycle>
    nextEventCycle() const
    {
        if (events.empty())
            return std::nullopt;
        return events.top().cycle;
    }

    /**
     * Drop everything derived from RUU contents (candidates, waiter
     * lists, unknown-address stores). The event heap survives — a
     * replay can orphan events, and popEventDue callers re-validate
     * against the live entry anyway.
     */
    void
    clearDerived()
    {
        candidates.clear();
        waiters.clear();
        unknownAddrStores.clear();
    }

    /**
     * Full reset for an oracle rebind (time-sliced
     * multi-programming): derived state *and* the event heap go —
     * after a rebind the new program restarts sequence numbers at 0,
     * so a stale event's seq could alias a live entry and popEventDue
     * validation would wrongly accept it. Stats survive; they
     * describe the host run, not one program.
     */
    void
    reset()
    {
        clearDerived();
        events = decltype(events)();
    }

    SchedStats &stats() { return _stats; }
    const SchedStats &stats() const { return _stats; }

  private:
    struct Later
    {
        bool
        operator()(const CompletionEvent &a,
                   const CompletionEvent &b) const
        {
            return a.cycle > b.cycle ||
                   (a.cycle == b.cycle && a.seq > b.seq);
        }
    };

    std::priority_queue<CompletionEvent,
                        std::vector<CompletionEvent>, Later> events;
    SchedStats _stats;
};

} // namespace svf::uarch

#endif // SVF_UARCH_SCHED_HH
