/**
 * @file
 * Machine model parameters (Table 2 of the paper).
 */

#ifndef SVF_UARCH_MACHINE_CONFIG_HH
#define SVF_UARCH_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "mem/hierarchy.hh"
#include "mem/stack_cache.hh"
#include "core/svf_unit.hh"

namespace svf::uarch
{

/**
 * How the core finds issuable instructions each cycle.
 *
 * Both schedulers are *statistically bit-identical* — every
 * CoreStats counter, SVF/cache statistic and the final cycle count
 * match exactly (enforced by tests/uarch/sched_equiv_test). They
 * differ only in host cost:
 *
 *   - Scan:  SimpleScalar-style full-window rescan every simulated
 *            cycle — O(RUU occupancy) per cycle, even when the
 *            window is stalled on a memory miss.
 *   - Event: wakeup-driven ready lists plus a completion event
 *            queue; cycles in which nothing can commit, issue,
 *            dispatch or fetch are skipped in one step.
 */
enum class SchedKind : std::uint8_t
{
    Scan,
    Event,
};

/** "scan" / "event". */
const char *schedKindName(SchedKind kind);

/** Parse a scheduler name; fatal() on anything unknown. */
SchedKind parseSchedKind(const std::string &name);

/**
 * Process-wide default scheduler: $SVF_SCHED when set ("scan" or
 * "event"), otherwise Event. Read once, at the first MachineConfig
 * construction.
 */
SchedKind defaultSchedKind();

/**
 * How resolveDisambiguation finds older overlapping stores.
 *
 * Both modes produce the identical simulated machine — every cycle
 * count, forwarding decision and squash is the same. They differ in
 * host cost and in the two scan-accounting counters:
 *
 *   - Scan:   backward walk over the in-window store deque on every
 *             call; disambig_scan_steps counts one per store
 *             examined (~2.7 per committed instruction on
 *             store-heavy runs).
 *   - Filter: a small counting address-hash filter over the
 *             quadword granules of in-flight stores answers most
 *             calls in O(1) — only provably non-matching walks are
 *             skipped (a hash hit, even a false one, falls back to
 *             the exact walk), so the resolution is exact.
 *             disambig_filter_hits counts the skipped walks and
 *             disambig_scan_steps only the fallback walks' steps.
 */
enum class DisambigKind : std::uint8_t
{
    Scan,
    Filter,
};

/** "scan" / "filter". */
const char *disambigKindName(DisambigKind kind);

/** Parse a disambiguation-mode name; fatal() on anything unknown. */
DisambigKind parseDisambigKind(const std::string &name);

/**
 * Process-wide default disambiguation mode: $SVF_DISAMBIG when set
 * ("scan" or "filter"), otherwise Filter. Read once, at the first
 * MachineConfig construction.
 */
DisambigKind defaultDisambigKind();

/**
 * Full configuration of one simulated machine, combining the Table 2
 * processor model with the SVF / stack cache options of Section 5.
 */
struct MachineConfig
{
    /** @name Pipeline widths and window sizes (Table 2) */
    /// @{
    unsigned fetchWidth = 16;
    unsigned decodeWidth = 16;
    unsigned issueWidth = 16;
    unsigned commitWidth = 16;
    unsigned ifqSize = 64;
    unsigned ruuSize = 256;
    unsigned lsqSize = 128;
    /// @}

    /** @name Functional units (Table 2) */
    /// @{
    unsigned intAlu = 16;
    unsigned intMult = 4;
    /// @}

    /** @name Memory system */
    /// @{
    mem::HierarchyParams hier;

    /** DL1 ports usable per cycle (the "R" of the paper's (R+S)). */
    unsigned dl1Ports = 2;

    /** Store-to-load forwarding latency (Table 2: 3 cycles). */
    unsigned storeForwardLat = 3;

    /** Address-generation latency folded ahead of SVF reroutes. */
    unsigned agenLat = 1;
    /// @}

    /** @name Front end */
    /// @{
    std::string bpred = "perfect";

    /** Cycles from branch resolution to the redirected fetch. */
    unsigned redirectPenalty = 2;

    /**
     * Minimum cycles between dispatch and the earliest issue
     * (rename/schedule pipeline depth). This is also what opens the
     * Section 3.2 hazard window: a reference morphed at decode can
     * read the SVF before an older store's address has resolved in
     * the execute stage.
     */
    unsigned schedLatency = 2;

    /**
     * Taken control transfers a single fetch cycle may follow.
     * The paper's wide machines assume the aggressive multiple-
     * branch-predicting front ends it cites (Section 6); one taken
     * branch per cycle would otherwise cap call-heavy SPECint code
     * far below the 16-wide core's throughput.
     */
    unsigned maxTakenPerFetch = 3;
    /// @}

    /** @name Stack reference handling */
    /// @{
    /** The SVF configuration (enabled flag lives inside). */
    core::SvfUnitParams svf;

    /** Use a decoupled stack cache instead of the SVF. */
    bool stackCacheEnabled = false;
    mem::StackCacheParams stackCache;

    /**
     * Figure 6's no_addr_cal_op: resolve $sp-relative addresses at
     * decode (removing the base-register dependence) but still send
     * the references to the DL1.
     */
    bool noAddrCalcOp = false;
    /// @}

    /** @name Context switching */
    /// @{
    /** Committed instructions between switches; 0 disables. */
    std::uint64_t contextSwitchPeriod = 0;
    /// @}

    /**
     * Issue scheduler implementation (host-performance switch; the
     * simulated machine is identical either way). Defaults to
     * $SVF_SCHED, or Event. Hashed into key() so the experiment
     * runner never serves a scan result for an event request —
     * which is what lets one plan cross-check both.
     */
    SchedKind sched = defaultSchedKind();

    /**
     * Store-queue disambiguation implementation (host-performance
     * switch; the simulated machine is identical either way — only
     * disambig_scan_steps and disambig_filter_hits move). Defaults
     * to $SVF_DISAMBIG, or Filter. Folded into key() only when set
     * to the non-default Scan so existing default-config keys stay
     * stable.
     */
    DisambigKind disambig = defaultDisambigKind();

    /** Table 2's 4-wide machine. */
    static MachineConfig wide4();

    /** Table 2's 8-wide machine. */
    static MachineConfig wide8();

    /** Table 2's 16-wide machine. */
    static MachineConfig wide16();

    /** A Table 2 machine by width (4, 8 or 16). */
    static MachineConfig wide(unsigned w);

    /**
     * Canonical hash over every field, nested structures included.
     * Two configs with any differing parameter hash apart, so the
     * experiment runner can memoize simulations by setup key (see
     * harness/runner.hh).
     */
    std::uint64_t key(std::uint64_t seed = hashInit()) const;
};

} // namespace svf::uarch

#endif // SVF_UARCH_MACHINE_CONFIG_HH
