/**
 * @file
 * Cycle-level out-of-order core in the style of SimpleScalar's
 * sim-outorder (RUU + LSQ), extended with the paper's stack value
 * file, the decoupled stack cache comparator and the no_addr_cal_op
 * idealization.
 *
 * The model is timing-directed by an execute-ahead functional oracle:
 * the architectural instruction stream (with effective addresses and
 * branch outcomes) comes from sim::Emulator, and this class models
 * when each instruction would fetch, dispatch, issue, complete and
 * commit. Branch mispredictions stall fetch until the branch
 * resolves (wrong-path instructions are not executed; the paper's
 * headline experiments use a perfect predictor where this is exact).
 */

#ifndef SVF_UARCH_OOO_CORE_HH
#define SVF_UARCH_OOO_CORE_HH

#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/spec_sp.hh"
#include "core/svf_unit.hh"
#include "mem/hierarchy.hh"
#include "mem/stack_cache.hh"
#include "uarch/bpred.hh"
#include "uarch/lsq.hh"
#include "uarch/machine_config.hh"
#include "uarch/ruu.hh"
#include "uarch/sched.hh"
#include "uarch/word_map.hh"

namespace svf::trace
{
class CoreTracer;
} // namespace svf::trace

namespace svf::uarch
{

/** Aggregate run statistics. */
struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t squashes = 0;
    std::uint64_t spInterlocks = 0;
    std::uint64_t lsqForwards = 0;

    std::uint64_t ctxSwitches = 0;
    std::uint64_t svfCtxBytes = 0;
    std::uint64_t scCtxBytes = 0;
    std::uint64_t dl1CtxLines = 0;

    /**
     * @name Disambiguation / collision scan accounting
     * Steps taken by the store-index-bounded scans. Part of the
     * simulated machine's bookkeeping, not the host scheduler's, so
     * they are identical for both SchedKinds (the equivalence test
     * diffs them along with everything else).
     */
    /// @{
    std::uint64_t disambigScans = 0;     //!< resolveDisambiguation calls
    std::uint64_t disambigScanSteps = 0; //!< stores examined by those
    std::uint64_t disambigFilterHits = 0; //!< scans the filter answered
    std::uint64_t rerouteChecks = 0;     //!< checkRerouteCollision calls
    std::uint64_t rerouteScanSteps = 0;  //!< morphed loads examined
    /// @}

    /**
     * Committed instructions per cycle. A run that never advanced
     * (zero cycles) reports 0 rather than dividing to inf/nan —
     * degenerate runs must not poison table averages.
     */
    double ipc() const
    {
        if (cycles == 0)
            return 0.0;
        double v = static_cast<double>(committed) /
                   static_cast<double>(cycles);
        return std::isfinite(v) ? v : 0.0;
    }
};

/**
 * The pipeline model. Construct with a config and a fresh oracle,
 * call run(), then read stats()/hier()/svfUnit() for results.
 *
 * A System (uarch/system.hh) may instead drive the core in bounded
 * steps — beginRun() once, then runUntil() to successive epoch
 * barriers — and, in time-sliced multi-programming, swap the oracle
 * between programs with rebindOracle(). The classic run() is the
 * composition beginRun + runUntil(RunToCompletion) and behaves
 * exactly as it always did.
 */
class OooCore
{
  public:
    /**
     * @param config machine shape and stack-handling options.
     * @param oracle functional emulator positioned at the entry
     *               point; the core owns its advancement.
     * @param shared_l2 when non-null, this core's hierarchy routes
     *               L2 accesses through port @p core_id of the
     *               shared back end instead of a private L2.
     * @param core_id this core's slot (and SharedL2 port) index.
     */
    OooCore(const MachineConfig &config, sim::Emulator &oracle,
            mem::SharedL2 *shared_l2 = nullptr,
            unsigned core_id = 0);

    /**
     * Simulate until the program halts and drains, or until
     * @p max_insts instructions have been fetched and drained.
     *
     * Resumable: the window drains completely before run() returns,
     * so a later call picks up at the oracle's current position with
     * warm caches, predictor and SVF state — the interval-sampling
     * subsystem (ckpt/sampler.hh) alternates run() windows with
     * functional fast-forwards of the shared oracle. Statistics
     * accumulate monotonically across calls; callers measuring one
     * window diff stats() around it.
     */
    void run(std::uint64_t max_insts = ~std::uint64_t(0));

    /** Sentinel cycle limit for runUntil: no limit. */
    static constexpr Cycle RunToCompletion = ~Cycle(0);

    /**
     * Open a new fetch window of @p max_insts instructions (see
     * run()'s resumability notes) without simulating any cycles.
     * Pair with runUntil().
     */
    void beginRun(std::uint64_t max_insts = ~std::uint64_t(0));

    /**
     * Advance the pipeline until done() or until the core's clock
     * reaches @p limit, whichever comes first. The idle-cycle skip
     * clamps at the limit, so a core never runs ahead of an epoch
     * barrier. Statistics accumulate exactly as with run().
     *
     * @return done() — true when the current window has fully
     *         fetched and drained.
     */
    bool runUntil(Cycle limit);

    /** Has the current window fully fetched and drained? */
    bool
    done() const
    {
        return oracleDone && !fetchBuffer && ifq.empty() &&
               ruu.empty() && replayQueue.empty();
    }

    /**
     * Abandon the unfetched remainder of the current window: the
     * front end stops consuming the oracle, and run()/runUntil()
     * then only drain what is already in flight. The adaptive
     * sampler (sample=...,adapt) calls this when a measured window
     * has converged before its full budget. A later beginRun()
     * reopens the front end as usual.
     */
    void truncateRun() { fetchBudget = 0; }

    /** The core's current clock (monotone across windows). */
    Cycle cycle() const { return now; }

    /**
     * Perform one context-switch flush (SVF, stack cache, DL1) and
     * account it — the same action the ctx_period injector in
     * doCommit() takes, exposed for slice-boundary switches driven
     * by a System.
     */
    void forceContextSwitch();

    /**
     * Switch the core to a different program's oracle (time-sliced
     * multi-programming). The pipeline must be drained (done());
     * callers flush microarchitectural stack state first via
     * forceContextSwitch(). Clears every seq-keyed structure — the
     * new program restarts sequence numbers at 0, so stale entries
     * would alias — and re-anchors the SVF window at the incoming
     * program's $sp. Caches and predictor keep their (displaced)
     * contents: that displacement is the point of slice mode.
     */
    void rebindOracle(sim::Emulator &new_oracle);

    /**
     * Functional warming: account @p info to the caches and branch
     * predictor without modeling any timing. The sampler calls this
     * per fast-forwarded instruction so detailed windows start with
     * warm structures even when the warmup window is short. Cache
     * hit/miss counters advance — sampled measurements must diff
     * around the detailed window, not read totals.
     */
    void warmFunctional(const sim::ExecInfo &info);

    const CoreStats &stats() const { return _stats; }

    /**
     * Host-side scheduler counters (events, wakeups, skipped
     * cycles). Deliberately not part of CoreStats: they describe the
     * simulator, not the simulated machine, and differ between
     * SchedKinds by design.
     */
    const SchedStats &schedStats() const { return sched.stats(); }

    /**
     * Attach (or detach, with nullptr) a trace sink. Purely an
     * observer: the emit sites read state the model already computed
     * and never feed anything back, so counters are bit-identical
     * with or without a tracer (tests/integration/trace_equiv_test).
     * The tracer must outlive the traced run; it is not owned.
     */
    void attachTracer(trace::CoreTracer *t) { tracer = t; }

    mem::MemHierarchy &hier() { return _hier; }
    const mem::MemHierarchy &hier() const { return _hier; }
    core::SvfUnit &svfUnit() { return *svf; }
    const core::SvfUnit &svfUnit() const { return *svf; }
    const mem::StackCache *stackCache() const { return sc.get(); }
    const BranchPredictor &predictor() const { return *bpred; }

  private:
    /** One fetched-but-not-dispatched instruction. */
    struct FetchedInst
    {
        sim::ExecInfo info;
        bool mispredicted = false;
    };

    void doCommit();

    /** SimpleScalar-style full-window issue scan (SchedKind::Scan). */
    void doIssueScan();

    /** Candidate-list issue walk (SchedKind::Event). */
    void doIssueEvent();

    /** @name Event-scheduler bookkeeping (SchedKind::Event only) */
    /// @{
    /** Pop due completion events and wake their waiters. */
    void processEvents();

    /** Register a freshly dispatched entry with the scheduler. */
    void schedRegister(RuuEntry &e);

    /**
     * Place an unissued entry: waiter on its first incomplete
     * producer, else issue candidate.
     */
    void schedClassify(RuuEntry &e);

    /** Re-derive all scheduler state from the RUU after a replay. */
    void schedRebuild();

    /**
     * Earliest future cycle at which any pipeline stage could make
     * progress (completion events, issue eligibility, dispatch
     * stall, fetch redirect). NoWake when nothing is pending.
     */
    Cycle nextWakeCycle() const;
    /// @}

    /** Dispatch up to decodeWidth instructions; returns how many. */
    unsigned doDispatch();

    /** Fetch up to fetchWidth instructions; returns how many. */
    unsigned doFetch();

    /**
     * Squash recovery: remove every instruction from @p from on
     * from the RUU and queue it for re-dispatch (dependencies and
     * SVF classifications are preserved; issue slots, ports and
     * latencies are paid again).
     */
    void performReplay(InstSeq from);

    bool srcsReady(const RuuEntry &e) const;

    /**
     * One issue attempt for an eligible, unissued entry; charges
     * ports/slots and handles fetch redirect on success. Shared by
     * both schedulers — this is what makes them bit-identical.
     */
    bool tryIssueEntry(RuuEntry &e, bool older_store_addr_unknown);

    bool tryIssueMem(RuuEntry &e, bool older_store_addr_unknown);
    void resolveDisambiguation(RuuEntry &e);
    void checkRerouteCollision(const RuuEntry &store);

    /**
     * @name Traced hierarchy accesses
     * Identical to _hier.data() / sc->access().latency, plus a miss
     * event emitted when a tracer is attached (detected by diffing
     * the hit/miss counters around the access — reads only).
     */
    /// @{
    unsigned hierData(Addr ea, bool write);
    unsigned scAccess(Addr ea, bool write);
    /// @}

    [[noreturn]] void panicDeadlock(std::uint64_t stalled_iters);

    unsigned multLatency() const { return 3; }

    static constexpr Cycle NoWake = ~Cycle(0);

    MachineConfig cfg;
    sim::Emulator *oracle;    //!< rebindable (never null)
    mem::MemHierarchy _hier;
    std::unique_ptr<core::SvfUnit> svf;
    std::unique_ptr<mem::StackCache> sc;
    std::unique_ptr<BranchPredictor> bpred;
    core::SpecSpTracker specSp;

    Ruu ruu;
    LsqTracker lsq;
    StoreWordMap stackStores;
    std::deque<FetchedInst> ifq;
    std::deque<RuuEntry> replayQueue;
    InstSeq pendingSquashFrom = NoProducer;

    /** Wakeup lists + completion events (SchedKind::Event). */
    IssueScheduler sched;

    /** True once, from cfg.sched — checked on every hot path. */
    bool eventMode = false;

    /**
     * In-window stores in program order (both schedulers). Bounds
     * resolveDisambiguation to actual stores instead of the whole
     * window.
     */
    std::deque<InstSeq> windowStores;

    /** @name Store-address disambiguation filter (DisambigKind::Filter)
     * In-flight stores indexed by the quadword granules they cover,
     * each granule's seqs kept in program order (the same append /
     * pop-in-order discipline that keeps windowStores sorted). A
     * byte overlap implies a shared granule, so
     * resolveDisambiguation needs to examine only the same-granule
     * stores of the load — the youngest older overlapping one per
     * granule, maximized over the load's (at most two) granules, is
     * exactly the store the full backward walk would have found.
     * Most loads touch granules with no store at all and resolve in
     * O(1). Maintained unconditionally (two probes per store) so
     * $SVF_DISAMBIG can flip per process without state divergence.
     * Backed by a FlatWordMap: an emptied granule's vector stays in
     * its slot as a preallocated pool for the next store there.
     */
    /// @{
    FlatWordMap<std::vector<InstSeq>> storesByGranule;

    /** True once, from cfg.disambig — checked in the scan hot path. */
    bool filterMode = false;

    void storeFilterAdd(Addr ea, unsigned size, InstSeq seq);

    /** Remove @p seq (the oldest or youngest in-flight store). */
    void storeFilterRemove(Addr ea, unsigned size, InstSeq seq);

    /** The granule-indexed equivalent of the full backward walk. */
    void resolveDisambiguationFiltered(RuuEntry &e);
    /// @}

    /**
     * In-window decode-morphed (SvfFast) loads by quadword address
     * (both schedulers), each word's seqs a sorted vector
     * (morphedLoadAdd dedups: squashed entries are pruned lazily and
     * re-dispatch re-inserts the same (word, seq) pair). Bounds
     * checkRerouteCollision to same-word loads.
     */
    FlatWordMap<std::vector<InstSeq>> morphedLoadWords;

    /** Sorted-dedup insert into morphedLoadWords. */
    void morphedLoadAdd(Addr ea, InstSeq seq);

    /** Scratch for processEvents' waiter hand-off (reused). */
    std::vector<InstSeq> wakeScratch;

    /**
     * Earliest issue-eligibility (dispatchCycle + schedLatency) seen
     * among candidates during the last doIssueEvent walk; bounds the
     * idle-cycle skip.
     */
    std::optional<Cycle> issueEligibleAt;

    /** Architectural register -> youngest in-flight producer. */
    InstSeq renameMap[isa::NumRegs];

    Cycle now = 0;
    CoreStats _stats;

    /** Optional event sink (attachTracer); null = tracing off. */
    trace::CoreTracer *tracer = nullptr;

    /** @name Per-cycle resource counters */
    /// @{
    unsigned aluUsed = 0;
    unsigned multUsed = 0;
    unsigned dl1PortsUsed = 0;
    unsigned svfPortsUsed = 0;
    unsigned scPortsUsed = 0;
    unsigned issueUsed = 0;
    /// @}

    /** @name Front-end state */
    /// @{
    bool oracleDone = false;
    std::optional<sim::ExecInfo> fetchBuffer;
    std::uint64_t fetchBudget = ~std::uint64_t(0);
    Cycle fetchResumeCycle = 0;
    std::optional<InstSeq> fetchWaitSeq;    //!< mispredicted branch
    Addr lastFetchLine = ~Addr(0);
    /// @}

    Cycle dispatchStallUntil = 0;

    /**
     * Forward-progress guard: active (evaluated) cycles since the
     * last commit, persisted across runUntil() calls so an epoch
     * barrier cannot reset the deadlock clock.
     */
    std::uint64_t itersSinceCommit = 0;
};

} // namespace svf::uarch

#endif // SVF_UARCH_OOO_CORE_HH
