/**
 * @file
 * The Register Update Unit: the unified reservation-station +
 * reorder-buffer structure of Sohi and Vajapeyam that SimpleScalar's
 * out-of-order model (and therefore the paper) uses.
 */

#ifndef SVF_UARCH_RUU_HH
#define SVF_UARCH_RUU_HH

#include <cstdint>
#include <deque>

#include "base/types.hh"
#include "core/svf_unit.hh"
#include "sim/emulator.hh"

namespace svf::uarch
{

/** Sentinel producer meaning "operand ready at dispatch". */
constexpr InstSeq NoProducer = ~InstSeq(0);

/** Which structure services a memory reference. */
enum class MemRoute : std::uint8_t
{
    Dl1,
    StackCache,
    SvfFast,                    //!< decode-morphed SVF reference
    SvfReroute,                 //!< bounds-check rerouted SVF reference
};

/** One in-flight instruction. */
struct RuuEntry
{
    InstSeq seq = 0;
    sim::ExecInfo info;

    /** @name Operand dependencies (producer sequence numbers) */
    /// @{
    InstSeq src[2] = {NoProducer, NoProducer};
    unsigned nSrc = 0;

    /** Store data producer (checked at forward time, not issue). */
    InstSeq dataProducer = NoProducer;
    /// @}

    /** @name Memory reference handling */
    /// @{
    bool isLoad = false;
    bool isStore = false;

    core::StackRefInfo stackRef;
    MemRoute route = MemRoute::Dl1;

    /** Address known at dispatch (morphed / no_addr_cal_op). */
    bool earlyAddr = false;

    /** Load disambiguation memoization. */
    bool disambigDone = false;
    InstSeq fwdStore = NoProducer;      //!< matching older store
    bool fwdCovers = false;             //!< store covers the load

    /** Morphed load: SVF rename source (a morphed store), if any. */
    InstSeq svfProducer = NoProducer;

    /** Forward through the LSQ instead of the SVF rename path. */
    bool lsqForward = false;
    /// @}

    /** @name Execution state */
    /// @{
    Cycle dispatchCycle = 0;
    bool issued = false;
    Cycle completeCycle = 0;            //!< valid once issued
    bool mispredicted = false;          //!< resolved-late branch
    /// @}

    /** Is the result available at cycle @p now? */
    bool completed(Cycle now) const
    {
        return issued && completeCycle <= now;
    }
};

/**
 * The RUU proper: a bounded FIFO of in-flight instructions with
 * sequence-number lookup.
 */
class Ruu
{
  public:
    /** @param size maximum in-flight instructions. */
    explicit Ruu(unsigned size) : capacity(size) {}

    bool full() const { return entries.size() >= capacity; }
    bool empty() const { return entries.empty(); }
    size_t size() const { return entries.size(); }

    /** Append at the tail (dispatch). */
    RuuEntry &push(RuuEntry &&e)
    {
        entries.push_back(std::move(e));
        return entries.back();
    }

    /** Oldest entry. */
    RuuEntry &front() { return entries.front(); }

    /** Youngest entry. */
    RuuEntry &back() { return entries.back(); }

    /** Remove the oldest entry (commit). */
    void popFront() { entries.pop_front(); }

    /** Remove the youngest entry (squash/replay). */
    void popBack() { entries.pop_back(); }

    /** Is @p seq still in flight? */
    bool contains(InstSeq seq) const
    {
        return !entries.empty() && seq >= entries.front().seq &&
               seq <= entries.back().seq;
    }

    /** Entry for @p seq; caller must check contains(). */
    RuuEntry &bySeq(InstSeq seq)
    {
        return entries[seq - entries.front().seq];
    }

    const RuuEntry &bySeq(InstSeq seq) const
    {
        return entries[seq - entries.front().seq];
    }

    /**
     * Is the value produced by @p seq available at @p now? Producers
     * that already left the RUU are architectural and always ready.
     */
    bool producerReady(InstSeq seq, Cycle now) const
    {
        if (seq == NoProducer || !contains(seq))
            return true;
        return bySeq(seq).completed(now);
    }

    /** Iteration support (oldest first). */
    auto begin() { return entries.begin(); }
    auto end() { return entries.end(); }
    auto begin() const { return entries.begin(); }
    auto end() const { return entries.end(); }

  private:
    unsigned capacity;
    std::deque<RuuEntry> entries;
};

} // namespace svf::uarch

#endif // SVF_UARCH_RUU_HH
