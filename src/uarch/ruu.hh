/**
 * @file
 * The Register Update Unit: the unified reservation-station +
 * reorder-buffer structure of Sohi and Vajapeyam that SimpleScalar's
 * out-of-order model (and therefore the paper) uses.
 */

#ifndef SVF_UARCH_RUU_HH
#define SVF_UARCH_RUU_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "core/svf_unit.hh"
#include "sim/emulator.hh"

namespace svf::uarch
{

/** Sentinel producer meaning "operand ready at dispatch". */
constexpr InstSeq NoProducer = ~InstSeq(0);

/** Which structure services a memory reference. */
enum class MemRoute : std::uint8_t
{
    Dl1,
    StackCache,
    SvfFast,                    //!< decode-morphed SVF reference
    SvfReroute,                 //!< bounds-check rerouted SVF reference
};

/** One in-flight instruction. */
struct RuuEntry
{
    InstSeq seq = 0;
    sim::ExecInfo info;

    /** @name Operand dependencies (producer sequence numbers) */
    /// @{
    InstSeq src[2] = {NoProducer, NoProducer};
    unsigned nSrc = 0;

    /** Store data producer (checked at forward time, not issue). */
    InstSeq dataProducer = NoProducer;
    /// @}

    /** @name Memory reference handling */
    /// @{
    bool isLoad = false;
    bool isStore = false;

    core::StackRefInfo stackRef;
    MemRoute route = MemRoute::Dl1;

    /** Address known at dispatch (morphed / no_addr_cal_op). */
    bool earlyAddr = false;

    /** Load disambiguation memoization. */
    bool disambigDone = false;
    InstSeq fwdStore = NoProducer;      //!< matching older store
    bool fwdCovers = false;             //!< store covers the load

    /** Morphed load: SVF rename source (a morphed store), if any. */
    InstSeq svfProducer = NoProducer;

    /** Forward through the LSQ instead of the SVF rename path. */
    bool lsqForward = false;
    /// @}

    /** @name Execution state */
    /// @{
    Cycle dispatchCycle = 0;
    bool issued = false;
    Cycle completeCycle = 0;            //!< valid once issued
    bool mispredicted = false;          //!< resolved-late branch
    /// @}

    /** Is the result available at cycle @p now? */
    bool completed(Cycle now) const
    {
        return issued && completeCycle <= now;
    }
};

/**
 * The RUU proper: a bounded FIFO of in-flight instructions with
 * sequence-number lookup.
 *
 * Storage is a power-of-two ring over a flat vector. In-flight seqs
 * are contiguous ([front.seq, front.seq + size)) — dispatch assigns
 * them in order and squash/commit only trim the ends — so an entry's
 * slot is simply `seq & mask`: bySeq() is one masked index with no
 * deque two-level indirection, and push/pop never allocate (a
 * departing entry's slot is overwritten in place when the window
 * wraps back around).
 */
class Ruu
{
  public:
    /** @param size maximum in-flight instructions. */
    explicit Ruu(unsigned size) : capacity(size)
    {
        std::size_t cap = 1;
        while (cap < size)
            cap <<= 1;
        slots.resize(cap);
        mask = cap - 1;
    }

    bool full() const { return count >= capacity; }
    bool empty() const { return count == 0; }
    size_t size() const { return count; }

    /** Append at the tail (dispatch); seqs must stay contiguous. */
    RuuEntry &push(RuuEntry &&e)
    {
        if (count == 0)
            headSeq = e.seq;
        else
            svf_assert(e.seq == headSeq + count);
        RuuEntry &s = slots[(headSeq + count) & mask];
        s = std::move(e);
        ++count;
        return s;
    }

    /** Oldest entry. */
    RuuEntry &front() { return slots[headSeq & mask]; }

    /** Youngest entry. */
    RuuEntry &back() { return slots[(headSeq + count - 1) & mask]; }

    /** Remove the oldest entry (commit). */
    void popFront()
    {
        ++headSeq;
        --count;
    }

    /** Remove the youngest entry (squash/replay). */
    void popBack() { --count; }

    /** Is @p seq still in flight? */
    bool contains(InstSeq seq) const
    {
        return count != 0 && seq >= headSeq &&
               seq < headSeq + count;
    }

    /** Entry for @p seq; caller must check contains(). */
    RuuEntry &bySeq(InstSeq seq) { return slots[seq & mask]; }

    const RuuEntry &bySeq(InstSeq seq) const
    {
        return slots[seq & mask];
    }

    /**
     * Is the value produced by @p seq available at @p now? Producers
     * that already left the RUU are architectural and always ready.
     */
    bool producerReady(InstSeq seq, Cycle now) const
    {
        if (seq == NoProducer || !contains(seq))
            return true;
        return bySeq(seq).completed(now);
    }

    /** @name Iteration support (oldest first) */
    /// @{
    template <typename R, typename E>
    class Iter
    {
      public:
        Iter(R *r, InstSeq s) : r(r), s(s) {}
        E &operator*() const { return r->slots[s & r->mask]; }
        Iter &operator++()
        {
            ++s;
            return *this;
        }
        bool operator!=(const Iter &o) const { return s != o.s; }
        bool operator==(const Iter &o) const { return s == o.s; }

      private:
        R *r;
        InstSeq s;
    };

    auto begin() { return Iter<Ruu, RuuEntry>(this, headSeq); }
    auto end()
    {
        return Iter<Ruu, RuuEntry>(this, headSeq + count);
    }
    auto begin() const
    {
        return Iter<const Ruu, const RuuEntry>(this, headSeq);
    }
    auto end() const
    {
        return Iter<const Ruu, const RuuEntry>(this, headSeq + count);
    }
    /// @}

  private:
    unsigned capacity;
    std::vector<RuuEntry> slots;
    std::uint64_t mask = 0;
    InstSeq headSeq = 0;
    std::size_t count = 0;
};

} // namespace svf::uarch

#endif // SVF_UARCH_RUU_HH
