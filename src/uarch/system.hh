/**
 * @file
 * Componentized machine model: N core slots over one shared L2, or
 * one core time-slicing N programs.
 *
 * Historically one OooCore owned the world — its own oracle, its own
 * full MemHierarchy — and every layer above assumed that. System
 * breaks the assumption along the two axes the paper's Table 4
 * gestures at:
 *
 *   - **cores=N** (true multi-core): one SVA program per core, each
 *     slot bundling its own sim::Emulator oracle, OooCore, SVF /
 *     stack cache and private L1I/L1D, all sharing one L2 through a
 *     mem::SharedL2 back end. Cores advance in lockstep epochs of a
 *     fixed cycle quantum; within an epoch the harness may fan the
 *     slots over host threads, and at each barrier the shared L2
 *     commits (see mem/shared_l2.hh). Results are byte-identical
 *     for any host thread count.
 *   - **slice=Q** (time-sliced multi-programming): one core, N
 *     programs round-robined every Q committed instructions with a
 *     real context-switch flush between slices — the SVF, stack
 *     cache and DL1 displacement the legacy ctx_period injector
 *     could only fake against a single program's own footprint.
 *
 * cores=1 with no slicing degenerates to exactly the legacy
 * single-core path (same calls, same order), which is what makes
 * this refactor safe: that equivalence is pinned by
 * system_equiv_test on every workload.
 */

#ifndef SVF_UARCH_SYSTEM_HH
#define SVF_UARCH_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "isa/program.hh"
#include "mem/shared_l2.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"

namespace svf::uarch
{

/** Shape of the whole machine (all cores identical). */
struct SystemConfig
{
    /** Number of core slots (each gets its own program). */
    unsigned cores = 1;

    /**
     * Committed instructions per time slice; 0 disables slicing.
     * Requires cores == 1 (slicing shares one core by definition).
     */
    std::uint64_t slicePeriod = 0;

    /**
     * Epoch length in cycles for the multi-core barrier. Bounds the
     * staleness of cross-core L2 visibility; does not exist
     * micro-architecturally. Irrelevant when cores == 1.
     */
    Cycle quantum = 1024;

    /**
     * Host threads to fan the core slots over inside an epoch.
     * Purely a host-side knob: results are identical for any value.
     */
    unsigned threads = 1;

    /** Per-core machine shape. */
    MachineConfig machine;
};

/**
 * The machine: core slots, their oracles, and the shared L2.
 * Construct with one program per slot (multi-core) or N programs
 * for one slot (slice mode), call run(), then read per-core state
 * through core(i)/emu(i).
 */
class System
{
  public:
    /**
     * @param config machine shape and drive mode.
     * @param progs one program per core (cores=N), or the programs
     *        to round-robin (slice mode). Held alive by the System.
     */
    System(const SystemConfig &config,
           std::vector<std::shared_ptr<const isa::Program>> progs);

    /**
     * Run every program to completion, or until each has fetched
     * @p max_insts instructions (per program, matching the legacy
     * single-core budget semantics). Resumable like OooCore::run().
     */
    void run(std::uint64_t max_insts = ~std::uint64_t(0));

    unsigned cores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    unsigned programs() const
    {
        return static_cast<unsigned>(emus.size());
    }

    OooCore &core(unsigned i) { return *cores_[i]; }
    const OooCore &core(unsigned i) const { return *cores_[i]; }
    sim::Emulator &emu(unsigned i) { return *emus[i]; }
    const sim::Emulator &emu(unsigned i) const { return *emus[i]; }

    /** The shared back end; nullptr when cores == 1. */
    const mem::SharedL2 *sharedL2() const { return shared.get(); }

    const SystemConfig &config() const { return cfg; }

    /**
     * @name Slice bracketing hooks
     * Called around each slice with the program index, before the
     * first instruction of the slice and after the slice's
     * context-switch flush respectively — so a caller diffing core
     * stats around a slice attributes the switch cost to the
     * program that incurred it. Both optional.
     */
    /// @{
    std::function<void(unsigned prog)> onSliceBegin;
    std::function<void(unsigned prog)> onSliceEnd;
    /// @}

  private:
    void runMultiCore(std::uint64_t max_insts);
    void runSliced(std::uint64_t max_insts);

    SystemConfig cfg;
    std::vector<std::shared_ptr<const isa::Program>> progs;
    std::vector<std::unique_ptr<sim::Emulator>> emus;
    std::vector<std::unique_ptr<OooCore>> cores_;
    std::unique_ptr<mem::SharedL2> shared;

    /**
     * Multi-core epoch clock, persisted across run() calls so a
     * resumed run continues on the same barrier grid.
     */
    Cycle epochEnd = 0;

    /** Slice-mode round-robin cursor (persists across run calls). */
    unsigned curProgram = 0;

    /** Per-program instructions consumed (slice-mode budgeting). */
    std::vector<std::uint64_t> used;
};

} // namespace svf::uarch

#endif // SVF_UARCH_SYSTEM_HH
