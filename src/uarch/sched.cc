/**
 * @file
 * The issue scheduler is header-only; this translation unit gives
 * the header a home in the library.
 */

#include "uarch/sched.hh"
