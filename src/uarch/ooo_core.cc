#include "uarch/ooo_core.hh"

#include <algorithm>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "trace/trace.hh"

namespace svf::uarch
{

OooCore::OooCore(const MachineConfig &config, sim::Emulator &oracle,
                 mem::SharedL2 *shared_l2, unsigned core_id)
    : cfg(config), oracle(&oracle),
      _hier(config.hier, shared_l2, core_id),
      ruu(config.ruuSize), lsq(config.lsqSize)
{
    svf = std::make_unique<core::SvfUnit>(cfg.svf,
                                          isa::layout::StackBase);
    if (cfg.stackCacheEnabled)
        sc = std::make_unique<mem::StackCache>(cfg.stackCache, _hier);
    bpred = makePredictor(cfg.bpred);
    eventMode = cfg.sched == SchedKind::Event;
    filterMode = cfg.disambig == DisambigKind::Filter;
    sched.configure(cfg.ruuSize);
    for (auto &r : renameMap)
        r = NoProducer;
}

unsigned
OooCore::hierData(Addr ea, bool write)
{
    // Untraced: exactly _hier.data(). Traced: diff the miss counters
    // around the access to recover which level missed — reads only,
    // so the access itself (and every simulated counter) is
    // bit-identical either way.
    if (!trace::kTracingCompiled || !tracer ||
        !tracer->wants(trace::CatCache)) {
        return _hier.data(ea, write);
    }
    const std::uint64_t d = _hier.dl1().misses();
    const std::uint64_t l = _hier.l2().misses();
    const unsigned lat = _hier.data(ea, write);
    if (_hier.dl1().misses() != d)
        SVF_TRACE(tracer, now, Dl1Miss, ea, write);
    if (_hier.l2().misses() != l)
        SVF_TRACE(tracer, now, L2Miss, ea, write);
    return lat;
}

unsigned
OooCore::scAccess(Addr ea, bool write)
{
    if (!trace::kTracingCompiled || !tracer ||
        !tracer->wants(trace::CatCache)) {
        return sc->access(ea, write).latency;
    }
    const std::uint64_t m = sc->misses();
    const std::uint64_t d = _hier.dl1().misses();
    const std::uint64_t l = _hier.l2().misses();
    const unsigned lat = sc->access(ea, write).latency;
    tracer->emit(now, sc->misses() != m ? trace::Op::ScMiss
                                        : trace::Op::ScHit, ea, write);
    if (_hier.dl1().misses() != d)
        tracer->emit(now, trace::Op::Dl1Miss, ea, write);
    if (_hier.l2().misses() != l)
        tracer->emit(now, trace::Op::L2Miss, ea, write);
    return lat;
}

void
OooCore::storeFilterAdd(Addr ea, unsigned size, InstSeq seq)
{
    // memSize <= 8, so a store covers at most two quadword granules.
    // Dispatch and replay re-dispatch both push seqs in increasing
    // order onto a suffix-cleared list, so appending keeps every
    // granule's seq vector sorted — the windowStores invariant.
    std::uint64_t first = ea >> 3;
    std::uint64_t last = (ea + size - 1) >> 3;
    storesByGranule.slot(first).push_back(seq);
    if (last != first)
        storesByGranule.slot(last).push_back(seq);
}

void
OooCore::storeFilterRemove(Addr ea, unsigned size, InstSeq seq)
{
    // Stores leave from the window's ends only: commit drops the
    // oldest (each granule vector's front), squash replay drops the
    // youngest (its back).
    // An emptied vector means "no stores on this granule"; it stays
    // in its slot as a ready-made pool for the next one.
    auto drop = [&](std::uint64_t g) {
        std::vector<InstSeq> *v = storesByGranule.find(g);
        svf_assert(v && !v->empty());
        if (v->back() == seq) {
            v->pop_back();
        } else {
            svf_assert(v->front() == seq);
            v->erase(v->begin());
        }
    };
    std::uint64_t first = ea >> 3;
    std::uint64_t last = (ea + size - 1) >> 3;
    drop(first);
    if (last != first)
        drop(last);
}

void
OooCore::resolveDisambiguationFiltered(RuuEntry &e)
{
    // A byte overlap implies a shared quadword granule, so only the
    // same-granule stores of the load can match; the youngest older
    // overlapping store per granule, maximized over the load's (at
    // most two) granules, is the store the full backward walk finds.
    const isa::DecodedInst &ldi = *e.info.di;
    std::uint64_t first = e.info.ea >> 3;
    std::uint64_t last = (e.info.ea + ldi.memSize - 1) >> 3;
    bool walked = false;
    InstSeq best = NoProducer;
    for (std::uint64_t g = first; g <= last; ++g) {
        const std::vector<InstSeq> *gv = storesByGranule.find(g);
        if (!gv || gv->empty())
            continue;
        const std::vector<InstSeq> &v = *gv;
        auto it = std::lower_bound(v.begin(), v.end(), e.seq);
        while (it != v.begin()) {
            --it;
            walked = true;
            ++_stats.disambigScanSteps;
            const RuuEntry &s = ruu.bySeq(*it);
            if (rangesOverlap(s.info.ea, s.info.di->memSize,
                              e.info.ea, ldi.memSize)) {
                if (best == NoProducer || *it > best)
                    best = *it;
                break;      // youngest older match in this granule
            }
        }
    }
    if (!walked) {
        ++_stats.disambigFilterHits;
        SVF_TRACE(tracer, now, DisambigFilterHit, e.seq, e.info.ea);
    }
    if (best != NoProducer) {
        const RuuEntry &s = ruu.bySeq(best);
        e.fwdStore = best;
        e.fwdCovers = rangeCovers(s.info.ea, s.info.di->memSize,
                                  e.info.ea, ldi.memSize);
    }
    e.disambigDone = true;
}

bool
OooCore::srcsReady(const RuuEntry &e) const
{
    for (unsigned i = 0; i < e.nSrc; ++i) {
        if (!ruu.producerReady(e.src[i], now))
            return false;
    }
    return true;
}

void
OooCore::resolveDisambiguation(RuuEntry &e)
{
    // All older store addresses are known; find the youngest older
    // store overlapping this load. windowStores holds exactly the
    // in-window stores in program order, so the backward walk pays
    // one step per store, not one per RUU entry — a window full of
    // ALU ops costs nothing here.
    ++_stats.disambigScans;
    SVF_TRACE(tracer, now, DisambigScan, e.seq, e.info.ea);
    if (filterMode) {
        resolveDisambiguationFiltered(e);
        return;
    }
    const isa::DecodedInst &ldi = *e.info.di;
    auto it = std::lower_bound(windowStores.begin(),
                               windowStores.end(), e.seq);
    while (it != windowStores.begin()) {
        --it;
        ++_stats.disambigScanSteps;
        const RuuEntry &s = ruu.bySeq(*it);
        const isa::DecodedInst &sdi = *s.info.di;
        if (rangesOverlap(s.info.ea, sdi.memSize, e.info.ea,
                          ldi.memSize)) {
            e.fwdStore = s.seq;
            e.fwdCovers = rangeCovers(s.info.ea, sdi.memSize,
                                      e.info.ea, ldi.memSize);
            break;
        }
    }
    e.disambigDone = true;
}

void
OooCore::morphedLoadAdd(Addr ea, InstSeq seq)
{
    // Fresh dispatch appends in increasing seq order; replay
    // re-dispatch can hit a (word, seq) pair that was never lazily
    // pruned, so insert sorted with dedup — exactly std::set
    // semantics, minus the node allocations.
    std::vector<InstSeq> &v = morphedLoadWords.slot(ea >> 3);
    if (v.empty() || v.back() < seq) {
        v.push_back(seq);
        return;
    }
    auto it = std::lower_bound(v.begin(), v.end(), seq);
    if (it == v.end() || *it != seq)
        v.insert(it, seq);
}

void
OooCore::checkRerouteCollision(const RuuEntry &store)
{
    // Section 3.2: a store through a $gpr followed by a colliding
    // load through $sp. The load was morphed at decode, before this
    // store's address resolved, so it read a stale SVF value; a
    // pipeline squash recovers. Only decode-morphed loads on the
    // same quadword can collide, and morphedLoadWords indexes
    // exactly those — the forward walk visits candidates, not the
    // whole younger half of the window.
    ++_stats.rerouteChecks;
    std::vector<InstSeq> *seqs =
        morphedLoadWords.find(store.info.ea >> 3);
    if (!seqs || seqs->empty())
        return;

    InstSeq squash_from = NoProducer;
    std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(seqs->begin(), seqs->end(), store.seq) -
        seqs->begin());
    while (idx < seqs->size()) {
        ++_stats.rerouteScanSteps;
        if (!ruu.contains((*seqs)[idx])) {
            // Squashed and not yet re-dispatched: prune in place.
            seqs->erase(seqs->begin() + idx);
            continue;
        }
        RuuEntry &ld = ruu.bySeq((*seqs)[idx]);
        ++idx;
        if (ld.svfProducer != NoProducer &&
            ld.svfProducer >= store.seq) {
            continue;           // already repaired, or the load
                                // depends on a newer store
        }
        ++_stats.squashes;
        if (squash_from == NoProducer)
            squash_from = ld.seq;
        // Repair the dependence: the re-executed load forwards from
        // this store through the MOB.
        ld.svfProducer = store.seq;
        ld.lsqForward = true;
    }
    if (squash_from != NoProducer) {
        SVF_TRACE(tracer, now, RerouteSquash, squash_from, store.seq);
        // Defer the pipeline squash to the end of the issue pass
        // (removing entries would invalidate the walk).
        pendingSquashFrom = std::min(pendingSquashFrom, squash_from);
    }
}

bool
OooCore::tryIssueMem(RuuEntry &e, bool older_store_addr_unknown)
{
    if (e.isStore) {
        // Issue = address generation (morphed stores: the register
        // move itself, gated on the data instead). Sources must be
        // ready: the base register for address generation, the data
        // register for a morphed register move.
        if (!srcsReady(e))
            return false;
        if (e.route == MemRoute::SvfFast) {
            if (svfPortsUsed >= cfg.svf.svf.ports)
                return false;
            ++svfPortsUsed;
        } else if (e.route == MemRoute::SvfReroute) {
            // The bounds check and SVF write ride the SVF port at
            // execute (the paper's "modest performance penalty"
            // path); nothing further is needed at commit.
            if (svfPortsUsed >= cfg.svf.svf.ports)
                return false;
            if (aluUsed >= cfg.intAlu)
                return false;
            ++svfPortsUsed;
            ++aluUsed;
        } else {
            if (aluUsed >= cfg.intAlu)
                return false;
            ++aluUsed;
        }
        e.issued = true;
        e.completeCycle = now + 1;
        if (e.route == MemRoute::SvfReroute &&
            !svf->params().noSquash) {
            checkRerouteCollision(e);
        }
        return true;
    }

    // Loads.
    if (e.route == MemRoute::SvfFast) {
        if (svfPortsUsed >= cfg.svf.svf.ports)
            return false;
        if (e.svfProducer != NoProducer) {
            if (e.lsqForward) {
                // Regular MOB forwarding from a non-morphed store.
                if (!ruu.producerReady(e.svfProducer, now))
                    return false;
                if (ruu.contains(e.svfProducer)) {
                    const RuuEntry &s = ruu.bySeq(e.svfProducer);
                    if (!ruu.producerReady(s.dataProducer, now))
                        return false;
                }
                ++svfPortsUsed;
                e.issued = true;
                e.completeCycle = now + cfg.storeForwardLat;
                ++_stats.lsqForwards;
                return true;
            }
            // Renamed register move from a morphed store.
            if (!ruu.producerReady(e.svfProducer, now))
                return false;
        }
        ++svfPortsUsed;
        e.issued = true;
        if (e.stackRef.fill) {
            // Demand fill: one quadword read through the DL1 path.
            e.completeCycle = now + hierData(e.info.ea, false);
        } else {
            e.completeCycle = now + cfg.svf.svf.hitLatency;
        }
        return true;
    }

    // Non-morphed loads go through the LSQ: they need their base
    // register (unless the address resolved at decode), and all
    // older store addresses must be known.
    if (!srcsReady(e))
        return false;
    if (older_store_addr_unknown)
        return false;
    if (!e.disambigDone)
        resolveDisambiguation(e);

    bool forward = false;
    if (e.fwdStore != NoProducer && ruu.contains(e.fwdStore)) {
        const RuuEntry &s = ruu.bySeq(e.fwdStore);
        if (!e.fwdCovers) {
            // Partial overlap: wait for the store to drain to the
            // cache at commit.
            return false;
        }
        if (!s.completed(now) ||
            !ruu.producerReady(s.dataProducer, now)) {
            return false;
        }
        forward = true;
    }

    unsigned agen_alu = e.earlyAddr ? 0 : 1;
    if (aluUsed + agen_alu > cfg.intAlu)
        return false;

    unsigned latency = 0;
    switch (e.route) {
      case MemRoute::Dl1:
        if (dl1PortsUsed >= cfg.dl1Ports)
            return false;
        ++dl1PortsUsed;
        latency = forward ? cfg.storeForwardLat
                          : hierData(e.info.ea, false);
        break;
      case MemRoute::StackCache: {
        if (scPortsUsed >= sc->params().ports)
            return false;
        ++scPortsUsed;
        if (forward) {
            latency = cfg.storeForwardLat;
        } else {
            latency = scAccess(e.info.ea, false);
        }
        break;
      }
      case MemRoute::SvfReroute:
        if (svfPortsUsed >= cfg.svf.svf.ports)
            return false;
        ++svfPortsUsed;
        if (forward) {
            latency = cfg.storeForwardLat;
        } else if (e.stackRef.fill) {
            latency = cfg.agenLat + hierData(e.info.ea, false);
        } else {
            latency = cfg.agenLat + cfg.svf.svf.hitLatency;
        }
        break;
      default:
        panic("unexpected load route");
    }
    if (forward)
        ++_stats.lsqForwards;

    aluUsed += agen_alu;
    e.issued = true;
    e.completeCycle = now + latency;
    return true;
}

bool
OooCore::tryIssueEntry(RuuEntry &e, bool older_store_addr_unknown)
{
    const isa::DecodedInst &di = *e.info.di;
    bool issued_now = false;

    if (di.memRef) {
        issued_now = tryIssueMem(e, older_store_addr_unknown);
    } else if (di.cls == isa::InstClass::IntMult) {
        if (srcsReady(e) && multUsed < cfg.intMult) {
            ++multUsed;
            e.issued = true;
            e.completeCycle = now + multLatency();
            issued_now = true;
        }
    } else {
        // IntAlu, Control, Sys: one-cycle ALU operations.
        if (srcsReady(e) && aluUsed < cfg.intAlu) {
            ++aluUsed;
            e.issued = true;
            e.completeCycle = now + 1;
            issued_now = true;
        }
    }

    if (issued_now) {
        ++issueUsed;
        SVF_TRACE(tracer, now, Issue, e.seq,
                  di.memRef ? static_cast<std::uint64_t>(e.route) : 0);
        if (e.mispredicted && fetchWaitSeq &&
            *fetchWaitSeq == e.seq) {
            fetchResumeCycle = e.completeCycle +
                cfg.redirectPenalty;
            fetchWaitSeq.reset();
        }
    }
    return issued_now;
}

void
OooCore::doIssueScan()
{
    if (!ruu.empty()) {
        bool older_store_addr_unknown = false;
        InstSeq front_seq = ruu.front().seq;

        // A store's address is known once its agen completed — or
        // already at dispatch for decode-morphed references (that
        // early resolution is the SVF's point; a morphed store gates
        // its register-move issue on the data, not the address).
        auto addr_unknown = [this](const RuuEntry &e) {
            return e.isStore && !e.earlyAddr && !e.completed(now);
        };

        for (std::uint64_t idx = 0;
             idx < ruu.size() && issueUsed < cfg.issueWidth; ++idx) {
            RuuEntry &e = ruu.bySeq(front_seq + idx);
            if (!e.issued &&
                now >= e.dispatchCycle + cfg.schedLatency) {
                tryIssueEntry(e, older_store_addr_unknown);
            }
            if (addr_unknown(e))
                older_store_addr_unknown = true;
        }
    }

    if (pendingSquashFrom != NoProducer) {
        performReplay(pendingSquashFrom);
        pendingSquashFrom = NoProducer;
    }
}

void
OooCore::doIssueEvent()
{
    issueEligibleAt.reset();

    if (!sched.candidates.empty()) {
        // The candidate walk visits the same unissued entries in the
        // same program order as the full scan, and the scan's
        // cumulative "older store address unknown" prefix flag for a
        // candidate collapses to one comparison: it is set iff some
        // unknown-address store precedes the candidate, i.e. iff
        // min(unknownAddrStores) < seq. The set is stable for the
        // walk's duration (erasures happen in processEvents, before
        // the walk; insertions at dispatch, after it), and a store
        // stays in it until its completion event fires — the cycle
        // the scan's !completed(now) first turns false.
        const InstSeq min_unknown = sched.unknownAddrStores.first();

        for (InstSeq seq = sched.candidates.first();
             seq != SeqRing::End && issueUsed < cfg.issueWidth;
             seq = sched.candidates.next(seq)) {
            RuuEntry &e = ruu.bySeq(seq);
            if (now < e.dispatchCycle + cfg.schedLatency) {
                // Dispatch happens in program order, so
                // dispatchCycle is monotone in seq: every younger
                // candidate is ineligible too. Remember the boundary
                // for the idle-skip bound.
                issueEligibleAt = e.dispatchCycle + cfg.schedLatency;
                break;
            }
            if (tryIssueEntry(e, min_unknown < seq)) {
                sched.pushEvent(e.completeCycle, e.seq);
                sched.candidates.erase(seq);
            }
            // Otherwise: lost a port or an operand gate the
            // classifier cannot see (LSQ/SVF forwarding);
            // re-arbitrate on the next active cycle.
        }
    }

    if (pendingSquashFrom != NoProducer) {
        performReplay(pendingSquashFrom);
        pendingSquashFrom = NoProducer;
        schedRebuild();
    }
}

void
OooCore::processEvents()
{
    while (auto ev = sched.popEventDue(now)) {
        if (!ruu.contains(ev->seq))
            continue;           // committed (waiters already woken)
        RuuEntry &p = ruu.bySeq(ev->seq);
        if (!p.issued || p.completeCycle != ev->cycle)
            continue;           // orphaned by a replay; the rebuild
                                // re-registered everything

        // The store's address is known from this cycle on — exactly
        // when the scan's !completed(now) check would flip.
        sched.unknownAddrStores.erase(ev->seq);

        if (!sched.takeWaiters(ev->seq, wakeScratch))
            continue;
        for (InstSeq w : wakeScratch) {
            ++sched.stats().wakeups;
            if (!ruu.contains(w))
                continue;
            RuuEntry &e = ruu.bySeq(w);
            if (e.issued)
                continue;
            schedClassify(e);
        }
        wakeScratch.clear();
    }
}

void
OooCore::schedClassify(RuuEntry &e)
{
    // Wait on the first incomplete register source; with none, the
    // entry is an issue candidate (memory gates — ports, LSQ order,
    // SVF forwarding — are re-checked by the issue walk itself,
    // exactly as the scan does).
    for (unsigned i = 0; i < e.nSrc; ++i) {
        InstSeq p = e.src[i];
        if (p == NoProducer || !ruu.contains(p))
            continue;
        if (!ruu.bySeq(p).completed(now)) {
            sched.addWaiter(p, e.seq);
            return;
        }
    }
    sched.candidates.insert(e.seq);
}

void
OooCore::schedRegister(RuuEntry &e)
{
    if (e.isStore && !e.earlyAddr)
        sched.unknownAddrStores.insert(e.seq);
    schedClassify(e);
}

void
OooCore::schedRebuild()
{
    // A replay invalidated candidates, waiter lists and the unknown-
    // address set wholesale; re-derive them from the surviving
    // window. Heap events for squashed entries become stale and are
    // dropped by processEvents' validation.
    sched.clearDerived();
    for (RuuEntry &e : ruu) {
        if (e.isStore && !e.earlyAddr && !e.completed(now))
            sched.unknownAddrStores.insert(e.seq);
        if (!e.issued)
            schedClassify(e);
    }
}

Cycle
OooCore::nextWakeCycle() const
{
    Cycle next = NoWake;
    if (auto ev = sched.nextEventCycle())
        next = std::min(next, *ev);
    if (issueEligibleAt)
        next = std::min(next, *issueEligibleAt);
    if ((!replayQueue.empty() || !ifq.empty()) &&
        dispatchStallUntil > now) {
        next = std::min(next, dispatchStallUntil);
    }
    bool fetch_pending = !oracleDone || fetchBuffer;
    if (fetch_pending && !fetchWaitSeq && fetchResumeCycle > now)
        next = std::min(next, fetchResumeCycle);
    return next;
}

void
OooCore::performReplay(InstSeq from)
{
    // Pull the squashed tail out of the RUU, youngest first, into
    // the replay queue (program order restored via push_front).
    // SVF/cache architectural state was applied at first dispatch
    // and is deliberately not re-applied on re-dispatch.
    while (!ruu.empty() && ruu.back().seq >= from) {
        RuuEntry e = std::move(ruu.back());
        ruu.popBack();
        if (e.info.di->memRef)
            lsq.remove();
        if (e.isStore) {
            windowStores.pop_back();
            storeFilterRemove(e.info.ea, e.info.di->memSize, e.seq);
        }
        e.issued = false;
        replayQueue.push_front(std::move(e));
    }

    // The register map may point at squashed instructions; rebuild
    // it from the surviving window (re-dispatch restores the rest).
    for (auto &r : renameMap)
        r = NoProducer;
    for (RuuEntry &e : ruu) {
        RegIndex dest = e.info.di->destReg();
        if (dest != isa::NoReg)
            renameMap[dest] = e.seq;
    }

    // Front-end refill time for the refetched instructions.
    dispatchStallUntil = std::max<Cycle>(
        dispatchStallUntil, now + svf->params().squashPenalty);
}

void
OooCore::doCommit()
{
    for (unsigned n = 0; n < cfg.commitWidth && !ruu.empty(); ++n) {
        RuuEntry &e = ruu.front();
        if (!e.completed(now))
            break;

        if (e.isStore) {
            // The store leaves the window by writing its target
            // structure; this needs a port in the commit cycle.
            switch (e.route) {
              case MemRoute::Dl1:
                if (dl1PortsUsed >= cfg.dl1Ports)
                    return;
                ++dl1PortsUsed;
                hierData(e.info.ea, true);
                break;
              case MemRoute::StackCache:
                if (scPortsUsed >= sc->params().ports)
                    return;
                ++scPortsUsed;
                scAccess(e.info.ea, true);
                break;
              case MemRoute::SvfReroute:
              case MemRoute::SvfFast:
                // These wrote the SVF on their port at issue.
                break;
            }
        }

        const isa::DecodedInst &di = *e.info.di;
        if (di.memRef) {
            lsq.remove();
            if (e.isStore) {
                windowStores.pop_front();
                storeFilterRemove(e.info.ea, di.memSize, e.seq);
            } else if (e.route == MemRoute::SvfFast) {
                std::vector<InstSeq> *v =
                    morphedLoadWords.find(e.info.ea >> 3);
                if (v) {
                    auto it = std::lower_bound(v->begin(), v->end(),
                                               e.seq);
                    if (it != v->end() && *it == e.seq)
                        v->erase(it);
                }
            }
            if (di.load)
                ++_stats.loads;
            else
                ++_stats.stores;
        }
        if (di.ctrl) {
            ++_stats.branches;
            if (e.mispredicted)
                ++_stats.mispredicts;
        }

        SVF_TRACE(tracer, now, Commit, e.seq, e.info.pc);
        specSp.onComplete(e.seq);
        ruu.popFront();
        ++_stats.committed;

        if (cfg.contextSwitchPeriod &&
            _stats.committed % cfg.contextSwitchPeriod == 0) {
            forceContextSwitch();
        }
    }
}

unsigned
OooCore::doDispatch()
{
    unsigned dispatched = 0;
    for (unsigned n = 0; n < cfg.decodeWidth; ++n) {
        if (now < dispatchStallUntil)
            break;
        if (specSp.blocked() &&
            !ruu.producerReady(specSp.pendingWriter(), now)) {
            break;
        }

        // Squashed instructions re-dispatch ahead of new fetches;
        // their renaming is restored but their architectural SVF
        // effects are not re-applied.
        if (!replayQueue.empty()) {
            if (ruu.full())
                break;
            RuuEntry &head = replayQueue.front();
            if (head.info.di->memRef && lsq.full())
                break;
            RuuEntry e = std::move(head);
            replayQueue.pop_front();
            RegIndex dest = e.info.di->destReg();
            if (dest != isa::NoReg)
                renameMap[dest] = e.seq;
            if (e.isStore && (e.route == MemRoute::SvfFast ||
                              e.route == MemRoute::SvfReroute)) {
                stackStores.record(e.info.ea, e.seq);
            }
            if (e.isStore) {
                windowStores.push_back(e.seq);
                storeFilterAdd(e.info.ea, e.info.di->memSize, e.seq);
            } else if (e.isLoad && e.route == MemRoute::SvfFast) {
                morphedLoadAdd(e.info.ea, e.seq);
            }
            if (e.info.di->memRef)
                lsq.add();
            e.dispatchCycle = now;
            RuuEntry &placed = ruu.push(std::move(e));
            if (eventMode)
                schedRegister(placed);
            ++dispatched;
            continue;
        }

        if (ifq.empty() || ruu.full())
            break;

        FetchedInst &f = ifq.front();
        const isa::DecodedInst &di = *f.info.di;
        if (di.memRef && lsq.full())
            break;

        RuuEntry e;
        e.seq = f.info.seq;
        e.info = f.info;
        e.mispredicted = f.mispredicted;

        // Classify against the SVF and apply its architectural
        // effects in program order. When traced, diff the SVF's own
        // bookkeeping around the call to recover window allocations,
        // spill/fill traffic and the morph/reroute decision — reads
        // only, so the classification itself is untouched.
        if (trace::kTracingCompiled && tracer &&
            tracer->wants(trace::CatSvf) && svf->enabled()) {
            const core::StackValueFile &sv = svf->svf();
            const Addr base = sv.windowBase();
            const std::uint64_t qi = sv.quadsIn();
            const std::uint64_t qo = sv.quadsOut();
            e.stackRef = svf->classifyAndApply(f.info);
            if (sv.windowBase() < base) {
                tracer->emit(now, trace::Op::SvfAlloc, sv.windowBase(),
                             (base - sv.windowBase()) >> 3);
            }
            if (sv.quadsOut() != qo) {
                tracer->emit(now, trace::Op::SvfSpill, f.info.ea,
                             sv.quadsOut() - qo);
            }
            if (e.stackRef.fill) {
                tracer->emit(now, trace::Op::SvfFill, e.seq,
                             f.info.ea);
            } else if (sv.quadsIn() != qi) {
                // fill-on-allocate ablation: bulk fill, no single ref.
                tracer->emit(now, trace::Op::SvfFill, f.info.ea,
                             sv.quadsIn() - qi);
            }
            switch (e.stackRef.kind) {
              case core::StackRefKind::MorphLoad:
              case core::StackRefKind::MorphStore:
                tracer->emit(now, trace::Op::SvfMorph, e.seq,
                             f.info.ea);
                break;
              case core::StackRefKind::RerouteLoad:
              case core::StackRefKind::RerouteStore:
                tracer->emit(now, trace::Op::SvfReroute, e.seq,
                             f.info.ea);
                break;
              case core::StackRefKind::None:
                break;
            }
        } else {
            e.stackRef = svf->classifyAndApply(f.info);
        }

        if (di.memRef) {
            e.isLoad = di.load;
            e.isStore = di.store;
            switch (e.stackRef.kind) {
              case core::StackRefKind::MorphLoad:
              case core::StackRefKind::MorphStore:
                e.route = MemRoute::SvfFast;
                e.earlyAddr = true;
                break;
              case core::StackRefKind::RerouteLoad:
              case core::StackRefKind::RerouteStore:
                e.route = MemRoute::SvfReroute;
                break;
              default:
                if (sc && sim::classify(f.info.ea) ==
                          sim::Region::Stack) {
                    e.route = MemRoute::StackCache;
                } else {
                    e.route = MemRoute::Dl1;
                }
                // $sp-relative addresses resolve at decode whenever
                // the front end computes them (SVF bounds check or
                // the no_addr_cal_op idealization).
                e.earlyAddr = di.isSpBased() &&
                    (svf->enabled() || cfg.noAddrCalcOp);
                break;
            }
        }

        // Operand dependencies.
        auto rename_of = [&](RegIndex r) -> InstSeq {
            return renameMap[r];
        };
        if (e.route == MemRoute::SvfFast) {
            if (e.isStore) {
                // Morphed store: a register move gated on its data.
                if (di.ra != isa::RegZero)
                    e.src[e.nSrc++] = rename_of(di.ra);
            } else {
                // Morphed load: source comes from the SVF rename
                // path (or LSQ forwarding; see below).
                InstSeq producer = stackStores.lookup(
                    f.info.ea, ruu.empty() ? e.seq
                                           : ruu.front().seq);
                if (producer != StoreWordMap::NoStore &&
                    ruu.contains(producer)) {
                    const RuuEntry &s = ruu.bySeq(producer);
                    // The morph consults the rename table in the
                    // decode stage, a few cycles before this
                    // dispatch commitment point; a store resolved
                    // since then was still unknown to the morph.
                    Cycle decode_time =
                        now > cfg.schedLatency + 2
                            ? now - (cfg.schedLatency + 2) : 0;
                    if (s.route == MemRoute::SvfFast) {
                        e.svfProducer = producer;
                    } else if (s.completed(decode_time) ||
                               svf->params().noSquash) {
                        // Address already resolved (or the no-squash
                        // code generator ordered us after it):
                        // regular MOB store forwarding.
                        e.svfProducer = producer;
                        e.lsqForward = true;
                    }
                    // Otherwise: stale SVF read; the collision is
                    // detected when the store's address resolves
                    // (checkRerouteCollision).
                }
            }
        } else if (di.memRef) {
            if (e.isStore) {
                if (!e.earlyAddr && di.rb != isa::RegZero)
                    e.src[e.nSrc++] = rename_of(di.rb);
                if (di.ra != isa::RegZero)
                    e.dataProducer = rename_of(di.ra);
            } else {
                if (!e.earlyAddr && di.rb != isa::RegZero)
                    e.src[e.nSrc++] = rename_of(di.rb);
            }
        } else {
            RegIndex srcs[2];
            unsigned ns = di.srcRegs(srcs);
            for (unsigned i = 0; i < ns; ++i)
                e.src[e.nSrc++] = rename_of(srcs[i]);
        }

        // Register renaming.
        RegIndex dest = di.destReg();
        if (dest != isa::NoReg)
            renameMap[dest] = e.seq;
        if (e.isStore && (e.route == MemRoute::SvfFast ||
                          e.route == MemRoute::SvfReroute)) {
            stackStores.record(f.info.ea, e.seq);
        }
        if (e.isStore) {
            windowStores.push_back(e.seq);
            storeFilterAdd(f.info.ea, di.memSize, e.seq);
        } else if (e.isLoad && e.route == MemRoute::SvfFast) {
            morphedLoadAdd(f.info.ea, e.seq);
        }

        if (specSp.onDispatch(di, e.seq))
            ++_stats.spInterlocks;

        if (di.memRef)
            lsq.add();
        e.dispatchCycle = now;
        RuuEntry &placed = ruu.push(std::move(e));
        if (eventMode)
            schedRegister(placed);
        ++dispatched;
        ifq.pop_front();
    }
    return dispatched;
}

unsigned
OooCore::doFetch()
{
    if (now < fetchResumeCycle || fetchWaitSeq)
        return 0;

    unsigned fetched = 0;
    unsigned taken_budget = cfg.maxTakenPerFetch;
    for (unsigned n = 0; n < cfg.fetchWidth; ++n) {
        if (ifq.size() >= cfg.ifqSize)
            break;
        if (!fetchBuffer) {
            if (oracleDone || fetchBudget == 0) {
                oracleDone = true;
                break;
            }
            sim::ExecInfo info;
            if (!oracle->step(info)) {
                oracleDone = true;
                break;
            }
            --fetchBudget;
            fetchBuffer = info;
        }

        // Instruction cache: charge a stall when the fetch group
        // jumps into a missing line. Sequential next-line misses
        // are hidden by a stream buffer (the fill was started when
        // the previous line was fetched), so straight-line code
        // never stalls; only taken-branch targets can miss.
        Addr line = alignDown(fetchBuffer->pc,
                              cfg.hier.il1.lineSize);
        if (line != lastFetchLine) {
            bool sequential =
                line == lastFetchLine + cfg.hier.il1.lineSize;
            unsigned lat = _hier.fetch(fetchBuffer->pc);
            lastFetchLine = line;
            if (!sequential && lat > cfg.hier.il1.hitLatency) {
                fetchResumeCycle = now + lat;
                break;
            }
        }

        FetchedInst f;
        f.info = *fetchBuffer;
        fetchBuffer.reset();

        bool is_ctrl = f.info.di->ctrl;
        if (is_ctrl)
            f.mispredicted = !bpred->predictAndUpdate(f.info);

        bool taken = is_ctrl && f.info.taken;
        bool stop_group = f.mispredicted ||
            (taken && --taken_budget == 0);
        if (f.mispredicted)
            fetchWaitSeq = f.info.seq;

        SVF_TRACE(tracer, now, Fetch, f.info.seq, f.info.pc);
        ifq.push_back(std::move(f));
        ++fetched;
        if (stop_group)
            break;
    }
    return fetched;
}

void
OooCore::panicDeadlock(std::uint64_t stalled_iters)
{
    auto u = [](auto v) { return static_cast<unsigned long long>(v); };
    InstSeq head_seq = ruu.empty() ? NoProducer : ruu.front().seq;
    int head_issued = ruu.empty() ? -1 : int(ruu.front().issued);
    Cycle head_complete =
        ruu.empty() ? 0 : ruu.front().completeCycle;
    panic("pipeline deadlock (%s scheduler): no commit in %llu "
          "active cycles; now=%llu committed=%llu "
          "ruu=%llu head{seq=%llu issued=%d completeCycle=%llu} "
          "ifq=%llu replay=%llu oracleDone=%d "
          "fetchResumeCycle=%llu fetchWaitSeq=%lld "
          "dispatchStallUntil=%llu",
          schedKindName(cfg.sched), u(stalled_iters), u(now),
          u(_stats.committed), u(ruu.size()), u(head_seq),
          head_issued, u(head_complete), u(ifq.size()),
          u(replayQueue.size()), int(oracleDone),
          u(fetchResumeCycle),
          fetchWaitSeq ? static_cast<long long>(*fetchWaitSeq) : -1LL,
          u(dispatchStallUntil));
}

void
OooCore::warmFunctional(const sim::ExecInfo &info)
{
    const isa::DecodedInst &di = *info.di;
    if (di.memRef)
        _hier.data(info.ea, di.store);
    if (di.ctrl)
        bpred->predictAndUpdate(info);
}

void
OooCore::forceContextSwitch()
{
    ++_stats.ctxSwitches;
    const std::uint64_t svf_bytes = svf->contextSwitchFlush();
    _stats.svfCtxBytes += svf_bytes;
    SVF_TRACE(tracer, now, SvfWriteback, svf_bytes,
              _stats.ctxSwitches);
    if (sc)
        _stats.scCtxBytes += sc->contextSwitchFlush();
    _stats.dl1CtxLines += _hier.flushDl1(true);
}

void
OooCore::rebindOracle(sim::Emulator &new_oracle)
{
    // The pipeline must be drained. (Not done(): a freshly built
    // core has oracleDone still false yet is trivially rebindable.)
    svf_assert(!fetchBuffer && ifq.empty() && ruu.empty() &&
               replayQueue.empty());
    oracle = &new_oracle;
    oracleDone = new_oracle.halted();

    // Every seq-keyed structure must go: the incoming program's
    // sequence numbers restart at 0 and would alias stale entries
    // (Ruu::bySeq indexes relative to the window head; StoreWordMap
    // and the scheduler prune lazily by seq comparison).
    for (auto &r : renameMap)
        r = NoProducer;
    stackStores.clear();
    morphedLoadWords.clear();
    windowStores.clear();
    storesByGranule.clear();
    specSp.reset();
    sched.reset();
    issueEligibleAt.reset();
    pendingSquashFrom = NoProducer;

    // Front end restarts cleanly at the new program's PC.
    fetchWaitSeq.reset();
    fetchBuffer.reset();
    lastFetchLine = ~Addr(0);
    fetchResumeCycle = 0;
    dispatchStallUntil = 0;

    // The SVF window follows the incoming program's stack; the
    // outgoing program's dirty words were written back by the
    // caller's forceContextSwitch().
    svf->resyncSp(new_oracle.reg(isa::RegSP));
}

void
OooCore::beginRun(std::uint64_t max_insts)
{
    fetchBudget = max_insts;

    // Interval-boundary reset: a previous window that exhausted its
    // budget latched oracleDone to stop fetch while the window
    // drained. A fresh budget reopens the front end unless the
    // program really has halted — this is what makes windows
    // resumable for the sampler's detailed intervals.
    oracleDone = oracle->halted();
    itersSinceCommit = 0;
}

bool
OooCore::runUntil(Cycle limit)
{
    // Forward-progress guard: active (evaluated) cycles since the
    // last commit. An absolute cycle bound would be meaningless with
    // idle-cycle skipping — `now` can legitimately exceed any fixed
    // limit — and too slow to trip without it. The longest
    // legitimate commit gap is bounded by window size × memory
    // latency plus squash penalties, orders of magnitude below this.
    const std::uint64_t stall_limit = 10'000'000;

    while (!done() && now < limit) {
        ++now;
        if (eventMode) {
            processEvents();
            ++sched.stats().activeCycles;
        }
        aluUsed = multUsed = 0;
        dl1PortsUsed = svfPortsUsed = scPortsUsed = 0;
        issueUsed = 0;

        std::uint64_t committed_before = _stats.committed;
        doCommit();
        if (eventMode)
            doIssueEvent();
        else
            doIssueScan();
        unsigned dispatched = doDispatch();
        unsigned fetched = doFetch();

        bool committed = _stats.committed != committed_before;
        if (committed)
            itersSinceCommit = 0;
        else if (++itersSinceCommit > stall_limit)
            panicDeadlock(itersSinceCommit);

        if (eventMode && !committed && issueUsed == 0 &&
            dispatched == 0 && fetched == 0) {
            // Nothing happened and — with fresh port counters at the
            // top of the cycle — nothing can happen until the next
            // completion event, issue eligibility, dispatch-stall
            // expiry or fetch redirect. Jump there in one step; the
            // skipped cycles are statistically indistinguishable
            // from ticking through them. Clamp at the epoch barrier:
            // the System must observe this core exactly at `limit`.
            Cycle next = nextWakeCycle();
            if (next == NoWake)
                panicDeadlock(itersSinceCommit);
            Cycle target = next - 1;
            if (limit != RunToCompletion && target > limit)
                target = limit;
            if (target > now) {
                sched.stats().skippedCycles += target - now;
                now = target;
            }
        }
    }

    _stats.cycles = now;
    return done();
}

void
OooCore::run(std::uint64_t max_insts)
{
    beginRun(max_insts);
    runUntil(RunToCompletion);
}

} // namespace svf::uarch
