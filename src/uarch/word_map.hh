/**
 * @file
 * FlatWordMap: an open-addressed hash map from word/granule indices
 * to small values, tuned for the core's per-dispatch hot paths.
 *
 * The three word-keyed structures the dispatcher and LSQ touch every
 * memory instruction (StoreWordMap, the disambiguation filter's
 * granule index, the morphed-load word index) were all
 * std::unordered_map — one node allocation per insert, a pointer
 * chase per lookup, and wholesale rehash/rebuild churn on replay.
 * This map keeps everything in one flat slot array:
 *
 *  - linear probing over a power-of-two table, multiplicative hash;
 *  - generation-stamped clearing: clear() is a counter bump, stale
 *    slots are recycled lazily on their next use;
 *  - no per-slot deletion. Vector-valued maps treat an *empty*
 *    vector as absent, so "erase" is value.clear() — the vector's
 *    capacity stays behind as a preallocated pool for the next store
 *    or morphed load that lands on the same word, and probe chains
 *    are never broken. Dead slots are dropped at the next rehash.
 *
 * Values must be default-constructible; vector values additionally
 * get reset (not reallocated) when a stale slot is recycled.
 */

#ifndef SVF_UARCH_WORD_MAP_HH
#define SVF_UARCH_WORD_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace svf::uarch
{

namespace detail
{

/** Is this value "absent" for rehash-dropping purposes? */
template <typename V>
inline bool wordMapDead(const V &) { return false; }

template <typename T>
inline bool wordMapDead(const std::vector<T> &v) { return v.empty(); }

/** Recycle a stale slot's value in place. */
template <typename V>
inline void wordMapReset(V &) {}

template <typename T>
inline void wordMapReset(std::vector<T> &v) { v.clear(); }

} // namespace detail

template <typename V>
class FlatWordMap
{
  public:
    FlatWordMap() { rebuild(InitialCap); }

    /** Value for @p key, inserting a fresh one when absent. */
    V &
    slot(std::uint64_t key)
    {
        if ((used + 1) * 4 > cap() * 3)
            grow();
        Slot *s = probe(key);
        if (s->gen != gen || s->key != key) {
            s->gen = gen;
            s->key = key;
            detail::wordMapReset(s->value);
            ++used;
        }
        return s->value;
    }

    /** Value for @p key, or nullptr when never inserted. */
    const V *
    find(std::uint64_t key) const
    {
        const Slot *s = probe(key);
        if (s->gen != gen || s->key != key)
            return nullptr;
        return &s->value;
    }

    V *
    find(std::uint64_t key)
    {
        return const_cast<V *>(
            static_cast<const FlatWordMap *>(this)->find(key));
    }

    /** O(1): stale slots recycle lazily on next use. */
    void
    clear()
    {
        ++gen;
        used = 0;
    }

    /** Slots inserted since the last clear (dead ones included). */
    std::size_t liveSlots() const { return used; }

    /**
     * Visit every (key, value) inserted since the last clear().
     * Order is unspecified; @p fn may mutate the value.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Slot &s : slots) {
            if (s.gen == gen)
                fn(s.key, s.value);
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        std::uint64_t gen = 0;      //!< 0 = never used (gen starts 1)
        V value{};
    };

    static constexpr std::size_t InitialCap = 64;

    std::size_t cap() const { return slots.size(); }

    std::size_t
    indexOf(std::uint64_t key) const
    {
        // Fibonacci multiplicative hash; word indices arrive nearly
        // sequential, and this spreads runs while staying one mul.
        return (key * 0x9E3779B97F4A7C15ull) >> shift;
    }

    /** First slot that holds @p key or is free for it. */
    const Slot *
    probe(std::uint64_t key) const
    {
        std::size_t i = indexOf(key);
        const std::size_t mask = cap() - 1;
        while (true) {
            const Slot &s = slots[i];
            if (s.gen != gen || s.key == key)
                return &s;
            i = (i + 1) & mask;
        }
    }

    Slot *
    probe(std::uint64_t key)
    {
        return const_cast<Slot *>(
            static_cast<const FlatWordMap *>(this)->probe(key));
    }

    void
    rebuild(std::size_t n)
    {
        slots.assign(n, Slot{});
        shift = 64;
        for (std::size_t c = n; c > 1; c >>= 1)
            --shift;
        gen = 1;
        used = 0;
    }

    /**
     * Live slots crossed the load-factor bound: migrate them into a
     * fresh table, dropping dead (empty-vector) ones, and double the
     * capacity only if the live set alone still crowds the table.
     */
    void
    grow()
    {
        std::vector<Slot> old = std::move(slots);
        const std::uint64_t old_gen = gen;
        std::size_t live = 0;
        for (const Slot &s : old) {
            if (s.gen == old_gen && !detail::wordMapDead(s.value))
                ++live;
        }
        std::size_t n = old.size();
        while ((live + 1) * 2 > n)
            n <<= 1;
        rebuild(n);
        for (Slot &s : old) {
            if (s.gen != old_gen || detail::wordMapDead(s.value))
                continue;
            Slot *d = probe(s.key);
            d->gen = gen;
            d->key = s.key;
            d->value = std::move(s.value);
            ++used;
        }
    }

    std::vector<Slot> slots;
    unsigned shift = 58;
    std::uint64_t gen = 1;
    std::size_t used = 0;
};

} // namespace svf::uarch

#endif // SVF_UARCH_WORD_MAP_HH
