/**
 * @file
 * SeqRing: an ordered set of in-flight sequence numbers backed by a
 * ring-indexed bitmap.
 *
 * The event scheduler's candidate and unknown-address-store sets only
 * ever hold sequence numbers of instructions currently in the RUU,
 * and the RUU is a window: max live seq - min live seq < ruuSize. A
 * power-of-two bitmap of at least ruuSize bits therefore gives every
 * live seq a unique slot at `seq & mask`, and ordered iteration is a
 * circular word scan from the minimum — a handful of ctz operations
 * instead of a red-black-tree walk with one cache-missing node per
 * element. insert/erase are single bit flips; erase of the minimum
 * rescans (bounded by words(), typically 4–8 words) to keep `first()`
 * O(1), which the issue walk calls every active cycle.
 *
 * The capacity must strictly exceed the *live span* of the seqs ever
 * stored (capacity >= ruuSize suffices for RUU-resident seqs). With
 * the exact-minimum invariant, a stored seq is always reconstructed
 * unambiguously: for any live s, s - first() < capacity.
 */

#ifndef SVF_UARCH_SEQ_RING_HH
#define SVF_UARCH_SEQ_RING_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace svf::uarch
{

class SeqRing
{
  public:
    /** Sentinel: "no element" (acts as +infinity in comparisons). */
    static constexpr InstSeq End = ~InstSeq(0);

    SeqRing() { configure(64); }

    /** Size for a window of @p span in-flight seqs (rounds to pow2). */
    void
    configure(std::uint64_t span)
    {
        std::uint64_t cap = 64;
        while (cap < span)
            cap <<= 1;
        words.assign(cap >> 6, 0);
        mask = cap - 1;
        count = 0;
        lo = End;
    }

    bool empty() const { return count == 0; }
    std::uint64_t size() const { return count; }

    /** Smallest element, or End when empty. O(1). */
    InstSeq first() const { return count ? lo : End; }

    bool
    contains(InstSeq seq) const
    {
        if (count == 0 || seq < lo || seq - lo > mask)
            return false;
        std::uint64_t b = seq & mask;
        return (words[b >> 6] >> (b & 63)) & 1;
    }

    /** Idempotent insert (matching std::set semantics). */
    void
    insert(InstSeq seq)
    {
        svf_assert(count == 0 ||
                   (seq >= lo ? seq - lo : lo - seq) <= mask);
        std::uint64_t b = seq & mask;
        std::uint64_t bit = std::uint64_t(1) << (b & 63);
        if (words[b >> 6] & bit)
            return;
        words[b >> 6] |= bit;
        ++count;
        if (seq < lo || count == 1)
            lo = seq;
    }

    /** Idempotent erase; rescans for the new minimum if needed. */
    void
    erase(InstSeq seq)
    {
        if (count == 0 || seq < lo || seq - lo > mask)
            return;
        std::uint64_t b = seq & mask;
        std::uint64_t bit = std::uint64_t(1) << (b & 63);
        if (!(words[b >> 6] & bit))
            return;
        words[b >> 6] &= ~bit;
        --count;
        if (count == 0)
            lo = End;
        else if (seq == lo)
            lo = scanFrom(seq + 1);
    }

    /**
     * Smallest element strictly greater than @p seq, or End. Safe to
     * call on a just-erased @p seq (the issue walk's erase-as-you-go
     * pattern).
     */
    InstSeq
    next(InstSeq seq) const
    {
        if (count == 0)
            return End;
        if (seq < lo)
            return lo;
        if (seq - lo >= mask)
            return End;
        return scanFrom(seq + 1);
    }

    /** Drop every element. O(words). */
    void
    clear()
    {
        if (count) {
            for (std::uint64_t &w : words)
                w = 0;
            count = 0;
        }
        lo = End;
    }

  private:
    /**
     * First set bit at or after @p from (a seq with from - lo <=
     * capacity), reconstructed to a full seq; End when none remain in
     * [from, lo + capacity).
     */
    InstSeq
    scanFrom(InstSeq from) const
    {
        const std::uint64_t cap = mask + 1;
        std::uint64_t remaining = lo + cap - from;    // bits to scan
        std::uint64_t b = from & mask;
        std::uint64_t w = words[b >> 6] >> (b & 63);
        InstSeq base = from;
        while (true) {
            if (w) {
                std::uint64_t d = std::uint64_t(__builtin_ctzll(w));
                return d < remaining ? base + d : End;
            }
            std::uint64_t stepped = 64 - (b & 63);
            if (stepped >= remaining)
                return End;
            remaining -= stepped;
            base += stepped;
            b = (b + stepped) & mask;
            w = words[b >> 6];
        }
    }

    std::vector<std::uint64_t> words;
    std::uint64_t mask = 63;
    std::uint64_t count = 0;
    InstSeq lo = End;
};

} // namespace svf::uarch

#endif // SVF_UARCH_SEQ_RING_HH
