#include "uarch/bpred.hh"

#include "base/logging.hh"

namespace svf::uarch
{

bool
PerfectPredictor::predictAndUpdate(const sim::ExecInfo &info)
{
    (void)info;
    return true;
}

GsharePredictor::GsharePredictor(const GshareParams &params)
    : _params(params),
      pht(std::uint64_t(1) << params.historyBits, 1),
      btbTag(params.btbEntries, ~Addr(0)),
      btbTarget(params.btbEntries, 0),
      ras(params.rasEntries, 0)
{
}

bool
GsharePredictor::predictDirection(Addr pc)
{
    std::uint64_t idx = ((pc >> 2) ^ history) &
        ((std::uint64_t(1) << _params.historyBits) - 1);
    return pht[idx] >= 2;
}

void
GsharePredictor::updateDirection(Addr pc, bool taken)
{
    std::uint64_t idx = ((pc >> 2) ^ history) &
        ((std::uint64_t(1) << _params.historyBits) - 1);
    std::uint8_t &ctr = pht[idx];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history = ((history << 1) | (taken ? 1 : 0)) &
        ((std::uint64_t(1) << _params.historyBits) - 1);
}

bool
GsharePredictor::predictAndUpdate(const sim::ExecInfo &info)
{
    const isa::DecodedInst &di = *info.di;
    ++nLookups;
    bool correct = true;

    if (di.condBranch) {
        bool pred = predictDirection(info.pc);
        correct = pred == info.taken;
        updateDirection(info.pc, info.taken);
    } else if (di.uncondBranch) {
        // Direct target, computed at decode: always correct.
        if (di.call) {
            ras[rasTop] = info.pc + 4;
            rasTop = (rasTop + 1) % _params.rasEntries;
            if (rasDepth < _params.rasEntries)
                ++rasDepth;
        }
        correct = true;
    } else if (di.indirect) {
        if (di.ret) {
            Addr pred_target = 0;
            if (rasDepth > 0) {
                rasTop = (rasTop + _params.rasEntries - 1) %
                    _params.rasEntries;
                --rasDepth;
                pred_target = ras[rasTop];
            }
            correct = pred_target == info.nextPc;
        } else {
            std::uint64_t idx = (info.pc >> 2) % _params.btbEntries;
            correct = btbTag[idx] == info.pc &&
                      btbTarget[idx] == info.nextPc;
            btbTag[idx] = info.pc;
            btbTarget[idx] = info.nextPc;
            if (di.call) {
                ras[rasTop] = info.pc + 4;
                rasTop = (rasTop + 1) % _params.rasEntries;
                if (rasDepth < _params.rasEntries)
                    ++rasDepth;
            }
        }
    }

    if (!correct)
        ++nMispredicts;
    return correct;
}

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &kind)
{
    if (kind == "perfect")
        return std::make_unique<PerfectPredictor>();
    if (kind == "gshare")
        return std::make_unique<GsharePredictor>();
    fatal("unknown branch predictor '%s'", kind.c_str());
}

} // namespace svf::uarch
