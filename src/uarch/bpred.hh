/**
 * @file
 * Branch predictors for the timing-directed front end.
 *
 * The pipeline model is oracle-fed (no wrong-path execution), so a
 * predictor's job is to decide, per fetched control instruction,
 * whether the front end would have predicted it correctly; a wrong
 * answer stalls fetch until the branch resolves. Direct-branch
 * targets are computable at decode, so only direction (gshare PHT),
 * indirect targets (BTB) and returns (RAS) can mispredict.
 */

#ifndef SVF_UARCH_BPRED_HH
#define SVF_UARCH_BPRED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/emulator.hh"

namespace svf::uarch
{

/** Predictor interface consulted once per fetched control inst. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the control instruction described by @p info and update
     * predictor state with the actual outcome.
     *
     * @retval true when the front end predicted direction and target
     *         correctly (fetch continues), false on a mispredict.
     */
    virtual bool predictAndUpdate(const sim::ExecInfo &info) = 0;

    /** Human-readable name. */
    virtual const char *name() const = 0;
};

/** Always correct (the paper's headline configuration). */
class PerfectPredictor : public BranchPredictor
{
  public:
    bool predictAndUpdate(const sim::ExecInfo &info) override;
    const char *name() const override { return "perfect"; }
};

/** Configuration for the gshare predictor. */
struct GshareParams
{
    unsigned historyBits = 12;      //!< PHT of 2^bits 2-bit counters
    unsigned btbEntries = 2048;     //!< direct-mapped BTB
    unsigned rasEntries = 32;       //!< return address stack
};

/**
 * gshare direction predictor with a BTB for indirect targets and a
 * return address stack.
 */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(const GshareParams &params = {});

    bool predictAndUpdate(const sim::ExecInfo &info) override;
    const char *name() const override { return "gshare"; }

    /** @name Statistics */
    /// @{
    std::uint64_t lookups() const { return nLookups; }
    std::uint64_t mispredicts() const { return nMispredicts; }
    /// @}

  private:
    bool predictDirection(Addr pc);
    void updateDirection(Addr pc, bool taken);

    GshareParams _params;
    std::vector<std::uint8_t> pht;      //!< 2-bit counters
    std::vector<Addr> btbTag;
    std::vector<Addr> btbTarget;
    std::vector<Addr> ras;
    std::uint64_t history = 0;
    std::uint64_t rasTop = 0;           //!< circular stack pointer
    std::uint64_t rasDepth = 0;
    std::uint64_t nLookups = 0;
    std::uint64_t nMispredicts = 0;
};

/** Factory: "perfect" or "gshare". */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &kind);

} // namespace svf::uarch

#endif // SVF_UARCH_BPRED_HH
