/**
 * @file
 * LSQ helpers are header-only; see lsq.hh.
 */

#include "uarch/lsq.hh"
