#include "uarch/machine_config.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace svf::uarch
{

const char *
schedKindName(SchedKind kind)
{
    return kind == SchedKind::Scan ? "scan" : "event";
}

SchedKind
parseSchedKind(const std::string &name)
{
    if (name == "scan")
        return SchedKind::Scan;
    if (name == "event")
        return SchedKind::Event;
    fatal("scheduler must be 'scan' or 'event' (got '%s')",
          name.c_str());
}

SchedKind
defaultSchedKind()
{
    static const SchedKind kind = [] {
        const char *env = std::getenv("SVF_SCHED");
        if (!env || !*env)
            return SchedKind::Event;
        return parseSchedKind(env);
    }();
    return kind;
}

const char *
disambigKindName(DisambigKind kind)
{
    return kind == DisambigKind::Scan ? "scan" : "filter";
}

DisambigKind
parseDisambigKind(const std::string &name)
{
    if (name == "scan")
        return DisambigKind::Scan;
    if (name == "filter")
        return DisambigKind::Filter;
    fatal("disambiguation mode must be 'scan' or 'filter' (got '%s')",
          name.c_str());
}

DisambigKind
defaultDisambigKind()
{
    static const DisambigKind kind = [] {
        const char *env = std::getenv("SVF_DISAMBIG");
        if (!env || !*env)
            return DisambigKind::Filter;
        return parseDisambigKind(env);
    }();
    return kind;
}

MachineConfig
MachineConfig::wide4()
{
    MachineConfig c;
    c.fetchWidth = c.decodeWidth = c.issueWidth = c.commitWidth = 4;
    c.ifqSize = 16;
    c.ruuSize = 64;
    c.lsqSize = 32;
    return c;
}

MachineConfig
MachineConfig::wide8()
{
    MachineConfig c;
    c.fetchWidth = c.decodeWidth = c.issueWidth = c.commitWidth = 8;
    c.ifqSize = 32;
    c.ruuSize = 128;
    c.lsqSize = 64;
    return c;
}

MachineConfig
MachineConfig::wide16()
{
    MachineConfig c;
    c.fetchWidth = c.decodeWidth = c.issueWidth = c.commitWidth = 16;
    c.ifqSize = 64;
    c.ruuSize = 256;
    c.lsqSize = 128;
    return c;
}

std::uint64_t
MachineConfig::key(std::uint64_t seed) const
{
    seed = hashCombine(seed, std::uint64_t(fetchWidth));
    seed = hashCombine(seed, std::uint64_t(decodeWidth));
    seed = hashCombine(seed, std::uint64_t(issueWidth));
    seed = hashCombine(seed, std::uint64_t(commitWidth));
    seed = hashCombine(seed, std::uint64_t(ifqSize));
    seed = hashCombine(seed, std::uint64_t(ruuSize));
    seed = hashCombine(seed, std::uint64_t(lsqSize));
    seed = hashCombine(seed, std::uint64_t(intAlu));
    seed = hashCombine(seed, std::uint64_t(intMult));
    seed = hier.key(seed);
    seed = hashCombine(seed, std::uint64_t(dl1Ports));
    seed = hashCombine(seed, std::uint64_t(storeForwardLat));
    seed = hashCombine(seed, std::uint64_t(agenLat));
    seed = hashCombine(seed, bpred);
    seed = hashCombine(seed, std::uint64_t(redirectPenalty));
    seed = hashCombine(seed, std::uint64_t(schedLatency));
    seed = hashCombine(seed, std::uint64_t(maxTakenPerFetch));
    seed = svf.key(seed);
    seed = hashCombine(seed, std::uint64_t(stackCacheEnabled));
    seed = stackCache.key(seed);
    seed = hashCombine(seed, std::uint64_t(noAddrCalcOp));
    seed = hashCombine(seed, contextSwitchPeriod);
    seed = hashCombine(seed, std::uint64_t(sched));
    // Folded only for the non-default Scan so existing keys of
    // default-mode configs stay valid across the cache format.
    if (disambig == DisambigKind::Scan)
        seed = hashCombine(seed, std::uint64_t(3));
    return seed;
}

MachineConfig
MachineConfig::wide(unsigned w)
{
    switch (w) {
      case 4: return wide4();
      case 8: return wide8();
      case 16: return wide16();
      default:
        fatal("no Table 2 machine model with width %u", w);
    }
}

} // namespace svf::uarch
