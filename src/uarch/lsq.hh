/**
 * @file
 * Load/store queue bookkeeping: occupancy and the word-granular
 * store map used for forwarding and SVF collision detection.
 */

#ifndef SVF_UARCH_LSQ_HH
#define SVF_UARCH_LSQ_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "uarch/word_map.hh"

namespace svf::uarch
{

/**
 * Tracks the most recent in-flight store to each 64-bit word of
 * memory. Used at dispatch to find the producer a morphed load
 * should forward from, and at rerouted-store issue to detect the
 * Section 3.2 collision squash.
 *
 * Entries are pruned lazily: a lookup returning a sequence number
 * older than the RUU head means "no in-flight store". Backed by a
 * flat open-addressed table (word_map.hh), so record/lookup are one
 * probe with no node allocation.
 */
class StoreWordMap
{
  public:
    /** Record a store of @p seq covering the word of @p addr. */
    void record(Addr addr, InstSeq seq)
    {
        map.slot(addr >> 3) = seq;
    }

    /**
     * Latest in-flight store to the word of @p addr.
     *
     * @param addr byte address.
     * @param oldest_inflight sequence number of the RUU head.
     * @return the store's seq, or NoStore when none is in flight.
     */
    InstSeq lookup(Addr addr, InstSeq oldest_inflight) const
    {
        const InstSeq *s = map.find(addr >> 3);
        if (!s || *s < oldest_inflight)
            return NoStore;
        return *s;
    }

    /** Sentinel for "no in-flight store to that word". */
    static constexpr InstSeq NoStore = ~InstSeq(0);

    /** Drop stale entries to bound memory (called occasionally). */
    void prune(InstSeq oldest_inflight)
    {
        std::vector<std::pair<std::uint64_t, InstSeq>> live;
        live.reserve(map.liveSlots());
        map.forEach([&](std::uint64_t word, InstSeq seq) {
            if (seq >= oldest_inflight)
                live.emplace_back(word, seq);
        });
        map.clear();
        for (const auto &[word, seq] : live)
            map.slot(word) = seq;
    }

    size_t size() const { return map.liveSlots(); }

    /**
     * Drop everything. Needed at an oracle rebind: the next program
     * restarts seqs at 0, so lazy pruning's "older than the RUU
     * head" test would mistake a stale entry for a live store.
     */
    void clear() { map.clear(); }

  private:
    FlatWordMap<InstSeq> map;
};

/** Simple LSQ occupancy counter. */
class LsqTracker
{
  public:
    /** @param size maximum simultaneous memory operations. */
    explicit LsqTracker(unsigned size) : capacity(size) {}

    bool full() const { return occupancy >= capacity; }
    void add() { ++occupancy; }
    void remove() { --occupancy; }
    unsigned used() const { return occupancy; }

  private:
    unsigned capacity;
    unsigned occupancy = 0;
};

/** Do two byte ranges [a, a+an) and [b, b+bn) overlap? */
inline bool
rangesOverlap(Addr a, unsigned an, Addr b, unsigned bn)
{
    return a < b + bn && b < a + an;
}

/** Does range [outer, outer+on) fully cover [inner, inner+in_)? */
inline bool
rangeCovers(Addr outer, unsigned on, Addr inner, unsigned in_)
{
    return outer <= inner && inner + in_ <= outer + on;
}

} // namespace svf::uarch

#endif // SVF_UARCH_LSQ_HH
