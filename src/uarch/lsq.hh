/**
 * @file
 * Load/store queue bookkeeping: occupancy and the word-granular
 * store map used for forwarding and SVF collision detection.
 */

#ifndef SVF_UARCH_LSQ_HH
#define SVF_UARCH_LSQ_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "base/types.hh"

namespace svf::uarch
{

/**
 * Tracks the most recent in-flight store to each 64-bit word of
 * memory. Used at dispatch to find the producer a morphed load
 * should forward from, and at rerouted-store issue to detect the
 * Section 3.2 collision squash.
 *
 * Entries are pruned lazily: a lookup returning a sequence number
 * older than the RUU head means "no in-flight store".
 */
class StoreWordMap
{
  public:
    /** Record a store of @p seq covering the word of @p addr. */
    void record(Addr addr, InstSeq seq)
    {
        map[addr >> 3] = seq;
    }

    /**
     * Latest in-flight store to the word of @p addr.
     *
     * @param addr byte address.
     * @param oldest_inflight sequence number of the RUU head.
     * @return the store's seq, or NoStore when none is in flight.
     */
    InstSeq lookup(Addr addr, InstSeq oldest_inflight) const
    {
        auto it = map.find(addr >> 3);
        if (it == map.end() || it->second < oldest_inflight)
            return NoStore;
        return it->second;
    }

    /** Sentinel for "no in-flight store to that word". */
    static constexpr InstSeq NoStore = ~InstSeq(0);

    /** Drop stale entries to bound memory (called occasionally). */
    void prune(InstSeq oldest_inflight)
    {
        for (auto it = map.begin(); it != map.end();) {
            if (it->second < oldest_inflight)
                it = map.erase(it);
            else
                ++it;
        }
    }

    size_t size() const { return map.size(); }

    /**
     * Drop everything. Needed at an oracle rebind: the next program
     * restarts seqs at 0, so lazy pruning's "older than the RUU
     * head" test would mistake a stale entry for a live store.
     */
    void clear() { map.clear(); }

  private:
    std::unordered_map<std::uint64_t, InstSeq> map;
};

/** Simple LSQ occupancy counter. */
class LsqTracker
{
  public:
    /** @param size maximum simultaneous memory operations. */
    explicit LsqTracker(unsigned size) : capacity(size) {}

    bool full() const { return occupancy >= capacity; }
    void add() { ++occupancy; }
    void remove() { --occupancy; }
    unsigned used() const { return occupancy; }

  private:
    unsigned capacity;
    unsigned occupancy = 0;
};

/** Do two byte ranges [a, a+an) and [b, b+bn) overlap? */
inline bool
rangesOverlap(Addr a, unsigned an, Addr b, unsigned bn)
{
    return a < b + bn && b < a + an;
}

/** Does range [outer, outer+on) fully cover [inner, inner+in_)? */
inline bool
rangeCovers(Addr outer, unsigned on, Addr inner, unsigned in_)
{
    return outer <= inner && inner + in_ <= outer + on;
}

} // namespace svf::uarch

#endif // SVF_UARCH_LSQ_HH
