#include "uarch/system.hh"

#include <algorithm>
#include <thread>

#include "base/logging.hh"

namespace svf::uarch
{

System::System(const SystemConfig &config,
               std::vector<std::shared_ptr<const isa::Program>> ps)
    : cfg(config), progs(std::move(ps))
{
    svf_assert(cfg.cores >= 1);
    svf_assert(!progs.empty());
    if (cfg.slicePeriod) {
        // Slicing shares one core by definition.
        svf_assert(cfg.cores == 1);
    } else if (cfg.cores > 1) {
        svf_assert(progs.size() == cfg.cores);
    } else {
        svf_assert(progs.size() == 1);
    }
    for (const auto &p : progs) {
        svf_assert(p != nullptr);
        emus.push_back(std::make_unique<sim::Emulator>(*p));
    }

    unsigned nslots = cfg.slicePeriod ? 1 : cfg.cores;
    if (nslots > 1) {
        shared = std::make_unique<mem::SharedL2>(
            cfg.machine.hier.l2, nslots);
    }
    for (unsigned i = 0; i < nslots; ++i) {
        cores_.push_back(std::make_unique<OooCore>(
            cfg.machine, *emus[i], shared.get(), i));
    }
    used.assign(progs.size(), 0);
}

void
System::run(std::uint64_t max_insts)
{
    if (cfg.slicePeriod)
        runSliced(max_insts);
    else if (cores_.size() == 1)
        cores_[0]->run(max_insts);    // the legacy path, verbatim
    else
        runMultiCore(max_insts);
}

void
System::runMultiCore(std::uint64_t max_insts)
{
    const unsigned n = cores();
    std::vector<unsigned char> doneF(n, 0);
    for (unsigned i = 0; i < n; ++i) {
        cores_[i]->beginRun(max_insts);
        doneF[i] = cores_[i]->done() ? 1 : 0;
    }
    auto all_done = [&] {
        return std::all_of(doneF.begin(), doneF.end(),
                           [](unsigned char d) { return d != 0; });
    };

    const unsigned nthreads =
        std::max(1u, std::min(cfg.threads, n));

    while (!all_done()) {
        epochEnd += cfg.quantum;

        // Phase A: every core advances to the barrier against the
        // frozen shared-L2 tags. Slot i only touches its own core,
        // oracle and SharedL2 port, and its own doneF element, so
        // the partition over host threads is race-free and the
        // results are identical for any nthreads.
        if (nthreads == 1) {
            for (unsigned i = 0; i < n; ++i)
                doneF[i] = cores_[i]->runUntil(epochEnd) ? 1 : 0;
        } else {
            std::vector<std::thread> pool;
            pool.reserve(nthreads);
            for (unsigned t = 0; t < nthreads; ++t) {
                pool.emplace_back([&, t] {
                    for (unsigned i = t; i < n; i += nthreads) {
                        doneF[i] =
                            cores_[i]->runUntil(epochEnd) ? 1 : 0;
                    }
                });
            }
            for (std::thread &th : pool)
                th.join();
        }

        // Phase B: serial replay in core order — this is where the
        // shared tags, LRU and memory traffic actually move.
        shared->commitEpoch();
    }
}

void
System::runSliced(std::uint64_t max_insts)
{
    OooCore &core = *cores_[0];
    const unsigned n = programs();

    // The budget is per run() call per program, matching the legacy
    // single-core fetchBudget semantics.
    used.assign(n, 0);

    auto active = [&](unsigned j) {
        return !emus[j]->halted() && used[j] < max_insts;
    };

    while (true) {
        // Next runnable program at or after the round-robin cursor.
        unsigned j = curProgram, tries = 0;
        while (tries < n && !active(j)) {
            j = (j + 1) % n;
            ++tries;
        }
        if (tries == n)
            break;

        // Uniform entry: rebind even when resuming the same program
        // (the switch flush below already dropped its window state).
        core.rebindOracle(*emus[j]);
        if (onSliceBegin)
            onSliceBegin(j);

        std::uint64_t quota =
            std::min(cfg.slicePeriod, max_insts - used[j]);
        std::uint64_t before = emus[j]->instCount();
        core.run(quota);
        used[j] += emus[j]->instCount() - before;
        curProgram = (j + 1) % n;

        // A switch (and its flush) happens iff something runs next —
        // with a single program that is the program itself, which
        // reproduces the Table 4 "flush every period" scenario. The
        // flush lands inside this slice's bracket so its writeback
        // cost is attributed to the program that incurred it.
        bool any_next = false;
        for (unsigned k = 0; k < n && !any_next; ++k)
            any_next = active(k);
        if (any_next)
            core.forceContextSwitch();
        if (onSliceEnd)
            onSliceEnd(j);
        if (!any_next)
            break;
    }
}

} // namespace svf::uarch
