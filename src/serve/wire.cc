#include "serve/wire.hh"

#include <cstdio>
#include <cstdlib>

#include "base/str.hh"
#include "workloads/registry.hh"

namespace svf::serve::wire
{

namespace
{

/** @name Config-string value codecs (all non-fatal) */
/// @{

std::string
u64Str(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
boolStr(bool v)
{
    return v ? "1" : "0";
}

/** Shortest round-trip double rendering ("%.17g" upper bound). */
std::string
doubleStr(double v)
{
    char buf[64];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

/**
 * Field extractor over a mutable copy of the config map: take*()
 * erases what it consumes so decode can reject leftovers (typo'd
 * or unknown keys) instead of silently ignoring them.
 */
struct Fields
{
    ConfigMap m;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    bool
    takeStr(const std::string &key, std::string &out)
    {
        auto it = m.find(key);
        if (it == m.end())
            return true;        // absent: keep default
        out = it->second;
        m.erase(it);
        return true;
    }

    bool
    takeU64(const std::string &key, std::uint64_t &out)
    {
        auto it = m.find(key);
        if (it == m.end())
            return true;
        if (!parseUint(it->second, out))
            return fail("bad value for '" + key + "': '" +
                        it->second + "'");
        m.erase(it);
        return true;
    }

    bool
    takeUnsigned(const std::string &key, unsigned &out)
    {
        std::uint64_t v = out;
        if (!takeU64(key, v))
            return false;
        if (v > 0xffffffffu)
            return fail("value for '" + key + "' out of range");
        out = unsigned(v);
        return true;
    }

    bool
    takeU32(const std::string &key, std::uint32_t &out)
    {
        unsigned v = out;
        if (!takeUnsigned(key, v))
            return false;
        out = v;
        return true;
    }

    bool
    takeBool(const std::string &key, bool &out)
    {
        auto it = m.find(key);
        if (it == m.end())
            return true;
        if (it->second == "0")
            out = false;
        else if (it->second == "1")
            out = true;
        else
            return fail("bad value for '" + key +
                        "': expected 0 or 1");
        m.erase(it);
        return true;
    }

    bool
    takeDouble(const std::string &key, double &out)
    {
        auto it = m.find(key);
        if (it == m.end())
            return true;
        char *end = nullptr;
        double v = std::strtod(it->second.c_str(), &end);
        if (it->second.empty() ||
            end != it->second.c_str() + it->second.size())
            return fail("bad value for '" + key + "'");
        out = v;
        m.erase(it);
        return true;
    }
};

/// @}

/** "name,size,assoc,line,lat" composite for one cache level. */
std::string
cacheStr(const mem::CacheParams &c)
{
    return c.name + "," + u64Str(c.size) + "," + u64Str(c.assoc) +
           "," + u64Str(c.lineSize) + "," + u64Str(c.hitLatency);
}

bool
cacheFromStr(const std::string &s, mem::CacheParams &c,
             std::string &err)
{
    std::vector<std::string> parts = split(s, ',');
    std::uint64_t size, assoc, line, lat;
    if (parts.size() != 5 || !parseUint(parts[1], size) ||
        !parseUint(parts[2], assoc) || !parseUint(parts[3], line) ||
        !parseUint(parts[4], lat)) {
        err = "bad cache spec '" + s + "'";
        return false;
    }
    c.name = parts[0];
    c.size = size;
    c.assoc = unsigned(assoc);
    c.lineSize = unsigned(line);
    c.hitLatency = unsigned(lat);
    return true;
}

void
machineToConfig(const uarch::MachineConfig &m, ConfigMap &out)
{
    out["m.fetch_width"] = u64Str(m.fetchWidth);
    out["m.decode_width"] = u64Str(m.decodeWidth);
    out["m.issue_width"] = u64Str(m.issueWidth);
    out["m.commit_width"] = u64Str(m.commitWidth);
    out["m.ifq"] = u64Str(m.ifqSize);
    out["m.ruu"] = u64Str(m.ruuSize);
    out["m.lsq"] = u64Str(m.lsqSize);
    out["m.int_alu"] = u64Str(m.intAlu);
    out["m.int_mult"] = u64Str(m.intMult);
    out["m.il1"] = cacheStr(m.hier.il1);
    out["m.dl1"] = cacheStr(m.hier.dl1);
    out["m.l2"] = cacheStr(m.hier.l2);
    out["m.mem_lat"] = u64Str(m.hier.memLatency);
    out["m.dl1_ports"] = u64Str(m.dl1Ports);
    out["m.store_fwd_lat"] = u64Str(m.storeForwardLat);
    out["m.agen_lat"] = u64Str(m.agenLat);
    out["m.bpred"] = m.bpred;
    out["m.redirect_penalty"] = u64Str(m.redirectPenalty);
    out["m.sched_lat"] = u64Str(m.schedLatency);
    out["m.max_taken"] = u64Str(m.maxTakenPerFetch);
    out["m.svf.enabled"] = boolStr(m.svf.enabled);
    out["m.svf.entries"] = u64Str(m.svf.svf.entries);
    out["m.svf.ports"] = u64Str(m.svf.svf.ports);
    out["m.svf.hit_lat"] = u64Str(m.svf.svf.hitLatency);
    out["m.svf.kill_on_shrink"] = boolStr(m.svf.svf.killOnShrink);
    out["m.svf.fill_on_alloc"] = boolStr(m.svf.svf.fillOnAlloc);
    out["m.svf.granule"] = u64Str(m.svf.svf.dirtyGranule);
    out["m.svf.morph_all"] = boolStr(m.svf.morphAllStackRefs);
    out["m.svf.morph_sp"] = boolStr(m.svf.morphSpRefs);
    out["m.svf.no_squash"] = boolStr(m.svf.noSquash);
    out["m.svf.squash_penalty"] = u64Str(m.svf.squashPenalty);
    out["m.svf.dyn_disable"] = boolStr(m.svf.dynamicDisable);
    out["m.svf.monitor_refs"] = u64Str(m.svf.monitorRefs);
    out["m.svf.miss_rate"] = doubleStr(m.svf.missRateThreshold);
    out["m.svf.disable_refs"] = u64Str(m.svf.disableRefs);
    out["m.sc.enabled"] = boolStr(m.stackCacheEnabled);
    out["m.sc.size"] = u64Str(m.stackCache.size);
    out["m.sc.line"] = u64Str(m.stackCache.lineSize);
    out["m.sc.hit_lat"] = u64Str(m.stackCache.hitLatency);
    out["m.sc.ports"] = u64Str(m.stackCache.ports);
    out["m.no_addr_calc_op"] = boolStr(m.noAddrCalcOp);
    out["m.ctx_period"] = u64Str(m.contextSwitchPeriod);
    out["m.sched"] = uarch::schedKindName(m.sched);
    out["m.disambig"] = uarch::disambigKindName(m.disambig);
}

bool
machineFromFields(Fields &f, uarch::MachineConfig &m)
{
    bool ok = f.takeUnsigned("m.fetch_width", m.fetchWidth) &&
              f.takeUnsigned("m.decode_width", m.decodeWidth) &&
              f.takeUnsigned("m.issue_width", m.issueWidth) &&
              f.takeUnsigned("m.commit_width", m.commitWidth) &&
              f.takeUnsigned("m.ifq", m.ifqSize) &&
              f.takeUnsigned("m.ruu", m.ruuSize) &&
              f.takeUnsigned("m.lsq", m.lsqSize) &&
              f.takeUnsigned("m.int_alu", m.intAlu) &&
              f.takeUnsigned("m.int_mult", m.intMult) &&
              f.takeUnsigned("m.mem_lat", m.hier.memLatency) &&
              f.takeUnsigned("m.dl1_ports", m.dl1Ports) &&
              f.takeUnsigned("m.store_fwd_lat", m.storeForwardLat) &&
              f.takeUnsigned("m.agen_lat", m.agenLat) &&
              f.takeStr("m.bpred", m.bpred) &&
              f.takeUnsigned("m.redirect_penalty",
                             m.redirectPenalty) &&
              f.takeUnsigned("m.sched_lat", m.schedLatency) &&
              f.takeUnsigned("m.max_taken", m.maxTakenPerFetch) &&
              f.takeBool("m.svf.enabled", m.svf.enabled) &&
              f.takeU32("m.svf.entries", m.svf.svf.entries) &&
              f.takeUnsigned("m.svf.ports", m.svf.svf.ports) &&
              f.takeUnsigned("m.svf.hit_lat", m.svf.svf.hitLatency) &&
              f.takeBool("m.svf.kill_on_shrink",
                         m.svf.svf.killOnShrink) &&
              f.takeBool("m.svf.fill_on_alloc",
                         m.svf.svf.fillOnAlloc) &&
              f.takeUnsigned("m.svf.granule",
                             m.svf.svf.dirtyGranule) &&
              f.takeBool("m.svf.morph_all", m.svf.morphAllStackRefs) &&
              f.takeBool("m.svf.morph_sp", m.svf.morphSpRefs) &&
              f.takeBool("m.svf.no_squash", m.svf.noSquash) &&
              f.takeUnsigned("m.svf.squash_penalty",
                             m.svf.squashPenalty) &&
              f.takeBool("m.svf.dyn_disable", m.svf.dynamicDisable) &&
              f.takeUnsigned("m.svf.monitor_refs",
                             m.svf.monitorRefs) &&
              f.takeDouble("m.svf.miss_rate",
                           m.svf.missRateThreshold) &&
              f.takeUnsigned("m.svf.disable_refs",
                             m.svf.disableRefs) &&
              f.takeBool("m.sc.enabled", m.stackCacheEnabled) &&
              f.takeU64("m.sc.size", m.stackCache.size) &&
              f.takeUnsigned("m.sc.line", m.stackCache.lineSize) &&
              f.takeUnsigned("m.sc.hit_lat",
                             m.stackCache.hitLatency) &&
              f.takeUnsigned("m.sc.ports", m.stackCache.ports) &&
              f.takeBool("m.no_addr_calc_op", m.noAddrCalcOp) &&
              f.takeU64("m.ctx_period", m.contextSwitchPeriod);
    if (!ok)
        return false;

    for (const char *level : {"m.il1", "m.dl1", "m.l2"}) {
        std::string spec;
        if (!f.takeStr(level, spec))
            return false;
        if (spec.empty())
            continue;
        mem::CacheParams *c = level[2] == 'i'
                                  ? &m.hier.il1
                                  : (level[3] == 'l' &&
                                     level[4] == '1')
                                        ? &m.hier.dl1
                                        : &m.hier.l2;
        std::string cerr;
        if (!cacheFromStr(spec, *c, cerr))
            return f.fail(cerr);
    }

    std::string sched;
    if (!f.takeStr("m.sched", sched))
        return false;
    if (!sched.empty()) {
        if (sched == "scan")
            m.sched = uarch::SchedKind::Scan;
        else if (sched == "event")
            m.sched = uarch::SchedKind::Event;
        else
            return f.fail("bad scheduler '" + sched + "'");
    }
    std::string disambig;
    if (!f.takeStr("m.disambig", disambig))
        return false;
    if (!disambig.empty()) {
        if (disambig == "scan")
            m.disambig = uarch::DisambigKind::Scan;
        else if (disambig == "filter")
            m.disambig = uarch::DisambigKind::Filter;
        else
            return f.fail("bad disambig mode '" + disambig + "'");
    }
    return true;
}

/** Non-fatal SamplePlan::parse (same grammar, error out-param). */
bool
sampleFromStr(const std::string &spec, ckpt::SamplePlan &plan,
              std::string &err)
{
    plan = ckpt::SamplePlan();
    if (spec.empty())
        return true;
    std::vector<std::string> parts = split(spec, ',');
    std::uint64_t vals[3] = {};
    if (parts.size() < 3 || parts.size() > 4 ||
        !parseUint(parts[0], vals[0]) ||
        !parseUint(parts[1], vals[1]) ||
        !parseUint(parts[2], vals[2])) {
        err = "bad sample spec '" + spec + "'";
        return false;
    }
    plan.intervals = vals[0];
    plan.warmupInsts = vals[1];
    plan.detailedInsts = vals[2];
    if (parts.size() == 4) {
        if (parts[3] == "warm")
            plan.functionalWarm = true;
        else if (parts[3] == "pwarm")
            plan.parallelWarm = true;
        else {
            err = "bad sample spec '" + spec + "'";
            return false;
        }
    }
    if (plan.intervals > 0 && plan.detailedInsts == 0) {
        err = "bad sample spec '" + spec + "': D must be positive";
        return false;
    }
    return true;
}

/** Validate a (possibly comma-listed) workload name field. */
bool
validWorkloads(const std::string &names, std::string &err)
{
    for (const std::string &w : split(names, ',')) {
        if (!workloads::findWorkload(w)) {
            err = "unknown workload '" + w + "'";
            return false;
        }
    }
    return true;
}

} // anonymous namespace

bool
setupToConfig(const harness::JobSetup &setup, ConfigMap &out,
              std::string &err)
{
    out.clear();
    if (const auto *rs = std::get_if<harness::RunSetup>(&setup)) {
        if (rs->program) {
            err = "explicit programs (asm=) cannot be shipped to a "
                  "server";
            return false;
        }
        if (rs->trace.enabled()) {
            err = "trace= writes client-local files and cannot be "
                  "shipped to a server";
            return false;
        }
        out["kind"] = "run";
        out["workload"] = rs->workload;
        out["input"] = rs->input;
        out["scale"] = u64Str(rs->scale);
        out["insts"] = u64Str(rs->maxInsts);
        out["cores"] = u64Str(rs->cores);
        out["slice"] = u64Str(rs->slicePeriod);
        out["quantum"] = u64Str(rs->sysQuantum);
        out["sample"] = rs->sample.str();
        // ckptDir and pjobs are host-side accelerators, not part of
        // the setup key; the daemon applies its own policy.
        machineToConfig(rs->machine, out);
        return true;
    }
    if (const auto *ts = std::get_if<harness::TrafficSetup>(&setup)) {
        out["kind"] = "traffic";
        out["workload"] = ts->workload;
        out["input"] = ts->input;
        out["scale"] = u64Str(ts->scale);
        out["insts"] = u64Str(ts->maxInsts);
        out["capacity"] = u64Str(ts->capacityBytes);
        out["slice"] = u64Str(ts->slicePeriod);
        out["granule"] = u64Str(ts->svfDirtyGranule);
        out["kill_on_shrink"] = boolStr(ts->svfKillOnShrink);
        out["fill_on_alloc"] = boolStr(ts->svfFillOnAlloc);
        return true;
    }
    const auto &ps = std::get<harness::ProfileSetup>(setup);
    out["kind"] = "profile";
    out["workload"] = ps.workload;
    out["input"] = ps.input;
    out["scale"] = u64Str(ps.scale);
    out["insts"] = u64Str(ps.maxInsts);
    out["depth_samples"] = u64Str(ps.depthSamples);
    return true;
}

bool
setupFromConfig(const ConfigMap &config, harness::JobSetup &out,
                std::string &err)
{
    Fields f{config, ""};
    std::string kind;
    if (!f.takeStr("kind", kind)) {
        err = f.err;
        return false;
    }

    bool ok = false;
    if (kind == "run") {
        harness::RunSetup rs;
        std::string sample;
        ok = f.takeStr("workload", rs.workload) &&
             f.takeStr("input", rs.input) &&
             f.takeU64("scale", rs.scale) &&
             f.takeU64("insts", rs.maxInsts) &&
             f.takeUnsigned("cores", rs.cores) &&
             f.takeU64("slice", rs.slicePeriod) &&
             f.takeU64("quantum", rs.sysQuantum) &&
             f.takeStr("sample", sample) &&
             machineFromFields(f, rs.machine);
        if (ok)
            ok = sampleFromStr(sample, rs.sample, f.err);
        if (ok)
            ok = validWorkloads(rs.workload, f.err);
        if (ok)
            out = std::move(rs);
    } else if (kind == "traffic") {
        harness::TrafficSetup ts;
        ok = f.takeStr("workload", ts.workload) &&
             f.takeStr("input", ts.input) &&
             f.takeU64("scale", ts.scale) &&
             f.takeU64("insts", ts.maxInsts) &&
             f.takeU64("capacity", ts.capacityBytes) &&
             f.takeU64("slice", ts.slicePeriod) &&
             f.takeUnsigned("granule", ts.svfDirtyGranule) &&
             f.takeBool("kill_on_shrink", ts.svfKillOnShrink) &&
             f.takeBool("fill_on_alloc", ts.svfFillOnAlloc);
        if (ok)
            ok = validWorkloads(ts.workload, f.err);
        if (ok)
            out = std::move(ts);
    } else if (kind == "profile") {
        harness::ProfileSetup ps;
        ok = f.takeStr("workload", ps.workload) &&
             f.takeStr("input", ps.input) &&
             f.takeU64("scale", ps.scale) &&
             f.takeU64("insts", ps.maxInsts) &&
             f.takeUnsigned("depth_samples", ps.depthSamples);
        if (ok)
            ok = validWorkloads(ps.workload, f.err);
        if (ok)
            out = std::move(ps);
    } else {
        err = "unknown job kind '" + kind + "'";
        return false;
    }

    if (!ok) {
        err = f.err.empty() ? "malformed job config" : f.err;
        return false;
    }
    if (!f.m.empty()) {
        err = "unknown config key '" + f.m.begin()->first + "'";
        return false;
    }
    return true;
}

std::string
keyHex(std::uint64_t key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)key);
    return buf;
}

namespace
{

bool
keyFromHex(const std::string &hex, std::uint64_t &out)
{
    if (hex.size() != 16)
        return false;
    out = 0;
    for (char c : hex) {
        out <<= 4;
        if (c >= '0' && c <= '9')
            out |= std::uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            out |= std::uint64_t(c - 'a' + 10);
        else
            return false;
    }
    return true;
}

} // anonymous namespace

bool
parseRequest(const std::string &line, Request &out, std::string &err)
{
    JsonValue doc;
    if (!parseJson(line, doc, err))
        return false;
    if (!doc.isObject()) {
        err = "request is not a JSON object";
        return false;
    }

    std::string verb = doc.getString("verb");
    const JsonValue *id = doc.find("id");
    out = Request();
    if (id && id->isNumber())
        out.id = std::uint64_t(id->number);
    out.client = doc.getString("client");

    if (verb == "stats") {
        out.verb = Request::Verb::Stats;
        return true;
    }
    if (verb == "ping") {
        out.verb = Request::Verb::Ping;
        return true;
    }
    if (verb != "run") {
        err = verb.empty() ? "missing verb"
                           : "unknown verb '" + verb + "'";
        return false;
    }

    out.verb = Request::Verb::Run;
    const JsonValue *jobs = doc.find("jobs");
    if (!jobs || !jobs->isArray() || jobs->arr.empty()) {
        err = "run request without jobs";
        return false;
    }
    for (std::size_t i = 0; i < jobs->arr.size(); ++i) {
        const JsonValue &j = jobs->arr[i];
        std::string where = "job " + std::to_string(i);
        if (!j.isObject()) {
            err = where + ": not an object";
            return false;
        }
        JobRequest req;
        req.name = j.getString("name");
        std::string key_hex = j.getString("key");
        if (!keyFromHex(key_hex, req.key)) {
            err = where + ": missing or malformed key";
            return false;
        }
        const JsonValue *cfg = j.find("config");
        if (!cfg || !cfg->isObject()) {
            err = where + ": missing config object";
            return false;
        }
        ConfigMap config;
        for (const auto &kv : cfg->obj) {
            if (!kv.second.isString()) {
                err = where + ": config value for '" + kv.first +
                      "' is not a string";
                return false;
            }
            config[kv.first] = kv.second.str;
        }
        std::string derr;
        if (!setupFromConfig(config, req.setup, derr)) {
            err = where + ": " + derr;
            return false;
        }
        std::uint64_t derived = harness::setupKey(req.setup);
        if (derived != req.key) {
            err = where + ": setup key mismatch (client " + key_hex +
                  ", server " + keyHex(derived) +
                  ") — lossy wire encoding or version skew";
            return false;
        }
        out.jobs.push_back(std::move(req));
    }
    return true;
}

std::string
renderRunRequest(
    std::uint64_t id, const std::string &client,
    const std::vector<std::pair<std::string, harness::JobSetup>>
        &jobs,
    std::string &err)
{
    std::string line = "{\"verb\":\"run\",\"id\":" + u64Str(id) +
                       ",\"client\":\"" + jsonEscape(client) +
                       "\",\"jobs\":[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ConfigMap config;
        if (!setupToConfig(jobs[i].second, config, err))
            return "";
        if (i)
            line += ",";
        line += "{\"name\":\"" + jsonEscape(jobs[i].first) +
                "\",\"key\":\"" +
                keyHex(harness::setupKey(jobs[i].second)) +
                "\",\"config\":{";
        bool first = true;
        for (const auto &kv : config) {
            if (!first)
                line += ",";
            first = false;
            line += "\"" + jsonEscape(kv.first) + "\":\"" +
                    jsonEscape(kv.second) + "\"";
        }
        line += "}}";
    }
    line += "]}";
    return line;
}

std::string
renderStatsRequest()
{
    return "{\"verb\":\"stats\"}";
}

std::string
renderPingRequest()
{
    return "{\"verb\":\"ping\"}";
}

std::string
eventQueued(std::uint64_t id, std::size_t index,
            const std::string &name, std::uint64_t key,
            std::size_t position)
{
    return "{\"event\":\"queued\",\"id\":" + u64Str(id) +
           ",\"job\":" + u64Str(index) + ",\"name\":\"" +
           jsonEscape(name) + "\",\"key\":\"" + keyHex(key) +
           "\",\"position\":" + u64Str(position) + "}";
}

std::string
eventRunning(std::uint64_t id, std::size_t index, std::uint64_t key,
             const std::string &profile_json)
{
    std::string line = "{\"event\":\"running\",\"id\":" + u64Str(id) +
                       ",\"job\":" + u64Str(index) + ",\"key\":\"" +
                       keyHex(key) + "\"";
    if (!profile_json.empty())
        line += ",\"profile\":" + profile_json;
    return line + "}";
}

std::string
eventDone(std::uint64_t id, std::size_t index, std::uint64_t key,
          bool cached, const std::string &source, double wall_seconds,
          const std::vector<std::uint8_t> &payload)
{
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.6f", wall_seconds);
    return "{\"event\":\"done\",\"id\":" + u64Str(id) +
           ",\"job\":" + u64Str(index) + ",\"key\":\"" +
           keyHex(key) + "\",\"cached\":" +
           (cached ? "true" : "false") + ",\"source\":\"" + source +
           "\",\"wall_seconds\":" + wall + ",\"result\":\"" +
           hexEncode(payload) + "\"}";
}

std::string
eventError(std::uint64_t id, long index, const std::string &message)
{
    std::string line = "{\"event\":\"error\",\"id\":" + u64Str(id);
    if (index >= 0)
        line += ",\"job\":" + u64Str(std::uint64_t(index));
    return line + ",\"message\":\"" + jsonEscape(message) + "\"}";
}

std::string
eventStats(std::uint64_t id, const std::string &stats_json)
{
    return "{\"event\":\"stats\",\"id\":" + u64Str(id) +
           ",\"stats\":" + stats_json + "}";
}

std::string
eventPong(std::uint64_t id)
{
    return "{\"event\":\"pong\",\"id\":" + u64Str(id) + "}";
}

std::string
hexEncode(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

bool
hexDecode(const std::string &hex, std::vector<std::uint8_t> &out)
{
    if (hex.size() % 2)
        return false;
    out.clear();
    out.reserve(hex.size() / 2);
    auto nib = [](char c, int &v) {
        if (c >= '0' && c <= '9')
            v = c - '0';
        else if (c >= 'a' && c <= 'f')
            v = c - 'a' + 10;
        else
            return false;
        return true;
    };
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi, lo;
        if (!nib(hex[i], hi) || !nib(hex[i + 1], lo))
            return false;
        out.push_back(std::uint8_t((hi << 4) | lo));
    }
    return true;
}

} // namespace svf::serve::wire
