/**
 * @file
 * SimService: the daemon's brain, transport-agnostic.
 *
 * One SimService sits between the socket layer (serve/server.hh) and
 * one harness::JobEngine. It turns request lines into engine
 * submissions and engine completions back into NDJSON event lines,
 * without knowing what a socket is — the server hands it an emit
 * callback per connection, and the protocol tests hand it a
 * string-collecting lambda and a manual-mode engine.
 *
 * Crash durability: every accepted run request is journaled to
 * `<journalDir>/<seq>.req.json` (the raw request line, written via
 * the same atomic temp+rename discipline as every other artifact)
 * before any job is submitted, and unlinked when the last job of the
 * request completes. A daemon that dies mid-flight replays the
 * leftover journal on its next start — the requests execute into the
 * shared result cache, so the retrying client gets disk hits.
 */

#ifndef SVF_SERVE_SERVICE_HH
#define SVF_SERVE_SERVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/engine.hh"
#include "serve/wire.hh"

namespace svf::serve
{

/** Service knobs (the daemon CLI maps onto this). */
struct ServiceOptions
{
    /** Engine configuration (threads, cache dir, queue bound). */
    harness::EngineOptions engine;

    /** In-flight request journal directory; empty disables. */
    std::string journalDir;

    /** Max request-line bytes accepted (0 = the 1 MiB default). */
    std::size_t maxRequestBytes = 0;
};

/**
 * One handled request's live jobs, for event streaming: the server
 * polls these tickets to emit `running` heartbeats while the
 * completion callbacks emit `done`/`error` lines.
 */
struct ActiveRun
{
    std::uint64_t id = 0;
    std::vector<harness::TicketPtr> tickets;
    std::vector<std::string> names;
};

class SimService
{
  public:
    /** NDJSON sink for one connection. MUST be thread-safe: done
     *  callbacks fire on engine worker threads. */
    using Emit = std::function<void(const std::string &)>;

    explicit SimService(const ServiceOptions &options);
    ~SimService();

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /**
     * Handle one request line: parse, validate, answer. Emits the
     * immediate events (`queued`, `stats`, `pong`, `error`, plus any
     * `done` served straight from the caches) synchronously; jobs
     * that go to the queue emit their `done`/`error` later, from
     * worker threads, through the same @p emit.
     *
     * @param fallback_client fairness queue id when the request
     *        carries no "client" field (the server passes its
     *        connection id so anonymous clients still get per-
     *        connection fairness).
     * @return the run's live tickets (empty for non-run verbs and
     *         rejected requests) so the caller can stream `running`
     *         heartbeats and block for completion.
     */
    ActiveRun handle(const std::string &line,
                     const std::string &fallback_client,
                     const Emit &emit);

    /** The stats verb's payload (also the `svf_simd --stats` body). */
    std::string statsJson() const;

    /**
     * Replay journaled requests left over from a previous process:
     * submit their jobs (results land in the caches), unlink each
     * journal entry as its request completes. Returns the number of
     * requests replayed. Call once, after construction, before
     * serving.
     */
    std::size_t replayJournal();

    /** Finish running jobs, stop the workers. Queued items stay
     *  journaled for the next start. */
    void drain();

    harness::JobEngine &engine() { return *eng; }

  private:
    /** Journal @p line; returns the entry path ("" when disabled). */
    std::string journalWrite(const std::string &line);

    /** Record one finished job's latencies for the stats verb. */
    void recordLatency(const harness::JobTicket &t);

    /** Submit @p req's jobs with event-emitting callbacks. */
    ActiveRun submitRun(const wire::Request &req,
                        const std::string &line, const Emit &emit);

    ServiceOptions opts;
    std::unique_ptr<harness::JobEngine> eng;

    /** @name Latency sample rings (protected by statsLock) */
    /// @{
    mutable std::mutex statsLock;
    std::vector<double> queueWait;  //!< executed jobs: queue seconds
    std::vector<double> execWall;   //!< executed jobs: run seconds
    std::vector<double> totalLat;   //!< every job: submit-to-done
    std::size_t latNext = 0;        //!< ring cursor
    std::uint64_t simInsts = 0;     //!< simulated insts, executed runs
    double simWall = 0.0;           //!< wall seconds behind simInsts
    std::uint64_t requests = 0;     //!< run requests accepted
    std::uint64_t badRequests = 0;  //!< rejected at parse/validate
    std::size_t journalSeq = 0;
    std::size_t journalReplayed = 0;
    /// @}
};

} // namespace svf::serve

#endif // SVF_SERVE_SERVICE_HH
