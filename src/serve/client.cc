#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

#include "ckpt/result_cache.hh"
#include "serve/wire.hh"

namespace svf::serve
{

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    rdbuf.clear();
}

bool
Client::connect(const std::string &spec, std::string &err)
{
    close();
    if (spec.empty()) {
        err = "empty server spec";
        return false;
    }

    bool all_digits = true;
    for (char c : spec)
        all_digits &= bool(std::isdigit(
            static_cast<unsigned char>(c)));

    if (all_digits) {
        unsigned long port = std::strtoul(spec.c_str(), nullptr, 10);
        if (port == 0 || port > 65535) {
            err = "bad server port '" + spec + "'";
            return false;
        }
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            err = "socket() failed";
            return false;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(std::uint16_t(port));
        if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) !=
            0) {
            err = "cannot connect to 127.0.0.1:" + spec +
                  " — is svf_simd running?";
            close();
            return false;
        }
        return true;
    }

    sockaddr_un addr{};
    if (spec.size() >= sizeof(addr.sun_path)) {
        err = "unix socket path too long: " + spec;
        return false;
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = "socket() failed";
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, spec.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) != 0) {
        err = "cannot connect to " + spec +
              " — is svf_simd running?";
        close();
        return false;
    }
    return true;
}

bool
Client::writeLine(const std::string &line, std::string &err)
{
    std::string buf = line + "\n";
    std::size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::send(fd, buf.data() + off, buf.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            err = "server connection lost (write)";
            return false;
        }
        off += std::size_t(n);
    }
    return true;
}

bool
Client::readLine(std::string &line, std::string &err)
{
    while (true) {
        std::size_t nl = rdbuf.find('\n');
        if (nl != std::string::npos) {
            line = rdbuf.substr(0, nl);
            rdbuf.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            err = "server connection lost (read) — jobs stay "
                  "journaled server-side; retry when it is back";
            return false;
        }
        rdbuf.append(chunk, std::size_t(n));
    }
}

bool
Client::runJobs(
    const std::vector<std::pair<std::string, harness::JobSetup>>
        &jobs,
    std::vector<harness::JobOutcome> &out, std::string &err,
    const harness::ProgressHook &progress,
    const std::string &client_id)
{
    out.clear();
    if (jobs.empty())
        return true;
    if (fd < 0) {
        err = "not connected";
        return false;
    }

    std::uint64_t id = nextId++;
    std::string line =
        wire::renderRunRequest(id, client_id, jobs, err);
    if (line.empty())
        return false;
    if (!writeLine(line, err))
        return false;

    out.resize(jobs.size());
    std::vector<bool> have(jobs.size(), false);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        out[i].name = jobs[i].first;
        out[i].key = harness::setupKey(jobs[i].second);
    }

    std::size_t done = 0;
    while (done < jobs.size()) {
        std::string ev_line;
        if (!readLine(ev_line, err))
            return false;
        JsonValue ev;
        std::string jerr;
        if (!parseJson(ev_line, ev, jerr) || !ev.isObject()) {
            err = "malformed server event: " + jerr;
            return false;
        }
        std::string kind = ev.getString("event");
        const JsonValue *idv = ev.find("id");
        if (idv && idv->isNumber() &&
            std::uint64_t(idv->number) != id)
            continue;   // stale event from a previous request

        const JsonValue *jobv = ev.find("job");
        long index = jobv && jobv->isNumber() ? long(jobv->number)
                                              : -1;

        if (kind == "error") {
            std::string msg = ev.getString("message", "(no message)");
            if (index < 0) {
                err = "server rejected the request: " + msg;
                return false;
            }
            err = "job '" + jobs[std::size_t(index)].first +
                  "' failed on the server: " + msg;
            return false;
        }
        if (kind != "done")
            continue;   // queued / running progress events
        if (index < 0 || std::size_t(index) >= jobs.size() ||
            have[std::size_t(index)])
            continue;
        std::size_t at = std::size_t(index);

        std::vector<std::uint8_t> payload;
        ckpt::CachedValue value;
        if (!wire::hexDecode(ev.getString("result"), payload) ||
            !ckpt::decodeValue(payload, value)) {
            err = "undecodable result payload for job '" +
                  jobs[at].first + "' (version skew?)";
            return false;
        }
        const JsonValue *cachedv = ev.find("cached");
        const JsonValue *wallv = ev.find("wall_seconds");
        out[at].cached = cachedv && cachedv->isBool() &&
                         cachedv->boolean;
        out[at].wallSeconds =
            out[at].cached
                ? 0.0
                : (wallv && wallv->isNumber() ? wallv->number : 0.0);
        out[at].value = std::move(value);   // same variant type
        have[at] = true;
        ++done;

        if (progress) {
            harness::JobProgress p;
            p.index = at;
            p.done = done;
            p.total = jobs.size();
            p.name = out[at].name;
            p.wallSeconds = out[at].wallSeconds;
            p.cached = out[at].cached;
            progress(p);
        }
    }
    return true;
}

bool
Client::runPlan(const harness::ExperimentPlan &plan,
                std::vector<harness::JobOutcome> &out,
                std::string &err,
                const harness::ProgressHook &progress,
                const std::string &client_id)
{
    std::vector<std::pair<std::string, harness::JobSetup>> jobs;
    jobs.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        jobs.emplace_back(plan.job(i).name, plan.job(i).setup);
    return runJobs(jobs, out, err, progress, client_id);
}

bool
Client::stats(std::string &out, std::string &err)
{
    if (fd < 0) {
        err = "not connected";
        return false;
    }
    if (!writeLine(wire::renderStatsRequest(), err))
        return false;
    while (true) {
        std::string line;
        if (!readLine(line, err))
            return false;
        JsonValue ev;
        std::string jerr;
        if (!parseJson(line, ev, jerr) || !ev.isObject()) {
            err = "malformed server event: " + jerr;
            return false;
        }
        std::string kind = ev.getString("event");
        if (kind == "error") {
            err = ev.getString("message", "(no message)");
            return false;
        }
        if (kind != "stats")
            continue;
        // Re-slice the raw line: the stats object is everything the
        // daemon rendered, and round-tripping it through JsonValue
        // would reformat numbers.
        std::size_t at = line.find("\"stats\":");
        std::size_t end = line.rfind('}');
        if (at == std::string::npos || end == std::string::npos ||
            end <= at + 8) {
            err = "malformed stats event";
            return false;
        }
        out = line.substr(at + 8, end - (at + 8));
        return true;
    }
}

} // namespace svf::serve
