#include "serve/service.hh"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <variant>

#include "base/logging.hh"
#include "ckpt/serialize.hh"
#include "harness/prof.hh"

namespace svf::serve
{

namespace
{

/** Latency ring capacity: enough for stable percentiles, bounded. */
constexpr std::size_t LatencyRing = 4096;

constexpr std::size_t DefaultMaxRequest = 1 << 20;

std::string
doubleJson(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

/** p-th percentile of a sample set (nearest-rank; 0 when empty). */
double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t rank = std::size_t(p * double(samples.size() - 1) + 0.5);
    return samples[std::min(rank, samples.size() - 1)];
}

std::string
latencyJson(const std::vector<double> &samples)
{
    return "{\"count\":" + std::to_string(samples.size()) +
           ",\"p50\":" + doubleJson(percentile(samples, 0.50)) +
           ",\"p90\":" + doubleJson(percentile(samples, 0.90)) +
           ",\"p99\":" + doubleJson(percentile(samples, 0.99)) + "}";
}

const char *
sourceName(harness::TicketSource s)
{
    switch (s) {
      case harness::TicketSource::Executed: return "executed";
      case harness::TicketSource::Memo: return "memo";
      case harness::TicketSource::Disk: return "disk";
      case harness::TicketSource::Inflight: return "inflight";
    }
    return "?";
}

} // anonymous namespace

SimService::SimService(const ServiceOptions &options) : opts(options)
{
    if (opts.maxRequestBytes == 0)
        opts.maxRequestBytes = DefaultMaxRequest;
    if (!opts.journalDir.empty() && !ckpt::ensureDir(opts.journalDir)) {
        warn("serve: cannot create journal dir '%s'; journaling off",
             opts.journalDir.c_str());
        opts.journalDir.clear();
    }
    eng = std::make_unique<harness::JobEngine>(opts.engine);
}

SimService::~SimService()
{
    drain();
}

void
SimService::drain()
{
    eng->drain();
}

std::string
SimService::journalWrite(const std::string &line)
{
    if (opts.journalDir.empty())
        return "";
    std::size_t seq;
    {
        std::lock_guard<std::mutex> l(statsLock);
        seq = journalSeq++;
    }
    char name[48];
    std::snprintf(name, sizeof(name), "%08zu.req.json", seq);
    std::string path = opts.journalDir + "/" + name;
    std::vector<std::uint8_t> bytes(line.begin(), line.end());
    if (!ckpt::writeFileAtomic(path, bytes)) {
        warn("serve: journal write failed: %s", path.c_str());
        return "";
    }
    return path;
}

void
SimService::recordLatency(const harness::JobTicket &t)
{
    std::lock_guard<std::mutex> l(statsLock);
    auto push = [](std::vector<double> &ring, std::size_t at,
                   double v) {
        if (ring.size() < LatencyRing)
            ring.push_back(v);
        else
            ring[at % LatencyRing] = v;
    };
    push(totalLat, latNext, t.queueSeconds() + t.wallSeconds());
    if (t.source() == harness::TicketSource::Executed) {
        push(queueWait, latNext, t.queueSeconds());
        push(execWall, latNext, t.wallSeconds());
        // Aggregate host throughput: simulated instructions the
        // daemon actually executed (cache hits spent no sim time)
        // over the wall seconds they took. Sampled runs covered
        // totalInsts of their program, same convention as
        // harness::hostMips.
        if (t.state() == harness::TicketState::Done) {
            if (const auto *r =
                    std::get_if<harness::RunResult>(&t.value())) {
                simInsts += r->sampled.enabled()
                    ? r->sampled.totalInsts : r->core.committed;
                simWall += t.wallSeconds();
            }
        }
    }
    ++latNext;
}

ActiveRun
SimService::submitRun(const wire::Request &req,
                      const std::string &line, const Emit &emit)
{
    std::string journal = journalWrite(line);

    ActiveRun run;
    run.id = req.id;

    // The journal entry survives until the *last* job of the request
    // completes; a shared countdown in the completion callbacks does
    // the unlink.
    struct Pending
    {
        std::mutex m;
        std::size_t left;
        std::string journal;
    };
    auto pending = std::make_shared<Pending>();
    pending->left = req.jobs.size();
    pending->journal = journal;

    {
        std::lock_guard<std::mutex> l(statsLock);
        ++requests;
    }

    for (std::size_t i = 0; i < req.jobs.size(); ++i) {
        const wire::JobRequest &job = req.jobs[i];
        std::uint64_t id = req.id;
        auto on_done = [this, emit, pending, id, i](
                           harness::JobTicket &t) {
            recordLatency(t);
            switch (t.state()) {
              case harness::TicketState::Done:
                emit(wire::eventDone(id, i, t.key(), t.cached(),
                                     sourceName(t.source()),
                                     t.wallSeconds(),
                                     ckpt::encodeValue(t.value())));
                break;
              case harness::TicketState::Rejected:
                emit(wire::eventError(
                    id, long(i),
                    "queue full — retry later (backpressure)"));
                break;
              default:
                emit(wire::eventError(
                    id, long(i),
                    t.error().empty() ? "execution failed"
                                      : t.error()));
            }
            bool last = false;
            std::string path;
            {
                std::lock_guard<std::mutex> l(pending->m);
                last = --pending->left == 0;
                path = pending->journal;
            }
            if (last && !path.empty())
                std::remove(path.c_str());
        };

        auto stats_before = eng->stats();
        harness::TicketPtr t =
            eng->submit(job.setup,
                        req.client.empty() ? "" : req.client, on_done);
        if (!t->finished()) {
            emit(wire::eventQueued(req.id, i, job.name, job.key,
                                   stats_before.queueDepth));
        }
        run.tickets.push_back(std::move(t));
        run.names.push_back(job.name);
    }
    return run;
}

ActiveRun
SimService::handle(const std::string &line,
                   const std::string &fallback_client,
                   const Emit &emit)
{
    if (line.size() > opts.maxRequestBytes) {
        std::lock_guard<std::mutex> l(statsLock);
        ++badRequests;
        emit(wire::eventError(
            0, -1,
            "request too large (" + std::to_string(line.size()) +
                " bytes, limit " +
                std::to_string(opts.maxRequestBytes) + ")"));
        return {};
    }

    wire::Request req;
    std::string err;
    if (!wire::parseRequest(line, req, err)) {
        std::lock_guard<std::mutex> l(statsLock);
        ++badRequests;
        emit(wire::eventError(req.id, -1, err));
        return {};
    }
    if (req.client.empty())
        req.client = fallback_client;

    switch (req.verb) {
      case wire::Request::Verb::Ping:
        emit(wire::eventPong(req.id));
        return {};
      case wire::Request::Verb::Stats:
        emit(wire::eventStats(req.id, statsJson()));
        return {};
      case wire::Request::Verb::Run:
        return submitRun(req, line, emit);
    }
    return {};
}

std::size_t
SimService::replayJournal()
{
    if (opts.journalDir.empty())
        return 0;

    std::vector<std::string> entries;
    if (DIR *d = opendir(opts.journalDir.c_str())) {
        while (struct dirent *e = readdir(d)) {
            std::string name = e->d_name;
            if (name.size() > 9 &&
                name.compare(name.size() - 9, 9, ".req.json") == 0)
                entries.push_back(name);
        }
        closedir(d);
    }
    std::sort(entries.begin(), entries.end());

    std::size_t replayed = 0;
    for (const std::string &name : entries) {
        std::string path = opts.journalDir + "/" + name;
        std::vector<std::uint8_t> bytes;
        if (!ckpt::readFile(path, bytes)) {
            std::remove(path.c_str());
            continue;
        }
        std::string line(bytes.begin(), bytes.end());

        // Keep the replay's sequence numbers ahead of the recovered
        // entries so a fresh request can't collide with one of them.
        std::uint64_t seq = 0;
        {
            std::lock_guard<std::mutex> l(statsLock);
            if (std::sscanf(name.c_str(), "%llu",
                            (unsigned long long *)&seq) == 1 &&
                seq >= journalSeq)
                journalSeq = seq + 1;
        }

        wire::Request req;
        std::string err;
        if (!wire::parseRequest(line, req, err) ||
            req.verb != wire::Request::Verb::Run) {
            warn("serve: dropping bad journal entry %s: %s",
                 name.c_str(), err.c_str());
            std::remove(path.c_str());
            continue;
        }

        // Re-submit with no event sink: the results land in the
        // memo/disk caches, which is all a retrying client needs.
        struct Pending
        {
            std::mutex m;
            std::size_t left;
            std::string journal;
        };
        auto pending = std::make_shared<Pending>();
        pending->left = req.jobs.size();
        pending->journal = path;
        for (const wire::JobRequest &job : req.jobs) {
            eng->submit(job.setup, "journal-replay",
                        [this, pending](harness::JobTicket &t) {
                            recordLatency(t);
                            bool last = false;
                            std::string p;
                            {
                                std::lock_guard<std::mutex> l(
                                    pending->m);
                                last = --pending->left == 0;
                                p = pending->journal;
                            }
                            if (last)
                                std::remove(p.c_str());
                        });
        }
        ++replayed;
    }
    {
        std::lock_guard<std::mutex> l(statsLock);
        journalReplayed = replayed;
    }
    return replayed;
}

std::string
SimService::statsJson() const
{
    harness::EngineStats s = eng->stats();

    std::vector<double> qw, ew, tl;
    std::uint64_t reqs, bad, insts;
    double insts_wall;
    std::size_t replayed;
    {
        std::lock_guard<std::mutex> l(statsLock);
        qw = queueWait;
        ew = execWall;
        tl = totalLat;
        reqs = requests;
        bad = badRequests;
        insts = simInsts;
        insts_wall = simWall;
        replayed = journalReplayed;
    }

    std::uint64_t lookups =
        s.executed + s.memoHits + s.diskHits + s.inflightAttached;
    double hit_rate =
        lookups ? double(s.memoHits + s.diskHits +
                         s.inflightAttached) /
                      double(lookups)
                : 0.0;
    double uptime = eng->uptimeSeconds();
    double util = (uptime > 0.0 && s.threads > 0)
                      ? s.wallTotal / (uptime * double(s.threads))
                      : 0.0;

    std::string json = "{";
    json += "\"uptime_seconds\":" + doubleJson(uptime);
    json += ",\"threads\":" + std::to_string(s.threads);
    json += ",\"requests\":" + std::to_string(reqs);
    json += ",\"bad_requests\":" + std::to_string(bad);
    json += ",\"executed\":" + std::to_string(s.executed);
    json += ",\"memo_hits\":" + std::to_string(s.memoHits);
    json += ",\"disk_hits\":" + std::to_string(s.diskHits);
    json += ",\"inflight_attached\":" +
            std::to_string(s.inflightAttached);
    json += ",\"rejected\":" + std::to_string(s.rejected);
    json += ",\"cache_hit_rate\":" + doubleJson(hit_rate);
    json += ",\"queue_depth\":" + std::to_string(s.queueDepth);
    json += ",\"running\":" + std::to_string(s.running);
    json += ",\"worker_utilization\":" + doubleJson(util);
    json += ",\"wall_total_seconds\":" + doubleJson(s.wallTotal);
    json += ",\"journal_replayed\":" + std::to_string(replayed);
    // Aggregate host throughput over every executed run job, and
    // the host phase profiler's totals (all zero unless the daemon
    // was started with prof=1).
    json += ",\"sim_insts\":" + std::to_string(insts);
    json += ",\"aggregate_host_mips\":" +
            doubleJson(insts_wall > 0.0
                           ? double(insts) / (insts_wall * 1e6)
                           : 0.0);
    json += ",\"profile\":" +
            harness::prof::Profiler::instance().reportJson();
    json += ",\"latency\":{";
    json += "\"queue_wait\":" + latencyJson(qw);
    json += ",\"execute\":" + latencyJson(ew);
    json += ",\"total\":" + latencyJson(tl);
    json += "}}";
    return json;
}

} // namespace svf::serve
