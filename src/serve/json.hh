/**
 * @file
 * Minimal JSON value model and recursive-descent parser.
 *
 * The serve protocol (serve/wire.hh) is NDJSON: one JSON object per
 * line in both directions. Nothing in the repo previously *read*
 * JSON — harness/json_report.hh only writes it — so this is the
 * smallest parser that covers the protocol: the full JSON grammar,
 * objects kept in insertion order, numbers as double (the protocol
 * carries every precision-critical quantity — keys, counters,
 * results — as strings, so double round-tripping is never on the
 * correctness path). Depth and input-size limits are enforced by the
 * caller (the server caps request lines before parsing).
 */

#ifndef SVF_SERVE_JSON_HH
#define SVF_SERVE_JSON_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace svf::serve
{

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Member as string; @p fallback when absent/not a string. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected). False sets @p err to a message with a
 * byte offset.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &err);

/** Escape @p s for embedding in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

} // namespace svf::serve

#endif // SVF_SERVE_JSON_HH
