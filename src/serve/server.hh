/**
 * @file
 * Socket front end of the svf_simd daemon.
 *
 * Listens on a Unix-domain socket (`--listen PATH`) and/or a TCP
 * loopback port (`--port N`, 0 = ephemeral), accepts NDJSON request
 * lines and streams NDJSON events back (serve/wire.hh). Each
 * connection gets its own thread; the engine behind the shared
 * SimService is what bounds actual simulation concurrency, so
 * connection threads are cheap blocked readers.
 *
 * While a connection's run request is in flight the server emits a
 * `running` event when a job starts and then heartbeats (~1 s) with a
 * host phase-profiler snapshot, so thin clients can show live
 * progress for multi-minute simulations.
 *
 * Shutdown is graceful: requestStop() (async-signal-safe — the
 * SIGTERM handler calls it) wakes the accept loop via a self-pipe;
 * stop() then closes the listeners, unblocks and joins every
 * connection, and drains the engine — running jobs finish and
 * persist, queued jobs stay journaled for the next start.
 */

#ifndef SVF_SERVE_SERVER_HH
#define SVF_SERVE_SERVER_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hh"

namespace svf::serve
{

/** Server knobs (the daemon CLI maps onto this). */
struct ServerOptions
{
    /** Unix-domain socket path; empty = no unix listener. */
    std::string unixPath;

    /** TCP loopback port; -1 = no TCP listener, 0 = ephemeral. */
    int port = -1;

    /** Seconds between `running` heartbeats (0 = default 1.0). */
    double heartbeatSeconds = 0.0;

    ServiceOptions service;
};

class Server
{
  public:
    explicit Server(const ServerOptions &options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the listeners, replay the journal, start the accept
     * thread. False + @p err when a socket can't be set up.
     */
    bool start(std::string &err);

    /** Block until requestStop(), then shut down gracefully. */
    void serveForever();

    /**
     * Wake the accept loop so serveForever()/stop() can proceed.
     * Async-signal-safe (one write() on a self-pipe).
     */
    void requestStop();

    /**
     * Graceful shutdown: stop accepting, unblock and join every
     * connection, drain the engine. Idempotent; also called by the
     * destructor.
     */
    void stop();

    /** Actual TCP port (after start(); useful with port 0). */
    int tcpPort() const { return boundPort; }

    SimService &service() { return *svc; }

  private:
    void acceptLoop();
    void handleConnection(int fd, std::uint64_t conn_id);

    /** Stream `running` events/heartbeats until @p run finishes. */
    void streamRun(const ActiveRun &run, const SimService::Emit &emit);

    ServerOptions opts;
    std::unique_ptr<SimService> svc;

    int unixFd = -1;
    int tcpFd = -1;
    int boundPort = -1;
    int stopPipe[2] = {-1, -1};
    std::atomic<bool> stopping{false};
    bool stopped = false;

    std::thread acceptor;

    std::mutex connLock;
    std::vector<int> connFds;
    std::vector<std::thread> connThreads;
    std::uint64_t nextConn = 0;
};

} // namespace svf::serve

#endif // SVF_SERVE_SERVER_HH
