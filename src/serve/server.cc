#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "harness/prof.hh"

namespace svf::serve
{

namespace
{

/** Write all of @p line + '\n'; false once the peer is gone. */
bool
writeLine(int fd, const std::string &line)
{
    std::string buf = line + "\n";
    std::size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::send(fd, buf.data() + off, buf.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += std::size_t(n);
    }
    return true;
}

} // anonymous namespace

Server::Server(const ServerOptions &options) : opts(options)
{
    if (opts.heartbeatSeconds <= 0.0)
        opts.heartbeatSeconds = 1.0;
    svc = std::make_unique<SimService>(opts.service);
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string &err)
{
    if (opts.unixPath.empty() && opts.port < 0) {
        err = "no listener configured (need --listen or --port)";
        return false;
    }
    if (::pipe(stopPipe) != 0) {
        err = "pipe() failed";
        return false;
    }

    if (!opts.unixPath.empty()) {
        sockaddr_un addr{};
        if (opts.unixPath.size() >= sizeof(addr.sun_path)) {
            err = "unix socket path too long: " + opts.unixPath;
            return false;
        }
        unixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd < 0) {
            err = "socket(AF_UNIX) failed";
            return false;
        }
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        // A stale socket file from a dead daemon would fail bind();
        // the journal, not the socket, is the durable state.
        ::unlink(opts.unixPath.c_str());
        if (::bind(unixFd, (const sockaddr *)&addr, sizeof(addr)) !=
                0 ||
            ::listen(unixFd, 64) != 0) {
            err = "cannot bind unix socket " + opts.unixPath;
            return false;
        }
    }

    if (opts.port >= 0) {
        tcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd < 0) {
            err = "socket(AF_INET) failed";
            return false;
        }
        int one = 1;
        ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(std::uint16_t(opts.port));
        if (::bind(tcpFd, (const sockaddr *)&addr, sizeof(addr)) !=
                0 ||
            ::listen(tcpFd, 64) != 0) {
            err = "cannot bind 127.0.0.1:" +
                  std::to_string(opts.port);
            return false;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        ::getsockname(tcpFd, (sockaddr *)&bound, &len);
        boundPort = ntohs(bound.sin_port);
    }

    std::size_t replayed = svc->replayJournal();
    if (replayed)
        inform("svf_simd: replayed %zu journaled request(s)",
               replayed);

    acceptor = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::requestStop()
{
    stopping.store(true);
    if (stopPipe[1] >= 0) {
        char b = 0;
        // Best-effort, async-signal-safe wakeup.
        [[maybe_unused]] ssize_t n = ::write(stopPipe[1], &b, 1);
    }
}

void
Server::serveForever()
{
    if (acceptor.joinable())
        acceptor.join();
    stop();
}

void
Server::stop()
{
    if (stopped)
        return;
    stopped = true;
    requestStop();
    if (acceptor.joinable())
        acceptor.join();

    if (unixFd >= 0) {
        ::close(unixFd);
        unixFd = -1;
        ::unlink(opts.unixPath.c_str());
    }
    if (tcpFd >= 0) {
        ::close(tcpFd);
        tcpFd = -1;
    }

    // Unblock every connection reader, then join.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> l(connLock);
        for (int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
        threads.swap(connThreads);
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();

    svc->drain();

    for (int i = 0; i < 2; ++i) {
        if (stopPipe[i] >= 0) {
            ::close(stopPipe[i]);
            stopPipe[i] = -1;
        }
    }
}

void
Server::acceptLoop()
{
    while (!stopping.load()) {
        pollfd fds[3];
        nfds_t n = 0;
        fds[n++] = {stopPipe[0], POLLIN, 0};
        int unix_at = -1, tcp_at = -1;
        if (unixFd >= 0) {
            unix_at = int(n);
            fds[n++] = {unixFd, POLLIN, 0};
        }
        if (tcpFd >= 0) {
            tcp_at = int(n);
            fds[n++] = {tcpFd, POLLIN, 0};
        }
        if (::poll(fds, n, -1) < 0)
            continue;
        if (fds[0].revents)
            break;

        for (int at : {unix_at, tcp_at}) {
            if (at < 0 || !(fds[at].revents & POLLIN))
                continue;
            int fd = ::accept(fds[at].fd, nullptr, nullptr);
            if (fd < 0)
                continue;
            std::lock_guard<std::mutex> l(connLock);
            std::uint64_t id = nextConn++;
            connFds.push_back(fd);
            connThreads.emplace_back(
                [this, fd, id] { handleConnection(fd, id); });
        }
    }
}

void
Server::streamRun(const ActiveRun &run, const SimService::Emit &emit)
{
    auto ms = std::chrono::milliseconds(
        long(opts.heartbeatSeconds * 1000.0));
    std::vector<bool> announced(run.tickets.size(), false);
    auto last_beat = std::chrono::steady_clock::now();

    auto unfinished = [&] {
        for (const auto &t : run.tickets)
            if (!t->finished())
                return true;
        return false;
    };

    while (unfinished() && !stopping.load()) {
        svc->engine().waitEvent(std::chrono::milliseconds(100));
        auto now = std::chrono::steady_clock::now();
        bool beat = now - last_beat >= ms;
        for (std::size_t i = 0; i < run.tickets.size(); ++i) {
            const harness::JobTicket &t = *run.tickets[i];
            if (t.state() != harness::TicketState::Running)
                continue;
            if (announced[i] && !beat)
                continue;
            std::string profile;
            if (harness::prof::profilingEnabled()) {
                profile = harness::prof::Profiler::instance()
                              .reportJson();
            }
            emit(wire::eventRunning(run.id, i, t.key(), profile));
            announced[i] = true;
        }
        if (beat)
            last_beat = now;
    }

    // A stop while jobs are queued/running: the engine drain will
    // finish the running ones; the journal covers the rest. The
    // client sees EOF and can retry against the next daemon.
    for (const auto &t : run.tickets)
        if (t->finished())
            t->wait();
}

void
Server::handleConnection(int fd, std::uint64_t conn_id)
{
    std::string conn_client = "conn-" + std::to_string(conn_id);

    auto write_lock = std::make_shared<std::mutex>();
    SimService::Emit emit = [fd, write_lock](const std::string &line) {
        std::lock_guard<std::mutex> l(*write_lock);
        writeLine(fd, line);
    };

    std::string buf;
    char chunk[4096];
    // One request line past the service cap is still read (so the
    // error event can name its size), but not unboundedly.
    std::size_t hard_cap = (opts.service.maxRequestBytes
                                ? opts.service.maxRequestBytes
                                : (1u << 20)) +
                           4096;

    bool open = true;
    while (open && !stopping.load()) {
        std::size_t nl = buf.find('\n');
        if (nl == std::string::npos) {
            if (buf.size() > hard_cap) {
                emit(wire::eventError(0, -1,
                                      "request too large"));
                break;
            }
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            buf.append(chunk, std::size_t(n));
            continue;
        }
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;

        ActiveRun run = svc->handle(line, conn_client, emit);
        if (!run.tickets.empty())
            streamRun(run, emit);
    }

    ::close(fd);
    std::lock_guard<std::mutex> l(connLock);
    connFds.erase(std::remove(connFds.begin(), connFds.end(), fd),
                  connFds.end());
}

} // namespace svf::serve
