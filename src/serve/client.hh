/**
 * @file
 * Thin client for the svf_simd daemon.
 *
 * `server=SPEC` in a bench binary or svf_sim routes the experiment
 * plan here instead of a local Runner: the plan's jobs are rendered
 * as one wire request, the daemon's `done` events are decoded back
 * into harness::JobOutcomes (bit-identical payloads — see
 * serve/wire.hh), and table assembly proceeds exactly as before.
 * SPEC is a Unix socket path, or digits for a TCP loopback port.
 */

#ifndef SVF_SERVE_CLIENT_HH
#define SVF_SERVE_CLIENT_HH

#include <string>
#include <utility>
#include <vector>

#include "harness/reporting.hh"
#include "harness/runner.hh"

namespace svf::serve
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to @p spec: all-digits = TCP 127.0.0.1:spec, anything
     * else = Unix socket path. False + @p err on failure.
     */
    bool connect(const std::string &spec, std::string &err);

    bool connected() const { return fd >= 0; }
    void close();

    /**
     * Execute @p jobs on the server; outcomes align with indices
     * (submission order, like Runner::run). @p progress, when set,
     * fires per finished job with the usual done-count bookkeeping.
     * False + @p err on connection loss, protocol errors, or any
     * failed job.
     */
    bool runJobs(
        const std::vector<std::pair<std::string, harness::JobSetup>>
            &jobs,
        std::vector<harness::JobOutcome> &out, std::string &err,
        const harness::ProgressHook &progress = {},
        const std::string &client_id = "");

    /** Plan flavour of runJobs (the bench layer has a plan). */
    bool runPlan(const harness::ExperimentPlan &plan,
                 std::vector<harness::JobOutcome> &out,
                 std::string &err,
                 const harness::ProgressHook &progress = {},
                 const std::string &client_id = "");

    /** The stats verb: daemon statistics as a JSON object string. */
    bool stats(std::string &out, std::string &err);

  private:
    bool writeLine(const std::string &line, std::string &err);
    bool readLine(std::string &line, std::string &err);

    int fd = -1;
    std::string rdbuf;
    std::uint64_t nextId = 1;
};

} // namespace svf::serve

#endif // SVF_SERVE_CLIENT_HH
