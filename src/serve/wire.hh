/**
 * @file
 * Wire codec for the svf_simd protocol (see docs/serving.md).
 *
 * The protocol is NDJSON — one JSON object per line in each
 * direction. A request names a verb; the `run` verb carries a list
 * of jobs, each a *flat config-string map* using the same keys the
 * bench CLI already accepts (workload=, insts=, machine fields under
 * `m.`), so a machine is fully described as data and the existing
 * canonical setup keys become the wire-level cache identity: the
 * client sends the key it computed locally, the server re-derives it
 * from the decoded setup, and any mismatch — a missed field, a
 * version skew — is rejected instead of silently simulating the
 * wrong machine or poisoning the shared cache.
 *
 * Results travel as the result cache's own payload encoding
 * (ckpt::encodeValue), hex-armored into a `done` event, so a decoded
 * value is bit-identical to a locally simulated one — the property
 * the `server=` byte-identity pin rests on.
 *
 * Everything here is non-fatal by design: the daemon turns malformed
 * input into `error` events, never into fatal(). Setups that cannot
 * ship (explicit asm programs, trace sinks writing client-local
 * files) are refused at encode time.
 */

#ifndef SVF_SERVE_WIRE_HH
#define SVF_SERVE_WIRE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "serve/json.hh"

namespace svf::serve::wire
{

/** Flat, canonically ordered config-string view of a setup. */
using ConfigMap = std::map<std::string, std::string>;

/**
 * Encode @p setup as config strings (includes the "kind" entry:
 * run / traffic / profile). False + @p err when the setup cannot be
 * shipped (explicit program, trace sink, snapshot dir).
 */
bool setupToConfig(const harness::JobSetup &setup, ConfigMap &out,
                   std::string &err);

/**
 * Decode a config map produced by setupToConfig. Strict: unknown
 * keys, malformed values and unknown workload names all fail with a
 * message. Missing keys keep their defaults — full-fidelity
 * transport is enforced by the caller's key verification, not here.
 */
bool setupFromConfig(const ConfigMap &config, harness::JobSetup &out,
                     std::string &err);

/** One job of a run request. */
struct JobRequest
{
    std::string name;           //!< display name (report row)
    std::uint64_t key = 0;      //!< client-computed setup key
    harness::JobSetup setup;    //!< decoded, key-verified
};

/** A parsed request line. */
struct Request
{
    enum class Verb { Run, Stats, Ping };
    Verb verb = Verb::Ping;
    std::uint64_t id = 0;       //!< client-chosen request id
    std::string client;         //!< fairness queue id
    std::vector<JobRequest> jobs;
};

/**
 * Parse and validate one request line: JSON shape, verb, per-job
 * config decode and setup-key verification. False + @p err rejects
 * the whole request.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &err);

/** @name Request rendering (client side) */
/// @{
std::string renderRunRequest(
    std::uint64_t id, const std::string &client,
    const std::vector<std::pair<std::string, harness::JobSetup>>
        &jobs,
    std::string &err);
std::string renderStatsRequest();
std::string renderPingRequest();
/// @}

/** @name Event rendering (server side) */
/// @{
std::string eventQueued(std::uint64_t id, std::size_t index,
                        const std::string &name, std::uint64_t key,
                        std::size_t position);
std::string eventRunning(std::uint64_t id, std::size_t index,
                         std::uint64_t key,
                         const std::string &profile_json);
std::string eventDone(std::uint64_t id, std::size_t index,
                      std::uint64_t key, bool cached,
                      const std::string &source, double wall_seconds,
                      const std::vector<std::uint8_t> &payload);
std::string eventError(std::uint64_t id, long index,
                       const std::string &message);
std::string eventStats(std::uint64_t id, const std::string &stats_json);
std::string eventPong(std::uint64_t id);
/// @}

/** @name Hex armor for result payloads */
/// @{
std::string hexEncode(const std::vector<std::uint8_t> &bytes);
bool hexDecode(const std::string &hex,
               std::vector<std::uint8_t> &out);
/// @}

/** "%016llx" of a setup key (the cache identity in reports). */
std::string keyHex(std::uint64_t key);

} // namespace svf::serve::wire

#endif // SVF_SERVE_WIRE_HH
