#include "serve/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace svf::serve
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

std::string
JsonValue::getString(const std::string &key,
                     const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str : fallback;
}

namespace
{

/** Hard cap on nesting so hostile input cannot blow the stack. */
constexpr int MaxDepth = 64;

struct Parser
{
    const char *p;
    const char *end;
    const char *begin;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at byte " + std::to_string(p - begin);
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (std::size_t(end - p) < len ||
            std::string_view(p, len) != std::string_view(word, len))
            return fail("bad literal");
        p += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            unsigned char c = static_cast<unsigned char>(*p);
            if (c < 0x20)
                return fail("control character in string");
            if (c != '\\') {
                out.push_back(*p++);
                continue;
            }
            if (++p >= end)
                return fail("truncated escape");
            char e = *p++;
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (end - p < 4)
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p++;
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the code point (surrogate pairs are
                // passed through as two 3-byte sequences; the
                // protocol never emits them).
                if (v < 0x80) {
                    out.push_back(char(v));
                } else if (v < 0x800) {
                    out.push_back(char(0xC0 | (v >> 6)));
                    out.push_back(char(0x80 | (v & 0x3F)));
                } else {
                    out.push_back(char(0xE0 | (v >> 12)));
                    out.push_back(char(0x80 | ((v >> 6) & 0x3F)));
                    out.push_back(char(0x80 | (v & 0x3F)));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;    // closing quote
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        while (p < end && std::isdigit(static_cast<unsigned char>(*p)))
            ++p;
        if (p < end && *p == '.') {
            ++p;
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            ++p;
            if (p < end && (*p == '+' || *p == '-'))
                ++p;
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        std::string text(start, p);
        char *parsed_end = nullptr;
        out.number = std::strtod(text.c_str(), &parsed_end);
        if (text.empty() || parsed_end != text.c_str() + text.size())
            return fail("bad number");
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > MaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++p;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.arr.push_back(std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }
};

} // anonymous namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    Parser ps{text.data(), text.data() + text.size(), text.data(), ""};
    out = JsonValue();
    if (!ps.parseValue(out, 0)) {
        err = ps.err;
        return false;
    }
    ps.skipWs();
    if (ps.p != ps.end) {
        err = "trailing garbage at byte " +
              std::to_string(ps.p - ps.begin);
        return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(char(c));
            }
        }
    }
    return out;
}

} // namespace svf::serve
