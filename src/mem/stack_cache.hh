/**
 * @file
 * The decoupled stack cache of Cho, Yew and Lee (ISCA'99), the
 * paper's primary comparator (Section 5.3).
 *
 * A direct-mapped, line-grained cache dedicated to the stack region.
 * Unlike the SVF it cannot exploit stack-pointer semantics:
 *
 *   1. Allocations: a write miss must read the rest of the line from
 *      the next level before the store can complete (write-allocate),
 *      because the cache cannot know the data is dead.
 *   2. Dirty replacements: an evicted dirty line must be written back
 *      even if the frame it belonged to was deallocated.
 *
 * Both rules are exactly what Table 3 of the paper charges it for.
 */

#ifndef SVF_MEM_STACK_CACHE_HH
#define SVF_MEM_STACK_CACHE_HH

#include <cstdint>

#include "mem/cache.hh"

namespace svf::mem
{

class MemHierarchy;

/** Stack cache shape; the paper's default is 8KB direct-mapped. */
struct StackCacheParams
{
    std::uint64_t size = 8 * 1024;
    unsigned lineSize = 32;
    unsigned hitLatency = 3;
    unsigned ports = 2;

    /** Canonical hash over every field (see base/hash.hh). */
    std::uint64_t
    key(std::uint64_t seed = hashInit()) const
    {
        seed = hashCombine(seed, size);
        seed = hashCombine(seed, std::uint64_t(lineSize));
        seed = hashCombine(seed, std::uint64_t(hitLatency));
        return hashCombine(seed, std::uint64_t(ports));
    }
};

/** Outcome of a stack cache access, with its total latency. */
struct StackCacheAccess
{
    bool hit = false;
    unsigned latency = 0;
};

/**
 * Direct-mapped stack cache that misses into the L2 (it is decoupled
 * from the DL1 pipeline).
 */
class StackCache
{
  public:
    /**
     * @param params cache shape.
     * @param hier hierarchy supplying miss latencies and absorbing
     *             fill/writeback traffic on the L2 side.
     */
    StackCache(const StackCacheParams &params, MemHierarchy &hier);

    /** Probe/allocate for one reference. */
    StackCacheAccess access(Addr addr, bool write);

    /**
     * Context switch: write back all dirty lines.
     *
     * @return bytes of writeback traffic (whole lines — the stack
     *         cache's line-grain dirty bits cannot do better).
     */
    std::uint64_t contextSwitchFlush();

    const StackCacheParams &params() const { return _params; }

    /** @name Traffic statistics (quadwords, as Table 3) */
    /// @{
    std::uint64_t quadsIn() const { return trafficIn; }
    std::uint64_t quadsOut() const { return trafficOut; }
    std::uint64_t hits() const { return cache.hits(); }
    std::uint64_t misses() const { return cache.misses(); }
    /// @}

  private:
    StackCacheParams _params;
    Cache cache;
    MemHierarchy &hier;
    std::uint64_t trafficIn = 0;
    std::uint64_t trafficOut = 0;
};

} // namespace svf::mem

#endif // SVF_MEM_STACK_CACHE_HH
