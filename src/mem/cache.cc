#include "mem/cache.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace svf::mem
{

Cache::Cache(const CacheParams &params) : _params(params)
{
    if (!isPow2(params.lineSize) || params.lineSize < 8)
        fatal("cache '%s': line size must be a power of two >= 8",
              params.name.c_str());
    if (params.assoc == 0 || params.size % (params.lineSize *
                                            params.assoc) != 0) {
        fatal("cache '%s': size %llu not divisible by line*assoc",
              params.name.c_str(),
              static_cast<unsigned long long>(params.size));
    }
    lineShift = floorLog2(params.lineSize);
    lineMask = params.lineSize - 1;
    numSets = params.size / (params.lineSize * params.assoc);
    if (!isPow2(numSets))
        fatal("cache '%s': set count must be a power of two",
              params.name.c_str());
    lines.resize(numSets * params.assoc);
    mruWay.assign(numSets, 0);
}

CacheAccess
Cache::access(Addr addr, bool write)
{
    CacheAccess out;
    // One shift serves both lookups: the stored tag is the full line
    // address, and the set index is just its low bits.
    Addr tag = addr >> lineShift;
    std::uint64_t set = tag & (numSets - 1);
    Line *base = &lines[set * _params.assoc];

    // MRU-way-first: repeated touches to a hot line (the common case
    // by far) hit without walking the set. A hit changes no
    // replacement-relevant state beyond what the full walk would, so
    // stats are identical either way.
    {
        Line &mru = base[mruWay[set]];
        if (mru.valid && mru.tag == tag) {
            mru.lru = ++lruClock;
            if (write)
                mru.dirty = true;
            ++nHits;
            out.hit = true;
            return out;
        }
    }

    Line *victim = base;
    for (unsigned w = 0; w < _params.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = ++lruClock;
            if (write)
                line.dirty = true;
            ++nHits;
            out.hit = true;
            mruWay[set] = w;
            return out;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++nMisses;
    ++nFills;
    if (victim->valid && victim->dirty) {
        ++nWritebacks;
        out.writebackVictim = true;
        out.victimAddr = victim->tag << lineShift;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = write;
    victim->lru = ++lruClock;
    mruWay[set] = static_cast<std::uint32_t>(victim - base);
    return out;
}

bool
Cache::probe(Addr addr) const
{
    std::uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines[set * _params.assoc];
    for (unsigned w = 0; w < _params.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

std::uint64_t
Cache::flushDirty(bool invalidate)
{
    std::uint64_t flushed = 0;
    for (Line &line : lines) {
        if (line.valid && line.dirty) {
            ++flushed;
            ++nWritebacks;
            line.dirty = false;
        }
        if (invalidate)
            line.valid = false;
    }
    return flushed;
}

void
Cache::invalidateAll()
{
    for (Line &line : lines)
        line.valid = false;
}

std::uint64_t
Cache::quadsIn() const
{
    return nFills * (_params.lineSize / 8);
}

std::uint64_t
Cache::quadsOut() const
{
    return nWritebacks * (_params.lineSize / 8);
}

void
Cache::resetStats()
{
    nHits = nMisses = nWritebacks = nFills = 0;
}

} // namespace svf::mem
