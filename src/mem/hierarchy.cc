#include "mem/hierarchy.hh"

#include "mem/shared_l2.hh"

namespace svf::mem
{

MemHierarchy::MemHierarchy(const HierarchyParams &params,
                           SharedL2 *shared, unsigned core_id)
    : _params(params), _il1(params.il1), _dl1(params.dl1),
      _l2(params.l2), _shared(shared), _coreId(core_id)
{
}

bool
MemHierarchy::l2Access(Addr addr, bool write)
{
    if (_shared)
        return _shared->access(_coreId, addr, write);
    CacheAccess l2a = _l2.access(addr, write);
    if (!l2a.hit)
        memTraffic += _l2.params().lineSize / 8;    // fill
    if (l2a.writebackVictim)
        memTraffic += _l2.params().lineSize / 8;
    return l2a.hit;
}

unsigned
MemHierarchy::fetch(Addr addr)
{
    CacheAccess a = _il1.access(addr, false);
    if (a.hit)
        return _params.il1.hitLatency;
    bool l2_hit = l2Access(addr, false);
    return l2_hit ? _params.l2.hitLatency : _params.memLatency;
}

unsigned
MemHierarchy::data(Addr addr, bool write)
{
    CacheAccess a = _dl1.access(addr, write);
    if (a.writebackVictim)
        l2Access(a.victimAddr, true);
    if (a.hit)
        return _params.dl1.hitLatency;
    bool l2_hit = l2Access(addr, false);    // line fill read
    return l2_hit ? _params.l2.hitLatency : _params.memLatency;
}

unsigned
MemHierarchy::l2Direct(Addr addr, bool write)
{
    bool l2_hit = l2Access(addr, write);
    return l2_hit ? _params.l2.hitLatency : _params.memLatency;
}

std::uint64_t
MemHierarchy::flushDl1(bool invalidate)
{
    return _dl1.flushDirty(invalidate);
}

} // namespace svf::mem
