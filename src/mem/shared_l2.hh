/**
 * @file
 * Epoch-coherent shared L2 for the multi-core System.
 *
 * N cores share one L2 through per-core ports. To keep multi-core
 * simulation deterministic for any host thread count, the tag array
 * is only mutated at epoch barriers:
 *
 *   - Phase A (parallel, one host thread per core): access() probes
 *     the *frozen* tags (Cache::probe, no state change) plus a
 *     per-core overlay of lines this core already filled during the
 *     current epoch, logs the access, and returns hit/miss. A core
 *     only ever touches its own port, so phase A is race-free by
 *     construction.
 *   - Phase B (commitEpoch, serial, at the barrier): the logs are
 *     replayed through the real Cache in core order, performing the
 *     fills, LRU updates, dirty marking and writeback/memory-traffic
 *     accounting.
 *
 * Within an epoch a core therefore sees the other cores' fills one
 * epoch late ("epoch-coherent"). That staleness is the modeling
 * price of determinism; it is bounded by the quantum and documented
 * in docs/model.md. The per-port hit/miss counters reflect what the
 * cores *observed* (and paid latency for); the underlying Cache's
 * counters reflect the serial replay. Both are deterministic, and
 * they may legitimately disagree.
 */

#ifndef SVF_MEM_SHARED_L2_HH
#define SVF_MEM_SHARED_L2_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "mem/cache.hh"

namespace svf::mem
{

/** The shared L2 and its per-core ports. */
class SharedL2
{
  public:
    /** What one core observed at its port. */
    struct PortStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t accesses() const { return hits + misses; }
    };

    /**
     * @param l2 shape of the shared cache.
     * @param ncores number of ports.
     */
    SharedL2(const CacheParams &l2, unsigned ncores);

    /**
     * Phase A: one access by core @p id. Deterministic given the
     * epoch-start tags and this core's own earlier accesses; never
     * mutates state shared with another core.
     *
     * @return true on an (observed) L2 hit.
     */
    bool access(unsigned id, Addr addr, bool write);

    /**
     * Phase B: replay every port's epoch log through the real cache
     * in core order. Must be called with no core running (the
     * barrier); also called once after the last epoch so the final
     * tag state and traffic counters cover every access.
     */
    void commitEpoch();

    unsigned ports() const
    {
        return static_cast<unsigned>(_ports.size());
    }

    const PortStats &portStats(unsigned id) const
    {
        return _ports[id].stats;
    }

    /** The shared cache (replay-order statistics and tag state). */
    Cache &cache() { return _l2; }
    const Cache &cache() const { return _l2; }

    /** Quadwords moved between the shared L2 and main memory. */
    std::uint64_t memQuads() const { return memTraffic; }

  private:
    struct LogEntry
    {
        Addr addr = 0;
        bool write = false;
    };

    struct Port
    {
        std::vector<LogEntry> log;          //!< this epoch, in order
        std::unordered_set<Addr> filled;    //!< lines filled this epoch
        PortStats stats;
    };

    Cache _l2;
    std::vector<Port> _ports;
    std::uint64_t memTraffic = 0;
};

} // namespace svf::mem

#endif // SVF_MEM_SHARED_L2_HH
