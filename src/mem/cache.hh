/**
 * @file
 * Set-associative cache tag/state model.
 *
 * The timing model uses fixed end-to-end latencies (Table 2 of the
 * paper), so this class models only hit/miss state, LRU replacement,
 * dirty tracking and the traffic its fills/writebacks generate;
 * latency composition lives in MemHierarchy.
 */

#ifndef SVF_MEM_CACHE_HH
#define SVF_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/hash.hh"
#include "base/types.hh"

namespace svf::mem
{

/** Static shape of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size = 64 * 1024;     //!< total bytes
    unsigned assoc = 4;
    unsigned lineSize = 32;             //!< bytes (SimpleScalar default)
    unsigned hitLatency = 3;            //!< end-to-end hit cycles

    /** Canonical hash over every field (see base/hash.hh). */
    std::uint64_t
    key(std::uint64_t seed = hashInit()) const
    {
        seed = hashCombine(seed, name);
        seed = hashCombine(seed, size);
        seed = hashCombine(seed, std::uint64_t(assoc));
        seed = hashCombine(seed, std::uint64_t(lineSize));
        return hashCombine(seed, std::uint64_t(hitLatency));
    }
};

/** Outcome of one cache probe. */
struct CacheAccess
{
    bool hit = false;
    bool writebackVictim = false;       //!< a dirty line was evicted
    Addr victimAddr = 0;                //!< line address of the victim
};

/**
 * A write-back, write-allocate, LRU set-associative cache.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Probe and update state for an access; misses allocate the line
     * (write-allocate for both reads and writes).
     *
     * @param addr byte address accessed.
     * @param write true for stores (marks the line dirty).
     * @return hit/miss and any dirty victim evicted by the fill.
     */
    CacheAccess access(Addr addr, bool write);

    /** Probe without updating any state. */
    bool probe(Addr addr) const;

    /**
     * Write back every dirty line (context switch / flush).
     *
     * @param invalidate also drop all lines.
     * @return number of lines written back.
     */
    std::uint64_t flushDirty(bool invalidate);

    /** Drop all lines without writing anything back. */
    void invalidateAll();

    const CacheParams &params() const { return _params; }

    /** @name Statistics */
    /// @{
    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t writebacks() const { return nWritebacks; }
    std::uint64_t fills() const { return nFills; }

    /** Quadwords read in from the next level (fills). */
    std::uint64_t quadsIn() const;

    /** Quadwords written out to the next level (writebacks). */
    std::uint64_t quadsOut() const;

    void resetStats();
    /// @}

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;          //!< larger = more recent
    };

    Addr lineAddr(Addr a) const { return a & ~Addr(lineMask); }

    /**
     * The stored tag is the full line address (set bits included),
     * so the set index is derivable from the tag with one mask —
     * access() computes the line-shift once and reuses it for both.
     */
    std::uint64_t setOf(Addr a) const
    {
        return (a >> lineShift) & (numSets - 1);
    }
    Addr tagOf(Addr a) const { return a >> lineShift; }

    CacheParams _params;
    unsigned lineShift;
    std::uint64_t lineMask;
    std::uint64_t numSets;
    std::vector<Line> lines;            //!< numSets * assoc

    /**
     * Most-recently hit/filled way per set. Pure host-side fast
     * path: temporal locality makes the MRU way the overwhelmingly
     * likely hit, so access() probes it before walking the set. No
     * modeled state depends on it.
     */
    std::vector<std::uint32_t> mruWay;

    std::uint64_t lruClock = 0;

    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nWritebacks = 0;
    std::uint64_t nFills = 0;
};

} // namespace svf::mem

#endif // SVF_MEM_CACHE_HH
