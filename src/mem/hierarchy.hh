/**
 * @file
 * Fixed-latency cache hierarchy matching Table 2 of the paper.
 */

#ifndef SVF_MEM_HIERARCHY_HH
#define SVF_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"

namespace svf::mem
{

/** Hierarchy shape; defaults are the paper's Table 2 values. */
struct HierarchyParams
{
    CacheParams il1{"il1", 256 * 1024, 8, 32, 1};
    CacheParams dl1{"dl1", 64 * 1024, 4, 32, 3};
    CacheParams l2{"l2", 512 * 1024, 4, 32, 16};

    /** End-to-end main memory latency in CPU cycles. */
    unsigned memLatency = 60;

    /** Canonical hash over every field (see base/hash.hh). */
    std::uint64_t
    key(std::uint64_t seed = hashInit()) const
    {
        seed = il1.key(seed);
        seed = dl1.key(seed);
        seed = l2.key(seed);
        return hashCombine(seed, std::uint64_t(memLatency));
    }
};

class SharedL2;

/**
 * Composes IL1/DL1/L2/memory with the paper's end-to-end latencies:
 * a DL1 hit costs dl1.hitLatency, a DL1 miss that hits in L2 costs
 * l2.hitLatency, and an L2 miss costs memLatency.
 *
 * A hierarchy is either *standalone* (it owns its own L2 — the
 * single-core configuration, bit-identical to what it always was)
 * or *split*: the private IL1/DL1 levels stay per-core while every
 * L2-level access goes out this core's port of a SharedL2 back end
 * (see mem/shared_l2.hh). The split changes where L2 state lives,
 * not any latency composition.
 */
class MemHierarchy
{
  public:
    /**
     * @param params cache shapes and memory latency.
     * @param shared when non-null, route all L2 accesses through
     *        port @p core_id of this shared back end instead of the
     *        private L2.
     * @param core_id this core's port on @p shared.
     */
    explicit MemHierarchy(const HierarchyParams &params,
                          SharedL2 *shared = nullptr,
                          unsigned core_id = 0);

    /** Instruction fetch; returns total latency in cycles. */
    unsigned fetch(Addr addr);

    /**
     * Data access through DL1.
     *
     * @param addr byte address.
     * @param write true for stores.
     * @return total latency in cycles.
     */
    unsigned data(Addr addr, bool write);

    /**
     * Access that bypasses DL1 and goes straight to L2 — the path a
     * decoupled stack cache or the SVF's L2-side fills would use.
     */
    unsigned l2Direct(Addr addr, bool write);

    /** Flush DL1 dirty lines (context switch); returns lines. */
    std::uint64_t flushDl1(bool invalidate);

    const HierarchyParams &params() const { return _params; }

    Cache &il1() { return _il1; }
    Cache &dl1() { return _dl1; }
    Cache &l2() { return _l2; }
    const Cache &il1() const { return _il1; }
    const Cache &dl1() const { return _dl1; }
    const Cache &l2() const { return _l2; }

    /**
     * Quadwords moved between L2 and main memory. In split mode the
     * traffic is accounted system-wide by the SharedL2 (a line fill
     * serves every core), so the per-core figure here stays 0.
     */
    std::uint64_t memQuads() const { return memTraffic; }

    /** The shared back end, or nullptr when standalone. */
    const SharedL2 *shared() const { return _shared; }

  private:
    /** L2 access including memory traffic accounting. */
    bool l2Access(Addr addr, bool write);

    HierarchyParams _params;
    Cache _il1;
    Cache _dl1;
    Cache _l2;
    SharedL2 *_shared = nullptr;
    unsigned _coreId = 0;
    std::uint64_t memTraffic = 0;
};

} // namespace svf::mem

#endif // SVF_MEM_HIERARCHY_HH
