#include "mem/shared_l2.hh"

#include "base/logging.hh"

namespace svf::mem
{

SharedL2::SharedL2(const CacheParams &l2, unsigned ncores)
    : _l2(l2), _ports(ncores)
{
    svf_assert(ncores > 0);
}

bool
SharedL2::access(unsigned id, Addr addr, bool write)
{
    Port &p = _ports[id];
    Addr line = addr & ~Addr(_l2.params().lineSize - 1);
    p.log.push_back({addr, write});
    bool hit = p.filled.count(line) != 0 || _l2.probe(addr);
    if (hit) {
        ++p.stats.hits;
    } else {
        ++p.stats.misses;
        p.filled.insert(line);
    }
    return hit;
}

void
SharedL2::commitEpoch()
{
    for (Port &p : _ports) {
        for (const LogEntry &e : p.log) {
            CacheAccess a = _l2.access(e.addr, e.write);
            if (!a.hit)
                memTraffic += _l2.params().lineSize / 8;    // fill
            if (a.writebackVictim)
                memTraffic += _l2.params().lineSize / 8;
        }
        p.log.clear();
        p.filled.clear();
    }
}

} // namespace svf::mem
