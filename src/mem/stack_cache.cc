#include "mem/stack_cache.hh"

#include "mem/hierarchy.hh"

namespace svf::mem
{

StackCache::StackCache(const StackCacheParams &params,
                       MemHierarchy &hier)
    : _params(params),
      cache(CacheParams{"stack$", params.size, 1, params.lineSize,
                        params.hitLatency}),
      hier(hier)
{
}

StackCacheAccess
StackCache::access(Addr addr, bool write)
{
    StackCacheAccess out;
    unsigned line_quads = _params.lineSize / 8;

    CacheAccess a = cache.access(addr, write);
    out.hit = a.hit;
    if (a.hit) {
        out.latency = _params.hitLatency;
        return out;
    }

    // Fill the whole line from L2. Even a write miss reads the line:
    // the cache cannot prove the rest of the line is dead.
    trafficIn += line_quads;
    out.latency = hier.l2Direct(addr, false);

    if (a.writebackVictim) {
        trafficOut += line_quads;
        hier.l2Direct(a.victimAddr, true);
    }
    return out;
}

std::uint64_t
StackCache::contextSwitchFlush()
{
    std::uint64_t lines = cache.flushDirty(true);
    trafficOut += lines * (_params.lineSize / 8);
    return lines * _params.lineSize;
}

} // namespace svf::mem
