#include "core/spec_sp.hh"

namespace svf::core
{

bool
SpecSpTracker::onDispatch(const isa::DecodedInst &di, InstSeq seq)
{
    if (!di.writesSp() || di.isSpAdjust())
        return false;
    pendingValid = true;
    pendingSeq = seq;
    ++nInterlocks;
    return true;
}

void
SpecSpTracker::onComplete(InstSeq seq)
{
    if (pendingValid && seq == pendingSeq)
        pendingValid = false;
}

} // namespace svf::core
