#include "core/svf.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace svf::core
{

StackValueFile::StackValueFile(const SvfParams &params, Addr initial_sp)
    : _params(params)
{
    if (!isPow2(_params.entries))
        fatal("SVF entry count must be a power of two");
    if (_params.dirtyGranule < 8 || !isPow2(_params.dirtyGranule) ||
        capacityBytes() % _params.dirtyGranule != 0) {
        fatal("SVF dirty granule must be a power of two >= 8 dividing "
              "the capacity");
    }
    words.resize(_params.entries);
    windowLo = alignDown(initial_sp, 8);
    windowHi = windowLo + capacityBytes();
}

void
StackValueFile::dropRange(Addr lo, Addr hi, bool writeback_dirty)
{
    if (hi <= lo)
        return;
    // A range at least as large as the window touches every word.
    if (hi - lo >= capacityBytes()) {
        lo = 0;
        hi = capacityBytes();
        // Fall through using index-space addresses: indexOf() on
        // [0, capacity) enumerates every word exactly once.
    }

    unsigned granule_words = _params.dirtyGranule / 8;
    Addr a = lo;
    while (a < hi) {
        // Process one granule-aligned chunk.
        Addr chunk_end = std::min(hi, alignDown(a, _params.dirtyGranule)
                                      + _params.dirtyGranule);
        bool any_dirty = false;
        for (Addr w = a; w < chunk_end; w += 8) {
            Word &word = words[indexOf(w)];
            if (word.valid && word.dirty) {
                any_dirty = true;
                if (!writeback_dirty)
                    ++nKilled;
            }
            word.valid = false;
            word.dirty = false;
        }
        if (any_dirty && writeback_dirty) {
            trafficOut += granule_words;
            ++nSlideWb;
        }
        a = chunk_end;
    }
}

void
StackValueFile::onSpUpdate(Addr new_sp)
{
    Addr new_lo = alignDown(new_sp, 8);
    if (new_lo == windowLo)
        return;
    Addr new_hi = new_lo + capacityBytes();

    if (new_lo < windowLo) {
        // Stack grows down. Words leaving coverage at the top are
        // ordinary live data and must be written back if dirty.
        Addr leave_lo = std::max(new_hi, windowLo);
        dropRange(leave_lo, windowHi, true);

        // Words entering at the bottom are newly allocated and dead.
        Addr enter_hi = std::min(windowLo, new_hi);
        dropRange(new_lo, enter_hi, false);
        if (_params.fillOnAlloc) {
            // Ablation: fill allocated words like a cache would.
            for (Addr a = new_lo; a < enter_hi; a += 8) {
                words[indexOf(a)].valid = true;
                ++trafficIn;
            }
        }
    } else {
        // Stack shrinks. Deallocated words are semantically dead:
        // the paper's SVF drops them without writeback.
        Addr dead_hi = std::min(new_lo, windowHi);
        dropRange(windowLo, dead_hi, !_params.killOnShrink);

        // Words entering at the top may hold live caller-frame data
        // not currently cached; they start invalid (demand fill).
        Addr enter_lo = std::max(windowHi, new_lo);
        dropRange(enter_lo, new_hi, false);
    }

    windowLo = new_lo;
    windowHi = new_hi;
}

SvfLookup
StackValueFile::load(Addr addr, unsigned size)
{
    (void)size;
    if (!inWindow(addr))
        return SvfLookup::Outside;
    Word &w = wordAt(addr);
    if (w.valid)
        return SvfLookup::Hit;
    // Demand fill of exactly one quadword.
    w.valid = true;
    ++trafficIn;
    ++nDemandFills;
    return SvfLookup::Miss;
}

SvfLookup
StackValueFile::store(Addr addr, unsigned size)
{
    if (!inWindow(addr))
        return SvfLookup::Outside;
    Word &w = wordAt(addr);
    bool filled = false;
    if (!w.valid && size < 8) {
        // Partial-word store to an invalid word: the rest of the
        // word may be live, so read-modify-write.
        ++trafficIn;
        ++nDemandFills;
        filled = true;
    }
    w.valid = true;
    w.dirty = true;
    return filled ? SvfLookup::Miss : SvfLookup::Hit;
}

std::uint64_t
StackValueFile::contextSwitchFlush()
{
    unsigned granule_words = _params.dirtyGranule / 8;
    std::uint64_t bytes = 0;
    for (std::uint32_t i = 0; i < _params.entries;
         i += granule_words) {
        bool any_dirty = false;
        for (unsigned j = 0; j < granule_words; ++j) {
            Word &w = words[i + j];
            if (w.valid && w.dirty)
                any_dirty = true;
            w.valid = false;
            w.dirty = false;
        }
        if (any_dirty) {
            trafficOut += granule_words;
            bytes += _params.dirtyGranule;
        }
    }
    return bytes;
}

bool
StackValueFile::validAt(Addr addr) const
{
    svf_assert(inWindow(addr));
    return words[indexOf(addr)].valid;
}

bool
StackValueFile::dirtyAt(Addr addr) const
{
    svf_assert(inWindow(addr));
    return words[indexOf(addr)].dirty;
}

} // namespace svf::core
