/**
 * @file
 * Decode-stage speculative stack-pointer tracking (Section 3.1).
 *
 * Almost all $sp updates are immediate adjustments
 * (lda $sp, imm($sp)); the decode stage applies those to a speculative
 * $sp copy so later $sp-relative references can resolve their SVF
 * index without waiting. Any other $sp write trips an interlock that
 * stalls decode until the writer completes, preventing younger
 * references from reading a stale TOS.
 */

#ifndef SVF_CORE_SPEC_SP_HH
#define SVF_CORE_SPEC_SP_HH

#include <cstdint>

#include "base/types.hh"
#include "isa/inst.hh"

namespace svf::core
{

/** Tracks the decode-stage $sp interlock state. */
class SpecSpTracker
{
  public:
    /** Is dispatch currently blocked behind a non-immediate writer? */
    bool blocked() const { return pendingValid; }

    /** Sequence number of the blocking writer (when blocked()). */
    InstSeq pendingWriter() const { return pendingSeq; }

    /**
     * Observe one dispatched instruction.
     *
     * @param di the instruction.
     * @param seq its sequence number.
     * @retval true when the instruction starts an interlock (it
     *         writes $sp by means other than an immediate adjust).
     */
    bool onDispatch(const isa::DecodedInst &di, InstSeq seq);

    /** Observe completion of @p seq; releases a matching interlock. */
    void onComplete(InstSeq seq);

    /** Number of interlock episodes observed. */
    std::uint64_t interlocks() const { return nInterlocks; }

    /**
     * Clear any pending interlock (oracle rebind: the blocking
     * writer belonged to the outgoing program). The episode count
     * survives — it spans the whole run.
     */
    void reset()
    {
        pendingValid = false;
        pendingSeq = 0;
    }

  private:
    bool pendingValid = false;
    InstSeq pendingSeq = 0;
    std::uint64_t nInterlocks = 0;
};

} // namespace svf::core

#endif // SVF_CORE_SPEC_SP_HH
