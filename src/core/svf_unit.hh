/**
 * @file
 * Pipeline-facing SVF unit: reference classification and morphing.
 *
 * The unit decides, for every memory reference in program order, how
 * the SVF-equipped pipeline handles it (Sections 3.1-3.2):
 *
 *   - MorphLoad/MorphStore: a $sp-relative reference whose address
 *     (speculative $sp + imm) falls in the SVF window. Morphed into a
 *     register move at decode; renamed; never touches the DL1.
 *   - RerouteLoad/RerouteStore: a reference through $fp or a $gpr
 *     whose computed address bounds-checks into the SVF window.
 *     Diverted to the SVF after address generation.
 *   - None: everything else; serviced by the normal cache path.
 *
 * It also applies the window-sliding semantics for $sp updates and
 * tracks the reference-type breakdown of Figure 8.
 */

#ifndef SVF_CORE_SVF_UNIT_HH
#define SVF_CORE_SVF_UNIT_HH

#include <cstdint>
#include <memory>

#include "core/svf.hh"
#include "sim/emulator.hh"
#include "sim/region.hh"

namespace svf::core
{

/** How the pipeline services one memory reference. */
enum class StackRefKind : std::uint8_t
{
    None,
    MorphLoad,
    MorphStore,
    RerouteLoad,
    RerouteStore,
};

/** Classification result for one reference. */
struct StackRefInfo
{
    StackRefKind kind = StackRefKind::None;

    /** The SVF word was invalid: a demand fill was performed. */
    bool fill = false;

    /** SVF word index (valid when kind != None). */
    std::uint32_t entry = 0;
};

/** SVF unit configuration. */
struct SvfUnitParams
{
    /** Master enable; when false every reference classifies None. */
    bool enabled = false;

    /** The underlying register file's shape and policies. */
    SvfParams svf;

    /**
     * Figure 5's idealization: morph every stack-region reference
     * (regardless of base register) at decode. Combine with a huge
     * entry count and port count for the "infinite SVF" experiment.
     */
    bool morphAllStackRefs = false;

    /**
     * Morph $sp-relative references at decode (the paper's design).
     * Disabled for ablation: every stack reference takes the
     * bounds-check reroute path after address generation, isolating
     * the SVF's bandwidth benefit from its latency benefit.
     */
    bool morphSpRefs = true;

    /**
     * Model the SVF-aware code generator of Section 5.3.1: the
     * $gpr-store/$sp-load collision pattern is compiled away, so no
     * squashes occur (and colliding loads are instead ordered after
     * the store through an LSQ forward).
     */
    bool noSquash = false;

    /**
     * Pipeline flush penalty charged per collision squash: the
     * front-end refill time while the squashed instructions are
     * refetched (the replay itself re-pays issue slots and ports).
     */
    unsigned squashPenalty = 48;

    /**
     * @name Dynamic disable (Section 3.3)
     * "If shown to be necessary because of localized poor SVF
     * performance, the SVF can be dynamically disabled for a period
     * of time." When the window-miss rate over a monitoring
     * interval exceeds the threshold, the SVF flushes itself and
     * routes everything to the cache for a cooling-off period.
     */
    /// @{
    bool dynamicDisable = false;

    /** Stack references per monitoring interval. */
    unsigned monitorRefs = 4096;

    /**
     * Fraction of stack references going badly (window misses or
     * demand fills — i.e., the window is either too small or
     * thrashing) that triggers a disable.
     */
    double missRateThreshold = 0.5;

    /** Stack references to stay disabled before re-arming. */
    unsigned disableRefs = 16384;
    /// @}

    /** Canonical hash over every field (see base/hash.hh). */
    std::uint64_t
    key(std::uint64_t seed = hashInit()) const
    {
        seed = hashCombine(seed, std::uint64_t(enabled));
        seed = svf.key(seed);
        seed = hashCombine(seed, std::uint64_t(morphAllStackRefs));
        seed = hashCombine(seed, std::uint64_t(morphSpRefs));
        seed = hashCombine(seed, std::uint64_t(noSquash));
        seed = hashCombine(seed, std::uint64_t(squashPenalty));
        seed = hashCombine(seed, std::uint64_t(dynamicDisable));
        seed = hashCombine(seed, std::uint64_t(monitorRefs));
        seed = hashCombine(seed, missRateThreshold);
        return hashCombine(seed, std::uint64_t(disableRefs));
    }
};

/**
 * The SVF plus its classification logic and statistics.
 */
class SvfUnit
{
  public:
    /**
     * @param params configuration.
     * @param initial_sp the program's initial stack pointer.
     */
    SvfUnit(const SvfUnitParams &params, Addr initial_sp);

    bool enabled() const { return _params.enabled; }
    const SvfUnitParams &params() const { return _params; }

    /**
     * Classify one retired-stream instruction in program order and
     * apply its architectural SVF effects ($sp window slides,
     * valid/dirty updates, fill/writeback traffic).
     */
    StackRefInfo classifyAndApply(const sim::ExecInfo &info);

    /** Context switch: flush the SVF; returns bytes written back. */
    std::uint64_t contextSwitchFlush();

    /**
     * Re-anchor the window at @p sp without writing anything back —
     * used when the core switches to a different program whose stack
     * lives elsewhere. Callers flush first (contextSwitchFlush) so no
     * dirty state is silently dropped; the slide itself is the same
     * onSpUpdate path a $sp write takes.
     */
    void resyncSp(Addr sp);

    /** The underlying storage (stats and test access). */
    const StackValueFile &svf() const { return *file; }
    StackValueFile &svf() { return *file; }

    /** @name Figure 8 reference breakdown */
    /// @{
    std::uint64_t fastLoads() const { return nFastLoads; }
    std::uint64_t fastStores() const { return nFastStores; }
    std::uint64_t reroutedLoads() const { return nRerouteLoads; }
    std::uint64_t reroutedStores() const { return nRerouteStores; }

    /** Stack refs that fell outside the window (normal cache). */
    std::uint64_t windowMisses() const { return nWindowMiss; }
    /// @}

    /** @name Dynamic-disable state and statistics */
    /// @{
    /** Is the SVF currently in a disabled cooling-off period? */
    bool dynamicallyDisabled() const { return disabledRefsLeft > 0; }

    /** Number of disable episodes triggered. */
    std::uint64_t disableEpisodes() const { return nDisables; }

    /** Stack references serviced by the cache while disabled. */
    std::uint64_t refsWhileDisabled() const { return nDisabledRefs; }
    /// @}

  private:
    /** Dynamic-disable bookkeeping for one stack reference. */
    void monitorRef(bool went_badly);

    SvfUnitParams _params;
    std::unique_ptr<StackValueFile> file;

    std::uint64_t monitorCount = 0;
    std::uint64_t monitorMisses = 0;
    std::uint64_t disabledRefsLeft = 0;
    std::uint64_t nDisables = 0;
    std::uint64_t nDisabledRefs = 0;

    std::uint64_t nFastLoads = 0;
    std::uint64_t nFastStores = 0;
    std::uint64_t nRerouteLoads = 0;
    std::uint64_t nRerouteStores = 0;
    std::uint64_t nWindowMiss = 0;
};

} // namespace svf::core

#endif // SVF_CORE_SVF_UNIT_HH
