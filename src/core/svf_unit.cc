#include "core/svf_unit.hh"

namespace svf::core
{

SvfUnit::SvfUnit(const SvfUnitParams &params, Addr initial_sp)
    : _params(params)
{
    if (_params.enabled)
        file = std::make_unique<StackValueFile>(_params.svf,
                                                initial_sp);
}

StackRefInfo
SvfUnit::classifyAndApply(const sim::ExecInfo &info)
{
    StackRefInfo out;
    if (!_params.enabled)
        return out;

    if (info.spWritten)
        file->onSpUpdate(info.newSp);

    const isa::DecodedInst &di = *info.di;
    if (!di.memRef)
        return out;

    bool is_stack = sim::classify(info.ea) == sim::Region::Stack;

    if (is_stack && disabledRefsLeft > 0) {
        // Cooling off: everything rides the normal cache path.
        ++nDisabledRefs;
        if (--disabledRefsLeft == 0) {
            monitorCount = 0;
            monitorMisses = 0;
        }
        return out;
    }

    bool morph_eligible =
        (di.isSpBased() && _params.morphSpRefs) ||
        (_params.morphAllStackRefs && is_stack);

    if (morph_eligible && file->inWindow(info.ea)) {
        out.entry = file->indexOf(info.ea);
        if (di.load) {
            out.kind = StackRefKind::MorphLoad;
            out.fill = file->load(info.ea, di.memSize) ==
                SvfLookup::Miss;
            ++nFastLoads;
        } else {
            out.kind = StackRefKind::MorphStore;
            out.fill = file->store(info.ea, di.memSize) ==
                SvfLookup::Miss;
            ++nFastStores;
        }
        monitorRef(out.fill);
        return out;
    }

    if (is_stack && file->inWindow(info.ea)) {
        out.entry = file->indexOf(info.ea);
        if (di.load) {
            out.kind = StackRefKind::RerouteLoad;
            out.fill = file->load(info.ea, di.memSize) ==
                SvfLookup::Miss;
            ++nRerouteLoads;
        } else {
            out.kind = StackRefKind::RerouteStore;
            out.fill = file->store(info.ea, di.memSize) ==
                SvfLookup::Miss;
            ++nRerouteStores;
        }
        monitorRef(out.fill);
        return out;
    }

    if (is_stack) {
        ++nWindowMiss;
        monitorRef(true);
    }
    return out;
}

void
SvfUnit::monitorRef(bool went_badly)
{
    if (!_params.dynamicDisable)
        return;
    ++monitorCount;
    if (went_badly)
        ++monitorMisses;
    if (monitorCount < _params.monitorRefs)
        return;
    double miss_rate = static_cast<double>(monitorMisses) /
                       static_cast<double>(monitorCount);
    monitorCount = 0;
    monitorMisses = 0;
    if (miss_rate > _params.missRateThreshold) {
        // Poor locality: flush (the SVF holds the only copy of its
        // dirty words) and cool off on the cache path.
        file->contextSwitchFlush();
        disabledRefsLeft = _params.disableRefs;
        ++nDisables;
    }
}

std::uint64_t
SvfUnit::contextSwitchFlush()
{
    return _params.enabled ? file->contextSwitchFlush() : 0;
}

void
SvfUnit::resyncSp(Addr sp)
{
    if (_params.enabled)
        file->onSpUpdate(sp);
}

} // namespace svf::core
