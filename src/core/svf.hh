/**
 * @file
 * The Stack Value File (SVF) — the paper's core contribution.
 *
 * A non-architected, tag-free circular register file covering the
 * contiguous region of memory at the top of the run-time stack.
 * Entries are 64-bit words with per-word valid and dirty bits.
 * Because the covered region is guaranteed contiguous and tracks the
 * stack pointer, two semantic facts become exploitable (Section 5.3.2
 * of the paper):
 *
 *   1. Allocations (stack grows): newly covered words are dead by
 *      definition — no fill is performed and a first-touch store
 *      completes without reading memory.
 *   2. Dirty replacements (stack shrinks): deallocated words are dead
 *      — dirty data above the new TOS is dropped without writeback.
 *
 * The timing model is value-free (architectural values come from the
 * execute-ahead oracle), so this structure tracks window bounds,
 * valid/dirty state and the quadword traffic exchanged with the L1.
 */

#ifndef SVF_CORE_SVF_HH
#define SVF_CORE_SVF_HH

#include <cstdint>
#include <vector>

#include "base/hash.hh"
#include "base/types.hh"

namespace svf::core
{

/** SVF shape and policy knobs (ablations included). */
struct SvfParams
{
    /** Number of 64-bit entries (1024 = the paper's 8KB). */
    std::uint32_t entries = 1024;

    /** Read/write ports available per cycle. */
    unsigned ports = 2;

    /** Access latency in cycles (a register-file read). */
    unsigned hitLatency = 1;

    /**
     * Drop dirty data when the frame holding it is deallocated
     * (the paper's semantics). Disabled for ablation: deallocated
     * dirty words are written back like a cache would.
     */
    bool killOnShrink = true;

    /**
     * Fill newly allocated words from memory (ablation). The paper's
     * SVF never does: allocated data is dead by definition.
     */
    bool fillOnAlloc = false;

    /**
     * Dirty/valid tracking granularity in bytes (8 = the paper's
     * per-word bits). Coarser granularities model the line-grain
     * bits of a stack cache for the Table 4 ablation.
     */
    unsigned dirtyGranule = 8;

    /** Canonical hash over every field (see base/hash.hh). */
    std::uint64_t
    key(std::uint64_t seed = hashInit()) const
    {
        seed = hashCombine(seed, std::uint64_t(entries));
        seed = hashCombine(seed, std::uint64_t(ports));
        seed = hashCombine(seed, std::uint64_t(hitLatency));
        seed = hashCombine(seed, std::uint64_t(killOnShrink));
        seed = hashCombine(seed, std::uint64_t(fillOnAlloc));
        return hashCombine(seed, std::uint64_t(dirtyGranule));
    }
};

/** How an address relates to the SVF window. */
enum class SvfLookup
{
    Outside,                    //!< not covered; use the normal cache
    Hit,                        //!< covered and valid
    Miss,                       //!< covered but invalid (demand fill)
};

/**
 * The stack value file storage and window manager.
 */
class StackValueFile
{
  public:
    /**
     * @param params shape and policy.
     * @param initial_sp initial stack pointer (window top).
     */
    StackValueFile(const SvfParams &params, Addr initial_sp);

    /** Capacity in bytes. */
    std::uint64_t capacityBytes() const
    {
        return std::uint64_t(_params.entries) * 8;
    }

    /** Is @p addr inside the covered window? */
    bool inWindow(Addr addr) const
    {
        return addr >= windowLo && addr < windowHi;
    }

    /** Lowest covered address (aligned TOS). */
    Addr windowBase() const { return windowLo; }

    /** One past the highest covered address. */
    Addr windowTop() const { return windowHi; }

    /** Entry index covering @p addr (valid only when inWindow). */
    std::uint32_t indexOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr >> 3) &
                                          (_params.entries - 1));
    }

    /**
     * Slide the window for a stack-pointer update, applying the
     * allocation/deallocation semantics.
     *
     * @param new_sp the new stack pointer value.
     */
    void onSpUpdate(Addr new_sp);

    /**
     * Look up a load.
     *
     * On Miss the word is demand-filled (1 quadword of read traffic)
     * and becomes valid; the caller charges the fill latency.
     */
    SvfLookup load(Addr addr, unsigned size);

    /**
     * Look up a store.
     *
     * A full-quadword store to an invalid word validates it without
     * any fill (the no-read-on-allocate benefit). A sub-quadword
     * store to an invalid word must read-modify-write (1 quadword of
     * fill traffic), since the rest of the word may be live.
     *
     * @return Hit when no fill was needed, Miss when a fill happened,
     *         Outside when not covered.
     */
    SvfLookup store(Addr addr, unsigned size);

    /**
     * Context switch: write back all valid+dirty granules and
     * invalidate everything.
     *
     * @return bytes written back (the per-word dirty bits make this
     *         the fine-grained traffic Table 4 credits the SVF for).
     */
    std::uint64_t contextSwitchFlush();

    /** @name Traffic and event statistics */
    /// @{
    std::uint64_t quadsIn() const { return trafficIn; }
    std::uint64_t quadsOut() const { return trafficOut; }
    std::uint64_t demandFills() const { return nDemandFills; }
    std::uint64_t slideWritebacks() const { return nSlideWb; }
    std::uint64_t killedWords() const { return nKilled; }
    /// @}

    const SvfParams &params() const { return _params; }

    /** Valid bit of the entry covering @p addr (test hook). */
    bool validAt(Addr addr) const;

    /** Dirty bit of the entry covering @p addr (test hook). */
    bool dirtyAt(Addr addr) const;

  private:
    struct Word
    {
        bool valid = false;
        bool dirty = false;
    };

    Word &wordAt(Addr addr) { return words[indexOf(addr)]; }

    /** Invalidate [lo, hi), optionally writing dirty words back. */
    void dropRange(Addr lo, Addr hi, bool writeback_dirty);

    SvfParams _params;
    std::vector<Word> words;
    Addr windowLo;
    Addr windowHi;

    std::uint64_t trafficIn = 0;
    std::uint64_t trafficOut = 0;
    std::uint64_t nDemandFills = 0;
    std::uint64_t nSlideWb = 0;
    std::uint64_t nKilled = 0;
};

} // namespace svf::core

#endif // SVF_CORE_SVF_HH
