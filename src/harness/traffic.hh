/**
 * @file
 * Architectural traffic measurement (Tables 3 and 4).
 *
 * Traffic between a stack structure and the next memory level is an
 * architectural property of the reference stream — it does not
 * depend on pipeline timing. This driver replays the functional
 * stream through an SVF and a decoupled stack cache side by side,
 * which is orders of magnitude faster than the cycle model and lets
 * the traffic tables run the full workloads.
 */

#ifndef SVF_HARNESS_TRAFFIC_HH
#define SVF_HARNESS_TRAFFIC_HH

#include <cstdint>
#include <string>

namespace svf::harness
{

/** Traffic measured for one workload at one capacity. */
struct TrafficResult
{
    std::uint64_t insts = 0;

    /** @name Table 3: quadwords in/out of each structure */
    /// @{
    std::uint64_t svfQuadsIn = 0;
    std::uint64_t svfQuadsOut = 0;
    std::uint64_t scQuadsIn = 0;
    std::uint64_t scQuadsOut = 0;
    /// @}

    /** @name Table 4: context switch writeback traffic */
    /// @{
    std::uint64_t ctxSwitches = 0;
    std::uint64_t svfCtxBytes = 0;
    std::uint64_t scCtxBytes = 0;
    /// @}
};

/** Configuration for a traffic measurement. */
struct TrafficSetup
{
    /**
     * Registry short name, or — with slicePeriod > 0 — a
     * comma-separated program mix that is round-robined through the
     * shared structures (real inter-program displacement, the
     * generalized Table 4 experiment).
     */
    std::string workload;
    std::string input;                  //!< comma list allowed too
    std::uint64_t scale = 0;            //!< 0 = registry default
    std::uint64_t maxInsts = 5'000'000; //!< per-stream budget

    /** Capacity in bytes for both structures (2/4/8KB in Table 3). */
    std::uint64_t capacityBytes = 8192;

    /**
     * Committed instructions per time slice; 0 disables slicing.
     * With one stream this reproduces the classic flush-every-period
     * injection bit-identically (a flush is charged only when a slice
     * consumes its full period, exactly the old modulo rule); with a
     * mix, streams alternate through the same SVF/stack cache.
     */
    std::uint64_t slicePeriod = 0;

    /** SVF dirty-bit granularity (8 = paper). */
    unsigned svfDirtyGranule = 8;

    /** Ablations (see DESIGN.md section 5). */
    bool svfKillOnShrink = true;
    bool svfFillOnAlloc = false;

    /**
     * Canonical setup key over every field; type-tagged so traffic
     * setups never collide with cycle-model RunSetup keys. The
     * runner memoizes measurements under this key.
     */
    std::uint64_t key() const;
};

/** Replay the stream and measure both structures' traffic. */
TrafficResult measureTraffic(const TrafficSetup &setup);

} // namespace svf::harness

#endif // SVF_HARNESS_TRAFFIC_HH
