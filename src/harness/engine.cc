#include "harness/engine.hh"

#include <exception>

#include "base/logging.hh"
#include "harness/prof.hh"

namespace svf::harness
{

TicketState
JobTicket::state() const
{
    std::lock_guard<std::mutex> g(_m);
    return _state;
}

bool
JobTicket::finished() const
{
    TicketState s = state();
    return s == TicketState::Done || s == TicketState::Rejected ||
           s == TicketState::Failed;
}

void
JobTicket::wait() const
{
    std::unique_lock<std::mutex> l(_m);
    _cv.wait(l, [&] {
        return _state == TicketState::Done ||
               _state == TicketState::Rejected ||
               _state == TicketState::Failed;
    });
}

JobEngine::JobEngine(EngineOptions options)
    : opts(std::move(options)), cache(opts.cacheDir),
      tStart(std::chrono::steady_clock::now())
{
    nThreads = opts.threads ? opts.threads
                            : std::thread::hardware_concurrency();
    if (nThreads == 0)
        nThreads = 1;
    if (cache.enabled() && !opts.memoize) {
        warn("cache=DIR requires memoization; disk cache disabled");
        cache = ckpt::ResultCache("");
    }
    counts.threads = nThreads;
    if (!opts.manual) {
        workers.reserve(nThreads);
        for (unsigned t = 0; t < nThreads; ++t)
            workers.emplace_back([this] { workerLoop(); });
    }
}

JobEngine::~JobEngine()
{
    drain();
}

void
JobEngine::drain()
{
    {
        std::lock_guard<std::mutex> g(lock);
        if (stopping)
            return;
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &t : workers)
        t.join();
    workers.clear();
    eventCv.notify_all();
}

double
JobEngine::uptimeSeconds() const
{
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - tStart;
    return dt.count();
}

void
JobEngine::finishTicket(const TicketPtr &t, TicketState state,
                        TicketSource source, double wall,
                        const JobValue *value, const std::string &err)
{
    std::function<void(JobTicket &)> hook;
    {
        std::lock_guard<std::mutex> g(t->_m);
        t->_state = state;
        t->_source = source;
        t->_wallSeconds = wall;
        std::chrono::duration<double> q =
            std::chrono::steady_clock::now() - t->_tSubmit;
        t->_queueSeconds = q.count() - wall;
        if (t->_queueSeconds < 0.0)
            t->_queueSeconds = 0.0;
        if (value)
            t->_value = *value;
        t->_error = err;
        hook = std::move(t->_onDone);
        t->_onDone = nullptr;
    }
    t->_cv.notify_all();
    eventCv.notify_all();
    if (hook)
        hook(*t);
}

TicketPtr
JobEngine::submit(const JobSetup &setup, const std::string &client,
                  std::function<void(JobTicket &)> on_done)
{
    TicketPtr t = std::make_shared<JobTicket>();
    t->_key = setupKey(setup);
    t->_client = client;
    t->_onDone = std::move(on_done);
    t->_tSubmit = std::chrono::steady_clock::now();

    bool notify_worker = false;
    {
        std::unique_lock<std::mutex> l(lock);
        if (opts.memoize) {
            prof::ScopedPhase ph(prof::Phase::CacheLookup);
            auto hit = memo.find(t->_key);
            if (hit != memo.end()) {
                ++counts.memoHits;
                JobValue v = hit->second;
                l.unlock();
                finishTicket(t, TicketState::Done, TicketSource::Memo,
                             0.0, &v, "");
                return t;
            }
            ckpt::CachedValue from_disk;
            if (cache.load(t->_key, from_disk)) {
                auto [it, ins] =
                    memo.emplace(t->_key, std::move(from_disk));
                ++counts.diskHits;
                JobValue v = it->second;
                l.unlock();
                finishTicket(t, TicketState::Done, TicketSource::Disk,
                             0.0, &v, "");
                return t;
            }
            auto fl = inflight.find(t->_key);
            if (fl != inflight.end()) {
                ++counts.inflightAttached;
                if (fl->second->running) {
                    std::lock_guard<std::mutex> g(t->_m);
                    t->_state = TicketState::Running;
                }
                fl->second->attached.push_back(t);
                l.unlock();
                eventCv.notify_all();
                return t;
            }
        }
        if (opts.maxQueued && queuedCount >= opts.maxQueued) {
            ++counts.rejected;
            l.unlock();
            finishTicket(t, TicketState::Rejected,
                         TicketSource::Executed, 0.0, nullptr,
                         "queue full");
            return t;
        }

        ItemPtr item = std::make_shared<Item>();
        item->setup = setup;
        item->key = t->_key;
        item->client = client;
        item->primary = t;
        if (opts.memoize)
            inflight.emplace(t->_key, item);
        auto [q, fresh] = queues.try_emplace(client);
        if (fresh)
            rrClients.push_back(client);
        q->second.push_back(std::move(item));
        ++queuedCount;
        notify_worker = true;
    }
    if (notify_worker) {
        workCv.notify_one();
        eventCv.notify_all();
    }
    return t;
}

JobEngine::ItemPtr
JobEngine::popLocked()
{
    if (queuedCount == 0)
        return nullptr;
    for (std::size_t scanned = 0; scanned < rrClients.size();
         ++scanned) {
        std::deque<ItemPtr> &q = queues[rrClients[rrNext]];
        rrNext = (rrNext + 1) % rrClients.size();
        if (q.empty())
            continue;
        ItemPtr item = std::move(q.front());
        q.pop_front();
        --queuedCount;
        return item;
    }
    return nullptr;
}

void
JobEngine::execute(const ItemPtr &item)
{
    auto t0 = std::chrono::steady_clock::now();
    JobValue value;
    std::string err;
    bool ok = true;
    try {
        value = executeSetup(item->setup);
    } catch (const std::exception &e) {
        ok = false;
        err = e.what();
    }
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    std::vector<TicketPtr> waiters;
    {
        std::lock_guard<std::mutex> g(lock);
        if (ok) {
            ++counts.executed;
            counts.wallTotal += dt.count();
            if (opts.memoize)
                memo.emplace(item->key, value);
        }
        if (opts.memoize)
            inflight.erase(item->key);
        --counts.running;
        waiters = std::move(item->attached);
    }
    // Disk persistence and ticket completion happen unlocked: the
    // store is file IO and the completions run user callbacks.
    if (ok)
        cache.store(item->key, value);
    finishTicket(item->primary,
                 ok ? TicketState::Done : TicketState::Failed,
                 TicketSource::Executed, dt.count(),
                 ok ? &value : nullptr, err);
    for (const TicketPtr &w : waiters)
        finishTicket(w, ok ? TicketState::Done : TicketState::Failed,
                     TicketSource::Inflight, 0.0,
                     ok ? &value : nullptr, err);
}

/**
 * Caller holds the engine lock: `attached` may only be read or
 * grown under it (submit appends concurrently). Ticket mutexes nest
 * inside the engine lock; nothing ever takes them the other way.
 */
void
JobEngine::markRunningLocked(const ItemPtr &item)
{
    item->running = true;
    ++counts.running;
    {
        std::lock_guard<std::mutex> g(item->primary->_m);
        item->primary->_state = TicketState::Running;
    }
    for (const TicketPtr &w : item->attached) {
        std::lock_guard<std::mutex> g(w->_m);
        w->_state = TicketState::Running;
    }
    eventCv.notify_all();
}

void
JobEngine::workerLoop()
{
    while (true) {
        ItemPtr item;
        {
            std::unique_lock<std::mutex> l(lock);
            workCv.wait(l, [&] {
                return stopping || queuedCount > 0;
            });
            if (stopping)
                return;
            item = popLocked();
            if (!item)
                continue;
            markRunningLocked(item);
        }
        execute(item);
    }
}

bool
JobEngine::runOne()
{
    ItemPtr item;
    {
        std::lock_guard<std::mutex> g(lock);
        item = popLocked();
        if (!item)
            return false;
        markRunningLocked(item);
    }
    execute(item);
    return true;
}

bool
JobEngine::waitEvent(std::chrono::milliseconds timeout) const
{
    std::unique_lock<std::mutex> l(lock);
    return eventCv.wait_for(l, timeout) == std::cv_status::no_timeout;
}

EngineStats
JobEngine::stats() const
{
    std::lock_guard<std::mutex> g(lock);
    EngineStats s = counts;
    s.queueDepth = queuedCount;
    s.threads = nThreads;
    return s;
}

void
JobEngine::clearMemo()
{
    std::lock_guard<std::mutex> g(lock);
    memo.clear();
}

} // namespace svf::harness
