/**
 * @file
 * Plan-based parallel experiment engine.
 *
 * Every figure/table in the reproduction is a batch of independent
 * simulations: each job is a pure function of its setup. Instead of
 * hand-rolled serial loops, a bench binary now *constructs* an
 * ExperimentPlan — an ordered list of named jobs — and hands it to a
 * Runner, which executes the jobs over a thread pool and returns
 * results in submission order, so table assembly is independent of
 * completion order and byte-identical to a serial run.
 *
 * Three job kinds cover every consumer:
 *   - RunSetup:     the cycle model (harness/experiment.hh)
 *   - TrafficSetup: architectural traffic replay (harness/traffic.hh)
 *   - ProfileSetup: functional stack profiling (Figures 1-3)
 *
 * Jobs are memoized by their canonical setup key (RunSetup::key()
 * etc. — a hash of every field, machine configuration included), so
 * a plan that names the same baseline several times simulates it
 * once, and a Runner reused across plan phases carries its cache
 * forward. Finished jobs are reported through the
 * harness::reporting progress hook with per-job wall times.
 */

#ifndef SVF_HARNESS_RUNNER_HH
#define SVF_HARNESS_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/traffic.hh"
#include "workloads/calibration.hh"

namespace svf::harness
{

/** A functional stack-profiling job (Figures 1-3). */
struct ProfileSetup
{
    std::string workload;       //!< registry short name
    std::string input;          //!< input variant
    std::uint64_t scale = 0;    //!< 0 = the registry default scale
    std::uint64_t maxInsts = 1'000'000;
    unsigned depthSamples = 256;

    /** Canonical setup key (type-tagged; see base/hash.hh). */
    std::uint64_t key() const;
};

/** Any job setup the runner can execute. */
using JobSetup = std::variant<RunSetup, TrafficSetup, ProfileSetup>;

/** Any job result. */
using JobValue =
    std::variant<RunResult, TrafficResult, workloads::StackProfile>;

/** One named job of a plan. */
struct Job
{
    std::string name;
    JobSetup setup;
};

/** The outcome of one job, in submission order. */
struct JobOutcome
{
    std::string name;
    std::uint64_t key = 0;      //!< the setup's canonical key
    double wallSeconds = 0.0;   //!< 0 when served from the cache
    bool cached = false;        //!< deduplicated or memoized
    JobValue value;

    /** @name Typed access (fatal on kind mismatch) */
    /// @{
    const RunResult &run() const;
    const TrafficResult &traffic() const;
    const workloads::StackProfile &profile() const;
    /// @}
};

/**
 * An ordered list of named jobs. Build it up front, run it once:
 * the index returned by add() is the job's position in the result
 * vector.
 */
class ExperimentPlan
{
  public:
    /** Append a job; returns its submission index. */
    size_t add(std::string name, RunSetup setup);
    size_t add(std::string name, TrafficSetup setup);
    size_t add(std::string name, ProfileSetup setup);

    size_t size() const { return _jobs.size(); }
    bool empty() const { return _jobs.empty(); }
    const Job &job(size_t i) const { return _jobs.at(i); }
    const std::vector<Job> &jobs() const { return _jobs; }

    /**
     * Mutable job access: the bench layer applies plan-wide options
     * (sampling schedule, snapshot directory) to already-built plans.
     */
    Job &job(size_t i) { return _jobs.at(i); }

  private:
    std::vector<Job> _jobs;
};

/** Runner knobs (the bench layer maps jobs=/progress= onto these). */
struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Memoize results by setup key across and within plans. */
    bool memoize = true;

    /**
     * Directory of the disk-persistent result cache
     * (ckpt/result_cache.hh); empty disables it. Requires memoize.
     * Results land there as they finish, and later runs — in this
     * process or another — serve them back as cached without
     * simulating.
     */
    std::string cacheDir;

    /** Invoked per finished job (see harness/reporting.hh). */
    ProgressHook progress;
};

class JobEngine;

/**
 * Executes plans. Results are deterministic and submission-ordered
 * regardless of thread count or completion order; duplicate setups
 * within a plan are simulated once and fanned out.
 *
 * Since the engine extraction the Runner is a thin plan adapter over
 * harness::JobEngine (harness/engine.hh): it submits every job,
 * waits the tickets in submission order, and translates ticket
 * states back into the historical outcome/statistics contract. The
 * engine owns the worker pool, memo, disk cache and in-flight dedup;
 * it persists across run() calls, so a Runner reused across plan
 * phases still carries its cache forward.
 */
class Runner
{
  public:
    explicit Runner(RunnerOptions options = {});
    ~Runner();

    /** Execute every job of @p plan; results align with indices. */
    std::vector<JobOutcome> run(const ExperimentPlan &plan);

    /** Worker threads this runner will use for large plans. */
    unsigned threadCount() const;

    /**
     * @name Memo cache statistics (cumulative across run calls)
     *
     * memoHits() counts both memo-cache hits and in-plan duplicates
     * that attached to an in-flight execution — the historical
     * definition from when dedup was plan-scoped.
     */
    /// @{
    std::uint64_t executions() const;
    std::uint64_t memoHits() const;
    std::uint64_t diskHits() const;
    /// @}

    /**
     * Summed per-job wall time of every job actually executed
     * (cumulative across run calls; cached jobs contribute 0).
     * CPU-seconds of simulation, not elapsed time — with N worker
     * threads, elapsed time can be up to N× smaller.
     */
    double totalWallSeconds() const;

    /** Drop all memoized results. */
    void clearCache();

    /** The underlying submit/wait engine (serve layer, tests). */
    JobEngine &jobEngine() { return *eng; }

  private:
    RunnerOptions opts;
    std::unique_ptr<JobEngine> eng;
};

/** The canonical key of any job setup. */
std::uint64_t setupKey(const JobSetup &setup);

/** Execute one job setup synchronously (no cache, no threads). */
JobValue executeSetup(const JobSetup &setup);

} // namespace svf::harness

#endif // SVF_HARNESS_RUNNER_HH
