/**
 * @file
 * The one declaration site for every simulated run counter.
 */

#include "harness/counters.hh"

#include <deque>

#include "base/logging.hh"

namespace svf::harness
{

CounterDef::CounterDef(stats::Group *parent, std::string name,
                       std::string desc, std::string unit, Fold fold,
                       CoreField core_field, RunField run_field)
    : stats::Info(parent, std::move(name), std::move(desc)),
      _unit(std::move(unit)), _fold(fold), _coreField(core_field),
      _runField(run_field)
{
    svf_assert((core_field != nullptr) != (run_field != nullptr),
               "a counter has exactly one storage field");
}

std::uint64_t
CounterDef::get(const RunResult &r) const
{
    return _coreField ? r.core.*_coreField : r.*_runField;
}

std::uint64_t &
CounterDef::ref(RunResult &r) const
{
    return _coreField ? r.core.*_coreField : r.*_runField;
}

namespace
{

struct Registry
{
    stats::Group group{"run"};
    std::deque<CounterDef> defs;  // Info is non-copyable; stable addrs
    std::vector<const CounterDef *> order;

    void
    core(const char *name, const char *desc, const char *unit,
         Fold fold, CounterDef::CoreField f)
    {
        defs.emplace_back(&group, name, desc, unit, fold, f, nullptr);
        order.push_back(&defs.back());
    }

    void
    unit_(const char *name, const char *desc, const char *unit,
          CounterDef::RunField f)
    {
        defs.emplace_back(&group, name, desc, unit, Fold::Sum, nullptr,
                          f);
        order.push_back(&defs.back());
    }

    Registry()
    {
        using CS = uarch::CoreStats;
        using RR = RunResult;

        // CoreStats-backed counters, in the frozen JSON order.
        core("cycles", "core clock cycles simulated", "cycles",
             Fold::Max, &CS::cycles);
        core("committed", "instructions committed", "insts",
             Fold::Sum, &CS::committed);
        core("loads", "load instructions committed", "insts",
             Fold::Sum, &CS::loads);
        core("stores", "store instructions committed", "insts",
             Fold::Sum, &CS::stores);
        core("branches", "branch instructions committed", "insts",
             Fold::Sum, &CS::branches);
        core("mispredicts", "branch mispredictions", "events",
             Fold::Sum, &CS::mispredicts);
        core("squashes", "pipeline squashes (redirects and reroute "
             "replays)", "events", Fold::Sum, &CS::squashes);
        core("sp_interlocks", "dispatch interlocks on a speculative "
             "stack pointer", "events", Fold::Sum, &CS::spInterlocks);
        core("lsq_forwards", "loads forwarded from an older in-window "
             "store", "events", Fold::Sum, &CS::lsqForwards);
        core("disambig_scans", "load disambiguation lookups", "events",
             Fold::Sum, &CS::disambigScans);
        core("disambig_scan_steps", "older-store entries examined "
             "across all disambiguation scans", "events", Fold::Sum,
             &CS::disambigScanSteps);
        core("disambig_filter_hits", "disambiguation lookups answered "
             "by the granule index without a walk", "events",
             Fold::Sum, &CS::disambigFilterHits);
        core("reroute_checks", "morphed-load collision checks at "
             "store issue", "events", Fold::Sum, &CS::rerouteChecks);
        core("reroute_scan_steps", "morphed-load word entries examined "
             "by collision checks", "events", Fold::Sum,
             &CS::rerouteScanSteps);
        core("ctx_switches", "context switches performed", "events",
             Fold::Sum, &CS::ctxSwitches);
        core("svf_ctx_bytes", "bytes the SVF wrote back across context "
             "switches", "bytes", Fold::Sum, &CS::svfCtxBytes);
        core("sc_ctx_bytes", "bytes the stack cache wrote back across "
             "context switches", "bytes", Fold::Sum, &CS::scCtxBytes);
        core("dl1_ctx_lines", "DL1 lines displaced by context "
             "switches", "lines", Fold::Sum, &CS::dl1CtxLines);

        // Unit traffic counters collected after the run.
        unit_("svf_quads_in", "quadwords read into the SVF from "
              "memory", "quads", &RR::svfQuadsIn);
        unit_("svf_quads_out", "quadwords the SVF spilled to memory",
              "quads", &RR::svfQuadsOut);
        unit_("svf_fast_loads", "loads satisfied by SVF morphing",
              "insts", &RR::svfFastLoads);
        unit_("svf_fast_stores", "stores satisfied by SVF morphing",
              "insts", &RR::svfFastStores);
        unit_("svf_rerouted_loads", "loads rerouted to the SVF after "
              "address calculation", "insts", &RR::svfReroutedLoads);
        unit_("svf_rerouted_stores", "stores rerouted to the SVF after "
              "address calculation", "insts", &RR::svfReroutedStores);
        unit_("svf_window_misses", "stack references outside the SVF "
              "window", "events", &RR::svfWindowMisses);
        unit_("svf_demand_fills", "demand fills on first-touch morphed "
              "references", "events", &RR::svfDemandFills);
        unit_("svf_disable_episodes", "dynamic-disable throttle "
              "episodes", "events", &RR::svfDisableEpisodes);
        unit_("svf_refs_while_disabled", "stack references bypassed "
              "while the SVF was throttled", "events",
              &RR::svfRefsWhileDisabled);
        unit_("sc_quads_in", "quadwords the stack cache filled from "
              "memory", "quads", &RR::scQuadsIn);
        unit_("sc_quads_out", "quadwords the stack cache wrote back",
              "quads", &RR::scQuadsOut);
        unit_("sc_hits", "stack cache hits", "events", &RR::scHits);
        unit_("sc_misses", "stack cache misses", "events",
              &RR::scMisses);
        unit_("dl1_hits", "data L1 hits", "events", &RR::dl1Hits);
        unit_("dl1_misses", "data L1 misses", "events",
              &RR::dl1Misses);
        unit_("l2_hits", "unified L2 hits", "events", &RR::l2Hits);
        unit_("l2_misses", "unified L2 misses", "events",
              &RR::l2Misses);
    }
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

const std::vector<const CounterDef *> &
runCounters()
{
    return registry().order;
}

const stats::Group &
runCounterGroup()
{
    return registry().group;
}

const CounterDef *
findCounter(std::string_view name)
{
    for (const CounterDef *d : runCounters())
        if (d->name() == name)
            return d;
    return nullptr;
}

} // namespace svf::harness
