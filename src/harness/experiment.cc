#include "harness/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "base/config.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "ckpt/snapshot.hh"
#include "sim/emulator.hh"
#include "workloads/registry.hh"

namespace svf::harness
{

std::uint64_t
RunSetup::key() const
{
    std::uint64_t seed = hashInit('R');
    seed = hashCombine(seed, workload);
    seed = hashCombine(seed, input);
    seed = hashCombine(seed, scale);
    seed = hashCombine(seed, maxInsts);
    seed = sample.key(seed);
    seed = machine.key(seed);
    seed = hashCombine(seed, std::uint64_t(program != nullptr));
    if (program) {
        seed = hashCombine(seed, program->name);
        seed = hashCombine(seed, program->entry);
        for (const auto &sec : program->sections) {
            seed = hashCombine(seed, sec.base);
            seed = hashCombine(seed,
                               std::uint64_t(sec.bytes.size()));
            std::uint64_t h = 1469598103934665603ull;
            for (std::uint8_t b : sec.bytes) {
                h ^= b;
                h *= 1099511628211ull;
            }
            seed = hashCombine(seed, h);
        }
    }
    return seed;
}

namespace
{

/** The unit (SVF / stack cache / hierarchy) counters of RunResult. */
const std::vector<std::uint64_t RunResult::*> &
unitCounterFields()
{
    static const std::vector<std::uint64_t RunResult::*> fields = {
        &RunResult::svfQuadsIn,
        &RunResult::svfQuadsOut,
        &RunResult::svfFastLoads,
        &RunResult::svfFastStores,
        &RunResult::svfReroutedLoads,
        &RunResult::svfReroutedStores,
        &RunResult::svfWindowMisses,
        &RunResult::svfDemandFills,
        &RunResult::svfDisableEpisodes,
        &RunResult::svfRefsWhileDisabled,
        &RunResult::scQuadsIn,
        &RunResult::scQuadsOut,
        &RunResult::scHits,
        &RunResult::scMisses,
        &RunResult::dl1Hits,
        &RunResult::dl1Misses,
        &RunResult::l2Hits,
        &RunResult::l2Misses,
    };
    return fields;
}

/** Copy the cumulative unit counters out of @p core into @p r. */
void
collectUnitCounters(const uarch::OooCore &core, RunResult &r)
{
    const core::SvfUnit &svf = core.svfUnit();
    if (svf.enabled()) {
        r.svfQuadsIn = svf.svf().quadsIn();
        r.svfQuadsOut = svf.svf().quadsOut();
        r.svfFastLoads = svf.fastLoads();
        r.svfFastStores = svf.fastStores();
        r.svfReroutedLoads = svf.reroutedLoads();
        r.svfReroutedStores = svf.reroutedStores();
        r.svfWindowMisses = svf.windowMisses();
        r.svfDemandFills = svf.svf().demandFills();
        r.svfDisableEpisodes = svf.disableEpisodes();
        r.svfRefsWhileDisabled = svf.refsWhileDisabled();
    }
    if (const mem::StackCache *sc = core.stackCache()) {
        r.scQuadsIn = sc->quadsIn();
        r.scQuadsOut = sc->quadsOut();
        r.scHits = sc->hits();
        r.scMisses = sc->misses();
    }
    r.dl1Hits = core.hier().dl1().hits();
    r.dl1Misses = core.hier().dl1().misses();
    r.l2Hits = core.hier().l2().hits();
    r.l2Misses = core.hier().l2().misses();
}

/** acc += (after - before), field-wise over the unit counters. */
void
accumulateUnitDelta(RunResult &acc, const RunResult &after,
                    const RunResult &before)
{
    for (auto field : unitCounterFields())
        acc.*field += after.*field - before.*field;
}

/** after - before over every CoreStats counter. */
uarch::CoreStats
coreStatsDelta(const uarch::CoreStats &after,
               const uarch::CoreStats &before)
{
    uarch::CoreStats d;
    for (const ckpt::CoreCounter &c : ckpt::coreCounters())
        d.*(c.field) = after.*(c.field) - before.*(c.field);
    return d;
}

/** Golden-output comparison shared by the full and sampled paths. */
void
checkOutput(const RunSetup &setup,
            const workloads::WorkloadSpec *spec,
            std::uint64_t scale, const sim::Emulator &oracle,
            RunResult &r)
{
    r.completed = oracle.halted();
    r.output = oracle.output();
    if (r.completed && spec) {
        std::string expected = spec->expected(setup.input, scale);
        r.outputOk = oracle.output() == expected;
        if (!r.outputOk) {
            warn("workload %s.%s output mismatch (got '%s', want "
                 "'%s')", setup.workload.c_str(),
                 setup.input.c_str(), oracle.output().c_str(),
                 expected.c_str());
        }
    }
}

/** What one detailed measurement window produced. */
struct IntervalResult
{
    bool measured = false;      //!< window committed > 0 insts
    uarch::CoreStats delta;
    RunResult unitBefore;       //!< unit counters around the window
    RunResult unitAfter;
    std::uint64_t warmInsts = 0;
};

/** Shared tail of both sampled engines: the derived estimate. */
void
finalizeSampleEstimate(RunResult &r, const ckpt::CoreStatsAccum &accum,
                       const std::vector<double> &interval_ipc,
                       std::uint64_t total_insts,
                       std::uint64_t ff_insts,
                       std::uint64_t warm_insts)
{
    ckpt::SampleEstimate &est = r.sampled;
    est.intervals = accum.intervals();
    est.totalInsts = total_insts;
    est.ffInsts = ff_insts;
    est.warmupInsts = warm_insts;
    est.sampledInsts = r.core.committed;
    est.sampledCycles = r.core.cycles;
    double sum = 0.0, sumsq = 0.0;
    for (double v : interval_ipc) {
        sum += v;
        sumsq += v * v;
    }
    if (!interval_ipc.empty()) {
        double n = double(interval_ipc.size());
        est.ipcMean = sum / n;
        double var = sumsq / n - est.ipcMean * est.ipcMean;
        est.ipcStddev = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    if (est.ipcMean > 0.0) {
        est.estimatedCycles = static_cast<std::uint64_t>(
            double(est.totalInsts) / est.ipcMean);
    }
    est.counterVariance.reserve(ckpt::coreCounters().size());
    for (std::size_t c = 0; c < ckpt::coreCounters().size(); ++c)
        est.counterVariance.push_back(accum.variance(c));
}

/**
 * Warm-plan sampled run: one oracle and one core walk the whole
 * budget in order, functionally warming caches and predictors
 * through every fast-forward gap.
 *
 * This path is deliberately serial and ignores setup.pjobs. Warming
 * is a fold over the entire instruction stream — the cache state at
 * a window reflects everything since program start — so intervals
 * are not independent. Cutting the history down to a bounded lead-in
 * (to make windows parallelizable) measurably starves workloads
 * whose working set outlives one inter-window gap: vortex
 * under-estimates IPC by ~2x with one chunk of warm history. Plans
 * without ",warm" have no such coupling and take the parallel
 * engine below. Snapshots are not reused here either: restoring one
 * would skip the functional stream the warming needs.
 */
RunResult
runSampledWarmSerial(const RunSetup &setup, const isa::Program &prog,
                     const workloads::WorkloadSpec *spec,
                     std::uint64_t scale)
{
    sim::Emulator oracle(prog);
    uarch::OooCore core(setup.machine, oracle);

    ckpt::Sampler sampler(setup.sample, setup.maxInsts);
    ckpt::CoreStatsAccum accum;
    RunResult r;
    std::vector<double> interval_ipc;
    std::uint64_t ff_total = 0;
    std::uint64_t warm_total = 0;

    for (std::uint64_t i = 0;
         i < sampler.intervalCount() && !oracle.halted(); ++i) {
        ckpt::Sampler::Interval iv = sampler.interval(i);

        if (oracle.instCount() < iv.ffTarget)
            ff_total += ckpt::fastForward(oracle, iv.ffTarget, &core);
        if (oracle.halted())
            break;

        if (iv.warmup) {
            std::uint64_t before_warm = oracle.instCount();
            core.run(iv.warmup);
            warm_total += oracle.instCount() - before_warm;
        }

        uarch::CoreStats core_before = core.stats();
        RunResult unit_before;
        collectUnitCounters(core, unit_before);

        core.run(iv.detailed);

        uarch::CoreStats delta =
            coreStatsDelta(core.stats(), core_before);
        if (delta.committed == 0)
            continue;       // program ended during warmup
        RunResult unit_after;
        collectUnitCounters(core, unit_after);
        accumulateUnitDelta(r, unit_after, unit_before);
        accum.add(delta);
        interval_ipc.push_back(delta.ipc());
    }

    // Finish the run functionally so completion and program output
    // mean the same thing they do for a full run.
    ff_total += ckpt::fastForward(oracle, setup.maxInsts);

    r.core = accum.total();
    checkOutput(setup, spec, scale, oracle, r);
    finalizeSampleEstimate(r, accum, interval_ipc,
                           oracle.instCount(), ff_total, warm_total);
    return r;
}

/**
 * Cold-plan sampled run, in two phases.
 *
 * Phase 1 (serial): one purely functional pass over the whole budget
 * on the batched interpreter, capturing an in-memory snapshot at
 * every interval's detail point (and feeding the on-disk
 * SnapshotStore when ckptDir is set). The pass runs to the end of
 * the budget, so completion and program output mean the same thing
 * they do for a full run.
 *
 * Phase 2 (parallel over setup.pjobs workers): each interval is an
 * independent pure function — a fresh emulator + core restored from
 * that interval's snapshot — so workers never share mutable state.
 * Per-interval results land in order-indexed slots and are folded
 * in interval order, so every counter, IPC estimate and stddev is
 * byte-identical for any pjobs value.
 */
RunResult
runSampledParallel(const RunSetup &setup, const isa::Program &prog,
                   const workloads::WorkloadSpec *spec,
                   std::uint64_t scale)
{
    ckpt::Sampler sampler(setup.sample, setup.maxInsts);
    const std::uint64_t count = sampler.intervalCount();

    ckpt::SnapshotStore store(setup.ckptDir);
    const std::uint64_t phash = ckpt::programHash(prog);

    // --- Phase 1: functional snapshot production --------------------
    sim::Emulator producer(prog);
    std::vector<ckpt::Snapshot> snaps(count);
    std::vector<char> reached(count, 0);
    for (std::uint64_t i = 0; i < count && !producer.halted(); ++i) {
        ckpt::Sampler::Interval iv = sampler.interval(i);
        if (producer.instCount() < iv.ffTarget) {
            if (!(store.enabled() &&
                  store.tryRestore(phash, iv.ffTarget, producer))) {
                ckpt::fastForward(producer, iv.ffTarget);
                if (store.enabled() &&
                    producer.instCount() == iv.ffTarget) {
                    store.save(phash, producer);
                }
            }
        }
        if (producer.halted())
            break;
        snaps[i] = ckpt::Snapshot::capture(producer);
        snaps[i].workload = setup.workload;
        snaps[i].input = setup.input;
        snaps[i].scale = scale;
        reached[i] = 1;
    }
    ckpt::fastForward(producer, setup.maxInsts);

    // --- Phase 2: detailed windows, fanned out over pjobs -----------
    std::vector<IntervalResult> results(count);

    auto run_interval = [&](std::uint64_t i) {
        ckpt::Sampler::Interval iv = sampler.interval(i);
        sim::Emulator emu(prog);
        uarch::OooCore core(setup.machine, emu);
        snaps[i].restore(emu);

        IntervalResult &out = results[i];
        if (iv.warmup) {
            std::uint64_t before_warm = emu.instCount();
            core.run(iv.warmup);
            out.warmInsts = emu.instCount() - before_warm;
        }

        uarch::CoreStats core_before = core.stats();
        collectUnitCounters(core, out.unitBefore);
        core.run(iv.detailed);
        out.delta = coreStatsDelta(core.stats(), core_before);
        if (out.delta.committed == 0)
            return;         // program ended during warmup
        collectUnitCounters(core, out.unitAfter);
        out.measured = true;
    };

    std::uint64_t runnable = 0;
    for (std::uint64_t i = 0; i < count; ++i)
        runnable += reached[i] ? 1 : 0;
    unsigned workers = std::max(1u, setup.pjobs);
    if (runnable < workers)
        workers = runnable ? static_cast<unsigned>(runnable) : 1;

    if (workers <= 1) {
        for (std::uint64_t i = 0; i < count; ++i) {
            if (reached[i])
                run_interval(i);
        }
    } else {
        std::atomic<std::uint64_t> next{0};
        auto drain = [&]() {
            for (;;) {
                std::uint64_t i = next.fetch_add(1);
                if (i >= count)
                    break;
                if (reached[i])
                    run_interval(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(drain);
        for (std::thread &th : pool)
            th.join();
    }

    // --- Phase 3: fold in interval order ----------------------------
    ckpt::CoreStatsAccum accum;
    RunResult r;
    std::vector<double> interval_ipc;
    std::uint64_t warm_total = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const IntervalResult &res = results[i];
        warm_total += res.warmInsts;
        if (!res.measured)
            continue;
        accumulateUnitDelta(r, res.unitAfter, res.unitBefore);
        accum.add(res.delta);
        interval_ipc.push_back(res.delta.ipc());
    }

    r.core = accum.total();
    checkOutput(setup, spec, scale, producer, r);

    // Every instruction of the run was either measured in detail,
    // burned as detailed warmup, or covered functionally; counting
    // the last bucket by subtraction keeps the identity exact even
    // though the windows re-execute instructions phase 1 already
    // passed over.
    std::uint64_t covered = warm_total + accum.total().committed;
    std::uint64_t total = producer.instCount();
    finalizeSampleEstimate(r, accum, interval_ipc, total,
                           total > covered ? total - covered : 0,
                           warm_total);
    return r;
}

/**
 * Interval-sampled run: warm plans walk serially (warming folds over
 * the whole stream), cold plans fan their windows out over pjobs.
 */
RunResult
runSampledExperiment(const RunSetup &setup, const isa::Program &prog,
                     const workloads::WorkloadSpec *spec,
                     std::uint64_t scale)
{
    if (setup.sample.functionalWarm)
        return runSampledWarmSerial(setup, prog, spec, scale);
    return runSampledParallel(setup, prog, spec, scale);
}

} // anonymous namespace

RunResult
runExperiment(const RunSetup &setup)
{
    isa::Program prog;
    const workloads::WorkloadSpec *spec = nullptr;
    std::uint64_t scale = setup.scale;
    if (setup.program) {
        prog = *setup.program;
    } else {
        spec = &workloads::workload(setup.workload);
        if (!scale)
            scale = spec->defaultScale;
        prog = spec->build(setup.input, scale);
    }

    if (setup.sample.enabled())
        return runSampledExperiment(setup, prog, spec, scale);

    sim::Emulator oracle(prog);
    uarch::OooCore core(setup.machine, oracle);
    core.run(setup.maxInsts);

    RunResult r;
    r.core = core.stats();
    checkOutput(setup, spec, scale, oracle, r);
    collectUnitCounters(core, r);
    return r;
}

uarch::MachineConfig
machineFromConfig(const Config &cfg)
{
    uarch::MachineConfig m = baselineConfig(
        static_cast<unsigned>(cfg.getUint("width", 16)),
        static_cast<unsigned>(cfg.getUint("dl1_ports", 2)),
        cfg.getString("bpred", "perfect"));

    if (cfg.getBool("svf", false)) {
        applySvf(m,
                 static_cast<std::uint32_t>(
                     cfg.getUint("svf.kb", 8) * 1024 / 8),
                 static_cast<unsigned>(cfg.getUint("svf.ports", 2)));
        m.svf.noSquash = cfg.getBool("svf.no_squash", false);
        m.svf.morphSpRefs = cfg.getBool("svf.morph", true);
        m.svf.dynamicDisable = cfg.getBool("svf.dynamic", false);
    }
    if (cfg.getBool("stack_cache", false)) {
        applyStackCache(
            m, cfg.getUint("stack_cache.kb", 8) * 1024,
            static_cast<unsigned>(cfg.getUint("svf.ports", 2)));
    }
    m.noAddrCalcOp = cfg.getBool("no_addr_cal_op", false);
    m.contextSwitchPeriod = cfg.getUint("ctx_period", 0);
    std::string sched = cfg.getString("sched", "");
    if (!sched.empty())
        m.sched = uarch::parseSchedKind(sched);
    return m;
}

uarch::MachineConfig
baselineConfig(unsigned width, unsigned dl1_ports,
               const std::string &bpred)
{
    uarch::MachineConfig cfg = uarch::MachineConfig::wide(width);
    cfg.dl1Ports = dl1_ports;
    cfg.bpred = bpred;
    return cfg;
}

void
applySvf(uarch::MachineConfig &cfg, std::uint32_t entries,
         unsigned ports)
{
    cfg.svf.enabled = true;
    cfg.svf.svf.entries = entries;
    cfg.svf.svf.ports = ports;
    cfg.stackCacheEnabled = false;
}

void
applyInfiniteSvf(uarch::MachineConfig &cfg)
{
    applySvf(cfg, 1u << 20, 64);
    cfg.svf.morphAllStackRefs = true;
    cfg.svf.noSquash = true;
}

void
applyStackCache(uarch::MachineConfig &cfg, std::uint64_t size,
                unsigned ports)
{
    cfg.stackCacheEnabled = true;
    cfg.stackCache.size = size;
    cfg.stackCache.ports = ports;
    cfg.svf.enabled = false;
}

double
speedupPct(const RunResult &base, const RunResult &opt)
{
    if (base.core.cycles == 0 || opt.core.cycles == 0) {
        warn("speedupPct: degenerate cycle counts (base=%llu, "
             "opt=%llu); clamping speedup to 0",
             (unsigned long long)base.core.cycles,
             (unsigned long long)opt.core.cycles);
        return 0.0;
    }
    double sp = (static_cast<double>(base.core.cycles) /
                 static_cast<double>(opt.core.cycles) - 1.0) * 100.0;
    if (!std::isfinite(sp)) {
        warn("speedupPct: non-finite speedup; clamping to 0");
        return 0.0;
    }
    return sp;
}

double
hostMips(const RunResult &r, double wall_seconds)
{
    if (wall_seconds <= 0.0)
        return 0.0;
    // A sampled run covered totalInsts of the program (most of them
    // functionally) in this wall time; that is its effective rate.
    std::uint64_t insts = r.sampled.enabled() ? r.sampled.totalInsts
                                              : r.core.committed;
    double v = static_cast<double>(insts) / wall_seconds / 1e6;
    return std::isfinite(v) ? v : 0.0;
}

double
hostCyclesPerSec(const RunResult &r, double wall_seconds)
{
    if (wall_seconds <= 0.0)
        return 0.0;
    std::uint64_t cycles = r.sampled.enabled()
                               ? r.sampled.estimatedCycles
                               : r.core.cycles;
    double v = static_cast<double>(cycles) / wall_seconds;
    return std::isfinite(v) ? v : 0.0;
}

} // namespace svf::harness
