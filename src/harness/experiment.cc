#include "harness/experiment.hh"

#include <algorithm>
#include <condition_variable>
#include <cmath>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "base/config.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "ckpt/snapshot.hh"
#include "harness/counters.hh"
#include "harness/prof.hh"
#include "sim/emulator.hh"
#include "uarch/system.hh"
#include "workloads/registry.hh"

namespace svf::harness
{

std::uint64_t
RunSetup::key() const
{
    std::uint64_t seed = hashInit('R');
    seed = hashCombine(seed, workload);
    seed = hashCombine(seed, input);
    seed = hashCombine(seed, scale);
    seed = hashCombine(seed, maxInsts);
    seed = sample.key(seed);
    seed = machine.key(seed);
    seed = hashCombine(seed, std::uint64_t(program != nullptr));
    if (program) {
        seed = hashCombine(seed, program->name);
        seed = hashCombine(seed, program->entry);
        for (const auto &sec : program->sections) {
            seed = hashCombine(seed, sec.base);
            seed = hashCombine(seed,
                               std::uint64_t(sec.bytes.size()));
            std::uint64_t h = 1469598103934665603ull;
            for (std::uint8_t b : sec.bytes) {
                h ^= b;
                h *= 1099511628211ull;
            }
            seed = hashCombine(seed, h);
        }
    }
    // Folded only when a System drive mode is active so every
    // pre-existing single-core key (in-memory and on-disk caches)
    // stays valid.
    if (cores != 1 || slicePeriod != 0) {
        seed = hashCombine(seed, std::uint64_t(cores));
        seed = hashCombine(seed, slicePeriod);
        seed = hashCombine(seed, std::uint64_t(sysQuantum));
    }
    return seed;
}

namespace
{

/** Copy the cumulative unit counters out of @p core into @p r. */
void
collectUnitCounters(const uarch::OooCore &core, RunResult &r)
{
    const core::SvfUnit &svf = core.svfUnit();
    if (svf.enabled()) {
        r.svfQuadsIn = svf.svf().quadsIn();
        r.svfQuadsOut = svf.svf().quadsOut();
        r.svfFastLoads = svf.fastLoads();
        r.svfFastStores = svf.fastStores();
        r.svfReroutedLoads = svf.reroutedLoads();
        r.svfReroutedStores = svf.reroutedStores();
        r.svfWindowMisses = svf.windowMisses();
        r.svfDemandFills = svf.svf().demandFills();
        r.svfDisableEpisodes = svf.disableEpisodes();
        r.svfRefsWhileDisabled = svf.refsWhileDisabled();
    }
    if (const mem::StackCache *sc = core.stackCache()) {
        r.scQuadsIn = sc->quadsIn();
        r.scQuadsOut = sc->quadsOut();
        r.scHits = sc->hits();
        r.scMisses = sc->misses();
    }
    r.dl1Hits = core.hier().dl1().hits();
    r.dl1Misses = core.hier().dl1().misses();
    r.l2Hits = core.hier().l2().hits();
    r.l2Misses = core.hier().l2().misses();
}

/** acc += (after - before) over the registry's unit counters. */
void
accumulateUnitDelta(RunResult &acc, const RunResult &after,
                    const RunResult &before)
{
    for (const CounterDef *d : runCounters()) {
        if (!d->fromCoreStats())
            d->ref(acc) += d->get(after) - d->get(before);
    }
}

/** after - before over every CoreStats counter. */
uarch::CoreStats
coreStatsDelta(const uarch::CoreStats &after,
               const uarch::CoreStats &before)
{
    uarch::CoreStats d;
    for (const ckpt::CoreCounter &c : ckpt::coreCounters())
        d.*(c.field) = after.*(c.field) - before.*(c.field);
    return d;
}

/**
 * Run one measured detailed window of up to @p detailed committed
 * instructions on @p core and return its CoreStats delta — the
 * measured sample.
 *
 * Plain plans run the window in one shot (core.run, which drains
 * before returning) and the delta is measured around it, exactly as
 * the sampled engines always did.
 *
 * Adaptive plans (",adapt") advance the same window in small cycle
 * steps (beginRun/runUntil, no intermediate drains) and watch the
 * cumulative window IPC at every SamplePlan::AdaptSlices'th of the
 * budget: once its relative change stays below
 * SamplePlan::AdaptTolerance for AdaptStableSlices consecutive
 * checkpoints, the window is measured mid-flight — no drain bubble
 * biases a truncated sample — the unfetched remainder of the budget
 * is abandoned (truncateRun), and the in-flight tail drains outside
 * the measurement. Stable code regions settle after a few slices;
 * windows that straddle a phase change keep moving the cumulative
 * IPC and run out the full budget, in which case the drained full
 * window is returned, same shape as the plain estimator. Every
 * decision reads only this window's own simulated deltas, so an
 * interval's result is the same pure function of its snapshot it
 * always was — byte-identical for any pjobs value.
 */
uarch::CoreStats
runDetailedWindow(uarch::OooCore &core, const ckpt::SamplePlan &plan,
                  std::uint64_t detailed,
                  const uarch::CoreStats &before)
{
    if (!plan.adaptive || detailed < ckpt::SamplePlan::AdaptSlices) {
        core.run(detailed);
        return coreStatsDelta(core.stats(), before);
    }

    // Simulated-cycle granularity of the convergence checks; coarse
    // enough to stay off the hot path, fine enough that a checkpoint
    // lands near every slice boundary.
    constexpr Cycle kCheckCycles = 256;

    const std::uint64_t slice =
        detailed / ckpt::SamplePlan::AdaptSlices;
    std::uint64_t target = slice;
    double prev_ipc = 0.0;
    unsigned stable = 0;
    core.beginRun(detailed);
    while (true) {
        bool done = core.runUntil(core.cycle() + kCheckCycles);
        uarch::CoreStats d = coreStatsDelta(core.stats(), before);
        if (done)
            return d;       // full window (or halt), drained
        if (d.committed < target)
            continue;
        double ipc = d.ipc();
        if (prev_ipc > 0.0 &&
            std::abs(ipc - prev_ipc) <=
                ckpt::SamplePlan::AdaptTolerance * prev_ipc) {
            if (++stable >= ckpt::SamplePlan::AdaptStableSlices) {
                core.truncateRun();
                core.runUntil(uarch::OooCore::RunToCompletion);
                return d;   // measured before the drain tail
            }
        } else {
            stable = 0;
        }
        prev_ipc = ipc;
        target += slice;
    }
}

/** Golden-output comparison for one program. */
void
checkProgramOutput(const workloads::WorkloadSpec *spec,
                   const std::string &workload,
                   const std::string &input, std::uint64_t scale,
                   const sim::Emulator &oracle, RunResult &r)
{
    r.completed = oracle.halted();
    r.output = oracle.output();
    if (r.completed && spec) {
        std::string expected = spec->expected(input, scale);
        r.outputOk = oracle.output() == expected;
        if (!r.outputOk) {
            warn("workload %s.%s output mismatch (got '%s', want "
                 "'%s')", workload.c_str(), input.c_str(),
                 oracle.output().c_str(), expected.c_str());
        }
    }
}

/** Golden-output comparison shared by the full and sampled paths. */
void
checkOutput(const RunSetup &setup,
            const workloads::WorkloadSpec *spec,
            std::uint64_t scale, const sim::Emulator &oracle,
            RunResult &r)
{
    checkProgramOutput(spec, setup.workload, setup.input, scale,
                       oracle, r);
}

/** One multi-program setup, resolved: per-slot programs and specs. */
struct MultiSpec
{
    std::vector<std::string> workloads;
    std::vector<std::string> inputs;
    std::vector<std::string> labels;
    std::vector<std::uint64_t> scales;
    std::vector<const workloads::WorkloadSpec *> specs;
    std::vector<std::shared_ptr<const isa::Program>> progs;

    unsigned count() const
    {
        return static_cast<unsigned>(progs.size());
    }
};

/**
 * Expand the setup's comma lists into one program per slot.
 * cores=N needs lists of length 1 (replicated) or N; slice mode
 * takes as many programs as the longer list provides. An empty
 * input entry means the workload's default input.
 */
MultiSpec
resolvePrograms(const RunSetup &setup)
{
    MultiSpec ms;
    if (setup.program) {
        // Explicit-program mode: replicate across the cores.
        unsigned n = setup.cores > 1 ? setup.cores : 1;
        for (unsigned i = 0; i < n; ++i) {
            ms.workloads.push_back(setup.program->name);
            ms.inputs.emplace_back();
            ms.scales.push_back(setup.scale);
            ms.specs.push_back(nullptr);
            ms.progs.push_back(setup.program);
        }
    } else {
        std::vector<std::string> wl = split(setup.workload, ',');
        std::vector<std::string> in = split(setup.input, ',');
        std::size_t n = std::max(wl.size(), in.size());
        if (setup.cores > 1)
            n = setup.cores;
        auto pick = [n](const std::vector<std::string> &v,
                        std::size_t i, const char *what)
            -> const std::string & {
            if (v.size() != 1 && v.size() != n) {
                fatal("%s list has %zu entries; expected 1 or %zu",
                      what, v.size(), n);
            }
            return v[v.size() == 1 ? 0 : i];
        };
        for (std::size_t i = 0; i < n; ++i) {
            const std::string &w = pick(wl, i, "workload");
            if (w.empty())
                fatal("empty workload name in multi-program list");
            const workloads::WorkloadSpec &spec =
                workloads::workload(w);
            std::string input = pick(in, i, "input");
            if (input.empty())
                input = spec.inputs[0];
            std::uint64_t scale =
                setup.scale ? setup.scale : spec.defaultScale;
            ms.workloads.push_back(w);
            ms.inputs.push_back(std::move(input));
            ms.scales.push_back(scale);
            ms.specs.push_back(&spec);
            ms.progs.push_back(std::make_shared<isa::Program>(
                spec.build(ms.inputs.back(), scale)));
        }
    }

    // Group labels: the workload name, #slot-suffixed on repeats so
    // JSON consumers can tell a mix's copies apart.
    for (std::size_t i = 0; i < ms.workloads.size(); ++i) {
        std::size_t dup = 0;
        for (const std::string &w : ms.workloads)
            dup += w == ms.workloads[i] ? 1 : 0;
        ms.labels.push_back(
            dup > 1 ? ms.workloads[i] + "#" + std::to_string(i)
                    : ms.workloads[i]);
    }
    return ms;
}

/**
 * Fold one per-core group into the aggregate: cycles is the maximum
 * (the system ran as long as its slowest core), every other counter
 * sums, and the correctness flags conjoin.
 */
void
foldGroup(RunResult &agg, const RunResult &group)
{
    for (const CounterDef *d : runCounters()) {
        if (d->fold() == Fold::Max)
            d->ref(agg) = std::max(d->get(agg), d->get(group));
        else
            d->ref(agg) += d->get(group);
    }
    agg.completed = agg.completed && group.completed;
    agg.outputOk = agg.outputOk && group.outputOk;
}

/** What one detailed measurement window produced. */
struct IntervalResult
{
    bool measured = false;      //!< window committed > 0 insts
    uarch::CoreStats delta;
    RunResult unitBefore;       //!< unit counters around the window
    RunResult unitAfter;
    std::uint64_t warmInsts = 0;
    std::vector<trace::Event> events;   //!< this interval's trace
};

/** Shared tail of both sampled engines: the derived estimate. */
void
finalizeSampleEstimate(RunResult &r, const ckpt::CoreStatsAccum &accum,
                       const std::vector<double> &interval_ipc,
                       std::uint64_t total_insts,
                       std::uint64_t ff_insts,
                       std::uint64_t warm_insts)
{
    ckpt::SampleEstimate &est = r.sampled;
    est.intervals = accum.intervals();
    est.totalInsts = total_insts;
    est.ffInsts = ff_insts;
    est.warmupInsts = warm_insts;
    est.sampledInsts = r.core.committed;
    est.sampledCycles = r.core.cycles;
    double sum = 0.0, sumsq = 0.0;
    for (double v : interval_ipc) {
        sum += v;
        sumsq += v * v;
    }
    if (!interval_ipc.empty()) {
        double n = double(interval_ipc.size());
        est.ipcMean = sum / n;
        double var = sumsq / n - est.ipcMean * est.ipcMean;
        est.ipcStddev = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    if (est.ipcMean > 0.0) {
        est.estimatedCycles = static_cast<std::uint64_t>(
            double(est.totalInsts) / est.ipcMean);
    }
    est.counterVariance.reserve(ckpt::coreCounters().size());
    for (std::size_t c = 0; c < ckpt::coreCounters().size(); ++c)
        est.counterVariance.push_back(accum.variance(c));
}

/**
 * Warm-plan sampled run: one oracle and one core walk the whole
 * budget in order, functionally warming caches and predictors
 * through every fast-forward gap.
 *
 * This path is deliberately serial and ignores setup.pjobs. Warming
 * is a fold over the entire instruction stream — the cache state at
 * a window reflects everything since program start — so intervals
 * are not independent. Cutting the history down to a bounded lead-in
 * (to make windows parallelizable) measurably starves workloads
 * whose working set outlives one inter-window gap: vortex
 * under-estimates IPC by ~2x with one chunk of warm history. Plans
 * without ",warm" have no such coupling and take the parallel
 * engine below. Snapshots are not reused here either: restoring one
 * would skip the functional stream the warming needs.
 */
RunResult
runSampledWarmSerial(const RunSetup &setup, const isa::Program &prog,
                     const workloads::WorkloadSpec *spec,
                     std::uint64_t scale)
{
    sim::Emulator oracle(prog);
    uarch::OooCore core(setup.machine, oracle);
    trace::CoreTracer tracer(setup.trace, 0);
    if (setup.trace.enabled())
        core.attachTracer(&tracer);

    ckpt::Sampler sampler(setup.sample, setup.maxInsts);
    ckpt::CoreStatsAccum accum;
    RunResult r;
    std::vector<double> interval_ipc;
    std::uint64_t ff_total = 0;
    std::uint64_t warm_total = 0;

    for (std::uint64_t i = 0;
         i < sampler.intervalCount() && !oracle.halted(); ++i) {
        ckpt::Sampler::Interval iv = sampler.interval(i);

        if (oracle.instCount() < iv.ffTarget) {
            prof::ScopedPhase ph(prof::Phase::FastForward);
            ff_total += ckpt::fastForward(oracle, iv.ffTarget, &core);
        }
        if (oracle.halted())
            break;

        prof::ScopedPhase ph(prof::Phase::DetailedWindow);
        if (iv.warmup) {
            std::uint64_t before_warm = oracle.instCount();
            core.run(iv.warmup);
            warm_total += oracle.instCount() - before_warm;
        }

        uarch::CoreStats core_before = core.stats();
        RunResult unit_before;
        collectUnitCounters(core, unit_before);

        uarch::CoreStats delta =
            runDetailedWindow(core, setup.sample, iv.detailed,
                              core_before);
        if (delta.committed == 0)
            continue;       // program ended during warmup
        RunResult unit_after;
        collectUnitCounters(core, unit_after);
        accumulateUnitDelta(r, unit_after, unit_before);
        accum.add(delta);
        interval_ipc.push_back(delta.ipc());
    }

    // Finish the run functionally so completion and program output
    // mean the same thing they do for a full run.
    {
        prof::ScopedPhase ph(prof::Phase::FastForward);
        ff_total += ckpt::fastForward(oracle, setup.maxInsts);
    }

    r.core = accum.total();
    checkOutput(setup, spec, scale, oracle, r);
    finalizeSampleEstimate(r, accum, interval_ipc,
                           oracle.instCount(), ff_total, warm_total);
    if (setup.trace.enabled())
        trace::writeAll(setup.trace, tracer.take());
    return r;
}

/**
 * A small bounded MPMC queue of interval indices: the snapshot
 * producer publishes, the detailed workers consume. The bound
 * throttles the producer when every worker is busy, capping how many
 * not-yet-consumed snapshots sit in flight; close() wakes everyone
 * once production ends. All snaps[] writes made before a push() are
 * visible to the popper (the queue mutex orders them).
 */
class IntervalQueue
{
  public:
    explicit IntervalQueue(std::size_t cap) : capacity(cap) {}

    void push(std::uint64_t i)
    {
        prof::ScopedPhase ph(prof::Phase::QueueWait);
        std::unique_lock<std::mutex> lock(mu);
        notFull.wait(lock, [this] {
            return q.size() < capacity;
        });
        q.push_back(i);
        prof::Profiler::instance().noteQueueDepth(q.size());
        notEmpty.notify_one();
    }

    /** @retval false queue closed and drained — worker is done. */
    bool pop(std::uint64_t &i)
    {
        prof::ScopedPhase ph(prof::Phase::QueueWait);
        std::unique_lock<std::mutex> lock(mu);
        notEmpty.wait(lock, [this] {
            return !q.empty() || closed;
        });
        if (q.empty())
            return false;
        i = q.front();
        q.pop_front();
        notFull.notify_one();
        return true;
    }

    void close()
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
        notEmpty.notify_all();
    }

  private:
    std::mutex mu;
    std::condition_variable notEmpty, notFull;
    std::deque<std::uint64_t> q;
    std::size_t capacity;
    bool closed = false;
};

/**
 * Cold-plan ("K,W,D") and parallel-warm ("K,W,D,pwarm") sampled run
 * as a producer/consumer pipeline — there is no phase barrier
 * between snapshot production and detailed simulation.
 *
 * The producer (the calling thread) makes one purely functional pass
 * over the whole budget on the batched interpreter, capturing an
 * in-memory snapshot at every interval's detail point (and feeding
 * the on-disk SnapshotStore when ckptDir is set). Capture freezes
 * the producer's pages copy-on-write, so a snapshot costs only the
 * pages the producer dirtied since the previous one. Each capture
 * publishes interval indices to a bounded queue, so detailed workers
 * start consuming while the pass is still running; the pass then
 * runs to the end of the budget, so completion and program output
 * mean the same thing they do for a full run.
 *
 * pjobs consumer workers each run one interval at a time into its
 * order-indexed result slot. Every interval is an independent pure
 * function of its snapshot(s) — a fresh emulator + core, restored
 * O(1) by adopting frozen pages — so workers never share mutable
 * state, and folding in interval order keeps every counter, IPC
 * estimate and stddev byte-identical for any pjobs value.
 *
 * Plan variants only differ in what a worker replays before its
 * measured window:
 *  - cold: restore snaps[i] at the detail point, optional detailed
 *    warmup W, measure D. Interval i is published once snaps[i]
 *    exists.
 *  - pwarm: restore snaps[i-1] (interval 0 starts from program
 *    start), then functionally warm caches and predictors while
 *    re-executing forward to the detail point — one chunk of warm
 *    history per interval instead of ",warm"'s whole-stream fold.
 *    Interval i is published once snaps[i-1] exists.
 */
RunResult
runSampledParallel(const RunSetup &setup, const isa::Program &prog,
                   const workloads::WorkloadSpec *spec,
                   std::uint64_t scale)
{
    ckpt::Sampler sampler(setup.sample, setup.maxInsts);
    const std::uint64_t count = sampler.intervalCount();
    const bool pwarm = setup.sample.parallelWarm;

    ckpt::SnapshotStore store(setup.ckptDir);
    const std::uint64_t phash = ckpt::programHash(prog);

    std::vector<ckpt::Snapshot> snaps(count);
    std::vector<IntervalResult> results(count);

    auto run_interval = [&](std::uint64_t i) {
        ckpt::Sampler::Interval iv = sampler.interval(i);
        sim::Emulator emu(prog);
        uarch::OooCore core(setup.machine, emu);
        // Stream id = interval index, so a merged sampled trace keeps
        // the windows apart even though their cycle counters restart.
        trace::CoreTracer tracer(setup.trace,
                                 static_cast<std::uint32_t>(i));
        if (setup.trace.enabled())
            core.attachTracer(&tracer);
        if (pwarm) {
            // Bounded warm history: replay this chunk functionally
            // from the previous interval's snapshot, warming the
            // caches and branch predictor along the way.
            prof::ScopedPhase ph(prof::Phase::WarmReplay);
            if (i > 0)
                snaps[i - 1].restore(emu);
            ckpt::fastForward(emu, iv.ffTarget, &core);
        } else {
            prof::ScopedPhase ph(prof::Phase::SnapshotRestore);
            snaps[i].restore(emu);
        }

        prof::ScopedPhase ph(prof::Phase::DetailedWindow);
        IntervalResult &out = results[i];
        if (iv.warmup) {
            std::uint64_t before_warm = emu.instCount();
            core.run(iv.warmup);
            out.warmInsts = emu.instCount() - before_warm;
        }

        uarch::CoreStats core_before = core.stats();
        collectUnitCounters(core, out.unitBefore);
        out.delta = runDetailedWindow(core, setup.sample,
                                      iv.detailed, core_before);
        if (setup.trace.enabled())
            out.events = tracer.take();
        if (out.delta.committed == 0)
            return;         // program ended during warmup
        collectUnitCounters(core, out.unitAfter);
        out.measured = true;
    };

    const unsigned workers = std::max(1u, setup.pjobs);
    IntervalQueue queue(std::max<std::size_t>(8, 2 * workers));

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
        pool.emplace_back([&]() {
            std::uint64_t i;
            while (queue.pop(i))
                run_interval(i);
        });
    }

    // --- Producer: functional pass, publishing as it goes -----------
    sim::Emulator producer(prog);
    if (pwarm && count > 0)
        queue.push(0);      // interval 0 warms from program start
    for (std::uint64_t i = 0; i < count && !producer.halted(); ++i) {
        ckpt::Sampler::Interval iv = sampler.interval(i);
        if (producer.instCount() < iv.ffTarget) {
            prof::ScopedPhase ph(prof::Phase::FastForward);
            if (!(store.enabled() &&
                  store.tryRestore(phash, iv.ffTarget, producer))) {
                ckpt::fastForward(producer, iv.ffTarget);
                if (store.enabled() &&
                    producer.instCount() == iv.ffTarget) {
                    store.save(phash, producer);
                }
            }
        }
        if (producer.halted())
            break;
        {
            prof::ScopedPhase ph(prof::Phase::SnapshotCapture);
            snaps[i] = ckpt::Snapshot::capture(producer);
        }
        snaps[i].workload = setup.workload;
        snaps[i].input = setup.input;
        snaps[i].scale = scale;
        // snaps[i] unlocks interval i (cold: its restore point) or
        // interval i+1 (pwarm: the start of its warm replay).
        if (!pwarm)
            queue.push(i);
        else if (i + 1 < count)
            queue.push(i + 1);
    }
    {
        prof::ScopedPhase ph(prof::Phase::FastForward);
        ckpt::fastForward(producer, setup.maxInsts);
    }
    queue.close();
    for (std::thread &th : pool)
        th.join();

    // --- Fold in interval order -------------------------------------
    ckpt::CoreStatsAccum accum;
    RunResult r;
    std::vector<double> interval_ipc;
    std::vector<trace::Event> all_events;
    std::uint64_t warm_total = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        IntervalResult &res = results[i];
        warm_total += res.warmInsts;
        // Merging in interval order keeps the trace file independent
        // of which worker finished first, like every other counter.
        if (!res.events.empty()) {
            all_events.insert(all_events.end(), res.events.begin(),
                              res.events.end());
            res.events.clear();
        }
        if (!res.measured)
            continue;
        accumulateUnitDelta(r, res.unitAfter, res.unitBefore);
        accum.add(res.delta);
        interval_ipc.push_back(res.delta.ipc());
    }
    if (setup.trace.enabled())
        trace::writeAll(setup.trace, all_events);

    r.core = accum.total();
    checkOutput(setup, spec, scale, producer, r);

    // Every instruction of the run was either measured in detail,
    // burned as detailed warmup, or covered functionally; counting
    // the last bucket by subtraction keeps the identity exact even
    // though the windows re-execute instructions phase 1 already
    // passed over.
    std::uint64_t covered = warm_total + accum.total().committed;
    std::uint64_t total = producer.instCount();
    finalizeSampleEstimate(r, accum, interval_ipc, total,
                           total > covered ? total - covered : 0,
                           warm_total);
    return r;
}

/**
 * Interval-sampled run: ",warm" plans walk serially (whole-stream
 * warming folds over the entire budget), cold and ",pwarm" plans
 * take the pipelined engine and fan out over pjobs.
 */
RunResult
runSampledExperiment(const RunSetup &setup, const isa::Program &prog,
                     const workloads::WorkloadSpec *spec,
                     std::uint64_t scale)
{
    if (setup.sample.functionalWarm)
        return runSampledWarmSerial(setup, prog, spec, scale);
    return runSampledParallel(setup, prog, spec, scale);
}

/** The System shape a RunSetup describes. */
uarch::SystemConfig
systemConfig(const RunSetup &setup)
{
    uarch::SystemConfig sc;
    sc.cores = setup.cores;
    sc.slicePeriod = setup.slicePeriod;
    sc.quantum = setup.sysQuantum;
    sc.threads = setup.pjobs;    // host-side only, like sampling
    sc.machine = setup.machine;
    return sc;
}

/**
 * Unit-counter snapshot of one core slot; in shared-L2 mode the L2
 * figures are what this core observed at its port (the private L2
 * the hierarchy still owns is bypassed and stays zero).
 */
RunResult
unitSnapshotOf(const uarch::System &sys, unsigned c)
{
    RunResult u;
    collectUnitCounters(sys.core(c), u);
    if (const mem::SharedL2 *l2 = sys.sharedL2()) {
        u.l2Hits = l2->portStats(c).hits;
        u.l2Misses = l2->portStats(c).misses;
    }
    return u;
}

/** cores=N: one program per core over the shared L2. */
RunResult
runMultiCoreExperiment(const RunSetup &setup, const MultiSpec &ms)
{
    uarch::System sys(systemConfig(setup), ms.progs);
    sys.run(setup.maxInsts);

    RunResult agg;
    agg.completed = true;
    agg.outputOk = true;
    for (unsigned i = 0; i < sys.cores(); ++i) {
        RunResult g = unitSnapshotOf(sys, i);
        g.label = ms.labels[i];
        g.core = sys.core(i).stats();
        checkProgramOutput(ms.specs[i], ms.workloads[i],
                           ms.inputs[i], ms.scales[i], sys.emu(i),
                           g);
        foldGroup(agg, g);
        agg.perCore.push_back(std::move(g));
    }
    return agg;
}

/** slice=Q: round-robin the programs on one core. */
RunResult
runSliceExperiment(const RunSetup &setup, const MultiSpec &ms)
{
    uarch::System sys(systemConfig(setup), ms.progs);
    const unsigned n = sys.programs();

    // Attribute each slice's counter deltas — including the switch
    // flush at its end — to the program that ran it.
    std::vector<RunResult> groups(n);
    uarch::CoreStats core_before;
    RunResult unit_before;
    sys.onSliceBegin = [&](unsigned) {
        core_before = sys.core(0).stats();
        unit_before = unitSnapshotOf(sys, 0);
    };
    sys.onSliceEnd = [&](unsigned p) {
        uarch::CoreStats delta =
            coreStatsDelta(sys.core(0).stats(), core_before);
        for (const ckpt::CoreCounter &c : ckpt::coreCounters())
            groups[p].core.*(c.field) += delta.*(c.field);
        accumulateUnitDelta(groups[p], unitSnapshotOf(sys, 0),
                            unit_before);
    };
    sys.run(setup.maxInsts);

    // Slices partition the core's run exactly, so the whole-run
    // totals are the top-level counters and the groups sum to them.
    RunResult agg;
    agg.core = sys.core(0).stats();
    collectUnitCounters(sys.core(0), agg);
    agg.completed = true;
    agg.outputOk = true;
    for (unsigned p = 0; p < n; ++p) {
        RunResult &g = groups[p];
        g.label = ms.labels[p];
        checkProgramOutput(ms.specs[p], ms.workloads[p],
                           ms.inputs[p], ms.scales[p], sys.emu(p),
                           g);
        agg.completed = agg.completed && g.completed;
        agg.outputOk = agg.outputOk && g.outputOk;
    }
    agg.perCore = std::move(groups);
    return agg;
}

/**
 * Sampled multi-core run. Phase 1 advances one functional producer
 * per core and captures a multi-core snapshot at every detail
 * point; phase 2 walks the intervals serially, each one restoring a
 * fresh System (whose cores fan over pjobs host threads inside the
 * epoch loop). Per-interval deltas aggregate across cores — cycles
 * as the maximum, the rest summed — before feeding the estimator,
 * so the estimate describes system throughput. Per-core groups are
 * not produced on this path. The on-disk SnapshotStore is keyed for
 * single-program states and stays out of it.
 */
RunResult
runSampledMultiCore(const RunSetup &setup, const MultiSpec &ms)
{
    if (setup.sample.functionalWarm || setup.sample.parallelWarm) {
        fatal("sample=...,%s is not supported with cores>1 "
              "(warming replays one program's stream)",
              setup.sample.functionalWarm ? "warm" : "pwarm");
    }

    ckpt::Sampler sampler(setup.sample, setup.maxInsts);
    const std::uint64_t count = sampler.intervalCount();
    const unsigned n = ms.count();

    // --- Phase 1: functional snapshot production --------------------
    std::vector<std::unique_ptr<sim::Emulator>> producers;
    for (unsigned c = 0; c < n; ++c) {
        producers.push_back(
            std::make_unique<sim::Emulator>(*ms.progs[c]));
    }

    std::vector<ckpt::Snapshot> snaps(count);
    std::vector<char> reached(count, 0);
    for (std::uint64_t i = 0; i < count; ++i) {
        ckpt::Sampler::Interval iv = sampler.interval(i);
        bool any_live = false;
        for (auto &p : producers) {
            if (p->instCount() < iv.ffTarget)
                ckpt::fastForward(*p, iv.ffTarget);
            any_live = any_live || !p->halted();
        }
        if (!any_live)
            break;
        std::vector<const sim::Emulator *> views;
        for (auto &p : producers)
            views.push_back(p.get());
        snaps[i] = ckpt::Snapshot::captureMulti(views);
        snaps[i].workload = ms.workloads[0];
        snaps[i].input = ms.inputs[0];
        snaps[i].scale = ms.scales[0];
        for (unsigned c = 1; c < n; ++c) {
            ckpt::Snapshot::CoreImage &ci =
                snaps[i].extraCores[c - 1];
            ci.workload = ms.workloads[c];
            ci.input = ms.inputs[c];
            ci.scale = ms.scales[c];
        }
        reached[i] = 1;
    }
    for (auto &p : producers)
        ckpt::fastForward(*p, setup.maxInsts);

    // --- Phase 2: detailed windows, serial over intervals -----------
    ckpt::CoreStatsAccum accum;
    RunResult r;
    std::vector<double> interval_ipc;
    std::uint64_t warm_total = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!reached[i])
            continue;
        ckpt::Sampler::Interval iv = sampler.interval(i);
        uarch::System sys(systemConfig(setup), ms.progs);
        std::vector<sim::Emulator *> emus;
        for (unsigned c = 0; c < n; ++c)
            emus.push_back(&sys.emu(c));
        snaps[i].restoreMulti(emus);

        if (iv.warmup) {
            std::uint64_t before_warm = 0, after_warm = 0;
            for (unsigned c = 0; c < n; ++c)
                before_warm += sys.emu(c).instCount();
            sys.run(iv.warmup);
            for (unsigned c = 0; c < n; ++c)
                after_warm += sys.emu(c).instCount();
            warm_total += after_warm - before_warm;
        }

        std::vector<uarch::CoreStats> core_before(n);
        std::vector<RunResult> unit_before(n);
        for (unsigned c = 0; c < n; ++c) {
            core_before[c] = sys.core(c).stats();
            unit_before[c] = unitSnapshotOf(sys, c);
        }

        sys.run(iv.detailed);

        uarch::CoreStats agg_delta;
        for (unsigned c = 0; c < n; ++c) {
            uarch::CoreStats d = coreStatsDelta(
                sys.core(c).stats(), core_before[c]);
            agg_delta.cycles = std::max(agg_delta.cycles, d.cycles);
            for (const ckpt::CoreCounter &cc : ckpt::coreCounters())
                if (cc.field != &uarch::CoreStats::cycles)
                    agg_delta.*(cc.field) += d.*(cc.field);
        }
        if (agg_delta.committed == 0)
            continue;       // every program ended during warmup
        for (unsigned c = 0; c < n; ++c) {
            accumulateUnitDelta(r, unitSnapshotOf(sys, c),
                                unit_before[c]);
        }
        accum.add(agg_delta);
        interval_ipc.push_back(agg_delta.ipc());
    }

    // --- Phase 3: fold and finalize ---------------------------------
    r.core = accum.total();
    r.completed = true;
    r.outputOk = true;
    std::uint64_t total = 0;
    for (unsigned c = 0; c < n; ++c) {
        RunResult g;
        checkProgramOutput(ms.specs[c], ms.workloads[c],
                           ms.inputs[c], ms.scales[c],
                           *producers[c], g);
        r.completed = r.completed && g.completed;
        r.outputOk = r.outputOk && g.outputOk;
        total += producers[c]->instCount();
    }
    std::uint64_t covered = warm_total + accum.total().committed;
    finalizeSampleEstimate(r, accum, interval_ipc, total,
                           total > covered ? total - covered : 0,
                           warm_total);
    return r;
}

} // anonymous namespace

RunResult
runExperiment(const RunSetup &setup)
{
    if (setup.cores < 1)
        fatal("cores=0 is meaningless (need at least one core)");
    if (setup.cores > 1 && setup.slicePeriod) {
        fatal("cores=%u with slice=%llu: time-slicing shares one "
              "core by definition", setup.cores,
              (unsigned long long)setup.slicePeriod);
    }
    if (setup.trace.enabled() &&
        (setup.cores > 1 || setup.slicePeriod)) {
        fatal("trace= is only supported for single-program runs "
              "(cores=%u, slice=%llu would interleave streams); "
              "drop cores=/slice= or trace=", setup.cores,
              (unsigned long long)setup.slicePeriod);
    }

    if (setup.cores > 1 || setup.slicePeriod) {
        MultiSpec ms = resolvePrograms(setup);
        if (setup.sample.enabled()) {
            if (setup.slicePeriod) {
                fatal("sample= cannot be combined with slice= "
                      "(a slice schedule is not an independent-"
                      "interval stream)");
            }
            return runSampledMultiCore(setup, ms);
        }
        return setup.slicePeriod ? runSliceExperiment(setup, ms)
                                 : runMultiCoreExperiment(setup, ms);
    }

    if (!setup.program &&
        setup.workload.find(',') != std::string::npos) {
        fatal("workload list '%s' needs cores=N or slice=Q",
              setup.workload.c_str());
    }

    isa::Program prog;
    const workloads::WorkloadSpec *spec = nullptr;
    std::uint64_t scale = setup.scale;
    if (setup.program) {
        prog = *setup.program;
    } else {
        spec = &workloads::workload(setup.workload);
        if (!scale)
            scale = spec->defaultScale;
        prog = spec->build(setup.input, scale);
    }

    if (setup.sample.enabled())
        return runSampledExperiment(setup, prog, spec, scale);

    // The single-core full run drives the same componentized System
    // as the multi-core modes; a one-slot System degenerates to the
    // legacy loop verbatim (pinned bit-identical on every workload
    // by system_equiv_test).
    std::shared_ptr<const isa::Program> program =
        setup.program
            ? setup.program
            : std::make_shared<isa::Program>(std::move(prog));
    std::vector<std::shared_ptr<const isa::Program>> progs{program};
    uarch::System sys(systemConfig(setup), std::move(progs));
    trace::CoreTracer tracer(setup.trace, 0);
    if (setup.trace.enabled())
        sys.core(0).attachTracer(&tracer);
    {
        prof::ScopedPhase ph(prof::Phase::DetailedWindow);
        sys.run(setup.maxInsts);
    }

    RunResult r;
    r.core = sys.core(0).stats();
    checkOutput(setup, spec, scale, sys.emu(0), r);
    collectUnitCounters(sys.core(0), r);
    if (setup.trace.enabled())
        trace::writeAll(setup.trace, tracer.take());
    return r;
}

void
systemFromConfig(const Config &cfg, RunSetup &setup)
{
    // Reading the keys here also registers them with the config's
    // touched set, so warnUnused() can suggest cores=/slice=/
    // quantum= for near-miss spellings.
    setup.cores =
        static_cast<unsigned>(cfg.getUint("cores", setup.cores));
    setup.slicePeriod = cfg.getUint("slice", setup.slicePeriod);
    setup.sysQuantum =
        static_cast<Cycle>(cfg.getUint("quantum", setup.sysQuantum));
}

uarch::MachineConfig
machineFromConfig(const Config &cfg)
{
    uarch::MachineConfig m = baselineConfig(
        static_cast<unsigned>(cfg.getUint("width", 16)),
        static_cast<unsigned>(cfg.getUint("dl1_ports", 2)),
        cfg.getString("bpred", "perfect"));

    if (cfg.getBool("svf", false)) {
        applySvf(m,
                 static_cast<std::uint32_t>(
                     cfg.getUint("svf.kb", 8) * 1024 / 8),
                 static_cast<unsigned>(cfg.getUint("svf.ports", 2)));
        m.svf.noSquash = cfg.getBool("svf.no_squash", false);
        m.svf.morphSpRefs = cfg.getBool("svf.morph", true);
        m.svf.dynamicDisable = cfg.getBool("svf.dynamic", false);
    }
    if (cfg.getBool("stack_cache", false)) {
        applyStackCache(
            m, cfg.getUint("stack_cache.kb", 8) * 1024,
            static_cast<unsigned>(cfg.getUint("svf.ports", 2)));
    }
    m.noAddrCalcOp = cfg.getBool("no_addr_cal_op", false);
    m.contextSwitchPeriod = cfg.getUint("ctx_period", 0);
    std::string sched = cfg.getString("sched", "");
    if (!sched.empty())
        m.sched = uarch::parseSchedKind(sched);
    std::string disambig = cfg.getString("disambig", "");
    if (!disambig.empty())
        m.disambig = uarch::parseDisambigKind(disambig);
    return m;
}

uarch::MachineConfig
baselineConfig(unsigned width, unsigned dl1_ports,
               const std::string &bpred)
{
    uarch::MachineConfig cfg = uarch::MachineConfig::wide(width);
    cfg.dl1Ports = dl1_ports;
    cfg.bpred = bpred;
    return cfg;
}

void
applySvf(uarch::MachineConfig &cfg, std::uint32_t entries,
         unsigned ports)
{
    cfg.svf.enabled = true;
    cfg.svf.svf.entries = entries;
    cfg.svf.svf.ports = ports;
    cfg.stackCacheEnabled = false;
}

void
applyInfiniteSvf(uarch::MachineConfig &cfg)
{
    applySvf(cfg, 1u << 20, 64);
    cfg.svf.morphAllStackRefs = true;
    cfg.svf.noSquash = true;
}

void
applyStackCache(uarch::MachineConfig &cfg, std::uint64_t size,
                unsigned ports)
{
    cfg.stackCacheEnabled = true;
    cfg.stackCache.size = size;
    cfg.stackCache.ports = ports;
    cfg.svf.enabled = false;
}

double
speedupPct(const RunResult &base, const RunResult &opt)
{
    if (base.core.cycles == 0 || opt.core.cycles == 0) {
        warn("speedupPct: degenerate cycle counts (base=%llu, "
             "opt=%llu); clamping speedup to 0",
             (unsigned long long)base.core.cycles,
             (unsigned long long)opt.core.cycles);
        return 0.0;
    }
    double sp = (static_cast<double>(base.core.cycles) /
                 static_cast<double>(opt.core.cycles) - 1.0) * 100.0;
    if (!std::isfinite(sp)) {
        warn("speedupPct: non-finite speedup; clamping to 0");
        return 0.0;
    }
    return sp;
}

double
hostMips(const RunResult &r, double wall_seconds)
{
    if (wall_seconds <= 0.0)
        return 0.0;
    // A sampled run covered totalInsts of the program (most of them
    // functionally) in this wall time; that is its effective rate.
    std::uint64_t insts = r.sampled.enabled() ? r.sampled.totalInsts
                                              : r.core.committed;
    double v = static_cast<double>(insts) / wall_seconds / 1e6;
    return std::isfinite(v) ? v : 0.0;
}

double
hostCyclesPerSec(const RunResult &r, double wall_seconds)
{
    if (wall_seconds <= 0.0)
        return 0.0;
    std::uint64_t cycles = r.sampled.enabled()
                               ? r.sampled.estimatedCycles
                               : r.core.cycles;
    double v = static_cast<double>(cycles) / wall_seconds;
    return std::isfinite(v) ? v : 0.0;
}

} // namespace svf::harness
