#include "harness/experiment.hh"

#include <cmath>

#include "base/hash.hh"
#include "base/logging.hh"
#include "sim/emulator.hh"
#include "workloads/registry.hh"

namespace svf::harness
{

std::uint64_t
RunSetup::key() const
{
    std::uint64_t seed = hashInit('R');
    seed = hashCombine(seed, workload);
    seed = hashCombine(seed, input);
    seed = hashCombine(seed, scale);
    seed = hashCombine(seed, maxInsts);
    seed = machine.key(seed);
    seed = hashCombine(seed, std::uint64_t(program != nullptr));
    if (program) {
        seed = hashCombine(seed, program->name);
        seed = hashCombine(seed, program->entry);
        for (const auto &sec : program->sections) {
            seed = hashCombine(seed, sec.base);
            seed = hashCombine(seed,
                               std::uint64_t(sec.bytes.size()));
            std::uint64_t h = 1469598103934665603ull;
            for (std::uint8_t b : sec.bytes) {
                h ^= b;
                h *= 1099511628211ull;
            }
            seed = hashCombine(seed, h);
        }
    }
    return seed;
}

RunResult
runExperiment(const RunSetup &setup)
{
    isa::Program prog;
    const workloads::WorkloadSpec *spec = nullptr;
    std::uint64_t scale = setup.scale;
    if (setup.program) {
        prog = *setup.program;
    } else {
        spec = &workloads::workload(setup.workload);
        if (!scale)
            scale = spec->defaultScale;
        prog = spec->build(setup.input, scale);
    }

    sim::Emulator oracle(prog);
    uarch::OooCore core(setup.machine, oracle);
    core.run(setup.maxInsts);

    RunResult r;
    r.core = core.stats();
    r.completed = oracle.halted();
    r.output = oracle.output();
    if (r.completed && spec) {
        std::string expected = spec->expected(setup.input, scale);
        r.outputOk = oracle.output() == expected;
        if (!r.outputOk) {
            warn("workload %s.%s output mismatch (got '%s', want "
                 "'%s')", setup.workload.c_str(),
                 setup.input.c_str(), oracle.output().c_str(),
                 expected.c_str());
        }
    }

    const core::SvfUnit &svf = core.svfUnit();
    if (svf.enabled()) {
        r.svfQuadsIn = svf.svf().quadsIn();
        r.svfQuadsOut = svf.svf().quadsOut();
        r.svfFastLoads = svf.fastLoads();
        r.svfFastStores = svf.fastStores();
        r.svfReroutedLoads = svf.reroutedLoads();
        r.svfReroutedStores = svf.reroutedStores();
        r.svfWindowMisses = svf.windowMisses();
        r.svfDemandFills = svf.svf().demandFills();
        r.svfDisableEpisodes = svf.disableEpisodes();
        r.svfRefsWhileDisabled = svf.refsWhileDisabled();
    }
    if (const mem::StackCache *sc = core.stackCache()) {
        r.scQuadsIn = sc->quadsIn();
        r.scQuadsOut = sc->quadsOut();
        r.scHits = sc->hits();
        r.scMisses = sc->misses();
    }
    r.dl1Hits = core.hier().dl1().hits();
    r.dl1Misses = core.hier().dl1().misses();
    r.l2Hits = core.hier().l2().hits();
    r.l2Misses = core.hier().l2().misses();
    return r;
}

uarch::MachineConfig
baselineConfig(unsigned width, unsigned dl1_ports,
               const std::string &bpred)
{
    uarch::MachineConfig cfg = uarch::MachineConfig::wide(width);
    cfg.dl1Ports = dl1_ports;
    cfg.bpred = bpred;
    return cfg;
}

void
applySvf(uarch::MachineConfig &cfg, std::uint32_t entries,
         unsigned ports)
{
    cfg.svf.enabled = true;
    cfg.svf.svf.entries = entries;
    cfg.svf.svf.ports = ports;
    cfg.stackCacheEnabled = false;
}

void
applyInfiniteSvf(uarch::MachineConfig &cfg)
{
    applySvf(cfg, 1u << 20, 64);
    cfg.svf.morphAllStackRefs = true;
    cfg.svf.noSquash = true;
}

void
applyStackCache(uarch::MachineConfig &cfg, std::uint64_t size,
                unsigned ports)
{
    cfg.stackCacheEnabled = true;
    cfg.stackCache.size = size;
    cfg.stackCache.ports = ports;
    cfg.svf.enabled = false;
}

double
speedupPct(const RunResult &base, const RunResult &opt)
{
    if (base.core.cycles == 0 || opt.core.cycles == 0) {
        warn("speedupPct: degenerate cycle counts (base=%llu, "
             "opt=%llu); clamping speedup to 0",
             (unsigned long long)base.core.cycles,
             (unsigned long long)opt.core.cycles);
        return 0.0;
    }
    double sp = (static_cast<double>(base.core.cycles) /
                 static_cast<double>(opt.core.cycles) - 1.0) * 100.0;
    if (!std::isfinite(sp)) {
        warn("speedupPct: non-finite speedup; clamping to 0");
        return 0.0;
    }
    return sp;
}

double
hostMips(const RunResult &r, double wall_seconds)
{
    if (wall_seconds <= 0.0)
        return 0.0;
    double v = static_cast<double>(r.core.committed) /
               wall_seconds / 1e6;
    return std::isfinite(v) ? v : 0.0;
}

double
hostCyclesPerSec(const RunResult &r, double wall_seconds)
{
    if (wall_seconds <= 0.0)
        return 0.0;
    double v = static_cast<double>(r.core.cycles) / wall_seconds;
    return std::isfinite(v) ? v : 0.0;
}

} // namespace svf::harness
