#include "harness/experiment.hh"

#include "base/logging.hh"
#include "sim/emulator.hh"
#include "workloads/registry.hh"

namespace svf::harness
{

RunResult
runExperiment(const RunSetup &setup)
{
    const workloads::WorkloadSpec &spec =
        workloads::workload(setup.workload);
    std::uint64_t scale = setup.scale ? setup.scale
                                      : spec.defaultScale;
    isa::Program prog = spec.build(setup.input, scale);

    sim::Emulator oracle(prog);
    uarch::OooCore core(setup.machine, oracle);
    core.run(setup.maxInsts);

    RunResult r;
    r.core = core.stats();
    r.completed = oracle.halted();
    if (r.completed) {
        std::string expected = spec.expected(setup.input, scale);
        r.outputOk = oracle.output() == expected;
        if (!r.outputOk) {
            warn("workload %s.%s output mismatch (got '%s', want "
                 "'%s')", setup.workload.c_str(),
                 setup.input.c_str(), oracle.output().c_str(),
                 expected.c_str());
        }
    }

    const core::SvfUnit &svf = core.svfUnit();
    if (svf.enabled()) {
        r.svfQuadsIn = svf.svf().quadsIn();
        r.svfQuadsOut = svf.svf().quadsOut();
        r.svfFastLoads = svf.fastLoads();
        r.svfFastStores = svf.fastStores();
        r.svfReroutedLoads = svf.reroutedLoads();
        r.svfReroutedStores = svf.reroutedStores();
        r.svfWindowMisses = svf.windowMisses();
    }
    if (const mem::StackCache *sc = core.stackCache()) {
        r.scQuadsIn = sc->quadsIn();
        r.scQuadsOut = sc->quadsOut();
        r.scHits = sc->hits();
        r.scMisses = sc->misses();
    }
    r.dl1Hits = core.hier().dl1().hits();
    r.dl1Misses = core.hier().dl1().misses();
    return r;
}

uarch::MachineConfig
baselineConfig(unsigned width, unsigned dl1_ports,
               const std::string &bpred)
{
    uarch::MachineConfig cfg = uarch::MachineConfig::wide(width);
    cfg.dl1Ports = dl1_ports;
    cfg.bpred = bpred;
    return cfg;
}

void
applySvf(uarch::MachineConfig &cfg, std::uint32_t entries,
         unsigned ports)
{
    cfg.svf.enabled = true;
    cfg.svf.svf.entries = entries;
    cfg.svf.svf.ports = ports;
    cfg.stackCacheEnabled = false;
}

void
applyInfiniteSvf(uarch::MachineConfig &cfg)
{
    applySvf(cfg, 1u << 20, 64);
    cfg.svf.morphAllStackRefs = true;
    cfg.svf.noSquash = true;
}

void
applyStackCache(uarch::MachineConfig &cfg, std::uint64_t size,
                unsigned ports)
{
    cfg.stackCacheEnabled = true;
    cfg.stackCache.size = size;
    cfg.stackCache.ports = ports;
    cfg.svf.enabled = false;
}

double
speedupPct(const RunResult &base, const RunResult &opt)
{
    if (opt.core.cycles == 0)
        return 0.0;
    return (static_cast<double>(base.core.cycles) /
            static_cast<double>(opt.core.cycles) - 1.0) * 100.0;
}

} // namespace svf::harness
