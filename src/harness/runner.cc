#include "harness/runner.hh"

#include <condition_variable>
#include <mutex>

#include "base/hash.hh"
#include "base/logging.hh"
#include "harness/engine.hh"
#include "workloads/registry.hh"

namespace svf::harness
{

std::uint64_t
ProfileSetup::key() const
{
    std::uint64_t seed = hashInit('P');
    seed = hashCombine(seed, workload);
    seed = hashCombine(seed, input);
    seed = hashCombine(seed, scale);
    seed = hashCombine(seed, maxInsts);
    return hashCombine(seed, std::uint64_t(depthSamples));
}

const RunResult &
JobOutcome::run() const
{
    const RunResult *r = std::get_if<RunResult>(&value);
    if (!r)
        panic("job '%s' is not a cycle-model run", name.c_str());
    return *r;
}

const TrafficResult &
JobOutcome::traffic() const
{
    const TrafficResult *r = std::get_if<TrafficResult>(&value);
    if (!r)
        panic("job '%s' is not a traffic measurement", name.c_str());
    return *r;
}

const workloads::StackProfile &
JobOutcome::profile() const
{
    const workloads::StackProfile *r =
        std::get_if<workloads::StackProfile>(&value);
    if (!r)
        panic("job '%s' is not a stack profile", name.c_str());
    return *r;
}

size_t
ExperimentPlan::add(std::string name, RunSetup setup)
{
    _jobs.push_back({std::move(name), std::move(setup)});
    return _jobs.size() - 1;
}

size_t
ExperimentPlan::add(std::string name, TrafficSetup setup)
{
    _jobs.push_back({std::move(name), std::move(setup)});
    return _jobs.size() - 1;
}

size_t
ExperimentPlan::add(std::string name, ProfileSetup setup)
{
    _jobs.push_back({std::move(name), std::move(setup)});
    return _jobs.size() - 1;
}

std::uint64_t
setupKey(const JobSetup &setup)
{
    return std::visit([](const auto &s) { return s.key(); }, setup);
}

JobValue
executeSetup(const JobSetup &setup)
{
    if (const RunSetup *rs = std::get_if<RunSetup>(&setup))
        return runExperiment(*rs);
    if (const TrafficSetup *ts = std::get_if<TrafficSetup>(&setup))
        return measureTraffic(*ts);
    const ProfileSetup &ps = std::get<ProfileSetup>(setup);
    const workloads::WorkloadSpec &spec =
        workloads::workload(ps.workload);
    std::uint64_t scale = ps.scale ? ps.scale : spec.defaultScale;
    return workloads::profileProgram(spec.build(ps.input, scale),
                                     ps.maxInsts, ps.depthSamples);
}

Runner::Runner(RunnerOptions options) : opts(std::move(options))
{
    EngineOptions eo;
    eo.threads = opts.jobs;
    eo.memoize = opts.memoize;
    eo.cacheDir = opts.cacheDir;
    eng = std::make_unique<JobEngine>(eo);
}

Runner::~Runner() = default;

unsigned
Runner::threadCount() const
{
    return eng->threadCount();
}

std::uint64_t
Runner::executions() const
{
    return eng->stats().executed;
}

std::uint64_t
Runner::memoHits() const
{
    // In-flight attachment is what an in-plan duplicate became when
    // dedup moved from the plan into the engine; both count here.
    EngineStats s = eng->stats();
    return s.memoHits + s.inflightAttached;
}

std::uint64_t
Runner::diskHits() const
{
    return eng->stats().diskHits;
}

double
Runner::totalWallSeconds() const
{
    return eng->stats().wallTotal;
}

void
Runner::clearCache()
{
    eng->clearMemo();
}

std::vector<JobOutcome>
Runner::run(const ExperimentPlan &plan)
{
    const size_t total = plan.size();
    std::vector<JobOutcome> results(total);

    // `lock` serializes `done` and — critically — every
    // opts.progress invocation: engine workers, and any nested
    // interval workers reporting through the same hook, deliver
    // progress concurrently. The per-ticket completion hooks run
    // detached from ticket waits, so run() must also wait for
    // `done == total` before returning: a hook may fire after the
    // last wait() returns, and it references these locals.
    size_t done = 0;
    std::mutex lock;
    std::condition_variable doneCv;
    auto report = [&](size_t index, bool cached, double wall) {
        std::unique_lock<std::mutex> g(lock);
        ++done;
        if (opts.progress) {
            JobProgress p;
            p.index = index;
            p.done = done;
            p.total = total;
            p.name = plan.job(index).name;
            p.wallSeconds = wall;
            p.cached = cached;
            opts.progress(p);
        }
        // Notify while still holding the lock: the cv and this
        // closure are stack-local to run(), and the waiter may
        // destroy them the moment it can reacquire the mutex — an
        // unlocked notify would touch a dead condition_variable.
        if (done == total)
            doneCv.notify_all();
    };

    // Submit everything in plan order: cache hits report (and
    // resolve) synchronously, executions as their tickets finish.
    std::vector<TicketPtr> tickets(total);
    for (size_t i = 0; i < total; ++i) {
        const Job &job = plan.job(i);
        results[i].name = job.name;
        tickets[i] = eng->submit(
            job.setup, "",
            [&report, i](JobTicket &t) {
                report(i, t.cached(),
                       t.cached() ? 0.0 : t.wallSeconds());
            });
        results[i].key = tickets[i]->key();
    }

    // Collect in submission order.
    for (size_t i = 0; i < total; ++i) {
        tickets[i]->wait();
        const JobTicket &t = *tickets[i];
        if (t.state() == TicketState::Failed)
            panic("job '%s' failed: %s", plan.job(i).name.c_str(),
                  t.error().c_str());
        svf_assert(t.state() == TicketState::Done);
        results[i].value = t.value();
        results[i].cached = t.cached();
        results[i].wallSeconds = t.cached() ? 0.0 : t.wallSeconds();
    }

    {
        std::unique_lock<std::mutex> l(lock);
        doneCv.wait(l, [&] { return done == total; });
    }
    return results;
}

} // namespace svf::harness
