#include "harness/runner.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "base/hash.hh"
#include "base/logging.hh"
#include "harness/prof.hh"
#include "workloads/registry.hh"

namespace svf::harness
{

std::uint64_t
ProfileSetup::key() const
{
    std::uint64_t seed = hashInit('P');
    seed = hashCombine(seed, workload);
    seed = hashCombine(seed, input);
    seed = hashCombine(seed, scale);
    seed = hashCombine(seed, maxInsts);
    return hashCombine(seed, std::uint64_t(depthSamples));
}

const RunResult &
JobOutcome::run() const
{
    const RunResult *r = std::get_if<RunResult>(&value);
    if (!r)
        panic("job '%s' is not a cycle-model run", name.c_str());
    return *r;
}

const TrafficResult &
JobOutcome::traffic() const
{
    const TrafficResult *r = std::get_if<TrafficResult>(&value);
    if (!r)
        panic("job '%s' is not a traffic measurement", name.c_str());
    return *r;
}

const workloads::StackProfile &
JobOutcome::profile() const
{
    const workloads::StackProfile *r =
        std::get_if<workloads::StackProfile>(&value);
    if (!r)
        panic("job '%s' is not a stack profile", name.c_str());
    return *r;
}

size_t
ExperimentPlan::add(std::string name, RunSetup setup)
{
    _jobs.push_back({std::move(name), std::move(setup)});
    return _jobs.size() - 1;
}

size_t
ExperimentPlan::add(std::string name, TrafficSetup setup)
{
    _jobs.push_back({std::move(name), std::move(setup)});
    return _jobs.size() - 1;
}

size_t
ExperimentPlan::add(std::string name, ProfileSetup setup)
{
    _jobs.push_back({std::move(name), std::move(setup)});
    return _jobs.size() - 1;
}

std::uint64_t
setupKey(const JobSetup &setup)
{
    return std::visit([](const auto &s) { return s.key(); }, setup);
}

JobValue
executeSetup(const JobSetup &setup)
{
    if (const RunSetup *rs = std::get_if<RunSetup>(&setup))
        return runExperiment(*rs);
    if (const TrafficSetup *ts = std::get_if<TrafficSetup>(&setup))
        return measureTraffic(*ts);
    const ProfileSetup &ps = std::get<ProfileSetup>(setup);
    const workloads::WorkloadSpec &spec =
        workloads::workload(ps.workload);
    std::uint64_t scale = ps.scale ? ps.scale : spec.defaultScale;
    return workloads::profileProgram(spec.build(ps.input, scale),
                                     ps.maxInsts, ps.depthSamples);
}

Runner::Runner(RunnerOptions options)
    : opts(std::move(options)), diskCache(opts.cacheDir)
{
    nThreads = opts.jobs ? opts.jobs
                         : std::thread::hardware_concurrency();
    if (nThreads == 0)
        nThreads = 1;
    if (diskCache.enabled() && !opts.memoize) {
        warn("cache=DIR requires memoization; disk cache disabled");
        diskCache = ckpt::ResultCache("");
    }
}

std::vector<JobOutcome>
Runner::run(const ExperimentPlan &plan)
{
    const size_t total = plan.size();
    std::vector<JobOutcome> results(total);

    /**
     * One entry per *distinct* setup key that must actually be
     * simulated this run; every plan job points at one.
     */
    struct Work
    {
        const JobSetup *setup = nullptr;
        size_t firstJob = 0;        //!< earliest job with this key
        JobValue value;
        double wallSeconds = 0.0;
    };
    std::vector<Work> work;
    std::vector<size_t> jobToWork(total, size_t(-1));

    // `lock` serializes `done`, the run statistics and — critically —
    // every opts.progress invocation: the pool workers, and any
    // nested interval workers reporting through the same hook,
    // deliver progress concurrently. report() takes it itself so
    // no call site can forget.
    size_t done = 0;
    std::mutex lock;
    auto report = [&](size_t index, bool cached, double wall) {
        std::lock_guard<std::mutex> g(lock);
        ++done;
        if (!opts.progress)
            return;
        JobProgress p;
        p.index = index;
        p.done = done;
        p.total = total;
        p.name = plan.job(index).name;
        p.wallSeconds = wall;
        p.cached = cached;
        opts.progress(p);
    };

    // Phase 1: resolve memo hits, dedup the rest into work items.
    std::unordered_map<std::uint64_t, size_t> keyToWork;
    for (size_t i = 0; i < total; ++i) {
        const Job &job = plan.job(i);
        std::uint64_t key = setupKey(job.setup);
        results[i].name = job.name;
        results[i].key = key;
        if (opts.memoize) {
            prof::ScopedPhase ph(prof::Phase::CacheLookup);
            auto hit = memo.find(key);
            if (hit != memo.end()) {
                results[i].value = hit->second;
                results[i].cached = true;
                ++nMemoHits;
                report(i, true, 0.0);
                continue;
            }
            ckpt::CachedValue from_disk;
            if (diskCache.load(key, from_disk)) {
                auto [it, ins] =
                    memo.emplace(key, std::move(from_disk));
                results[i].value = it->second;
                results[i].cached = true;
                ++nDiskHits;
                report(i, true, 0.0);
                continue;
            }
            auto [it, fresh] = keyToWork.try_emplace(key,
                                                     work.size());
            if (!fresh) {
                jobToWork[i] = it->second;
                results[i].cached = true;
                ++nMemoHits;
                continue;
            }
        }
        jobToWork[i] = work.size();
        work.push_back(Work{&job.setup, i, {}, 0.0});
    }

    // Phase 2: execute the distinct work items over the pool.
    // Workers write disjoint slots; the shared statistics take the
    // lock and report() locks internally, so it is called unlocked.
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (size_t w; (w = next.fetch_add(1)) < work.size();) {
            auto t0 = std::chrono::steady_clock::now();
            work[w].value = executeSetup(*work[w].setup);
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            work[w].wallSeconds = dt.count();
            {
                std::lock_guard<std::mutex> g(lock);
                ++nExecuted;
                wallTotal += work[w].wallSeconds;
            }
            report(work[w].firstJob, false, work[w].wallSeconds);
        }
    };
    unsigned pool = unsigned(std::min<size_t>(nThreads, work.size()));
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (unsigned t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }

    // Phase 3: fan results out to every job in submission order and
    // fill the cross-run memo cache.
    for (size_t i = 0; i < total; ++i) {
        if (jobToWork[i] == size_t(-1))
            continue;                   // already served by the memo
        const Work &w = work[jobToWork[i]];
        results[i].value = w.value;
        if (results[i].cached)
            report(i, true, 0.0);       // in-plan duplicate
        else
            results[i].wallSeconds = w.wallSeconds;
    }
    if (opts.memoize) {
        for (const Work &w : work) {
            diskCache.store(results[w.firstJob].key, w.value);
            memo.emplace(results[w.firstJob].key, w.value);
        }
    }
    svf_assert(done == total);
    return results;
}

} // namespace svf::harness
