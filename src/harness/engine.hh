/**
 * @file
 * Submit/wait job engine: the execution core under harness::Runner
 * and the serve layer's daemon.
 *
 * Runner's original design was plan-scoped: dedup, memoization and
 * the worker pool all lived inside one run() call, so two concurrent
 * plans — or two processes — could not share an execution. The
 * JobEngine extracts that machinery into a persistent service:
 * callers submit() individual JobSetups and get back a ticket they
 * can wait on, while a long-lived worker pool drains a fair
 * admission queue behind a three-level store:
 *
 *   1. in-memory memo (setup key -> JobValue),
 *   2. the disk result cache (ckpt/result_cache.hh) when configured,
 *   3. live execution — with *in-flight dedup*: a submit whose key
 *      is already queued or running attaches to that execution
 *      instead of enqueueing a second one, and every attached ticket
 *      completes the moment the one execution does.
 *
 * Admission is fair across clients: each client id gets its own FIFO
 * and the pool round-robins over clients, so one caller enqueueing a
 * thousand windows cannot starve another's two. The queue is
 * optionally bounded; a submit past the bound is rejected
 * immediately (backpressure) rather than blocking the socket thread.
 *
 * Tickets are self-contained (own mutex/cv), so waiting threads
 * never touch engine internals, and a manual mode (threads
 * configured but not started) lets tests drive the queue one item at
 * a time for deterministic fairness/dedup assertions.
 */

#ifndef SVF_HARNESS_ENGINE_HH
#define SVF_HARNESS_ENGINE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ckpt/result_cache.hh"
#include "harness/runner.hh"

namespace svf::harness
{

/** Where a ticket's value came from. */
enum class TicketSource
{
    Executed,   //!< simulated by this engine
    Memo,       //!< in-memory memo hit
    Disk,       //!< disk result-cache hit
    Inflight,   //!< attached to an execution already in flight
};

/** Ticket lifecycle; Done/Rejected/Failed are terminal. */
enum class TicketState
{
    Queued,
    Running,
    Done,
    Rejected,   //!< bounded queue full (backpressure)
    Failed,     //!< execution threw
};

class JobEngine;

/**
 * One submitted job. Self-synchronized: state()/wait()/value() are
 * safe from any thread and remain valid after the engine is gone.
 */
class JobTicket
{
  public:
    std::uint64_t key() const { return _key; }
    const std::string &client() const { return _client; }

    TicketState state() const;

    /** Block until the ticket reaches a terminal state. */
    void wait() const;

    /** Terminal? (Done, Rejected or Failed.) */
    bool finished() const;

    /** @name Valid once finished() */
    /// @{
    TicketSource source() const { return _source; }
    double wallSeconds() const { return _wallSeconds; }
    double queueSeconds() const { return _queueSeconds; }
    const JobValue &value() const { return _value; }
    const std::string &error() const { return _error; }
    /// @}

    /** Cache semantics of the outcome (anything but Executed). */
    bool cached() const { return _source != TicketSource::Executed; }

  private:
    friend class JobEngine;

    void finish(TicketState state, TicketSource source);

    mutable std::mutex _m;
    mutable std::condition_variable _cv;
    TicketState _state = TicketState::Queued;

    std::uint64_t _key = 0;
    std::string _client;
    TicketSource _source = TicketSource::Executed;
    double _wallSeconds = 0.0;
    double _queueSeconds = 0.0;
    JobValue _value;
    std::string _error;
    std::function<void(JobTicket &)> _onDone;
    std::chrono::steady_clock::time_point _tSubmit;
};

using TicketPtr = std::shared_ptr<JobTicket>;

/** Engine knobs (RunnerOptions and the daemon both map onto this). */
struct EngineOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;

    /**
     * Memoize by setup key and dedup in-flight identical setups.
     * Off, every submit executes (Runner's memoize=false contract).
     */
    bool memoize = true;

    /** Disk result cache directory; empty disables (needs memoize). */
    std::string cacheDir;

    /** Max queued (not yet running) items; 0 = unbounded. */
    std::size_t maxQueued = 0;

    /**
     * Do not start worker threads; the owner steps the queue with
     * runOne(). Deterministic mode for protocol tests.
     */
    bool manual = false;
};

/** A point-in-time engine statistics snapshot. */
struct EngineStats
{
    std::uint64_t executed = 0;
    std::uint64_t memoHits = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t inflightAttached = 0;
    std::uint64_t rejected = 0;
    std::size_t queueDepth = 0;     //!< queued, not yet running
    unsigned running = 0;           //!< items executing right now
    double wallTotal = 0.0;         //!< summed execution seconds
    unsigned threads = 0;
};

class JobEngine
{
  public:
    explicit JobEngine(EngineOptions options = {});

    /** Stops workers (running items finish; queued never run). */
    ~JobEngine();

    JobEngine(const JobEngine &) = delete;
    JobEngine &operator=(const JobEngine &) = delete;

    /**
     * Submit one setup under @p client's queue. Returns a ticket
     * that may already be finished (memo/disk hit, or rejection by
     * backpressure). @p on_done, when set, fires exactly once as the
     * ticket reaches a terminal state — synchronously inside
     * submit() for immediate hits/rejects, from a worker thread
     * otherwise; never with engine or ticket locks held.
     */
    TicketPtr submit(const JobSetup &setup,
                     const std::string &client = "",
                     std::function<void(JobTicket &)> on_done = {});

    /**
     * Manual mode: run the next queued item (fair order) on the
     * calling thread. False when the queue is empty.
     */
    bool runOne();

    /**
     * Stop accepting executions and join the workers: running items
     * complete (and persist), queued items stay queued forever — the
     * daemon journals them for its next start. Idempotent.
     */
    void drain();

    /**
     * Block up to @p timeout for any ticket state transition
     * (coarse-grained change notification for event streamers).
     * True when notified, false on timeout.
     */
    bool waitEvent(std::chrono::milliseconds timeout) const;

    EngineStats stats() const;

    /** Drop all memoized results (not the disk cache). */
    void clearMemo();

    unsigned threadCount() const { return nThreads; }
    const ckpt::ResultCache &diskCache() const { return cache; }

    /** Seconds since construction (utilization denominator). */
    double uptimeSeconds() const;

  private:
    /** One distinct in-flight setup; every duplicate attaches. */
    struct Item
    {
        JobSetup setup;
        std::uint64_t key = 0;
        std::string client;
        TicketPtr primary;
        std::vector<TicketPtr> attached;
        bool running = false;
    };
    using ItemPtr = std::shared_ptr<Item>;

    void workerLoop();
    ItemPtr popLocked();
    void markRunningLocked(const ItemPtr &item);
    void execute(const ItemPtr &item);
    void finishTicket(const TicketPtr &t, TicketState state,
                      TicketSource source, double wall,
                      const JobValue *value, const std::string &err);

    EngineOptions opts;
    unsigned nThreads;
    ckpt::ResultCache cache;
    std::chrono::steady_clock::time_point tStart;

    mutable std::mutex lock;
    std::condition_variable workCv;         //!< workers: queue/stop
    mutable std::condition_variable eventCv; //!< observers: any change
    bool stopping = false;

    std::unordered_map<std::uint64_t, JobValue> memo;
    std::unordered_map<std::uint64_t, ItemPtr> inflight;

    /** Per-client FIFOs + first-appearance round-robin order. */
    std::unordered_map<std::string, std::deque<ItemPtr>> queues;
    std::vector<std::string> rrClients;
    std::size_t rrNext = 0;
    std::size_t queuedCount = 0;

    EngineStats counts;     //!< cumulative fields only
    std::vector<std::thread> workers;
};

} // namespace svf::harness

#endif // SVF_HARNESS_ENGINE_HH
