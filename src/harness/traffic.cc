#include "harness/traffic.hh"

#include <memory>
#include <vector>

#include "base/hash.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "core/svf_unit.hh"
#include "isa/isa.hh"
#include "mem/hierarchy.hh"
#include "mem/stack_cache.hh"
#include "sim/emulator.hh"
#include "sim/region.hh"
#include "workloads/registry.hh"

namespace svf::harness
{

std::uint64_t
TrafficSetup::key() const
{
    std::uint64_t seed = hashInit('T');
    seed = hashCombine(seed, workload);
    seed = hashCombine(seed, input);
    seed = hashCombine(seed, scale);
    seed = hashCombine(seed, maxInsts);
    seed = hashCombine(seed, capacityBytes);
    seed = hashCombine(seed, slicePeriod);
    seed = hashCombine(seed, std::uint64_t(svfDirtyGranule));
    seed = hashCombine(seed, std::uint64_t(svfKillOnShrink));
    return hashCombine(seed, std::uint64_t(svfFillOnAlloc));
}

TrafficResult
measureTraffic(const TrafficSetup &setup)
{
    // One functional stream per comma-separated workload entry; the
    // streams take turns through ONE SvfUnit and ONE StackCache, so a
    // mix measures real inter-program displacement.
    std::vector<std::string> names = split(setup.workload, ',');
    std::vector<std::string> inputs = split(setup.input, ',');
    std::size_t n = std::max(names.size(), inputs.size());
    auto pick = [n](const std::vector<std::string> &v, std::size_t i,
                    const char *what) -> const std::string & {
        if (v.size() == 1)
            return v[0];
        if (v.size() != n)
            fatal("traffic %s list has %zu entries for %zu streams",
                  what, v.size(), n);
        return v[i];
    };
    if (n > 1 && setup.slicePeriod == 0)
        fatal("a traffic workload mix needs slice=N (the round-robin "
              "period); got %zu workloads with slice=0", n);

    std::vector<isa::Program> progs;
    progs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const workloads::WorkloadSpec &spec =
            workloads::workload(pick(names, i, "workload"));
        const std::string &in = pick(inputs, i, "input");
        std::uint64_t scale = setup.scale ? setup.scale
                                          : spec.defaultScale;
        progs.push_back(
            spec.build(in.empty() ? spec.inputs[0] : in, scale));
    }
    std::vector<std::unique_ptr<sim::Emulator>> emus;
    for (const isa::Program &p : progs)
        emus.push_back(std::make_unique<sim::Emulator>(p));

    core::SvfUnitParams svf_params;
    svf_params.enabled = true;
    svf_params.svf.entries =
        static_cast<std::uint32_t>(setup.capacityBytes / 8);
    svf_params.svf.dirtyGranule = setup.svfDirtyGranule;
    svf_params.svf.killOnShrink = setup.svfKillOnShrink;
    svf_params.svf.fillOnAlloc = setup.svfFillOnAlloc;
    core::SvfUnit svf(svf_params, isa::layout::StackBase);

    mem::MemHierarchy hier{mem::HierarchyParams()};
    mem::StackCacheParams sc_params;
    sc_params.size = setup.capacityBytes;
    mem::StackCache sc(sc_params, hier);

    TrafficResult out;
    std::vector<std::uint64_t> used(n, 0);
    auto active = [&](std::size_t j) {
        return !emus[j]->halted() && used[j] < setup.maxInsts;
    };

    std::size_t cur = 0;
    std::size_t prev = 0;           // stream the structures last saw
    sim::ExecInfo info;
    while (true) {
        std::size_t j = n;
        for (std::size_t k = 0; k < n; ++k) {
            std::size_t c = (cur + k) % n;
            if (active(c)) {
                j = c;
                break;
            }
        }
        if (j == n)
            break;

        sim::Emulator &emu = *emus[j];
        if (j != prev) {
            // The incoming stream's TOS is wherever its own $sp
            // points; the flush below already emptied the SVF, so
            // this only repositions the window.
            svf.resyncSp(emu.reg(isa::RegSP));
            prev = j;
        }

        std::uint64_t quota = setup.maxInsts - used[j];
        if (setup.slicePeriod && setup.slicePeriod < quota)
            quota = setup.slicePeriod;
        std::uint64_t done = 0;
        while (done < quota && emu.step(info)) {
            ++done;
            svf.classifyAndApply(info);
            if (info.di->memRef &&
                sim::classify(info.ea) == sim::Region::Stack) {
                sc.access(info.ea, info.di->store);
            }
        }
        used[j] += done;
        out.insts += done;

        // A switch (and its writeback bill) is charged only when the
        // slice consumed its full period — the old modulo injector's
        // rule, which a halting or budget-capped tail slice never
        // triggered.
        if (setup.slicePeriod && done == setup.slicePeriod) {
            ++out.ctxSwitches;
            out.svfCtxBytes += svf.contextSwitchFlush();
            out.scCtxBytes += sc.contextSwitchFlush();
        }
        cur = (j + 1) % n;
    }

    out.svfQuadsIn = svf.svf().quadsIn();
    out.svfQuadsOut = svf.svf().quadsOut();
    out.scQuadsIn = sc.quadsIn();
    out.scQuadsOut = sc.quadsOut();
    return out;
}

} // namespace svf::harness
