#include "harness/traffic.hh"

#include "base/hash.hh"
#include "core/svf_unit.hh"
#include "mem/hierarchy.hh"
#include "mem/stack_cache.hh"
#include "sim/emulator.hh"
#include "sim/region.hh"
#include "workloads/registry.hh"

namespace svf::harness
{

std::uint64_t
TrafficSetup::key() const
{
    std::uint64_t seed = hashInit('T');
    seed = hashCombine(seed, workload);
    seed = hashCombine(seed, input);
    seed = hashCombine(seed, scale);
    seed = hashCombine(seed, maxInsts);
    seed = hashCombine(seed, capacityBytes);
    seed = hashCombine(seed, ctxSwitchPeriod);
    seed = hashCombine(seed, std::uint64_t(svfDirtyGranule));
    seed = hashCombine(seed, std::uint64_t(svfKillOnShrink));
    return hashCombine(seed, std::uint64_t(svfFillOnAlloc));
}

TrafficResult
measureTraffic(const TrafficSetup &setup)
{
    const workloads::WorkloadSpec &spec =
        workloads::workload(setup.workload);
    std::uint64_t scale = setup.scale ? setup.scale
                                      : spec.defaultScale;
    isa::Program prog = spec.build(setup.input, scale);
    sim::Emulator emu(prog);

    core::SvfUnitParams svf_params;
    svf_params.enabled = true;
    svf_params.svf.entries =
        static_cast<std::uint32_t>(setup.capacityBytes / 8);
    svf_params.svf.dirtyGranule = setup.svfDirtyGranule;
    svf_params.svf.killOnShrink = setup.svfKillOnShrink;
    svf_params.svf.fillOnAlloc = setup.svfFillOnAlloc;
    core::SvfUnit svf(svf_params, isa::layout::StackBase);

    mem::MemHierarchy hier{mem::HierarchyParams()};
    mem::StackCacheParams sc_params;
    sc_params.size = setup.capacityBytes;
    mem::StackCache sc(sc_params, hier);

    TrafficResult out;
    sim::ExecInfo info;
    while (out.insts < setup.maxInsts && emu.step(info)) {
        ++out.insts;
        svf.classifyAndApply(info);
        if (info.di->memRef &&
            sim::classify(info.ea) == sim::Region::Stack) {
            sc.access(info.ea, info.di->store);
        }
        if (setup.ctxSwitchPeriod &&
            out.insts % setup.ctxSwitchPeriod == 0) {
            ++out.ctxSwitches;
            out.svfCtxBytes += svf.contextSwitchFlush();
            out.scCtxBytes += sc.contextSwitchFlush();
        }
    }

    out.svfQuadsIn = svf.svf().quadsIn();
    out.svfQuadsOut = svf.svf().quadsOut();
    out.scQuadsIn = sc.quadsIn();
    out.scQuadsOut = sc.quadsOut();
    return out;
}

} // namespace svf::harness
