/**
 * @file
 * Self-describing registry of every simulated run counter.
 *
 * Before this registry existed, each RunResult counter was plumbed
 * by hand through five different places — JSON emission, the
 * per-core "cores" array, the fold across cores, the sampled
 * interval delta, and every equivalence test's field-by-field diff —
 * so adding a counter meant five edits and a missed one meant a
 * silent hole in a regression gate. Here each counter is declared
 * once, as a stats::Info carrying its snake_case JSON name,
 * description, unit, fold rule, and the member pointer that reaches
 * its storage, and every consumer iterates runCounters().
 *
 * Two storage classes exist for historical layout reasons:
 * CoreStats-backed counters live in RunResult::core (the cycle
 * model's own accounting) and unit counters live directly in
 * RunResult (SVF / stack-cache / hierarchy traffic collected after
 * the run). The registry abstracts the difference: get()/ref() reach
 * either through the right member pointer.
 *
 * ckpt::coreCounters() — the name/field table the result cache
 * serializes CoreStats through — is *derived* from this registry (its
 * entries are the CoreStats-backed subsequence, in registry order),
 * so there is exactly one declaration site. That order is on-disk
 * format: deriving it retired the hand-written ckpt copy, whose order
 * differed, which is why result_cache FormatVersion moved 3 → 4.
 * tests/harness/counters_test pins the positional equivalence.
 */

#ifndef SVF_HARNESS_COUNTERS_HH
#define SVF_HARNESS_COUNTERS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.hh"
#include "stats/group.hh"
#include "stats/stats.hh"
#include "uarch/ooo_core.hh"

namespace svf::harness
{

/** How a counter aggregates across cores / interval groups. */
enum class Fold
{
    Sum,  // additive event counts (everything but cycles)
    Max,  // cycles: cores run the same epochs, wall time is the max
};

/** One registered run counter. */
class CounterDef : public stats::Info
{
  public:
    using CoreField = std::uint64_t uarch::CoreStats::*;
    using RunField = std::uint64_t RunResult::*;

    CounterDef(stats::Group *parent, std::string name, std::string desc,
               std::string unit, Fold fold, CoreField core_field,
               RunField run_field);

    const std::string &unit() const { return _unit; }
    Fold fold() const { return _fold; }

    /** True when storage is RunResult::core (CoreStats). */
    bool fromCoreStats() const { return _coreField != nullptr; }

    /** The CoreStats member, or null for a unit counter. */
    CoreField coreField() const { return _coreField; }

    std::uint64_t get(const RunResult &r) const;
    std::uint64_t &ref(RunResult &r) const;

    /** Descriptor dump renders the unit (values live in results). */
    std::string render() const override { return _unit; }
    void reset() override {}

  private:
    std::string _unit;
    Fold _fold;
    CoreField _coreField;
    RunField _runField;
};

/**
 * Every RunResult counter, in the canonical emission order (which is
 * frozen: it is the key order of the JSON "counters" object and the
 * column order golden files compare against).
 */
const std::vector<const CounterDef *> &runCounters();

/** The registry group itself (self-describing dumps, tests). */
const stats::Group &runCounterGroup();

/** Look a counter up by JSON name; null when unknown. */
const CounterDef *findCounter(std::string_view name);

} // namespace svf::harness

#endif // SVF_HARNESS_COUNTERS_HH
