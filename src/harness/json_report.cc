#include "harness/json_report.hh"

#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "ckpt/serialize.hh"
#include "harness/counters.hh"

namespace svf::harness
{

namespace
{

/** Incrementally renders one flat JSON object. */
class ObjectWriter
{
  public:
    void
    field(const std::string &name, const std::string &raw_value)
    {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + jsonEscape(name) + "\": " + raw_value;
    }

    void
    str(const std::string &name, const std::string &v)
    {
        field(name, "\"" + jsonEscape(v) + "\"");
    }

    void
    num(const std::string &name, std::uint64_t v)
    {
        field(name, std::to_string(v));
    }

    void
    num(const std::string &name, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        field(name, buf);
    }

    void
    boolean(const std::string &name, bool v)
    {
        field(name, v ? "true" : "false");
    }

    std::string
    finish() const
    {
        return "{" + out + "}";
    }

  private:
    std::string out;
    bool first = true;
};

std::string
runCountersJson(const RunResult &r)
{
    // Registry-driven: the key order is the registry's frozen
    // declaration order, which reproduces the legacy hand-written
    // emission byte-for-byte (pinned by counters_test).
    ObjectWriter w;
    for (const CounterDef *d : runCounters())
        w.num(d->name(), d->get(r));
    return w.finish();
}

std::string
trafficCounters(const TrafficResult &r)
{
    ObjectWriter w;
    w.num("insts", r.insts);
    w.num("svf_quads_in", r.svfQuadsIn);
    w.num("svf_quads_out", r.svfQuadsOut);
    w.num("sc_quads_in", r.scQuadsIn);
    w.num("sc_quads_out", r.scQuadsOut);
    w.num("ctx_switches", r.ctxSwitches);
    w.num("svf_ctx_bytes", r.svfCtxBytes);
    w.num("sc_ctx_bytes", r.scCtxBytes);
    return w.finish();
}

std::string
profileCounters(const workloads::StackProfile &p)
{
    ObjectWriter w;
    w.num("insts", p.insts);
    w.num("mem_refs", p.memRefs);
    w.num("stack_refs", p.stackRefs);
    w.num("global_refs", p.globalRefs);
    w.num("heap_refs", p.heapRefs);
    w.num("other_refs", p.otherRefs);
    w.num("stack_sp", p.stackSp);
    w.num("stack_fp", p.stackFp);
    w.num("stack_gpr", p.stackGpr);
    w.num("max_depth_words", p.maxDepthWords);
    w.num("below_tos", p.belowTos);
    return w.finish();
}

} // anonymous namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonReport::add(const JobOutcome &outcome)
{
    ObjectWriter w;
    w.str("name", outcome.name);
    char keybuf[24];
    std::snprintf(keybuf, sizeof(keybuf), "%016llx",
                  (unsigned long long)outcome.key);
    w.str("key", keybuf);
    w.boolean("cached", outcome.cached);
    w.num("wall_seconds", outcome.wallSeconds);

    if (const RunResult *r = std::get_if<RunResult>(&outcome.value)) {
        w.str("kind", "run");
        w.field("counters", runCountersJson(*r));
        ObjectWriter d;
        d.num("ipc", r->ipc());
        d.boolean("completed", r->completed);
        d.boolean("output_ok", r->outputOk);
        // Host throughput (0 for cached jobs — no wall time was
        // spent, and 0 is distinguishable from any real rate).
        d.num("host_mips", hostMips(*r, outcome.wallSeconds));
        d.num("host_cycles_per_sec",
              hostCyclesPerSec(*r, outcome.wallSeconds));
        if (r->sampled.enabled()) {
            const ckpt::SampleEstimate &e = r->sampled;
            d.num("sample_intervals", e.intervals);
            d.num("total_insts", e.totalInsts);
            d.num("ff_insts", e.ffInsts);
            d.num("warmup_insts", e.warmupInsts);
            d.num("est_cycles", e.estimatedCycles);
            d.num("ipc_stddev", e.ipcStddev);
        }
        w.field("derived", d.finish());
        if (!r->perCore.empty()) {
            // One group per core (cores=N) or program (slice=Q), in
            // slot/program order; top-level counters aggregate them.
            std::string cores;
            for (const RunResult &g : r->perCore) {
                if (!cores.empty())
                    cores += ", ";
                ObjectWriter cw;
                cw.str("name", g.label);
                cw.field("counters", runCountersJson(g));
                ObjectWriter cd;
                cd.num("ipc", g.ipc());
                cd.boolean("completed", g.completed);
                cd.boolean("output_ok", g.outputOk);
                cw.field("derived", cd.finish());
                cores += cw.finish();
            }
            w.field("cores", "[" + cores + "]");
        }
    } else if (const TrafficResult *t =
                   std::get_if<TrafficResult>(&outcome.value)) {
        w.str("kind", "traffic");
        w.field("counters", trafficCounters(*t));
        ObjectWriter d;
        double n = t->ctxSwitches ? double(t->ctxSwitches) : 1.0;
        d.num("svf_bytes_per_switch", double(t->svfCtxBytes) / n);
        d.num("sc_bytes_per_switch", double(t->scCtxBytes) / n);
        w.field("derived", d.finish());
    } else {
        const workloads::StackProfile &p =
            std::get<workloads::StackProfile>(outcome.value);
        w.str("kind", "profile");
        w.field("counters", profileCounters(p));
        ObjectWriter d;
        d.num("avg_offset_bytes", p.avgOffsetBytes);
        d.num("within_8k", p.within8k);
        d.num("within_256", p.within256);
        d.num("stack_fraction", p.stackFraction());
        d.num("sp_fraction", p.spFraction());
        w.field("derived", d.finish());
    }
    records.push_back(w.finish());
}

void
JsonReport::add(const std::vector<JobOutcome> &outcomes)
{
    for (const JobOutcome &o : outcomes)
        add(o);
}

void
JsonReport::write(std::ostream &os) const
{
    os << "{\n  \"schema\": \"svf-bench-1\",\n  \"jobs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        os << "    " << records[i];
        if (i + 1 < records.size())
            os << ",";
        os << "\n";
    }
    os << "  ]";
    if (!profile.empty())
        os << ",\n  \"profile\": " << profile;
    if (!profileBaseline.empty())
        os << ",\n  \"profile_baseline\": " << profileBaseline;
    os << "\n}\n";
}

bool
JsonReport::writeFile(const std::string &path) const
{
    // Temp file + rename: a sweep that crashes mid-write must never
    // leave a truncated json=FILE behind a valid-looking name.
    std::ostringstream os;
    write(os);
    const std::string &text = os.str();
    std::vector<std::uint8_t> bytes(text.begin(), text.end());
    if (!ckpt::writeFileAtomic(path, bytes)) {
        warn("cannot write JSON report to '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace svf::harness
