/**
 * @file
 * Host-side phase profiler for the experiment harness.
 *
 * Answers "where did the wall time go?" for a sampled, pipelined
 * run: scoped RAII timers classify host time into phases
 * (fast-forward, snapshot capture/restore, warm replay, detailed
 * windows, queue waits, memo/disk-cache lookups), accumulated into
 * per-thread slots so the report can show both the per-phase totals
 * and each worker's utilization. This is pure host observability —
 * it never touches simulated state and is not part of any setup key.
 *
 * Off by default; `prof=1` (or Profiler::enable) arms it. The
 * disabled fast path is one relaxed atomic load per ScopedPhase, so
 * instrumented hot paths cost nothing measurable when idle. When
 * armed, per-thread slots use C++20 atomic<double> accumulation so
 * concurrent workers and a reporting thread stay race-free.
 *
 * The report lands in JsonReport as the document-level "profile"
 * section (phase wall/CPU seconds + counts, worker busy seconds and
 * utilization, IntervalQueue depth high-water) and as the breakdown
 * table bench/host_throughput prints.
 */

#ifndef SVF_HARNESS_PROF_HH
#define SVF_HARNESS_PROF_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace svf::harness::prof
{

/** Host phases the harness attributes time to. */
enum class Phase : unsigned
{
    FastForward,      // batched functional interpreter between windows
    SnapshotCapture,  // producer freezing CoW snapshots
    SnapshotRestore,  // worker adopting a snapshot (or disk restore)
    WarmReplay,       // ,pwarm one-chunk functional warming
    DetailedWindow,   // cycle model: warmup + measured window
    QueueWait,        // IntervalQueue blocking (producer or worker)
    CacheLookup,      // runner memo + disk result-cache probes
    NumPhases
};

/** Snake_case display name ("fast_forward", ...). */
const char *phaseName(Phase p);

/** True when the profiler is armed (inline fast path for scopes). */
bool profilingEnabled();

class Profiler
{
  public:
    static Profiler &instance();

    /** Arm/disarm; arming (re)starts the elapsed clock. */
    void enable(bool on);

    /** Record an IntervalQueue depth observation (high-water max). */
    void noteQueueDepth(std::size_t depth);

    struct PhaseTotals
    {
        double wallSeconds = 0;
        double cpuSeconds = 0;
        std::uint64_t count = 0;
    };

    struct WorkerTotals
    {
        std::string name;       // registration order: "w0", "w1", ...
        double busySeconds = 0; // sum of phase wall time in that thread
    };

    struct Report
    {
        double elapsedSeconds = 0;
        std::uint64_t queueDepthHighWater = 0;
        PhaseTotals phase[static_cast<unsigned>(Phase::NumPhases)];
        std::vector<WorkerTotals> workers;
    };

    /** Snapshot the totals accumulated since enable(true). */
    Report report() const;

    /**
     * Render report() as the JSON object JsonReport embeds under
     * "profile" (see docs/observability.md for the schema).
     */
    std::string reportJson() const;

    /** Opaque per-thread accumulation slot (defined in prof.cc). */
    struct Slot;

  private:
    friend class ScopedPhase;
    Slot &threadSlot();
};

/**
 * RAII phase timer. Construct on entry to an instrumented region;
 * the destructor adds the region's wall and thread-CPU time to the
 * calling thread's slot. No-op (one atomic load) when disarmed.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase p);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Phase phase;
    bool active;
    double wall0 = 0;
    double cpu0 = 0;
};

} // namespace svf::harness::prof

#endif // SVF_HARNESS_PROF_HH
