/**
 * @file
 * Phase profiler internals: per-thread atomic accumulation slots.
 */

#include "harness/prof.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <time.h>

namespace svf::harness::prof
{

namespace
{

constexpr unsigned kNumPhases = static_cast<unsigned>(Phase::NumPhases);

std::atomic<bool> gEnabled{false};
std::atomic<std::uint64_t> gQueueHighWater{0};
std::atomic<double> gEnabledAt{0};

double
wallNow()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

double
threadCpuNow()
{
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
#endif
    return 0;
}

// atomic<double>::fetch_add is C++20 but not universally lowered;
// use a CAS loop so any conforming libatomic works.
void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed))
        ;
}

} // namespace

/**
 * One accumulation slot per thread that ever timed a phase. Slots
 * are registered once under a mutex and then written only by their
 * owning thread (atomically, so report() can read concurrently);
 * they outlive their threads — the registry never shrinks, so a
 * report after the pool has been torn down still sees every worker.
 */
struct Profiler::Slot
{
    std::atomic<double> wall[kNumPhases] = {};
    std::atomic<double> cpu[kNumPhases] = {};
    std::atomic<std::uint64_t> count[kNumPhases] = {};
};

namespace
{

std::mutex gSlotLock;
std::vector<std::unique_ptr<Profiler::Slot>> gSlots;

} // namespace

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::FastForward: return "fast_forward";
      case Phase::SnapshotCapture: return "snapshot_capture";
      case Phase::SnapshotRestore: return "snapshot_restore";
      case Phase::WarmReplay: return "warm_replay";
      case Phase::DetailedWindow: return "detailed_window";
      case Phase::QueueWait: return "queue_wait";
      case Phase::CacheLookup: return "cache_lookup";
      case Phase::NumPhases: break;
    }
    return "?";
}

bool
profilingEnabled()
{
    return gEnabled.load(std::memory_order_relaxed);
}

Profiler &
Profiler::instance()
{
    static Profiler p;
    return p;
}

void
Profiler::enable(bool on)
{
    if (on) {
        // Restart the aggregation window: zero whatever a previous
        // arm accumulated so elapsed and phase totals line up.
        std::lock_guard<std::mutex> g(gSlotLock);
        for (auto &s : gSlots) {
            for (unsigned p = 0; p < kNumPhases; ++p) {
                s->wall[p].store(0, std::memory_order_relaxed);
                s->cpu[p].store(0, std::memory_order_relaxed);
                s->count[p].store(0, std::memory_order_relaxed);
            }
        }
        gQueueHighWater.store(0, std::memory_order_relaxed);
        gEnabledAt.store(wallNow(), std::memory_order_relaxed);
    }
    gEnabled.store(on, std::memory_order_relaxed);
}

void
Profiler::noteQueueDepth(std::size_t depth)
{
    if (!profilingEnabled())
        return;
    std::uint64_t cur = gQueueHighWater.load(std::memory_order_relaxed);
    while (cur < depth &&
           !gQueueHighWater.compare_exchange_weak(
               cur, depth, std::memory_order_relaxed))
        ;
}

Profiler::Slot &
Profiler::threadSlot()
{
    thread_local Slot *slot = nullptr;
    if (!slot) {
        std::lock_guard<std::mutex> g(gSlotLock);
        gSlots.push_back(std::make_unique<Slot>());
        slot = gSlots.back().get();
    }
    return *slot;
}

Profiler::Report
Profiler::report() const
{
    Report r;
    const double t0 = gEnabledAt.load(std::memory_order_relaxed);
    r.elapsedSeconds = t0 ? wallNow() - t0 : 0;
    r.queueDepthHighWater =
        gQueueHighWater.load(std::memory_order_relaxed);

    std::lock_guard<std::mutex> g(gSlotLock);
    std::size_t wi = 0;
    for (const auto &s : gSlots) {
        WorkerTotals w;
        char name[16];
        std::snprintf(name, sizeof(name), "w%zu", wi++);
        w.name = name;
        for (unsigned p = 0; p < kNumPhases; ++p) {
            const double wall = s->wall[p].load(std::memory_order_relaxed);
            r.phase[p].wallSeconds += wall;
            r.phase[p].cpuSeconds +=
                s->cpu[p].load(std::memory_order_relaxed);
            r.phase[p].count +=
                s->count[p].load(std::memory_order_relaxed);
            w.busySeconds += wall;
        }
        r.workers.push_back(std::move(w));
    }
    return r;
}

std::string
Profiler::reportJson() const
{
    const Report r = report();
    std::string out;
    char buf[192];

    std::snprintf(buf, sizeof(buf),
                  "{\"elapsed_seconds\": %.6f, "
                  "\"queue_depth_high_water\": %llu, \"phases\": {",
                  r.elapsedSeconds,
                  static_cast<unsigned long long>(r.queueDepthHighWater));
    out += buf;
    for (unsigned p = 0; p < kNumPhases; ++p) {
        const auto &ph = r.phase[p];
        std::snprintf(buf, sizeof(buf),
                      "%s\"%s\": {\"wall_seconds\": %.6f, "
                      "\"cpu_seconds\": %.6f, \"count\": %llu}",
                      p ? ", " : "",
                      phaseName(static_cast<Phase>(p)),
                      ph.wallSeconds, ph.cpuSeconds,
                      static_cast<unsigned long long>(ph.count));
        out += buf;
    }
    out += "}, \"workers\": [";
    bool first = true;
    for (const auto &w : r.workers) {
        // Threads that never timed a phase (e.g. registered by a
        // previous arm) would render as all-zero noise.
        if (w.busySeconds <= 0)
            continue;
        const double util = r.elapsedSeconds > 0
                                ? w.busySeconds / r.elapsedSeconds
                                : 0;
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\": \"%s\", \"busy_seconds\": %.6f, "
                      "\"utilization\": %.4f}",
                      first ? "" : ", ", w.name.c_str(),
                      w.busySeconds, util);
        out += buf;
        first = false;
    }
    out += "]}";
    return out;
}

ScopedPhase::ScopedPhase(Phase p)
    : phase(p), active(profilingEnabled())
{
    if (!active)
        return;
    wall0 = wallNow();
    cpu0 = threadCpuNow();
}

ScopedPhase::~ScopedPhase()
{
    if (!active)
        return;
    auto &slot = Profiler::instance().threadSlot();
    const unsigned p = static_cast<unsigned>(phase);
    atomicAdd(slot.wall[p], wallNow() - wall0);
    atomicAdd(slot.cpu[p], threadCpuNow() - cpu0);
    slot.count[p].fetch_add(1, std::memory_order_relaxed);
}

} // namespace svf::harness::prof
