/**
 * @file
 * Machine-readable experiment output.
 *
 * Bench trajectories (BENCH_*.json and external tooling) should not
 * scrape text tables. A JsonReport collects finished runner jobs
 * and serializes one record per job — name, canonical setup key,
 * every RunResult/TrafficResult/StackProfile counter, and derived
 * metrics — to a json=FILE sink. Schema, informally:
 *
 *   {
 *     "schema": "svf-bench-1",
 *     "jobs": [
 *       {
 *         "name": "<plan job name>",
 *         "kind": "run" | "traffic" | "profile",
 *         "key": "<16 hex digits>",
 *         "cached": true | false,
 *         "wall_seconds": <number>,
 *         "counters": { "<snake_case>": <integer>, ... },
 *         "derived":  { "<snake_case>": <number>, ... },
 *         "cores":    [ { "name": "<workload>", "counters": {...},
 *                         "derived": {...} }, ... ]   // cores=N or
 *       }, ...                                        // slice=Q runs
 *                                                     // only
 *     ],
 *     "profile": { ... }   // host phase breakdown (prof=1 only;
 *                          // prof::Profiler::reportJson() schema)
 *   }
 *
 * Keys are emitted as hex strings: a 64-bit setup key does not
 * survive a round-trip through a JSON double.
 */

#ifndef SVF_HARNESS_JSON_REPORT_HH
#define SVF_HARNESS_JSON_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace svf::harness
{

/** Accumulates job records and writes the JSON document. */
class JsonReport
{
  public:
    /** Append one record for @p outcome. */
    void add(const JobOutcome &outcome);

    /** Append one record per outcome. */
    void add(const std::vector<JobOutcome> &outcomes);

    /** Number of records collected. */
    size_t size() const { return records.size(); }

    /**
     * Attach a host phase-profile section (a pre-rendered JSON
     * object, prof::Profiler::reportJson()). Emitted as a top-level
     * "profile" key after the jobs array; empty = omitted, so
     * reports without prof= keep the exact legacy document.
     */
    void setProfile(std::string json) { profile = std::move(json); }

    /**
     * Attach the *baseline* run's phase profile (the "profile"
     * object of the committed report this run was compared
     * against). Emitted as "profile_baseline", so a regenerated
     * baseline document carries both before and after breakdowns;
     * empty = omitted.
     */
    void
    setProfileBaseline(std::string json)
    {
        profileBaseline = std::move(json);
    }

    /** Write the complete document to @p os. */
    void write(std::ostream &os) const;

    /** Write to @p path; warns and returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    std::vector<std::string> records;   //!< pre-rendered objects
    std::string profile;                //!< "profile" section, raw JSON
    std::string profileBaseline;        //!< "profile_baseline" section
};

/** JSON string escaping (exposed for tests). */
std::string jsonEscape(const std::string &s);

} // namespace svf::harness

#endif // SVF_HARNESS_JSON_REPORT_HH
