#include "harness/reporting.hh"

#include <cmath>
#include <cstdio>

namespace svf::harness
{

double
geomeanPct(const std::vector<double> &pcts)
{
    if (pcts.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double p : pcts)
        log_sum += std::log(1.0 + p / 100.0);
    return (std::exp(log_sum / static_cast<double>(pcts.size())) -
            1.0) * 100.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

std::string
pct(double v, int prec)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, v);
    return buf;
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("======================================================"
                "==========\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s (Lee et al., HPCA 2001)\n",
                paper_ref.c_str());
    std::printf("======================================================"
                "==========\n");
}

} // namespace svf::harness
